// Ablation A1 - sweep the MIV keep-out rule (the M1 separation, 24 nm in
// the paper) and watch the 2D implementation's area penalty move while the
// MIV-transistor implementations stay put.  This isolates the mechanism
// behind the paper's area claim.
#include "bench_util.h"
#include "cells/celltypes.h"
#include "common/strings.h"
#include "common/table.h"
#include "layout/cell_layout.h"

using namespace mivtx;

int main(int, char**) {
  bench::print_header(
      "Ablation A1: MIV keep-out (M1 separation) sweep",
      "the 2D area penalty - and hence the MIV-transistor savings - is "
      "driven by the keep-out rule (24 nm nominal)");

  TextTable t({"M1 separation", "keep-out edge", "avg 2D (um^2)", "1-ch",
               "2-ch", "4-ch"});
  for (double m1 : {12e-9, 18e-9, 24e-9, 36e-9, 48e-9}) {
    layout::DesignRules rules;
    rules.m1_space = m1;
    const layout::LayoutModel model(rules);
    double sum[4] = {0, 0, 0, 0};
    for (cells::CellType type : cells::all_cells()) {
      int k = 0;
      for (cells::Implementation impl : cells::all_implementations())
        sum[k++] += model.layout_cell(type, impl).cell_area();
    }
    t.add_row({eng_format(m1, "m", 0), eng_format(rules.miv_keepout_edge(), "m", 0),
               format("%.4f", sum[0] / 14 * 1e12), bench::pct(sum[0], sum[1]),
               bench::pct(sum[0], sum[2]), bench::pct(sum[0], sum[3])});
  }
  t.print();
  std::printf("\n(nominal rule: 24 nm -> paper-calibrated savings; tighter "
              "rules shrink the\n2D penalty and with it the MIV advantage)\n");
  return 0;
}
