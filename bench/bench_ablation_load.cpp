// Ablation A2 - load-capacitance sweep.  The paper asserts that "as the
// load capacitance increases the effect of internal RC parasitic reduces
// significantly on overall power and delay estimation"; this bench sweeps
// C_load over 0.5/1/2/4 fF on a representative cell subset and reports the
// per-implementation deltas.
#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/ppa.h"

using namespace mivtx;

int main(int argc, char** argv) {
  bench::print_header(
      "Ablation A2: output load sweep (paper nominal: 1 fF)",
      "internal-parasitic influence shrinks as the load grows; deltas "
      "between implementations stay ordered");

  const core::ModelLibrary lib = bench::load_library(argc, argv);
  set_log_level(LogLevel::kError);
  const std::vector<cells::CellType> subset = {
      cells::CellType::kInv1, cells::CellType::kNand2, cells::CellType::kNor2,
      cells::CellType::kXor2};
  std::printf("[cells: INV1X1 NAND2X1 NOR2X1 XOR2X1]\n\n");

  TextTable t({"C_load", "2D delay (ps)", "1-ch", "2-ch", "4-ch",
               "2D power (uW)", "1-ch", "2-ch", "4-ch"});
  for (double cload : {0.5e-15, 1e-15, 2e-15, 4e-15}) {
    core::PpaOptions opts;
    opts.parasitics.c_load = cload;
    core::PpaEngine engine(lib, opts);
    double d[4] = {0, 0, 0, 0}, p[4] = {0, 0, 0, 0};
    for (cells::CellType type : subset) {
      for (cells::Implementation impl : cells::all_implementations()) {
        const core::CellPpa c = engine.measure(type, impl);
        if (!c.ok) continue;
        d[static_cast<int>(impl)] += c.delay;
        p[static_cast<int>(impl)] += c.power;
      }
    }
    t.add_row({eng_format(cload, "F", 1),
               format("%.2f", d[0] / subset.size() * 1e12),
               bench::pct(d[0], d[1]), bench::pct(d[0], d[2]),
               bench::pct(d[0], d[3]),
               format("%.3f", p[0] / subset.size() * 1e6),
               bench::pct(p[0], p[1]), bench::pct(p[0], p[2]),
               bench::pct(p[0], p[3])});
  }
  t.print();
  return 0;
}
