// Ablation A3 - sensitivity to the paper's parasitic resistance
// assumptions (MIV 7 ohm, wire 3 ohm, rails 5 ohm).  Scales all three
// together and also zeroes the 2D external-via stray capacitance, showing
// which assumption carries the delay/power deltas.
#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/ppa.h"

using namespace mivtx;

namespace {

struct Row {
  const char* label;
  double r_scale;
  double c_miv;
};

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Ablation A3: parasitic assumption sensitivity",
      "PPA deltas are robust against the 7/3/5-ohm assumptions; the 2D "
      "external-via stray capacitance carries part of the delay gap");

  const core::ModelLibrary lib = bench::load_library(argc, argv);
  set_log_level(LogLevel::kError);
  const std::vector<cells::CellType> subset = {
      cells::CellType::kInv1, cells::CellType::kNand2,
      cells::CellType::kAnd2};
  std::printf("[cells: INV1X1 NAND2X1 AND2X1]\n\n");

  const Row rows[] = {
      {"nominal (7/3/5 ohm, 40 aF)", 1.0, 40e-18},
      {"R x0 (ideal vias/wires)", 0.0, 40e-18},
      {"R x4", 4.0, 40e-18},
      {"R x16", 16.0, 40e-18},
      {"no 2D via stray cap", 1.0, 0.0},
  };

  TextTable t({"configuration", "2D delay (ps)", "1-ch", "2-ch", "4-ch",
               "2D power (uW)", "1-ch", "2-ch", "4-ch"});
  for (const Row& row : rows) {
    core::PpaOptions opts;
    opts.parasitics.r_miv *= row.r_scale;
    opts.parasitics.r_wire *= row.r_scale;
    opts.parasitics.r_rail *= row.r_scale;
    opts.parasitics.c_miv_external = row.c_miv;
    // Zero resistances are not representable as resistors; floor at 1 mOhm.
    opts.parasitics.r_miv = std::max(opts.parasitics.r_miv, 1e-3);
    opts.parasitics.r_wire = std::max(opts.parasitics.r_wire, 1e-3);
    opts.parasitics.r_rail = std::max(opts.parasitics.r_rail, 1e-3);
    core::PpaEngine engine(lib, opts);
    double d[4] = {0, 0, 0, 0}, p[4] = {0, 0, 0, 0};
    for (cells::CellType type : subset) {
      for (cells::Implementation impl : cells::all_implementations()) {
        const core::CellPpa c = engine.measure(type, impl);
        if (!c.ok) continue;
        d[static_cast<int>(impl)] += c.delay;
        p[static_cast<int>(impl)] += c.power;
      }
    }
    t.add_row({row.label, format("%.2f", d[0] / subset.size() * 1e12),
               bench::pct(d[0], d[1]), bench::pct(d[0], d[2]),
               bench::pct(d[0], d[3]),
               format("%.3f", p[0] / subset.size() * 1e6),
               bench::pct(p[0], p[1]), bench::pct(p[0], p[2]),
               bench::pct(p[0], p[3])});
  }
  t.print();
  return 0;
}
