// Extension E3 - small-signal view of the device variants: intrinsic
// transit frequency f_t = gm / (2*pi*Cgg) per variant from the extracted
// cards, and the AC frequency response of a resistively-loaded
// common-source stage per implementation (DC gain, -3 dB bandwidth, GBW).
#include <cmath>

#include "bench_util.h"
#include "bsimsoi/model.h"
#include "common/strings.h"
#include "common/table.h"
#include "spice/ac.h"

using namespace mivtx;

int main(int argc, char** argv) {
  bench::print_header(
      "Extension E3: small-signal figures of merit per device variant",
      "MIV-transistors trade extra gate capacitance for drive - f_t and "
      "GBW quantify the balance the digital PPA numbers average over");

  const core::ModelLibrary lib = bench::load_library(argc, argv);
  set_log_level(LogLevel::kError);

  // --- Intrinsic f_t from the compact model -------------------------------
  std::printf("Intrinsic figures at Vgs = Vds = 0.7 V (n-type cards):\n");
  TextTable t({"variant", "gm (uS)", "Cgg (aF)", "f_t (GHz)", "vs trad"});
  double ft0 = 0.0;
  for (core::Variant v : core::all_variants()) {
    const auto& card = lib.card(v, core::Polarity::kNmos);
    const bsimsoi::ModelOutput m = bsimsoi::eval(card, 0.7, 0.7, 0.0);
    const double gm = m.dids[bsimsoi::kDvG];
    const double cgg = m.dqg[bsimsoi::kDvG];
    const double ft = gm / (2.0 * M_PI * cgg);
    if (v == core::Variant::kTraditional) ft0 = ft;
    t.add_row({tcad::variant_name(v), format("%.1f", gm * 1e6),
               format("%.1f", cgg * 1e18), format("%.1f", ft * 1e-9),
               bench::pct(ft0, ft)});
  }
  t.print();

  // --- AC response of a common-source stage --------------------------------
  std::printf("\nCommon-source stage (20 kohm load, 2 fF at the output), "
              "AC response:\n");
  TextTable a({"variant", "|A| at 1 MHz", "f_3dB (GHz)", "GBW (GHz)"});
  for (core::Variant v : core::all_variants()) {
    spice::Circuit ckt;
    const spice::NodeId vdd = ckt.node("vdd"), in = ckt.node("in"),
                        out = ckt.node("out");
    ckt.add_vsource("VDD", vdd, spice::kGround, spice::SourceSpec::DC(1.0));
    // Bias the gate near the high-gain point.
    ckt.add_vsource("VIN", in, spice::kGround, spice::SourceSpec::DC(0.45));
    ckt.add_resistor("RL", vdd, out, 20e3);
    ckt.add_capacitor("CL", out, spice::kGround, 2e-15);
    ckt.add_mosfet("M1", out, in, spice::kGround,
                   lib.card(v, core::Polarity::kNmos));

    const auto freqs = spice::log_frequency_grid(1e6, 1e12, 12);
    const spice::AcResult ac = spice::ac_analysis(ckt, "VIN", freqs);
    if (!ac.ok) {
      a.add_row({tcad::variant_name(v), "n/a", "n/a", "n/a"});
      continue;
    }
    const double a0 = ac.magnitude("out", 0);
    double f3db = freqs.back();
    for (std::size_t k = 0; k < freqs.size(); ++k) {
      if (ac.magnitude("out", k) < a0 / std::sqrt(2.0)) {
        f3db = freqs[k];
        break;
      }
    }
    a.add_row({tcad::variant_name(v), format("%.2f", a0),
               format("%.2f", f3db * 1e-9),
               format("%.1f", a0 * f3db * 1e-9)});
  }
  a.print();
  std::printf("\n(the 1-/2-channel variants' extra drive outruns their extra "
              "gate capacitance at\nthis bias; the 4-channel variant gives "
              "up small-signal speed for density)\n");
  return 0;
}
