// Extension E1 - chip-level projection of the cell study (the paper's
// future-work direction): benchmark circuits built from the 14-cell
// library, static timing analysis over measured cell delays, and row
// placement in both coupled and per-tier modes.
//
// The per-tier placement numbers quantify the paper's "total substrate
// area ... by up to 31%. However, this requires separate placement
// algorithms" argument with an actual placer.
#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/chip.h"

using namespace mivtx;

int main(int argc, char** argv) {
  bench::print_header(
      "Extension E1: chip-level PPA on benchmark circuits (STA + placement)",
      "per-tier placement banks more area than coupled cells; MIV delay "
      "gains compound along critical paths");

  const core::ModelLibrary lib = bench::load_library(argc, argv);
  set_log_level(LogLevel::kError);
  std::printf("[building timing model from transient PPA measurements ...]\n");
  const gatelevel::TimingModel timing = core::build_timing_model(lib);

  const auto circuits = core::benchmark_circuits();

  std::printf("\nCritical-path delay (STA over measured cell delays):\n");
  TextTable t({"circuit", "cells", "2D (ps)", "1-ch", "2-ch", "4-ch"});
  for (const auto& ckt : circuits) {
    double d[4];
    int k = 0;
    std::size_t n = 0;
    for (cells::Implementation impl : cells::all_implementations()) {
      const core::ChipPpa ppa = core::evaluate_chip(ckt, timing, impl);
      d[k++] = ppa.critical_delay;
      n = ppa.num_cells;
    }
    t.add_row({ckt.name(), format("%zu", n), format("%.1f", d[0] * 1e12),
               bench::pct(d[0], d[1]), bench::pct(d[0], d[2]),
               bench::pct(d[0], d[3])});
  }
  t.print();

  std::printf("\nPlaced chip area, coupled rows vs per-tier placement:\n");
  TextTable a({"circuit", "impl", "coupled (um^2)", "per-tier (um^2)",
               "per-tier gain", "tier balance (top/bottom)"});
  for (const auto& ckt : circuits) {
    for (cells::Implementation impl : cells::all_implementations()) {
      const core::ChipPpa ppa = core::evaluate_chip(ckt, timing, impl);
      a.add_row({ckt.name(), cells::impl_name(impl),
                 format("%.3f", ppa.coupled_area * 1e12),
                 format("%.3f", ppa.per_tier_area * 1e12),
                 bench::pct(ppa.coupled_area, ppa.per_tier_area),
                 format("%.2f", ppa.per_tier_top_area /
                                    ppa.per_tier_bottom_area)});
    }
    a.add_separator();
  }
  a.print();

  // Aggregate: total area of the suite per (impl, mode), vs 2D coupled.
  std::printf("\nSuite totals (all circuits), area vs 2D coupled placement:\n");
  TextTable s({"impl", "coupled", "per-tier"});
  double base = 0.0;
  for (cells::Implementation impl : cells::all_implementations()) {
    double coupled = 0.0, split = 0.0;
    for (const auto& ckt : circuits) {
      const core::ChipPpa ppa = core::evaluate_chip(ckt, timing, impl);
      coupled += ppa.coupled_area;
      split += ppa.per_tier_area;
    }
    if (impl == cells::Implementation::k2D) base = coupled;
    s.add_row({cells::impl_name(impl), bench::pct(base, coupled),
               bench::pct(base, split)});
  }
  s.print();
  std::printf(
      "\n(finding: per-tier placement pays exactly when neither tier "
      "dominates both\ndimensions - the 4-channel variant's balanced tiers "
      "(ratio ~1.0) unlock a further\n-14 points over its coupled "
      "placement, which is the regime behind the paper's\n'up to 31%% "
      "substrate area' claim; for 1-ch/2-ch the top tier dominates and "
      "coupled\nplacement is already tier-optimal)\n");
  return 0;
}
