// Extension E4 - temperature corners: the PPA comparison at -40/25/125 C
// using BSIM-style temperature scaling (UTE/KT1/AT) on the extracted cards.
// Checks that the implementation ranking of Fig. 5 is not a room-
// temperature artifact.
#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/ppa.h"

using namespace mivtx;

namespace {

core::ModelLibrary at_temperature(const core::ModelLibrary& lib,
                                  double temp_c) {
  core::ModelLibrary out;
  for (core::Polarity pol : {core::Polarity::kNmos, core::Polarity::kPmos}) {
    for (core::Variant v : core::all_variants()) {
      bsimsoi::SoiModelCard card = lib.card(v, pol);
      card.temp = temp_c;
      out.put(v, pol, card);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Extension E4: temperature corners (-40 / 25 / 125 C)",
      "the Fig. 5 implementation ranking should hold across the military "
      "temperature range");

  const core::ModelLibrary lib = bench::load_library(argc, argv);
  set_log_level(LogLevel::kError);
  const cells::CellType subset[] = {cells::CellType::kInv1,
                                    cells::CellType::kNand2,
                                    cells::CellType::kNor2,
                                    cells::CellType::kXor2};
  std::printf("[cells: INV1X1 NAND2X1 NOR2X1 XOR2X1]\n\n");

  TextTable t({"T (C)", "2D delay (ps)", "1-ch", "2-ch", "4-ch",
               "2D power (uW)", "1-ch", "2-ch", "4-ch"});
  for (double temp : {-40.0, 25.0, 125.0}) {
    const core::ModelLibrary tl = at_temperature(lib, temp);
    core::PpaEngine engine(tl);
    double d[4] = {0, 0, 0, 0}, p[4] = {0, 0, 0, 0};
    for (cells::CellType type : subset) {
      for (cells::Implementation impl : cells::all_implementations()) {
        const core::CellPpa c = engine.measure(type, impl);
        if (!c.ok) continue;
        d[static_cast<int>(impl)] += c.delay;
        p[static_cast<int>(impl)] += c.power;
      }
    }
    t.add_row({format("%.0f", temp), format("%.2f", d[0] / 4 * 1e12),
               bench::pct(d[0], d[1]), bench::pct(d[0], d[2]),
               bench::pct(d[0], d[3]), format("%.3f", p[0] / 4 * 1e6),
               bench::pct(p[0], p[1]), bench::pct(p[0], p[2]),
               bench::pct(p[0], p[3])});
  }
  t.print();
  std::printf("\n(hot silicon is slower - mobility loss outpaces the Vth "
              "drop; the 1-ch advantage\nand 4-ch penalty hold at every "
              "corner, while the 2-ch advantage grows with\ntemperature and "
              "narrows to a wash at -40 C)\n");
  return 0;
}
