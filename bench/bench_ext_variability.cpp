// Extension E2 - Monte-Carlo process variation: do the few-percent
// MIV-transistor delay advantages survive local Vth/mobility variation?
// Reports mean/sigma/worst delay per implementation for representative
// cells under correlated sampling (sigma_Vth = 15 mV, sigma_u0 = 3%).
#include <cmath>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/variability.h"

using namespace mivtx;

int main(int argc, char** argv) {
  bench::print_header(
      "Extension E2: Monte-Carlo variability of the PPA deltas",
      "the -2..-3% MIV delay advantage must be compared against the "
      "variation-induced sigma");

  const bench::ExecSetup exec = bench::exec_setup(argc, argv);
  const core::ModelLibrary lib = bench::load_library(argc, argv, &exec);
  set_log_level(LogLevel::kError);
  core::VariationSpec spec;
  if (bench::has_flag(argc, argv, "--quick")) spec.samples = 11;
  std::printf("[%zu samples per (cell, implementation); sigma_Vth=%.0f mV, "
              "sigma_u0=%.0f%%]\n\n",
              spec.samples, spec.sigma_vth * 1e3, spec.sigma_u0_rel * 100);

  const cells::CellType subset[] = {cells::CellType::kInv1,
                                    cells::CellType::kNand2};
  for (cells::CellType type : subset) {
    std::printf("%s:\n", cells::cell_name(type));
    TextTable t({"impl", "mean delay (ps)", "sigma (ps)", "worst (ps)",
                 "mean vs 2D", "sigma/mean"});
    double base = 0.0;
    for (cells::Implementation impl : cells::all_implementations()) {
      const core::VariabilityStats s =
          core::run_variability(lib, type, impl, spec, {}, exec.policy());
      if (impl == cells::Implementation::k2D) base = s.mean_delay;
      t.add_row({cells::impl_name(impl), format("%.2f", s.mean_delay * 1e12),
                 format("%.3f", s.sigma_delay * 1e12),
                 format("%.2f", s.worst_delay * 1e12),
                 bench::pct(base, s.mean_delay),
                 format("%.1f%%", 100.0 * s.sigma_delay / s.mean_delay)});
    }
    t.print();
    std::printf("\n");
  }
  std::printf("(reading: where |mean shift| is comparable to sigma, the "
              "implementation choice is\na second-order effect under "
              "variation - consistent with the paper presenting the\narea "
              "saving, not the speed, as the headline)\n");
  exec.report();
  return 0;
}
