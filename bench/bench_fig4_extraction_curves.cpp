// Fig. 4 - Level 70 extraction result for the 4-channel MIV-transistor:
// TCAD-simulated characteristics against the fitted Spice model, as data
// series (Id-Vg at low/high drain, the Id-Vd family, and Cgg-Vg).
//
// Default: n-type (as in the paper's figure).  --pmos switches polarity.
#include <cmath>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "extract/pipeline.h"

using namespace mivtx;

int main(int argc, char** argv) {
  const bool pmos = bench::has_flag(argc, argv, "--pmos");
  const core::Polarity pol =
      pmos ? core::Polarity::kPmos : core::Polarity::kNmos;

  bench::print_header(
      "Fig. 4: Level 70 extraction result, 4-channel MIV-transistor",
      "fitted model tracks TCAD in all regions; overall error < 10%");

  set_log_level(LogLevel::kError);
  std::printf("[characterizing the 4-channel %s device in TCAD ...]\n\n",
              pmos ? "PMOS" : "NMOS");
  const core::ProcessParams proc;
  const extract::SweepGrid grid;
  const extract::CharacteristicSet data = core::characterize_device(
      proc, core::Variant::kMiv4Channel, pol, grid);
  const extract::ExtractionReport rep = extract::extract_card(
      data, core::initial_card(proc, core::Variant::kMiv4Channel, pol));

  // (a) Transfer curves, both drain biases.
  std::printf("Id-Vg (A), TCAD vs fitted model:\n");
  TextTable t({"Vg (V)", "TCAD @50mV", "fit @50mV", "TCAD @1V", "fit @1V"});
  const Curve fit_low =
      extract::model_idvg(rep.card, data.idvg_low, data.vds_low);
  const Curve fit_high =
      extract::model_idvg(rep.card, data.idvg_high, data.vds_high);
  for (std::size_t i = 0; i < data.idvg_low.size(); i += 2) {
    t.add_row({format("%.2f", data.idvg_low[i].x),
               format("%.3e", data.idvg_low[i].y),
               format("%.3e", fit_low[i].y),
               format("%.3e", data.idvg_high[i].y),
               format("%.3e", fit_high[i].y)});
  }
  t.print();

  // (b) Output curve family.
  std::printf("\nId-Vd (A), TCAD vs fitted model:\n");
  std::vector<std::string> hdr{"Vd (V)"};
  for (const auto& oc : data.idvd) {
    hdr.push_back(format("TCAD Vg=%.1f", oc.vgs));
    hdr.push_back(format("fit Vg=%.1f", oc.vgs));
  }
  TextTable o(hdr);
  std::vector<Curve> fits;
  for (const auto& oc : data.idvd)
    fits.push_back(extract::model_idvd(rep.card, oc.curve, oc.vgs));
  for (std::size_t i = 0; i < data.idvd[0].curve.size(); i += 2) {
    std::vector<std::string> cells{format("%.2f", data.idvd[0].curve[i].x)};
    for (std::size_t k = 0; k < data.idvd.size(); ++k) {
      cells.push_back(format("%.3e", data.idvd[k].curve[i].y));
      cells.push_back(format("%.3e", fits[k][i].y));
    }
    o.add_row(cells);
  }
  o.print();

  // (c) Gate capacitance.
  std::printf("\nCgg-Vg (aF), TCAD vs fitted model:\n");
  TextTable c({"Vg (V)", "TCAD", "fit", "error"});
  const Curve fit_cv = extract::model_cv(rep.card, data.cv);
  for (std::size_t i = 0; i < data.cv.size(); i += 2) {
    c.add_row({format("%.2f", data.cv[i].x),
               format("%.1f", data.cv[i].y * 1e18),
               format("%.1f", fit_cv[i].y * 1e18),
               format("%+.1f%%",
                      100.0 * (fit_cv[i].y - data.cv[i].y) / data.cv[i].y)});
  }
  c.print();

  std::printf("\nregion errors: IDVG=%.1f%% IDVD=%.1f%% CV=%.1f%% "
              "(paper 4-ch %s: 7.2/3.5/7.0%%)\n",
              100 * rep.errors.idvg, 100 * rep.errors.idvd,
              100 * rep.errors.cv, pmos ? "p" : "n");
  return 0;
}
