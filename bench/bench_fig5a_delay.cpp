// Fig. 5(a) - average propagation delay of every standard cell in the four
// top-tier implementations (2D baseline vs 1/2/4-channel MIV-transistors).
#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/ppa.h"

using namespace mivtx;

int main(int argc, char** argv) {
  bench::print_header(
      "Fig. 5(a): average propagation delay per standard cell",
      "average delay -3% (1-ch), -2% (2-ch), +2% (4-ch) vs 2D; "
      "INV1X1 2-ch up to -11%, AND2X1 4-ch +6%");

  const bench::ExecSetup exec = bench::exec_setup(argc, argv);
  const core::ModelLibrary lib = bench::load_library(argc, argv, &exec);
  set_log_level(LogLevel::kError);
  core::PpaEngine engine(lib, {}, {}, exec.policy());
  std::printf("[transient-simulating 14 cells x 4 implementations ...]\n\n");
  const std::vector<core::CellPpa> all = engine.measure_all();

  TextTable t({"cell", "2D (ps)", "1-ch (ps)", "2-ch (ps)", "4-ch (ps)",
               "1-ch", "2-ch", "4-ch"});
  double sum[4] = {0, 0, 0, 0};
  for (cells::CellType type : cells::all_cells()) {
    double d[4] = {0, 0, 0, 0};
    for (const core::CellPpa& c : all) {
      if (c.type == type && c.ok) d[static_cast<int>(c.impl)] = c.delay;
    }
    for (int k = 0; k < 4; ++k) sum[k] += d[k];
    t.add_row({cells::cell_name(type), format("%.2f", d[0] * 1e12),
               format("%.2f", d[1] * 1e12), format("%.2f", d[2] * 1e12),
               format("%.2f", d[3] * 1e12), bench::pct(d[0], d[1]),
               bench::pct(d[0], d[2]), bench::pct(d[0], d[3])});
  }
  t.add_separator();
  t.add_row({"AVERAGE", format("%.2f", sum[0] / 14 * 1e12),
             format("%.2f", sum[1] / 14 * 1e12),
             format("%.2f", sum[2] / 14 * 1e12),
             format("%.2f", sum[3] / 14 * 1e12), bench::pct(sum[0], sum[1]),
             bench::pct(sum[0], sum[2]), bench::pct(sum[0], sum[3])});
  t.print();

  std::printf("\nmeasured averages: 1-ch %s, 2-ch %s, 4-ch %s "
              "(paper: -3%%, -2%%, +2%%)\n",
              bench::pct(sum[0], sum[1]).c_str(), bench::pct(sum[0], sum[2]).c_str(),
              bench::pct(sum[0], sum[3]).c_str());
  exec.report();
  return 0;
}
