// Fig. 5(b) - average power consumption of every standard cell in the four
// top-tier implementations.
#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/ppa.h"

using namespace mivtx;

int main(int argc, char** argv) {
  bench::print_header(
      "Fig. 5(b): average power per standard cell",
      "average power -0.5% (1-ch), -1% (2-ch), -2% (4-ch) vs 2D; "
      "INV1X1 2-ch +3% worst case, OR3X1 4-ch -3% best case");

  const bench::ExecSetup exec = bench::exec_setup(argc, argv);
  const core::ModelLibrary lib = bench::load_library(argc, argv, &exec);
  set_log_level(LogLevel::kError);
  core::PpaEngine engine(lib, {}, {}, exec.policy());
  std::printf("[transient-simulating 14 cells x 4 implementations ...]\n\n");
  const std::vector<core::CellPpa> all = engine.measure_all();

  TextTable t({"cell", "2D (uW)", "1-ch (uW)", "2-ch (uW)", "4-ch (uW)",
               "1-ch", "2-ch", "4-ch"});
  double sum[4] = {0, 0, 0, 0};
  for (cells::CellType type : cells::all_cells()) {
    double p[4] = {0, 0, 0, 0};
    for (const core::CellPpa& c : all) {
      if (c.type == type && c.ok) p[static_cast<int>(c.impl)] = c.power;
    }
    for (int k = 0; k < 4; ++k) sum[k] += p[k];
    t.add_row({cells::cell_name(type), format("%.3f", p[0] * 1e6),
               format("%.3f", p[1] * 1e6), format("%.3f", p[2] * 1e6),
               format("%.3f", p[3] * 1e6), bench::pct(p[0], p[1]),
               bench::pct(p[0], p[2]), bench::pct(p[0], p[3])});
  }
  t.add_separator();
  t.add_row({"AVERAGE", format("%.3f", sum[0] / 14 * 1e6),
             format("%.3f", sum[1] / 14 * 1e6),
             format("%.3f", sum[2] / 14 * 1e6),
             format("%.3f", sum[3] / 14 * 1e6), bench::pct(sum[0], sum[1]),
             bench::pct(sum[0], sum[2]), bench::pct(sum[0], sum[3])});
  t.print();

  std::printf("\nmeasured averages: 1-ch %s, 2-ch %s, 4-ch %s "
              "(paper: -0.5%%, -1%%, -2%%)\n",
              bench::pct(sum[0], sum[1]).c_str(), bench::pct(sum[0], sum[2]).c_str(),
              bench::pct(sum[0], sum[3]).c_str());
  exec.report();
  return 0;
}
