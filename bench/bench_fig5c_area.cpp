// Fig. 5(c) - layout area of every standard cell in the four top-tier
// implementations, plus the per-tier substrate-area discussion of SOCC'23
// section IV ("up to 31%" with separate per-tier placement).
#include "bench_util.h"
#include "cells/celltypes.h"
#include "common/strings.h"
#include "common/table.h"
#include "layout/cell_layout.h"

using namespace mivtx;

int main(int, char**) {
  bench::print_header(
      "Fig. 5(c): layout area per standard cell",
      "average layout area -9% (1-ch), -18% (2-ch), -12% (4-ch) vs 2D; "
      "4-ch best case about -25%");

  const layout::LayoutModel model;
  TextTable t({"cell", "2D (um^2)", "1-ch", "2-ch", "4-ch", "ext. MIVs"});
  double sum[4] = {0, 0, 0, 0};
  double top_sum[4] = {0, 0, 0, 0};
  double best4_top = 0.0, best_substrate = 0.0;
  for (cells::CellType type : cells::all_cells()) {
    double a[4];
    int ext = 0;
    int k = 0;
    for (cells::Implementation impl : cells::all_implementations()) {
      const layout::CellLayout l = model.layout_cell(type, impl);
      a[k] = l.cell_area();
      sum[k] += l.cell_area();
      top_sum[k] += l.top.area();
      if (impl == cells::Implementation::k2D) ext = l.external_mivs;
      ++k;
    }
    {
      const auto l2d = model.layout_cell(type, cells::Implementation::k2D);
      const auto l4 =
          model.layout_cell(type, cells::Implementation::kMiv4Channel);
      best4_top =
          std::min(best4_top, (l4.top.area() - l2d.top.area()) / l2d.top.area());
      best_substrate = std::min(
          best_substrate,
          (l4.substrate_area() - l2d.substrate_area()) / l2d.substrate_area());
    }
    t.add_row({cells::cell_name(type), format("%.4f", a[0] * 1e12),
               bench::pct(a[0], a[1]), bench::pct(a[0], a[2]),
               bench::pct(a[0], a[3]), format("%d", ext)});
  }
  t.add_separator();
  t.add_row({"AVERAGE", format("%.4f", sum[0] / 14 * 1e12),
             bench::pct(sum[0], sum[1]), bench::pct(sum[0], sum[2]),
             bench::pct(sum[0], sum[3]), ""});
  t.print();

  std::printf("\nmeasured averages: 1-ch %s, 2-ch %s, 4-ch %s "
              "(paper: -9%%, -18%%, -12%%)\n",
              bench::pct(sum[0], sum[1]).c_str(), bench::pct(sum[0], sum[2]).c_str(),
              bench::pct(sum[0], sum[3]).c_str());
  std::printf("4-ch best-case top-tier area: %.1f%% (paper: \"4-channel can "
              "reduce the area consumption by 25%%\")\n",
              100.0 * best4_top);

  std::printf(
      "\nPer-tier substrate area (separate per-tier placement, the 'up to "
      "31%%' argument):\n");
  TextTable s({"tier metric", "1-ch", "2-ch", "4-ch"});
  s.add_row({"top-tier (n-type) area saving", bench::pct(top_sum[0], top_sum[1]),
             bench::pct(top_sum[0], top_sum[2]),
             bench::pct(top_sum[0], top_sum[3])});
  s.print();
  std::printf("4-ch best-case total substrate saving: %.1f%% (paper: \"up to "
              "31%%\" with separate placement)\n",
              100.0 * best_substrate);
  return 0;
}
