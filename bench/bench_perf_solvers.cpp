// P1 - micro-benchmarks of the numerical kernels (google-benchmark):
// dense/banded LU, compact-model evaluation, MNA assembly + Newton,
// transient stepping, a TCAD Gummel bias step, and the mivtx::runtime
// primitives (thread-pool dispatch, stable hashing, artifact cache).
//
// `--json FILE` is shorthand for --benchmark_out=FILE
// --benchmark_out_format=json (the form CI consumes).
//
// `--backend=dense|sparse|auto` pins the SPICE linear-solver core for the
// dcop/transient benchmarks (default auto); the std-cell transient bench
// reports the solver-core counters (factorizations, LU reuses, device
// bypasses, ...) as per-run benchmark counters so they land in the JSON.
// `--device-eval=auto|scalar|portable|simd` pins the MOSFET evaluation
// path the same way (default auto), so CI can record a scalar baseline and
// a SIMD run from one binary.  `--linear-solver=auto|direct|cg|bicgstab`
// pins the sparse-tier linear-solve method (default auto) for the
// dcop/transient benchmarks; the large-circuit benches additionally carry
// the method as a benchmark argument so one run emits the direct and
// iterative rows CI compares.  `--metrics` prints the full runtime metrics
// report on exit.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bsimsoi/model.h"
#include "cells/circuitgen.h"
#include "cells/netgen.h"
#include "common/hash.h"
#include "common/rng.h"
#include "core/ppa.h"
#include "core/reference_cards.h"
#include "core/variability.h"
#include "linalg/banded.h"
#include "linalg/dense.h"
#include "runtime/artifact_cache.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"
#include "linalg/krylov.h"
#include "linalg/sparse_lu.h"
#include "spice/assembly_plan.h"
#include "spice/dcop.h"
#include "spice/transient.h"
#include "tcad/characterize.h"

using namespace mivtx;

namespace {

spice::SolverBackend g_backend = spice::SolverBackend::kAuto;
spice::DeviceEval g_device_eval = spice::DeviceEval::kAuto;
spice::LinearSolver g_linear_solver = spice::LinearSolver::kAuto;

spice::NewtonOptions bench_newton() {
  spice::NewtonOptions opts;
  opts.backend = g_backend;
  opts.device_eval = g_device_eval;
  opts.linear_solver = g_linear_solver;
  return opts;
}

linalg::DenseMatrix random_dense(std::size_t n, Rng& rng) {
  linalg::DenseMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1, 1);
    a(r, r) += 4.0;
  }
  return a;
}

void BM_DenseLU(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const linalg::DenseMatrix a = random_dense(n, rng);
  linalg::Vector b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::DenseLU(a).solve(b));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_DenseLU)->Arg(10)->Arg(30)->Arg(100)->Complexity();

void BM_BandedLU(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t bw = 15;
  Rng rng(2);
  linalg::BandedMatrix a(n, bw, bw);
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t c0 = r > bw ? r - bw : 0;
    const std::size_t c1 = std::min(n - 1, r + bw);
    for (std::size_t c = c0; c <= c1; ++c)
      a.set(r, c, rng.uniform(-1, 1) + (r == c ? 4.0 : 0.0));
  }
  linalg::Vector b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::BandedLU(a).solve(b));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_BandedLU)->Arg(100)->Arg(500)->Arg(2000)->Complexity();

void BM_CompactModelEval(benchmark::State& state) {
  const auto& card = core::reference_model_library().card(
      core::Variant::kMiv2Channel, core::Polarity::kNmos);
  double vg = 0.0;
  for (auto _ : state) {
    vg += 1e-6;
    benchmark::DoNotOptimize(bsimsoi::eval(card, 0.5 + vg, 0.8, 0.0));
  }
}
BENCHMARK(BM_CompactModelEval);

spice::Circuit make_inverter_chain(int stages) {
  const auto& lib = core::reference_model_library();
  const auto nch = lib.card(core::Variant::kTraditional, core::Polarity::kNmos);
  const auto pch = lib.card(core::Variant::kTraditional, core::Polarity::kPmos);
  spice::Circuit ckt;
  const spice::NodeId vdd = ckt.node("vdd");
  ckt.add_vsource("VDD", vdd, spice::kGround, spice::SourceSpec::DC(1.0));
  spice::PulseSpec p;
  p.v1 = 0;
  p.v2 = 1;
  p.delay = 100e-12;
  p.rise = 20e-12;
  p.fall = 20e-12;
  p.width = 300e-12;
  spice::NodeId prev = ckt.node("in");
  ckt.add_vsource("VIN", prev, spice::kGround, spice::SourceSpec::Pulse(p));
  for (int i = 0; i < stages; ++i) {
    const spice::NodeId out = ckt.node("n" + std::to_string(i));
    ckt.add_mosfet("MN" + std::to_string(i), out, prev, spice::kGround, nch);
    ckt.add_mosfet("MP" + std::to_string(i), out, prev, vdd, pch);
    prev = out;
  }
  ckt.add_capacitor("CL", prev, spice::kGround, 1e-15);
  return ckt;
}

void BM_DcOperatingPoint(benchmark::State& state) {
  const spice::Circuit ckt =
      make_inverter_chain(static_cast<int>(state.range(0)));
  const spice::NewtonOptions newton = bench_newton();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spice::dc_operating_point(ckt, newton));
  }
}
BENCHMARK(BM_DcOperatingPoint)->Arg(1)->Arg(5)->Arg(15);

void BM_TransientInverterChain(benchmark::State& state) {
  const spice::Circuit ckt =
      make_inverter_chain(static_cast<int>(state.range(0)));
  spice::TransientOptions opts;
  opts.t_stop = 6e-10;
  opts.newton = bench_newton();
  for (auto _ : state) {
    const spice::TransientResult tr = spice::transient(ckt, opts);
    benchmark::DoNotOptimize(tr.accepted_steps);
  }
}
BENCHMARK(BM_TransientInverterChain)->Arg(1)->Arg(5)->Unit(benchmark::kMillisecond);

// A parasitic-annotated standard cell driven the way the PPA engine drives
// it: pin 0 pulses full swing, the side inputs sit at sensitizing levels.
spice::Circuit make_std_cell(cells::CellType type) {
  const auto& lib = core::reference_model_library();
  cells::ModelSet models;
  models.nmos = lib.card(core::Variant::kTraditional, core::Polarity::kNmos);
  models.pmos = lib.card(core::Variant::kTraditional, core::Polarity::kPmos);
  cells::CellNetlist cell = cells::build_cell(
      type, cells::Implementation::k2D, models, cells::ParasiticSpec{}, 1.0);
  const std::vector<std::string> inputs = cells::cell_input_names(type);
  const auto side = core::PpaEngine::sensitize(type, 0);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    spice::Element& src = cell.circuit.element("V" + inputs[i]);
    if (i == 0) {
      spice::PulseSpec p;
      p.v1 = 0.0;
      p.v2 = 1.0;
      p.delay = 100e-12;
      p.rise = 20e-12;
      p.fall = 20e-12;
      p.width = 300e-12;
      src.source = spice::SourceSpec::Pulse(p);
    } else {
      src.source =
          spice::SourceSpec::DC(side.has_value() && (*side)[i] ? 1.0 : 0.0);
    }
  }
  return cell.circuit;
}

void BM_TransientStdCell(benchmark::State& state) {
  const cells::CellType type = static_cast<cells::CellType>(state.range(0));
  const spice::Circuit ckt = make_std_cell(type);
  spice::TransientOptions opts;
  opts.t_stop = 6e-10;
  opts.newton = bench_newton();
  runtime::Metrics::global().reset();
  for (auto _ : state) {
    const spice::TransientResult tr = spice::transient(ckt, opts);
    benchmark::DoNotOptimize(tr.accepted_steps);
  }
  // Per-run solver-core counters (averaged over bench iterations); the
  // expected ordering is symbolic << full factorizations << refactorizations
  // <= newton iterations.
  const runtime::Metrics& m = runtime::Metrics::global();
  const double runs =
      std::max<double>(1.0, static_cast<double>(state.iterations()));
  state.counters["unknowns"] = static_cast<double>(ckt.system_size());
  state.counters["newton_iters"] =
      m.counter_total("spice.newton.iterations") / runs;
  state.counters["symbolic"] =
      m.counter_total("spice.sparse.symbolic_analyses") / runs;
  state.counters["full_factor"] =
      m.counter_total("spice.sparse.full_factorizations") / runs;
  state.counters["refactor"] =
      m.counter_total("spice.sparse.refactorizations") / runs;
  state.counters["lu_reuse"] = m.counter_total("spice.sparse.lu_reuses") / runs;
  state.counters["dev_bypass"] =
      m.counter_total("spice.device.bypasses") / runs;
  state.counters["dev_eval"] = m.counter_total("spice.device.evals") / runs;
  state.counters["batch_blocks"] =
      m.counter_total("spice.device.batch.blocks") / runs;
}
BENCHMARK(BM_TransientStdCell)
    ->Arg(static_cast<int>(cells::CellType::kNand2))
    ->Arg(static_cast<int>(cells::CellType::kXor2))
    ->Unit(benchmark::kMillisecond);

// Monte-Carlo variability of one cell: arg 0 selects the scheduling
// engine (0 = per-sample reference, 1 = lane-packed corner_transient with
// one sample per SIMD lane).  Both engines draw the same Rng streams, so
// they simulate identical circuits; the ratio of the two rows is the
// cross-instance lane-packing speedup.
void BM_VariabilityBatch(benchmark::State& state) {
  const auto& lib = core::reference_model_library();
  core::VariationSpec spec;
  spec.samples = 8;
  spec.engine = state.range(0) == 0 ? core::VariabilityEngine::kPerSample
                                    : core::VariabilityEngine::kLanePacked;
  core::PpaOptions ppa_opts;
  ppa_opts.newton = bench_newton();
  runtime::Metrics::global().reset();
  std::size_t lockstep = 0;
  for (auto _ : state) {
    const core::VariabilityStats stats = core::run_variability(
        lib, cells::CellType::kXor2, cells::Implementation::kMiv2Channel,
        spec, ppa_opts);
    lockstep = stats.lockstep_groups;
    benchmark::DoNotOptimize(stats.mean_delay);
  }
  const runtime::Metrics& m = runtime::Metrics::global();
  const double runs =
      std::max<double>(1.0, static_cast<double>(state.iterations()));
  state.counters["samples"] = static_cast<double>(spec.samples);
  state.counters["lockstep_groups"] = static_cast<double>(lockstep);
  state.counters["corner_lanes"] =
      m.counter_total("spice.corner.lanes") / runs;
  state.counters["dev_eval"] = m.counter_total("spice.device.evals") / runs;
}
BENCHMARK(BM_VariabilityBatch)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Large generated circuits: the direct-vs-iterative crossover benches CI
// gates on.  Argument 1 selects the linear-solve method (0 = pinned direct
// sparse LU, 1 = kAuto, which routes through the crossover heuristic), so
// the same binary emits both rows and the JSON diff is a pure
// method-vs-method comparison on an identical circuit.  Each bench
// iteration runs a from-scratch operating point (fresh workspace), so the
// direct rows pay the symbolic analysis exactly the way a cold solve does
// and the >= iterative_min_unknowns rows show the analysis being skipped.
spice::NewtonOptions large_circuit_newton(int64_t method) {
  spice::NewtonOptions newton = bench_newton();
  newton.linear_solver = method == 0 ? spice::LinearSolver::kDirect
                                     : spice::LinearSolver::kAuto;
  newton.presolve_lint = false;  // structural gate once at build, not per run
  return newton;
}

void report_solver_counters(benchmark::State& state, std::size_t unknowns) {
  const runtime::Metrics& m = runtime::Metrics::global();
  const double runs =
      std::max<double>(1.0, static_cast<double>(state.iterations()));
  state.counters["unknowns"] = static_cast<double>(unknowns);
  state.counters["iter_solves"] =
      m.counter_total("spice.iterative.solves") / runs;
  state.counters["iter_iters"] =
      m.counter_total("spice.iterative.iterations") / runs;
  state.counters["iter_fallbacks"] =
      m.counter_total("spice.iterative.fallbacks") / runs;
  state.counters["symbolic"] =
      m.counter_total("spice.sparse.symbolic_analyses") / runs;
  state.counters["full_factor"] =
      m.counter_total("spice.sparse.full_factorizations") / runs;
}

// IR-drop mesh: branch-free and value-symmetric, so kAuto runs CG+ILU(0)
// above the crossover.  104x104 is 10816 unknowns (>= the 8192 crossover:
// iterative, no symbolic analysis); 40x40 is 1600 (< the 2048 fill-band
// floor: direct on both rows, the method argument only changes the pin).
void BM_DcopPowerGrid(benchmark::State& state) {
  cells::PowerGridSpec spec;
  spec.rows = static_cast<std::size_t>(state.range(0));
  spec.cols = spec.rows;
  const cells::GeneratedCircuit gen = cells::build_power_grid(spec);
  const spice::NewtonOptions newton = large_circuit_newton(state.range(1));
  runtime::Metrics::global().reset();
  for (auto _ : state) {
    const spice::DcResult r = spice::dc_operating_point(gen.circuit, newton);
    benchmark::DoNotOptimize(r.converged);
  }
  report_solver_counters(state, gen.circuit.system_size());
}
BENCHMARK(BM_DcopPowerGrid)
    ->Args({40, 0})
    ->Args({40, 1})
    ->Args({104, 0})
    ->Args({104, 1})
    ->Args({150, 0})
    ->Args({150, 1})
    ->Unit(benchmark::kMillisecond);

// Kernel-level direct-vs-iterative on the assembled power-grid matrix:
// one cold linear solve, excluding the (method-independent) MNA assembly
// that dominates the end-to-end rows above.  Direct runs the full
// analyze + factorize + solve a cold crossover decision pays; iterative
// runs ILU(0) factorize + preconditioned CG to the production rtol.  This
// is the pair the CI perf gate holds to >= 1.5x at >= 10k unknowns.
void BM_SparseSolveKernel(benchmark::State& state) {
  cells::PowerGridSpec spec;
  spec.rows = static_cast<std::size_t>(state.range(0));
  spec.cols = spec.rows;
  const cells::GeneratedCircuit gen = cells::build_power_grid(spec);
  const spice::Circuit& ckt = gen.circuit;
  const std::size_t n = ckt.system_size();
  const spice::AssemblyPlan plan(ckt);
  std::vector<double> values;
  linalg::Vector x(n, 0.0), f(n, 0.0);
  spice::AssemblyContext ctx;
  ctx.integrator = spice::Integrator::kNone;
  spice::assemble_sparse(ckt, plan, x, ctx, values, f, nullptr, nullptr);
  linalg::Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = -f[i];

  if (state.range(1) == 0) {
    for (auto _ : state) {
      linalg::SparseLU lu;
      lu.analyze(n, plan.row_ptr(), plan.col_idx());
      lu.factorize(values);
      linalg::Vector sol = b;
      lu.solve(sol);
      benchmark::DoNotOptimize(sol.data());
    }
  } else {
    int iters = 0;
    for (auto _ : state) {
      linalg::Ilu0Preconditioner ilu;
      ilu.analyze(n, plan.row_ptr(), plan.col_idx());
      ilu.factorize(values);
      const linalg::CsrView a{n, &plan.row_ptr(), &plan.col_idx(), &values};
      linalg::Vector sol(n, 0.0);
      linalg::IterativeOptions io;
      linalg::KrylovSolver krylov;
      const linalg::IterativeResult r = krylov.cg(a, &ilu, b, sol, io);
      iters = r.iterations;
      benchmark::DoNotOptimize(sol.data());
    }
    state.counters["iter_iters"] = iters;
  }
  state.counters["unknowns"] = static_cast<double>(n);
  state.counters["nnz"] = static_cast<double>(plan.nnz());
}
BENCHMARK(BM_SparseSolveKernel)
    ->Args({104, 0})
    ->Args({104, 1})
    ->Args({150, 0})
    ->Args({150, 1})
    ->Unit(benchmark::kMillisecond);

// MIV-transistor ring oscillator: a general (nonsymmetric, V-source
// driven) MNA system, so the iterative rows exercise BiCGStab and the
// sticky per-regime fallback ladder rather than CG.
void BM_DcopRingOscillator(benchmark::State& state) {
  const auto& lib = core::reference_model_library();
  const core::PpaEngine engine(lib);
  const cells::GeneratedCircuit gen = cells::build_ring_oscillator(
      static_cast<std::size_t>(state.range(0)),
      cells::Implementation::kMiv2Channel,
      engine.model_set(cells::Implementation::kMiv2Channel),
      cells::ParasiticSpec{}, 1.0);
  const spice::NewtonOptions newton = large_circuit_newton(state.range(1));
  runtime::Metrics::global().reset();
  for (auto _ : state) {
    const spice::DcResult r = spice::dc_operating_point(gen.circuit, newton);
    benchmark::DoNotOptimize(r.converged);
  }
  report_solver_counters(state, gen.circuit.system_size());
}
BENCHMARK(BM_DcopRingOscillator)
    ->Args({301, 0})
    ->Args({301, 1})
    ->Unit(benchmark::kMillisecond);

void BM_TcadGummelBiasStep(benchmark::State& state) {
  tcad::DeviceSpec spec = tcad::DeviceSpec::for_variant(
      tcad::Variant::kTraditional, tcad::Polarity::kNmos);
  tcad::DeviceSimulator sim(spec);
  sim.solve(tcad::BiasPoint{0.5, 0.5});  // warm start
  double vg = 0.5;
  bool up = true;
  for (auto _ : state) {
    vg += up ? 0.05 : -0.05;
    if (vg > 0.95 || vg < 0.15) up = !up;
    benchmark::DoNotOptimize(sim.solve(tcad::BiasPoint{vg, 0.5}));
  }
  state.counters["nodes"] =
      static_cast<double>(sim.structure().mesh.num_nodes());
}
BENCHMARK(BM_TcadGummelBiasStep)->Unit(benchmark::kMillisecond);

void BM_ParallelForDispatch(benchmark::State& state) {
  runtime::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  runtime::ThreadPool* p = pool.size() > 1 ? &pool : nullptr;
  std::vector<double> out(1024);
  for (auto _ : state) {
    runtime::parallel_for(p, out.size(), [&](std::size_t i) {
      out[i] = std::sqrt(static_cast<double>(i) + 1.0);
    });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(2)->Arg(4);

void BM_StableHashCard(benchmark::State& state) {
  const std::string text = core::reference_model_library().to_text();
  for (auto _ : state) {
    StableHash h;
    h.mix(text);
    benchmark::DoNotOptimize(h.digest());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_StableHashCard);

void BM_ArtifactCacheGet(benchmark::State& state) {
  runtime::ArtifactCache cache;
  const runtime::CacheKey key{"ppa", 0x1234abcd5678ef00ULL};
  cache.put(key, std::string(4096, 'x'));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(key));
  }
}
BENCHMARK(BM_ArtifactCacheGet);

}  // namespace

int main(int argc, char** argv) {
  // Translate the repo-conventional "--json FILE" and strip the local
  // "--backend=..." / "--metrics" flags before google-benchmark parses the
  // command line.
  bool print_metrics = false;
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.push_back("--benchmark_out=" + std::string(argv[i + 1]));
      args.push_back("--benchmark_out_format=json");
      ++i;
      continue;
    }
    if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      const std::string which = argv[i] + 10;
      if (which == "dense") {
        g_backend = spice::SolverBackend::kDense;
      } else if (which == "sparse") {
        g_backend = spice::SolverBackend::kSparse;
      } else if (which == "auto") {
        g_backend = spice::SolverBackend::kAuto;
      } else {
        std::fprintf(stderr, "unknown --backend value: %s\n", which.c_str());
        return 1;
      }
      continue;
    }
    if (std::strncmp(argv[i], "--device-eval=", 14) == 0) {
      const std::string which = argv[i] + 14;
      if (which == "auto") {
        g_device_eval = spice::DeviceEval::kAuto;
      } else if (which == "scalar") {
        g_device_eval = spice::DeviceEval::kScalar;
      } else if (which == "portable") {
        g_device_eval = spice::DeviceEval::kPortable;
      } else if (which == "simd") {
        g_device_eval = spice::DeviceEval::kSimd;
      } else {
        std::fprintf(stderr, "unknown --device-eval value: %s\n",
                     which.c_str());
        return 1;
      }
      continue;
    }
    if (std::strncmp(argv[i], "--linear-solver=", 16) == 0) {
      const std::string which = argv[i] + 16;
      if (which == "auto") {
        g_linear_solver = spice::LinearSolver::kAuto;
      } else if (which == "direct") {
        g_linear_solver = spice::LinearSolver::kDirect;
      } else if (which == "cg") {
        g_linear_solver = spice::LinearSolver::kCg;
      } else if (which == "bicgstab") {
        g_linear_solver = spice::LinearSolver::kBicgstab;
      } else {
        std::fprintf(stderr, "unknown --linear-solver value: %s\n",
                     which.c_str());
        return 1;
      }
      continue;
    }
    if (std::strcmp(argv[i], "--metrics") == 0) {
      print_metrics = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  std::vector<char*> cargs;
  for (std::string& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (print_metrics)
    std::printf("\n%s", runtime::Metrics::global().render_text().c_str());
  benchmark::Shutdown();
  return 0;
}
