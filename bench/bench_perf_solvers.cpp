// P1 - micro-benchmarks of the numerical kernels (google-benchmark):
// dense/banded LU, compact-model evaluation, MNA assembly + Newton,
// transient stepping, a TCAD Gummel bias step, and the mivtx::runtime
// primitives (thread-pool dispatch, stable hashing, artifact cache).
//
// `--json FILE` is shorthand for --benchmark_out=FILE
// --benchmark_out_format=json (the form CI consumes).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "bsimsoi/model.h"
#include "common/hash.h"
#include "common/rng.h"
#include "core/reference_cards.h"
#include "linalg/banded.h"
#include "linalg/dense.h"
#include "runtime/artifact_cache.h"
#include "runtime/thread_pool.h"
#include "spice/dcop.h"
#include "spice/transient.h"
#include "tcad/characterize.h"

using namespace mivtx;

namespace {

linalg::DenseMatrix random_dense(std::size_t n, Rng& rng) {
  linalg::DenseMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1, 1);
    a(r, r) += 4.0;
  }
  return a;
}

void BM_DenseLU(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const linalg::DenseMatrix a = random_dense(n, rng);
  linalg::Vector b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::DenseLU(a).solve(b));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_DenseLU)->Arg(10)->Arg(30)->Arg(100)->Complexity();

void BM_BandedLU(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t bw = 15;
  Rng rng(2);
  linalg::BandedMatrix a(n, bw, bw);
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t c0 = r > bw ? r - bw : 0;
    const std::size_t c1 = std::min(n - 1, r + bw);
    for (std::size_t c = c0; c <= c1; ++c)
      a.set(r, c, rng.uniform(-1, 1) + (r == c ? 4.0 : 0.0));
  }
  linalg::Vector b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::BandedLU(a).solve(b));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_BandedLU)->Arg(100)->Arg(500)->Arg(2000)->Complexity();

void BM_CompactModelEval(benchmark::State& state) {
  const auto& card = core::reference_model_library().card(
      core::Variant::kMiv2Channel, core::Polarity::kNmos);
  double vg = 0.0;
  for (auto _ : state) {
    vg += 1e-6;
    benchmark::DoNotOptimize(bsimsoi::eval(card, 0.5 + vg, 0.8, 0.0));
  }
}
BENCHMARK(BM_CompactModelEval);

spice::Circuit make_inverter_chain(int stages) {
  const auto& lib = core::reference_model_library();
  const auto nch = lib.card(core::Variant::kTraditional, core::Polarity::kNmos);
  const auto pch = lib.card(core::Variant::kTraditional, core::Polarity::kPmos);
  spice::Circuit ckt;
  const spice::NodeId vdd = ckt.node("vdd");
  ckt.add_vsource("VDD", vdd, spice::kGround, spice::SourceSpec::DC(1.0));
  spice::PulseSpec p;
  p.v1 = 0;
  p.v2 = 1;
  p.delay = 100e-12;
  p.rise = 20e-12;
  p.fall = 20e-12;
  p.width = 300e-12;
  spice::NodeId prev = ckt.node("in");
  ckt.add_vsource("VIN", prev, spice::kGround, spice::SourceSpec::Pulse(p));
  for (int i = 0; i < stages; ++i) {
    const spice::NodeId out = ckt.node("n" + std::to_string(i));
    ckt.add_mosfet("MN" + std::to_string(i), out, prev, spice::kGround, nch);
    ckt.add_mosfet("MP" + std::to_string(i), out, prev, vdd, pch);
    prev = out;
  }
  ckt.add_capacitor("CL", prev, spice::kGround, 1e-15);
  return ckt;
}

void BM_DcOperatingPoint(benchmark::State& state) {
  const spice::Circuit ckt =
      make_inverter_chain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spice::dc_operating_point(ckt));
  }
}
BENCHMARK(BM_DcOperatingPoint)->Arg(1)->Arg(5)->Arg(15);

void BM_TransientInverterChain(benchmark::State& state) {
  const spice::Circuit ckt =
      make_inverter_chain(static_cast<int>(state.range(0)));
  spice::TransientOptions opts;
  opts.t_stop = 6e-10;
  for (auto _ : state) {
    const spice::TransientResult tr = spice::transient(ckt, opts);
    benchmark::DoNotOptimize(tr.accepted_steps);
  }
}
BENCHMARK(BM_TransientInverterChain)->Arg(1)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_TcadGummelBiasStep(benchmark::State& state) {
  tcad::DeviceSpec spec = tcad::DeviceSpec::for_variant(
      tcad::Variant::kTraditional, tcad::Polarity::kNmos);
  tcad::DeviceSimulator sim(spec);
  sim.solve(tcad::BiasPoint{0.5, 0.5});  // warm start
  double vg = 0.5;
  bool up = true;
  for (auto _ : state) {
    vg += up ? 0.05 : -0.05;
    if (vg > 0.95 || vg < 0.15) up = !up;
    benchmark::DoNotOptimize(sim.solve(tcad::BiasPoint{vg, 0.5}));
  }
  state.counters["nodes"] =
      static_cast<double>(sim.structure().mesh.num_nodes());
}
BENCHMARK(BM_TcadGummelBiasStep)->Unit(benchmark::kMillisecond);

void BM_ParallelForDispatch(benchmark::State& state) {
  runtime::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  runtime::ThreadPool* p = pool.size() > 1 ? &pool : nullptr;
  std::vector<double> out(1024);
  for (auto _ : state) {
    runtime::parallel_for(p, out.size(), [&](std::size_t i) {
      out[i] = std::sqrt(static_cast<double>(i) + 1.0);
    });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(2)->Arg(4);

void BM_StableHashCard(benchmark::State& state) {
  const std::string text = core::reference_model_library().to_text();
  for (auto _ : state) {
    StableHash h;
    h.mix(text);
    benchmark::DoNotOptimize(h.digest());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_StableHashCard);

void BM_ArtifactCacheGet(benchmark::State& state) {
  runtime::ArtifactCache cache;
  const runtime::CacheKey key{"ppa", 0x1234abcd5678ef00ULL};
  cache.put(key, std::string(4096, 'x'));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(key));
  }
}
BENCHMARK(BM_ArtifactCacheGet);

}  // namespace

int main(int argc, char** argv) {
  // Translate the repo-conventional "--json FILE" before google-benchmark
  // parses the command line.
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.push_back("--benchmark_out=" + std::string(argv[i + 1]));
      args.push_back("--benchmark_out_format=json");
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  std::vector<char*> cargs;
  for (std::string& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
