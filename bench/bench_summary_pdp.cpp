// Section IV summary - power-delay product and the paper's design-choice
// conclusions (2-channel wins overall: -3% PDP and -18% area).
#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/ppa.h"

using namespace mivtx;

int main(int argc, char** argv) {
  bench::print_header(
      "Section IV summary: power-delay product and overall ranking",
      "2-channel: -3% average PDP and -18% area (overall winner); "
      "4-channel trades delay for the densest layout");

  const bench::ExecSetup exec = bench::exec_setup(argc, argv);
  const core::ModelLibrary lib = bench::load_library(argc, argv, &exec);
  set_log_level(LogLevel::kError);
  core::PpaEngine engine(lib, {}, {}, exec.policy());
  std::printf("[transient-simulating 14 cells x 4 implementations ...]\n\n");
  const std::vector<core::CellPpa> all = engine.measure_all();
  const std::vector<core::ImplementationSummary> sums = core::summarize(all);

  TextTable t({"implementation", "mean delay (ps)", "mean power (uW)",
               "mean PDP (aJ)", "mean area (um^2)", "delta PDP",
               "delta area"});
  const core::ImplementationSummary& base = sums[0];
  for (const core::ImplementationSummary& s : sums) {
    t.add_row({cells::impl_name(s.impl), format("%.2f", s.mean_delay * 1e12),
               format("%.3f", s.mean_power * 1e6),
               format("%.2f", s.mean_pdp * 1e18),
               format("%.4f", s.mean_area * 1e12),
               bench::pct(base.mean_pdp, s.mean_pdp),
               bench::pct(base.mean_area, s.mean_area)});
  }
  t.print();

  std::printf("\npaper's conclusions vs this reproduction:\n");
  std::printf("  * 2-ch PDP delta:   paper -3%%, measured %s\n",
              bench::pct(base.mean_pdp, sums[2].mean_pdp).c_str());
  std::printf("  * 2-ch area delta:  paper -18%%, measured %s\n",
              bench::pct(base.mean_area, sums[2].mean_area).c_str());
  std::printf("  * 4-ch area delta:  paper -12%%, measured %s (delay-traded "
              "density option)\n",
              bench::pct(base.mean_area, sums[3].mean_area).c_str());
  const bool two_ch_wins =
      sums[2].mean_pdp < base.mean_pdp && sums[2].mean_area < base.mean_area;
  std::printf("  * 2-ch overall winner (PDP and area both improve): %s "
              "(paper: yes)\n",
              two_ch_wins ? "yes" : "NO");
  exec.report();
  return 0;
}
