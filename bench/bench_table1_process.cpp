// Table I - process and design parameters, plus the nominal device metrics
// the assumed process yields for each transistor flavor (from the cached
// extracted cards; pass --tcad to re-simulate the devices instead).
#include <cmath>

#include "bench_util.h"
#include "bsimsoi/model.h"
#include "common/strings.h"
#include "common/table.h"
#include "linalg/vector_ops.h"
#include "tcad/characterize.h"

using namespace mivtx;

int main(int argc, char** argv) {
  bench::print_header(
      "Table I: process and design parameters",
      "nominal FDSOI M3D process of the study (values reproduced exactly)");

  core::ProcessParams p;
  TextTable t({"group", "parameter", "description", "value"});
  t.add_row({"Process", "t_Si", "Silicon thickness", eng_format(p.t_si, "m")});
  t.add_row({"", "h_src", "Height of source/drain region",
             eng_format(p.h_src, "m")});
  t.add_row({"", "t_ox", "Thickness of oxide liner", eng_format(p.t_ox, "m")});
  t.add_row({"", "n_src", "Source/Drain doping",
             format("%.0e cm^-3", p.n_src / 1e6)});
  t.add_row({"", "t_spacer", "Spacer thickness", eng_format(p.t_spacer, "m")});
  t.add_row({"", "t_BOX", "Buried oxide thickness", eng_format(p.t_box, "m")});
  t.add_row({"Design", "t_miv", "MIV thickness", eng_format(p.t_miv, "m")});
  t.add_row({"", "l_src", "Length of source/drain region",
             eng_format(p.l_src, "m")});
  t.add_row({"", "w_src", "Width of source/drain region",
             eng_format(p.w_src, "m")});
  t.add_row({"", "L_G", "Length of gate", eng_format(p.l_gate, "m")});
  t.print();

  std::printf("\nNominal device metrics under this process (Vdd = %.1f V):\n",
              p.vdd);
  TextTable d({"device", "|Vth| (V)", "Ion (uA)", "Ioff (pA)", "Ion/Ioff"});

  const bool run_tcad = bench::has_flag(argc, argv, "--tcad");
  for (core::Polarity pol : {core::Polarity::kNmos, core::Polarity::kPmos}) {
    for (core::Variant v : core::all_variants()) {
      double vth = 0.0, ion = 0.0, ioff = 0.0;
      if (run_tcad) {
        tcad::DeviceSimulator sim(core::device_spec(p, v, pol));
        tcad::Characterizer ch(sim);
        vth = ch.vth_cc(p.vdd);
        ion = ch.ion(p.vdd);
        ioff = ch.ioff(p.vdd);
      } else {
        const auto& card = core::reference_model_library().card(v, pol);
        const double s = pol == core::Polarity::kNmos ? 1.0 : -1.0;
        vth = std::fabs(card.vth0);
        ion = std::fabs(bsimsoi::eval(card, s * p.vdd, s * p.vdd, 0.0).ids);
        ioff = std::fabs(bsimsoi::eval(card, 0.0, s * p.vdd, 0.0).ids);
      }
      d.add_row({core::device_key(v, pol), format("%.3f", vth),
                 format("%.2f", ion * 1e6), format("%.2f", ioff * 1e12),
                 format("%.1e", ion / std::max(ioff, 1e-30))});
    }
  }
  d.print();
  std::printf("(metrics from %s; pass --tcad for fresh device simulation)\n",
              run_tcad ? "TCAD simulation" : "cached extracted cards");
  return 0;
}
