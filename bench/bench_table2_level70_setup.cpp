// Table II - Level 70 parameter constants and flags used in extraction.
#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"

using namespace mivtx;

int main(int, char**) {
  bench::print_header(
      "Table II: Level 70 parameter constants and flags used in extraction",
      "fixed card fields shared by every extraction run (values reproduced "
      "exactly)");

  const core::ProcessParams p;
  const bsimsoi::SoiModelCard card =
      core::initial_card(p, core::Variant::kTraditional,
                         core::Polarity::kNmos);

  TextTable t({"parameter", "description", "value"});
  t.add_row({"LEVEL", "Spice model selector", format("%d", card.level)});
  t.add_row({"MOBMOD", "Mobility model selector", format("%d", card.mobmod)});
  t.add_row({"CAPMOD", "Flag for the short channel capacitance model",
             format("%d", card.capmod)});
  t.add_row({"IGCMOD", "Gate-to-channel tunneling current model selector",
             format("%d", card.igcmod)});
  t.add_row({"SOIMOD", "SOI model selector (2 = ideal FD)",
             format("%d", card.soimod)});
  t.add_row({"TSI", "Silicon thickness (m)", format("%.0e", card.tsi)});
  t.add_row({"TOX", "Oxide thickness (m)", format("%.0e", card.tox)});
  t.add_row({"TBOX", "Buried oxide thickness (m)", format("%.0e", card.tbox)});
  t.add_row({"L", "Channel length (m)", format("%.1e", card.l)});
  t.add_row({"W", "Channel width (m)", format("%.3e", card.w)});
  t.add_row({"TNOM", "Nominal temperature (C)", format("%.0f", card.tnom)});
  t.print();

  std::printf(
      "\nNote: the paper pins L to the 48 nm source/drain pitch in Table II; "
      "this\nreproduction pins L to the drawn gate length (24 nm) used by "
      "the TCAD\nstructures so the card geometry matches the simulated "
      "devices.\n");

  std::printf("\nTunable parameter groups per extraction stage (Fig. 3):\n");
  TextTable s({"stage", "target curves", "parameters"});
  s.set_align(2, TextTable::Align::kLeft);
  s.add_row({"1 low-drain", "Id-Vg @ |Vds|=50mV",
             "CDSC U0 UA UB UD UCS DVT0 DVT1 (+NFACTOR)"});
  s.add_row({"2 high-drain", "Id-Vg @ |Vds|=1V, Id-Vd family",
             "CDSC CDSCD U0 UA VTH0 PVAG DVT0 DVT1 ETAB VSAT (+RDSW PCLM)"});
  s.add_row({"3 capacitance", "Cgg-Vg @ Vds=0",
             "CKAPPA DELVT CF CGSO CGDO MOIN CGSL CGDL (+K1B DVTB)"});
  s.add_row({"4 retarget", "Ieff points", "U0 RDSW (exact trim)"});
  s.print();
  return 0;
}
