// Table III - TCAD to Spice extraction errors per region, per device.
//
// Runs the full reproduction of the paper's Fig. 3 flow: TCAD
// characterization of all 8 devices (4 variants x n/p) followed by staged
// Level-70 extraction, then prints the per-region RMS errors in the
// paper's column order (4-channel, 2-channel, 1-channel, Traditional).
//
// Options: --print-cards dumps the extracted .model lines (the source of
// core/reference_cards.cpp).  --jobs N fans the 8 independent devices out
// over N threads; --cache-dir D (or $MIVTX_CACHE_DIR) reuses previously
// computed characteristics and cards; --metrics prints the runtime report.
#include <map>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"

using namespace mivtx;

int main(int argc, char** argv) {
  bench::print_header(
      "Table III: TCAD to Spice extraction results (RMS error per region)",
      "IDVG 3.2-8.5%, IDVD 3.2-7.5%, CV 4.7-9.6%; all regions < 10%");

  const bench::ExecSetup exec = bench::exec_setup(argc, argv);
  set_log_level(LogLevel::kError);
  std::printf("[running TCAD characterization + extraction for 8 devices; "
              "this takes ~40 s cold and serial]\n\n");
  core::FlowOptions fopts;
  fopts.jobs = exec.jobs;
  fopts.cache = exec.cache();
  const double t0 = runtime::wall_seconds();
  const core::FlowResult flow =
      core::run_full_flow(core::ProcessParams{}, {}, {}, fopts);
  const double elapsed = runtime::wall_seconds() - t0;

  // Index results by (variant, polarity).
  std::map<std::string, const core::DeviceExtraction*> by_key;
  for (const core::DeviceExtraction& d : flow.devices)
    by_key[core::device_key(d.variant, d.polarity)] = &d;

  const core::Variant order[] = {
      core::Variant::kMiv4Channel, core::Variant::kMiv2Channel,
      core::Variant::kMiv1Channel, core::Variant::kTraditional};

  TextTable t({"Region", "4-ch n", "4-ch p", "2-ch n", "2-ch p", "1-ch n",
               "1-ch p", "Trad n", "Trad p"});
  auto row = [&](const char* name, auto getter) {
    std::vector<std::string> cells{name};
    for (core::Variant v : order) {
      for (core::Polarity pol :
           {core::Polarity::kNmos, core::Polarity::kPmos}) {
        const auto* d = by_key.at(core::device_key(v, pol));
        cells.push_back(format("%.1f%%", 100.0 * getter(d->report.errors)));
      }
    }
    t.add_row(cells);
  };
  row("IDVG", [](const extract::RegionErrors& e) { return e.idvg; });
  row("IDVD", [](const extract::RegionErrors& e) { return e.idvd; });
  row("CV", [](const extract::RegionErrors& e) { return e.cv; });
  t.print();

  // Fig. 3 trace: the staged methodology for one device.
  std::printf("\nExtraction stage trace (Fig. 3 methodology), nmos_4ch:\n");
  TextTable s({"stage", "parameters", "error before", "error after",
               "evaluations"});
  s.set_align(1, TextTable::Align::kLeft);
  for (const auto& st : by_key.at("nmos_4ch")->report.stages) {
    std::string params;
    for (const auto& p : st.parameters) params += p + " ";
    s.add_row({st.name, params, format("%.4f", st.error_before),
               format("%.4f", st.error_after), format("%zu", st.evaluations)});
  }
  s.print();

  bool all_under_10 = true;
  for (const auto& d : flow.devices) {
    all_under_10 &= d.report.errors.idvg < 0.10 &&
                    d.report.errors.idvd < 0.10 && d.report.errors.cv < 0.10;
  }
  std::printf("\nresult: all regions under 10%%: %s (paper: yes)\n",
              all_under_10 ? "yes" : "NO");

  if (bench::has_flag(argc, argv, "--print-cards")) {
    std::printf("\nExtracted model cards:\n%s",
                flow.library.to_text().c_str());
  }

  std::printf("\n[flow wall time: %.2f s with --jobs %zu]\n", elapsed,
              exec.jobs);
  exec.report();
  return 0;
}
