// Shared helpers for the reproduction benches.
//
// Every bench regenerates one table or figure of the paper (see DESIGN.md's
// experiment index) and prints the paper's reported numbers next to the
// measured ones.  PPA benches default to the cached reference model cards
// (core/reference_cards.h); pass --extract to re-run the full TCAD +
// extraction flow first (tens of seconds).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "common/log.h"
#include "core/flow.h"
#include "core/reference_cards.h"

namespace mivtx::bench {

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

inline void print_header(const char* experiment, const char* paper_claim) {
  std::printf("\n=== %s ===\n", experiment);
  std::printf("paper: %s\n\n", paper_claim);
}

// Model library for PPA benches: cached cards, or a fresh extraction run
// when --extract is passed.
inline core::ModelLibrary load_library(int argc, char** argv) {
  if (has_flag(argc, argv, "--extract")) {
    std::printf("[re-running TCAD characterization + extraction ...]\n");
    set_log_level(LogLevel::kError);
    return core::run_full_flow(core::ProcessParams{}).library;
  }
  return core::reference_model_library();
}

inline std::string pct(double baseline, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%",
                100.0 * (value - baseline) / baseline);
  return buf;
}

}  // namespace mivtx::bench
