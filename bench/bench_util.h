// Shared helpers for the reproduction benches.
//
// Every bench regenerates one table or figure of the paper (see DESIGN.md's
// experiment index) and prints the paper's reported numbers next to the
// measured ones.  PPA benches default to the cached reference model cards
// (core/reference_cards.h); pass --extract to re-run the full TCAD +
// extraction flow first (tens of seconds).
// Execution flags shared by the heavier benches (see DESIGN.md "Runtime"):
//   --jobs N       worker threads (0 = hardware concurrency, default 1);
//                  results are bit-identical for any value
//   --cache-dir D  persistent artifact cache (default: $MIVTX_CACHE_DIR);
//                  a warm cache skips TCAD/extraction/transients entirely.
//                  Safe to share one directory between concurrent benches:
//                  disk writes go through per-process temp files + atomic
//                  rename (runtime/artifact_cache.cpp)
//   --metrics      print the counter/timer report on exit
//   --trace-out F  record hierarchical spans and write Chrome trace-event
//                  JSON to F on exit (open in Perfetto / about://tracing);
//                  also prints the span-path summary table
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/log.h"
#include "core/flow.h"
#include "core/reference_cards.h"
#include "runtime/artifact_cache.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"
#include "trace/trace.h"

namespace mivtx::bench {

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

// Value of "--flag VALUE"; nullptr when absent.
inline const char* flag_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

inline void print_header(const char* experiment, const char* paper_claim) {
  std::printf("\n=== %s ===\n", experiment);
  std::printf("paper: %s\n\n", paper_claim);
}

// Parsed execution flags plus the objects they configure.  Build one at the
// top of main(), pass `exec.pool()` / `exec.cache()` down, call
// `exec.report()` at the end.
struct ExecSetup {
  std::size_t jobs = 1;
  std::unique_ptr<runtime::ThreadPool> pool_storage;
  std::unique_ptr<runtime::ArtifactCache> cache_storage;
  bool metrics = false;
  std::string trace_out;  // empty = tracing off

  runtime::ThreadPool* pool() const {
    return pool_storage != nullptr && pool_storage->size() > 1
               ? pool_storage.get()
               : nullptr;
  }
  runtime::ArtifactCache* cache() const { return cache_storage.get(); }
  runtime::ExecPolicy policy() const { return {pool(), cache()}; }

  // Cache hit rate + optional metrics dump, printed after the work.
  void report() const {
    if (cache_storage != nullptr) {
      const runtime::CacheStats s = cache_storage->stats();
      std::printf("\n[cache: %llu hits / %llu misses (%.0f%% hit rate), "
                  "%llu stored, %llu from disk, %llu corrupt]\n",
                  static_cast<unsigned long long>(s.hits),
                  static_cast<unsigned long long>(s.misses),
                  100.0 * s.hit_rate(),
                  static_cast<unsigned long long>(s.stores),
                  static_cast<unsigned long long>(s.disk_hits),
                  static_cast<unsigned long long>(s.corrupt));
    }
    if (metrics) {
      std::printf("\n%s", runtime::Metrics::global().render_text().c_str());
    }
    if (!trace_out.empty()) {
      trace::Tracer& tracer = trace::Tracer::global();
      tracer.stop();
      if (tracer.write_chrome_json(trace_out)) {
        std::printf("\n[trace: %zu spans -> %s", tracer.event_count(),
                    trace_out.c_str());
        if (tracer.dropped_events() > 0) {
          std::printf(", %zu dropped", tracer.dropped_events());
        }
        std::printf("]\n%s", tracer.render_summary().c_str());
      } else {
        std::printf("\n[trace: failed to write %s]\n", trace_out.c_str());
      }
    }
  }
};

inline ExecSetup exec_setup(int argc, char** argv) {
  ExecSetup exec;
  if (const char* jobs = flag_value(argc, argv, "--jobs")) {
    exec.jobs = static_cast<std::size_t>(std::strtoul(jobs, nullptr, 10));
  }
  exec.pool_storage = std::make_unique<runtime::ThreadPool>(exec.jobs);
  std::string dir = runtime::ArtifactCache::env_disk_dir();
  if (const char* flag = flag_value(argc, argv, "--cache-dir")) dir = flag;
  if (!dir.empty()) {
    runtime::ArtifactCache::Options copts;
    copts.disk_dir = dir;
    exec.cache_storage = std::make_unique<runtime::ArtifactCache>(copts);
    std::printf("[artifact cache: %s]\n", dir.c_str());
  }
  exec.metrics = has_flag(argc, argv, "--metrics");
  if (const char* out = flag_value(argc, argv, "--trace-out")) {
    exec.trace_out = out;
    trace::Tracer::global().start();
  }
  if (exec.pool() != nullptr) {
    std::printf("[%zu worker threads]\n", exec.pool_storage->size());
  }
  return exec;
}

// Model library for PPA benches: cached cards, or a fresh extraction run
// when --extract is passed.
inline core::ModelLibrary load_library(int argc, char** argv,
                                       const ExecSetup* exec = nullptr) {
  if (has_flag(argc, argv, "--extract")) {
    std::printf("[re-running TCAD characterization + extraction ...]\n");
    set_log_level(LogLevel::kError);
    core::FlowOptions fopts;
    if (exec != nullptr) {
      fopts.jobs = exec->jobs;
      fopts.cache = exec->cache();
    }
    return core::run_full_flow(core::ProcessParams{}, {}, {}, fopts).library;
  }
  return core::reference_model_library();
}

inline std::string pct(double baseline, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%",
                100.0 * (value - baseline) / baseline);
  return buf;
}

}  // namespace mivtx::bench
