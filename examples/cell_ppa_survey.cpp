// Library-level PPA survey: rank the 14 cells by how much each gains from
// the MIV-transistor implementations, and print the per-arc timing detail
// the averaged Fig. 5 numbers hide.
//
// Usage: cell_ppa_survey [CELLNAME] [--jobs N] [--metrics] [--trace-out F]
//   without a cell name: survey of all 14 cells (runs ~1 min of transients
//   serially; --jobs fans the 56 measurements and their pin arcs out over
//   N worker threads with bit-identical results)
//   with a cell name (e.g. XOR2X1): per-arc report for that cell
//   --metrics: print the runtime counter/timer report on exit
//   --trace-out F: record hierarchical spans (per-cell / per-pin /
//   per-solver, nested across worker threads) and write Chrome trace-event
//   JSON to F; open in Perfetto or about://tracing
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/log.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/ppa.h"
#include "core/reference_cards.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"
#include "trace/trace.h"

using namespace mivtx;

namespace {

int per_cell_report(const char* name) {
  const cells::CellType* found = nullptr;
  for (const cells::CellType& t : cells::all_cells()) {
    if (equals_ci(cells::cell_name(t), name)) found = &t;
  }
  if (!found) {
    std::printf("unknown cell '%s'; choose one of:", name);
    for (cells::CellType t : cells::all_cells())
      std::printf(" %s", cells::cell_name(t));
    std::printf("\n");
    return 1;
  }
  core::PpaEngine engine(core::reference_model_library());
  std::printf("Per-arc timing for %s:\n\n", cells::cell_name(*found));
  for (cells::Implementation impl : cells::all_implementations()) {
    const core::CellPpa ppa = engine.measure(*found, impl);
    std::printf("%s implementation (avg %.2f ps, %.3f uW, %.4f um^2):\n",
                cells::impl_name(impl), ppa.delay * 1e12, ppa.power * 1e6,
                ppa.area * 1e12);
    TextTable t({"pin", "input edge", "delay (ps)"});
    for (const core::ArcMeasurement& arc : ppa.arcs) {
      t.add_row({arc.pin, arc.input_rising ? "rise" : "fall",
                 format("%.2f", arc.delay * 1e12)});
    }
    t.print();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kError);
  std::size_t jobs = 1;
  bool metrics = false;
  const char* cell = nullptr;
  const char* trace_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      cell = argv[i];
    }
  }
  if (trace_out != nullptr) trace::Tracer::global().start();
  if (cell != nullptr) return per_cell_report(cell);

  runtime::ThreadPool pool(jobs);
  runtime::ExecPolicy exec;
  exec.pool = pool.size() > 1 ? &pool : nullptr;
  core::PpaEngine engine(core::reference_model_library(), {}, {}, exec);
  std::printf("[measuring 14 cells x 4 implementations%s ...]\n\n",
              exec.pool != nullptr
                  ? format(" on %zu threads", pool.size()).c_str()
                  : "");
  const std::vector<core::CellPpa> all = engine.measure_all();

  struct Gain {
    cells::CellType type;
    double pdp_gain;   // 2-ch PDP vs 2D
    double area_gain;  // 2-ch area vs 2D
  };
  std::vector<Gain> gains;
  for (cells::CellType type : cells::all_cells()) {
    double pdp[4] = {0, 0, 0, 0}, area[4] = {0, 0, 0, 0};
    for (const core::CellPpa& c : all) {
      if (c.type != type || !c.ok) continue;
      pdp[static_cast<int>(c.impl)] = c.pdp;
      area[static_cast<int>(c.impl)] = c.area;
    }
    gains.push_back({type, (pdp[2] - pdp[0]) / pdp[0],
                     (area[2] - area[0]) / area[0]});
  }
  std::sort(gains.begin(), gains.end(), [](const Gain& a, const Gain& b) {
    return a.pdp_gain < b.pdp_gain;
  });

  std::printf("Cells ranked by 2-channel PDP improvement over 2D:\n");
  TextTable t({"rank", "cell", "2-ch PDP delta", "2-ch area delta"});
  int rank = 1;
  for (const Gain& g : gains) {
    t.add_row({format("%d", rank++), cells::cell_name(g.type),
               format("%+.1f%%", 100 * g.pdp_gain),
               format("%+.1f%%", 100 * g.area_gain)});
  }
  t.print();
  std::printf("\n(run `cell_ppa_survey XOR2X1` for a per-arc breakdown)\n");
  if (metrics) {
    std::printf("\n%s", runtime::Metrics::global().render_text().c_str());
  }
  if (trace_out != nullptr) {
    trace::Tracer& tracer = trace::Tracer::global();
    tracer.stop();
    if (tracer.write_chrome_json(trace_out)) {
      std::printf("\n[trace: %zu spans -> %s", tracer.event_count(),
                  trace_out);
      if (tracer.dropped_events() > 0)
        std::printf(", %zu dropped", tracer.dropped_events());
      std::printf("]\n%s", tracer.render_summary().c_str());
    } else {
      std::printf("\n[trace: failed to write %s]\n", trace_out);
    }
  }
  return 0;
}
