// End-to-end single-device walkthrough of the paper's methodology on the
// INV1X1 cell: TCAD characterization -> staged Level-70 extraction ->
// netlist construction -> transient waveforms.
//
// This is the Fig. 3 flow on one device, with the intermediate artifacts
// printed so each hand-off is visible.  Runs fresh TCAD (~8 s).
#include <cstdio>

#include "cells/netgen.h"
#include "common/log.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/flow.h"
#include "core/reference_cards.h"
#include "spice/transient.h"
#include "waveform/measure.h"

using namespace mivtx;

int main() {
  set_log_level(LogLevel::kError);
  const core::ProcessParams proc;
  const extract::SweepGrid grid;

  // --- TCAD characterization (the "measurement") ---------------------------
  std::printf("== 1. TCAD characterization: 1-channel MIV-transistor ==\n");
  const extract::CharacteristicSet n_data = core::characterize_device(
      proc, core::Variant::kMiv1Channel, core::Polarity::kNmos, grid);
  std::printf("   idvg(low/high), %zu-curve idvd family, cv: done\n",
              n_data.idvd.size());

  // --- Staged extraction ----------------------------------------------------
  std::printf("\n== 2. Staged Level-70 extraction (Fig. 3) ==\n");
  const extract::ExtractionReport n_rep = extract::extract_card(
      n_data,
      core::initial_card(proc, core::Variant::kMiv1Channel,
                         core::Polarity::kNmos));
  TextTable st({"stage", "error before", "error after"});
  for (const auto& s : n_rep.stages)
    st.add_row({s.name, format("%.4f", s.error_before),
                format("%.4f", s.error_after)});
  st.print();
  std::printf("region errors: IDVG %.1f%%  IDVD %.1f%%  CV %.1f%%\n",
              100 * n_rep.errors.idvg, 100 * n_rep.errors.idvd,
              100 * n_rep.errors.cv);

  // --- Cell netlist ---------------------------------------------------------
  std::printf("\n== 3. INV1X1 netlist (1-channel implementation) ==\n");
  cells::ModelSet models;
  models.nmos = n_rep.card;
  models.pmos = core::reference_model_library().card(
      core::Variant::kTraditional, core::Polarity::kPmos);
  cells::CellNetlist cell =
      cells::build_cell(cells::CellType::kInv1,
                        cells::Implementation::kMiv1Channel, models,
                        cells::ParasiticSpec{}, proc.vdd);
  std::printf("%s", cells::to_netlist_text(cell).c_str());

  // --- Transient -------------------------------------------------------------
  std::printf("\n== 4. Transient: pulse on A, waveforms at the output ==\n");
  spice::PulseSpec pu;
  pu.v1 = 0.0;
  pu.v2 = proc.vdd;
  pu.delay = 200e-12;
  pu.rise = 20e-12;
  pu.fall = 20e-12;
  pu.width = 500e-12;
  cell.circuit.element("VA").source = spice::SourceSpec::Pulse(pu);
  spice::TransientOptions topt;
  topt.t_stop = 1.4e-9;
  topt.h_max = 10e-12;
  const spice::TransientResult tr = spice::transient(cell.circuit, topt);
  if (!tr.ok) {
    std::printf("transient failed: %s\n", tr.error.c_str());
    return 1;
  }
  TextTable w({"t (ps)", "V(A) (V)", "V(out) (V)", "I(VDD) (uA)"});
  for (double t = 0.0; t <= 1.4e-9 + 1e-15; t += 1e-10) {
    w.add_row({format("%.0f", t * 1e12),
               format("%.3f", tr.v("a_in").sample(t)),
               format("%.3f", tr.v(cell.output_node).sample(t)),
               format("%+.2f", tr.i("VDD").sample(t) * 1e6)});
  }
  w.print();

  const auto tphl = waveform::propagation_delay(
      tr.v("a_in"), tr.v(cell.output_node), proc.vdd / 2, proc.vdd / 2, 0.0,
      waveform::EdgeKind::kRise, waveform::EdgeKind::kFall);
  const auto tplh = waveform::propagation_delay(
      tr.v("a_in"), tr.v(cell.output_node), proc.vdd / 2, proc.vdd / 2,
      7e-10, waveform::EdgeKind::kFall, waveform::EdgeKind::kRise);
  std::printf("\ntpHL = %s, tpLH = %s, avg VDD power = %s\n",
              eng_format(tphl.value_or(0), "s").c_str(),
              eng_format(tplh.value_or(0), "s").c_str(),
              eng_format(-proc.vdd * tr.i("VDD").average(0, topt.t_stop), "W")
                  .c_str());
  return 0;
}
