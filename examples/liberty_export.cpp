// Export the measured cell library as simplified Liberty (.lib) files, one
// per implementation - the artifact a downstream synthesis/STA script
// would consume.
//
// Usage: liberty_export [output_dir]   (default: current directory)
// Writes mivtx_2D.lib, mivtx_1_ch.lib, mivtx_2_ch.lib, mivtx_4_ch.lib.
#include <cstdio>
#include <fstream>

#include "common/log.h"
#include "core/liberty.h"
#include "core/reference_cards.h"

using namespace mivtx;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";
  set_log_level(LogLevel::kError);

  std::printf("[measuring the timing model (transient PPA, ~1 min) ...]\n");
  const gatelevel::TimingModel timing =
      core::build_timing_model(core::reference_model_library());

  for (cells::Implementation impl : cells::all_implementations()) {
    const std::string lib = core::export_liberty(timing, impl);
    std::string tag = cells::impl_name(impl);
    for (char& c : tag) {
      if (c == '-') c = '_';
    }
    const std::string path = dir + "/mivtx_" + tag + ".lib";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << lib;
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), lib.size());
  }

  // Show a snippet so the run is self-explanatory.
  const std::string sample = core::export_liberty(
      timing, cells::Implementation::kMiv2Channel);
  std::printf("\nsnippet of mivtx_2_ch.lib:\n%.*s...\n", 1200,
              sample.c_str());
  return 0;
}
