// lint_netlist - static analyzer for SPICE netlists over mivtx::lint.
//
// Parses each netlist and runs the full rule set (solvability, connectivity
// and declaration hygiene; see DESIGN.md for the rule catalog).  Parse
// failures are reported as `parse-error` diagnostics rather than aborting
// the run, so a directory sweep sees every bad file.
//
// Usage: lint_netlist [options] <netlist.sp>...
//   --json             machine-readable output (one JSON document per file)
//   --suppress <rule>  drop findings of a rule id (repeatable)
//   --no-solve-check   skip the pre-solve singularity rules
//   --quiet            only print files with findings
//
// Exit status: 0 all files clean (warnings allowed), 1 any error-severity
// finding, 2 usage or I/O problem.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "lint/circuit_rules.h"
#include "spice/parser.h"

using namespace mivtx;

int main(int argc, char** argv) {
  bool json = false;
  bool quiet = false;
  lint::CircuitLintOptions opts;
  std::vector<std::string> suppressed;
  std::vector<const char*> files;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--no-solve-check") == 0) {
      opts.solvability = false;
    } else if (std::strcmp(argv[i], "--suppress") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--suppress needs a rule id\n");
        return 2;
      }
      suppressed.push_back(argv[++i]);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: lint_netlist [--json] [--quiet] [--suppress <rule>] "
                 "[--no-solve-check] <netlist.sp>...\n");
    return 2;
  }

  bool any_errors = false;
  for (const char* path : files) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 2;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();

    lint::DiagnosticSink sink;
    for (const std::string& rule : suppressed) sink.suppress(rule);

    spice::ParsedNetlist parsed;
    bool parsed_ok = true;
    try {
      parsed = spice::parse_netlist(buffer.str());
    } catch (const Error& e) {
      parsed_ok = false;
      sink.error("parse-error", e.what());
    }
    if (parsed_ok) lint::lint_netlist(parsed, sink, opts);

    any_errors = any_errors || sink.has_errors();
    if (json) {
      std::printf("{\"file\":\"%s\",\"report\":%s}\n", path,
                  sink.render_json().c_str());
    } else if (!quiet || !sink.diagnostics().empty()) {
      std::printf("%s: %zu error(s), %zu warning(s)\n", path,
                  sink.num_errors(), sink.num_warnings());
      std::fputs(sink.render_text().c_str(), stdout);
    }
  }
  return any_errors ? 1 : 0;
}
