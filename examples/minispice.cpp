// minispice - a small command-line circuit simulator over the mivtx SPICE
// engine.  Reads a netlist file, executes its dot-directives, and prints
// result tables.
//
// Supported directives:
//   .op                                  DC operating point
//   .dc <vsrc> <start> <stop> <step>     DC sweep of a voltage source
//   .tran <print_step> <t_stop>          transient (BDF2), sampled table
//   .ac dec <pts/decade> <f1> <f2> [src] AC sweep (default: first V source)
//
// Usage: minispice [--linear-solver=auto|direct|cg|bicgstab] <netlist.sp>
// --linear-solver pins the sparse-tier linear-solve method for every
// analysis in the deck (default auto: direct LU below the iterative
// crossover, preconditioned Krylov above it).
// Example netlists live in examples/netlists/.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"
#include "common/table.h"
#include "spice/ac.h"
#include "spice/parser.h"
#include "spice/transient.h"

using namespace mivtx;
using namespace mivtx::spice;

namespace {

LinearSolver g_linear_solver = LinearSolver::kAuto;

NewtonOptions cli_newton() {
  NewtonOptions opts;
  opts.linear_solver = g_linear_solver;
  return opts;
}

std::vector<std::string> sorted_signal_nodes(const Circuit& ckt) {
  std::vector<std::string> nodes;
  for (NodeId n = 1; n < ckt.num_nodes(); ++n)
    nodes.push_back(ckt.node_name(n));
  return nodes;
}

void run_op(const Circuit& ckt) {
  const DcResult r = dc_operating_point(ckt, cli_newton());
  if (!r.converged) {
    std::printf(".op: FAILED to converge\n");
    return;
  }
  std::printf(".op (strategy: %s)\n", r.strategy.c_str());
  TextTable t({"node", "voltage (V)"});
  for (const std::string& n : sorted_signal_nodes(ckt)) {
    t.add_row({n, format("%.6g", solution_voltage(ckt, r.x, ckt.find_node(n)))});
  }
  for (const Element& e : ckt.elements()) {
    if (e.kind == ElementKind::kVoltageSource) {
      t.add_row({"I(" + e.name + ")",
                 format("%.6g A", r.x[ckt.branch_unknown(e)])});
    }
  }
  t.print();
}

void run_dc(Circuit ckt, const std::vector<std::string>& arg) {
  MIVTX_EXPECT(arg.size() >= 5, ".dc needs: src start stop step");
  const std::string src = arg[1];
  const double start = parse_spice_number(arg[2]);
  const double stop = parse_spice_number(arg[3]);
  const double step = parse_spice_number(arg[4]);
  MIVTX_EXPECT(step > 0.0 && stop >= start, ".dc: bad sweep range");
  std::vector<double> values;
  for (double v = start; v <= stop + 0.5 * step; v += step)
    values.push_back(v);
  const DcSweepResult sweep = dc_sweep(ckt, src, values, cli_newton());
  if (!sweep.converged) {
    std::printf(".dc: FAILED to converge\n");
    return;
  }
  std::printf(".dc %s %g -> %g\n", src.c_str(), start, stop);
  const auto nodes = sorted_signal_nodes(ckt);
  std::vector<std::string> hdr{src};
  for (const auto& n : nodes) hdr.push_back("V(" + n + ")");
  TextTable t(hdr);
  for (std::size_t k = 0; k < sweep.sweep_values.size(); ++k) {
    std::vector<std::string> row{format("%.4g", sweep.sweep_values[k])};
    for (const auto& n : nodes) {
      row.push_back(format(
          "%.5g", solution_voltage(ckt, sweep.solutions[k], ckt.find_node(n))));
    }
    t.add_row(row);
  }
  t.print();
}

void run_tran(const Circuit& ckt, const std::vector<std::string>& arg) {
  MIVTX_EXPECT(arg.size() >= 3, ".tran needs: print_step t_stop");
  const double print_step = parse_spice_number(arg[1]);
  const double t_stop = parse_spice_number(arg[2]);
  TransientOptions opts;
  opts.t_stop = t_stop;
  opts.newton = cli_newton();
  const TransientResult tr = transient(ckt, opts);
  if (!tr.ok) {
    std::printf(".tran: FAILED (%s)\n", tr.error.c_str());
    return;
  }
  std::printf(".tran to %s (%zu accepted steps)\n",
              eng_format(t_stop, "s").c_str(), tr.accepted_steps);
  const auto nodes = sorted_signal_nodes(ckt);
  std::vector<std::string> hdr{"t"};
  for (const auto& n : nodes) hdr.push_back("V(" + n + ")");
  TextTable t(hdr);
  for (double time = 0.0; time <= t_stop * (1 + 1e-12); time += print_step) {
    std::vector<std::string> row{eng_format(time, "s", 2)};
    for (const auto& n : nodes)
      row.push_back(format("%.5g", tr.v(n).sample(time)));
    t.add_row(row);
  }
  t.print();
}

void run_ac(const Circuit& ckt, const std::vector<std::string>& arg) {
  MIVTX_EXPECT(arg.size() >= 5 && equals_ci(arg[1], "dec"),
               ".ac needs: dec pts f_start f_stop [src]");
  const std::size_t pts = static_cast<std::size_t>(parse_spice_number(arg[2]));
  const double f1 = parse_spice_number(arg[3]);
  const double f2 = parse_spice_number(arg[4]);
  std::string src;
  if (arg.size() > 5) {
    src = arg[5];
  } else {
    for (const Element& e : ckt.elements()) {
      if (e.kind == ElementKind::kVoltageSource) {
        src = e.name;
        break;
      }
    }
  }
  MIVTX_EXPECT(!src.empty(), ".ac: no voltage source to drive");
  const auto freqs = log_frequency_grid(f1, f2, pts);
  const AcResult ac = ac_analysis(ckt, src, freqs);
  if (!ac.ok) {
    std::printf(".ac: FAILED (%s)\n", ac.error.c_str());
    return;
  }
  std::printf(".ac dec %zu %s -> %s (stimulus: %s)\n", pts,
              eng_format(f1, "Hz").c_str(), eng_format(f2, "Hz").c_str(),
              src.c_str());
  const auto nodes = sorted_signal_nodes(ckt);
  std::vector<std::string> hdr{"f"};
  for (const auto& n : nodes) {
    hdr.push_back("|V(" + n + ")|");
    hdr.push_back("ph(" + n + ") deg");
  }
  TextTable t(hdr);
  for (std::size_t k = 0; k < freqs.size(); ++k) {
    std::vector<std::string> row{eng_format(freqs[k], "Hz", 2)};
    for (const auto& n : nodes) {
      row.push_back(format("%.4g", ac.magnitude(n, k)));
      row.push_back(format("%.1f", ac.phase(n, k) * 180.0 / M_PI));
    }
    t.add_row(row);
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--linear-solver=", 16) == 0) {
      const std::string which = argv[i] + 16;
      if (which == "auto") {
        g_linear_solver = LinearSolver::kAuto;
      } else if (which == "direct") {
        g_linear_solver = LinearSolver::kDirect;
      } else if (which == "cg") {
        g_linear_solver = LinearSolver::kCg;
      } else if (which == "bicgstab") {
        g_linear_solver = LinearSolver::kBicgstab;
      } else {
        std::fprintf(stderr, "unknown --linear-solver value: %s\n",
                     which.c_str());
        return 2;
      }
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: minispice [--linear-solver=auto|direct|cg|bicgstab] "
                 "<netlist.sp>\n"
                 "see examples/netlists/ for samples\n");
    return 2;
  }
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 2;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  try {
    const ParsedNetlist parsed = parse_netlist(buffer.str());
    std::printf("* %s\n", parsed.title.c_str());
    if (parsed.directives.empty()) {
      std::printf("(no directives; running .op)\n");
      run_op(parsed.circuit);
      return 0;
    }
    for (const std::string& d : parsed.directives) {
      const auto arg = split(d, " \t");
      std::printf("\n");
      if (equals_ci(arg[0], ".op")) {
        run_op(parsed.circuit);
      } else if (equals_ci(arg[0], ".dc")) {
        run_dc(parsed.circuit, arg);
      } else if (equals_ci(arg[0], ".tran")) {
        run_tran(parsed.circuit, arg);
      } else if (equals_ci(arg[0], ".ac")) {
        run_ac(parsed.circuit, arg);
      } else {
        std::printf("(ignoring directive: %s)\n", d.c_str());
      }
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
