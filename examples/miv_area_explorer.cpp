// Design-space exploration of the area model: how the MIV-transistor
// advantage responds to the device width, the keep-out rule, and the cell
// inventory - the what-if questions the paper's future-work section poses
// about per-tier placement.
//
// Usage: miv_area_explorer [w_nm]   (default 192)
#include <cstdio>
#include <cstdlib>

#include "cells/celltypes.h"
#include "common/strings.h"
#include "common/table.h"
#include "layout/cell_layout.h"

using namespace mivtx;

namespace {

// Average cell/substrate area per implementation over all 14 cells.
struct Averages {
  double cell[4] = {0, 0, 0, 0};
  double substrate[4] = {0, 0, 0, 0};
};

Averages survey(const layout::DesignRules& rules) {
  const layout::LayoutModel model(rules);
  Averages avg;
  for (cells::CellType t : cells::all_cells()) {
    int k = 0;
    for (cells::Implementation impl : cells::all_implementations()) {
      const layout::CellLayout l = model.layout_cell(t, impl);
      avg.cell[k] += l.cell_area() / 14.0;
      avg.substrate[k] += l.substrate_area() / 14.0;
      ++k;
    }
  }
  return avg;
}

std::string pct(double base, double v) {
  return format("%+.1f%%", 100.0 * (v - base) / base);
}

}  // namespace

int main(int argc, char** argv) {
  const double w_nm = argc > 1 ? std::atof(argv[1]) : 192.0;

  std::printf("MIV-transistor area advantage explorer (w_src = %.0f nm)\n\n",
              w_nm);

  // --- Sweep 1: device width ------------------------------------------------
  std::printf("1. Device width sweep (all other rules nominal):\n");
  TextTable t1({"w_src", "avg 2D (um^2)", "1-ch", "2-ch", "4-ch"});
  for (double w : {96e-9, 144e-9, 192e-9, 288e-9, 384e-9}) {
    layout::DesignRules r;
    r.device_width = w;
    const Averages a = survey(r);
    t1.add_row({eng_format(w, "m", 0), format("%.4f", a.cell[0] * 1e12),
                pct(a.cell[0], a.cell[1]), pct(a.cell[0], a.cell[2]),
                pct(a.cell[0], a.cell[3])});
  }
  t1.print();
  std::printf("(wider devices dilute the fixed via overheads -> the MIV "
              "advantage shrinks)\n\n");

  // --- Sweep 2: MIV size -----------------------------------------------------
  std::printf("2. MIV size sweep (paper nominal 25 nm):\n");
  TextTable t2({"t_miv", "keep-out edge", "1-ch", "2-ch", "4-ch"});
  for (double miv : {15e-9, 25e-9, 40e-9, 60e-9}) {
    layout::DesignRules r;
    r.device_width = w_nm * 1e-9;
    r.miv_size = miv;
    const Averages a = survey(r);
    t2.add_row({eng_format(miv, "m", 0),
                eng_format(r.miv_keepout_edge(), "m", 0),
                pct(a.cell[0], a.cell[1]), pct(a.cell[0], a.cell[2]),
                pct(a.cell[0], a.cell[3])});
  }
  t2.print();
  std::printf("(bigger vias punish the 2D implementation, widening the "
              "MIV-transistor win)\n\n");

  // --- Sweep 3: substrate view (the future-work claim) -----------------------
  std::printf("3. Substrate-area view (per-tier placement, paper future "
              "work):\n");
  layout::DesignRules r;
  r.device_width = w_nm * 1e-9;
  const Averages a = survey(r);
  TextTable t3({"metric", "2D", "1-ch", "2-ch", "4-ch"});
  t3.add_row({"avg cell area (um^2)", format("%.4f", a.cell[0] * 1e12),
              pct(a.cell[0], a.cell[1]), pct(a.cell[0], a.cell[2]),
              pct(a.cell[0], a.cell[3])});
  t3.add_row({"avg substrate area (um^2)",
              format("%.4f", a.substrate[0] * 1e12),
              pct(a.substrate[0], a.substrate[1]),
              pct(a.substrate[0], a.substrate[2]),
              pct(a.substrate[0], a.substrate[3])});
  t3.print();
  std::printf("(substrate area ignores the max() tier-alignment constraint; "
              "separate per-tier\nplacement would bank these larger savings, "
              "as the paper's section IV argues)\n");
  return 0;
}
