// mivtx_analyze - whole-design static analyzer CLI (mivtx::analyze).
//
// Runs the multi-pass analyzer over gate-level designs (.gnl files or the
// built-in benchmark generators) and the SPICE lint rules over .sp files,
// and feeds every finding through the unified diagnostics pipeline:
// severity config, suppressions, baselines, deterministic ordering and
// text/JSON/SARIF renderers (see DESIGN.md section 12).
//
// Usage: mivtx_analyze [options] [<design.gnl|netlist.sp>...]
//   --circuit <name>       analyze a built-in generated block (repeatable):
//                          rca<N>, alu<N>, decoder<N>, parity<N>, mux<N>, aoi
//   --impl 2d|1ch|2ch|4ch  cell implementation variant (default: 2d)
//   --place coupled|per-tier  place the block and run the tier/MIV rules
//   --clock <seconds>      required time at the outputs; negative-slack
//                          endpoints become `timing-violation` errors
//   --input-slew <seconds> transition time at the primary inputs
//   --paths <n>            worst paths to report in text mode (default 5)
//   --no-sta               skip the timing pass
//   --max-fanout <n>       electrical rule threshold (default 8)
//   --max-load-cap <F>     electrical rule threshold (default 20e-15)
//   --severity-config <f>  severity remaps / suppressions (pipeline.h)
//   --baseline <f>         gate only on findings not in the baseline
//   --write-baseline <f>   write current findings as the new baseline
//   --format text|json|sarif  stdout report format (default: text)
//   --sarif <f>            additionally write a SARIF 2.1.0 file
//   --quiet                suppress the per-design timing summary
//
// Exit status: 0 clean (warnings allowed), 1 any error-severity finding
// outside the baseline, 2 usage or I/O problem.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/pipeline.h"
#include "common/error.h"
#include "common/strings.h"
#include "lint/circuit_rules.h"
#include "spice/parser.h"

using namespace mivtx;

namespace {

constexpr const char* kVersion = "0.6";

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) return std::nullopt;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

// "rca16" -> ripple_carry_adder(16), etc.  Returns nullopt for an unknown
// name so the caller can print the catalog.
std::optional<gatelevel::GateNetlist> builtin_circuit(const std::string& name) {
  auto suffix_bits = [&](const char* prefix) -> std::optional<std::size_t> {
    const std::size_t n = std::strlen(prefix);
    if (name.compare(0, n, prefix) != 0 || name.size() == n)
      return std::nullopt;
    char* end = nullptr;
    const unsigned long bits = std::strtoul(name.c_str() + n, &end, 10);
    if (end == nullptr || *end != '\0' || bits == 0) return std::nullopt;
    return static_cast<std::size_t>(bits);
  };
  try {
    if (name == "aoi") return gatelevel::aoi_block();
    if (auto bits = suffix_bits("rca"))
      return gatelevel::ripple_carry_adder(*bits);
    if (auto bits = suffix_bits("alu")) return gatelevel::alu_block(*bits);
    if (auto bits = suffix_bits("decoder")) return gatelevel::decoder(*bits);
    if (auto bits = suffix_bits("parity")) return gatelevel::parity_tree(*bits);
    if (auto bits = suffix_bits("mux")) return gatelevel::mux_tree(*bits);
  } catch (const Error& e) {
    std::fprintf(stderr, "cannot build circuit %s: %s\n", name.c_str(),
                 e.what());
    return std::nullopt;
  }
  return std::nullopt;
}

void print_sta_summary(const std::string& label,
                       const analyze::SlackStaResult& sta) {
  std::printf("%s: worst slack %s at %s (worst arrival %s)\n", label.c_str(),
              eng_format(sta.worst_slack, "s").c_str(),
              sta.worst_endpoint.c_str(),
              eng_format(sta.worst_arrival, "s").c_str());
  for (const analyze::TimingPath& path : sta.paths) {
    std::printf("  path to %s: arrival %s, slack %s\n", path.endpoint.c_str(),
                eng_format(path.arrival, "s").c_str(),
                eng_format(path.slack, "s").c_str());
    for (const analyze::PathPoint& p : path.points) {
      std::printf("    %-24s %-16s arrival %s\n",
                  p.instance.empty() ? "(input)" : p.instance.c_str(),
                  p.net.c_str(), eng_format(p.arrival, "s").c_str());
    }
  }
}

int usage() {
  std::fprintf(
      stderr,
      "usage: mivtx_analyze [options] [<design.gnl|netlist.sp>...]\n"
      "  --circuit <name>        built-in block: rca<N>, alu<N>, decoder<N>,\n"
      "                          parity<N>, mux<N>, aoi (repeatable)\n"
      "  --impl 2d|1ch|2ch|4ch   implementation variant (default 2d)\n"
      "  --place coupled|per-tier  run placement + tier/MIV rules\n"
      "  --clock <s>  --input-slew <s>  --paths <n>  --no-sta\n"
      "  --max-fanout <n>  --max-load-cap <F>\n"
      "  --severity-config <f>  --baseline <f>  --write-baseline <f>\n"
      "  --format text|json|sarif  --sarif <f>  --quiet\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  analyze::AnalyzeOptions options;
  std::vector<std::string> files;
  std::vector<std::string> circuits;
  std::string format_name = "text";
  std::string sarif_path, severity_path, baseline_path, write_baseline_path;
  bool quiet = false;

  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s needs a value\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--circuit") {
      circuits.push_back(value(i));
    } else if (arg == "--impl") {
      const std::string impl = value(i);
      if (impl == "2d") {
        options.impl = cells::Implementation::k2D;
      } else if (impl == "1ch") {
        options.impl = cells::Implementation::kMiv1Channel;
      } else if (impl == "2ch") {
        options.impl = cells::Implementation::kMiv2Channel;
      } else if (impl == "4ch") {
        options.impl = cells::Implementation::kMiv4Channel;
      } else {
        std::fprintf(stderr, "unknown --impl %s\n", impl.c_str());
        return 2;
      }
    } else if (arg == "--place") {
      const std::string mode = value(i);
      if (mode == "coupled") {
        options.place_mode = place::Mode::kCoupled;
      } else if (mode == "per-tier") {
        options.place_mode = place::Mode::kPerTier;
      } else {
        std::fprintf(stderr, "unknown --place %s\n", mode.c_str());
        return 2;
      }
    } else if (arg == "--clock") {
      options.sta.clock_period = std::atof(value(i));
    } else if (arg == "--input-slew") {
      options.sta.input_slew = std::atof(value(i));
    } else if (arg == "--paths") {
      options.sta.worst_paths = static_cast<std::size_t>(std::atoi(value(i)));
    } else if (arg == "--no-sta") {
      options.run_sta = false;
    } else if (arg == "--max-fanout") {
      options.electrical.max_fanout =
          static_cast<std::size_t>(std::atoi(value(i)));
    } else if (arg == "--max-load-cap") {
      options.electrical.max_load_cap = std::atof(value(i));
    } else if (arg == "--severity-config") {
      severity_path = value(i);
    } else if (arg == "--baseline") {
      baseline_path = value(i);
    } else if (arg == "--write-baseline") {
      write_baseline_path = value(i);
    } else if (arg == "--format") {
      format_name = value(i);
      if (format_name != "text" && format_name != "json" &&
          format_name != "sarif") {
        std::fprintf(stderr, "unknown --format %s\n", format_name.c_str());
        return 2;
      }
    } else if (arg == "--sarif") {
      sarif_path = value(i);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() && circuits.empty()) return usage();

  analyze::SeverityConfig config;
  if (!severity_path.empty()) {
    const auto text = read_file(severity_path);
    if (!text) {
      std::fprintf(stderr, "cannot open %s\n", severity_path.c_str());
      return 2;
    }
    try {
      config = analyze::SeverityConfig::parse(*text);
    } catch (const Error& e) {
      std::fprintf(stderr, "%s: %s\n", severity_path.c_str(), e.what());
      return 2;
    }
  }

  const gatelevel::TimingModel timing = analyze::default_timing_model();
  std::vector<lint::Diagnostic> findings;

  auto analyze_one = [&](const analyze::Design& design) {
    const analyze::AnalyzeReport report =
        analyze::analyze_design(design, timing, options);
    findings.insert(findings.end(), report.findings.begin(),
                    report.findings.end());
    if (!quiet && format_name == "text" && report.sta)
      print_sta_summary(design.source.empty() ? design.name : design.source,
                        *report.sta);
  };

  for (const std::string& name : circuits) {
    const auto netlist = builtin_circuit(name);
    if (!netlist) {
      std::fprintf(stderr, "unknown --circuit %s\n", name.c_str());
      return usage();
    }
    analyze::Design design = analyze::design_from_netlist(*netlist);
    design.source = "circuit:" + name;
    analyze_one(design);
  }

  for (const std::string& path : files) {
    const auto text = read_file(path);
    if (!text) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    if (ends_with(path, ".sp") || ends_with(path, ".cir") ||
        ends_with(path, ".spice")) {
      // SPICE netlists go through the mivtx::lint rules; the pipeline
      // (ordering, severity config, baseline, renderers) is shared.
      lint::DiagnosticSink sink;
      sink.set_default_file(path);
      try {
        const spice::ParsedNetlist parsed = spice::parse_netlist(*text);
        lint::lint_netlist(parsed, sink);
        findings.insert(findings.end(), sink.diagnostics().begin(),
                        sink.diagnostics().end());
      } catch (const Error& e) {
        lint::Diagnostic d;
        d.severity = lint::Severity::kError;
        d.rule = "parse-error";
        d.message = e.what();
        d.file = path;
        findings.push_back(d);
      }
    } else {
      lint::DiagnosticSink sink;
      sink.set_default_file(path);
      analyze::Design design = analyze::parse_design(*text, sink);
      design.source = path;
      findings.insert(findings.end(), sink.diagnostics().begin(),
                      sink.diagnostics().end());
      analyze_one(design);
    }
  }

  findings = config.apply(findings);
  lint::sort_diagnostics(findings);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", write_baseline_path.c_str());
      return 2;
    }
    out << analyze::Baseline::serialize(findings);
  }

  std::vector<lint::Diagnostic> gated = findings;
  if (!baseline_path.empty()) {
    const auto text = read_file(baseline_path);
    if (!text) {
      std::fprintf(stderr, "cannot open %s\n", baseline_path.c_str());
      return 2;
    }
    gated = analyze::Baseline::parse(*text).new_findings(findings);
  }

  if (format_name == "json") {
    std::printf("%s\n", lint::render_json(gated).c_str());
  } else if (format_name == "sarif") {
    std::printf("%s\n",
                analyze::render_sarif(gated, "mivtx_analyze", kVersion).c_str());
  } else if (!gated.empty()) {
    std::printf("%s", lint::render_text(gated).c_str());
  } else if (!quiet) {
    std::printf("clean: no findings%s\n",
                baseline_path.empty() ? "" : " outside the baseline");
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", sarif_path.c_str());
      return 2;
    }
    out << analyze::render_sarif(gated, "mivtx_analyze", kVersion);
  }

  const auto worst = analyze::max_severity(gated);
  return (worst && *worst == lint::Severity::kError) ? 1 : 0;
}
