// mivtx_blockppa - block-level M3D PPA driver (ROADMAP item 4).
//
// Characterizes the cells a benchmark netlist uses into an NLDM library
// (or loads a pre-characterized .mlib), maps the netlist onto it, runs the
// dual-edge library STA plus tier-aware placement, and reports
// design-level delay/power/area for 2D vs 1-/2-/4-channel MIV-transistor
// implementations — the paper's Fig. 5 claims carried to whole designs.
//
// Usage: mivtx_blockppa [options] [<design.gnl>...]
//   --circuit <name>       built-in block (repeatable): rca<N>, alu<N>,
//                          decoder<N>, parity<N>, mux<N>, aoi,
//                          random<N>[:seed]
//   --impls <list>         comma list of 2d,1ch,2ch,4ch (default: all)
//   --library <f.mlib>     use a pre-characterized library (skips the
//                          transient sweeps entirely)
//   --write-library <f>    write the characterized library
//   --grid mini|default    characterization grid (2x2 or 3x3)
//   --place coupled|per-tier  placement mode (default per-tier)
//   --clock <s>            required time; negative slack fails the run
//   --input-slew <s>       primary-input transition (default 20 ps)
//   --cache-dir <dir>      artifact cache (flow + characterization);
//                          also honors $MIVTX_CACHE_DIR
//   --jobs <n>             worker threads (default 1)
//   --quiet                suppress the metrics footer
//
// The footer prints the charlib cache counters
// (computed/cache_hit/transients) — CI greps them to assert a warm cache
// re-run characterizes nothing.
//
// Exit status: 0 ok, 1 negative slack or missing library timing,
// 2 usage/IO problem.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/blockppa.h"
#include "analyze/design.h"
#include "charlib/characterize.h"
#include "common/error.h"
#include "common/log.h"
#include "common/strings.h"
#include "core/flow.h"
#include "lint/diagnostics.h"
#include "runtime/artifact_cache.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"

using namespace mivtx;

namespace {

struct Args {
  std::vector<std::string> circuits;
  std::vector<std::string> gnl_files;
  std::vector<cells::Implementation> impls;
  std::string library_file;
  std::string write_library;
  std::string grid = "default";
  place::Mode place_mode = place::Mode::kPerTier;
  double clock = 0.0;
  double input_slew = 20e-12;
  std::string cache_dir;
  std::size_t jobs = 1;
  bool quiet = false;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: mivtx_blockppa [options] [<design.gnl>...]\n"
      "  --circuit <name>       rca<N>, alu<N>, decoder<N>, parity<N>,\n"
      "                         mux<N>, aoi, random<N>[:seed] (repeatable)\n"
      "  --impls <list>         comma list of 2d,1ch,2ch,4ch (default all)\n"
      "  --library <f.mlib>     load a pre-characterized library\n"
      "  --write-library <f>    write the characterized library\n"
      "  --grid mini|default    characterization grid\n"
      "  --place coupled|per-tier   placement mode (default per-tier)\n"
      "  --clock <s>  --input-slew <s>  --cache-dir <dir>  --jobs <n>\n"
      "  --quiet\n");
  return 2;
}

std::optional<gatelevel::GateNetlist> builtin_circuit(const std::string& name) {
  auto suffix_num = [&](const char* prefix,
                        std::string* rest =
                            nullptr) -> std::optional<std::size_t> {
    const std::size_t n = std::strlen(prefix);
    if (name.compare(0, n, prefix) != 0 || name.size() == n)
      return std::nullopt;
    char* end = nullptr;
    const unsigned long v = std::strtoul(name.c_str() + n, &end, 10);
    if (end == nullptr || v == 0) return std::nullopt;
    if (*end != '\0') {
      if (rest == nullptr) return std::nullopt;
      *rest = end;
    } else if (rest != nullptr) {
      rest->clear();
    }
    return static_cast<std::size_t>(v);
  };
  try {
    if (name == "aoi") return gatelevel::aoi_block();
    if (auto bits = suffix_num("rca"))
      return gatelevel::ripple_carry_adder(*bits);
    if (auto bits = suffix_num("alu")) return gatelevel::alu_block(*bits);
    if (auto bits = suffix_num("decoder")) return gatelevel::decoder(*bits);
    if (auto bits = suffix_num("parity"))
      return gatelevel::parity_tree(*bits);
    if (auto bits = suffix_num("mux")) return gatelevel::mux_tree(*bits);
    std::string rest;
    if (auto gates = suffix_num("random", &rest)) {
      std::uint64_t seed = 1;
      if (!rest.empty()) {
        if (rest[0] != ':') return std::nullopt;
        seed = std::strtoull(rest.c_str() + 1, nullptr, 10);
      }
      return gatelevel::random_logic_block(*gates, seed);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "cannot build circuit %s: %s\n", name.c_str(),
                 e.what());
  }
  return std::nullopt;
}

std::optional<gatelevel::GateNetlist> load_gnl(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  lint::DiagnosticSink sink;
  const analyze::Design design = analyze::parse_design(buffer.str(), sink);
  if (sink.num_errors() > 0) {
    std::fprintf(stderr, "%s: design has errors:\n%s", path.c_str(),
                 sink.render_text().c_str());
    return std::nullopt;
  }
  auto netlist = analyze::to_gate_netlist(design);
  if (!netlist)
    std::fprintf(stderr, "%s: design violates netlist invariants\n",
                 path.c_str());
  return netlist;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (a == "--circuit") args.circuits.push_back(value());
      else if (a == "--impls") {
        for (const std::string& tag : split(value(), ","))
          args.impls.push_back(charlib::impl_from_tag(tag));
      } else if (a == "--library") args.library_file = value();
      else if (a == "--write-library") args.write_library = value();
      else if (a == "--grid") args.grid = value();
      else if (a == "--place") {
        const std::string v = value();
        if (v == "coupled") args.place_mode = place::Mode::kCoupled;
        else if (v == "per-tier") args.place_mode = place::Mode::kPerTier;
        else return usage();
      } else if (a == "--clock") args.clock = parse_double(value());
      else if (a == "--input-slew") args.input_slew = parse_double(value());
      else if (a == "--cache-dir") args.cache_dir = value();
      else if (a == "--jobs") args.jobs = std::stoul(value());
      else if (a == "--quiet") args.quiet = true;
      else if (a == "--help" || a == "-h") return usage();
      else if (!a.empty() && a[0] == '-') return usage();
      else args.gnl_files.push_back(a);
    } catch (const Error& e) {
      std::fprintf(stderr, "bad argument for %s: %s\n", a.c_str(), e.what());
      return 2;
    }
  }
  if (args.circuits.empty() && args.gnl_files.empty()) {
    args.circuits.push_back("rca16");
  }
  if (args.grid != "mini" && args.grid != "default") return usage();

  std::vector<gatelevel::GateNetlist> designs;
  for (const std::string& name : args.circuits) {
    auto netlist = builtin_circuit(name);
    if (!netlist) {
      std::fprintf(stderr, "unknown circuit %s\n", name.c_str());
      return 2;
    }
    designs.push_back(std::move(*netlist));
  }
  for (const std::string& path : args.gnl_files) {
    auto netlist = load_gnl(path);
    if (!netlist) return 2;
    designs.push_back(std::move(*netlist));
  }

  try {
    runtime::ThreadPool pool(args.jobs);
    runtime::ArtifactCache::Options copts;
    copts.disk_dir = !args.cache_dir.empty()
                         ? args.cache_dir
                         : runtime::ArtifactCache::env_disk_dir();
    runtime::ArtifactCache cache(copts);
    runtime::ExecPolicy exec{&pool, &cache};

    // The library: loaded, or characterized for exactly the cells the
    // designs use.
    charlib::CharLibrary library;
    if (!args.library_file.empty()) {
      std::ifstream file(args.library_file);
      if (!file) {
        std::fprintf(stderr, "cannot read %s\n", args.library_file.c_str());
        return 2;
      }
      std::stringstream buffer;
      buffer << file.rdbuf();
      library = charlib::CharLibrary::from_text(buffer.str());
    } else {
      core::FlowOptions fopts;
      fopts.jobs = args.jobs;
      fopts.cache = &cache;
      const core::FlowResult flow =
          core::run_full_flow(core::ProcessParams{}, {}, {}, fopts);

      charlib::CharOptions chopts;
      chopts.grid = args.grid == "mini" ? charlib::mini_char_grid()
                                        : charlib::default_char_grid();
      const charlib::Characterizer characterizer(flow.library, chopts, {},
                                                 exec);
      std::vector<std::pair<cells::CellType, cells::Implementation>> jobs;
      {
        std::set<std::pair<cells::CellType, cells::Implementation>> seen;
        for (const gatelevel::GateNetlist& d : designs)
          for (const auto& job : analyze::library_jobs(d, args.impls))
            if (seen.insert(job).second) jobs.push_back(job);
      }
      library = characterizer.characterize(jobs);
    }

    if (!args.write_library.empty()) {
      std::ofstream out(args.write_library);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n",
                     args.write_library.c_str());
        return 2;
      }
      out << library.to_text();
    }

    analyze::BlockPpaOptions bopts;
    bopts.impls = args.impls;
    bopts.sta.clock_period = args.clock;
    bopts.sta.input_slew = args.input_slew;
    bopts.place_mode = args.place_mode;

    bool failed = false;
    for (const gatelevel::GateNetlist& design : designs) {
      const analyze::BlockPpaReport report =
          analyze::run_block_ppa(design, library, bopts);
      std::fputs(analyze::render_block_ppa(report).c_str(), stdout);
      for (const analyze::BlockImplPpa& row : report.rows) {
        if (row.missing_arcs > 0) {
          std::fprintf(stderr,
                       "%s/%s: %zu library holes (missing-timing)\n",
                       report.design.c_str(), charlib::impl_tag(row.impl),
                       row.missing_arcs);
          failed = true;
        }
        if (args.clock > 0.0 && row.delay > args.clock) {
          std::fprintf(stderr, "%s/%s: delay %s exceeds clock %s\n",
                       report.design.c_str(), charlib::impl_tag(row.impl),
                       eng_format(row.delay, "s").c_str(),
                       eng_format(args.clock, "s").c_str());
          failed = true;
        }
      }
    }

    if (!args.quiet) {
      const runtime::Metrics& m = runtime::Metrics::global();
      std::printf(
          "charlib: computed %.0f, cache hits %.0f, transients %.0f\n",
          m.counter_total("charlib.computed"),
          m.counter_total("charlib.cache_hit"),
          m.counter_total("charlib.transients"));
    }
    return failed ? 1 : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
