// mivtx_client - scripting client for the mivtx_serve daemon.
//
// Builds one protocol request from flags, sends it, prints the typed
// response.  The default output is a human summary (status, source,
// timings, meta); --json prints the raw response line for pipelines and
// --payload-out saves the artifact text (which is byte-identical to what
// the same unit computed locally would serialize).
//
// Usage: mivtx_client [options] <kind>
//   kind: curves | extract | flow | ppa | charlib | health | metrics |
//         shutdown
//   --host <ip>            server address (default 127.0.0.1)
//   --port <n>             server port (default 7633)
//   --id <s>               correlation id (default "cli")
//   --variant trad|1ch|2ch|4ch     device for curves/extract
//   --polarity nmos|pmos           device for curves/extract
//   --cell <NAME>          cell for ppa/charlib (INV1X1, NAND2X1, ...)
//   --impl 2d|1ch|2ch|4ch  implementation for ppa/charlib (default 2d)
//   --reference            ppa: use the checked-in nominal cards instead of
//                          deriving the library through the flow
//   --char-grid mini|default   charlib: NLDM grid preset (default 3x3)
//   --vdd <V> --tnom-c <C> --l-gate <m> --t-miv <m>   corner overrides
//   --grid-n <n>           sweep-grid points per axis
//   --nm-max-evals <n>     extraction budget (smaller = faster, coarser)
//   --no-lm-polish --no-ieff-retarget                 extraction stages
//   --repeat <n>           send the request n times over one connection
//                          sequentially, reporting each latency (warm-cache
//                          timing runs)
//   --json                 print raw response JSON lines
//   --payload-out <f>      write the (last) payload to <f>
//
// Exit: 0 response ok; 1 server answered error/queue_full/draining;
//       2 usage or connection problem.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/error.h"
#include "common/strings.h"
#include "serve/client.h"

using namespace mivtx;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] "
               "curves|extract|flow|ppa|charlib|health|metrics|shutdown\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7633;
  std::string payload_out;
  bool raw_json = false;
  std::size_t repeat = 1;
  serve::Request req;
  req.id = "cli";
  bool have_kind = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      MIVTX_EXPECT(i + 1 < argc, "missing value after " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--host") {
        host = next();
      } else if (arg == "--port") {
        port = static_cast<int>(parse_double(next()));
      } else if (arg == "--id") {
        req.id = next();
      } else if (arg == "--variant") {
        req.variant = serve::variant_from_token(next());
      } else if (arg == "--polarity") {
        req.polarity = serve::polarity_from_token(next());
      } else if (arg == "--cell") {
        req.cell = serve::cell_from_token(next());
      } else if (arg == "--impl") {
        req.impl = serve::impl_from_token(next());
      } else if (arg == "--reference") {
        req.reference_library = true;
      } else if (arg == "--char-grid") {
        req.char_grid = next();
      } else if (arg == "--vdd") {
        req.process.vdd = parse_double(next());
        req.grid.vdd = req.process.vdd;
      } else if (arg == "--tnom-c") {
        req.process.tnom_c = parse_double(next());
      } else if (arg == "--l-gate") {
        req.process.l_gate = parse_double(next());
      } else if (arg == "--t-miv") {
        req.process.t_miv = parse_double(next());
      } else if (arg == "--grid-n") {
        const std::size_t n = static_cast<std::size_t>(parse_double(next()));
        req.grid.n_vg = req.grid.n_vd = req.grid.n_cv = n;
      } else if (arg == "--nm-max-evals") {
        req.extraction.nm.max_evaluations =
            static_cast<std::size_t>(parse_double(next()));
      } else if (arg == "--no-lm-polish") {
        req.extraction.run_lm_polish = false;
      } else if (arg == "--no-ieff-retarget") {
        req.extraction.run_ieff_retarget = false;
      } else if (arg == "--repeat") {
        repeat = static_cast<std::size_t>(parse_double(next()));
      } else if (arg == "--json") {
        raw_json = true;
      } else if (arg == "--payload-out") {
        payload_out = next();
      } else if (!arg.empty() && arg[0] != '-') {
        req.kind = serve::kind_from_name(arg);
        have_kind = true;
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mivtx_client: %s\n", e.what());
      return 2;
    }
  }
  if (!have_kind) return usage(argv[0]);
  if (repeat == 0) repeat = 1;

  try {
    serve::Client client(host, port);
    serve::Response resp;
    for (std::size_t n = 0; n < repeat; ++n) {
      resp = client.call(req);
      if (raw_json) {
        std::printf("%s\n", resp.to_json_line().c_str());
      } else {
        std::printf("%-10s %s", serve::kind_name(req.kind),
                    serve::status_name(resp.status));
        if (!resp.source.empty()) std::printf(" (%s)", resp.source.c_str());
        if (resp.elapsed_s > 0.0) std::printf("  %.6f s", resp.elapsed_s);
        if (resp.queue_s > 0.0) std::printf("  +%.6f s queued", resp.queue_s);
        if (!resp.payload.empty())
          std::printf("  payload %zu bytes", resp.payload.size());
        std::printf("\n");
        if (!resp.error.empty())
          std::printf("  error: %s\n", resp.error.c_str());
        if (!resp.meta_json.empty())
          std::printf("  meta: %s\n", resp.meta_json.c_str());
      }
    }
    if (!payload_out.empty()) {
      std::FILE* f = std::fopen(payload_out.c_str(), "w");
      MIVTX_EXPECT(f != nullptr, "cannot write " + payload_out);
      std::fwrite(resp.payload.data(), 1, resp.payload.size(), f);
      std::fclose(f);
    }
    return resp.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mivtx_client: %s\n", e.what());
    return 2;
  }
}
