// mivtx_serve - characterization-as-a-service daemon (mivtx::serve).
//
// Boots the request server on loopback TCP and serves characterization
// units (device curves, extractions, full flows, cell PPA) to any number
// of clients from one warm process: a shared artifact cache (memory LRU +
// optional bounded disk layer) plus single-flight coalescing of identical
// concurrent requests.  Protocol: one JSON object per line, both ways
// (src/serve/protocol.h); `curl http://127.0.0.1:<port>/healthz` and
// `/metrics` also answer for quick probes.
//
// Usage: mivtx_serve [options]
//   --host <ip>            bind address (default 127.0.0.1)
//   --port <n>             listen port; 0 = pick an ephemeral port
//                          (default 7633)
//   --port-file <f>        write the bound port to <f> (for scripts that
//                          pass --port 0)
//   --workers <n>          request worker threads (default 4)
//   --queue <n>            admission-queue capacity; beyond it clients get
//                          a typed "queue_full" response (default 64)
//   --jobs <n>             flow fan-out width per request, 0 = hardware
//                          concurrency (default 0)
//   --cache-dir <dir>      on-disk artifact cache (default $MIVTX_CACHE_DIR,
//                          empty = memory-only)
//   --cache-max-bytes <n>  disk-cache budget; oldest unpinned artifacts are
//                          garbage-collected past it (default 0 = unbounded)
//   --cache-entries <n>    in-memory LRU capacity (default 512)
//   --quiet                warnings only (default narrates requests)
//
// SIGINT/SIGTERM drain gracefully: stop accepting, finish and flush every
// admitted request, dump final metrics, exit 0.  A client "shutdown"
// request does the same.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <string>
#include <thread>

#include "common/error.h"
#include "common/log.h"
#include "common/strings.h"
#include "serve/server.h"

using namespace mivtx;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [options]  (see header comment)\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions opts;
  opts.port = 7633;
  opts.workers = 4;
  opts.service.cache.disk_dir = runtime::ArtifactCache::env_disk_dir();
  std::string port_file;
  set_log_level(LogLevel::kInfo);

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      MIVTX_EXPECT(i + 1 < argc, "missing value after " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--host") {
        opts.host = next();
      } else if (arg == "--port") {
        opts.port = static_cast<int>(parse_double(next()));
      } else if (arg == "--port-file") {
        port_file = next();
      } else if (arg == "--workers") {
        opts.workers = static_cast<std::size_t>(parse_double(next()));
      } else if (arg == "--queue") {
        opts.queue_capacity = static_cast<std::size_t>(parse_double(next()));
      } else if (arg == "--jobs") {
        opts.service.jobs = static_cast<std::size_t>(parse_double(next()));
      } else if (arg == "--cache-dir") {
        opts.service.cache.disk_dir = next();
      } else if (arg == "--cache-max-bytes") {
        opts.service.cache.max_disk_bytes =
            static_cast<std::uint64_t>(parse_double(next()));
      } else if (arg == "--cache-entries") {
        opts.service.cache.max_entries =
            static_cast<std::size_t>(parse_double(next()));
      } else if (arg == "--quiet") {
        set_log_level(LogLevel::kWarn);
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mivtx_serve: %s\n", e.what());
      return 2;
    }
  }

  // Block the shutdown signals before any thread exists so every thread
  // inherits the mask; a dedicated thread polls for them and triggers the
  // drain.  No async-signal-unsafe work ever runs in signal context.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  try {
    serve::Server server(opts);
    server.start();
    std::printf("mivtx_serve: listening on %s:%d\n", opts.host.c_str(),
                server.port());
    std::fflush(stdout);
    if (!port_file.empty()) {
      std::FILE* f = std::fopen(port_file.c_str(), "w");
      MIVTX_EXPECT(f != nullptr, "cannot write port file " + port_file);
      std::fprintf(f, "%d\n", server.port());
      std::fclose(f);
    }

    std::atomic<bool> done{false};
    std::thread signal_thread([&] {
      const timespec tick{0, 200 * 1000 * 1000};
      while (!done.load()) {
        const int signo = sigtimedwait(&sigs, nullptr, &tick);
        if (signo > 0) {
          MIVTX_INFO << "serve: received signal " << signo << ", draining";
          server.begin_shutdown();
          return;
        }
      }
    });

    server.wait();  // returns after a signal or a protocol shutdown drains
    done.store(true);
    signal_thread.join();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mivtx_serve: %s\n", e.what());
    return 2;
  }
  return 0;
}
