// mivtx_verify — differential, property-based and golden-baseline
// verification CLI.  See TESTING.md for the full workflow.
//
//   mivtx_verify --diff [netlist.sp ...]   solver-matrix differential over
//                                          the cell corpus (no files) or
//                                          the given netlists
//                --ppa-diff                1-vs-N threads / cold-vs-warm
//                                          cache bit-identity on the PPA
//                                          engine
//                --props                   property engine
//                --golden                  check tests/golden baselines
//                --refresh-goldens         rewrite baselines (with --golden)
//
// Exit status: 0 = everything requested passed, 1 = a verification failed,
// 2 = usage / IO error.
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/strings.h"
#include "core/reference_cards.h"
#include "runtime/thread_pool.h"
#include "verify/differential.h"
#include "verify/golden.h"
#include "verify/json.h"
#include "verify/properties.h"

namespace fs = std::filesystem;
using namespace mivtx;

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " MODE [options] [netlist.sp ...]\n"
      << "modes (at least one):\n"
      << "  --diff              differential solver-matrix verification over\n"
      << "                      the 14x4 cell corpus, or over the given\n"
      << "                      netlist files\n"
      << "  --diff-large        direct-LU vs iterative (CG/BiCGStab) over the\n"
      << "                      generated large-circuit corpus (power grid,\n"
      << "                      adder array, ring oscillator)\n"
      << "  --ppa-diff          bit-identity of the PPA engine across 1-vs-N\n"
      << "                      threads and cold-vs-warm artifact cache\n"
      << "  --props             property-based engine invariants\n"
      << "  --golden            compare paper metrics against checked-in\n"
      << "                      baselines\n"
      << "options:\n"
      << "  --tol X             differential tolerance (default 1e-9)\n"
      << "  --scale N           multiply the --diff-large circuit sizes\n"
      << "  --jobs N            worker threads for case fan-out (default 1)\n"
      << "  --max-cells N       limit --ppa-diff to the first N cells\n"
      << "  --seed S            property RNG seed (default 20230913)\n"
      << "  --cases N           property instances per check (default 12)\n"
      << "  --golden-dir DIR    baseline directory (default tests/golden)\n"
      << "  --suites a,b        golden suites (default: all five)\n"
      << "  --refresh-goldens   write baselines instead of checking them\n"
      << "  --git-sha SHA       provenance stamp for refreshed baselines\n"
      << "  --json              machine-readable report on stdout\n"
      << "  --verbose           per-comparison detail\n";
  return 2;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error(format("cannot read %s", path.string().c_str()));
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Args {
  bool diff = false, diff_large = false, ppa_diff = false, props = false;
  bool golden = false;
  bool refresh = false, json = false, verbose = false;
  // With --json, stdout carries only the machine report; the human-readable
  // narration moves to stderr so `mivtx_verify --json | jq` just works.
  std::ostream& log() const { return json ? std::cerr : std::cout; }
  double tol = 1e-9;
  std::size_t scale = 1;
  std::size_t jobs = 1;
  std::size_t max_cells = 0;
  std::uint64_t seed = 20230913;
  std::size_t cases = 12;
  std::string golden_dir = "tests/golden";
  std::string git_sha;
  std::vector<std::string> suites;
  std::vector<std::string> files;
};

bool run_diff(const Args& args, verify::Json& out) {
  std::vector<verify::DiffCase> cases;
  if (args.files.empty()) {
    cases = verify::cell_corpus(core::reference_model_library());
  } else {
    for (const std::string& f : args.files)
      cases.push_back(
          verify::netlist_case(fs::path(f).filename().string(), read_file(f)));
  }
  runtime::ThreadPool pool(args.jobs);
  verify::DiffOptions opts;
  opts.tolerance = args.tol;
  opts.pool = pool.size() > 1 ? &pool : nullptr;
  const verify::DiffReport report = verify::run_differential(cases, opts);

  args.log() << format(
      "diff: %zu cases, %zu comparisons, %zu failures, worst divergence "
      "%.3e (%s)\n",
      report.cases, report.comparisons, report.failures,
      report.worst_divergence,
      report.worst_case.empty() ? "-" : report.worst_case.c_str());
  for (const verify::CaseConfigReport& r : report.reports)
    if (args.verbose || !r.ok) args.log() << "  " << r.summary() << "\n";

  verify::Json j = verify::Json::object();
  j.set("pass", verify::Json::boolean(report.pass));
  j.set("cases", verify::Json::number(static_cast<double>(report.cases)));
  j.set("comparisons",
        verify::Json::number(static_cast<double>(report.comparisons)));
  j.set("failures", verify::Json::number(static_cast<double>(report.failures)));
  j.set("worst_divergence", verify::Json::number(report.worst_divergence));
  j.set("worst_case", verify::Json::string(report.worst_case));
  out.set("diff", std::move(j));
  return report.pass;
}

bool run_diff_large(const Args& args, verify::Json& out) {
  const core::ModelLibrary library = core::reference_model_library();
  const std::size_t s = args.scale ? args.scale : 1;
  // The power grid assembles a symmetric Jacobian, so its matrix carries
  // the pinned-CG lane; the device corpora are general MNA and compare
  // direct vs kAuto vs pinned BiCGStab only.
  std::vector<verify::DiffCase> grid_cases;
  grid_cases.push_back(verify::make_power_grid_case(100 * s, 100 * s));
  std::vector<verify::DiffCase> general_cases;
  general_cases.push_back(verify::make_adder_case(
      64 * s, cells::Implementation::kMiv1Channel, library));
  general_cases.push_back(verify::make_ring_case(
      1001 * s, cells::Implementation::kMiv2Channel, library));

  runtime::ThreadPool pool(args.jobs);
  verify::DiffOptions opts;
  opts.tolerance = args.tol;
  opts.pool = pool.size() > 1 ? &pool : nullptr;
  opts.matrix = verify::iterative_solver_matrix(/*pin_cg=*/true);
  const verify::DiffReport grid = verify::run_differential(grid_cases, opts);
  opts.matrix = verify::iterative_solver_matrix(/*pin_cg=*/false);
  const verify::DiffReport gen = verify::run_differential(general_cases, opts);

  verify::DiffReport report = grid;
  report.pass = grid.pass && gen.pass;
  report.cases += gen.cases;
  report.comparisons += gen.comparisons;
  report.failures += gen.failures;
  if (gen.worst_divergence > report.worst_divergence) {
    report.worst_divergence = gen.worst_divergence;
    report.worst_case = gen.worst_case;
  }
  report.reports.insert(report.reports.end(), gen.reports.begin(),
                        gen.reports.end());

  args.log() << format(
      "diff-large: %zu cases, %zu comparisons, %zu failures, worst "
      "divergence %.3e (%s)\n",
      report.cases, report.comparisons, report.failures,
      report.worst_divergence,
      report.worst_case.empty() ? "-" : report.worst_case.c_str());
  for (const verify::CaseConfigReport& r : report.reports)
    if (args.verbose || !r.ok) args.log() << "  " << r.summary() << "\n";

  verify::Json j = verify::Json::object();
  j.set("pass", verify::Json::boolean(report.pass));
  j.set("cases", verify::Json::number(static_cast<double>(report.cases)));
  j.set("comparisons",
        verify::Json::number(static_cast<double>(report.comparisons)));
  j.set("failures", verify::Json::number(static_cast<double>(report.failures)));
  j.set("worst_divergence", verify::Json::number(report.worst_divergence));
  j.set("worst_case", verify::Json::string(report.worst_case));
  out.set("diff_large", std::move(j));
  return report.pass;
}

bool run_ppa_diff(const Args& args, verify::Json& out) {
  verify::PpaDiffOptions opts;
  if (args.jobs > 1) opts.jobs = args.jobs;
  opts.max_cells = args.max_cells;
  const verify::PpaDiffReport report =
      verify::run_ppa_differential(core::reference_model_library(), opts);
  args.log() << format("ppa-diff: %zu cells, %zu failures (1-vs-%zu threads, "
                      "cold-vs-warm cache, bit-identical)\n",
                      report.cells, report.failures, opts.jobs);
  for (const verify::PpaEquivalence& row : report.rows)
    if (args.verbose || !row.ok)
      args.log() << "  " << row.cell << ": "
                << (row.ok ? "ok" : row.detail.c_str()) << "\n";
  verify::Json j = verify::Json::object();
  j.set("pass", verify::Json::boolean(report.pass));
  j.set("cells", verify::Json::number(static_cast<double>(report.cells)));
  j.set("failures", verify::Json::number(static_cast<double>(report.failures)));
  out.set("ppa_diff", std::move(j));
  return report.pass;
}

bool run_props(const Args& args, verify::Json& out) {
  verify::PropertyOptions opts;
  opts.seed = args.seed;
  opts.cases = args.cases;
  const std::vector<verify::PropertyResult> results =
      verify::run_properties(opts);
  verify::Json arr = verify::Json::array();
  bool pass = true;
  for (const verify::PropertyResult& r : results) {
    pass = pass && r.pass;
    args.log() << format("prop %-24s %s  worst %.3e (bound %.1e, %zu cases)\n",
                        r.name.c_str(), r.pass ? "ok  " : "FAIL", r.worst,
                        r.bound, r.cases);
    if (!r.pass && !r.detail.empty()) args.log() << "  " << r.detail << "\n";
    verify::Json j = verify::Json::object();
    j.set("name", verify::Json::string(r.name));
    j.set("pass", verify::Json::boolean(r.pass));
    j.set("worst", verify::Json::number(r.worst));
    j.set("bound", verify::Json::number(r.bound));
    arr.push_back(std::move(j));
  }
  out.set("props", std::move(arr));
  return pass;
}

bool run_golden(const Args& args, verify::Json& out) {
  std::vector<std::string> suites =
      args.suites.empty() ? verify::golden_suite_names() : args.suites;
  verify::GoldenOptions gopts;
  gopts.jobs = args.jobs;
  verify::GoldenContext ctx(gopts);
  const fs::path dir(args.golden_dir);
  bool pass = true;
  verify::Json arr = verify::Json::array();
  for (const std::string& suite : suites) {
    const verify::GoldenSuiteResult measured =
        verify::compute_golden_suite(suite, ctx);
    const fs::path file = dir / (suite + ".json");
    if (args.refresh) {
      fs::create_directories(dir);
      std::ofstream os(file, std::ios::binary);
      if (!os) throw Error(format("cannot write %s", file.string().c_str()));
      os << verify::render_baseline(measured, args.git_sha, args.jobs);
      args.log() << format("golden %s: wrote %zu metrics to %s\n",
                          suite.c_str(), measured.metrics.size(),
                          file.string().c_str());
      continue;
    }
    verify::GoldenCheck check;
    if (!fs::exists(file)) {
      check.suite = suite;
      check.error =
          format("baseline %s missing (run --refresh-goldens)",
                 file.string().c_str());
    } else {
      check = verify::check_against_baseline(measured, read_file(file));
    }
    args.log() << "golden " << check.summary() << "\n";
    pass = pass && check.pass;
    verify::Json j = verify::Json::object();
    j.set("suite", verify::Json::string(suite));
    j.set("pass", verify::Json::boolean(check.pass));
    j.set("drifted", verify::Json::number(static_cast<double>(check.drifted)));
    if (!check.error.empty()) j.set("error", verify::Json::string(check.error));
    arr.push_back(std::move(j));
  }
  out.set("golden", std::move(arr));
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw Error(format("%s needs a value", a.c_str()));
        return argv[++i];
      };
      if (a == "--diff") args.diff = true;
      else if (a == "--diff-large") args.diff_large = true;
      else if (a == "--ppa-diff") args.ppa_diff = true;
      else if (a == "--props") args.props = true;
      else if (a == "--golden") args.golden = true;
      else if (a == "--refresh-goldens") args.refresh = true;
      else if (a == "--json") args.json = true;
      else if (a == "--verbose") args.verbose = true;
      else if (a == "--tol") args.tol = parse_spice_number(value());
      else if (a == "--scale") args.scale = std::stoul(value());
      else if (a == "--jobs") args.jobs = std::stoul(value());
      else if (a == "--max-cells") args.max_cells = std::stoul(value());
      else if (a == "--seed") args.seed = std::stoull(value());
      else if (a == "--cases") args.cases = std::stoul(value());
      else if (a == "--golden-dir") args.golden_dir = value();
      else if (a == "--git-sha") args.git_sha = value();
      else if (a == "--suites") args.suites = split(value(), ",");
      else if (a == "--help" || a == "-h") return usage(argv[0]);
      else if (!a.empty() && a[0] == '-')
        throw Error(format("unknown option %s", a.c_str()));
      else args.files.push_back(a);
    }
    if (!args.diff && !args.diff_large && !args.ppa_diff && !args.props &&
        !args.golden)
      return usage(argv[0]);
    if (args.refresh && !args.golden)
      throw Error("--refresh-goldens requires --golden");

    verify::Json out = verify::Json::object();
    bool pass = true;
    if (args.diff) pass = run_diff(args, out) && pass;
    if (args.diff_large) pass = run_diff_large(args, out) && pass;
    if (args.ppa_diff) pass = run_ppa_diff(args, out) && pass;
    if (args.props) pass = run_props(args, out) && pass;
    if (args.golden) pass = run_golden(args, out) && pass;
    out.set("pass", verify::Json::boolean(pass));
    if (args.json) std::cout << out.dump(2) << "\n";
    args.log() << (pass ? "VERIFY PASS\n" : "VERIFY FAIL\n");
    return pass ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << "mivtx_verify: " << e.what() << "\n";
    return 2;
  }
}
