common-source amplifier with ideal buffer
.model nch nmos LEVEL=70 VTH0=0.35 L=24n W=192n U0=0.03
VDD vdd 0 DC 1.0
VIN in 0 DC 0.45
RL vdd out 20k
CL out 0 2f
M1 out in 0 nch
* ideal unity buffer to a 50-ohm world
E1 buf 0 out 0 1.0
Rbuf buf 0 50
.op
.ac dec 3 1e6 1e11
.end
