series RLC resonator
VIN in 0 DC 0
R1 in mid 50
L1 mid cap 1u
C1 cap 0 1p
.ac dec 4 1e6 1e10
.end
