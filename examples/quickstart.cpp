// Quickstart: the reproduction toolchain in ~80 lines.
//
//   1. simulate an MIV-transistor in the TCAD substrate,
//   2. look at its extracted Level-70 card,
//   3. build one standard cell with the paper's parasitics,
//   4. run a transient and measure delay + power,
//   5. compare the layout area against the 2D baseline.
//
// Build & run:  cmake --build build && build/examples/quickstart
#include <cstdio>

#include "common/strings.h"
#include "core/ppa.h"
#include "core/reference_cards.h"
#include "linalg/vector_ops.h"
#include "tcad/characterize.h"

using namespace mivtx;

int main() {
  // --- 1. Device simulation (drift-diffusion TCAD) -----------------------
  std::printf("1. TCAD: 2-channel MIV-transistor, n-type\n");
  tcad::DeviceSimulator sim(tcad::DeviceSpec::for_variant(
      tcad::Variant::kMiv2Channel, tcad::Polarity::kNmos));
  tcad::Characterizer ch(sim);
  std::printf("   Vth = %.3f V, Ion = %s, Ioff = %s\n", ch.vth_cc(1.0),
              eng_format(ch.ion(1.0), "A").c_str(),
              eng_format(ch.ioff(1.0), "A").c_str());

  // --- 2. The extracted compact model -------------------------------------
  const core::ModelLibrary& lib = core::reference_model_library();
  const bsimsoi::SoiModelCard& card =
      lib.card(core::Variant::kMiv2Channel, core::Polarity::kNmos);
  std::printf("\n2. Extracted Level-70 card (cached):\n   %.90s...\n",
              card.to_model_line().c_str());

  // --- 3 + 4. A standard cell under the paper's parasitics ---------------
  std::printf("\n3. NAND2X1 in the 2-channel implementation, 1 fF load\n");
  core::PpaEngine engine(lib);
  const core::CellPpa miv =
      engine.measure(cells::CellType::kNand2,
                     cells::Implementation::kMiv2Channel);
  const core::CellPpa base =
      engine.measure(cells::CellType::kNand2, cells::Implementation::k2D);
  std::printf("   delay = %s (2D: %s)\n",
              eng_format(miv.delay, "s").c_str(),
              eng_format(base.delay, "s").c_str());
  std::printf("   power = %s (2D: %s)\n",
              eng_format(miv.power, "W").c_str(),
              eng_format(base.power, "W").c_str());

  // --- 5. Layout area ------------------------------------------------------
  std::printf("\n4. Layout area: %.4f um^2 vs 2D %.4f um^2 (%+.1f%%)\n",
              miv.area * 1e12, base.area * 1e12,
              100.0 * (miv.area - base.area) / base.area);
  std::printf("\nSee bench/ for the full Table I-III and Fig. 4-5 "
              "reproductions.\n");
  return 0;
}
