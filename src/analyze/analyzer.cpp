#include "analyze/analyzer.h"

#include <set>

#include "common/strings.h"

namespace mivtx::analyze {

gatelevel::TimingModel default_timing_model() {
  gatelevel::TimingModel model;
  model.c_ref = 1e-15;

  // Base delay per cell (s, at the 1 fF reference load), ordered roughly by
  // stack depth / series-transistor count.
  auto base_delay = [](cells::CellType t) {
    switch (t) {
      case cells::CellType::kInv1: return 12e-12;
      case cells::CellType::kNand2: return 16e-12;
      case cells::CellType::kNor2: return 18e-12;
      case cells::CellType::kAnd2: return 20e-12;
      case cells::CellType::kOr2: return 20e-12;
      case cells::CellType::kNand3: return 20e-12;
      case cells::CellType::kAoi2: return 22e-12;
      case cells::CellType::kOai2: return 22e-12;
      case cells::CellType::kNor3: return 24e-12;
      case cells::CellType::kAnd3: return 24e-12;
      case cells::CellType::kOr3: return 24e-12;
      case cells::CellType::kMux2: return 26e-12;
      case cells::CellType::kXor2: return 28e-12;
      case cells::CellType::kXnor2: return 28e-12;
    }
    return 20e-12;
  };
  // Fig. 5(a) average delay deltas: -3 % / -2 % / +2 % vs 2D.
  auto impl_factor = [](cells::Implementation impl) {
    switch (impl) {
      case cells::Implementation::k2D: return 1.00;
      case cells::Implementation::kMiv1Channel: return 0.97;
      case cells::Implementation::kMiv2Channel: return 0.98;
      case cells::Implementation::kMiv4Channel: return 1.02;
    }
    return 1.0;
  };

  for (const cells::Implementation impl : cells::all_implementations()) {
    model.load_slope[impl] = 8e3 * impl_factor(impl);  // ~8 ps / fF
    for (const cells::CellType type : cells::all_cells()) {
      gatelevel::CellTiming t;
      t.delay_ref = base_delay(type) * impl_factor(impl);
      t.input_cap = 0.12e-15;
      t.slew_ref = 1.5 * t.delay_ref;
      t.slew_slope = 10e3 * impl_factor(impl);  // ~10 ps / fF
      t.slew_sens = 0.12;
      model.cells[impl][type] = t;
    }
  }
  return model;
}

AnalyzeReport analyze_design(const Design& design,
                             const gatelevel::TimingModel& timing,
                             const AnalyzeOptions& options) {
  AnalyzeReport report;
  lint::DiagnosticSink sink;
  sink.set_default_file(design.source);

  if (options.run_electrical) {
    ElectricalRuleOptions elec = options.electrical;
    elec.timing = &timing;
    elec.impl = options.impl;
    analyze_electrical(design, sink, elec);
  }

  // STA and placement need the strict netlist invariants.
  std::optional<gatelevel::GateNetlist> netlist;
  if (options.run_sta || options.place_mode) {
    netlist = to_gate_netlist(design);
    if (!netlist) {
      sink.info("sta-skipped",
                "design violates netlist invariants; timing and placement "
                "passes skipped (see electrical findings)");
    }
  }

  if (options.run_sta && netlist) {
    if (options.library != nullptr) {
      LibStaOptions lopts;
      lopts.loads = options.sta.loads;
      lopts.clock_period = options.sta.clock_period;
      if (options.sta.input_slew > 0.0) lopts.input_slew =
          options.sta.input_slew;
      lopts.worst_paths = options.sta.worst_paths;
      report.libsta =
          run_library_sta(*netlist, *options.library, options.impl, lopts);
      for (const MissingTiming& m : report.libsta->missing) {
        sink.error(
            "missing-timing",
            m.pin.empty()
                ? format("cell %s has no characterized timing for "
                         "implementation %s",
                         m.cell.c_str(), cells::impl_name(options.impl))
                : format("cell %s pin %s has no characterized %s arc",
                         m.cell.c_str(), m.pin.c_str(),
                         m.input_rise ? "rise" : "fall"),
            m.instance);
      }
      if (report.libsta->clamped_lookups > 0) {
        sink.info(
            "table-extrapolation",
            format("%zu table lookups fell outside the characterization "
                   "grid and were clamped to the grid edge",
                   report.libsta->clamped_lookups));
      }
      report.sta = report.libsta->to_slack_result();
    } else {
      // An (impl, cell) hole in the timing model used to fall through to
      // TimingModel::timing()'s throw mid-pass; diagnose every hole up
      // front and skip the pass instead.
      std::map<cells::CellType, std::string> missing;  // type -> instance
      const auto impl_it = timing.cells.find(options.impl);
      for (const gatelevel::Instance& inst : netlist->instances()) {
        if (impl_it == timing.cells.end() ||
            impl_it->second.find(inst.type) == impl_it->second.end()) {
          missing.emplace(inst.type, inst.name);
        }
      }
      for (const auto& [type, instance] : missing) {
        sink.error("missing-timing",
                   format("cell %s has no timing data for implementation "
                          "%s (first instance %s)",
                          cells::cell_name(type),
                          cells::impl_name(options.impl), instance.c_str()),
                   instance);
      }
      if (missing.empty()) {
        report.sta =
            run_slack_sta(*netlist, timing, options.impl, options.sta);
      } else {
        sink.info("sta-skipped",
                  "timing pass skipped: the timing model does not cover "
                  "every cell (see missing-timing findings)");
      }
    }
    if (report.sta && options.sta.clock_period > 0.0) {
      std::set<std::string> seen;
      for (const std::string& po : netlist->primary_outputs()) {
        if (!seen.insert(po).second) continue;
        const NetTiming& t = report.sta->nets.at(po);
        if (t.slack < 0.0) {
          sink.error("timing-violation",
                     format("arrival %s > required %s (slack %s)",
                            eng_format(t.arrival, "s").c_str(),
                            eng_format(t.required, "s").c_str(),
                            eng_format(t.slack, "s").c_str()),
                     "", po, 0);
        }
      }
    }
  }

  if (options.place_mode && netlist) {
    const place::Placer placer(options.tier.rules);
    report.placement =
        placer.place(*netlist, options.impl, *options.place_mode);
    analyze_tiers(design, *report.placement, sink, options.tier);
  }

  report.findings = sink.diagnostics();
  report.errors = sink.num_errors();
  report.warnings = sink.num_warnings();
  return report;
}

}  // namespace mivtx::analyze
