// mivtx::analyze — whole-design multi-pass static analyzer.
//
// Orchestrates the passes over one gate-level design:
//   1. electrical rules (electrical.h)   — always; works on broken designs
//   2. slack-based STA (sta.h)           — when the design satisfies the
//      GateNetlist invariants; emits `timing-violation` findings for
//      negative-slack endpoints when a clock period is configured
//   3. tier/MIV placement rules (tier_rules.h) — when a placement mode is
//      requested; places the block with place::Placer first
// All findings flow through the shared diagnostics pipeline (pipeline.h):
// deterministic ordering, severity config, suppressions, text/JSON/SARIF
// renderers and baselines are applied by the caller (the mivtx_analyze
// CLI), not here.
#pragma once

#include <optional>

#include "analyze/design.h"
#include "analyze/electrical.h"
#include "analyze/libsta.h"
#include "analyze/sta.h"
#include "analyze/tier_rules.h"
#include "gatelevel/sta.h"
#include "place/placer.h"

namespace mivtx::analyze {

struct AnalyzeOptions {
  cells::Implementation impl = cells::Implementation::k2D;
  StaOptions sta;
  ElectricalRuleOptions electrical;  // `timing`/`impl` are filled in
  TierRuleOptions tier;
  bool run_sta = true;
  bool run_electrical = true;
  // Tier/MIV rules run when a placement mode is set.
  std::optional<place::Mode> place_mode;
  // Characterized NLDM library: when set, the timing pass runs the
  // dual-edge library-backed STA (libsta.h) instead of the linear
  // CellTiming model, and library holes / grid extrapolation surface as
  // `missing-timing` / `table-extrapolation` diagnostics.
  const charlib::CharLibrary* library = nullptr;
};

struct AnalyzeReport {
  std::vector<lint::Diagnostic> findings;  // reporting order; sort to render
  std::optional<SlackStaResult> sta;
  // Per-edge detail when the library-backed STA ran (`sta` holds its
  // collapsed worst-edge view).
  std::optional<LibStaResult> libsta;
  std::optional<place::Placement> placement;
  std::size_t errors = 0;
  std::size_t warnings = 0;
};

// Analyze one design against a timing model.  `design.source` anchors every
// finding's file field.
AnalyzeReport analyze_design(const Design& design,
                             const gatelevel::TimingModel& timing,
                             const AnalyzeOptions& options = {});

// Synthetic reference timing model for static gating when no measured model
// is at hand: per-cell delays/slews scaled by logic depth class, the
// paper's Fig. 5(a) per-implementation delay deltas, one pin cap for every
// input.  Deterministic and cheap — NOT a substitute for
// core::build_timing_model's measured numbers (see DESIGN.md §12).
gatelevel::TimingModel default_timing_model();

}  // namespace mivtx::analyze
