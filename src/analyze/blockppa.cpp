#include "analyze/blockppa.h"

#include <sstream>

#include "analyze/design.h"
#include "common/error.h"
#include "common/strings.h"
#include "lint/diagnostics.h"
#include "trace/trace.h"

namespace mivtx::analyze {

std::vector<std::pair<cells::CellType, cells::Implementation>> library_jobs(
    const gatelevel::GateNetlist& netlist,
    const std::vector<cells::Implementation>& impls) {
  const std::vector<cells::Implementation>& use =
      impls.empty() ? cells::all_implementations() : impls;
  std::vector<std::pair<cells::CellType, cells::Implementation>> jobs;
  for (const auto& [type, count] : netlist.cell_histogram())
    for (const cells::Implementation impl : use) jobs.emplace_back(type, impl);
  return jobs;
}

BlockPpaReport run_block_ppa(const gatelevel::GateNetlist& netlist,
                             const charlib::CharLibrary& library,
                             const BlockPpaOptions& options) {
  MIVTX_EXPECT(netlist.finalized(), "netlist not finalized");
  trace::Span span("blockppa.run", "blockppa", netlist.name().c_str());

  BlockPpaReport report;
  report.design = netlist.name();
  report.num_gates = netlist.instances().size();
  report.num_inputs = netlist.primary_inputs().size();
  report.num_outputs = netlist.primary_outputs().size();

  const std::vector<cells::Implementation>& impls =
      options.impls.empty() ? cells::all_implementations() : options.impls;
  const Design design = design_from_netlist(netlist);
  const place::Placer placer(options.tier.rules);

  for (const cells::Implementation impl : impls) {
    BlockImplPpa row;
    row.impl = impl;

    const LibStaResult sta =
        run_library_sta(netlist, library, impl, options.sta);
    row.delay = sta.worst_arrival;
    row.energy = sta.switching_energy;
    row.power = row.delay > 0.0 ? row.energy / row.delay : 0.0;
    row.clamped_lookups = sta.clamped_lookups;
    row.missing_arcs = sta.missing.size();

    const place::Placement placement =
        placer.place(netlist, impl, options.place_mode);
    row.area = placement.chip_area();
    if (options.place_mode == place::Mode::kPerTier) {
      row.top_area = placement.top.area();
      row.bottom_area = placement.bottom.area();
      const double outline = placement.top.area() + placement.bottom.area();
      row.utilization =
          outline > 0.0
              ? (placement.top.cell_area + placement.bottom.cell_area) /
                    outline
              : 0.0;
    } else {
      row.utilization = placement.coupled.utilization();
    }

    lint::DiagnosticSink sink;
    analyze_tiers(design, placement, sink, options.tier);
    row.tier_errors = sink.num_errors();
    row.tier_warnings = sink.num_warnings();

    report.rows.push_back(row);
  }
  return report;
}

std::string render_block_ppa(const BlockPpaReport& report) {
  std::ostringstream os;
  os << format("block %s: %zu gates, %zu inputs, %zu outputs\n",
               report.design.c_str(), report.num_gates, report.num_inputs,
               report.num_outputs);
  os << format("%-5s %-14s %-14s %-14s %-9s %s\n", "impl", "delay", "power",
               "area", "util", "findings");
  const BlockImplPpa* base =
      !report.rows.empty() && report.rows[0].impl == cells::Implementation::k2D
          ? &report.rows[0]
          : nullptr;
  auto pct = [&](double value, double ref) {
    if (base == nullptr || ref == 0.0) return std::string();
    return format(" (%+.1f%%)", 100.0 * (value - ref) / ref);
  };
  for (const BlockImplPpa& row : report.rows) {
    const bool is_base = base != nullptr && &row == base;
    os << format(
        "%-5s %-14s %-14s %-14s %-9s %zu err, %zu warn, %zu clamped, "
        "%zu missing\n",
        charlib::impl_tag(row.impl),
        (eng_format(row.delay, "s") +
         (is_base ? "" : pct(row.delay, base != nullptr ? base->delay : 0.0)))
            .c_str(),
        (eng_format(row.power, "W") +
         (is_base ? "" : pct(row.power, base != nullptr ? base->power : 0.0)))
            .c_str(),
        (format("%.3f um^2", row.area * 1e12) +
         (is_base ? "" : pct(row.area, base != nullptr ? base->area : 0.0)))
            .c_str(),
        format("%.1f%%", 100.0 * row.utilization).c_str(), row.tier_errors,
        row.tier_warnings, row.clamped_lookups, row.missing_arcs);
  }
  return os.str();
}

}  // namespace mivtx::analyze
