// Block-level PPA: map a gate-level benchmark netlist onto a characterized
// NLDM library, run the dual-edge library STA and tier-aware placement,
// and report design-level delay / power / area per implementation —
// extending the paper's Fig. 5 cell averages to whole designs (ROADMAP
// item 4).
//
// Metrics per implementation row:
//   delay   worst primary-output arrival (s) from run_library_sta
//   energy  sum over gates of the mean per-arc switching energy at the
//           propagated (slew, load) point (J): one full toggle of every
//           gate
//   power   energy / delay (W): the "every gate switches once per
//           critical-path time" proxy — an upper-bound activity model,
//           consistent across implementations so the 2D vs 1/2/4-channel
//           deltas are meaningful
//   area    placed chip outline (m^2) in the requested placement mode
//           (per-tier by default: the paper's substrate-saving claim)
// plus the tier-rule findings (KOZ/overlap errors, MIV-density warnings),
// extrapolation clamp counts and library holes, so a report row is never
// silently built on degraded timing.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analyze/libsta.h"
#include "analyze/tier_rules.h"
#include "charlib/library.h"
#include "gatelevel/netlist.h"
#include "place/placer.h"

namespace mivtx::analyze {

struct BlockPpaOptions {
  // Implementations to report; empty = all four.
  std::vector<cells::Implementation> impls;
  LibStaOptions sta;
  place::Mode place_mode = place::Mode::kPerTier;
  TierRuleOptions tier;  // carries the layout rules for the placer too
};

struct BlockImplPpa {
  cells::Implementation impl = cells::Implementation::k2D;
  double delay = 0.0;
  double energy = 0.0;
  double power = 0.0;
  double area = 0.0;
  double top_area = 0.0;     // per-tier mode only
  double bottom_area = 0.0;  // per-tier mode only
  double utilization = 0.0;  // placed footprint / outline
  std::size_t tier_errors = 0;
  std::size_t tier_warnings = 0;
  std::size_t clamped_lookups = 0;
  std::size_t missing_arcs = 0;  // library holes hit by the STA
};

struct BlockPpaReport {
  std::string design;
  std::size_t num_gates = 0;
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
  std::vector<BlockImplPpa> rows;  // in BlockPpaOptions::impls order
};

// The (cell, impl) characterization jobs a netlist needs: the union of its
// cell types crossed with `impls` (empty = all four), in deterministic
// order.  Feed to charlib::Characterizer::characterize so a block run
// characterizes only what it maps.
std::vector<std::pair<cells::CellType, cells::Implementation>> library_jobs(
    const gatelevel::GateNetlist& netlist,
    const std::vector<cells::Implementation>& impls);

BlockPpaReport run_block_ppa(const gatelevel::GateNetlist& netlist,
                             const charlib::CharLibrary& library,
                             const BlockPpaOptions& options = {});

// Aligned text table (the mivtx_blockppa CLI output).
std::string render_block_ppa(const BlockPpaReport& report);

}  // namespace mivtx::analyze
