#include "analyze/design.h"

#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace mivtx::analyze {

Design design_from_netlist(const gatelevel::GateNetlist& netlist) {
  Design d;
  d.name = netlist.name();
  for (const std::string& in : netlist.primary_inputs()) {
    d.inputs.push_back(Port{in, 0});
  }
  for (const std::string& out : netlist.primary_outputs()) {
    d.outputs.push_back(Port{out, 0});
  }
  for (const gatelevel::Instance& inst : netlist.instances()) {
    d.gates.push_back(Gate{inst.name, cells::cell_name(inst.type), inst.type,
                           inst.inputs, inst.output, 0});
  }
  return d;
}

Design parse_design(const std::string& text, lint::DiagnosticSink& sink) {
  Design d;
  std::istringstream is(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(is, raw)) {
    ++lineno;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::vector<std::string> tok = split(raw, " \t\r");
    if (tok.empty()) continue;
    if (equals_ci(tok[0], "design")) {
      if (tok.size() != 2) {
        sink.error("parse-error", "expected 'design <name>'", "", "", lineno);
        continue;
      }
      d.name = tok[1];
    } else if (equals_ci(tok[0], "input") || equals_ci(tok[0], "output")) {
      if (tok.size() < 2) {
        sink.error("parse-error",
                   "expected '" + to_lower(tok[0]) + " <net> [<net> ...]'",
                   "", "", lineno);
        continue;
      }
      auto& ports = equals_ci(tok[0], "input") ? d.inputs : d.outputs;
      for (std::size_t i = 1; i < tok.size(); ++i) {
        ports.push_back(Port{tok[i], lineno});
      }
    } else if (equals_ci(tok[0], "gate")) {
      // gate <CELL> <instance> <in...> <out>
      if (tok.size() < 4) {
        sink.error("parse-error",
                   "expected 'gate <cell> <instance> <in...> <out>'", "", "",
                   lineno);
        continue;
      }
      Gate g;
      g.cell = tok[1];
      g.name = tok[2];
      g.inputs.assign(tok.begin() + 3, tok.end() - 1);
      g.output = tok.back();
      g.line = lineno;
      g.type = cells::find_cell(g.cell);
      if (!g.type) {
        sink.error("unknown-cell", "cell '" + g.cell + "' is not in the "
                   "14-cell library", g.name, "", lineno);
      } else if (g.inputs.size() != cells::cell_num_inputs(*g.type)) {
        sink.error("bad-arity",
                   format("cell %s takes %zu inputs, got %zu",
                          cells::cell_name(*g.type),
                          cells::cell_num_inputs(*g.type), g.inputs.size()),
                   g.name, "", lineno);
      }
      d.gates.push_back(std::move(g));
    } else {
      sink.error("parse-error", "unknown directive '" + tok[0] + "'", "", "",
                 lineno);
    }
  }
  return d;
}

std::string to_gnl_text(const Design& design) {
  std::ostringstream os;
  os << "design " << (design.name.empty() ? "unnamed" : design.name) << "\n";
  for (const Port& p : design.inputs) os << "input " << p.net << "\n";
  for (const Port& p : design.outputs) os << "output " << p.net << "\n";
  for (const Gate& g : design.gates) {
    os << "gate " << g.cell << " " << g.name;
    for (const std::string& in : g.inputs) os << " " << in;
    os << " " << g.output << "\n";
  }
  return os.str();
}

std::optional<gatelevel::GateNetlist> to_gate_netlist(const Design& design) {
  try {
    gatelevel::GateNetlist n(design.name.empty() ? "unnamed" : design.name);
    for (const Port& p : design.inputs) n.add_input(p.net);
    for (const Port& p : design.outputs) n.add_output(p.net);
    for (const Gate& g : design.gates) {
      if (!g.type) return std::nullopt;
      n.add_instance(*g.type, g.name, g.inputs, g.output);
    }
    n.finalize();
    return n;
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace mivtx::analyze
