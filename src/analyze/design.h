// Relaxed gate-level design representation for static analysis.
//
// gatelevel::GateNetlist enforces its invariants at construction time
// (unique drivers, arity, acyclicity) by throwing — correct for generators,
// useless for an analyzer whose whole job is to *diagnose* malformed
// designs.  analyze::Design is the permissive twin: any list of gates is
// representable, every record carries its 1-based source line, and the
// rule passes (electrical.h) localize the problems instead of aborting on
// the first one.
//
// Text format (".gnl", one directive per line, '#' comments):
//   design <name>
//   input  <net> [<net> ...]
//   output <net> [<net> ...]
//   gate   <CELL> <instance> <in1> [<in2> ...] <out>
// Cells are the 14 library names (INV1X1, NAND2X1, ...), matched
// case-insensitively.  Unknown cells and wrong arities are diagnostics
// (`unknown-cell`, `bad-arity`), not parse failures: the gate is kept so
// connectivity analysis still sees its nets.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cells/celltypes.h"
#include "gatelevel/netlist.h"
#include "lint/diagnostics.h"

namespace mivtx::analyze {

struct Port {
  std::string net;
  int line = 0;  // 1-based source line (0 = synthesized, not parsed)
};

struct Gate {
  std::string name;
  std::string cell;  // library name as written
  std::optional<cells::CellType> type;  // nullopt = unknown cell
  std::vector<std::string> inputs;
  std::string output;
  int line = 0;
};

struct Design {
  std::string name;
  std::string source;  // file path or synthetic origin ("" if n/a)
  std::vector<Port> inputs;
  std::vector<Port> outputs;
  std::vector<Gate> gates;
};

// Lossless view of an already-validated netlist (lines are 0).
Design design_from_netlist(const gatelevel::GateNetlist& netlist);

// Parse the .gnl text format.  Syntax problems (missing tokens, unknown
// directives) are reported as `parse-error` diagnostics; unknown cells as
// `unknown-cell`; arity mismatches as `bad-arity`.  Always returns the
// (possibly partial) design.
Design parse_design(const std::string& text, lint::DiagnosticSink& sink);

// Serialize back to the .gnl text format (round-trips through
// parse_design for well-formed designs).
std::string to_gnl_text(const Design& design);

// Strict conversion for the passes that need GateNetlist's invariants
// (slack STA, placement).  Returns nullopt if the design violates any of
// them — run the electrical pass first to learn why.
std::optional<gatelevel::GateNetlist> to_gate_netlist(const Design& design);

}  // namespace mivtx::analyze
