#include "analyze/electrical.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/strings.h"

namespace mivtx::analyze {

namespace {

// Iterative Tarjan SCC over the gate graph (gate -> gates reading its
// output).  Recursion-free so pathological fuzz inputs cannot blow the
// stack.  Returns components in deterministic (discovery) order.
std::vector<std::vector<std::size_t>> strongly_connected(
    const std::vector<std::vector<std::size_t>>& adj) {
  const std::size_t n = adj.size();
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> index(n, kUnvisited), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> components;
  std::size_t next_index = 0;

  struct Frame {
    std::size_t v;
    std::size_t edge;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < adj[f.v].size()) {
        const std::size_t w = adj[f.v][f.edge++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back(Frame{w, 0});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        if (lowlink[f.v] == index[f.v]) {
          std::vector<std::size_t> comp;
          std::size_t w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp.push_back(w);
          } while (w != f.v);
          components.push_back(std::move(comp));
        }
        const std::size_t v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] =
              std::min(lowlink[frames.back().v], lowlink[v]);
        }
      }
    }
  }
  return components;
}

}  // namespace

std::size_t analyze_electrical(const Design& design,
                               lint::DiagnosticSink& sink,
                               const ElectricalRuleOptions& options) {
  const std::size_t errors_before = sink.num_errors();

  // --- Net bookkeeping -------------------------------------------------------
  struct NetInfo {
    std::vector<std::size_t> drivers;  // gate indices
    bool driven_by_input = false;
    std::size_t reader_pins = 0;  // gate input pins
    bool read_by_output = false;
    int first_line = 0;
  };
  std::map<std::string, NetInfo> nets;
  auto touch = [&](const std::string& net, int line) -> NetInfo& {
    NetInfo& info = nets[net];
    if (info.first_line == 0) info.first_line = line;
    return info;
  };
  for (const Port& p : design.inputs) touch(p.net, p.line).driven_by_input = true;
  for (const Port& p : design.outputs) touch(p.net, p.line).read_by_output = true;
  for (std::size_t g = 0; g < design.gates.size(); ++g) {
    const Gate& gate = design.gates[g];
    touch(gate.output, gate.line).drivers.push_back(g);
    for (const std::string& in : gate.inputs) ++touch(in, gate.line).reader_pins;
  }

  // --- Instance-name uniqueness ----------------------------------------------
  std::map<std::string, std::size_t> first_named;
  for (std::size_t g = 0; g < design.gates.size(); ++g) {
    const Gate& gate = design.gates[g];
    const auto [it, inserted] = first_named.emplace(gate.name, g);
    if (!inserted) {
      sink.error("duplicate-instance",
                 format("instance name also used on line %d",
                        design.gates[it->second].line),
                 gate.name, "", gate.line);
    }
  }

  // --- Driver rules ----------------------------------------------------------
  for (const auto& [net, info] : nets) {
    const std::size_t n_drivers =
        info.drivers.size() + (info.driven_by_input ? 1u : 0u);
    if (n_drivers > 1) {
      std::string who;
      for (const std::size_t g : info.drivers) {
        if (!who.empty()) who += ", ";
        who += design.gates[g].name;
      }
      if (info.driven_by_input) {
        if (!who.empty()) who += ", ";
        who += "primary input";
      }
      sink.error("multi-driven-net",
                 format("%zu drivers (%s)", n_drivers, who.c_str()), "", net,
                 info.first_line);
    }
    const bool read = info.reader_pins > 0 || info.read_by_output;
    if (n_drivers == 0 && read) {
      if (info.read_by_output && info.reader_pins == 0) {
        sink.error("undriven-output", "primary output has no driver", "", net,
                   info.first_line);
      } else {
        sink.error("undriven-net", "net is read but has no driver", "", net,
                   info.first_line);
      }
    }
    if (n_drivers > 0 && !read) {
      if (info.driven_by_input && info.drivers.empty()) {
        sink.warning("unused-input", "primary input is never read", "", net,
                     info.first_line);
      } else {
        sink.warning("floating-net", "driven net is never read", "", net,
                     info.first_line);
      }
    }
    // Fanout / load budgets (only meaningful for driven nets).
    if (n_drivers > 0) {
      const std::size_t fanout =
          info.reader_pins + (info.read_by_output ? 1u : 0u);
      if (fanout > options.max_fanout) {
        sink.warning("max-fanout",
                     format("fanout %zu exceeds the X1 drive budget of %zu",
                            fanout, options.max_fanout),
                     "", net, info.first_line);
      }
    }
  }

  // --- Load-cap budget (needs pin capacitances) ------------------------------
  if (options.timing != nullptr) {
    std::map<std::string, double> load;
    for (const Gate& gate : design.gates) {
      if (!gate.type) continue;
      const auto impl_cells = options.timing->cells.find(options.impl);
      if (impl_cells == options.timing->cells.end()) break;
      const auto ct = impl_cells->second.find(*gate.type);
      if (ct == impl_cells->second.end()) continue;
      for (const std::string& in : gate.inputs) {
        load[in] += ct->second.input_cap;
      }
    }
    for (const Port& p : design.outputs) load[p.net] += options.timing->c_ref;
    for (const auto& [net, c] : load) {
      const auto it = nets.find(net);
      const bool driven = it != nets.end() &&
                          (!it->second.drivers.empty() ||
                           it->second.driven_by_input);
      if (driven && c > options.max_load_cap) {
        sink.warning("max-load-cap",
                     format("load %s exceeds the budget %s",
                            eng_format(c, "F").c_str(),
                            eng_format(options.max_load_cap, "F").c_str()),
                     "", net, it->second.first_line);
      }
    }
  }

  // --- Combinational loops (SCCs of the gate graph) --------------------------
  std::vector<std::vector<std::size_t>> adj(design.gates.size());
  {
    std::map<std::string, std::vector<std::size_t>> readers;
    for (std::size_t g = 0; g < design.gates.size(); ++g) {
      for (const std::string& in : design.gates[g].inputs) {
        readers[in].push_back(g);
      }
    }
    for (std::size_t g = 0; g < design.gates.size(); ++g) {
      const auto it = readers.find(design.gates[g].output);
      if (it != readers.end()) adj[g] = it->second;
    }
  }
  std::vector<bool> in_loop(design.gates.size(), false);
  for (const std::vector<std::size_t>& comp : strongly_connected(adj)) {
    const bool self_loop =
        comp.size() == 1 &&
        std::find(adj[comp[0]].begin(), adj[comp[0]].end(), comp[0]) !=
            adj[comp[0]].end();
    if (comp.size() < 2 && !self_loop) continue;
    std::vector<std::string> names;
    int line = 0;
    for (const std::size_t g : comp) {
      in_loop[g] = true;
      names.push_back(design.gates[g].name);
      if (line == 0 || (design.gates[g].line > 0 && design.gates[g].line < line)) {
        line = design.gates[g].line;
      }
    }
    std::sort(names.begin(), names.end());
    std::string members;
    for (const std::string& n : names) {
      if (!members.empty()) members += " -> ";
      members += n;
    }
    sink.error("combinational-loop",
               format("%zu-gate cycle: %s", comp.size(), members.c_str()),
               names.front(), "", line);
  }

  // --- Unreachable logic (no path to a primary output) -----------------------
  {
    // Every driver of a reachable net is reachable — on an (illegal)
    // multi-driven net all contenders count, so the multi-driven-net error
    // is not compounded with spurious unreachable-logic noise.
    std::map<std::string, std::vector<std::size_t>> drivers_of;
    for (std::size_t g = 0; g < design.gates.size(); ++g) {
      drivers_of[design.gates[g].output].push_back(g);
    }
    std::vector<bool> reaches(design.gates.size(), false);
    std::vector<std::size_t> work;
    auto mark_net = [&](const std::string& net) {
      const auto it = drivers_of.find(net);
      if (it == drivers_of.end()) return;
      for (const std::size_t g : it->second) {
        if (!reaches[g]) {
          reaches[g] = true;
          work.push_back(g);
        }
      }
    };
    for (const Port& p : design.outputs) mark_net(p.net);
    while (!work.empty()) {
      const std::size_t g = work.back();
      work.pop_back();
      for (const std::string& in : design.gates[g].inputs) mark_net(in);
    }
    for (std::size_t g = 0; g < design.gates.size(); ++g) {
      // Loop members already got their error; a dead cone on top of a loop
      // would be noise.
      if (!reaches[g] && !in_loop[g]) {
        sink.warning("unreachable-logic",
                     "no path from this gate to any primary output",
                     design.gates[g].name, design.gates[g].output,
                     design.gates[g].line);
      }
    }
  }

  return sink.num_errors() - errors_before;
}

}  // namespace mivtx::analyze
