// Block-level electrical/structural rule checks over a relaxed Design.
//
// Where gatelevel::GateNetlist::finalize() aborts on the first violated
// invariant, this pass localizes every violation as a diagnostic:
//   duplicate-instance   (error)   two gates share one instance name
//   multi-driven-net     (error)   a net has more than one driver
//   undriven-net         (error)   a read net has no driver
//   undriven-output      (error)   a primary output has no driver
//   combinational-loop   (error)   a strongly connected gate component;
//                                  one finding per SCC, members listed
//   floating-net         (warning) a driven net nothing reads
//   unused-input         (warning) a primary input nothing reads
//   unreachable-logic    (warning) a gate with no path to any primary
//                                  output (dead cone)
//   max-fanout           (warning) a net fans out to more pins than the
//                                  drive strength supports
//   max-load-cap         (warning) a net's capacitive load exceeds the
//                                  budget (needs a timing model for pin
//                                  caps; skipped without one)
#pragma once

#include <cstddef>

#include "analyze/design.h"
#include "gatelevel/sta.h"
#include "lint/diagnostics.h"

namespace mivtx::analyze {

struct ElectricalRuleOptions {
  // Max pins one driver may fan out to (all library cells are X1 drive).
  std::size_t max_fanout = 8;
  // Max capacitive load per net (F); checked only with a timing model.
  double max_load_cap = 20e-15;
  // Pin capacitances for the load check; nullptr skips max-load-cap.
  const gatelevel::TimingModel* timing = nullptr;
  cells::Implementation impl = cells::Implementation::k2D;
};

// Returns the number of error-severity findings added to `sink`.
std::size_t analyze_electrical(const Design& design,
                               lint::DiagnosticSink& sink,
                               const ElectricalRuleOptions& options = {});

}  // namespace mivtx::analyze
