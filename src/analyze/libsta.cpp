#include "analyze/libsta.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace mivtx::analyze {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One per-edge timing arc, recorded in forward-pass order for the
// required-time backward pass.
struct EdgeArc {
  std::string from_net;
  bool in_rise = true;
  std::string to_net;
  bool out_rise = true;
  double delay = 0.0;
};

EdgeTiming& edge_of(LibNetTiming& t, bool rise_edge) {
  return rise_edge ? t.rise : t.fall;
}

// Worst (minimum-slack) valid edge of a net; ties prefer the later
// arrival, then rise.  Returns true/false for rise/fall, or nullopt when
// neither edge ever arrives.
std::optional<bool> worst_edge(const LibNetTiming& t) {
  std::optional<bool> best;
  for (const bool e : {true, false}) {
    const EdgeTiming& et = t.edge(e);
    if (!et.valid()) continue;
    if (!best) {
      best = e;
      continue;
    }
    const EdgeTiming& bt = t.edge(*best);
    const double s = et.required - et.arrival;
    const double bs = bt.required - bt.arrival;
    if (s < bs || (s == bs && et.arrival > bt.arrival)) best = e;
  }
  return best;
}

}  // namespace

bool EdgeTiming::valid() const { return std::isfinite(arrival); }

LibStaResult run_library_sta(const gatelevel::GateNetlist& netlist,
                             const charlib::CharLibrary& library,
                             cells::Implementation impl,
                             const LibStaOptions& options) {
  MIVTX_EXPECT(netlist.finalized(), "netlist not finalized");
  LibStaResult out;

  // --- Net loads from the library's per-pin input capacitances ---------------
  std::map<std::string, double> load;
  for (const gatelevel::Instance& reader : netlist.instances()) {
    const charlib::CellChar* cc = library.find(impl, reader.type);
    const auto pins = cells::cell_input_names(reader.type);
    for (std::size_t k = 0; k < reader.inputs.size() && k < pins.size(); ++k)
      load[reader.inputs[k]] += cc != nullptr ? cc->pin_cap(pins[k]) : 0.0;
  }
  for (const std::string& po : netlist.primary_outputs())
    load[po] += options.loads.load_for_output(po, options.c_ref);
  for (const auto& [net, extra] : options.loads.extra_net_load)
    load[net] += extra;
  auto load_of = [&](const std::string& net) {
    const auto it = load.find(net);
    return it == load.end() ? 0.0 : it->second;
  };

  // --- Forward pass: per-edge arrival + slew ---------------------------------
  for (const std::string& in : netlist.primary_inputs()) {
    LibNetTiming t;
    for (const bool e : {true, false}) {
      EdgeTiming& et = edge_of(t, e);
      et.arrival = 0.0;
      et.slew = options.input_slew;
      et.required = kInf;
    }
    out.nets.emplace(in, t);
  }

  std::vector<EdgeArc> arcs;
  std::vector<std::size_t> arc_counts;  // per topo-visited instance
  arc_counts.reserve(netlist.topological_order().size());

  for (const std::size_t idx : netlist.topological_order()) {
    const gatelevel::Instance& inst = netlist.instances()[idx];
    const charlib::CellChar* cc = library.find(impl, inst.type);
    const auto pins = cells::cell_input_names(inst.type);
    const double c_out = load_of(inst.output);

    LibNetTiming result;
    result.driver = inst.name;
    result.rise.arrival = result.fall.arrival = -kInf;
    result.rise.required = result.fall.required = kInf;
    const std::size_t arcs_before = arcs.size();
    double inst_energy = 0.0;
    std::size_t inst_energy_n = 0;

    auto consider = [](EdgeTiming& oe, double a, double slew,
                       const std::string& from, bool from_rise) {
      // Deterministic tie-break: smaller net name, then rise before fall.
      if (a > oe.arrival ||
          (a == oe.arrival &&
           (from < oe.critical_from ||
            (from == oe.critical_from && from_rise &&
             !oe.critical_from_rise)))) {
        oe.arrival = a;
        oe.slew = slew;
        oe.critical_from = from;
        oe.critical_from_rise = from_rise;
      }
    };

    if (cc == nullptr) {
      out.missing.push_back(
          MissingTiming{inst.name, cells::cell_name(inst.type), "", true});
      // Zero-delay passthrough of every input edge to both output edges:
      // keeps the rest of the graph analyzable; the analyzer turns the
      // record above into a missing-timing diagnostic.
      for (const std::string& in_net : inst.inputs) {
        const LibNetTiming& in_t = out.nets.at(in_net);
        for (const bool in_rise : {true, false}) {
          const EdgeTiming& ie = in_t.edge(in_rise);
          if (!ie.valid()) continue;
          for (const bool out_rise : {true, false}) {
            arcs.push_back(EdgeArc{in_net, in_rise, inst.output, out_rise,
                                   0.0});
            consider(edge_of(result, out_rise), ie.arrival, ie.slew, in_net,
                     in_rise);
          }
        }
      }
    } else {
      for (std::size_t k = 0; k < inst.inputs.size() && k < pins.size();
           ++k) {
        const std::string& in_net = inst.inputs[k];
        const LibNetTiming& in_t = out.nets.at(in_net);
        for (const bool in_rise : {true, false}) {
          const charlib::ArcTables* arc = cc->find_arc(pins[k], in_rise);
          if (arc == nullptr) {
            out.missing.push_back(MissingTiming{
                inst.name, cells::cell_name(inst.type), pins[k], in_rise});
            continue;
          }
          const EdgeTiming& ie = in_t.edge(in_rise);
          if (!ie.valid()) continue;
          const charlib::LookupResult d = arc->delay.lookup(ie.slew, c_out);
          const charlib::LookupResult s =
              arc->out_slew.lookup(ie.slew, c_out);
          const charlib::LookupResult e = arc->energy.lookup(ie.slew, c_out);
          if (d.clamped() || s.clamped()) ++out.clamped_lookups;
          inst_energy += e.value;
          ++inst_energy_n;
          const double delay = std::max(d.value, 0.0);
          arcs.push_back(
              EdgeArc{in_net, in_rise, inst.output, arc->output_rise, delay});
          consider(edge_of(result, arc->output_rise), ie.arrival + delay,
                   std::max(s.value, 0.0), in_net, in_rise);
        }
      }
    }
    if (inst.inputs.empty()) {
      result.rise.arrival = result.fall.arrival = 0.0;
      result.rise.slew = result.fall.slew = options.input_slew;
    }
    arc_counts.push_back(arcs.size() - arcs_before);
    if (inst_energy_n > 0)
      out.switching_energy +=
          inst_energy / static_cast<double>(inst_energy_n);
    out.nets[inst.output] = result;
  }

  // --- Worst arrival over the primary outputs, both edges --------------------
  out.worst_arrival = 0.0;
  for (const std::string& po : netlist.primary_outputs()) {
    const auto it = out.nets.find(po);
    MIVTX_EXPECT(it != out.nets.end(), "primary output unresolved: " + po);
    for (const bool e : {true, false}) {
      const EdgeTiming& et = it->second.edge(e);
      if (!et.valid()) continue;
      if (et.arrival > out.worst_arrival ||
          (et.arrival == out.worst_arrival &&
           (out.worst_endpoint.empty() || po < out.worst_endpoint ||
            (po == out.worst_endpoint && e && !out.worst_endpoint_rise)))) {
        out.worst_arrival = et.arrival;
        out.worst_endpoint = po;
        out.worst_endpoint_rise = e;
      }
    }
  }

  // --- Backward pass: per-edge required times --------------------------------
  const double t_req =
      options.clock_period > 0.0 ? options.clock_period : out.worst_arrival;
  for (const std::string& po : netlist.primary_outputs()) {
    LibNetTiming& t = out.nets.at(po);
    t.rise.required = std::min(t.rise.required, t_req);
    t.fall.required = std::min(t.fall.required, t_req);
  }
  const auto& topo = netlist.topological_order();
  std::size_t arc_cursor = arcs.size();
  for (std::size_t v = topo.size(); v-- > 0;) {
    const gatelevel::Instance& inst = netlist.instances()[topo[v]];
    arc_cursor -= arc_counts[v];
    const LibNetTiming& out_t = out.nets.at(inst.output);
    for (std::size_t i = 0; i < arc_counts[v]; ++i) {
      const EdgeArc& arc = arcs[arc_cursor + i];
      const double req_out = out_t.edge(arc.out_rise).required;
      EdgeTiming& in_e = edge_of(out.nets.at(arc.from_net), arc.in_rise);
      in_e.required = std::min(in_e.required, req_out - arc.delay);
    }
  }
  MIVTX_EXPECT(arc_cursor == 0, "arc bookkeeping out of sync");

  // --- Slack -----------------------------------------------------------------
  out.worst_slack = netlist.primary_outputs().empty() ? 0.0 : kInf;
  for (auto& [net, t] : out.nets) {
    double s = kInf;
    for (const bool e : {true, false}) {
      const EdgeTiming& et = t.edge(e);
      if (et.valid()) s = std::min(s, et.required - et.arrival);
    }
    t.slack = s;
    out.worst_slack = std::min(out.worst_slack, s);
  }
  if (out.nets.empty()) out.worst_slack = 0.0;

  // --- Worst-N endpoint paths ------------------------------------------------
  std::vector<std::string> endpoints(netlist.primary_outputs());
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());
  std::stable_sort(endpoints.begin(), endpoints.end(),
                   [&](const std::string& a, const std::string& b) {
                     const LibNetTiming& ta = out.nets.at(a);
                     const LibNetTiming& tb = out.nets.at(b);
                     if (ta.slack != tb.slack) return ta.slack < tb.slack;
                     const auto ea = worst_edge(ta);
                     const auto eb = worst_edge(tb);
                     const double aa = ea ? ta.edge(*ea).arrival : -kInf;
                     const double ab = eb ? tb.edge(*eb).arrival : -kInf;
                     return aa > ab;
                   });
  const std::size_t n_paths = std::min(options.worst_paths, endpoints.size());
  for (std::size_t p = 0; p < n_paths; ++p) {
    const std::string& endpoint = endpoints[p];
    const LibNetTiming& et = out.nets.at(endpoint);
    const auto e0 = worst_edge(et);
    if (!e0) continue;  // endpoint never arrives (library holes upstream)
    TimingPath path;
    path.endpoint = endpoint;
    path.arrival = et.edge(*e0).arrival;
    path.required = et.edge(*e0).required;
    path.slack = et.slack;
    std::string net = endpoint;
    bool edge = *e0;
    while (true) {
      const LibNetTiming& t = out.nets.at(net);
      const EdgeTiming& te = t.edge(edge);
      path.points.push_back(PathPoint{t.driver, net, te.arrival, te.slew});
      if (te.critical_from.empty()) break;
      const bool next_edge = te.critical_from_rise;
      net = te.critical_from;
      edge = next_edge;
    }
    std::reverse(path.points.begin(), path.points.end());
    out.paths.push_back(std::move(path));
  }
  return out;
}

SlackStaResult LibStaResult::to_slack_result() const {
  SlackStaResult s;
  for (const auto& [net, t] : nets) {
    NetTiming n;
    n.driver = t.driver;
    n.slack = t.slack;
    const auto e = worst_edge(t);
    if (e) {
      const EdgeTiming& et = t.edge(*e);
      n.arrival = et.arrival;
      n.required = et.required;
      n.slew = et.slew;
      n.critical_from = et.critical_from;
    } else {
      n.arrival = 0.0;
      n.required = kInf;
    }
    s.nets.emplace(net, n);
  }
  s.worst_arrival = worst_arrival;
  s.worst_slack = worst_slack;
  s.worst_endpoint = worst_endpoint;
  s.paths = paths;
  // Per-edge arcs don't collapse losslessly into the single-edge ArcDelay
  // list; s.arcs stays empty (no renderer consumes it).
  return s;
}

}  // namespace mivtx::analyze
