// Library-backed static timing analysis: run_slack_sta's graph pass, but
// with every arc delay/slew looked up in a characterized NLDM library
// (charlib) instead of the linear CellTiming model.
//
// Differences from the synthetic-model pass (analyze/sta.h):
//   * dual-edge propagation — every net carries independent rise and fall
//     arrival/slew/required, and each library arc maps an input edge to
//     its output edge (inverting or non-inverting under the sensitizing
//     side inputs), so chain parity is modeled exactly;
//   * slews come from the characterized out_slew tables and feed the
//     readers' lookups (iteration-free: the netlist is combinational and
//     processed in topological order);
//   * loads come from the library's per-pin input capacitances;
//   * out-of-grid lookups are clamped AND counted (clamped_lookups), so
//     the analyzer can surface extrapolation as a `table-extrapolation`
//     diagnostic instead of silently trusting the table edge;
//   * a cell or arc absent from the library is never a crash or a silent
//     fallback: it is recorded in `missing` (the analyzer renders these as
//     `missing-timing` diagnostics) and the affected arc contributes a
//     zero-delay passthrough so the rest of the graph stays analyzable.
//
// Determinism matches run_slack_sta: ties break toward the smaller driving
// net name, then input-rise before input-fall.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analyze/sta.h"
#include "charlib/library.h"
#include "gatelevel/netlist.h"
#include "gatelevel/sta.h"

namespace mivtx::analyze {

struct LibStaOptions {
  gatelevel::StaLoadOptions loads;
  // Required arrival at the primary outputs; <= 0 = relative analysis.
  double clock_period = 0.0;
  // Transition at the primary inputs, both edges (s).
  double input_slew = 20e-12;
  std::size_t worst_paths = 5;
  // Reference load a primary output contributes when StaLoadOptions says
  // "use the reference" (the paper's 1 fF measurement condition).
  double c_ref = 1e-15;
};

// One library hole found during the pass.  pin == "" means the whole
// (impl, cell) entry is missing; otherwise the named (pin, input edge) arc.
struct MissingTiming {
  std::string instance;
  std::string cell;
  std::string pin;
  bool input_rise = true;
};

struct EdgeTiming {
  double arrival = 0.0;   // s; -inf when this edge never arrives
  double slew = 0.0;      // s, equivalent full-swing ramp
  double required = 0.0;  // s; +inf when unconstrained
  std::string critical_from;    // driving net of the winning arc ("" = PI)
  bool critical_from_rise = true;  // input edge of the winning arc
  bool valid() const;  // arrival is finite
};

struct LibNetTiming {
  EdgeTiming rise, fall;
  std::string driver;  // driving instance ("" = primary input)
  double slack = 0.0;  // min over valid edges; +inf when none constrained
  const EdgeTiming& edge(bool rise_edge) const {
    return rise_edge ? rise : fall;
  }
};

struct LibStaResult {
  std::map<std::string, LibNetTiming> nets;
  double worst_arrival = 0.0;
  double worst_slack = 0.0;
  std::string worst_endpoint;
  bool worst_endpoint_rise = true;
  // Worst `worst_paths` endpoint paths (per-edge critical walk).
  std::vector<TimingPath> paths;
  // Lookups that fell outside the characterization grid (clamped).
  std::size_t clamped_lookups = 0;
  // Library holes, in deterministic (topological instance, pin) order.
  std::vector<MissingTiming> missing;
  // Sum over gates of the mean per-arc switching energy at the propagated
  // (slew, load) point (J): one full toggle of every gate.  blockppa's
  // power numerator.
  double switching_energy = 0.0;

  // Collapse to run_slack_sta's single-edge vocabulary (worst edge per
  // net) for the analyzer report and renderers.
  SlackStaResult to_slack_result() const;
};

LibStaResult run_library_sta(const gatelevel::GateNetlist& netlist,
                             const charlib::CharLibrary& library,
                             cells::Implementation impl,
                             const LibStaOptions& options = {});

}  // namespace mivtx::analyze
