#include "analyze/pipeline.h"

#include <sstream>

#include "common/error.h"
#include "common/hash.h"
#include "common/strings.h"

namespace mivtx::analyze {

namespace {

void json_escape_into(std::ostringstream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << format("\\u%04x", c);
        } else {
          os << c;
        }
    }
  }
}

std::string json_string(const std::string& s) {
  std::ostringstream os;
  os << '"';
  json_escape_into(os, s);
  os << '"';
  return os.str();
}

const char* sarif_level(lint::Severity s) {
  switch (s) {
    case lint::Severity::kInfo:
      return "note";
    case lint::Severity::kWarning:
      return "warning";
    case lint::Severity::kError:
      return "error";
  }
  return "none";
}

lint::Severity parse_severity(std::string_view token, int line) {
  if (token == "error") return lint::Severity::kError;
  if (token == "warning") return lint::Severity::kWarning;
  if (token == "info") return lint::Severity::kInfo;
  throw Error(format("severity config line %d: unknown severity '%.*s'", line,
                     static_cast<int>(token.size()), token.data()));
}

}  // namespace

std::string fingerprint(const lint::Diagnostic& d) {
  StableHash h;
  h.mix(d.rule).mix(d.file).mix(d.element).mix(d.node).mix(d.message);
  return format("%016llx",
                static_cast<unsigned long long>(h.digest()));
}

SeverityConfig SeverityConfig::parse(const std::string& text) {
  SeverityConfig config;
  std::istringstream is(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(is, raw)) {
    ++lineno;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::vector<std::string> tok = split(raw, " \t");
    if (tok.empty()) continue;
    if (tok[0] == "severity" && tok.size() == 3) {
      config.set_severity(tok[1], parse_severity(tok[2], lineno));
    } else if (tok[0] == "suppress" && tok.size() == 2) {
      config.suppress_rule(tok[1]);
    } else if (tok[0] == "suppress-finding" && tok.size() == 2) {
      config.suppress_finding(tok[1]);
    } else {
      throw Error(format("severity config line %d: expected "
                         "'severity <rule> <level>', 'suppress <rule>' or "
                         "'suppress-finding <fingerprint>'",
                         lineno));
    }
  }
  return config;
}

void SeverityConfig::set_severity(const std::string& rule,
                                  lint::Severity severity) {
  severity_[rule] = severity;
}

void SeverityConfig::suppress_rule(const std::string& rule) {
  suppressed_rules_.insert(rule);
}

void SeverityConfig::suppress_finding(const std::string& fp) {
  suppressed_findings_.insert(fp);
}

std::vector<lint::Diagnostic> SeverityConfig::apply(
    const std::vector<lint::Diagnostic>& diags) const {
  std::vector<lint::Diagnostic> out;
  out.reserve(diags.size());
  for (const lint::Diagnostic& d : diags) {
    if (suppressed_rules_.count(d.rule) > 0) continue;
    if (!suppressed_findings_.empty() &&
        suppressed_findings_.count(fingerprint(d)) > 0) {
      continue;
    }
    lint::Diagnostic copy = d;
    const auto it = severity_.find(d.rule);
    if (it != severity_.end()) copy.severity = it->second;
    out.push_back(std::move(copy));
  }
  return out;
}

Baseline Baseline::parse(const std::string& text) {
  Baseline b;
  std::istringstream is(text);
  std::string raw;
  while (std::getline(is, raw)) {
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::vector<std::string> tok = split(raw, " \t");
    if (!tok.empty()) b.fingerprints_.insert(tok[0]);
  }
  return b;
}

std::string Baseline::serialize(const std::vector<lint::Diagnostic>& diags) {
  std::vector<lint::Diagnostic> sorted = diags;
  lint::sort_diagnostics(sorted);
  std::ostringstream os;
  std::set<std::string> seen;
  for (const lint::Diagnostic& d : sorted) {
    const std::string fp = fingerprint(d);
    if (!seen.insert(fp).second) continue;
    os << fp << " " << d.rule << "  # " << d.message << "\n";
  }
  return os.str();
}

std::vector<lint::Diagnostic> Baseline::new_findings(
    const std::vector<lint::Diagnostic>& diags) const {
  std::vector<lint::Diagnostic> out;
  for (const lint::Diagnostic& d : diags) {
    if (!contains(fingerprint(d))) out.push_back(d);
  }
  return out;
}

std::string render_sarif(const std::vector<lint::Diagnostic>& diags,
                         const std::string& tool,
                         const std::string& tool_version) {
  std::vector<lint::Diagnostic> sorted = diags;
  lint::sort_diagnostics(sorted);

  // Distinct rule ids, in sorted order, mapped to their rule index.
  std::map<std::string, std::size_t> rule_index;
  for (const lint::Diagnostic& d : sorted) {
    rule_index.emplace(d.rule, 0);
  }
  std::size_t next = 0;
  for (auto& [rule, idx] : rule_index) idx = next++;

  std::ostringstream os;
  os << "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/"
        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\","
     << "\"version\":\"2.1.0\",\"runs\":[{";
  os << "\"tool\":{\"driver\":{\"name\":" << json_string(tool)
     << ",\"version\":" << json_string(tool_version)
     << ",\"informationUri\":\"https://github.com/mivtx/mivtx\",\"rules\":[";
  bool first = true;
  for (const auto& [rule, idx] : rule_index) {
    if (!first) os << ",";
    first = false;
    os << "{\"id\":" << json_string(rule)
       << ",\"shortDescription\":{\"text\":" << json_string(rule) << "}}";
  }
  os << "]}},\"columnKind\":\"unicodeCodePoints\",\"results\":[";
  first = true;
  for (const lint::Diagnostic& d : sorted) {
    if (!first) os << ",";
    first = false;
    os << "{\"ruleId\":" << json_string(d.rule)
       << ",\"ruleIndex\":" << rule_index.at(d.rule)
       << ",\"level\":\"" << sarif_level(d.severity) << "\""
       << ",\"message\":{\"text\":";
    std::string text = d.message;
    if (!d.element.empty()) text = d.element + ": " + text;
    if (!d.node.empty()) text += " (net '" + d.node + "')";
    os << json_string(text) << "}";
    if (!d.file.empty()) {
      os << ",\"locations\":[{\"physicalLocation\":{\"artifactLocation\":"
         << "{\"uri\":" << json_string(d.file) << "}";
      if (d.line > 0) {
        os << ",\"region\":{\"startLine\":" << d.line << "}";
      }
      os << "}}]";
    }
    os << ",\"partialFingerprints\":{\"mivtxFingerprint/v1\":"
       << json_string(fingerprint(d)) << "}}";
  }
  os << "]}]}";
  return os.str();
}

std::optional<lint::Severity> max_severity(
    const std::vector<lint::Diagnostic>& diags) {
  std::optional<lint::Severity> worst;
  for (const lint::Diagnostic& d : diags) {
    if (!worst || static_cast<int>(d.severity) > static_cast<int>(*worst)) {
      worst = d.severity;
    }
  }
  return worst;
}

}  // namespace mivtx::analyze
