// Unified diagnostics pipeline for the static analyzers (mivtx::analyze
// and mivtx::lint share it; see DESIGN.md §12).
//
// The pipeline takes the flat lint::Diagnostic stream the passes emit and
// turns it into gateable, machine-consumable reports:
//   * SeverityConfig  — a text config that remaps per-rule severities and
//                       suppresses rules or individual findings.
//   * fingerprint     — a stable content hash of one finding (rule + anchors
//                       + message, deliberately excluding the line number so
//                       unrelated edits do not churn baselines).
//   * Baseline        — a checked-in set of fingerprints; CI gates on
//                       "no findings outside the baseline".
//   * render_sarif    — SARIF 2.1.0 output (one run, one result per
//                       finding, partialFingerprints for GitHub code
//                       scanning dedup).
// All renderers order findings with lint::sort_diagnostics, so output is
// byte-stable for a given finding set.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "lint/diagnostics.h"

namespace mivtx::analyze {

// Stable 16-hex-digit fingerprint of a finding's identity.  Line numbers are
// excluded on purpose: a baseline must survive edits above the finding.
std::string fingerprint(const lint::Diagnostic& d);

// Per-rule severity remapping and rule/finding suppression, loaded from a
// text config of one directive per line (# comments, blank lines ignored):
//   severity <rule-id> error|warning|info
//   suppress <rule-id>
//   suppress-finding <fingerprint>
class SeverityConfig {
 public:
  // Parse; throws mivtx::Error with a 1-based line number on a malformed
  // directive.
  static SeverityConfig parse(const std::string& text);

  void set_severity(const std::string& rule, lint::Severity severity);
  void suppress_rule(const std::string& rule);
  void suppress_finding(const std::string& fingerprint);

  // Apply to a finding stream: drops suppressed findings, remaps severities.
  std::vector<lint::Diagnostic> apply(
      const std::vector<lint::Diagnostic>& diags) const;

 private:
  std::map<std::string, lint::Severity> severity_;
  std::set<std::string> suppressed_rules_;
  std::set<std::string> suppressed_findings_;
};

// A set of known-finding fingerprints.  Serialized one per line as
// "<fingerprint> <rule-id>  # <message>" (everything after the fingerprint
// is a human aid and ignored on load).
class Baseline {
 public:
  static Baseline parse(const std::string& text);
  // Deterministic: findings sorted, one line each.
  static std::string serialize(const std::vector<lint::Diagnostic>& diags);

  bool contains(const std::string& fingerprint) const {
    return fingerprints_.count(fingerprint) > 0;
  }
  std::size_t size() const { return fingerprints_.size(); }

  // Findings whose fingerprint is not in the baseline (the CI gate fails on
  // any error-severity finding among these).
  std::vector<lint::Diagnostic> new_findings(
      const std::vector<lint::Diagnostic>& diags) const;

 private:
  std::set<std::string> fingerprints_;
};

// SARIF 2.1.0 document: one run, tool.driver.name = `tool`, one
// reportingDescriptor per distinct rule id, one result per finding.
// `base_uri` (optional) prefixes every artifactLocation uri.
std::string render_sarif(const std::vector<lint::Diagnostic>& diags,
                         const std::string& tool,
                         const std::string& tool_version);

// Highest severity present; nullopt when `diags` is empty.  Drives the CLI
// exit code (error → 1, warning/info/none → 0 unless --werror).
std::optional<lint::Severity> max_severity(
    const std::vector<lint::Diagnostic>& diags);

}  // namespace mivtx::analyze
