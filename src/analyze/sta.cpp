#include "analyze/sta.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace mivtx::analyze {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

SlackStaResult run_slack_sta(const gatelevel::GateNetlist& netlist,
                             const gatelevel::TimingModel& model,
                             cells::Implementation impl,
                             const StaOptions& options) {
  MIVTX_EXPECT(netlist.finalized(), "netlist not finalized");
  SlackStaResult out;

  const std::map<std::string, double> load =
      gatelevel::net_loads(netlist, model, impl, options.loads);
  auto load_of = [&](const std::string& net) {
    const auto it = load.find(net);
    return it == load.end() ? 0.0 : it->second;
  };

  // --- Forward pass: arrival + slew, per-arc delays --------------------------
  for (const std::string& in : netlist.primary_inputs()) {
    NetTiming t;
    t.arrival = 0.0;
    t.slew = options.input_slew;
    t.required = kInf;
    out.nets.emplace(in, t);
  }

  // Arc delay of `inst` from an input with transition `in_slew`, driving
  // capacitance `c_out`.
  auto arc_delay = [&](const gatelevel::CellTiming& t, double slope,
                       double c_out, double in_slew) {
    const double d = t.delay_ref + slope * (c_out - model.c_ref) +
                     t.slew_sens * in_slew;
    return std::max(d, 0.0);
  };

  for (const std::size_t idx : netlist.topological_order()) {
    const gatelevel::Instance& inst = netlist.instances()[idx];
    const gatelevel::CellTiming& t = model.timing(impl, inst.type);
    const double slope = model.slope(impl);
    const double c_out = load_of(inst.output);

    NetTiming result;
    result.arrival = -kInf;
    result.driver = inst.name;
    result.required = kInf;
    result.slew = std::max(t.slew_ref + t.slew_slope * (c_out - model.c_ref),
                           0.0);
    for (const std::string& in : inst.inputs) {
      const auto it = out.nets.find(in);
      MIVTX_EXPECT(it != out.nets.end(), "missing arrival for " + in);
      const double d = arc_delay(t, slope, c_out, it->second.slew);
      out.arcs.push_back(ArcDelay{inst.name, in, inst.output, d});
      const double a = it->second.arrival + d;
      // Deterministic tie-break: smaller net name wins an exact tie.
      if (a > result.arrival ||
          (a == result.arrival && in < result.critical_from)) {
        result.arrival = a;
        result.critical_from = in;
      }
    }
    if (inst.inputs.empty()) result.arrival = 0.0;
    out.nets[inst.output] = result;
  }

  // --- Worst arrival over the primary outputs --------------------------------
  out.worst_arrival = 0.0;
  for (const std::string& po : netlist.primary_outputs()) {
    const auto it = out.nets.find(po);
    MIVTX_EXPECT(it != out.nets.end(), "primary output unresolved: " + po);
    if (it->second.arrival > out.worst_arrival ||
        (it->second.arrival == out.worst_arrival &&
         (out.worst_endpoint.empty() || po < out.worst_endpoint))) {
      out.worst_arrival = it->second.arrival;
      out.worst_endpoint = po;
    }
  }

  // --- Backward pass: required times -----------------------------------------
  const double t_req =
      options.clock_period > 0.0 ? options.clock_period : out.worst_arrival;
  for (const std::string& po : netlist.primary_outputs()) {
    NetTiming& t = out.nets.at(po);
    t.required = std::min(t.required, t_req);
  }
  const auto& topo = netlist.topological_order();
  std::size_t arc_cursor = out.arcs.size();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const gatelevel::Instance& inst = netlist.instances()[*it];
    const double req_out = out.nets.at(inst.output).required;
    // The arcs of this instance are the last `inputs.size()` before the
    // cursor (forward pass appended them in topological instance order).
    arc_cursor -= inst.inputs.size();
    for (std::size_t i = 0; i < inst.inputs.size(); ++i) {
      const ArcDelay& arc = out.arcs[arc_cursor + i];
      NetTiming& in_t = out.nets.at(arc.from_net);
      in_t.required = std::min(in_t.required, req_out - arc.delay);
    }
  }
  MIVTX_EXPECT(arc_cursor == 0, "arc bookkeeping out of sync");

  // --- Slack -----------------------------------------------------------------
  out.worst_slack = netlist.primary_outputs().empty() ? 0.0 : kInf;
  for (auto& [net, t] : out.nets) {
    t.slack = t.required - t.arrival;  // inf for unconstrained nets
    out.worst_slack = std::min(out.worst_slack, t.slack);
  }
  if (out.nets.empty()) out.worst_slack = 0.0;

  // --- Worst-N endpoint paths ------------------------------------------------
  std::vector<std::string> endpoints(netlist.primary_outputs());
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());
  std::stable_sort(endpoints.begin(), endpoints.end(),
                   [&](const std::string& a, const std::string& b) {
                     const NetTiming& ta = out.nets.at(a);
                     const NetTiming& tb = out.nets.at(b);
                     // Worst slack first; on a slack tie the later arrival is
                     // the more interesting path (the name order from the
                     // pre-sort breaks exact ties deterministically).
                     if (ta.slack != tb.slack) return ta.slack < tb.slack;
                     return ta.arrival > tb.arrival;
                   });
  const std::size_t n_paths = std::min(options.worst_paths, endpoints.size());
  for (std::size_t p = 0; p < n_paths; ++p) {
    const std::string& endpoint = endpoints[p];
    TimingPath path;
    path.endpoint = endpoint;
    path.arrival = out.nets.at(endpoint).arrival;
    path.required = out.nets.at(endpoint).required;
    path.slack = out.nets.at(endpoint).slack;
    // Walk launch <- endpoint through the critical_from chain.
    std::string net = endpoint;
    while (true) {
      const NetTiming& t = out.nets.at(net);
      path.points.push_back(PathPoint{t.driver, net, t.arrival, t.slew});
      if (t.critical_from.empty()) break;
      net = t.critical_from;
    }
    std::reverse(path.points.begin(), path.points.end());
    out.paths.push_back(std::move(path));
  }
  return out;
}

}  // namespace mivtx::analyze
