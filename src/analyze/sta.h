// Slack-based static timing analysis (the analyzer's timing pass).
//
// Extends the arrival-only gatelevel/sta.h with the full STA vocabulary:
//   * per-arc delays — every (input pin -> output) arc of every instance
//     gets its own delay, load-dependent through the TimingModel slope and
//     slew-dependent through CellTiming::slew_sens;
//   * slew propagation — output transition slew_ref + slew_slope*(C-c_ref),
//     feeding the readers' arc delays;
//   * a required-time backward pass against a clock period (or, with no
//     clock given, against the worst arrival, making the worst slack
//     exactly zero);
//   * per-net slack and worst-N path enumeration for the report.
//
// Determinism: ties in the worst-arrival reduction are broken toward the
// lexicographically smallest driving net name, and path listings sort by
// (slack, endpoint name), so reports are byte-stable for a given design.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "gatelevel/netlist.h"
#include "gatelevel/sta.h"

namespace mivtx::analyze {

struct StaOptions {
  // External loads (per-output overrides, extra net loads); defaults keep
  // the paper's one-reference-load-per-output condition.
  gatelevel::StaLoadOptions loads;
  // Required arrival at every primary output (s).  <= 0 means "relative
  // analysis": the required time is the worst arrival itself.
  double clock_period = 0.0;
  // Transition time at the primary inputs (s).
  double input_slew = 0.0;
  // How many endpoint paths to enumerate, worst slack first.
  std::size_t worst_paths = 5;
};

struct ArcDelay {
  std::string instance;
  std::string from_net;  // input pin net
  std::string to_net;    // output net
  double delay = 0.0;    // s
};

struct NetTiming {
  double arrival = 0.0;   // s
  double required = 0.0;  // s (infinity when no output is reachable)
  double slack = 0.0;     // required - arrival
  double slew = 0.0;      // s, transition of the driving arc
  std::string critical_from;  // driving net of the critical input ("" = PI)
  std::string driver;         // driving instance ("" = primary input)
};

struct PathPoint {
  std::string instance;  // "" for the primary-input start point
  std::string net;
  double arrival = 0.0;
  double slew = 0.0;
};

struct TimingPath {
  std::string endpoint;
  double arrival = 0.0;
  double required = 0.0;
  double slack = 0.0;
  std::vector<PathPoint> points;  // launch -> endpoint
};

struct SlackStaResult {
  std::map<std::string, NetTiming> nets;
  std::vector<ArcDelay> arcs;  // every timing arc, instance order
  double worst_arrival = 0.0;
  double worst_slack = 0.0;
  std::string worst_endpoint;
  // Worst `StaOptions::worst_paths` endpoint paths, slack ascending.
  std::vector<TimingPath> paths;
};

SlackStaResult run_slack_sta(const gatelevel::GateNetlist& netlist,
                             const gatelevel::TimingModel& model,
                             cells::Implementation impl,
                             const StaOptions& options = {});

}  // namespace mivtx::analyze
