#include "analyze/tier_rules.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"
#include "layout/cell_layout.h"

namespace mivtx::analyze {

namespace {

// Overlap + per-row KOZ checks on one placed tier.  `label` distinguishes
// the coupled/top/bottom placements in messages.
void check_tier(const place::TierPlacement& tier, const char* label,
                cells::Implementation impl, const TierRuleOptions& options,
                lint::DiagnosticSink& sink) {
  // Group rows by y coordinate (the packer emits uniform rows).
  std::map<double, std::vector<const place::PlacedCell*>> rows;
  for (const place::PlacedCell& c : tier.cells) rows[c.y].push_back(&c);

  const double koz_w = layout::external_miv_width(options.rules);
  for (auto& [y, row] : rows) {
    std::sort(row.begin(), row.end(),
              [](const place::PlacedCell* a, const place::PlacedCell* b) {
                if (a->x != b->x) return a->x < b->x;
                return a->instance < b->instance;
              });
    double koz_demand = 0.0;
    double occupied = 0.0;
    for (std::size_t i = 0; i < row.size(); ++i) {
      const place::PlacedCell& c = *row[i];
      occupied += c.width;
      if (impl == cells::Implementation::k2D) {
        koz_demand += koz_w * layout::count_gate_nets(c.type);
      }
      if (i + 1 < row.size()) {
        const place::PlacedCell& next = *row[i + 1];
        if (c.x + c.width > next.x + 1e-15) {
          sink.error("cell-overlap",
                     format("%s placement: overlaps %s by %s", label,
                            next.instance.c_str(),
                            eng_format(c.x + c.width - next.x, "m").c_str()),
                     c.instance, "", 0);
        }
      }
    }
    if (impl == cells::Implementation::k2D && koz_demand > occupied &&
        !row.empty()) {
      sink.error(
          "koz-row-overflow",
          format("%s placement row at y=%s: external-MIV keep-out demand %s "
                 "exceeds the occupied row width %s",
                 label, eng_format(y, "m").c_str(),
                 eng_format(koz_demand, "m").c_str(),
                 eng_format(occupied, "m").c_str()),
          row.front()->instance, "", 0);
    }
  }
}

}  // namespace

std::size_t analyze_tiers(const Design& design,
                          const place::Placement& placement,
                          lint::DiagnosticSink& sink,
                          const TierRuleOptions& options) {
  const std::size_t errors_before = sink.num_errors();
  const cells::Implementation impl = placement.impl;

  // --- Placement <-> netlist consistency -------------------------------------
  std::set<std::string> placed;
  auto collect = [&](const place::TierPlacement& tier) {
    for (const place::PlacedCell& c : tier.cells) placed.insert(c.instance);
  };
  collect(placement.coupled);
  collect(placement.top);
  collect(placement.bottom);

  std::set<std::string> netlist_gates;
  for (const Gate& g : design.gates) {
    netlist_gates.insert(g.name);
    if (placed.count(g.name) == 0) {
      sink.error("placement-missing-instance",
                 "gate is not present in the placement", g.name, "", g.line);
    }
  }
  for (const std::string& inst : placed) {
    if (netlist_gates.count(inst) == 0) {
      sink.error("placement-unknown-instance",
                 "placed cell is not a netlist gate", inst, "", 0);
    }
  }

  // --- Geometry rules per placed tier ----------------------------------------
  if (placement.mode == place::Mode::kCoupled) {
    check_tier(placement.coupled, "coupled", impl, options, sink);
  } else {
    check_tier(placement.top, "top-tier", impl, options, sink);
    check_tier(placement.bottom, "bottom-tier", impl, options, sink);
  }

  // --- MIV congestion across the tier boundary -------------------------------
  // Every net feeding an n-type gate crosses the boundary: as an external-
  // contact via in 2D, as the MIV-transistor stem itself otherwise.
  std::size_t total_mivs = 0;
  for (const Gate& g : design.gates) {
    if (g.type) total_mivs += static_cast<std::size_t>(
        layout::count_gate_nets(*g.type));
  }
  const double area_um2 = placement.chip_area() * 1e12;
  const double density = area_um2 > 0.0
                             ? static_cast<double>(total_mivs) / area_um2
                             : 0.0;
  if (area_um2 > 0.0 && density > options.max_miv_density_per_um2) {
    sink.warning("miv-congestion",
                 format("%zu MIVs over %.3f um^2 = %.1f /um^2 exceeds the "
                        "budget %.1f /um^2",
                        total_mivs, area_um2, density,
                        options.max_miv_density_per_um2));
  }

  // --- Cross-tier net budget --------------------------------------------------
  // Signal nets that span both tiers: any net touching a gate pin (p-type
  // devices sit on the bottom tier, n-type on the top, so every cell-internal
  // logic net exists on both).
  std::set<std::string> crossing;
  for (const Gate& g : design.gates) {
    crossing.insert(g.output);
    crossing.insert(g.inputs.begin(), g.inputs.end());
  }
  if (options.cross_tier_net_budget > 0 &&
      crossing.size() > options.cross_tier_net_budget) {
    sink.warning("cross-tier-net-budget",
                 format("%zu nets span the tier boundary, budget is %zu",
                        crossing.size(), options.cross_tier_net_budget));
  }

  // --- Utilization -------------------------------------------------------------
  auto check_util = [&](const place::TierPlacement& tier, const char* label) {
    if (tier.cells.empty()) return;
    if (tier.utilization() < options.min_utilization) {
      sink.warning("low-utilization",
                   format("%s placement utilization %.2f below %.2f", label,
                          tier.utilization(), options.min_utilization));
    }
  };
  if (placement.mode == place::Mode::kCoupled) {
    check_util(placement.coupled, "coupled");
  } else {
    check_util(placement.top, "top-tier");
    check_util(placement.bottom, "bottom-tier");
  }

  sink.info("tier-summary",
            format("%s/%s: %zu cells, %zu tier-crossing nets, %zu MIVs, "
                   "%.2f /um^2, outline %.3f um^2",
                   cells::impl_name(impl), place::mode_name(placement.mode),
                   design.gates.size(), crossing.size(), total_mivs, density,
                   area_um2));
  return sink.num_errors() - errors_before;
}

}  // namespace mivtx::analyze
