// Tier-aware placement / MIV rules over a placed block (the block-level
// promotion of the cell-local KOZ checks in lint/cell_rules.h, after the
// ISQED'23 MIV keep-out-zone rule class).
//
//   placement-missing-instance (error)   netlist gate absent from placement
//   placement-unknown-instance (error)   placed cell absent from netlist
//   cell-overlap               (error)   two placed cells in one row overlap
//   koz-row-overflow           (error)   2D only: a row's external-contact
//                                        MIV keep-out demand exceeds the
//                                        row's occupied width
//   miv-congestion             (warning) MIVs crossing the tier boundary per
//                                        µm² of outline exceed the budget
//   cross-tier-net-budget      (warning) nets spanning both tiers exceed the
//                                        configured budget (0 = disabled)
//   low-utilization            (warning) outline utilization below threshold
//   tier-summary               (info)    one per-block rollup (MIV count,
//                                        crossing nets, utilization)
#pragma once

#include <cstddef>

#include "analyze/design.h"
#include "layout/rules.h"
#include "lint/diagnostics.h"
#include "place/placer.h"

namespace mivtx::analyze {

struct TierRuleOptions {
  // MIVs (gate-net vias) allowed per µm² of chip outline.
  double max_miv_density_per_um2 = 40.0;
  // Max nets spanning the tier boundary; 0 disables the check.
  std::size_t cross_tier_net_budget = 0;
  // Minimum acceptable placement utilization (placed footprint / outline).
  double min_utilization = 0.35;
  layout::DesignRules rules;
};

// Returns the number of error-severity findings added to `sink`.
std::size_t analyze_tiers(const Design& design,
                          const place::Placement& placement,
                          lint::DiagnosticSink& sink,
                          const TierRuleOptions& options = {});

}  // namespace mivtx::analyze
