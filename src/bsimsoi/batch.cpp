#include "bsimsoi/batch.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace mivtx::bsimsoi {

void DeviceBatch::bind(const std::vector<const SoiModelCard*>& cards,
                       SimdLevel level) {
  count_ = cards.size();
  level_ = (level == SimdLevel::kAvx2 && avx2_kernel_compiled() &&
            cpu_has_avx2())
               ? SimdLevel::kAvx2
               : SimdLevel::kScalarLane;
  fn_ = (level_ == SimdLevel::kAvx2) ? &kernel::eval_block_avx2
                                     : &kernel::eval_block_portable;

  for (auto& p : params_) p.assign(count_, 0.0);
  active_.assign(count_, 0);
  avg_.assign(count_, 0.0);
  avd_.assign(count_, 0.0);
  avs_.assign(count_, 0.0);
  active_count_ = 0;
  out_.assign(count_, ModelOutput{});

  using namespace kernel;
  for (std::size_t i = 0; i < count_; ++i) {
    MIVTX_EXPECT(cards[i] != nullptr, "DeviceBatch::bind: null model card");
    const SoiModelCard& c = *cards[i];
    // Same per-evaluation precompute as model.cpp core(), hoisted to bind
    // time — identical expressions so the values round identically.
    const double t_kelvin = 273.15 + c.temp;
    const double tnom_kelvin = 273.15 + c.tnom;
    const double t_ratio = t_kelvin / tnom_kelvin;
    const double vt = thermal_voltage(t_kelvin);
    const double u0_t = c.u0 * std::pow(t_ratio, c.ute);
    const double vsat_t = std::max(c.vsat - c.at * (t_ratio - 1.0), 1e3);
    const double cox = kEpsRelSiO2 * kVacuumPermittivity / c.tox;
    const double vth0 = std::fabs(c.vth0) + c.kt1 * (t_ratio - 1.0);
    const double lambda =
        std::sqrt((kEpsRelSilicon / kEpsRelSiO2) * c.tox * c.tsi);
    const double kVbiScale = 0.9;
    const double dv_sce =
        c.dvt0 * kVbiScale * std::exp(-c.dvt1 * c.l / (2.0 * lambda));
    const double clw = c.w * c.l * cox;

    params_[kS][i] = (c.polarity == Polarity::kNmos) ? 1.0 : -1.0;
    params_[kVt][i] = vt;
    params_[kTwoVt][i] = 2.0 * vt;
    params_[kU0t][i] = u0_t;
    params_[kCox][i] = cox;
    params_[kVthBase][i] = vth0 - dv_sce;
    params_[kTwoVth0][i] = 2.0 * vth0;
    params_[kEtab][i] = c.etab;
    params_[kNfactor][i] = c.nfactor;
    params_[kCdsc][i] = c.cdsc;
    params_[kCdscd][i] = c.cdscd;
    params_[kSixTox][i] = 6.0 * c.tox;
    params_[kUa][i] = c.ua;
    params_[kUb][i] = c.ub;
    params_[kUd][i] = c.ud;
    params_[kUcs][i] = c.ucs;
    params_[kEsatC][i] = 2.0 * vsat_t * c.l;
    params_[kBetaC][i] = cox * c.w / c.l;
    params_[kPclm][i] = c.pclm;
    params_[kPvag][i] = c.pvag;
    params_[kRds][i] = c.rdsw * 1e-6 / c.w;
    params_[kDelvt][i] = c.delvt;
    params_[kMoinScale][i] = std::max(c.moin, 1.0) / 15.0;
    params_[kNegClw23][i] = -clw * 2.0 / 3.0;
    params_[kNegClw215][i] = -clw * 2.0 / 15.0;
    if (c.k1b > 0.0) {
      const double clwb = c.k1b * clw;
      params_[kNegClwb23][i] = -clwb * 2.0 / 3.0;
      params_[kNegClwb215][i] = -clwb * 2.0 / 15.0;
    }
    params_[kDvtb][i] = c.dvtb;
    params_[kW][i] = c.w;
    params_[kCgsoCf][i] = c.cgso + c.cf;
    params_[kCgdoCf][i] = c.cgdo + c.cf;
    params_[kCgsl][i] = c.cgsl;
    params_[kCgdl][i] = c.cgdl;
    params_[kKappa][i] = std::max(c.ckappa, 1e-3);
  }
}

std::size_t DeviceBatch::eval() {
  using namespace kernel;
  if (active_count_ == 0) return 0;
  alignas(32) KernelBlock blk;
  alignas(32) KernelOut ko;
  std::size_t blocks = 0;
  for (std::size_t base = 0; base < active_count_; base += kLaneWidth) {
    const int lanes = static_cast<int>(
        std::min<std::size_t>(kLaneWidth, active_count_ - base));
    for (int l = 0; l < kLaneWidth; ++l) {
      // Unused tail lanes replicate the last staged instance so the block
      // math stays on a bias the model accepts.
      const std::size_t a = base + static_cast<std::size_t>(
                                       std::min(l, lanes - 1));
      const std::uint32_t inst = active_[a];
      for (int p = 0; p < kNumParams; ++p) blk.p[p][l] = params_[p][inst];
      blk.vg[l] = avg_[a];
      blk.vd[l] = avd_[a];
      blk.vs[l] = avs_[a];
    }
    fn_(blk, ko);
    ++blocks;
    for (int l = 0; l < lanes; ++l) {
      ModelOutput& o = out_[active_[base + static_cast<std::size_t>(l)]];
      o.ids = ko.o[kIds][l];
      o.dids[0] = ko.o[kDidsG][l];
      o.dids[1] = ko.o[kDidsD][l];
      o.dids[2] = ko.o[kDidsS][l];
      o.qg = ko.o[kQg][l];
      o.qd = ko.o[kQd][l];
      o.qs = ko.o[kQs][l];
      o.dqg[0] = ko.o[kDqgG][l];
      o.dqg[1] = ko.o[kDqgD][l];
      o.dqg[2] = ko.o[kDqgS][l];
      o.dqd[0] = ko.o[kDqdG][l];
      o.dqd[1] = ko.o[kDqdD][l];
      o.dqd[2] = ko.o[kDqdS][l];
      o.dqs[0] = ko.o[kDqsG][l];
      o.dqs[1] = ko.o[kDqsD][l];
      o.dqs[2] = ko.o[kDqsS][l];
    }
  }
  return blocks;
}

}  // namespace mivtx::bsimsoi
