// Structure-of-arrays batch evaluation of BSIMSOI MOSFET instances.
//
// DeviceBatch holds the bind-time parameter SoA for a fixed set of device
// instances (an instance is a device in one circuit; cross-corner packing
// binds device x corner so corner lanes of the same device sit adjacent
// and pack into one SIMD block).  Per Newton iteration the caller stages
// the instances whose terminal voltages actually changed, calls eval()
// once, and reads back per-instance ModelOutput identical in meaning to
// bsimsoi::eval — the assembly loop then scatters them through the cached
// AssemblyPlan exactly as before.
//
// All storage is sized at bind(); staging and eval are allocation-free,
// preserving the steady-state zero-allocation contract of the transient
// loop (DESIGN.md §5.8).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bsimsoi/batch_kernel.h"
#include "bsimsoi/model.h"
#include "bsimsoi/params.h"
#include "bsimsoi/simd.h"

namespace mivtx::bsimsoi {

class DeviceBatch {
 public:
  // Precompute the parameter SoA for one instance per card (cards may
  // repeat and may outlive only the bind call itself) and pick the kernel
  // for `level` (capped at what is compiled in / supported).
  void bind(const std::vector<const SoiModelCard*>& cards, SimdLevel level);

  std::size_t instances() const { return count_; }
  SimdLevel level() const { return level_; }

  // Staging protocol: clear, stage each changed instance with its terminal
  // voltages, eval once.  Instances not staged keep their previous output.
  void clear_active() { active_count_ = 0; }
  void stage(std::size_t i, double vg, double vd, double vs) {
    const std::size_t a = active_count_++;
    active_[a] = static_cast<std::uint32_t>(i);
    avg_[a] = vg;
    avd_[a] = vd;
    avs_[a] = vs;
  }
  std::size_t active_count() const { return active_count_; }

  // Evaluate all staged instances in blocks of kLaneWidth; a partial final
  // block replicates its last instance into the unused lanes.  Returns the
  // number of kernel blocks dispatched (for lane-occupancy metrics).
  std::size_t eval();

  const ModelOutput& output(std::size_t i) const { return out_[i]; }

 private:
  std::size_t count_ = 0;
  SimdLevel level_ = SimdLevel::kScalarLane;
  void (*fn_)(const kernel::KernelBlock&, kernel::KernelOut&) = nullptr;

  // params_[p] is the per-instance array of kernel parameter p.
  std::vector<double> params_[kernel::kNumParams];
  std::vector<std::uint32_t> active_;
  std::vector<double> avg_, avd_, avs_;
  std::size_t active_count_ = 0;
  std::vector<ModelOutput> out_;
};

}  // namespace mivtx::bsimsoi
