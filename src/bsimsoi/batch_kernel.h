// Internal interface between DeviceBatch and the two kernel builds.
//
// DeviceBatch gathers the per-device parameter SoA plus the terminal
// biases of up to kLaneWidth active instances into one KernelBlock; a
// kernel build evaluates the block and leaves the external-terminal model
// outputs (same semantics as bsimsoi::eval) in a KernelOut.  The portable
// build is always present; the AVX2 build exists only when the MIVTX_SIMD
// CMake option is ON (its TU carries -mavx2 -mfma).
#pragma once

#include "bsimsoi/simd.h"

namespace mivtx::bsimsoi::kernel {

// Per-device parameters, precomputed at bind time with exactly the same
// scalar arithmetic model.cpp's core() performs per evaluation — the
// kernel then reproduces the bias-dependent math operation-for-operation,
// so the only value drift vs the scalar path is the exp/log1p
// implementation of the AVX2 build (~1 ulp).
enum Param : int {
  kS = 0,       // polarity sign (+1 nmos, -1 pmos)
  kVt,          // thermal voltage at the card temperature
  kTwoVt,       // 2 * vt
  kU0t,         // temperature-scaled low-field mobility
  kCox,         // gate-oxide capacitance per area
  kVthBase,     // vth0(T) - dV_SCE
  kTwoVth0,     // 2 * vth0(T)
  kEtab,        // DIBL coefficient
  kNfactor,
  kCdsc,
  kCdscd,
  kSixTox,      // 6 * tox
  kUa,
  kUb,
  kUd,
  kUcs,
  kEsatC,       // 2 * vsat(T) * L
  kBetaC,       // cox * W / L
  kPclm,
  kPvag,
  kRds,         // RDSW * 1e-6 / W
  kDelvt,
  kMoinScale,   // max(MOIN, 1) / 15
  kNegClw23,    // -(W*L*cox) * 2/3
  kNegClw215,   // -(W*L*cox) * 2/15
  kNegClwb23,   // back-channel: -(K1B*W*L*cox) * 2/3; 0 disables the branch
  kNegClwb215,
  kDvtb,
  kW,
  kCgsoCf,      // CGSO + CF
  kCgdoCf,      // CGDO + CF
  kCgsl,
  kCgdl,
  kKappa,       // max(CKAPPA, 1e-3)
  kNumParams,
};

// External-terminal outputs, one lane per instance; layout mirrors
// ModelOutput (dids/dq columns ordered g, d, s).
enum Out : int {
  kIds = 0,
  kDidsG, kDidsD, kDidsS,
  kQg, kQd, kQs,
  kDqgG, kDqgD, kDqgS,
  kDqdG, kDqdD, kDqdS,
  kDqsG, kDqsD, kDqsS,
  kNumOutputs,
};

struct alignas(32) KernelBlock {
  double p[kNumParams][kLaneWidth];
  double vg[kLaneWidth];
  double vd[kLaneWidth];
  double vs[kLaneWidth];
};

struct alignas(32) KernelOut {
  double o[kNumOutputs][kLaneWidth];
};

// Portable build: scalar math per lane, bit-faithful to bsimsoi::eval
// (same branches, same libm calls, same operation order).
void eval_block_portable(const KernelBlock& in, KernelOut& out);

// AVX2 build; only callable when avx2_kernel_compiled() (it is a stub
// that aborts otherwise).
void eval_block_avx2(const KernelBlock& in, KernelOut& out);

}  // namespace mivtx::bsimsoi::kernel
