// AVX2+FMA build of the batched BSIMSOI kernel: 4 double lanes per block.
//
// This TU is compiled with -mavx2 -mfma (set per-source in CMake) and only
// when the MIVTX_SIMD option is ON, so the rest of the library keeps the
// baseline ISA.  The two transcendentals the kernel needs are implemented
// here rather than calling libm per lane:
//
//  * exp on (-inf, 0]: Cody-Waite argument reduction against ln 2 followed
//    by the Cephes expm1-style rational 1 + 2rP(r^2)/(Q(r^2) - rP(r^2)) on
//    |r| <= ln(2)/2, then exact 2^n scaling through the exponent bits.
//    Inputs below -708 flush to 0 like libm.  The kernel only ever
//    exponentiates non-positive arguments (softplus feeds it -|z|), so no
//    overflow path is needed.
//  * log1p on [0, 1]: 2 atanh(u) with u = t/(2+t) in [0, 1/3], evaluated
//    as the odd series 2u(1 + w/3 + w^2/5 + ...) with w = u^2 <= 1/9;
//    18 terms put the truncation error below double epsilon.
//
// Both are accurate to ~1 ulp on their (restricted) domains; the
// scalar-vs-SIMD differential gate in verify holds the end-to-end solver
// difference to 1e-9.
#if defined(MIVTX_SIMD_AVX2)

#include <immintrin.h>

#include "bsimsoi/batch_kernel_impl.h"

namespace mivtx::bsimsoi::kernel {

namespace {

struct VAvx {
  __m256d x;
  static constexpr bool kScalarSemantics = false;

  static VAvx load(const double (&p)[kLaneWidth], int /*lane*/) {
    return {_mm256_load_pd(p)};
  }
  void store(double (&p)[kLaneWidth], int /*lane*/) const {
    _mm256_store_pd(p, x);
  }
  static VAvx broadcast(double v) { return {_mm256_set1_pd(v)}; }
  static VAvx zero() { return {_mm256_setzero_pd()}; }
  static VAvx one() { return {_mm256_set1_pd(1.0)}; }
  static VAvx half() { return {_mm256_set1_pd(0.5)}; }

  friend VAvx operator+(VAvx a, VAvx b) { return {_mm256_add_pd(a.x, b.x)}; }
  friend VAvx operator-(VAvx a, VAvx b) { return {_mm256_sub_pd(a.x, b.x)}; }
  friend VAvx operator*(VAvx a, VAvx b) { return {_mm256_mul_pd(a.x, b.x)}; }
  friend VAvx operator/(VAvx a, VAvx b) { return {_mm256_div_pd(a.x, b.x)}; }
  friend VAvx operator-(VAvx a) {
    return {_mm256_xor_pd(a.x, _mm256_set1_pd(-0.0))};
  }

  static VAvx sqrt(VAvx a) { return {_mm256_sqrt_pd(a.x)}; }

  // exp restricted to non-positive arguments (see file comment).
  static VAvx exp(VAvx v) {
    const __m256d lo = _mm256_set1_pd(-708.0);
    const __m256d x = _mm256_max_pd(v.x, lo);
    const __m256d n = _mm256_round_pd(
        _mm256_mul_pd(x, _mm256_set1_pd(1.44269504088896340736)),
        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    // r = x - n*ln2, split so the subtraction stays exact.
    __m256d r = _mm256_fnmadd_pd(n, _mm256_set1_pd(6.93145751953125e-1), x);
    r = _mm256_fnmadd_pd(n, _mm256_set1_pd(1.42860682030941723212e-6), r);
    const __m256d r2 = _mm256_mul_pd(r, r);
    __m256d p = _mm256_fmadd_pd(r2, _mm256_set1_pd(1.26177193074810590878e-4),
                                _mm256_set1_pd(3.02994407707441961300e-2));
    p = _mm256_fmadd_pd(r2, p, _mm256_set1_pd(9.99999999999999999910e-1));
    const __m256d rp = _mm256_mul_pd(r, p);
    __m256d q = _mm256_fmadd_pd(r2, _mm256_set1_pd(3.00198505138664455042e-6),
                                _mm256_set1_pd(2.52448340349684104192e-3));
    q = _mm256_fmadd_pd(r2, q, _mm256_set1_pd(2.27265548208155028766e-1));
    q = _mm256_fmadd_pd(r2, q, _mm256_set1_pd(2.00000000000000000005e0));
    __m256d e = _mm256_add_pd(
        _mm256_set1_pd(1.0),
        _mm256_div_pd(_mm256_add_pd(rp, rp), _mm256_sub_pd(q, rp)));
    // Scale by 2^n through the exponent field; n in [-1021, 0] keeps the
    // constructed double normal.
    const __m256i n64 = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(n));
    const __m256i bits =
        _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
    e = _mm256_mul_pd(e, _mm256_castsi256_pd(bits));
    // Flush true underflow (x < -708) to zero, matching libm far tails.
    const __m256d uf = _mm256_cmp_pd(v.x, lo, _CMP_LT_OQ);
    return {_mm256_andnot_pd(uf, e)};
  }

  // log1p restricted to [0, 1] (see file comment).
  static VAvx log1p(VAvx t) {
    const __m256d u =
        _mm256_div_pd(t.x, _mm256_add_pd(_mm256_set1_pd(2.0), t.x));
    const __m256d w = _mm256_mul_pd(u, u);
    __m256d p = _mm256_set1_pd(1.0 / 35.0);
    p = _mm256_fmadd_pd(p, w, _mm256_set1_pd(1.0 / 33.0));
    p = _mm256_fmadd_pd(p, w, _mm256_set1_pd(1.0 / 31.0));
    p = _mm256_fmadd_pd(p, w, _mm256_set1_pd(1.0 / 29.0));
    p = _mm256_fmadd_pd(p, w, _mm256_set1_pd(1.0 / 27.0));
    p = _mm256_fmadd_pd(p, w, _mm256_set1_pd(1.0 / 25.0));
    p = _mm256_fmadd_pd(p, w, _mm256_set1_pd(1.0 / 23.0));
    p = _mm256_fmadd_pd(p, w, _mm256_set1_pd(1.0 / 21.0));
    p = _mm256_fmadd_pd(p, w, _mm256_set1_pd(1.0 / 19.0));
    p = _mm256_fmadd_pd(p, w, _mm256_set1_pd(1.0 / 17.0));
    p = _mm256_fmadd_pd(p, w, _mm256_set1_pd(1.0 / 15.0));
    p = _mm256_fmadd_pd(p, w, _mm256_set1_pd(1.0 / 13.0));
    p = _mm256_fmadd_pd(p, w, _mm256_set1_pd(1.0 / 11.0));
    p = _mm256_fmadd_pd(p, w, _mm256_set1_pd(1.0 / 9.0));
    p = _mm256_fmadd_pd(p, w, _mm256_set1_pd(1.0 / 7.0));
    p = _mm256_fmadd_pd(p, w, _mm256_set1_pd(1.0 / 5.0));
    p = _mm256_fmadd_pd(p, w, _mm256_set1_pd(1.0 / 3.0));
    p = _mm256_fmadd_pd(p, w, _mm256_set1_pd(1.0));
    return {_mm256_mul_pd(_mm256_add_pd(u, u), p)};
  }

  // Masks are all-ones/all-zeros lane patterns from _mm256_cmp_pd.
  static VAvx gt_zero(VAvx a) {
    return {_mm256_cmp_pd(a.x, _mm256_setzero_pd(), _CMP_GT_OQ)};
  }
  static VAvx lt_zero(VAvx a) {
    return {_mm256_cmp_pd(a.x, _mm256_setzero_pd(), _CMP_LT_OQ)};
  }
  static VAvx select(VAvx m, VAvx a, VAvx b) {
    return {_mm256_blendv_pd(b.x, a.x, m.x)};
  }
  static bool any_nonzero(VAvx a) {
    const __m256d nz =
        _mm256_cmp_pd(a.x, _mm256_setzero_pd(), _CMP_NEQ_OQ);
    return _mm256_movemask_pd(nz) != 0;
  }
};

}  // namespace

void eval_block_avx2(const KernelBlock& in, KernelOut& out) {
  eval_block_t<VAvx>(in, out, 0);
}

}  // namespace mivtx::bsimsoi::kernel

#endif  // MIVTX_SIMD_AVX2
