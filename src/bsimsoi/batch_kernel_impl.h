// Shared body of the batched BSIMSOI kernel, included by exactly two
// translation units: batch_kernel_portable.cpp (scalar lanes) and
// batch_kernel_avx2.cpp (4 x double AVX2+FMA lanes).
//
// The math is a transliteration of model.cpp: the same Dual<2> forward-AD
// recurrences over (vgs', vds') in mirrored coordinates, the same
// polarity/terminal-swap mapping, the same operation order.  Two
// deliberate deviations, both per-lane-exact in value and derivative:
//
//  * softplus: the scalar model branches on z = x/k (z > 40 -> x,
//    z < -40 -> k*exp(z)).  A lane vector cannot branch, so the vector
//    build uses the identity  k*log1p(exp(z)) = max(x,0) + k*log1p(exp(-|z|))
//    which is exact for all z, never overflows, and carries the correct
//    derivative through the same dual recurrences.  The scalar-lane build
//    keeps the original branches so it stays bit-faithful to model.cpp.
//  * the back-interface charge branch (k1b > 0) is gated per *block*:
//    skipped only when every lane has it disabled; enabled lanes with
//    k1b == 0 multiply the branch by a 0 coefficient, which contributes
//    exact +/-0 terms just like the scalar early-out.
//
// The lane type V supplies IEEE arithmetic, sqrt, exp, log1p, and (vector
// build only) per-lane selects.  Everything else is generic.
#pragma once

#include "bsimsoi/batch_kernel.h"

namespace mivtx::bsimsoi::kernel {

// Dual number over a lane vector: value plus partials w.r.t. the two
// independent variables of the current basis.  The recurrences mirror
// common/dual.h Dual<2> exactly (including division via multiplication by
// the reciprocal), so values round identically to the scalar path.
template <class V>
struct DV {
  V v, d0, d1;
};

template <class V>
inline DV<V> dconst(V c) {
  return DV<V>{c, V::zero(), V::zero()};
}

template <class V>
inline DV<V> operator+(const DV<V>& a, const DV<V>& b) {
  return {a.v + b.v, a.d0 + b.d0, a.d1 + b.d1};
}
template <class V>
inline DV<V> operator-(const DV<V>& a, const DV<V>& b) {
  return {a.v - b.v, a.d0 - b.d0, a.d1 - b.d1};
}
template <class V>
inline DV<V> operator-(const DV<V>& a) {
  return {-a.v, -a.d0, -a.d1};
}
template <class V>
inline DV<V> operator*(const DV<V>& a, const DV<V>& b) {
  return {a.v * b.v, a.d0 * b.v + a.v * b.d0, a.d1 * b.v + a.v * b.d1};
}
template <class V>
inline DV<V> operator/(const DV<V>& a, const DV<V>& b) {
  const V inv = V::one() / b.v;
  return {a.v * inv, (a.d0 - a.v * inv * b.d0) * inv,
          (a.d1 - a.v * inv * b.d1) * inv};
}

template <class V>
inline DV<V> chain(const DV<V>& x, V f, V dfdx) {
  return {f, dfdx * x.d0, dfdx * x.d1};
}

template <class V>
inline DV<V> sqrt_dv(const DV<V>& x) {
  const V s = V::sqrt(x.v);
  // Matches Dual sqrt: derivative 0.5/s, forced to 0 at s == 0.
  return chain(x, s, V::select(V::gt_zero(s), V::half() / s, V::zero()));
}

template <class V>
inline DV<V> exp_dv(const DV<V>& x) {
  const V e = V::exp(x.v);
  return chain(x, e, e);
}

template <class V>
inline DV<V> log1p_dv(const DV<V>& x) {
  return chain(x, V::log1p(x.v), V::one() / (V::one() + x.v));
}

// softplus with dual width k; see the header comment for the two builds.
template <class V>
inline DV<V> softplus_dv(const DV<V>& x, const DV<V>& k) {
  if constexpr (V::kScalarSemantics) {
    const double z = x.v.lane() / k.v.lane();
    if (z > 40.0) return x;
    if (z < -40.0) return k * exp_dv(x / k);
    return k * log1p_dv(exp_dv(x / k));
  } else {
    const DV<V> z = x / k;
    const V pos = V::gt_zero(x.v);
    const DV<V> xpos{V::select(pos, x.v, V::zero()),
                     V::select(pos, x.d0, V::zero()),
                     V::select(pos, x.d1, V::zero())};
    const DV<V> az{V::select(pos, -z.v, z.v), V::select(pos, -z.d0, z.d0),
                   V::select(pos, -z.d1, z.d1)};
    return xpos + k * log1p_dv(exp_dv(az));
  }
}

// BSIM-style smooth min(vds, vdsat); mirrors model.cpp smooth_min_vds.
template <class V>
inline DV<V> smooth_min_dv(const DV<V>& vds, const DV<V>& vdsat,
                           double delta) {
  const DV<V> t = vdsat - vds - dconst(V::broadcast(delta));
  return vdsat -
         (t + sqrt_dv(t * t + dconst(V::broadcast(4.0 * delta)) * vdsat)) *
             dconst(V::half());
}

template <class V>
inline void eval_block_t(const KernelBlock& in, KernelOut& out, int lane) {
  const auto P = [&](int i) { return V::load(in.p[i], lane); };
  const auto C = [&](int i) { return dconst(V::load(in.p[i], lane)); };
  const auto store = [&](int i, V v) { v.store(out.o[i], lane); };
  const DV<V> one = dconst(V::one());

  const V s = P(kS);
  const V vg = V::load(in.vg, lane);
  const V vd = V::load(in.vd, lane);
  const V vs = V::load(in.vs, lane);

  // Mirrored coordinates with internal drain = higher-potential terminal.
  const V vds_m = s * (vd - vs);
  const V swapped = V::lt_zero(vds_m);
  const V vgs_p = V::select(swapped, s * (vg - vd), s * (vg - vs));
  const V vds_p = V::select(swapped, -vds_m, vds_m);

  const DV<V> vgs{vgs_p, V::one(), V::zero()};
  const DV<V> vds{vds_p, V::zero(), V::one()};

  // ---- I-V core (model.cpp core(), bias-dependent part) ------------------
  const DV<V> vth = C(kVthBase) - C(kEtab) * vds;
  const DV<V> n_raw = C(kNfactor) + (C(kCdsc) + C(kCdscd) * vds) / C(kCox);
  const DV<V> half_c = dconst(V::half());
  const DV<V> n =
      half_c + softplus_dv(n_raw - half_c, dconst(V::broadcast(0.05)));
  const DV<V> nvt = n * C(kVt);
  const DV<V> vgsteff = softplus_dv(vgs - vth, nvt);

  const DV<V> eeff = (vgsteff + C(kTwoVth0)) / C(kSixTox);
  const DV<V> t_ucs = vgsteff / C(kUcs);
  const DV<V> coulomb = C(kUd) / (one + t_ucs * t_ucs);
  const DV<V> mob_denom =
      one + C(kUa) * eeff + C(kUb) * eeff * eeff + coulomb;
  const DV<V> ueff = C(kU0t) / mob_denom;

  const DV<V> esatl = C(kEsatC) / ueff;
  const DV<V> vgst2 = vgsteff + C(kTwoVt);
  const DV<V> vdsat = vgst2 * esatl / (vgst2 + esatl);
  const DV<V> vdseff = smooth_min_dv(vds, vdsat, 0.01);

  const DV<V> beta = ueff * C(kBetaC);
  const DV<V> two_c = dconst(V::broadcast(2.0));
  const DV<V> gch = beta * vgsteff * (one - vdseff / (two_c * vgst2)) /
                    (one + vdseff / esatl);
  const DV<V> ids_lin = gch * vdseff;
  const DV<V> va =
      (esatl + vdsat) / C(kPclm) * (one + C(kPvag) * vgsteff / esatl);
  DV<V> ids = ids_lin * (one + (vds - vdseff) / va);
  ids = ids / (one + C(kRds) * gch);

  // ---- Charge model ------------------------------------------------------
  const DV<V> vth_cv = vth + C(kDelvt);
  const DV<V> ncv = n * C(kMoinScale);
  const DV<V> ncv_vt = ncv * C(kVt);
  const DV<V> vgsteff_cv = softplus_dv(vgs - vth_cv, ncv_vt);
  const DV<V> vdseff_cv = smooth_min_dv(vds, vgsteff_cv, 0.02);

  const DV<V> a = vgsteff_cv;
  const DV<V> b = vgsteff_cv - vdseff_cv;
  const DV<V> eps_c = dconst(V::broadcast(1e-12));
  const DV<V> ab = a + b + eps_c;
  const DV<V> four_c = dconst(V::broadcast(4.0));
  const DV<V> six_c = dconst(V::broadcast(6.0));
  const DV<V> three_c = dconst(V::broadcast(3.0));
  const DV<V> qc = C(kNegClw23) * (a * a + a * b + b * b) / ab;
  const DV<V> qd_i = C(kNegClw215) *
                     (two_c * a * a * a + four_c * a * a * b +
                      six_c * a * b * b + three_c * b * b * b) /
                     (ab * ab);
  const DV<V> qs_i = qc - qd_i;
  const DV<V> qg_i = -qc;

  DV<V> qg_b = dconst(V::zero());
  DV<V> qd_b = dconst(V::zero());
  DV<V> qs_b = dconst(V::zero());
  if (V::any_nonzero(P(kNegClwb23))) {
    const DV<V> ab2 = softplus_dv(vgs - vth_cv - C(kDvtb), ncv_vt);
    const DV<V> vdseff_b = smooth_min_dv(vds, ab2, 0.02);
    const DV<V> bb = ab2 - vdseff_b;
    const DV<V> abb = ab2 + bb + eps_c;
    const DV<V> qc_b =
        C(kNegClwb23) * (ab2 * ab2 + ab2 * bb + bb * bb) / abb;
    qd_b = C(kNegClwb215) *
           (two_c * ab2 * ab2 * ab2 + four_c * ab2 * ab2 * bb +
            six_c * ab2 * bb * bb + three_c * bb * bb * bb) /
           (abb * abb);
    qs_b = qc_b - qd_b;
    qg_b = -qc_b;
  }
  const DV<V> qg_m = qg_i + qg_b;
  const DV<V> qd_m = qd_i + qd_b;
  const DV<V> qs_m = qs_i + qs_b;

  // ---- Map current to external terminals (model.cpp eval()) -------------
  const V ids_s = s * ids.v;
  store(kIds, V::select(swapped, -ids_s, ids_s));
  store(kDidsG, V::select(swapped, -ids.d0, ids.d0));
  store(kDidsD, V::select(swapped, ids.d0 + ids.d1, ids.d1));
  store(kDidsS, V::select(swapped, -ids.d1, -(ids.d0 + ids.d1)));

  // ---- Map charges: qg keeps its terminal, qd/qs swap with the bias -----
  // Intrinsic-charge rows before the overlap contributions are added.
  V qg_v = s * qg_m.v;
  V dqg_g = qg_m.d0;
  V dqg_d = V::select(swapped, -(qg_m.d0 + qg_m.d1), qg_m.d1);
  V dqg_s = V::select(swapped, qg_m.d1, -(qg_m.d0 + qg_m.d1));

  V qd_v = V::select(swapped, s * qs_m.v, s * qd_m.v);
  V dqd_g = V::select(swapped, qs_m.d0, qd_m.d0);
  V dqd_d = V::select(swapped, -(qs_m.d0 + qs_m.d1), qd_m.d1);
  V dqd_s = V::select(swapped, qs_m.d1, -(qd_m.d0 + qd_m.d1));

  V qs_v = V::select(swapped, s * qd_m.v, s * qs_m.v);
  V dqs_g = V::select(swapped, qd_m.d0, qs_m.d0);
  V dqs_d = V::select(swapped, -(qd_m.d0 + qd_m.d1), qs_m.d1);
  V dqs_s = V::select(swapped, qd_m.d1, -(qs_m.d0 + qs_m.d1));

  // ---- Overlap/fringe charges on the physical terminals ------------------
  // Fresh dual basis u0 = s*(vg-vs), u1 = s*(vd-vs); never swapped.
  {
    const DV<V> u0{s * (vg - vs), V::one(), V::zero()};
    const DV<V> u1{s * (vd - vs), V::zero(), V::one()};
    const DV<V> vgd_m = u0 - u1;
    const DV<V> kappa = C(kKappa);
    const DV<V> qov_s =
        C(kW) * (C(kCgsoCf) * u0 + C(kCgsl) * softplus_dv(u0, kappa));
    const DV<V> qov_d =
        C(kW) * (C(kCgdoCf) * vgd_m + C(kCgdl) * softplus_dv(vgd_m, kappa));
    const DV<V> qov_g = qov_s + qov_d;

    // add_physical with sign +1 to the gate, -1 to drain and source.
    qg_v = qg_v + s * qov_g.v;
    dqg_g = dqg_g + qov_g.d0;
    dqg_d = dqg_d + qov_g.d1;
    dqg_s = dqg_s + (-(qov_g.d0 + qov_g.d1));

    const V neg_s = -s;
    qd_v = qd_v + neg_s * qov_d.v;
    dqd_g = dqd_g - qov_d.d0;
    dqd_d = dqd_d - qov_d.d1;
    dqd_s = dqd_s - (-(qov_d.d0 + qov_d.d1));

    qs_v = qs_v + neg_s * qov_s.v;
    dqs_g = dqs_g - qov_s.d0;
    dqs_d = dqs_d - qov_s.d1;
    dqs_s = dqs_s - (-(qov_s.d0 + qov_s.d1));
  }

  store(kQg, qg_v);
  store(kQd, qd_v);
  store(kQs, qs_v);
  store(kDqgG, dqg_g);
  store(kDqgD, dqg_d);
  store(kDqgS, dqg_s);
  store(kDqdG, dqd_g);
  store(kDqdD, dqd_d);
  store(kDqdS, dqd_s);
  store(kDqsG, dqs_g);
  store(kDqsD, dqs_d);
  store(kDqsS, dqs_s);
}

}  // namespace mivtx::bsimsoi::kernel
