// Portable scalar-lane build of the batched BSIMSOI kernel: one double per
// lane, libm transcendentals, and the same softplus branches as
// model.cpp — bit-faithful to bsimsoi::eval up to FP-contraction choices
// the compiler makes identically for both.  This is the fallback for CPUs
// without AVX2 and the forced path under MIVTX_SIMD=OFF builds, so it is
// the build the sanitizer CI exercises.
#include <cmath>

#include "bsimsoi/batch_kernel_impl.h"

namespace mivtx::bsimsoi::kernel {

namespace {

struct VScalar {
  double x;
  static constexpr bool kScalarSemantics = true;

  double lane() const { return x; }
  static VScalar load(const double (&p)[kLaneWidth], int lane) {
    return {p[lane]};
  }
  void store(double (&p)[kLaneWidth], int lane) const { p[lane] = x; }
  static VScalar broadcast(double v) { return {v}; }
  static VScalar zero() { return {0.0}; }
  static VScalar one() { return {1.0}; }
  static VScalar half() { return {0.5}; }

  friend VScalar operator+(VScalar a, VScalar b) { return {a.x + b.x}; }
  friend VScalar operator-(VScalar a, VScalar b) { return {a.x - b.x}; }
  friend VScalar operator*(VScalar a, VScalar b) { return {a.x * b.x}; }
  friend VScalar operator/(VScalar a, VScalar b) { return {a.x / b.x}; }
  friend VScalar operator-(VScalar a) { return {-a.x}; }

  static VScalar sqrt(VScalar a) { return {std::sqrt(a.x)}; }
  static VScalar exp(VScalar a) { return {std::exp(a.x)}; }
  static VScalar log1p(VScalar a) { return {std::log1p(a.x)}; }

  // Masks are lanes too: nonzero means true.
  static VScalar gt_zero(VScalar a) { return {a.x > 0.0 ? 1.0 : 0.0}; }
  static VScalar lt_zero(VScalar a) { return {a.x < 0.0 ? 1.0 : 0.0}; }
  static VScalar select(VScalar m, VScalar a, VScalar b) {
    return {m.x != 0.0 ? a.x : b.x};
  }
  static bool any_nonzero(VScalar a) { return a.x != 0.0; }
};

}  // namespace

void eval_block_portable(const KernelBlock& in, KernelOut& out) {
  for (int lane = 0; lane < kLaneWidth; ++lane) {
    eval_block_t<VScalar>(in, out, lane);
  }
}

#if !defined(MIVTX_SIMD_AVX2)
// Link-safety stub for MIVTX_SIMD=OFF builds; DeviceBatch never selects
// the AVX2 kernel when it is not compiled in.
void eval_block_avx2(const KernelBlock& in, KernelOut& out) {
  (void)in;
  (void)out;
  __builtin_trap();
}
#endif

}  // namespace mivtx::bsimsoi::kernel
