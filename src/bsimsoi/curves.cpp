#include "bsimsoi/curves.h"

#include <cmath>

namespace mivtx::bsimsoi {

namespace {
double sign_of(const SoiModelCard& card) {
  return card.polarity == Polarity::kNmos ? 1.0 : -1.0;
}
}  // namespace

Curve id_vg(const SoiModelCard& card, double vds_mag,
            const std::vector<double>& vg_mags) {
  const double s = sign_of(card);
  Curve out;
  out.reserve(vg_mags.size());
  for (double vg : vg_mags) {
    const ModelOutput m = eval(card, s * vg, s * vds_mag, 0.0);
    out.push_back(CurvePoint{vg, std::fabs(m.ids)});
  }
  return out;
}

Curve id_vd(const SoiModelCard& card, double vgs_mag,
            const std::vector<double>& vd_mags) {
  const double s = sign_of(card);
  Curve out;
  out.reserve(vd_mags.size());
  for (double vd : vd_mags) {
    const ModelOutput m = eval(card, s * vgs_mag, s * vd, 0.0);
    out.push_back(CurvePoint{vd, std::fabs(m.ids)});
  }
  return out;
}

Curve cgg_vg(const SoiModelCard& card, double vds_mag,
             const std::vector<double>& vg_mags) {
  const double s = sign_of(card);
  Curve out;
  out.reserve(vg_mags.size());
  for (double vg : vg_mags) {
    const ModelOutput m = eval(card, s * vg, s * vds_mag, 0.0);
    // dQg/dVg is polarity-invariant (both charge and voltage mirror).
    out.push_back(CurvePoint{vg, m.dqg[kDvG]});
  }
  return out;
}

}  // namespace mivtx::bsimsoi
