// Characteristic-curve sweeps evaluated on a model card.  These mirror the
// TCAD-side sweeps in tcad/characterize.h so the extraction engine can
// compare like against like.
#pragma once

#include <vector>

#include "bsimsoi/model.h"
#include "bsimsoi/params.h"
#include "common/curve.h"

namespace mivtx::bsimsoi {

using mivtx::Curve;
using mivtx::CurvePoint;

// |Id| vs Vg at fixed |Vds|, source grounded.  Voltages are magnitudes;
// the polarity of the card decides actual signs.
Curve id_vg(const SoiModelCard& card, double vds_mag,
            const std::vector<double>& vg_mags);

// |Id| vs Vd at fixed |Vgs|.
Curve id_vd(const SoiModelCard& card, double vgs_mag,
            const std::vector<double>& vd_mags);

// Cgg vs Vg at fixed |Vds| (quasi-static gate capacitance).
Curve cgg_vg(const SoiModelCard& card, double vds_mag,
             const std::vector<double>& vg_mags);

}  // namespace mivtx::bsimsoi
