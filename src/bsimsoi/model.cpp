#include "bsimsoi/model.h"

#include <cmath>

#include "common/dual.h"
#include "common/error.h"
#include "common/units.h"

namespace mivtx::bsimsoi {

namespace {

using D = Dual<2>;  // independent variables: (vgs', vds') in mirrored space

// softplus with a bias-dependent width k (k itself carries derivatives).
D softplus_d(const D& x, const D& k) {
  const double z = x.v / k.v;
  if (z > 40.0) return x;
  if (z < -40.0) return k * exp(x / k);
  return k * log1p(exp(x / k));
}

// BSIM-style smooth min(vds, vdsat) with transition width delta.
D smooth_min_vds(const D& vds, const D& vdsat, double delta) {
  const D t = vdsat - vds - D(delta);
  return vdsat - (t + sqrt(t * t + D(4.0 * delta) * vdsat)) * D(0.5);
}

struct CoreResult {
  D ids;  // internal drain->source current, >= 0
  D qg, qd, qs;
};

// Physics core in mirrored (NMOS-normalized) coordinates; requires
// vds.v >= 0 (the wrapper swaps terminals to guarantee this).
CoreResult core(const SoiModelCard& c, const D& vgs, const D& vds) {
  // BSIM-style temperature scaling around the extraction temperature TNOM:
  // vt follows the operating temperature, mobility follows (T/Tnom)^UTE,
  // threshold shifts by KT1*(T/Tnom - 1), vsat by -AT*(T/Tnom - 1).
  const double t_kelvin = 273.15 + c.temp;
  const double tnom_kelvin = 273.15 + c.tnom;
  const double t_ratio = t_kelvin / tnom_kelvin;
  const double vt = thermal_voltage(t_kelvin);
  const double u0_t = c.u0 * std::pow(t_ratio, c.ute);
  const double vsat_t = std::max(c.vsat - c.at * (t_ratio - 1.0), 1e3);
  const double cox = kEpsRelSiO2 * kVacuumPermittivity / c.tox;
  const double vth0 = std::fabs(c.vth0) + c.kt1 * (t_ratio - 1.0);

  // Short-channel roll-off: exponential in L over the FD-SOI natural length
  // lambda = sqrt((eps_si/eps_ox) * tox * tsi).
  const double lambda =
      std::sqrt((kEpsRelSilicon / kEpsRelSiO2) * c.tox * c.tsi);
  const double kVbiScale = 0.9;  // built-in-potential scale of the roll-off
  const double dv_sce =
      c.dvt0 * kVbiScale * std::exp(-c.dvt1 * c.l / (2.0 * lambda));

  const D vth = D(vth0 - dv_sce) - D(c.etab) * vds;

  // Subthreshold ideality; smoothly clamped to >= 0.5 so pathological
  // optimizer steps can't produce a negative swing.
  const D n_raw = D(c.nfactor) + (D(c.cdsc) + D(c.cdscd) * vds) / D(cox);
  const D n = D(0.5) + softplus_d(n_raw - D(0.5), D(0.05));
  const D nvt = n * D(vt);

  const D vgsteff = softplus_d(vgs - vth, nvt);

  // Mobility degradation (MOBMOD=4-style roles).
  const D eeff = (vgsteff + D(2.0 * vth0)) / D(6.0 * c.tox);
  const D coulomb = D(c.ud) / (D(1.0) + (vgsteff / D(c.ucs)) * (vgsteff / D(c.ucs)));
  const D mob_denom = D(1.0) + D(c.ua) * eeff + D(c.ub) * eeff * eeff + coulomb;
  const D ueff = D(u0_t) / mob_denom;

  // Velocity saturation.  The 2*vt term keeps vdsat finite in weak
  // inversion, which preserves the classic exp(vgst/(n*vt)) subthreshold
  // current (without it the quadratic core would halve the swing).
  const D esatl = D(2.0 * vsat_t * c.l) / ueff;
  const D vgst2 = vgsteff + D(2.0 * vt);
  const D vdsat = vgst2 * esatl / (vgst2 + esatl);
  const D vdseff = smooth_min_vds(vds, vdsat, 0.01);

  // Channel conductance form (BSIM-style): gch = Ids0 / Vdseff stays
  // well-defined through Vds = 0, which keeps both the series-resistance
  // fold-in and the AD derivatives smooth there.  The (Vgsteff + 2vt)
  // bulk-charge denominator keeps the triode factor positive in weak
  // inversion, preserving the exponential subthreshold slope.
  const D beta = ueff * D(cox * c.w / c.l);
  const D gch = beta * vgsteff *
                (D(1.0) - vdseff / (D(2.0) * vgst2)) /
                (D(1.0) + vdseff / esatl);
  const D ids_lin = gch * vdseff;

  // Channel-length modulation / Early voltage with PVAG gate dependence.
  const D va = (esatl + vdsat) / D(c.pclm) *
               (D(1.0) + D(c.pvag) * vgsteff / esatl);
  D ids = ids_lin * (D(1.0) + (vds - vdseff) / va);

  // Width-normalized source/drain series resistance, folded in BSIM-style.
  const double rds = c.rdsw * 1e-6 / c.w;
  ids = ids / (D(1.0) + D(rds) * gch);

  // ---- Charge model (CAPMOD=3-style single-piece) -----------------------
  const D vth_cv = vth + D(c.delvt);
  const D ncv = n * D(std::max(c.moin, 1.0) / 15.0);
  const D vgsteff_cv = softplus_d(vgs - vth_cv, ncv * D(vt));
  const D vdseff_cv = smooth_min_vds(vds, vgsteff_cv, 0.02);

  const D a = vgsteff_cv;
  const D b = vgsteff_cv - vdseff_cv;
  const double clw = c.w * c.l * cox;
  const D ab = a + b + D(1e-12);
  // Square-law channel charge and Ward-Dutton 40/60 drain partition.
  const D qc = D(-clw * 2.0 / 3.0) * (a * a + a * b + b * b) / ab;
  const D qd_i = D(-clw * 2.0 / 15.0) *
                 (D(2.0) * a * a * a + D(4.0) * a * a * b +
                  D(6.0) * a * b * b + D(3.0) * b * b * b) /
                 (ab * ab);
  const D qs_i = qc - qd_i;
  const D qg_i = -qc;

  // Back-interface (MIV side-gate) channel charge: a second inversion
  // branch with threshold raised by DVTB and area K1B * W*L*Cox.  Pure
  // charge contribution - the I-V core already absorbs the MIV's drive
  // effect through its fitted mobility/VSAT/RDSW.
  D qg_b(0.0), qd_b(0.0), qs_b(0.0);
  if (c.k1b > 0.0) {
    const D ab = softplus_d(vgs - vth_cv - D(c.dvtb), ncv * D(vt));
    const D vdseff_b = smooth_min_vds(vds, ab, 0.02);
    const D bb = ab - vdseff_b;
    const double clwb = c.k1b * clw;
    const D abb = ab + bb + D(1e-12);
    const D qc_b = D(-clwb * 2.0 / 3.0) * (ab * ab + ab * bb + bb * bb) / abb;
    qd_b = D(-clwb * 2.0 / 15.0) *
           (D(2.0) * ab * ab * ab + D(4.0) * ab * ab * bb +
            D(6.0) * ab * bb * bb + D(3.0) * bb * bb * bb) /
           (abb * abb);
    qs_b = qc_b - qd_b;
    qg_b = -qc_b;
  }

  // Overlap/fringe charges are handled in eval() on the *physical*
  // terminals: the internal drain/source swap must not exchange CGSO and
  // CGDO, or the terminal charge would be discontinuous at vds = 0 for
  // asymmetric overlaps (which extraction routinely produces).
  CoreResult out;
  out.ids = ids;
  out.qg = qg_i + qg_b;
  out.qd = qd_i + qd_b;
  out.qs = qs_i + qs_b;
  return out;
}

}  // namespace

ModelOutput eval(const SoiModelCard& card, double vg, double vd, double vs) {
  const double s = (card.polarity == Polarity::kNmos) ? 1.0 : -1.0;
  const double vds_m = s * (vd - vs);  // mirrored drain bias
  const bool swapped = vds_m < 0.0;

  // Mirrored-space biases with internal drain = the higher-potential
  // terminal, so the core always sees vds' >= 0.
  const double vgs_p = swapped ? s * (vg - vd) : s * (vg - vs);
  const double vds_p = swapped ? -vds_m : vds_m;

  const D vgs = D::variable(vgs_p, 0);
  const D vds = D::variable(vds_p, 1);
  const CoreResult r = core(card, vgs, vds);

  ModelOutput out;
  // Map current: positive core current flows internal-drain -> internal
  // -source.  ids is reported as current into the *external* drain terminal.
  // Chain rule through vgs' = s*(vg - vX), vds' = s*(vY - vX) collapses the
  // polarity sign (s*s = 1); only terminal assignment changes under swap.
  if (!swapped) {
    out.ids = s * r.ids.v;
    out.dids[kDvG] = r.ids.d[0];
    out.dids[kDvD] = r.ids.d[1];
    out.dids[kDvS] = -(r.ids.d[0] + r.ids.d[1]);
  } else {
    out.ids = -s * r.ids.v;
    out.dids[kDvG] = -r.ids.d[0];
    out.dids[kDvS] = -r.ids.d[1];
    out.dids[kDvD] = r.ids.d[0] + r.ids.d[1];
  }

  // Map charges: mirrored-space charge flips sign with polarity; under swap
  // the internal drain charge belongs to the external source terminal.
  auto map_charge = [&](const D& q, double& qv, std::array<double, 3>& dq,
                        bool terminal_swaps) {
    qv = s * q.v;
    if (!swapped) {
      dq[kDvG] = q.d[0];
      dq[kDvD] = q.d[1];
      dq[kDvS] = -(q.d[0] + q.d[1]);
    } else {
      dq[kDvG] = q.d[0];
      dq[kDvS] = q.d[1];
      dq[kDvD] = -(q.d[0] + q.d[1]);
    }
    (void)terminal_swaps;
  };

  map_charge(r.qg, out.qg, out.dqg, false);
  if (!swapped) {
    map_charge(r.qd, out.qd, out.dqd, false);
    map_charge(r.qs, out.qs, out.dqs, false);
  } else {
    map_charge(r.qs, out.qd, out.dqd, true);
    map_charge(r.qd, out.qs, out.dqs, true);
  }

  // Overlap + fringe charges on the physical terminals (never swapped):
  // evaluated in mirrored-but-unswapped coordinates u0 = s*(vg - vs),
  // u1 = s*(vd - vs); charge mirrors with polarity, Q = s * q'(u0, u1),
  // and the s factors cancel in the derivatives.
  {
    const D u0 = D::variable(s * (vg - vs), 0);
    const D u1 = D::variable(s * (vd - vs), 1);
    const D vgs_m = u0;
    const D vgd_m = u0 - u1;
    const D kappa = D(std::max(card.ckappa, 1e-3));
    const D qov_s = D(card.w) * (D(card.cgso + card.cf) * vgs_m +
                                 D(card.cgsl) * softplus_d(vgs_m, kappa));
    const D qov_d = D(card.w) * (D(card.cgdo + card.cf) * vgd_m +
                                 D(card.cgdl) * softplus_d(vgd_m, kappa));
    auto add_physical = [&](const D& q, double sign_q, double& qv,
                            std::array<double, 3>& dq) {
      qv += sign_q * s * q.v;
      dq[kDvG] += sign_q * q.d[0];
      dq[kDvD] += sign_q * q.d[1];
      dq[kDvS] += sign_q * (-(q.d[0] + q.d[1]));
    };
    add_physical(qov_s + qov_d, +1.0, out.qg, out.dqg);
    add_physical(qov_d, -1.0, out.qd, out.dqd);
    add_physical(qov_s, -1.0, out.qs, out.dqs);
  }
  return out;
}

double drain_current(const SoiModelCard& card, double vgs, double vds) {
  return eval(card, vgs, vds, 0.0).ids;
}

double gate_capacitance(const SoiModelCard& card, double vgs, double vds) {
  return eval(card, vgs, vds, 0.0).dqg[kDvG];
}

double effective_vth(const SoiModelCard& card, double vds) {
  const double lambda =
      std::sqrt((kEpsRelSilicon / kEpsRelSiO2) * card.tox * card.tsi);
  const double dv_sce =
      card.dvt0 * 0.9 * std::exp(-card.dvt1 * card.l / (2.0 * lambda));
  return std::fabs(card.vth0) - dv_sce - card.etab * std::fabs(vds);
}

}  // namespace mivtx::bsimsoi
