// Compact-model evaluation: terminal current, charges, and their exact
// derivatives for MNA stamping.
//
// Formulation (single-piece, C-infinity in the terminal voltages):
//   * threshold:    vth = VTH0 - dV_SCE(L; DVT0, DVT1) - ETAB * vds'
//   * subthreshold: n   = NFACTOR + (CDSC + CDSCD*vds') / cox
//                   vgsteff = n*vt * ln(1 + exp((vgs' - vth)/(n*vt)))
//   * mobility:     ueff = U0 / (1 + UA*Eeff + UB*Eeff^2
//                               + UD / (1 + (vgsteff/UCS)^2))
//   * velocity sat: vdsat = vgsteff*EsatL/(vgsteff + EsatL),
//                   vdseff = smooth-min(vds', vdsat)
//   * current:      ids = ueff*cox*(W/L)*(vgsteff - vdseff/2)*vdseff
//                         / (1 + vdseff/EsatL) * (1 + (vds'-vdseff)/VA),
//                   VA = (EsatL + vdsat)/PCLM * (1 + PVAG*vgsteff/EsatL)
//   * series R:     ids /= 1 + Rds*ids0/(vdseff + eps), Rds = RDSW*1u/W
//   * charges:      square-law channel charge with Ward-Dutton 40/60
//                   partition on vgsteff_cv (MOIN smoothing, DELVT shift),
//                   plus constant (CGSO/CGDO/CF) and bias-dependent
//                   (CGSL/CGDL with CKAPPA width) overlap charges.
//
// PMOS is evaluated in mirrored coordinates; drain/source are swapped
// internally when the applied bias is negative so the model is symmetric.
#pragma once

#include <array>

#include "bsimsoi/params.h"

namespace mivtx::bsimsoi {

// Indices into derivative arrays: with respect to (vg, vd, vs).
inline constexpr int kDvG = 0;
inline constexpr int kDvD = 1;
inline constexpr int kDvS = 2;

struct ModelOutput {
  // Current flowing into the drain terminal and out of the source terminal.
  double ids = 0.0;
  std::array<double, 3> dids{};  // d(ids)/d(vg, vd, vs)

  // Terminal charges (gate, drain, source) and their derivative rows.
  double qg = 0.0, qd = 0.0, qs = 0.0;
  std::array<double, 3> dqg{}, dqd{}, dqs{};
};

// Full evaluation at terminal voltages (vg, vd, vs) against an arbitrary
// reference.  Temperature fixed at the card's TNOM.
ModelOutput eval(const SoiModelCard& card, double vg, double vd, double vs);

// Convenience views used by characterization and extraction ---------------

// Drain current with source grounded: ids(vgs, vds).
double drain_current(const SoiModelCard& card, double vgs, double vds);

// Small-signal gate capacitance Cgg = dQg/dVg at (vgs, vds).
double gate_capacitance(const SoiModelCard& card, double vgs, double vds);

// Threshold voltage actually used by the I-V core at a given vds (useful in
// tests; includes SCE roll-off and DIBL, excludes DELVT).
double effective_vth(const SoiModelCard& card, double vds);

}  // namespace mivtx::bsimsoi
