#include "bsimsoi/params.h"

#include <cmath>
#include <functional>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace mivtx::bsimsoi {

namespace {

struct FieldRef {
  double SoiModelCard::* member;
};

const std::map<std::string, FieldRef>& field_map() {
  static const std::map<std::string, FieldRef> kMap = {
      {"TSI", {&SoiModelCard::tsi}},       {"TOX", {&SoiModelCard::tox}},
      {"TBOX", {&SoiModelCard::tbox}},     {"L", {&SoiModelCard::l}},
      {"W", {&SoiModelCard::w}},           {"TNOM", {&SoiModelCard::tnom}},
      {"VTH0", {&SoiModelCard::vth0}},     {"DVT0", {&SoiModelCard::dvt0}},
      {"DVT1", {&SoiModelCard::dvt1}},     {"DELVT", {&SoiModelCard::delvt}},
      {"NFACTOR", {&SoiModelCard::nfactor}},
      {"CDSC", {&SoiModelCard::cdsc}},     {"CDSCD", {&SoiModelCard::cdscd}},
      {"ETAB", {&SoiModelCard::etab}},     {"U0", {&SoiModelCard::u0}},
      {"UA", {&SoiModelCard::ua}},         {"UB", {&SoiModelCard::ub}},
      {"UD", {&SoiModelCard::ud}},         {"UCS", {&SoiModelCard::ucs}},
      {"VSAT", {&SoiModelCard::vsat}},     {"PCLM", {&SoiModelCard::pclm}},
      {"PVAG", {&SoiModelCard::pvag}},     {"RDSW", {&SoiModelCard::rdsw}},
      {"CKAPPA", {&SoiModelCard::ckappa}}, {"CGSO", {&SoiModelCard::cgso}},
      {"CGDO", {&SoiModelCard::cgdo}},     {"CGSL", {&SoiModelCard::cgsl}},
      {"CGDL", {&SoiModelCard::cgdl}},     {"CF", {&SoiModelCard::cf}},
      {"MOIN", {&SoiModelCard::moin}},     {"K1B", {&SoiModelCard::k1b}},
      {"DVTB", {&SoiModelCard::dvtb}},     {"TEMP", {&SoiModelCard::temp}},
      {"UTE", {&SoiModelCard::ute}},       {"KT1", {&SoiModelCard::kt1}},
      {"AT", {&SoiModelCard::at}},
  };
  return kMap;
}

}  // namespace

double SoiModelCard::get(const std::string& upper_name) const {
  const std::string key = to_upper(upper_name);
  if (key == "LEVEL") return level;
  if (key == "MOBMOD") return mobmod;
  if (key == "CAPMOD") return capmod;
  if (key == "IGCMOD") return igcmod;
  if (key == "SOIMOD") return soimod;
  if (key == "NF") return nf;
  const auto it = field_map().find(key);
  MIVTX_EXPECT(it != field_map().end(), "unknown model parameter: " + key);
  return this->*(it->second.member);
}

void SoiModelCard::set(const std::string& upper_name, double value) {
  const std::string key = to_upper(upper_name);
  if (key == "LEVEL") { level = static_cast<int>(value); return; }
  if (key == "MOBMOD") { mobmod = static_cast<int>(value); return; }
  if (key == "CAPMOD") { capmod = static_cast<int>(value); return; }
  if (key == "IGCMOD") { igcmod = static_cast<int>(value); return; }
  if (key == "SOIMOD") { soimod = static_cast<int>(value); return; }
  if (key == "NF") { nf = static_cast<int>(value); return; }
  const auto it = field_map().find(key);
  MIVTX_EXPECT(it != field_map().end(), "unknown model parameter: " + key);
  this->*(it->second.member) = value;
}

const std::vector<std::string>& SoiModelCard::tunable_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const auto& [k, v] : field_map()) names.push_back(k);
    return names;
  }();
  return kNames;
}

std::string SoiModelCard::to_model_line() const {
  std::ostringstream os;
  os << ".model " << name << ' '
     << (polarity == Polarity::kNmos ? "nmos" : "pmos");
  os << format(" LEVEL=%d MOBMOD=%d CAPMOD=%d IGCMOD=%d SOIMOD=%d NF=%d",
               level, mobmod, capmod, igcmod, soimod, nf);
  // Full precision: the artifact cache persists cards through this line, so
  // every parameter must round-trip bit-exactly (and locale-independently).
  for (const auto& [k, ref] : field_map()) {
    os << ' ' << k << '=' << format_double(this->*(ref.member));
  }
  return os.str();
}

SoiModelCard SoiModelCard::from_model_line(const std::string& line) {
  const auto tokens = split(line, " \t");
  MIVTX_EXPECT(tokens.size() >= 3, "malformed model card: " + line);
  MIVTX_EXPECT(equals_ci(tokens[0], ".model"),
               "model card must start with .model");
  SoiModelCard card;
  card.name = tokens[1];
  if (equals_ci(tokens[2], "nmos")) {
    card.polarity = Polarity::kNmos;
  } else if (equals_ci(tokens[2], "pmos")) {
    card.polarity = Polarity::kPmos;
  } else {
    MIVTX_FAIL("model type must be nmos or pmos, got " + tokens[2]);
  }
  for (std::size_t i = 3; i < tokens.size(); ++i) {
    const auto kv = split(tokens[i], "=");
    MIVTX_EXPECT(kv.size() == 2, "malformed parameter token: " + tokens[i]);
    card.set(kv[0], parse_double(kv[1]));
  }
  return card;
}

}  // namespace mivtx::bsimsoi
