// Level-70 (BSIMSOI4)-flavored model card.
//
// The card exposes exactly the parameter surface the paper's extraction flow
// tunes (SOCC'23 §III, Tables II/III): threshold (VTH0, DVT0/DVT1, DELVT),
// subthreshold (CDSC, CDSCD, NFACTOR, ETAB), mobility (U0, UA, UB, UD, UCS),
// saturation/output (VSAT, PVAG, PCLM), capacitance (CKAPPA, CF, CGSO, CGDO,
// CGSL, CGDL, MOIN) plus the process constants of Table II (TSI, TOX, TBOX,
// L, W, TNOM) and the flag fields (LEVEL, MOBMOD, CAPMOD, IGCMOD, SOIMOD).
//
// The underlying I-V/C-V equations are a compact single-piece formulation —
// see bsimsoi/model.h — not the literal BSIMSOI4 source; parameter names
// keep their BSIMSOI roles so the staged extraction stages own the same
// knobs the paper describes.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace mivtx::bsimsoi {

enum class Polarity { kNmos, kPmos };

struct SoiModelCard {
  std::string name = "mivtx_soi";
  Polarity polarity = Polarity::kNmos;

  // --- Flags / selectors (Table II; informational, fixed by the flow) ----
  int level = 70;
  int mobmod = 4;
  int capmod = 3;
  int igcmod = 0;
  int soimod = 2;  // ideal fully-depleted SOI

  // --- Process constants (Table II) --------------------------------------
  double tsi = 7e-9;     // silicon film thickness (m)
  double tox = 1e-9;     // gate oxide thickness (m)
  double tbox = 100e-9;  // buried oxide thickness (m)
  double l = 48e-9;      // channel length (m)
  double w = 192e-9;     // total channel width (m), all channels combined
  double tnom = 25.0;    // nominal temperature (C)
  int nf = 1;            // number of parallel channels (MIV variants: 1/2/4)

  // --- Threshold-voltage group -------------------------------------------
  double vth0 = 0.35;   // long-channel threshold (V); negative for PMOS
  double dvt0 = 0.5;    // SCE roll-off magnitude coefficient
  double dvt1 = 1.0;    // SCE roll-off length-decay coefficient
  double delvt = 0.0;   // threshold adjust, applied in the charge model (V)

  // --- Subthreshold group -------------------------------------------------
  double nfactor = 1.0;   // base swing ideality
  double cdsc = 1e-4;     // coupling cap to channel (F/m^2)
  double cdscd = 0.0;     // drain-bias dependence of cdsc (F/V/m^2)
  double etab = 0.02;     // DIBL coefficient (V/V); BSIMSOI's eta-group knob

  // --- Mobility group (MOBMOD=4-style roles) ------------------------------
  double u0 = 0.03;    // low-field mobility (m^2/Vs)
  double ua = 1e-9;    // first-order field degradation (m/V)
  double ub = 1e-18;   // second-order field degradation (m^2/V^2)
  double ud = 0.0;     // Coulomb-scattering degradation magnitude
  double ucs = 1.0;    // Coulomb-scattering gate-overdrive scale (V)

  // --- Saturation / output-conductance group -------------------------------
  double vsat = 8.5e4;  // saturation velocity (m/s)
  double pclm = 1.3;    // channel-length-modulation coefficient
  double pvag = 0.0;    // gate-bias dependence of Early voltage

  // --- Series resistance ----------------------------------------------------
  double rdsw = 100.0;  // source+drain resistance, width-normalized (ohm*um)

  // --- Capacitance group -----------------------------------------------------
  double ckappa = 0.6;   // bias-dependent overlap transition width (V)
  double cgso = 1.5e-10;  // gate-source constant overlap (F/m)
  double cgdo = 1.5e-10;  // gate-drain constant overlap (F/m)
  double cgsl = 0.0;     // gate-source bias-dependent overlap (F/m)
  double cgdl = 0.0;     // gate-drain bias-dependent overlap (F/m)
  double cf = 0.0;       // fringe capacitance, both sides (F/m)
  double moin = 15.0;    // moderate-inversion CV smoothing coefficient
  // Back-interface (MIV side-gate) charge branch: BSIMSOI4 models the
  // buried-oxide back channel (SOIMOD group); the equivalent here is a
  // second inversion-charge branch with its own area ratio and threshold
  // offset.  Zero for devices without an MIV stem.
  double k1b = 0.0;    // back-channel area ratio (fraction of W*L*Cox)
  double dvtb = 0.3;   // back-channel threshold offset (V)

  // --- Temperature (BSIM-style scaling around TNOM) -----------------------
  double temp = 25.0;   // operating temperature (C); TNOM = extraction temp
  double ute = -1.5;    // mobility temperature exponent
  double kt1 = -0.11;   // Vth temperature coefficient (V)
  double at = 3.3e4;    // saturation-velocity temperature coefficient (m/s)

  // Per-name access used by the extraction optimizer and the card parser.
  // Names are upper-case SPICE spellings ("VTH0", "U0", ...).
  double get(const std::string& upper_name) const;
  void set(const std::string& upper_name, double value);
  static const std::vector<std::string>& tunable_names();

  // Serialize as a ".model <name> nmos|pmos LEVEL=70 ..." card.
  std::string to_model_line() const;
  // Parse the output of to_model_line (tolerant of case/whitespace).
  static SoiModelCard from_model_line(const std::string& line);
};

}  // namespace mivtx::bsimsoi
