#include "bsimsoi/simd.h"

#include <cstdlib>
#include <string>

#include "common/log.h"

namespace mivtx::bsimsoi {

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalarLane: return "portable";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "?";
}

bool avx2_kernel_compiled() {
#if defined(MIVTX_SIMD_AVX2)
  return true;
#else
  return false;
#endif
}

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

namespace {

struct SimdChoice {
  SimdLevel level = SimdLevel::kScalarLane;
  bool env_disabled = false;
};

SimdChoice resolve() {
  SimdChoice c;
  c.level = (avx2_kernel_compiled() && cpu_has_avx2()) ? SimdLevel::kAvx2
                                                       : SimdLevel::kScalarLane;
  if (const char* env = std::getenv("MIVTX_SIMD")) {
    const std::string v(env);
    if (v == "off" || v == "OFF" || v == "0" || v == "scalar") {
      c.env_disabled = true;
      c.level = SimdLevel::kScalarLane;
    } else if (v == "portable") {
      c.level = SimdLevel::kScalarLane;
    } else if (v == "avx2") {
      if (avx2_kernel_compiled() && cpu_has_avx2()) {
        c.level = SimdLevel::kAvx2;
      } else {
        MIVTX_WARN << "MIVTX_SIMD=avx2 requested but the AVX2 kernel is "
                   << (avx2_kernel_compiled() ? "unsupported by this CPU"
                                              : "not compiled in")
                   << "; using the portable kernel";
      }
    } else if (!v.empty() && v != "auto") {
      MIVTX_WARN << "unknown MIVTX_SIMD value '" << v << "' (expected "
                 << "off|scalar|portable|avx2|auto); using auto";
    }
  }
  return c;
}

const SimdChoice& choice() {
  static const SimdChoice c = resolve();
  return c;
}

}  // namespace

SimdLevel best_simd_level() { return choice().level; }

bool simd_env_disabled() { return choice().env_disabled; }

}  // namespace mivtx::bsimsoi
