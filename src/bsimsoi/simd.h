// Runtime SIMD capability selection for the batched BSIMSOI kernel.
//
// Two kernel builds exist: a portable scalar-lane build (always compiled,
// plain double math, bit-faithful to bsimsoi::eval) and an AVX2+FMA build
// (compiled only when the MIVTX_SIMD CMake option is ON, in its own
// translation unit with -mavx2 -mfma so the rest of the library keeps the
// baseline ISA).  The level actually used is decided once per process:
// the highest compiled-in level the CPU supports, overridable with the
// MIVTX_SIMD environment variable ("off"/"scalar" forces the per-device
// scalar model path, "portable" the scalar-lane kernel, "avx2" the vector
// kernel).  Dispatch is deterministic on a given machine + environment,
// which keeps the PPA bit-identity contracts (DESIGN.md §5.10) intact.
#pragma once

namespace mivtx::bsimsoi {

// Number of device instances evaluated per kernel block.  Both kernel
// builds consume blocks of this width; the portable build walks the lanes
// with scalar math.
inline constexpr int kLaneWidth = 4;

enum class SimdLevel {
  kScalarLane,  // portable kernel: one scalar lane at a time
  kAvx2,        // 4 x double AVX2+FMA lanes
};

const char* simd_level_name(SimdLevel level);

// True when the AVX2 kernel translation unit was compiled in
// (-DMIVTX_SIMD=ON) — independent of what the CPU supports.
bool avx2_kernel_compiled();

// True when the running CPU reports AVX2 + FMA.
bool cpu_has_avx2();

// Highest usable level: compiled in, supported by the CPU, and not
// capped by $MIVTX_SIMD.  Computed once and cached.
SimdLevel best_simd_level();

// $MIVTX_SIMD == "off" or "scalar": the caller should not batch at all
// and fall back to the per-device scalar model.  Cached with the level.
bool simd_env_disabled();

}  // namespace mivtx::bsimsoi
