#include "cells/celltypes.h"

#include "common/error.h"
#include "common/strings.h"

namespace mivtx::cells {

const std::vector<CellType>& all_cells() {
  static const std::vector<CellType> kAll = {
      CellType::kAnd2,  CellType::kAnd3,  CellType::kAoi2, CellType::kInv1,
      CellType::kMux2,  CellType::kNand2, CellType::kNand3,
      CellType::kNor2,  CellType::kNor3,  CellType::kOai2, CellType::kOr2,
      CellType::kOr3,   CellType::kXnor2, CellType::kXor2,
  };
  return kAll;
}

const char* cell_name(CellType type) {
  switch (type) {
    case CellType::kAnd2: return "AND2X1";
    case CellType::kAnd3: return "AND3X1";
    case CellType::kAoi2: return "AOI2X1";
    case CellType::kInv1: return "INV1X1";
    case CellType::kMux2: return "MUX2X1";
    case CellType::kNand2: return "NAND2X1";
    case CellType::kNand3: return "NAND3X1";
    case CellType::kNor2: return "NOR2X1";
    case CellType::kNor3: return "NOR3X1";
    case CellType::kOai2: return "OAI2X1";
    case CellType::kOr2: return "OR2X1";
    case CellType::kOr3: return "OR3X1";
    case CellType::kXnor2: return "XNOR2X1";
    case CellType::kXor2: return "XOR2X1";
  }
  return "?";
}

std::optional<CellType> find_cell(const std::string& name) {
  for (const CellType type : all_cells()) {
    if (equals_ci(name, cell_name(type))) return type;
  }
  return std::nullopt;
}

std::size_t cell_num_inputs(CellType type) {
  switch (type) {
    case CellType::kInv1:
      return 1;
    case CellType::kAnd2:
    case CellType::kNand2:
    case CellType::kNor2:
    case CellType::kOr2:
    case CellType::kXnor2:
    case CellType::kXor2:
      return 2;
    case CellType::kAnd3:
    case CellType::kAoi2:
    case CellType::kMux2:
    case CellType::kNand3:
    case CellType::kNor3:
    case CellType::kOai2:
    case CellType::kOr3:
      return 3;
  }
  return 0;
}

bool cell_logic(CellType type, const std::vector<bool>& in) {
  MIVTX_EXPECT(in.size() == cell_num_inputs(type),
               std::string("wrong input arity for ") + cell_name(type));
  switch (type) {
    case CellType::kInv1: return !in[0];
    case CellType::kAnd2: return in[0] && in[1];
    case CellType::kNand2: return !(in[0] && in[1]);
    case CellType::kNor2: return !(in[0] || in[1]);
    case CellType::kOr2: return in[0] || in[1];
    case CellType::kXor2: return in[0] != in[1];
    case CellType::kXnor2: return in[0] == in[1];
    case CellType::kAnd3: return in[0] && in[1] && in[2];
    case CellType::kNand3: return !(in[0] && in[1] && in[2]);
    case CellType::kNor3: return !(in[0] || in[1] || in[2]);
    case CellType::kOr3: return in[0] || in[1] || in[2];
    case CellType::kAoi2: return !((in[0] && in[1]) || in[2]);
    case CellType::kOai2: return !((in[0] || in[1]) && in[2]);
    case CellType::kMux2: return in[2] ? in[1] : in[0];  // in[2] = S
  }
  return false;
}

const char* cell_function_string(CellType type) {
  switch (type) {
    case CellType::kInv1: return "!A";
    case CellType::kAnd2: return "(A*B)";
    case CellType::kNand2: return "!(A*B)";
    case CellType::kNor2: return "!(A+B)";
    case CellType::kOr2: return "(A+B)";
    case CellType::kXor2: return "(A^B)";
    case CellType::kXnor2: return "!(A^B)";
    case CellType::kAnd3: return "(A*B*C)";
    case CellType::kNand3: return "!(A*B*C)";
    case CellType::kNor3: return "!(A+B+C)";
    case CellType::kOr3: return "(A+B+C)";
    case CellType::kAoi2: return "!((A*B)+C)";
    case CellType::kOai2: return "!((A+B)*C)";
    case CellType::kMux2: return "((A*!S)+(B*S))";
  }
  return "?";
}

std::vector<std::string> cell_input_names(CellType type) {
  const std::size_t n = cell_num_inputs(type);
  if (type == CellType::kMux2) return {"A", "B", "S"};
  std::vector<std::string> names;
  const char* letters[] = {"A", "B", "C"};
  for (std::size_t i = 0; i < n; ++i) names.push_back(letters[i]);
  return names;
}

}  // namespace mivtx::cells
