// The 14 standard cells of the paper's PPA study (SOCC'23 §IV) and their
// logic functions.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace mivtx::cells {

enum class CellType {
  kAnd2,
  kAnd3,
  kAoi2,   // AOI21: Y = !((A & B) | C)
  kInv1,
  kMux2,   // Y = S ? B : A
  kNand2,
  kNand3,
  kNor2,
  kNor3,
  kOai2,   // OAI21: Y = !((A | B) & C)
  kOr2,
  kOr3,
  kXnor2,
  kXor2,
};

// All 14 cells in the paper's listing order.
const std::vector<CellType>& all_cells();

// Library name, e.g. "AND2X1".
const char* cell_name(CellType type);
// Reverse lookup by library name (case-insensitive); nullopt for unknown
// cells.  Used by the gate-level netlist parser (analyze/design.h).
std::optional<CellType> find_cell(const std::string& name);
std::size_t cell_num_inputs(CellType type);
// Logic function; inputs.size() must equal cell_num_inputs.
bool cell_logic(CellType type, const std::vector<bool>& inputs);
// Input pin names ("A", "B", "C" / "S" for the mux select).
std::vector<std::string> cell_input_names(CellType type);
// Boolean function in Liberty syntax, e.g. "!(A*B)" for NAND2.
const char* cell_function_string(CellType type);

}  // namespace mivtx::cells
