#include "cells/circuitgen.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace mivtx::cells {

namespace {

// Shared rail hookup: VDD source behind a rail resistance, ground rail
// resistance.  Returns the internal rail nodes.
struct Rails {
  spice::NodeId vddi, gndi;
};

Rails add_rails(spice::Circuit& ckt, const ParasiticSpec& parasitics,
                double vdd) {
  const spice::NodeId vdd_ext = ckt.node("vdd_ext");
  Rails r{ckt.node("vddi"), ckt.node("gndi")};
  ckt.add_vsource("VDD", vdd_ext, spice::kGround, spice::SourceSpec::DC(vdd));
  ckt.add_resistor("Rvdd", vdd_ext, r.vddi, parasitics.r_rail);
  ckt.add_resistor("Rgnd", r.gndi, spice::kGround, parasitics.r_rail);
  return r;
}

// Instantiate one standard-cell topology at transistor level with the
// flattened wiring model (see the header comment): inputs/output bind to
// caller nodes, internal nets get prefixed private nodes, and each n-type
// gate pays an MIV stem (MIV implementations) or the spanning net pays one
// shared via with its stray MIS capacitance (2D).
spice::NodeId instantiate_gate(spice::Circuit& ckt, const std::string& prefix,
                               CellType type, Implementation impl,
                               const ModelSet& models,
                               const ParasiticSpec& parasitics,
                               const std::vector<spice::NodeId>& input_nodes,
                               spice::NodeId vddi, spice::NodeId gndi) {
  const CellTopology& topo = cell_topology(type);
  MIVTX_EXPECT(input_nodes.size() == topo.inputs.size(),
               "instantiate_gate: input arity mismatch for " +
                   std::string(cell_name(type)));

  const spice::NodeId out = ckt.node(prefix + "_y");
  auto resolve = [&](const std::string& net) -> spice::NodeId {
    if (net == "vdd") return vddi;
    if (net == "gnd") return gndi;
    if (net == topo.output) return out;
    for (std::size_t i = 0; i < topo.inputs.size(); ++i)
      if (net == topo.inputs[i]) return input_nodes[i];
    return ckt.node(prefix + "_" + net);
  };

  const bool per_gate_vias = impl != Implementation::k2D;
  // 2D: one external-contact via per distinct n-gate net of this instance,
  // shared by all its n-type gates.
  std::map<spice::NodeId, spice::NodeId> shared_top;
  int serial = 0;
  int idx = 0;
  for (const MosInstance& m : topo.fets) {
    const std::string name = std::string(m.pmos ? "MP_" : "MN_") + prefix +
                             "_" + std::to_string(idx++);
    if (m.pmos) {
      ckt.add_mosfet(name, resolve(m.drain), resolve(m.gate),
                     resolve(m.source), models.pmos);
      continue;
    }
    spice::NodeId g = resolve(m.gate);
    if (per_gate_vias) {
      const spice::NodeId stem =
          ckt.node(prefix + "_g" + std::to_string(serial));
      ckt.add_resistor("Rmivg_" + prefix + std::to_string(serial), g, stem,
                       parasitics.r_miv);
      g = stem;
      ++serial;
    } else {
      auto it = shared_top.find(g);
      if (it == shared_top.end()) {
        const spice::NodeId top =
            ckt.node(prefix + "_t" + std::to_string(serial));
        ckt.add_resistor("Rmiv_" + prefix + std::to_string(serial), g, top,
                         parasitics.r_miv);
        if (parasitics.c_miv_external > 0.0) {
          ckt.add_capacitor("Cmiv_" + prefix + std::to_string(serial), top,
                            spice::kGround, parasitics.c_miv_external);
        }
        it = shared_top.emplace(g, top).first;
        ++serial;
      }
      g = it->second;
    }
    ckt.add_mosfet(name, resolve(m.drain), g, resolve(m.source), models.nmos);
  }
  return out;
}

// "M" element names must be unique circuit-wide; instantiate_gate derives
// them from the prefix, so prefixes are kept distinct by construction.
std::string bit_prefix(const char* gate, std::size_t bit) {
  return std::string("b") + std::to_string(bit) + "_" + gate;
}

}  // namespace

GeneratedCircuit build_ring_oscillator(std::size_t stages, Implementation impl,
                                       const ModelSet& models,
                                       const ParasiticSpec& parasitics,
                                       double vdd, bool kick) {
  if (stages < 3) stages = 3;
  if (stages % 2 == 0) ++stages;  // a ring needs an odd inversion count

  GeneratedCircuit gen;
  gen.vdd = vdd;
  gen.name = "ring" + std::to_string(stages) + "_" + impl_name(impl);
  spice::Circuit& ckt = gen.circuit;
  const Rails rails = add_rails(ckt, parasitics, vdd);

  const bool per_gate_vias = impl != Implementation::k2D;
  for (std::size_t i = 0; i < stages; ++i) {
    const std::string si = std::to_string(i);
    const spice::NodeId x = ckt.node("x" + si);  // stage input (bottom tier)
    const spice::NodeId y = ckt.node("y" + si);  // stage output
    ckt.add_mosfet("MP" + si, y, x, rails.vddi, models.pmos);
    spice::NodeId g;
    if (per_gate_vias) {
      g = ckt.node("g" + si);  // private MIV-transistor stem
      ckt.add_resistor("Rmivg" + si, x, g, parasitics.r_miv);
    } else {
      g = ckt.node("xt" + si);  // shared external-contact via to top tier
      ckt.add_resistor("Rmiv" + si, x, g, parasitics.r_miv);
      if (parasitics.c_miv_external > 0.0)
        ckt.add_capacitor("Cmiv" + si, g, spice::kGround,
                          parasitics.c_miv_external);
    }
    ckt.add_mosfet("MN" + si, y, g, rails.gndi, models.nmos);
    ckt.add_capacitor("Cl" + si, y, spice::kGround, parasitics.c_load);
    // Interconnect to the next stage's input, closing the ring at the end.
    const std::string next = std::to_string((i + 1) % stages);
    ckt.add_resistor("Rw" + si, y, ckt.node("x" + next), parasitics.r_wire);
  }

  if (kick) {
    // One-shot pull-down pulse on stage 0's output so transient analysis
    // leaves the metastable all-stages-at-mid-rail operating point.
    spice::PulseSpec p;
    p.v1 = 0.0;
    p.v2 = 20e-6;  // 20 uA briefly against a 1 fF load
    p.delay = 1e-12;
    p.rise = 1e-12;
    p.fall = 1e-12;
    p.width = 50e-12;
    ckt.add_isource("Ikick", ckt.node("y0"), spice::kGround,
                    spice::SourceSpec::Pulse(p));
  }
  gen.probe_node = "y" + std::to_string(stages - 1);
  return gen;
}

GeneratedCircuit build_adder_array(std::size_t bits, Implementation impl,
                                   const ModelSet& models,
                                   const ParasiticSpec& parasitics, double vdd,
                                   unsigned long long a_value,
                                   unsigned long long b_value) {
  if (bits == 0) bits = 1;
  GeneratedCircuit gen;
  gen.vdd = vdd;
  gen.name = "adder" + std::to_string(bits) + "_" + impl_name(impl);
  spice::Circuit& ckt = gen.circuit;

  // Segmented supply rails: one VDD source feeds a per-bit rail chain so
  // the supply rows stay banded instead of one node fanning out to every
  // device in the array.
  const spice::NodeId vdd_ext = ckt.node("vdd_ext");
  ckt.add_vsource("VDD", vdd_ext, spice::kGround, spice::SourceSpec::DC(vdd));
  spice::NodeId vdd_prev = vdd_ext;
  spice::NodeId gnd_prev = spice::kGround;

  // Carry-in: DC 0 behind an input wire.
  const spice::NodeId cin0 = ckt.node("cin_in");
  ckt.add_vsource("VCIN", cin0, spice::kGround, spice::SourceSpec::DC(0.0));
  spice::NodeId carry = ckt.node("c0");
  ckt.add_resistor("Rw_cin", cin0, carry, parasitics.r_wire);
  gen.input_sources.push_back("VCIN");

  for (std::size_t i = 0; i < bits; ++i) {
    const std::string si = std::to_string(i);
    const spice::NodeId vddi = ckt.node("vddi" + si);
    const spice::NodeId gndi = ckt.node("gndi" + si);
    ckt.add_resistor("Rvdd" + si, vdd_prev, vddi, parasitics.r_rail);
    ckt.add_resistor("Rgnd" + si, gndi, gnd_prev, parasitics.r_rail);
    vdd_prev = vddi;
    gnd_prev = gndi;

    // Operand bits as DC sources behind input wires.
    const bool a_bit = i < 64 && ((a_value >> i) & 1ull);
    const bool b_bit = i < 64 && ((b_value >> i) & 1ull);
    const spice::NodeId a_in = ckt.node("a" + si + "_in");
    const spice::NodeId b_in = ckt.node("b" + si + "_in");
    ckt.add_vsource("VA" + si, a_in, spice::kGround,
                    spice::SourceSpec::DC(a_bit ? vdd : 0.0));
    ckt.add_vsource("VB" + si, b_in, spice::kGround,
                    spice::SourceSpec::DC(b_bit ? vdd : 0.0));
    const spice::NodeId a = ckt.node("a" + si);
    const spice::NodeId b = ckt.node("b" + si);
    ckt.add_resistor("Rwa" + si, a_in, a, parasitics.r_wire);
    ckt.add_resistor("Rwb" + si, b_in, b, parasitics.r_wire);
    gen.input_sources.push_back("VA" + si);
    gen.input_sources.push_back("VB" + si);

    // Full adder: sum = A ^ B ^ Cin, cout = NAND(NAND(A,B), NAND(A^B,Cin)).
    auto wire = [&](const std::string& gate, spice::NodeId from,
                    const std::string& net) -> spice::NodeId {
      const spice::NodeId to = ckt.node(net);
      ckt.add_resistor("Rw_" + bit_prefix(gate.c_str(), i), from, to,
                       parasitics.r_wire);
      return to;
    };
    const spice::NodeId p = wire(
        "p",
        instantiate_gate(ckt, bit_prefix("x1", i), CellType::kXor2, impl,
                         models, parasitics, {a, b}, vddi, gndi),
        "p" + si);
    const spice::NodeId sum = wire(
        "s",
        instantiate_gate(ckt, bit_prefix("x2", i), CellType::kXor2, impl,
                         models, parasitics, {p, carry}, vddi, gndi),
        "s" + si);
    const spice::NodeId n1 = wire(
        "n1",
        instantiate_gate(ckt, bit_prefix("d1", i), CellType::kNand2, impl,
                         models, parasitics, {a, b}, vddi, gndi),
        "n1_" + si);
    const spice::NodeId n2 = wire(
        "n2",
        instantiate_gate(ckt, bit_prefix("d2", i), CellType::kNand2, impl,
                         models, parasitics, {p, carry}, vddi, gndi),
        "n2_" + si);
    carry = wire(
        "c",
        instantiate_gate(ckt, bit_prefix("d3", i), CellType::kNand2, impl,
                         models, parasitics, {n1, n2}, vddi, gndi),
        "c" + std::to_string(i + 1));
    ckt.add_capacitor("Cls" + si, sum, spice::kGround, parasitics.c_load);
  }
  ckt.add_capacitor("Clc", carry, spice::kGround, parasitics.c_load);
  gen.probe_node = "s" + std::to_string(bits - 1);
  return gen;
}

std::vector<bool> chain_side_values(CellType type) {
  const std::size_t n = cell_num_inputs(type);
  std::vector<bool> in(n, false);
  for (std::size_t code = 0; code < (1ull << (n - 1)); ++code) {
    for (std::size_t k = 1; k < n; ++k) in[k] = ((code >> (k - 1)) & 1) != 0;
    in[0] = false;
    const bool out0 = cell_logic(type, in);
    in[0] = true;
    const bool out1 = cell_logic(type, in);
    if (out0 != out1) return in;
  }
  MIVTX_FAIL(std::string("chain_side_values: pin 0 of ") + cell_name(type) +
             " cannot be sensitized");
}

GeneratedCircuit build_gate_chain(const GateChainSpec& spec,
                                  Implementation impl, const ModelSet& models,
                                  const ParasiticSpec& parasitics, double vdd) {
  MIVTX_EXPECT(!spec.stages.empty(), "gate chain needs at least one stage");
  MIVTX_EXPECT(spec.stage_loads.empty() ||
                   spec.stage_loads.size() == spec.stages.size(),
               "gate chain: one stage_loads entry per stage (or none)");
  for (const std::size_t tap : spec.fanout_taps)
    MIVTX_EXPECT(tap < spec.stages.size(),
                 "gate chain: fanout tap past the last stage");

  GeneratedCircuit gen;
  gen.vdd = vdd;
  gen.name =
      "chain" + std::to_string(spec.stages.size()) + "_" + impl_name(impl);
  spice::Circuit& ckt = gen.circuit;
  const Rails rails = add_rails(ckt, parasitics, vdd);

  spice::PulseSpec p;
  p.v1 = 0.0;
  p.v2 = vdd;
  p.delay = spec.t_delay;
  p.rise = spec.t_edge;
  p.fall = spec.t_edge;
  p.width = spec.t_width;
  const spice::NodeId in = ckt.node("in");
  ckt.add_vsource("VIN", in, spice::kGround, spice::SourceSpec::Pulse(p));
  gen.input_sources.push_back("VIN");

  spice::NodeId x = ckt.node("x0");
  ckt.add_resistor("Rw_in", in, x, parasitics.r_wire);

  for (std::size_t i = 0; i < spec.stages.size(); ++i) {
    const CellType type = spec.stages[i];
    const std::string si = std::to_string(i);
    const std::vector<bool> side = chain_side_values(type);
    std::vector<spice::NodeId> inputs{x};
    for (std::size_t k = 1; k < side.size(); ++k)
      inputs.push_back(side[k] ? rails.vddi : rails.gndi);
    const spice::NodeId y =
        instantiate_gate(ckt, "s" + si, type, impl, models, parasitics,
                         inputs, rails.vddi, rails.gndi);
    const spice::NodeId net = ckt.node("x" + std::to_string(i + 1));
    ckt.add_resistor("Rw" + si, y, net, parasitics.r_wire);
    const double c_load =
        spec.stage_loads.empty() ? parasitics.c_load : spec.stage_loads[i];
    if (c_load > 0.0)
      ckt.add_capacitor("Cl" + si, net, spice::kGround, c_load);
    if (std::find(spec.fanout_taps.begin(), spec.fanout_taps.end(), i) !=
        spec.fanout_taps.end()) {
      const spice::NodeId tap_y =
          instantiate_gate(ckt, "t" + si, CellType::kInv1, impl, models,
                           parasitics, {net}, rails.vddi, rails.gndi);
      ckt.add_capacitor("Clt" + si, tap_y, spice::kGround, parasitics.c_load);
    }
    x = net;
  }
  gen.probe_node = "x" + std::to_string(spec.stages.size());
  return gen;
}

GeneratedCircuit build_power_grid(const PowerGridSpec& spec) {
  MIVTX_EXPECT(spec.rows >= 2 && spec.cols >= 2,
               "power grid needs at least a 2x2 mesh");
  GeneratedCircuit gen;
  gen.vdd = spec.vdd;
  gen.name = "grid" + std::to_string(spec.rows) + "x" +
             std::to_string(spec.cols);
  spice::Circuit& ckt = gen.circuit;

  auto node_name = [&](std::size_t r, std::size_t c) {
    return "n" + std::to_string(r) + "_" + std::to_string(c);
  };
  auto at = [&](std::size_t r, std::size_t c) {
    return ckt.node(node_name(r, c));
  };

  for (std::size_t r = 0; r < spec.rows; ++r) {
    for (std::size_t c = 0; c < spec.cols; ++c) {
      const spice::NodeId n = at(r, c);
      const std::string rc = std::to_string(r) + "_" + std::to_string(c);
      if (c + 1 < spec.cols)
        ckt.add_resistor("Rh" + rc, n, at(r, c + 1), spec.r_seg);
      if (r + 1 < spec.rows)
        ckt.add_resistor("Rv" + rc, n, at(r + 1, c), spec.r_seg);
      if (spec.i_load > 0.0)
        ckt.add_isource("IL" + rc, n, spice::kGround,
                        spice::SourceSpec::DC(spec.i_load));
      if (spec.c_node > 0.0)
        ckt.add_capacitor("Cd" + rc, n, spice::kGround, spec.c_node);
    }
  }

  // Supply pads at the corners, as Norton equivalents: an ideal V source
  // would append a zero-diagonal branch row and break the SPD structure
  // the CG tier exists to exploit.
  const std::pair<std::size_t, std::size_t> corners[4] = {
      {0, 0},
      {0, spec.cols - 1},
      {spec.rows - 1, 0},
      {spec.rows - 1, spec.cols - 1}};
  const std::size_t pads = spec.pads < 4 ? (spec.pads ? spec.pads : 1) : 4;
  for (std::size_t i = 0; i < pads; ++i) {
    const spice::NodeId n = at(corners[i].first, corners[i].second);
    ckt.add_resistor("Rpad" + std::to_string(i), n, spice::kGround,
                     spec.r_pad);
    ckt.add_isource("IP" + std::to_string(i), spice::kGround, n,
                    spice::SourceSpec::DC(spec.vdd / spec.r_pad));
  }
  gen.probe_node = node_name(spec.rows / 2, spec.cols / 2);
  return gen;
}

std::string to_netlist_text(const GeneratedCircuit& gen) {
  const spice::Circuit& ckt = gen.circuit;
  std::ostringstream os;
  os << gen.name << '\n';
  std::set<std::string> emitted;
  for (const spice::Element& e : ckt.elements()) {
    if (e.kind != spice::ElementKind::kMosfet) continue;
    if (emitted.insert(e.model.name).second)
      os << e.model.to_model_line() << '\n';
  }
  auto emit_source = [&](const spice::SourceSpec& s) {
    switch (s.kind) {
      case spice::SourceKind::kDc:
        os << "DC " << format("%.9g", s.dc);
        break;
      case spice::SourceKind::kPulse:
        os << "PULSE(" << format("%.9g", s.pulse.v1) << ' '
           << format("%.9g", s.pulse.v2) << ' '
           << format("%.9g", s.pulse.delay) << ' '
           << format("%.9g", s.pulse.rise) << ' '
           << format("%.9g", s.pulse.fall) << ' '
           << format("%.9g", s.pulse.width);
        if (s.pulse.period > 0.0) os << ' ' << format("%.9g", s.pulse.period);
        os << ')';
        break;
      default:
        MIVTX_FAIL("generated circuits only use DC/PULSE sources");
    }
  };
  for (const spice::Element& e : ckt.elements()) {
    switch (e.kind) {
      case spice::ElementKind::kResistor:
      case spice::ElementKind::kCapacitor:
        os << e.name << ' ' << ckt.node_name(e.nodes[0]) << ' '
           << ckt.node_name(e.nodes[1]) << ' ' << format("%.9g", e.value)
           << '\n';
        break;
      case spice::ElementKind::kVoltageSource:
      case spice::ElementKind::kCurrentSource:
        os << e.name << ' ' << ckt.node_name(e.nodes[0]) << ' '
           << ckt.node_name(e.nodes[1]) << ' ';
        emit_source(e.source);
        os << '\n';
        break;
      case spice::ElementKind::kMosfet:
        os << e.name << ' ' << ckt.node_name(e.nodes[0]) << ' '
           << ckt.node_name(e.nodes[1]) << ' ' << ckt.node_name(e.nodes[2])
           << ' ' << e.model.name << '\n';
        break;
      default:
        MIVTX_FAIL("generated circuits only contain R/C/V/I/M elements");
    }
  }
  os << ".end\n";
  return os.str();
}

}  // namespace mivtx::cells
