// Parameterized large-circuit generators for the iterative solver tier.
//
// The paper's study stops at 14 standalone cells (~30-60 MNA unknowns
// each); ROADMAP item 3 needs circuits big enough that direct sparse LU
// fill-in becomes the bottleneck.  Three families, each scaling from
// test-sized instances to 10k-200k unknowns:
//
//   build_ring_oscillator  N-stage (odd) inverter ring at transistor
//                          level: per-stage interconnect resistance,
//                          MIV-transistor gate stems for the MIV
//                          implementations, load capacitance per stage.
//                          Chain topology — low fill-in, the case where
//                          direct LU should keep winning.
//   build_adder_array      N-bit ripple-carry adder from the existing
//                          cell topologies (2x XOR2 + 3x NAND2 per bit),
//                          each gate instantiated at transistor level
//                          with shared supply rails and per-n-gate MIV
//                          stems.  General nonsymmetric MNA -> BiCGStab.
//   build_power_grid       rows x cols VDD-rail mesh with Norton pads
//                          (current source + conductance to ground; an
//                          ideal V source would add a zero-diagonal
//                          branch row) and distributed load currents.
//                          Pure-resistive SPD system -> CG, and the 2D
//                          mesh is the classic fill-in generator where
//                          the iterative tier beats direct LU.
//
// Wiring model notes: the gate-level generators reuse the ParasiticSpec
// values (r_miv/r_wire/r_rail) but flatten netgen's two-tier net
// splitting to one resistance per inter-gate net plus one MIV stem per
// n-type gate in the MIV implementations — the solver-scaling benches
// need representative sparsity, not the per-cell PPA fidelity of
// cells::build_cell.
#pragma once

#include <string>
#include <vector>

#include "cells/netgen.h"

namespace mivtx::cells {

struct GeneratedCircuit {
  std::string name;
  spice::Circuit circuit;
  double vdd = 1.0;
  // Representative node to observe (ring: last stage output; adder: MSB
  // sum; grid: the worst-IR-drop center node).
  std::string probe_node;
  // Voltage-source element names driving primary inputs (empty for the
  // ring oscillator and power grid).
  std::vector<std::string> input_sources;
};

// N-stage ring oscillator (stages forced odd).  `kick` adds a one-shot
// current pulse on stage 0's output so transients leave the metastable
// mid-rail DC point.
GeneratedCircuit build_ring_oscillator(std::size_t stages, Implementation impl,
                                       const ModelSet& models,
                                       const ParasiticSpec& parasitics,
                                       double vdd, bool kick = true);

// N-bit ripple-carry adder array; inputs are DC sources encoding
// a_bits/b_bits (bit i of the operands), carry-in 0.
GeneratedCircuit build_adder_array(std::size_t bits, Implementation impl,
                                   const ModelSet& models,
                                   const ParasiticSpec& parasitics, double vdd,
                                   unsigned long long a_value = 0xAAAAAAAAAAAAAAAAull,
                                   unsigned long long b_value = 0x5555555555555555ull);

struct PowerGridSpec {
  std::size_t rows = 100, cols = 100;  // unknowns = rows * cols
  double r_seg = 5.0;     // rail segment resistance (ohm)
  double r_pad = 0.05;    // pad spreading resistance (ohm), Norton model
  double i_load = 1e-5;   // load current pulled from every node (A)
  double c_node = 0.0;    // optional decap per node (F); 0 = resistive only
  double vdd = 1.0;
  std::size_t pads = 4;   // supply pads, placed at the mesh corners
};

GeneratedCircuit build_power_grid(const PowerGridSpec& spec);

// --- Linear gate chain (library-STA differential reference) ---------------

struct GateChainSpec {
  // Stage cells; stage i's chain input drives pin 0 and its side pins are
  // tied to the sensitizing rail constants from chain_side_values, so the
  // chain input toggles every stage output.
  std::vector<CellType> stages;
  // Explicit lumped load on each stage's output net (F); empty = the
  // ParasiticSpec c_load on every stage, otherwise one entry per stage.
  std::vector<double> stage_loads;
  // Stage indices whose output net additionally drives a dead-end INV1
  // fanout tap (a real top-tier gate load, its own output loaded with
  // c_load) — mixed-fanout coverage for the differential.
  std::vector<std::size_t> fanout_taps;
  double t_edge = 20e-12;    // stimulus rise/fall (s)
  double t_delay = 100e-12;  // time before the rising edge (s)
  double t_width = 600e-12;  // pulse width; falling edge at t_delay+t_width
};

// Sensitizing input values for a chain stage: the lexicographically first
// assignment of pins 1..n-1 under which toggling pin 0 toggles the output.
// Index 0 is present but carries no meaning (the chain drives that pin).
std::vector<bool> chain_side_values(CellType type);

// Transistor-level linear gate chain: full cell topologies with the
// flattened wiring model, stage i's output wired (r_wire) to stage i+1's
// pin 0, a pulse source VIN on the first input behind an input wire.
// probe_node is the last stage's loaded output net.
GeneratedCircuit build_gate_chain(const GateChainSpec& spec,
                                  Implementation impl, const ModelSet& models,
                                  const ParasiticSpec& parasitics, double vdd);

// SPICE netlist text for a generated circuit (round-trips through the
// parser; feeds the verify fuzz decks).  R/C/V/I/M elements only.
std::string to_netlist_text(const GeneratedCircuit& gen);

}  // namespace mivtx::cells
