#include "cells/netgen.h"

#include <map>
#include <set>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace mivtx::cells {

const char* impl_name(Implementation impl) {
  switch (impl) {
    case Implementation::k2D: return "2D";
    case Implementation::kMiv1Channel: return "1-ch";
    case Implementation::kMiv2Channel: return "2-ch";
    case Implementation::kMiv4Channel: return "4-ch";
  }
  return "?";
}

const std::vector<Implementation>& all_implementations() {
  static const std::vector<Implementation> kAll = {
      Implementation::k2D, Implementation::kMiv1Channel,
      Implementation::kMiv2Channel, Implementation::kMiv4Channel};
  return kAll;
}

namespace {

struct NetUse {
  bool nmos_gate = false;
  bool nmos_sd = false;
  bool pmos_gate = false;
  bool pmos_sd = false;

  bool top() const { return nmos_gate || nmos_sd; }
  bool bottom() const { return pmos_gate || pmos_sd; }
  bool spans() const { return top() && bottom(); }
};

}  // namespace

CellNetlist build_cell(CellType type, Implementation impl,
                       const ModelSet& models,
                       const ParasiticSpec& parasitics, double vdd) {
  const CellTopology& topo = cell_topology(type);
  CellNetlist cell;
  cell.type = type;
  cell.impl = impl;
  cell.vdd = vdd;
  spice::Circuit& ckt = cell.circuit;

  // --- Net usage analysis -------------------------------------------------
  std::map<std::string, NetUse> use;
  for (const MosInstance& m : topo.fets) {
    auto touch_sd = [&](const std::string& net) {
      if (net == "vdd" || net == "gnd") return;
      (m.pmos ? use[net].pmos_sd : use[net].nmos_sd) = true;
    };
    touch_sd(m.drain);
    touch_sd(m.source);
    if (m.gate != "vdd" && m.gate != "gnd")
      (m.pmos ? use[m.gate].pmos_gate : use[m.gate].nmos_gate) = true;
  }
  // Inputs are driven from bottom-tier routing even if no pmos uses them.
  for (const std::string& in : topo.inputs) use[in].pmos_sd |= false;

  const bool per_gate_vias = impl != Implementation::k2D;

  // --- Rails ---------------------------------------------------------------
  const spice::NodeId vdd_ext = ckt.node("vdd_ext");
  const spice::NodeId vddi = ckt.node("vddi");
  const spice::NodeId gndi = ckt.node("gndi");
  ckt.add_vsource("VDD", vdd_ext, spice::kGround,
                  spice::SourceSpec::DC(vdd));
  ckt.add_resistor("Rvdd", vdd_ext, vddi, parasitics.r_rail);
  ckt.add_resistor("Rgnd", gndi, spice::kGround, parasitics.r_rail);

  // --- Signal net nodes ----------------------------------------------------
  auto bot_node = [&](const std::string& net) -> spice::NodeId {
    if (net == "vdd") return vddi;
    MIVTX_EXPECT(net != "gnd", "pmos tied to gnd rail is unsupported");
    return ckt.node(use[net].spans() ? net + "_bot" : net);
  };
  auto top_node = [&](const std::string& net) -> spice::NodeId {
    if (net == "gnd") return gndi;
    MIVTX_EXPECT(net != "vdd", "nmos tied to vdd rail is unsupported");
    return ckt.node(use[net].spans() ? net + "_top" : net);
  };

  // --- Inputs: V source -> wire R -> bottom-tier routing -------------------
  for (const std::string& in : topo.inputs) {
    const spice::NodeId n_in = ckt.node(in + "_in");
    ckt.add_vsource("V" + in, n_in, spice::kGround,
                    spice::SourceSpec::DC(0.0));
    // Input gate nets always have bottom-tier presence (pmos gates).
    MIVTX_EXPECT(use[in].pmos_gate, "input " + in + " missing pmos gate");
    ckt.add_resistor("Rw_" + in, n_in, bot_node(in), parasitics.r_wire);
    cell.input_sources.push_back("V" + in);
  }

  // --- Inter-tier vias ------------------------------------------------------
  // In the 2D implementation each spanning net gets one MIV joining the
  // tiers.  In MIV-transistor implementations each n-type gate consumes its
  // own via (it *is* the transistor); a net that additionally joins S/D
  // regions across tiers keeps one internal via for that purpose.
  std::map<const MosInstance*, spice::NodeId> private_gate;
  int serial = 0;
  for (const auto& [net, u] : use) {
    if (!u.spans()) continue;
    const bool sd_span = u.nmos_sd;  // needs a via for the S/D side too
    if (!per_gate_vias) {
      ckt.add_resistor("Rmiv_" + net, bot_node(net), top_node(net),
                       parasitics.r_miv);
      cell.mivs.total += 1;
      if (u.nmos_gate) {
        cell.mivs.gate_external += 1;
        // The external-contact via couples into the top-tier substrate it
        // penetrates (hence the keep-out); stray MIS capacitance to the
        // grounded film.
        if (parasitics.c_miv_external > 0.0) {
          ckt.add_capacitor("Cmiv_" + net, top_node(net), spice::kGround,
                            parasitics.c_miv_external);
        }
      } else {
        cell.mivs.internal += 1;
      }
      continue;
    }
    // MIV-transistor implementation.
    if (u.nmos_gate) {
      for (const MosInstance& m : topo.fets) {
        if (m.pmos || m.gate != net) continue;
        const spice::NodeId g =
            ckt.node(net + "_g" + std::to_string(serial));
        ckt.add_resistor("Rmivg_" + net + std::to_string(serial),
                         bot_node(net), g, parasitics.r_miv);
        private_gate[&m] = g;
        cell.mivs.total += 1;
        ++serial;
      }
    }
    if (sd_span) {
      ckt.add_resistor("Rmiv_" + net, bot_node(net), top_node(net),
                       parasitics.r_miv);
      cell.mivs.total += 1;
      cell.mivs.internal += 1;
    }
  }

  // --- Devices ---------------------------------------------------------------
  const bool extra_sd = impl == Implementation::kMiv4Channel &&
                        parasitics.r_extra_sd_4ch > 0.0;
  int idx = 0;
  for (const MosInstance& m : topo.fets) {
    const std::string name =
        std::string(m.pmos ? "MP" : "MN") + std::to_string(idx++);
    if (m.pmos) {
      ckt.add_mosfet(name, bot_node(m.drain), bot_node(m.gate),
                     bot_node(m.source), models.pmos);
      continue;
    }
    spice::NodeId g;
    const auto pg = private_gate.find(&m);
    if (pg != private_gate.end()) {
      g = pg->second;
    } else if (use.count(m.gate) && use[m.gate].spans()) {
      g = top_node(m.gate);
    } else {
      g = top_node(m.gate);
    }
    spice::NodeId d = top_node(m.drain);
    spice::NodeId s = top_node(m.source);
    if (extra_sd) {
      // The 4-channel layout needs extra wiring to join its split S/D
      // regions; model it as series resistance on both diffusion pins.
      const spice::NodeId d2 = ckt.node(name + "_d");
      const spice::NodeId s2 = ckt.node(name + "_s");
      ckt.add_resistor("Rxd_" + name, d, d2, parasitics.r_extra_sd_4ch);
      ckt.add_resistor("Rxs_" + name, s, s2, parasitics.r_extra_sd_4ch);
      d = d2;
      s = s2;
    }
    ckt.add_mosfet(name, d, g, s, models.nmos);
  }

  // --- Output load -----------------------------------------------------------
  const std::string& out = topo.output;
  MIVTX_EXPECT(use.count(out) && use[out].bottom(),
               "output net must reach the bottom tier");
  const spice::NodeId y_load = ckt.node("y_load");
  ckt.add_resistor("Rw_out", bot_node(out), y_load, parasitics.r_wire);
  ckt.add_capacitor("Cload", y_load, spice::kGround, parasitics.c_load);
  cell.output_node = "y_load";
  return cell;
}

std::string to_netlist_text(const CellNetlist& cell) {
  const spice::Circuit& ckt = cell.circuit;
  std::ostringstream os;
  os << cell_name(cell.type) << " [" << impl_name(cell.impl)
     << " implementation]\n";
  // Model cards first (deduplicated by name).
  std::set<std::string> emitted;
  for (const spice::Element& e : ckt.elements()) {
    if (e.kind != spice::ElementKind::kMosfet) continue;
    if (emitted.insert(e.model.name).second)
      os << e.model.to_model_line() << '\n';
  }
  for (const spice::Element& e : ckt.elements()) {
    switch (e.kind) {
      case spice::ElementKind::kResistor:
        os << e.name << ' ' << ckt.node_name(e.nodes[0]) << ' '
           << ckt.node_name(e.nodes[1]) << ' ' << format("%.9g", e.value)
           << '\n';
        break;
      case spice::ElementKind::kCapacitor:
        os << e.name << ' ' << ckt.node_name(e.nodes[0]) << ' '
           << ckt.node_name(e.nodes[1]) << ' ' << format("%.9g", e.value)
           << '\n';
        break;
      case spice::ElementKind::kVoltageSource:
        os << e.name << ' ' << ckt.node_name(e.nodes[0]) << ' '
           << ckt.node_name(e.nodes[1]) << " DC "
           << format("%.9g", e.source.dc_value()) << '\n';
        break;
      case spice::ElementKind::kCurrentSource:
        os << e.name << ' ' << ckt.node_name(e.nodes[0]) << ' '
           << ckt.node_name(e.nodes[1]) << " DC "
           << format("%.9g", e.source.dc_value()) << '\n';
        break;
      case spice::ElementKind::kMosfet:
        os << e.name << ' ' << ckt.node_name(e.nodes[0]) << ' '
           << ckt.node_name(e.nodes[1]) << ' ' << ckt.node_name(e.nodes[2])
           << ' ' << e.model.name << '\n';
        break;
      default:
        MIVTX_FAIL("cell netlists only contain R/C/V/I/M elements");
    }
  }
  os << ".end\n";
  return os.str();
}

}  // namespace mivtx::cells
