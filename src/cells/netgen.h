// Netlist generation: turn a cell topology into a simulatable circuit for
// one of the four top-tier implementations, with the paper's parasitic
// assumptions (§IV):
//   MIV 7 ohm, signal interconnect 3 ohm, VDD/GND rails 5 ohm, 1 fF load.
//
// Two-tier wiring model: p-type devices live on the bottom tier, n-type on
// the top tier.  Every signal net that spans both tiers is split into a
// _bot and _top node joined by an MIV resistance.  In the 2D implementation
// one MIV serves all gate contacts of a net (external contact + top-tier M1
// fanout); in the MIV-transistor implementations each n-type gate is its
// own MIV-transistor stem, so each gets a private via path.  The 4-channel
// variant additionally pays extra source/drain routing resistance, per the
// paper's note that its active regions need additional interconnects.
#pragma once

#include <string>

#include "bsimsoi/params.h"
#include "cells/celltypes.h"
#include "cells/topology.h"
#include "spice/circuit.h"

namespace mivtx::cells {

enum class Implementation { k2D, kMiv1Channel, kMiv2Channel, kMiv4Channel };

const char* impl_name(Implementation impl);
const std::vector<Implementation>& all_implementations();

struct ParasiticSpec {
  double r_miv = 7.0;        // ohm per MIV
  double r_wire = 3.0;       // ohm per signal interconnect segment
  double r_rail = 5.0;       // ohm per supply rail
  double c_load = 1e-15;     // output load (F)
  double r_extra_sd_4ch = 3.0;  // extra S/D routing, 4-channel only (ohm)
  // Stray MIS capacitance of an external-contact MIV to the top-tier
  // substrate it passes through (2D implementation only): sidewall
  // perimeter x film height x Cox(liner) = 4*25nm x 7nm x 34.5 mF/m^2
  // = ~24 aF.  In the MIV-transistor implementations this coupling *is*
  // the transistor and is already inside the extracted device model.
  double c_miv_external = 40e-18;
};

struct ModelSet {
  // Extracted card for the top-tier n-type device of this implementation.
  bsimsoi::SoiModelCard nmos;
  // Bottom-tier p-type device (always the traditional FDSOI card).
  bsimsoi::SoiModelCard pmos;
};

struct MivStats {
  int total = 0;          // electrical inter-tier vias
  int gate_external = 0;  // vias landing on an n-type gate (2D: keep-out)
  int internal = 0;       // vias joining only S/D active regions
};

struct CellNetlist {
  CellType type = CellType::kInv1;
  Implementation impl = Implementation::k2D;
  spice::Circuit circuit;
  double vdd = 1.0;
  // Voltage-source element names driving each input, e.g. "VA" for pin A.
  std::vector<std::string> input_sources;
  // Node to observe as the cell output (after the output interconnect).
  std::string output_node;
  std::string vdd_source = "VDD";
  MivStats mivs;
};

// Build the circuit.  Input sources are created as DC 0 sources; the PPA
// harness reassigns their SourceSpec before simulating.
CellNetlist build_cell(CellType type, Implementation impl,
                       const ModelSet& models, const ParasiticSpec& parasitics,
                       double vdd);

// Emit the equivalent SPICE netlist text (round-trips through the parser;
// used by examples and golden tests).
std::string to_netlist_text(const CellNetlist& cell);

}  // namespace mivtx::cells
