#include "cells/topology.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "common/error.h"

namespace mivtx::cells {

std::size_t CellTopology::num_nmos() const {
  std::size_t n = 0;
  for (const MosInstance& m : fets) n += m.pmos ? 0 : 1;
  return n;
}

std::size_t CellTopology::num_pmos() const {
  return fets.size() - num_nmos();
}

std::vector<std::string> CellTopology::signal_nets() const {
  std::set<std::string> nets;
  for (const MosInstance& m : fets) {
    for (const std::string& n : {m.drain, m.gate, m.source}) {
      if (n != "vdd" && n != "gnd") nets.insert(n);
    }
  }
  return {nets.begin(), nets.end()};
}

bool CellTopology::evaluate(const std::vector<bool>& in) const {
  MIVTX_EXPECT(in.size() == inputs.size(), "evaluate: wrong input arity");
  std::map<std::string, bool> known;
  known["vdd"] = true;
  known["gnd"] = false;
  for (std::size_t i = 0; i < inputs.size(); ++i) known[inputs[i]] = in[i];

  // Relax until stable: nets reachable from a rail through transistors with
  // known conducting gates take the rail's value.
  for (int round = 0; round < 16; ++round) {
    // Union-find over nets joined by conducting transistors.
    std::map<std::string, std::string> parent;
    std::function<std::string(const std::string&)> find =
        [&](const std::string& x) -> std::string {
      auto it = parent.find(x);
      if (it == parent.end() || it->second == x) {
        parent[x] = x;
        return x;
      }
      const std::string root = find(it->second);
      parent[x] = root;
      return root;
    };
    auto unite = [&](const std::string& a, const std::string& b) {
      parent[find(a)] = find(b);
    };
    // Rails must never merge through the channel graph in a valid state.
    for (const MosInstance& m : fets) {
      const auto g = known.find(m.gate);
      if (g == known.end()) continue;  // unknown gate: treat as off
      const bool on = m.pmos ? !g->second : g->second;
      if (on) unite(m.drain, m.source);
    }
    MIVTX_EXPECT(find("vdd") != find("gnd"),
                 std::string("rail short in ") + cell_name(type));

    bool changed = false;
    const std::string vdd_root = find("vdd");
    const std::string gnd_root = find("gnd");
    for (const std::string& net : signal_nets()) {
      const std::string r = find(net);
      std::optional<bool> v;
      if (r == vdd_root) v = true;
      if (r == gnd_root) v = false;
      if (v && (!known.count(net) || known[net] != *v)) {
        known[net] = *v;
        changed = true;
      }
    }
    if (!changed) break;
  }
  const auto it = known.find(output);
  MIVTX_EXPECT(it != known.end(),
               std::string("floating output in ") + cell_name(type));
  return it->second;
}

namespace {

class Builder {
 public:
  explicit Builder(CellType type) {
    topo_.type = type;
    topo_.inputs = cell_input_names(type);
  }
  void n(const std::string& d, const std::string& g, const std::string& s) {
    topo_.fets.push_back(MosInstance{false, d, g, s});
  }
  void p(const std::string& d, const std::string& g, const std::string& s) {
    topo_.fets.push_back(MosInstance{true, d, g, s});
  }
  void inverter(const std::string& out, const std::string& in) {
    n(out, in, "gnd");
    p(out, in, "vdd");
  }
  // NAND of `ins` into node `out`.
  void nand_gate(const std::string& out, const std::vector<std::string>& ins,
                 const std::string& stem) {
    std::string node = out;
    for (std::size_t i = 0; i < ins.size(); ++i) {
      const std::string next =
          (i + 1 == ins.size()) ? "gnd" : stem + std::to_string(i + 1);
      n(node, ins[i], next);
      node = next;
    }
    for (const std::string& in : ins) p(out, in, "vdd");
  }
  // NOR of `ins` into node `out`.
  void nor_gate(const std::string& out, const std::vector<std::string>& ins,
                const std::string& stem) {
    for (const std::string& in : ins) n(out, in, "gnd");
    std::string node = out;
    for (std::size_t i = 0; i < ins.size(); ++i) {
      const std::string next =
          (i + 1 == ins.size()) ? "vdd" : stem + std::to_string(i + 1);
      p(node, ins[i], next);
      node = next;
    }
  }
  CellTopology take() { return std::move(topo_); }

 private:
  CellTopology topo_;
};

CellTopology make_topology(CellType type) {
  Builder b(type);
  switch (type) {
    case CellType::kInv1:
      b.inverter("Y", "A");
      break;
    case CellType::kNand2:
      b.nand_gate("Y", {"A", "B"}, "x");
      break;
    case CellType::kNand3:
      b.nand_gate("Y", {"A", "B", "C"}, "x");
      break;
    case CellType::kNor2:
      b.nor_gate("Y", {"A", "B"}, "x");
      break;
    case CellType::kNor3:
      b.nor_gate("Y", {"A", "B", "C"}, "x");
      break;
    case CellType::kAnd2:
      b.nand_gate("Yb", {"A", "B"}, "x");
      b.inverter("Y", "Yb");
      break;
    case CellType::kAnd3:
      b.nand_gate("Yb", {"A", "B", "C"}, "x");
      b.inverter("Y", "Yb");
      break;
    case CellType::kOr2:
      b.nor_gate("Yb", {"A", "B"}, "x");
      b.inverter("Y", "Yb");
      break;
    case CellType::kOr3:
      b.nor_gate("Yb", {"A", "B", "C"}, "x");
      b.inverter("Y", "Yb");
      break;
    case CellType::kAoi2:
      // Y = !((A & B) | C)
      b.n("Y", "A", "x1");
      b.n("x1", "B", "gnd");
      b.n("Y", "C", "gnd");
      b.p("Y", "C", "x2");
      b.p("x2", "A", "vdd");
      b.p("x2", "B", "vdd");
      break;
    case CellType::kOai2:
      // Y = !((A | B) & C)
      b.n("Y", "C", "x1");
      b.n("x1", "A", "gnd");
      b.n("x1", "B", "gnd");
      b.p("Y", "A", "x2");
      b.p("x2", "B", "vdd");
      b.p("Y", "C", "vdd");
      break;
    case CellType::kXor2:
      b.inverter("A_n", "A");
      b.inverter("B_n", "B");
      // PDN conducts when A == B.
      b.n("Y", "A", "x1");
      b.n("x1", "B", "gnd");
      b.n("Y", "A_n", "x2");
      b.n("x2", "B_n", "gnd");
      // PUN conducts when A != B.
      b.p("Y", "A", "x3");
      b.p("x3", "B_n", "vdd");
      b.p("Y", "A_n", "x4");
      b.p("x4", "B", "vdd");
      break;
    case CellType::kXnor2:
      b.inverter("A_n", "A");
      b.inverter("B_n", "B");
      // PDN conducts when A != B.
      b.n("Y", "A", "x1");
      b.n("x1", "B_n", "gnd");
      b.n("Y", "A_n", "x2");
      b.n("x2", "B", "gnd");
      // PUN conducts when A == B.
      b.p("Y", "A", "x3");
      b.p("x3", "B", "vdd");
      b.p("Y", "A_n", "x4");
      b.p("x4", "B_n", "vdd");
      break;
    case CellType::kMux2: {
      b.inverter("S_n", "S");
      // Yb = !((A & Sn) | (B & S)); Y = !Yb.
      b.n("Yb", "A", "x1");
      b.n("x1", "S_n", "gnd");
      b.n("Yb", "B", "x2");
      b.n("x2", "S", "gnd");
      b.p("Yb", "A", "x3");
      b.p("Yb", "S_n", "x3");
      b.p("x3", "B", "vdd");
      b.p("x3", "S", "vdd");
      b.inverter("Y", "Yb");
      break;
    }
  }
  return b.take();
}

}  // namespace

const CellTopology& cell_topology(CellType type) {
  static const std::map<CellType, CellTopology>* kTopologies = [] {
    auto* m = new std::map<CellType, CellTopology>();
    for (CellType t : all_cells()) (*m)[t] = make_topology(t);
    return m;
  }();
  return kTopologies->at(type);
}

}  // namespace mivtx::cells
