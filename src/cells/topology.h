// Transistor-level schematics of the standard cells.
//
// Topologies are static CMOS (complementary pull-up / pull-down networks);
// XOR/XNOR use the 12-transistor complementary form with internal input
// inverters, MUX2 the AOI22-style complex gate plus output inverter.
// Node names: rails "vdd"/"gnd", inputs "A"/"B"/"C"/"S", output "Y",
// internal nodes "x1..", inverted inputs "A_n" etc.
#pragma once

#include <string>
#include <vector>

#include "cells/celltypes.h"

namespace mivtx::cells {

struct MosInstance {
  bool pmos = false;
  std::string drain, gate, source;
};

struct CellTopology {
  CellType type = CellType::kInv1;
  std::vector<std::string> inputs;
  std::string output = "Y";
  std::vector<MosInstance> fets;

  std::size_t num_nmos() const;
  std::size_t num_pmos() const;
  // All distinct non-rail nets (inputs, output, internal).
  std::vector<std::string> signal_nets() const;
  // Evaluate the switch-level network: given input values, compute the
  // logic value at the output by path analysis.  Used by tests to verify
  // every topology implements its truth table.  Throws on a net that is
  // floating or driven both high and low.
  bool evaluate(const std::vector<bool>& inputs) const;
};

const CellTopology& cell_topology(CellType type);

}  // namespace mivtx::cells
