#include "charlib/characterize.h"

#include <cmath>
#include <optional>

#include "bsimsoi/model.h"
#include "cells/topology.h"
#include "common/error.h"
#include "common/hash.h"
#include "common/log.h"
#include "common/strings.h"
#include "core/artifacts.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"
#include "spice/transient.h"
#include "trace/trace.h"
#include "waveform/measure.h"

namespace mivtx::charlib {

namespace {

// Bump when the characterization procedure or the .mlib payload changes
// shape: stale cache entries then stop matching.
constexpr int kCharlibSchemaVersion = 1;

// One grid point of one pin probe: both input-edge arcs.
struct PointMeasurement {
  bool ok = false;
  double delay_rise = 0.0, slew_rise = 0.0, energy_rise = 0.0;
  double delay_fall = 0.0, slew_fall = 0.0, energy_fall = 0.0;
};

}  // namespace

CharGrid default_char_grid() {
  return CharGrid{{4e-12, 20e-12, 100e-12}, {0.1e-15, 1e-15, 8e-15}};
}

CharGrid mini_char_grid() {
  return CharGrid{{10e-12, 80e-12}, {0.2e-15, 4e-15}};
}

Characterizer::Characterizer(const core::ModelLibrary& library,
                             CharOptions opts, layout::DesignRules rules,
                             runtime::ExecPolicy exec)
    : library_(library), opts_(std::move(opts)), layout_(rules), exec_(exec) {
  if (opts_.grid.slews.empty() || opts_.grid.loads.empty())
    opts_.grid = default_char_grid();
  // Validate the axes up front (Table2D enforces the same invariants).
  Table2D probe(opts_.grid.slews, opts_.grid.loads);
}

runtime::CacheKey Characterizer::cell_key(cells::CellType type,
                                          cells::Implementation impl) const {
  core::PpaEngine engine(library_, opts_.ppa);
  const cells::ModelSet models = engine.model_set(impl);
  StableHash h;
  h.mix("charlib-cell");
  h.mix(core::kArtifactSchemaVersion).mix(kCharlibSchemaVersion);
  h.mix(models.nmos.to_model_line()).mix(models.pmos.to_model_line());
  h.mix(cells::cell_name(type)).mix(impl_tag(impl));
  h.mix(opts_.grid.slews.size());
  for (const double s : opts_.grid.slews) h.mix(s);
  h.mix(opts_.grid.loads.size());
  for (const double l : opts_.grid.loads) h.mix(l);
  // Physics options.  t_edge and parasitics.c_load are deliberately
  // excluded: the grid overrides them at every point.
  const core::PpaOptions& o = opts_.ppa;
  h.mix(o.vdd).mix(o.t_delay).mix(o.t_width).mix(o.h_max);
  h.mix(o.parasitics.r_miv).mix(o.parasitics.r_wire);
  h.mix(o.parasitics.r_rail).mix(o.parasitics.r_extra_sd_4ch);
  h.mix(o.parasitics.c_miv_external);
  h.mix(static_cast<int>(o.newton.backend));
  h.mix(static_cast<int>(o.newton.sparse_min_unknowns));
  h.mix(o.newton.bypass_vtol);
  const layout::DesignRules& r = layout_.rules();
  h.mix(r.gate_length).mix(r.spacer).mix(r.sd_length).mix(r.device_width);
  h.mix(r.m1_width).mix(r.m1_space).mix(r.via_size).mix(r.miv_size);
  h.mix(r.miv_liner).mix(r.rail_track).mix(r.cell_margin);
  h.mix(r.miv_keepout_overlap);
  return runtime::CacheKey{"charlib", h.digest()};
}

CellChar Characterizer::characterize_uncached(
    cells::CellType type, cells::Implementation impl) const {
  trace::Span span("charlib.cell", "charlib",
                   (std::string(cells::cell_name(type)) + "/" +
                    impl_tag(impl))
                       .c_str());
  CellChar out;
  out.type = type;
  out.area = layout_.layout_cell(type, impl).cell_area();

  core::PpaEngine engine(library_, opts_.ppa);
  const cells::ModelSet models = engine.model_set(impl);
  const auto input_names = cells::cell_input_names(type);
  const double vdd = opts_.ppa.vdd;
  const double half = 0.5 * vdd;

  // Per-pin input capacitance: gate charge sensitivity at mid rail of
  // every device the pin gates (core::build_timing_model's estimate,
  // refined per pin from the topology's actual gate counts).
  const cells::CellTopology& topo = cells::cell_topology(type);
  const double cn =
      bsimsoi::eval(models.nmos, half, half, 0.0).dqg[bsimsoi::kDvG];
  const double cp =
      bsimsoi::eval(models.pmos, -half, -half, 0.0).dqg[bsimsoi::kDvG];
  for (const std::string& pin : input_names) {
    double cap = 0.0;
    for (const cells::MosInstance& fet : topo.fets)
      if (fet.gate == pin) cap += fet.pmos ? cp : cn;
    out.input_cap.emplace_back(pin, cap);
  }

  const std::vector<double>& slews = opts_.grid.slews;
  const std::vector<double>& loads = opts_.grid.loads;
  const std::size_t points = slews.size() * loads.size();

  for (std::size_t pin = 0; pin < input_names.size(); ++pin) {
    const auto side = core::PpaEngine::sensitize(type, pin);
    MIVTX_EXPECT(side.has_value(),
                 std::string("charlib: pin cannot be sensitized: ") +
                     cells::cell_name(type) + "/" + input_names[pin]);

    // Output edge direction under the sensitizing side inputs.
    std::vector<bool> in = *side;
    in[pin] = false;
    const bool out0 = cells::cell_logic(type, in);
    in[pin] = true;
    const bool out1 = cells::cell_logic(type, in);
    MIVTX_EXPECT(out0 != out1, "charlib: sensitization does not toggle");

    // All grid points of this pin fan out; the tables fill in point order
    // afterwards so results are identical for any pool size.
    const std::vector<PointMeasurement> measured =
        runtime::parallel_map<PointMeasurement>(
            exec_.pool, points, [&](std::size_t flat) {
              const std::size_t si = flat / loads.size();
              const std::size_t li = flat % loads.size();
              PointMeasurement m;

              core::PpaOptions popt = opts_.ppa;
              popt.t_edge = slews[si];
              popt.parasitics.c_load = loads[li];
              cells::CellNetlist cell = cells::build_cell(
                  type, impl, models, popt.parasitics, vdd);
              core::apply_pin_stimulus(cell, input_names, pin, *side, popt);

              spice::TransientOptions topt;
              topt.t_stop = core::pin_probe_t_stop(popt);
              topt.h_max = popt.h_max;
              topt.newton = popt.newton;
              runtime::Metrics::global().add("charlib.transients");
              const spice::TransientResult tr =
                  spice::transient(cell.circuit, topt);
              if (!tr.ok) {
                MIVTX_WARN << cells::cell_name(type) << "/" << impl_tag(impl)
                           << " pin " << input_names[pin]
                           << ": transient failed: " << tr.error;
                return m;
              }

              const auto& v_in =
                  tr.v(to_lower(input_names[pin]) + "_in");
              const auto& v_out = tr.v(cell.output_node);
              const auto& i_vdd = tr.i(cell.vdd_source);
              const double mid = popt.t_delay + popt.t_width;

              using waveform::EdgeKind;
              const auto d_rise = waveform::propagation_delay(
                  v_in, v_out, half, half, 0.0, EdgeKind::kRise,
                  EdgeKind::kAny);
              const auto t_rise = waveform::transition_time(
                  v_out, 0.0, vdd, 0.0,
                  out1 ? EdgeKind::kRise : EdgeKind::kFall);
              const auto d_fall = waveform::propagation_delay(
                  v_in, v_out, half, half, mid, EdgeKind::kFall,
                  EdgeKind::kAny);
              const auto t_fall = waveform::transition_time(
                  v_out, 0.0, vdd, mid,
                  out0 ? EdgeKind::kRise : EdgeKind::kFall);
              if (!d_rise || !t_rise || !d_fall || !t_fall) return m;

              // The VDD source's branch current reads + -> - through the
              // source (negative while delivering); supply_energy wants
              // the delivered direction.
              m.ok = true;
              m.delay_rise = *d_rise;
              m.slew_rise = *t_rise / 0.8;
              m.energy_rise =
                  -waveform::supply_energy(i_vdd, vdd, 0.0, mid);
              m.delay_fall = *d_fall;
              m.slew_fall = *t_fall / 0.8;
              m.energy_fall = -waveform::supply_energy(
                  i_vdd, vdd, mid, topt.t_stop);
              return m;
            });

    ArcTables rise, fall;
    rise.pin = fall.pin = input_names[pin];
    rise.input_rise = true;
    rise.output_rise = out1;
    fall.input_rise = false;
    fall.output_rise = out0;
    for (ArcTables* arc : {&rise, &fall}) {
      arc->delay = Table2D(slews, loads);
      arc->out_slew = Table2D(slews, loads);
      arc->energy = Table2D(slews, loads);
    }
    for (std::size_t flat = 0; flat < points; ++flat) {
      const PointMeasurement& m = measured[flat];
      MIVTX_EXPECT(m.ok,
                   format("charlib: measurement failed for %s/%s pin %s at "
                          "grid point %zu",
                          cells::cell_name(type), impl_tag(impl),
                          input_names[pin].c_str(), flat));
      const std::size_t si = flat / loads.size();
      const std::size_t li = flat % loads.size();
      rise.delay.set(si, li, m.delay_rise);
      rise.out_slew.set(si, li, m.slew_rise);
      rise.energy.set(si, li, m.energy_rise);
      fall.delay.set(si, li, m.delay_fall);
      fall.out_slew.set(si, li, m.slew_fall);
      fall.energy.set(si, li, m.energy_fall);
    }
    out.arcs.push_back(std::move(rise));
    out.arcs.push_back(std::move(fall));
  }
  return out;
}

CellChar Characterizer::characterize_cell(cells::CellType type,
                                          cells::Implementation impl) const {
  runtime::Metrics& metrics = runtime::Metrics::global();
  if (exec_.cache != nullptr) {
    const runtime::CacheKey key = cell_key(type, impl);
    if (const auto hit = exec_.cache->get(key)) {
      try {
        CharLibrary one = CharLibrary::from_text(*hit);
        const CellChar* entry = one.find(impl, type);
        MIVTX_EXPECT(entry != nullptr && one.slew_axis == opts_.grid.slews &&
                         one.load_axis == opts_.grid.loads,
                     "cached charlib entry does not match the request");
        metrics.add("charlib.cache_hit");
        return *entry;
      } catch (const Error& e) {
        MIVTX_WARN << "discarding unreadable cached charlib entry for "
                   << cells::cell_name(type) << "/" << impl_tag(impl) << ": "
                   << e.what();
      }
    }
    CellChar result = characterize_uncached(type, impl);
    metrics.add("charlib.computed");
    CharLibrary one;
    one.slew_axis = opts_.grid.slews;
    one.load_axis = opts_.grid.loads;
    one.insert(impl, result);
    exec_.cache->put(key, one.to_text());
    return result;
  }
  CellChar result = characterize_uncached(type, impl);
  metrics.add("charlib.computed");
  return result;
}

CharLibrary Characterizer::characterize(
    const std::vector<std::pair<cells::CellType, cells::Implementation>>&
        jobs) const {
  trace::Span span("charlib.characterize", "charlib");
  CharLibrary lib;
  lib.slew_axis = opts_.grid.slews;
  lib.load_axis = opts_.grid.loads;
  // (cell, impl) entries are independent; the nested per-point fan-out
  // shares the pool (TaskGroup::wait helps, so this cannot deadlock).
  const std::vector<CellChar> entries = runtime::parallel_map<CellChar>(
      exec_.pool, jobs.size(), [&](std::size_t i) {
        return characterize_cell(jobs[i].first, jobs[i].second);
      });
  for (std::size_t i = 0; i < jobs.size(); ++i)
    lib.insert(jobs[i].second, entries[i]);
  return lib;
}

CharLibrary Characterizer::characterize_all() const {
  std::vector<std::pair<cells::CellType, cells::Implementation>> jobs;
  for (const cells::CellType type : cells::all_cells())
    for (const cells::Implementation impl : cells::all_implementations())
      jobs.emplace_back(type, impl);
  return characterize(jobs);
}

}  // namespace mivtx::charlib
