// NLDM characterization: fill a CharLibrary by sweeping every requested
// (cell, implementation) over an input-slew x output-load grid through the
// transistor-level transient engine.
//
// Per (cell, pin, grid point) one pin-probe transient runs (the same
// stimulus core::PpaEngine uses, with the pulse edge time set to the slew
// point and the output load to the load point) and yields both input-edge
// arcs of that pin:
//   delay    50%-to-50% propagation (waveform::propagation_delay)
//   out_slew 10-90% output transition / 0.8 (equivalent full-swing ramp,
//            so a propagated slew can be re-applied as a pulse edge time)
//   energy   VDD-rail energy over the half-window of the switching event
// The arc's output edge direction comes from the cell logic under the
// sensitizing side-input assignment.
//
// Work fans out on runtime::ThreadPool at (cell, impl) granularity with a
// nested per-(pin, grid point) fan-out, and each finished (cell, impl)
// entry is cached in the artifact cache (domain "charlib", payload = the
// single-cell .mlib text) keyed by the model cards, the grid, every
// physics option and the layout rules — so a warm daemon or CI re-run
// skips all transients.  Metrics: charlib.computed / charlib.cache_hit /
// charlib.transients.
#pragma once

#include <utility>
#include <vector>

#include "charlib/library.h"
#include "core/flow.h"
#include "core/ppa.h"
#include "layout/cell_layout.h"
#include "runtime/artifact_cache.h"
#include "runtime/exec_policy.h"

namespace mivtx::charlib {

// Characterization grid (see DESIGN.md §16 for the choice rationale).
struct CharGrid {
  std::vector<double> slews;  // input pulse edge times (s), ascending
  std::vector<double> loads;  // output load caps (F), ascending
};

// 3x3 production grid: slews 4/20/100 ps x loads 0.1/1/8 fF — brackets
// the library's own output slews and light-internal-net..fanout-8 loads.
CharGrid default_char_grid();
// 2x2 grid for tests and the CI mini-library job (4 transients per pin).
CharGrid mini_char_grid();

struct CharOptions {
  CharGrid grid;  // empty axes = default_char_grid()
  // Base physics (vdd, pulse timing, solver core, parasitics).  The
  // characterizer overrides t_edge and parasitics.c_load per grid point.
  core::PpaOptions ppa;
};

class Characterizer {
 public:
  Characterizer(const core::ModelLibrary& library, CharOptions opts = {},
                layout::DesignRules rules = {}, runtime::ExecPolicy exec = {});

  const CharGrid& grid() const { return opts_.grid; }

  // One library entry, through the artifact cache when one is configured.
  CellChar characterize_cell(cells::CellType type,
                             cells::Implementation impl) const;

  // Characterize the given (cell, impl) jobs into one library, fanned out
  // on the policy's pool.  Axes are the grid; entries land in
  // deterministic (impl, cell) map order regardless of pool size.
  CharLibrary characterize(
      const std::vector<std::pair<cells::CellType, cells::Implementation>>&
          jobs) const;

  // All 14 cells x 4 implementations.
  CharLibrary characterize_all() const;

  // Cache key of one (cell, impl) entry (exposed for the serve daemon's
  // single-flight coalescing).
  runtime::CacheKey cell_key(cells::CellType type,
                             cells::Implementation impl) const;

 private:
  CellChar characterize_uncached(cells::CellType type,
                                 cells::Implementation impl) const;

  const core::ModelLibrary& library_;
  CharOptions opts_;
  layout::LayoutModel layout_;
  runtime::ExecPolicy exec_;
};

}  // namespace mivtx::charlib
