#include "charlib/library.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace mivtx::charlib {

namespace {

void check_axis(const std::vector<double>& axis, const char* name) {
  MIVTX_EXPECT(!axis.empty(), std::string("charlib: empty ") + name +
                                  " axis");
  for (std::size_t i = 0; i < axis.size(); ++i) {
    MIVTX_EXPECT(std::isfinite(axis[i]),
                 std::string("charlib: non-finite ") + name + " axis point");
    MIVTX_EXPECT(i == 0 || axis[i - 1] < axis[i],
                 std::string("charlib: ") + name +
                     " axis is not strictly ascending");
  }
}

// Clamped interval search: returns (lo, hi, t) with axis[lo] <= x <=
// axis[hi] after clamping, and t the interpolation weight toward hi.
struct AxisPos {
  std::size_t lo = 0, hi = 0;
  double t = 0.0;
  bool clamped = false;
};

AxisPos locate(const std::vector<double>& axis, double x) {
  AxisPos pos;
  if (x <= axis.front()) {
    pos.clamped = x < axis.front();
    return pos;
  }
  if (x >= axis.back()) {
    pos.lo = pos.hi = axis.size() - 1;
    pos.clamped = x > axis.back();
    return pos;
  }
  const auto it = std::upper_bound(axis.begin(), axis.end(), x);
  pos.hi = static_cast<std::size_t>(it - axis.begin());
  pos.lo = pos.hi - 1;
  pos.t = (x - axis[pos.lo]) / (axis[pos.hi] - axis[pos.lo]);
  return pos;
}

}  // namespace

Table2D::Table2D(std::vector<double> slews, std::vector<double> loads)
    : slews_(std::move(slews)), loads_(std::move(loads)) {
  check_axis(slews_, "slew");
  check_axis(loads_, "load");
  values_.assign(slews_.size() * loads_.size(), 0.0);
}

double Table2D::at(std::size_t slew_idx, std::size_t load_idx) const {
  MIVTX_EXPECT(slew_idx < rows() && load_idx < cols(),
               "charlib: table index out of range");
  return values_[slew_idx * cols() + load_idx];
}

void Table2D::set(std::size_t slew_idx, std::size_t load_idx, double value) {
  MIVTX_EXPECT(slew_idx < rows() && load_idx < cols(),
               "charlib: table index out of range");
  values_[slew_idx * cols() + load_idx] = value;
}

LookupResult Table2D::lookup(double slew, double load) const {
  MIVTX_EXPECT(!values_.empty(), "charlib: lookup on an empty table");
  const AxisPos s = locate(slews_, slew);
  const AxisPos l = locate(loads_, load);
  LookupResult out;
  out.clamped_slew = s.clamped;
  out.clamped_load = l.clamped;
  const double v00 = at(s.lo, l.lo);
  const double v01 = at(s.lo, l.hi);
  const double v10 = at(s.hi, l.lo);
  const double v11 = at(s.hi, l.hi);
  const double low = v00 + (v01 - v00) * l.t;
  const double high = v10 + (v11 - v10) * l.t;
  out.value = low + (high - low) * s.t;
  return out;
}

const ArcTables* CellChar::find_arc(const std::string& pin,
                                    bool input_rise) const {
  for (const ArcTables& arc : arcs)
    if (arc.pin == pin && arc.input_rise == input_rise) return &arc;
  return nullptr;
}

double CellChar::pin_cap(const std::string& pin) const {
  for (const auto& [name, cap] : input_cap)
    if (name == pin) return cap;
  return 0.0;
}

std::size_t CharLibrary::num_cells() const {
  std::size_t n = 0;
  for (const auto& [impl, entries] : cells) n += entries.size();
  return n;
}

const CellChar* CharLibrary::find(cells::Implementation impl,
                                  cells::CellType type) const {
  const auto impl_it = cells.find(impl);
  if (impl_it == cells.end()) return nullptr;
  const auto it = impl_it->second.find(type);
  return it == impl_it->second.end() ? nullptr : &it->second;
}

void CharLibrary::insert(cells::Implementation impl, CellChar entry) {
  for (const ArcTables& arc : entry.arcs) {
    MIVTX_EXPECT(arc.delay.slews() == slew_axis &&
                     arc.delay.loads() == load_axis &&
                     arc.out_slew.slews() == slew_axis &&
                     arc.energy.slews() == slew_axis,
                 "charlib: cell entry grid disagrees with the library axes");
  }
  cells[impl][entry.type] = std::move(entry);
}

const char* impl_tag(cells::Implementation impl) {
  switch (impl) {
    case cells::Implementation::k2D: return "2d";
    case cells::Implementation::kMiv1Channel: return "1ch";
    case cells::Implementation::kMiv2Channel: return "2ch";
    case cells::Implementation::kMiv4Channel: return "4ch";
  }
  return "?";
}

cells::Implementation impl_from_tag(const std::string& tag) {
  const std::string t = to_lower(tag);
  if (t == "2d") return cells::Implementation::k2D;
  if (t == "1ch") return cells::Implementation::kMiv1Channel;
  if (t == "2ch") return cells::Implementation::kMiv2Channel;
  if (t == "4ch") return cells::Implementation::kMiv4Channel;
  throw Error(format("charlib: unknown implementation tag '%s'", tag.c_str()));
}

// --- Text format ------------------------------------------------------------

namespace {

void render_axis(std::ostringstream& os, const char* name,
                 const std::vector<double>& axis) {
  os << name << " " << axis.size();
  for (const double v : axis) os << " " << format_double(v);
  os << "\n";
}

void render_table(std::ostringstream& os, const char* name,
                  const Table2D& table) {
  for (std::size_t s = 0; s < table.rows(); ++s) {
    os << name;
    for (std::size_t l = 0; l < table.cols(); ++l)
      os << " " << format_double(table.at(s, l));
    os << "\n";
  }
}

}  // namespace

std::string CharLibrary::to_text() const {
  std::ostringstream os;
  os << "mivtx-charlib 1\n";
  render_axis(os, "slews", slew_axis);
  render_axis(os, "loads", load_axis);
  for (const auto& [impl, entries] : cells) {
    os << "impl " << impl_tag(impl) << "\n";
    for (const auto& [type, cell] : entries) {
      os << "cell " << cells::cell_name(type) << "\n";
      os << "area " << format_double(cell.area) << "\n";
      for (const auto& [pin, cap] : cell.input_cap)
        os << "pincap " << pin << " " << format_double(cap) << "\n";
      for (const ArcTables& arc : cell.arcs) {
        os << "arc " << arc.pin << " " << (arc.input_rise ? "rise" : "fall")
           << " " << (arc.output_rise ? "rise" : "fall") << "\n";
        render_table(os, "delay", arc.delay);
        render_table(os, "slew", arc.out_slew);
        render_table(os, "energy", arc.energy);
      }
      os << "endcell\n";
    }
  }
  os << "end\n";
  return os.str();
}

namespace {

struct Parser {
  std::istringstream in;
  int line_no = 0;

  explicit Parser(const std::string& text) : in(text) {}

  [[noreturn]] void fail(const std::string& why) const {
    throw Error(format("charlib line %d: %s", line_no, why.c_str()));
  }

  // Next non-empty, non-comment line split into tokens; empty at EOF.
  std::vector<std::string> next() {
    std::string line;
    while (std::getline(in, line)) {
      ++line_no;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::vector<std::string> tokens = split(line, " \t\r");
      if (!tokens.empty()) return tokens;
    }
    return {};
  }

  double number(const std::string& token) const {
    double v = 0.0;
    try {
      v = parse_double(token);
    } catch (const Error& e) {
      fail(e.what());
    }
    if (!std::isfinite(v)) fail("non-finite value '" + token + "'");
    return v;
  }

  bool edge(const std::string& token) const {
    if (token == "rise") return true;
    if (token == "fall") return false;
    fail("expected 'rise' or 'fall', got '" + token + "'");
  }
};

std::vector<double> parse_axis(Parser& p, const char* name,
                               const std::vector<std::string>& tokens) {
  if (tokens.size() < 2) p.fail(std::string("malformed ") + name + " line");
  const double count = p.number(tokens[1]);
  if (count < 1 || count != std::floor(count) ||
      tokens.size() != 2 + static_cast<std::size_t>(count))
    p.fail(std::string(name) + " count disagrees with the axis points");
  std::vector<double> axis;
  for (std::size_t i = 2; i < tokens.size(); ++i)
    axis.push_back(p.number(tokens[i]));
  for (std::size_t i = 1; i < axis.size(); ++i)
    if (axis[i - 1] >= axis[i])
      p.fail(std::string(name) + " axis is not strictly ascending");
  return axis;
}

Table2D parse_table(Parser& p, const char* name, const CharLibrary& lib) {
  Table2D table(lib.slew_axis, lib.load_axis);
  for (std::size_t s = 0; s < table.rows(); ++s) {
    const std::vector<std::string> tokens = p.next();
    if (tokens.empty() || tokens[0] != name)
      p.fail(std::string("expected a '") + name + "' row");
    if (tokens.size() != 1 + table.cols())
      p.fail(std::string(name) + " row arity disagrees with the load axis");
    for (std::size_t l = 0; l < table.cols(); ++l)
      table.set(s, l, p.number(tokens[1 + l]));
  }
  return table;
}

}  // namespace

CharLibrary CharLibrary::from_text(const std::string& text) {
  Parser p(text);
  CharLibrary lib;

  std::vector<std::string> tokens = p.next();
  if (tokens.size() != 2 || tokens[0] != "mivtx-charlib" || tokens[1] != "1")
    p.fail("expected header 'mivtx-charlib 1'");

  tokens = p.next();
  if (tokens.empty() || tokens[0] != "slews") p.fail("expected 'slews' axis");
  lib.slew_axis = parse_axis(p, "slews", tokens);
  tokens = p.next();
  if (tokens.empty() || tokens[0] != "loads") p.fail("expected 'loads' axis");
  lib.load_axis = parse_axis(p, "loads", tokens);

  bool saw_end = false;
  std::optional<cells::Implementation> impl;
  while (!(tokens = p.next()).empty()) {
    if (tokens[0] == "end") {
      if (tokens.size() != 1) p.fail("junk after 'end'");
      saw_end = true;
      if (!p.next().empty()) p.fail("content after 'end'");
      break;
    }
    if (tokens[0] == "impl") {
      if (tokens.size() != 2) p.fail("malformed 'impl' line");
      try {
        impl = impl_from_tag(tokens[1]);
      } catch (const Error& e) {
        p.fail(e.what());
      }
      continue;
    }
    if (tokens[0] != "cell")
      p.fail("expected 'impl', 'cell' or 'end', got '" + tokens[0] + "'");
    if (!impl) p.fail("'cell' before any 'impl'");
    if (tokens.size() != 2) p.fail("malformed 'cell' line");
    const auto type = cells::find_cell(tokens[1]);
    if (!type) p.fail("unknown cell '" + tokens[1] + "'");
    if (lib.find(*impl, *type) != nullptr)
      p.fail("duplicate cell '" + tokens[1] + "'");

    CellChar cell;
    cell.type = *type;
    const std::vector<std::string> pins = cells::cell_input_names(*type);
    auto known_pin = [&](const std::string& pin) {
      return std::find(pins.begin(), pins.end(), pin) != pins.end();
    };

    while (!(tokens = p.next()).empty() && tokens[0] != "endcell") {
      if (tokens[0] == "area") {
        if (tokens.size() != 2) p.fail("malformed 'area' line");
        cell.area = p.number(tokens[1]);
      } else if (tokens[0] == "pincap") {
        if (tokens.size() != 3) p.fail("malformed 'pincap' line");
        if (!known_pin(tokens[1]))
          p.fail("pincap for unknown pin '" + tokens[1] + "'");
        if (cell.pin_cap(tokens[1]) != 0.0)
          p.fail("duplicate pincap for pin '" + tokens[1] + "'");
        cell.input_cap.emplace_back(tokens[1], p.number(tokens[2]));
      } else if (tokens[0] == "arc") {
        if (tokens.size() != 4) p.fail("malformed 'arc' line");
        ArcTables arc;
        arc.pin = tokens[1];
        if (!known_pin(arc.pin))
          p.fail("arc for unknown pin '" + arc.pin + "'");
        arc.input_rise = p.edge(tokens[2]);
        arc.output_rise = p.edge(tokens[3]);
        if (cell.find_arc(arc.pin, arc.input_rise) != nullptr)
          p.fail("duplicate arc for pin '" + arc.pin + "' " + tokens[2]);
        arc.delay = parse_table(p, "delay", lib);
        arc.out_slew = parse_table(p, "slew", lib);
        arc.energy = parse_table(p, "energy", lib);
        cell.arcs.push_back(std::move(arc));
      } else {
        p.fail("unknown cell directive '" + tokens[0] + "'");
      }
    }
    if (tokens.empty()) p.fail("missing 'endcell'");
    lib.cells[*impl][*type] = std::move(cell);
  }
  if (!saw_end) p.fail("missing 'end'");
  return lib;
}

}  // namespace mivtx::charlib
