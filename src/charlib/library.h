// NLDM-style characterized cell library (ROADMAP item 4).
//
// The gate-level timing model the analyzer shipped with (the synthetic
// analyze::default_timing_model, or the single-slope measured
// core::build_timing_model) collapses a cell's timing into one reference
// delay plus a linear load term.  This library is the real thing: per
// (implementation, cell, input pin, input edge) lookup tables of delay,
// output transition and switching energy over an input-slew x output-load
// grid, measured through the transistor-level transient engine
// (charlib/characterize.h) exactly like the paper's Fig. 5 points.
//
// Lookup is bilinear between grid points (exact *at* grid points, monotone
// between monotone grid points) and clamped outside the grid — clamped
// lookups are flagged so the STA can surface extrapolation as a
// diagnostic instead of silently trusting an out-of-range table.
//
// The text format (".mlib") is line-based and byte-stable: every number
// goes through format_double/parse_double, so to_text(from_text(t)) == t
// and a library file can be content-hashed, cached and served.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cells/celltypes.h"
#include "cells/netgen.h"

namespace mivtx::charlib {

struct LookupResult {
  double value = 0.0;
  // The query fell outside the grid on this axis and was clamped to the
  // edge (extrapolation is never silent — see run_library_sta).
  bool clamped_slew = false;
  bool clamped_load = false;
  bool clamped() const { return clamped_slew || clamped_load; }
};

// Dense slew x load table with bilinear interpolation.  Axes are strictly
// ascending; values are row-major (slew index major, load index minor).
class Table2D {
 public:
  Table2D() = default;
  // Zero-filled table over the given axes.  Throws mivtx::Error when an
  // axis is empty or not strictly ascending.
  Table2D(std::vector<double> slews, std::vector<double> loads);

  const std::vector<double>& slews() const { return slews_; }
  const std::vector<double>& loads() const { return loads_; }
  std::size_t rows() const { return slews_.size(); }
  std::size_t cols() const { return loads_.size(); }

  double at(std::size_t slew_idx, std::size_t load_idx) const;
  void set(std::size_t slew_idx, std::size_t load_idx, double value);

  // Bilinear interpolation, clamped to the grid hull.  Exact at grid
  // points; monotone along each axis wherever the grid values are.
  LookupResult lookup(double slew, double load) const;

  bool operator==(const Table2D& o) const {
    return slews_ == o.slews_ && loads_ == o.loads_ && values_ == o.values_;
  }

 private:
  std::vector<double> slews_;
  std::vector<double> loads_;
  std::vector<double> values_;  // rows() * cols(), row-major
};

// One characterized timing arc: input `pin` switching with `input_rise`
// produces an output edge in direction `output_rise` (the arc sense under
// the sensitizing side-input assignment, derived from the cell logic).
struct ArcTables {
  std::string pin;
  bool input_rise = true;
  bool output_rise = true;
  Table2D delay;     // s, 50%-to-50%
  Table2D out_slew;  // s, equivalent full-swing ramp time (t_10-90 / 0.8)
  Table2D energy;    // J drawn from VDD over the switching event

  bool operator==(const ArcTables& o) const {
    return pin == o.pin && input_rise == o.input_rise &&
           output_rise == o.output_rise && delay == o.delay &&
           out_slew == o.out_slew && energy == o.energy;
  }
};

struct CellChar {
  cells::CellType type = cells::CellType::kInv1;
  double area = 0.0;  // m^2, coupled cell footprint (layout model)
  // Per-pin input capacitance (F), in cell pin order.
  std::vector<std::pair<std::string, double>> input_cap;
  // Pin-major, input-rise before input-fall.
  std::vector<ArcTables> arcs;

  // nullptr when the arc was never characterized (missing-timing).
  const ArcTables* find_arc(const std::string& pin, bool input_rise) const;
  // 0.0 for an unknown pin (the caller diagnoses via find_arc).
  double pin_cap(const std::string& pin) const;

  bool operator==(const CellChar& o) const {
    return type == o.type && area == o.area && input_cap == o.input_cap &&
           arcs == o.arcs;
  }
};

class CharLibrary {
 public:
  // Shared characterization grid of every table in the library.
  std::vector<double> slew_axis;
  std::vector<double> load_axis;
  std::map<cells::Implementation, std::map<cells::CellType, CellChar>> cells;

  bool empty() const { return cells.empty(); }
  std::size_t num_cells() const;
  const CellChar* find(cells::Implementation impl,
                       cells::CellType type) const;
  // Merge `entry` in (replacing an existing (impl, type) entry).  Throws
  // mivtx::Error when the entry's tables disagree with the library grid.
  void insert(cells::Implementation impl, CellChar entry);

  bool operator==(const CharLibrary& o) const {
    return slew_axis == o.slew_axis && load_axis == o.load_axis &&
           cells == o.cells;
  }

  // Byte-stable text serialization (".mlib"): to_text(from_text(t)) == t.
  std::string to_text() const;
  // Throws mivtx::Error (with the 1-based line) on malformed input:
  // unknown directives/cells/pins, non-ascending axes, wrong table arity,
  // duplicate arcs, non-finite numbers.
  static CharLibrary from_text(const std::string& text);
};

// Implementation tags used by the text format and report columns:
// "2d" / "1ch" / "2ch" / "4ch".
const char* impl_tag(cells::Implementation impl);
// Throws mivtx::Error on an unknown tag.
cells::Implementation impl_from_tag(const std::string& tag);

}  // namespace mivtx::charlib
