// Characteristic-curve sample type shared by the TCAD simulator (measured
// side) and the compact model (fitted side).
#pragma once

#include <vector>

namespace mivtx {

struct CurvePoint {
  double x = 0.0;  // swept bias (V)
  double y = 0.0;  // response: current (A) or capacitance (F)
};

using Curve = std::vector<CurvePoint>;

}  // namespace mivtx
