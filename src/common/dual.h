// Forward-mode automatic differentiation with a fixed number of independent
// variables.
//
// The compact model (src/bsimsoi) is evaluated on Dual<2> over (vgs, vds) so
// that the transconductances and capacitance matrices stamped into MNA are
// exactly consistent with the currents/charges — a classic source of Newton
// divergence when hand-derived derivatives drift from the equations.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>

namespace mivtx {

template <std::size_t N>
struct Dual {
  double v = 0.0;
  std::array<double, N> d{};  // partial derivatives

  constexpr Dual() = default;
  constexpr Dual(double value) : v(value) {}  // NOLINT: implicit by design
  static constexpr Dual variable(double value, std::size_t index) {
    Dual out(value);
    out.d[index] = 1.0;
    return out;
  }

  constexpr Dual& operator+=(const Dual& o) {
    v += o.v;
    for (std::size_t i = 0; i < N; ++i) d[i] += o.d[i];
    return *this;
  }
  constexpr Dual& operator-=(const Dual& o) {
    v -= o.v;
    for (std::size_t i = 0; i < N; ++i) d[i] -= o.d[i];
    return *this;
  }
  constexpr Dual& operator*=(const Dual& o) {
    for (std::size_t i = 0; i < N; ++i) d[i] = d[i] * o.v + v * o.d[i];
    v *= o.v;
    return *this;
  }
  constexpr Dual& operator/=(const Dual& o) {
    const double inv = 1.0 / o.v;
    for (std::size_t i = 0; i < N; ++i)
      d[i] = (d[i] - v * inv * o.d[i]) * inv;
    v *= inv;
    return *this;
  }
};

template <std::size_t N>
constexpr Dual<N> operator+(Dual<N> a, const Dual<N>& b) { return a += b; }
template <std::size_t N>
constexpr Dual<N> operator-(Dual<N> a, const Dual<N>& b) { return a -= b; }
template <std::size_t N>
constexpr Dual<N> operator*(Dual<N> a, const Dual<N>& b) { return a *= b; }
template <std::size_t N>
constexpr Dual<N> operator/(Dual<N> a, const Dual<N>& b) { return a /= b; }
template <std::size_t N>
constexpr Dual<N> operator-(Dual<N> a) {
  a.v = -a.v;
  for (auto& x : a.d) x = -x;
  return a;
}
template <std::size_t N>
constexpr Dual<N> operator+(Dual<N> a) { return a; }

template <std::size_t N>
constexpr bool operator<(const Dual<N>& a, const Dual<N>& b) { return a.v < b.v; }
template <std::size_t N>
constexpr bool operator>(const Dual<N>& a, const Dual<N>& b) { return a.v > b.v; }

template <std::size_t N>
inline Dual<N> chain(const Dual<N>& x, double f, double dfdx) {
  Dual<N> out;
  out.v = f;
  for (std::size_t i = 0; i < N; ++i) out.d[i] = dfdx * x.d[i];
  return out;
}

template <std::size_t N>
inline Dual<N> sqrt(const Dual<N>& x) {
  const double s = std::sqrt(x.v);
  return chain(x, s, s > 0.0 ? 0.5 / s : 0.0);
}
template <std::size_t N>
inline Dual<N> exp(const Dual<N>& x) {
  const double e = std::exp(x.v);
  return chain(x, e, e);
}
template <std::size_t N>
inline Dual<N> log(const Dual<N>& x) {
  return chain(x, std::log(x.v), 1.0 / x.v);
}
template <std::size_t N>
inline Dual<N> log1p(const Dual<N>& x) {
  return chain(x, std::log1p(x.v), 1.0 / (1.0 + x.v));
}
template <std::size_t N>
inline Dual<N> tanh(const Dual<N>& x) {
  const double t = std::tanh(x.v);
  return chain(x, t, 1.0 - t * t);
}
template <std::size_t N>
inline Dual<N> pow(const Dual<N>& x, double p) {
  const double f = std::pow(x.v, p);
  return chain(x, f, p * std::pow(x.v, p - 1.0));
}

// Numerically-safe softplus: k * log(1 + exp(x / k)).  Smoothly clamps x to
// positive values with transition width k; the workhorse of the single-piece
// compact-model formulation.
template <std::size_t N>
inline Dual<N> softplus(const Dual<N>& x, double k) {
  const double z = x.v / k;
  if (z > 40.0) return x;  // derivative 1 in both branches
  if (z < -40.0) {
    Dual<N> out;
    out.v = k * std::exp(z);
    for (std::size_t i = 0; i < N; ++i) out.d[i] = std::exp(z) * x.d[i];
    return out;
  }
  const double e = std::exp(z);
  return chain(x, k * std::log1p(e), e / (1.0 + e));
}

// Smooth maximum of x and 0 approaching |x| quadratically near 0 — used
// where softplus' residual offset at x >> 0 is unwanted.
template <std::size_t N>
inline Dual<N> smooth_relu(const Dual<N>& x, double eps) {
  // 0.5 * (x + sqrt(x^2 + 4 eps^2)) : equals ~x for x >> eps, ~eps^2/|x| for
  // x << -eps.
  const Dual<N> s = sqrt(x * x + Dual<N>(4.0 * eps * eps));
  return (x + s) * Dual<N>(0.5);
}

}  // namespace mivtx
