#include "common/error.h"

#include <sstream>

namespace mivtx::detail {

void raise_expect_failure(const char* cond, const char* file, int line,
                          const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check `" << cond << "` failed";
  if (!msg.empty()) os << ": " << msg;
  throw Error(os.str());
}

}  // namespace mivtx::detail
