// Error handling for the mivtx toolkit.
//
// Policy (per C++ Core Guidelines E.*): programming errors and violated
// invariants throw mivtx::Error with a formatted location-carrying message.
// Numerical non-convergence is reported through status structs on the solver
// APIs, not exceptions, because callers routinely retry with different
// continuation strategies.
#pragma once

#include <stdexcept>
#include <string>

namespace mivtx {

class Error : public std::runtime_error {
 public:
  explicit Error(std::string msg) : std::runtime_error(std::move(msg)) {}
};

namespace detail {
[[noreturn]] void raise_expect_failure(const char* cond, const char* file,
                                       int line, const std::string& msg);
}  // namespace detail

// Precondition / invariant check that is always on (cheap checks only).
#define MIVTX_EXPECT(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::mivtx::detail::raise_expect_failure(#cond, __FILE__, __LINE__,   \
                                            (msg));                      \
    }                                                                    \
  } while (false)

// Unconditional failure (unreachable code paths, exhaustive switches).
#define MIVTX_FAIL(msg)                                                  \
  ::mivtx::detail::raise_expect_failure("unreachable", __FILE__, __LINE__, \
                                        (msg))

}  // namespace mivtx
