#include "common/hash.h"

#include <cstring>

namespace mivtx {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
}

StableHash& StableHash::mix_bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h_ ^= p[i];
    h_ *= kFnvPrime;
  }
  return *this;
}

StableHash& StableHash::mix(std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  return mix_bytes(bytes, sizeof bytes);
}

StableHash& StableHash::mix(double v) {
  if (v == 0.0) v = 0.0;  // canonicalize -0.0
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return mix(bits);
}

StableHash& StableHash::mix(std::string_view s) {
  mix(static_cast<std::uint64_t>(s.size()));
  return mix_bytes(s.data(), s.size());
}

}  // namespace mivtx
