// Stable content hashing for cache keys.
//
// FNV-1a over an explicit byte serialization: every mix() call feeds bytes
// in a fixed little-endian order, so digests are identical across platforms,
// processes and runs — they can be persisted as on-disk cache-file names.
// This is NOT a cryptographic hash; it only has to make accidental
// collisions between distinct flow inputs astronomically unlikely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mivtx {

class StableHash {
 public:
  StableHash& mix_bytes(const void* data, std::size_t size);

  StableHash& mix(std::uint64_t v);  // little-endian byte order
  StableHash& mix(std::int64_t v) {
    return mix(static_cast<std::uint64_t>(v));
  }
  StableHash& mix(int v) { return mix(static_cast<std::int64_t>(v)); }
  // std::size_t and std::uint64_t are the same type on LP64; no separate
  // overload.
  StableHash& mix(bool v) { return mix(std::uint64_t{v ? 1u : 0u}); }
  // Doubles are mixed by IEEE-754 bit pattern with -0.0 canonicalized to
  // +0.0 (they compare equal, so they must hash equal).
  StableHash& mix(double v);
  // Length-prefixed, so consecutive strings are unambiguous:
  // mix("ab"), mix("c") != mix("a"), mix("bc").
  StableHash& mix(std::string_view s);
  // Without this overload a string literal would take the pointer-to-bool
  // standard conversion over the user-defined one to string_view.
  StableHash& mix(const char* s) { return mix(std::string_view(s)); }

  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit offset basis
};

}  // namespace mivtx
