#include "common/json.h"

#include <cctype>
#include <cmath>

#include "common/error.h"
#include "common/strings.h"

namespace mivtx {
namespace {

// Recursive-descent parser over a raw pointer range; positions are byte
// offsets for error messages (the documents are short, no line tracking).
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    MIVTX_EXPECT(pos_ == s_.size(),
                 format("json: trailing garbage at offset %zu", pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw Error(format("json: %s at offset %zu", what, pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json::null();
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      std::string key = parse_string();
      expect(':');
      obj.set(key, parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      c = s_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // Baselines are ASCII; decode BMP escapes to UTF-8 minimally.
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (digits && pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      eat_digits();
    }
    if (!digits) fail("bad number");
    return Json::number(parse_double(s_.substr(start, pos_ - start)));
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

bool Json::as_bool() const {
  MIVTX_EXPECT(type_ == Type::kBool, "json: not a bool");
  return bool_;
}

double Json::as_number() const {
  MIVTX_EXPECT(type_ == Type::kNumber, "json: not a number");
  return number_;
}

const std::string& Json::as_string() const {
  MIVTX_EXPECT(type_ == Type::kString, "json: not a string");
  return string_;
}

const std::vector<Json>& Json::items() const {
  MIVTX_EXPECT(type_ == Type::kArray, "json: not an array");
  return items_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  MIVTX_EXPECT(type_ == Type::kObject, "json: not an object");
  return members_;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

void Json::set(const std::string& key, Json value) {
  MIVTX_EXPECT(type_ == Type::kObject, "json: set on non-object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

void Json::push_back(Json value) {
  MIVTX_EXPECT(type_ == Type::kArray, "json: push_back on non-array");
  items_.push_back(std::move(value));
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const std::string pad(pretty ? static_cast<std::size_t>(indent) * (depth + 1) : 0, ' ');
  const std::string close_pad(pretty ? static_cast<std::size_t>(indent) * depth : 0, ' ');
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      // Integers render without exponent/point for readability; everything
      // else goes through the lossless shortest round-trip form.
      if (std::isfinite(number_) && number_ == std::floor(number_) &&
          std::fabs(number_) < 1e15) {
        out += format("%.0f", number_);
      } else {
        out += format_double(number_);
      }
      break;
    case Type::kString:
      escape_into(out, string_);
      break;
    case Type::kArray:
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += ']';
      break;
    case Type::kObject:
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        escape_into(out, members_[i].first);
        out += pretty ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += '}';
      break;
  }
}

}  // namespace mivtx
