// Minimal JSON document model shared by the verification subsystem and the
// serve protocol.
//
// Golden baselines (tests/golden/*.json), the mivtx_verify machine reports
// and the mivtx_serve request/response lines are small, flat documents;
// this parser/serializer supports the full JSON grammar but is tuned for
// readability of hand-diffable files: objects preserve insertion order and
// numbers round-trip through format_double so a refresh with unchanged
// inputs is byte-stable.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace mivtx {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json number(double v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  // Throws mivtx::Error with offset context on malformed input.
  static Json parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_number() const { return type_ == Type::kNumber; }

  // Typed accessors; throw mivtx::Error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;                  // array
  const std::vector<std::pair<std::string, Json>>& members() const;  // object

  // Object lookup; nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;
  // Object insert/overwrite, preserving first-insertion order.
  void set(const std::string& key, Json value);
  // Array append.
  void push_back(Json value);

  // Serialize; indent > 0 pretty-prints (2-space style, trailing newline
  // added by callers that write files).
  std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace mivtx
