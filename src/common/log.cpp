#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace mivtx {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  // Single mutex-guarded sink: pool workers log concurrently (flow
  // narration, lint warnings) and lines must not interleave mid-message.
  static std::mutex sink_mutex;
  std::lock_guard<std::mutex> lk(sink_mutex);
  std::fprintf(stderr, "[mivtx %s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace mivtx
