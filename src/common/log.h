// Minimal leveled logger.  Defaults to warnings-only so tests and benches
// stay quiet; flows flip to Info to narrate long characterization runs.
#pragma once

#include <sstream>
#include <string>

namespace mivtx {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

#define MIVTX_LOG(level)                                      \
  if (::mivtx::log_level() <= ::mivtx::LogLevel::level)       \
  ::mivtx::detail::LogLine(::mivtx::LogLevel::level)

#define MIVTX_DEBUG MIVTX_LOG(kDebug)
#define MIVTX_INFO MIVTX_LOG(kInfo)
#define MIVTX_WARN MIVTX_LOG(kWarn)
#define MIVTX_ERROR MIVTX_LOG(kError)

}  // namespace mivtx
