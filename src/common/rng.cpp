#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace mivtx {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::split(std::uint64_t stream_id) const {
  // Fold the four state words and the stream id through splitmix64; the
  // child reseeds from the final value, so child streams are as independent
  // of each other (and of the parent's continuation) as splitmix64 allows.
  std::uint64_t x = stream_id;
  std::uint64_t h = splitmix64(x);
  for (const std::uint64_t s : s_) {
    x ^= s + 0x9e3779b97f4a7c15ULL;
    h ^= splitmix64(x);
  }
  return Rng(h);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MIVTX_EXPECT(lo <= hi, "uniform range inverted");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  MIVTX_EXPECT(n > 0, "uniform_index needs n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) {
  return mean + sigma * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

}  // namespace mivtx
