// Deterministic pseudo-random generator (xoshiro256**).
//
// Every stochastic piece of the toolkit (property tests, Monte-Carlo
// parasitic sweeps) takes an explicit Rng so runs are reproducible; nothing
// reads the wall clock.
#pragma once

#include <cstdint>

namespace mivtx {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();
  // Derive an independent child stream: the same (parent state, stream_id)
  // always yields the same child, and distinct stream_ids yield decorrelated
  // sequences.  Parallel Monte-Carlo tasks each take split(sample_index) so
  // their draws do not depend on scheduling order or thread count.  Does not
  // advance this generator.
  Rng split(std::uint64_t stream_id) const;
  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);
  // Standard normal via Box-Muller (cached second deviate).
  double normal();
  double normal(double mean, double sigma);
  bool bernoulli(double p);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace mivtx
