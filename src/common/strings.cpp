#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"

namespace mivtx {

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with_ci(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i])))
      return false;
  }
  return true;
}

bool equals_ci(std::string_view a, std::string_view b) {
  return a.size() == b.size() && starts_with_ci(a, b);
}

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && delims.find(s[i]) != std::string_view::npos) ++i;
    std::size_t j = i;
    while (j < s.size() && delims.find(s[j]) == std::string_view::npos) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

double parse_spice_number(std::string_view token) {
  const std::string t = to_lower(std::string(trim(token)));
  MIVTX_EXPECT(!t.empty(), "empty numeric token");
  const char* begin = t.c_str();
  char* end = nullptr;
  double v = std::strtod(begin, &end);
  MIVTX_EXPECT(end != begin, "not a number: '" + t + "'");
  std::string_view suffix(end);
  // Strip trailing unit letters after a recognized scale ("2.5pf" -> pico).
  double scale = 1.0;
  if (!suffix.empty()) {
    if (starts_with_ci(suffix, "meg")) {
      scale = 1e6;
    } else {
      switch (suffix[0]) {
        case 't': scale = 1e12; break;
        case 'g': scale = 1e9; break;
        case 'k': scale = 1e3; break;
        case 'm': scale = 1e-3; break;
        case 'u': scale = 1e-6; break;
        case 'n': scale = 1e-9; break;
        case 'p': scale = 1e-12; break;
        case 'f': scale = 1e-15; break;
        case 'a': scale = 1e-18; break;
        default:
          // Unknown suffix letters (e.g. plain unit like "v") are ignored,
          // matching SPICE semantics where "1.0v" parses as 1.0.
          scale = 1.0;
      }
    }
  }
  return v * scale;
}

std::string format_double(double value) {
  // 17 significant digits round-trip any IEEE-754 double through a correct
  // parser; normalize the decimal separator in case a host locale uses ','.
  std::string out = format("%.17g", value);
  for (char& c : out) {
    if (c == ',') c = '.';
  }
  return out;
}

double parse_double(std::string_view token) {
  const std::string_view t = trim(token);
  MIVTX_EXPECT(!t.empty(), "empty numeric token");
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  if (ec == std::errc() && ptr == t.data() + t.size()) return v;
  // Not a plain number ("2.5meg", "10u", ...): defer to the SPICE parser.
  return parse_spice_number(t);
}

std::string format(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  MIVTX_EXPECT(n >= 0, "vsnprintf failed");
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

std::string eng_format(double value, std::string_view unit, int digits) {
  if (value == 0.0 || !std::isfinite(value)) {
    return format("%.*g %.*s", digits, value, static_cast<int>(unit.size()),
                  unit.data());
  }
  static constexpr struct {
    double scale;
    const char* prefix;
  } kScales[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},  {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
      {1e-18, "a"},
  };
  const double mag = std::fabs(value);
  for (const auto& s : kScales) {
    if (mag >= s.scale * 0.9995) {
      return format("%.*f %s%.*s", digits, value / s.scale, s.prefix,
                    static_cast<int>(unit.size()), unit.data());
    }
  }
  return format("%.*e %.*s", digits, value, static_cast<int>(unit.size()),
                unit.data());
}

}  // namespace mivtx
