// Small string utilities shared by the netlist parser, model-card I/O and
// report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mivtx {

std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);
std::string_view trim(std::string_view s);
bool starts_with_ci(std::string_view s, std::string_view prefix);
bool equals_ci(std::string_view a, std::string_view b);

// Split on any character in `delims`; empty tokens are dropped.
std::vector<std::string> split(std::string_view s, std::string_view delims);

// Parse a SPICE-style number with optional engineering suffix:
// 1k, 2.5meg, 10u, 3n, 1.5p, 7f, 1e-9, 0.5 ... Throws mivtx::Error on junk.
double parse_spice_number(std::string_view token);

// Lossless, locale-independent double round-trip (cache files and model
// cards must survive any process locale):
//   format_double: shortest-of-%.17g text that parses back bit-identically
//   parse_double:  std::from_chars; falls back to parse_spice_number for
//                  tokens with engineering suffixes.
std::string format_double(double value);
double parse_double(std::string_view token);

// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Engineering notation ("3.50e-10" style is hard to scan in reports):
// value 3.5e-10 with unit "s" -> "350.0 ps".
std::string eng_format(double value, std::string_view unit, int digits = 3);

}  // namespace mivtx
