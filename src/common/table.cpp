#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace mivtx {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  MIVTX_EXPECT(!headers_.empty(), "table needs at least one column");
  aligns_[0] = Align::kLeft;
}

void TextTable::add_row(std::vector<std::string> cells) {
  MIVTX_EXPECT(cells.size() == headers_.size(),
               "row arity mismatch: got " + std::to_string(cells.size()) +
                   ", want " + std::to_string(headers_.size()));
  rows_.push_back(Row{false, std::move(cells)});
}

void TextTable::add_separator() { rows_.push_back(Row{true, {}}); }

void TextTable::set_align(std::size_t column, Align align) {
  MIVTX_EXPECT(column < aligns_.size(), "column out of range");
  aligns_[column] = align;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      widths[c] = std::max(widths[c], row.cells[c].size());
  }

  auto emit_cell = [&](std::ostringstream& os, const std::string& text,
                       std::size_t c) {
    const std::size_t pad = widths[c] - text.size();
    if (aligns_[c] == Align::kLeft) {
      os << text << std::string(pad, ' ');
    } else {
      os << std::string(pad, ' ') << text;
    }
  };
  auto emit_rule = [&](std::ostringstream& os) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };

  std::ostringstream os;
  emit_rule(os);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ';
    emit_cell(os, headers_[c], c);
    os << " |";
  }
  os << '\n';
  emit_rule(os);
  for (const auto& row : rows_) {
    if (row.separator) {
      emit_rule(os);
      continue;
    }
    os << "|";
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      os << ' ';
      emit_cell(os, row.cells[c], c);
      os << " |";
    }
    os << '\n';
  }
  emit_rule(os);
  return os.str();
}

void TextTable::print() const {
  const std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), stdout);
}

std::string percent_delta(double baseline, double value, int digits) {
  if (baseline == 0.0) return "n/a";
  const double pct = 100.0 * (value - baseline) / baseline;
  return format("%+.*f%%", digits, pct);
}

}  // namespace mivtx
