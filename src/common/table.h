// ASCII table formatter used by every bench binary to print the paper's
// tables and figure series in aligned, diffable form.
#pragma once

#include <string>
#include <vector>

namespace mivtx {

class TextTable {
 public:
  enum class Align { kLeft, kRight };

  explicit TextTable(std::vector<std::string> headers);

  // Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);
  // Insert a horizontal separator before the next row.
  void add_separator();

  void set_align(std::size_t column, Align align);

  std::string to_string() const;
  // Print to stdout.
  void print() const;

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return headers_.size(); }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
  std::vector<Align> aligns_;
};

// Convenience formatting for percent deltas: +3.1%, -18.0%.
std::string percent_delta(double baseline, double value, int digits = 1);

}  // namespace mivtx
