// Physical constants and unit helpers used across the mivtx toolkit.
//
// All internal quantities are SI (meters, seconds, volts, amperes, farads)
// unless a name says otherwise.  Helpers exist so that code touching process
// dimensions reads in the same units the paper's Table I uses (nm, cm^-3).
#pragma once

namespace mivtx {

// --- Fundamental constants (CODATA 2018) ---------------------------------
inline constexpr double kElementaryCharge = 1.602176634e-19;  // C
inline constexpr double kBoltzmann = 1.380649e-23;            // J/K
inline constexpr double kVacuumPermittivity = 8.8541878128e-12;  // F/m

// --- Material permittivities (relative) -----------------------------------
inline constexpr double kEpsRelSilicon = 11.7;
inline constexpr double kEpsRelSiO2 = 3.9;
inline constexpr double kEpsRelSi3N4 = 7.5;

// --- Silicon band/transport parameters at 300 K ---------------------------
inline constexpr double kSiIntrinsicDensity = 1.08e16;  // m^-3 (≈1.08e10 cm^-3)
inline constexpr double kSiBandgap = 1.12;              // eV
// Low-field lattice mobilities (m^2/Vs); bulk values, degraded per-device by
// the mobility models in tcad/ and bsimsoi/.
inline constexpr double kSiElectronMobility = 0.1417;  // 1417 cm^2/Vs
inline constexpr double kSiHoleMobility = 0.0470;      // 470 cm^2/Vs

// --- Unit helpers ----------------------------------------------------------
constexpr double nm(double v) { return v * 1e-9; }
constexpr double um(double v) { return v * 1e-6; }
constexpr double per_cm3(double v) { return v * 1e6; }  // cm^-3 -> m^-3
constexpr double fF(double v) { return v * 1e-15; }
constexpr double pF(double v) { return v * 1e-12; }
constexpr double ns(double v) { return v * 1e-9; }
constexpr double ps(double v) { return v * 1e-12; }
constexpr double uW(double v) { return v * 1e-6; }

// Thermal voltage kT/q at temperature `t_kelvin`.
constexpr double thermal_voltage(double t_kelvin) {
  return kBoltzmann * t_kelvin / kElementaryCharge;
}

inline constexpr double kRoomTemperature = 300.0;  // K
inline constexpr double kVtRoom = thermal_voltage(kRoomTemperature);

}  // namespace mivtx
