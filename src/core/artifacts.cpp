#include "core/artifacts.h"

#include <sstream>

#include "common/error.h"
#include "common/hash.h"
#include "common/strings.h"

namespace mivtx::core {

namespace {

void mix_process(StableHash& h, const ProcessParams& p) {
  h.mix("process");
  h.mix(p.t_si).mix(p.h_src).mix(p.t_ox).mix(p.n_src).mix(p.t_spacer);
  h.mix(p.t_box).mix(p.t_miv).mix(p.l_src).mix(p.w_src).mix(p.l_gate);
  h.mix(p.vdd).mix(p.tnom_c);
}

void mix_grid(StableHash& h, const extract::SweepGrid& g) {
  h.mix("grid");
  h.mix(g.vdd).mix(g.n_vg).mix(g.n_vd).mix(g.n_cv);
  h.mix(g.idvd_vgs.size());
  for (double v : g.idvd_vgs) h.mix(v);
}

void mix_extraction_options(StableHash& h,
                            const extract::ExtractionOptions& o) {
  h.mix("extraction-options");
  h.mix(o.nm.max_evaluations).mix(o.nm.initial_step).mix(o.nm.x_tol);
  h.mix(o.nm.f_tol).mix(o.nm.restarts);
  h.mix(o.lm.max_iterations).mix(o.lm.initial_lambda).mix(o.lm.g_tol);
  h.mix(o.lm.step_rel);
  h.mix(o.run_lm_polish).mix(o.run_ieff_retarget);
}

void mix_rules(StableHash& h, const layout::DesignRules& r) {
  h.mix("design-rules");
  h.mix(r.gate_length).mix(r.spacer).mix(r.sd_length).mix(r.device_width);
  h.mix(r.m1_width).mix(r.m1_space).mix(r.via_size).mix(r.miv_size);
  h.mix(r.miv_liner).mix(r.rail_track).mix(r.cell_margin);
  h.mix(r.miv_keepout_overlap);
}

void mix_ppa_options(StableHash& h, const PpaOptions& o) {
  h.mix("ppa-options");
  h.mix(o.vdd).mix(o.t_edge).mix(o.t_delay).mix(o.t_width).mix(o.h_max);
  h.mix(o.parasitics.r_miv).mix(o.parasitics.r_wire);
  h.mix(o.parasitics.r_rail).mix(o.parasitics.c_load);
  h.mix(o.parasitics.r_extra_sd_4ch).mix(o.parasitics.c_miv_external);
  h.mix(o.lint);
  // Solver-core knobs that can move the measured numbers: the backend
  // choice (dense vs sparse pivoting differ in rounding) and the device
  // bypass tolerance (stale linearizations within vtol).
  h.mix(static_cast<int>(o.newton.backend));
  h.mix(static_cast<int>(o.newton.sparse_min_unknowns));
  h.mix(o.newton.bypass_vtol);
}

void write_curve(std::ostringstream& os, const char* tag, const Curve& c) {
  os << tag << ' ' << c.size();
  for (const CurvePoint& p : c)
    os << ' ' << format_double(p.x) << ' ' << format_double(p.y);
  os << '\n';
}

// Cursor over serialized lines; every read validates its leading tag.
class LineReader {
 public:
  explicit LineReader(const std::string& text) {
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      if (end > start) lines_.push_back(text.substr(start, end - start));
      start = end + 1;
    }
  }

  std::vector<std::string> next(const char* tag) {
    MIVTX_EXPECT(pos_ < lines_.size(),
                 std::string("artifact truncated before '") + tag + "'");
    const std::string& line = lines_[pos_++];
    auto fields = split(line, " \t");
    MIVTX_EXPECT(!fields.empty() && fields[0] == tag,
                 std::string("artifact expected '") + tag + "', got: " + line);
    return fields;
  }

  // Raw remainder of a line after the tag (for .model lines with spaces).
  std::string next_raw(const char* tag) {
    MIVTX_EXPECT(pos_ < lines_.size(),
                 std::string("artifact truncated before '") + tag + "'");
    const std::string& line = lines_[pos_++];
    MIVTX_EXPECT(line.rfind(std::string(tag) + " ", 0) == 0,
                 std::string("artifact expected '") + tag + "', got: " + line);
    return line.substr(std::string(tag).size() + 1);
  }

 private:
  std::vector<std::string> lines_;
  std::size_t pos_ = 0;
};

Curve read_curve(LineReader& in, const char* tag) {
  const auto f = in.next(tag);
  MIVTX_EXPECT(f.size() >= 2, "curve line missing count");
  const std::size_t n = static_cast<std::size_t>(parse_double(f[1]));
  MIVTX_EXPECT(f.size() == 2 + 2 * n, "curve line arity mismatch");
  Curve c;
  c.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    c.push_back(CurvePoint{parse_double(f[2 + 2 * i]),
                           parse_double(f[3 + 2 * i])});
  return c;
}

}  // namespace

runtime::CacheKey characterization_key(const ProcessParams& process, Variant v,
                                       Polarity pol,
                                       const extract::SweepGrid& grid) {
  StableHash h;
  h.mix("mivtx-characterization").mix(kArtifactSchemaVersion);
  mix_process(h, process);
  h.mix(static_cast<int>(v)).mix(static_cast<int>(pol));
  mix_grid(h, grid);
  return runtime::CacheKey{"char", h.digest()};
}

runtime::CacheKey extraction_key(const ProcessParams& process, Variant v,
                                 Polarity pol, const extract::SweepGrid& grid,
                                 const extract::ExtractionOptions& opts) {
  StableHash h;
  h.mix("mivtx-extraction").mix(kArtifactSchemaVersion);
  mix_process(h, process);
  h.mix(static_cast<int>(v)).mix(static_cast<int>(pol));
  mix_grid(h, grid);
  mix_extraction_options(h, opts);
  return runtime::CacheKey{"card", h.digest()};
}

runtime::CacheKey ppa_key(const cells::ModelSet& models, cells::CellType type,
                          cells::Implementation impl, const PpaOptions& opts,
                          const layout::DesignRules& rules) {
  StableHash h;
  h.mix("mivtx-ppa").mix(kArtifactSchemaVersion);
  // The cards carry every extracted parameter at full precision, so their
  // text form is exactly the electrical identity of the measurement.
  h.mix(models.nmos.to_model_line());
  h.mix(models.pmos.to_model_line());
  h.mix(static_cast<int>(type)).mix(static_cast<int>(impl));
  mix_ppa_options(h, opts);
  mix_rules(h, rules);
  return runtime::CacheKey{"ppa", h.digest()};
}

std::string serialize_characteristics(const extract::CharacteristicSet& data) {
  std::ostringstream os;
  os << "charset 1 " << data.device_name << '\n';
  os << "vds " << format_double(data.vds_low) << ' '
     << format_double(data.vds_high) << '\n';
  write_curve(os, "idvg_low", data.idvg_low);
  write_curve(os, "idvg_high", data.idvg_high);
  os << "idvd " << data.idvd.size() << '\n';
  for (const extract::OutputCurve& oc : data.idvd) {
    os << "vgs " << format_double(oc.vgs) << '\n';
    write_curve(os, "curve", oc.curve);
  }
  write_curve(os, "cv", data.cv);
  return os.str();
}

extract::CharacteristicSet parse_characteristics(const std::string& text) {
  LineReader in(text);
  extract::CharacteristicSet data;
  const auto head = in.next("charset");
  MIVTX_EXPECT(head.size() == 3 && head[1] == "1",
               "unsupported charset version");
  data.device_name = head[2];
  const auto vds = in.next("vds");
  MIVTX_EXPECT(vds.size() == 3, "vds line arity");
  data.vds_low = parse_double(vds[1]);
  data.vds_high = parse_double(vds[2]);
  data.idvg_low = read_curve(in, "idvg_low");
  data.idvg_high = read_curve(in, "idvg_high");
  const auto idvd = in.next("idvd");
  MIVTX_EXPECT(idvd.size() == 2, "idvd line arity");
  const std::size_t n = static_cast<std::size_t>(parse_double(idvd[1]));
  for (std::size_t i = 0; i < n; ++i) {
    const auto vgs = in.next("vgs");
    MIVTX_EXPECT(vgs.size() == 2, "vgs line arity");
    extract::OutputCurve oc;
    oc.vgs = parse_double(vgs[1]);
    oc.curve = read_curve(in, "curve");
    data.idvd.push_back(std::move(oc));
  }
  data.cv = read_curve(in, "cv");
  data.validate();
  return data;
}

std::string serialize_extraction(const extract::ExtractionReport& report) {
  std::ostringstream os;
  os << "extraction 1\n";
  os << "card " << report.card.to_model_line() << '\n';
  os << "errors " << format_double(report.errors.idvg) << ' '
     << format_double(report.errors.idvd) << ' '
     << format_double(report.errors.cv) << '\n';
  os << "stages " << report.stages.size() << '\n';
  for (const extract::StageReport& s : report.stages) {
    os << "stage " << format_double(s.error_before) << ' '
       << format_double(s.error_after) << ' ' << s.evaluations << ' '
       << s.parameters.size() << ' ' << s.name << '\n';
    for (const std::string& p : s.parameters) os << "param " << p << '\n';
  }
  return os.str();
}

extract::ExtractionReport parse_extraction(const std::string& text) {
  LineReader in(text);
  extract::ExtractionReport report;
  const auto head = in.next("extraction");
  MIVTX_EXPECT(head.size() == 2 && head[1] == "1",
               "unsupported extraction version");
  report.card = bsimsoi::SoiModelCard::from_model_line(in.next_raw("card"));
  const auto err = in.next("errors");
  MIVTX_EXPECT(err.size() == 4, "errors line arity");
  report.errors.idvg = parse_double(err[1]);
  report.errors.idvd = parse_double(err[2]);
  report.errors.cv = parse_double(err[3]);
  const auto stages = in.next("stages");
  MIVTX_EXPECT(stages.size() == 2, "stages line arity");
  const std::size_t n = static_cast<std::size_t>(parse_double(stages[1]));
  for (std::size_t i = 0; i < n; ++i) {
    const auto f = in.next("stage");
    MIVTX_EXPECT(f.size() >= 6, "stage line arity");
    extract::StageReport s;
    s.error_before = parse_double(f[1]);
    s.error_after = parse_double(f[2]);
    s.evaluations = static_cast<std::size_t>(parse_double(f[3]));
    const std::size_t np = static_cast<std::size_t>(parse_double(f[4]));
    s.name = f[5];
    for (std::size_t k = 0; k < np; ++k) {
      const auto p = in.next("param");
      MIVTX_EXPECT(p.size() == 2, "param line arity");
      s.parameters.push_back(p[1]);
    }
    report.stages.push_back(std::move(s));
  }
  return report;
}

std::string serialize_cell_ppa(const CellPpa& ppa) {
  std::ostringstream os;
  os << "cellppa 1 " << static_cast<int>(ppa.type) << ' '
     << static_cast<int>(ppa.impl) << ' ' << (ppa.ok ? 1 : 0) << '\n';
  os << "metrics " << format_double(ppa.delay) << ' '
     << format_double(ppa.power) << ' ' << format_double(ppa.area) << ' '
     << format_double(ppa.pdp) << '\n';
  os << "mivs " << ppa.mivs.total << ' ' << ppa.mivs.gate_external << ' '
     << ppa.mivs.internal << '\n';
  os << "arcs " << ppa.arcs.size() << '\n';
  for (const ArcMeasurement& a : ppa.arcs) {
    os << "arc " << (a.input_rising ? 1 : 0) << ' '
       << format_double(a.delay) << ' ' << a.pin << '\n';
  }
  return os.str();
}

CellPpa parse_cell_ppa(const std::string& text) {
  LineReader in(text);
  CellPpa ppa;
  const auto head = in.next("cellppa");
  MIVTX_EXPECT(head.size() == 5 && head[1] == "1",
               "unsupported cellppa version");
  ppa.type = static_cast<cells::CellType>(
      static_cast<int>(parse_double(head[2])));
  ppa.impl = static_cast<cells::Implementation>(
      static_cast<int>(parse_double(head[3])));
  ppa.ok = parse_double(head[4]) != 0.0;
  const auto m = in.next("metrics");
  MIVTX_EXPECT(m.size() == 5, "metrics line arity");
  ppa.delay = parse_double(m[1]);
  ppa.power = parse_double(m[2]);
  ppa.area = parse_double(m[3]);
  ppa.pdp = parse_double(m[4]);
  const auto mivs = in.next("mivs");
  MIVTX_EXPECT(mivs.size() == 4, "mivs line arity");
  ppa.mivs.total = static_cast<int>(parse_double(mivs[1]));
  ppa.mivs.gate_external = static_cast<int>(parse_double(mivs[2]));
  ppa.mivs.internal = static_cast<int>(parse_double(mivs[3]));
  const auto arcs = in.next("arcs");
  MIVTX_EXPECT(arcs.size() == 2, "arcs line arity");
  const std::size_t n = static_cast<std::size_t>(parse_double(arcs[1]));
  for (std::size_t i = 0; i < n; ++i) {
    const auto a = in.next("arc");
    MIVTX_EXPECT(a.size() == 4, "arc line arity");
    ArcMeasurement arc;
    arc.input_rising = parse_double(a[1]) != 0.0;
    arc.delay = parse_double(a[2]);
    arc.pin = a[3];
    ppa.arcs.push_back(std::move(arc));
  }
  return ppa;
}

}  // namespace mivtx::core
