// Cache keys and lossless serialization for the flow's cacheable artifacts.
//
// Three artifact domains, each keyed by a StableHash over *every* input the
// artifact depends on plus kArtifactSchemaVersion:
//   "char" — extract::CharacteristicSet   from (ProcessParams, variant,
//            polarity, SweepGrid): skips the TCAD characterization.
//   "card" — extract::ExtractionReport    additionally keyed by the
//            ExtractionOptions: skips the staged extraction.
//   "ppa"  — CellPpa                      from (ModelSet cards, cell, impl,
//            PpaOptions physics fields, DesignRules): skips the transients.
//
// Payloads are line-based text with format_double() (exact, locale-
// independent) for every floating-point field; parse_*() throws
// mivtx::Error on malformed input — callers treat that as a cache miss.
//
// Bump kArtifactSchemaVersion whenever TCAD physics, the compact model, the
// extraction pipeline, cell netlisting, the layout model or any serialized
// struct changes shape: old cache entries then simply stop matching.
#pragma once

#include <string>

#include "core/flow.h"
#include "core/ppa.h"
#include "runtime/artifact_cache.h"

namespace mivtx::core {

inline constexpr int kArtifactSchemaVersion = 1;

runtime::CacheKey characterization_key(const ProcessParams& process, Variant v,
                                       Polarity pol,
                                       const extract::SweepGrid& grid);
runtime::CacheKey extraction_key(const ProcessParams& process, Variant v,
                                 Polarity pol, const extract::SweepGrid& grid,
                                 const extract::ExtractionOptions& opts);
runtime::CacheKey ppa_key(const cells::ModelSet& models, cells::CellType type,
                          cells::Implementation impl, const PpaOptions& opts,
                          const layout::DesignRules& rules);

std::string serialize_characteristics(const extract::CharacteristicSet& data);
extract::CharacteristicSet parse_characteristics(const std::string& text);

std::string serialize_extraction(const extract::ExtractionReport& report);
extract::ExtractionReport parse_extraction(const std::string& text);

std::string serialize_cell_ppa(const CellPpa& ppa);
CellPpa parse_cell_ppa(const std::string& text);

}  // namespace mivtx::core
