#include "core/chip.h"

#include "bsimsoi/model.h"
#include "common/error.h"
#include "common/log.h"

namespace mivtx::core {

gatelevel::TimingModel build_timing_model(const ModelLibrary& library,
                                          const PpaOptions& ppa_opts,
                                          const TimingModelOptions& opts) {
  gatelevel::TimingModel model;
  model.c_ref = ppa_opts.parasitics.c_load;

  PpaEngine engine(library, ppa_opts);
  for (cells::Implementation impl : cells::all_implementations()) {
    // Input capacitance: average gate capacitance of one n-type plus one
    // p-type device at mid rail (every cell pin drives one of each).
    const cells::ModelSet set = engine.model_set(impl);
    const double half = 0.5 * ppa_opts.vdd;
    const double cin =
        bsimsoi::eval(set.nmos, half, half, 0.0).dqg[bsimsoi::kDvG] +
        bsimsoi::eval(set.pmos, -half, -half, 0.0).dqg[bsimsoi::kDvG];

    for (cells::CellType type : cells::all_cells()) {
      const CellPpa ppa = engine.measure(type, impl);
      MIVTX_EXPECT(ppa.ok, std::string("PPA failed for ") +
                               cells::cell_name(type));
      model.cells[impl][type] =
          gatelevel::CellTiming{ppa.delay, cin};
    }

    // Load slope from a second load point on the slope cell.
    PpaOptions alt = ppa_opts;
    alt.parasitics.c_load = opts.c_load_alt;
    PpaEngine alt_engine(library, alt);
    const CellPpa base = engine.measure(opts.slope_cell, impl);
    const CellPpa heavy = alt_engine.measure(opts.slope_cell, impl);
    MIVTX_EXPECT(base.ok && heavy.ok, "slope measurement failed");
    model.load_slope[impl] = (heavy.delay - base.delay) /
                             (opts.c_load_alt - ppa_opts.parasitics.c_load);
  }
  return model;
}

ChipPpa evaluate_chip(const gatelevel::GateNetlist& netlist,
                      const gatelevel::TimingModel& timing,
                      cells::Implementation impl,
                      const layout::DesignRules& rules) {
  ChipPpa out;
  out.circuit = netlist.name();
  out.impl = impl;
  out.num_cells = netlist.instances().size();

  const gatelevel::StaResult sta = gatelevel::run_sta(netlist, timing, impl);
  out.critical_delay = sta.critical_delay;

  const place::Placer placer(rules);
  const place::Placement coupled =
      placer.place(netlist, impl, place::Mode::kCoupled);
  const place::Placement split =
      placer.place(netlist, impl, place::Mode::kPerTier);
  out.coupled_area = coupled.chip_area();
  out.per_tier_area = split.chip_area();
  out.per_tier_top_area = split.top.area();
  out.per_tier_bottom_area = split.bottom.area();
  return out;
}

std::vector<gatelevel::GateNetlist> benchmark_circuits() {
  std::vector<gatelevel::GateNetlist> out;
  out.push_back(gatelevel::ripple_carry_adder(8));
  out.push_back(gatelevel::decoder(4));
  out.push_back(gatelevel::parity_tree(16));
  out.push_back(gatelevel::mux_tree(8));
  out.push_back(gatelevel::aoi_block());
  return out;
}

}  // namespace mivtx::core
