// Chip-level extension: lift the cell-level PPA study to small benchmark
// circuits via static timing analysis and two-tier placement.  This
// implements the paper's future-work direction (separate per-tier
// placement) end to end.
#pragma once

#include <vector>

#include "core/ppa.h"
#include "gatelevel/netlist.h"
#include "gatelevel/sta.h"
#include "place/placer.h"

namespace mivtx::core {

struct TimingModelOptions {
  // Cell used to measure the per-implementation load-sensitivity slope.
  cells::CellType slope_cell = cells::CellType::kInv1;
  // Second load point for the slope measurement (first is the PPA
  // reference, 1 fF).
  double c_load_alt = 2e-15;
};

// Measure a gate-level timing model from transient simulation: per-cell
// reference delays via PpaEngine, per-implementation load slope from a
// two-point load sweep on `slope_cell`, and per-pin input capacitance from
// the compact model's gate capacitance at mid rail.
// Runs the full 14-cell PPA matrix (~1 min).
gatelevel::TimingModel build_timing_model(const ModelLibrary& library,
                                          const PpaOptions& ppa_opts = {},
                                          const TimingModelOptions& opts = {});

struct ChipPpa {
  std::string circuit;
  cells::Implementation impl = cells::Implementation::k2D;
  std::size_t num_cells = 0;
  double critical_delay = 0.0;       // s (STA)
  double coupled_area = 0.0;         // m^2 (coupled placement outline)
  double per_tier_area = 0.0;        // m^2 (independent tier placement)
  double per_tier_top_area = 0.0;    // m^2
  double per_tier_bottom_area = 0.0; // m^2
};

// STA + both placement modes for one circuit under one implementation.
ChipPpa evaluate_chip(const gatelevel::GateNetlist& netlist,
                      const gatelevel::TimingModel& timing,
                      cells::Implementation impl,
                      const layout::DesignRules& rules = {});

// The benchmark circuit suite used by the chip-level benches.
std::vector<gatelevel::GateNetlist> benchmark_circuits();

}  // namespace mivtx::core
