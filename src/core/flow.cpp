#include "core/flow.h"

#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "common/strings.h"
#include "core/artifacts.h"
#include "runtime/artifact_cache.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"
#include "tcad/characterize.h"
#include "trace/trace.h"

namespace mivtx::core {

void ModelLibrary::put(Variant v, Polarity pol, bsimsoi::SoiModelCard card) {
  card.name = device_key(v, pol);
  cards_[card.name] = std::move(card);
}

const bsimsoi::SoiModelCard& ModelLibrary::card(Variant v,
                                                Polarity pol) const {
  const auto it = cards_.find(device_key(v, pol));
  MIVTX_EXPECT(it != cards_.end(),
               "model library missing " + device_key(v, pol));
  return it->second;
}

bool ModelLibrary::has(Variant v, Polarity pol) const {
  return cards_.count(device_key(v, pol)) > 0;
}

std::string ModelLibrary::to_text() const {
  std::ostringstream os;
  for (const auto& [name, card] : cards_) os << card.to_model_line() << '\n';
  return os.str();
}

ModelLibrary ModelLibrary::from_text(const std::string& text) {
  ModelLibrary lib;
  for (const std::string& raw : split(text, "\n")) {
    const std::string line(trim(raw));
    if (line.empty()) continue;
    bsimsoi::SoiModelCard card = bsimsoi::SoiModelCard::from_model_line(line);
    lib.cards_[card.name] = std::move(card);
  }
  return lib;
}

extract::CharacteristicSet characterize_device(
    const ProcessParams& process, Variant v, Polarity pol,
    const extract::SweepGrid& grid) {
  tcad::DeviceSimulator sim(device_spec(process, v, pol));
  tcad::Characterizer ch(sim);

  extract::CharacteristicSet data;
  data.device_name = device_key(v, pol);
  data.vds_low = 0.05;
  data.vds_high = grid.vdd;
  data.idvg_low = ch.id_vg(data.vds_low, grid.vg_points());
  data.idvg_high = ch.id_vg(data.vds_high, grid.vg_points());
  for (double vgs : grid.idvd_vgs) {
    data.idvd.push_back(extract::OutputCurve{
        vgs, ch.id_vd(vgs, grid.vd_points())});
  }
  data.cv = ch.cgg_vg(0.0, grid.cv_points());
  data.validate();
  return data;
}

namespace {

// One device end-to-end: cached characterization + cached extraction.
DeviceExtraction run_device(const ProcessParams& process, Variant v,
                            Polarity pol, const extract::SweepGrid& grid,
                            const extract::ExtractionOptions& opts,
                            runtime::ArtifactCache* cache) {
  trace::Span span("flow.device", "flow", device_key(v, pol).c_str());
  runtime::Metrics& metrics = runtime::Metrics::global();
  DeviceExtraction dev;
  dev.variant = v;
  dev.polarity = pol;

  bool have_data = false;
  if (cache != nullptr) {
    const runtime::CacheKey key = characterization_key(process, v, pol, grid);
    if (const auto hit = cache->get(key)) {
      try {
        dev.data = parse_characteristics(*hit);
        have_data = true;
        metrics.add("flow.char.cache_hit");
      } catch (const Error& e) {
        MIVTX_WARN << "discarding unreadable cached characteristics for "
                   << device_key(v, pol) << ": " << e.what();
      }
    }
  }
  if (!have_data) {
    MIVTX_INFO << "characterizing " << device_key(v, pol);
    trace::Span char_span("flow.characterize", "flow");
    runtime::ScopedTimer timer("flow.characterize");
    dev.data = characterize_device(process, v, pol, grid);
    metrics.add("flow.char.computed");
    if (cache != nullptr) {
      cache->put(characterization_key(process, v, pol, grid),
                 serialize_characteristics(dev.data));
    }
  }

  bool have_report = false;
  if (cache != nullptr) {
    const runtime::CacheKey key =
        extraction_key(process, v, pol, grid, opts);
    if (const auto hit = cache->get(key)) {
      try {
        dev.report = parse_extraction(*hit);
        have_report = true;
        metrics.add("flow.card.cache_hit");
      } catch (const Error& e) {
        MIVTX_WARN << "discarding unreadable cached extraction for "
                   << device_key(v, pol) << ": " << e.what();
      }
    }
  }
  if (!have_report) {
    MIVTX_INFO << "extracting " << device_key(v, pol);
    trace::Span extract_span("flow.extract", "flow");
    runtime::ScopedTimer timer("flow.extract");
    dev.report =
        extract::extract_card(dev.data, initial_card(process, v, pol), opts);
    metrics.add("flow.card.computed");
    if (cache != nullptr) {
      cache->put(extraction_key(process, v, pol, grid, opts),
                 serialize_extraction(dev.report));
    }
  }
  return dev;
}

}  // namespace

FlowResult run_full_flow(const ProcessParams& process,
                         const extract::SweepGrid& grid,
                         const extract::ExtractionOptions& opts,
                         const FlowOptions& exec) {
  trace::Span span("flow.run", "flow");
  runtime::ScopedTimer timer("flow.total");
  std::vector<std::pair<Variant, Polarity>> order;
  for (Polarity pol : {Polarity::kNmos, Polarity::kPmos}) {
    for (Variant v : all_variants()) order.emplace_back(v, pol);
  }

  // The 8 devices are fully independent; fan out and reassemble in the
  // fixed order above, so results match the serial run exactly.
  runtime::ThreadPool pool(exec.jobs);
  runtime::ThreadPool* pool_ptr = pool.size() > 1 ? &pool : nullptr;
  std::vector<DeviceExtraction> devices =
      runtime::parallel_map<DeviceExtraction>(
          pool_ptr, order.size(), [&](std::size_t i) {
            return run_device(process, order[i].first, order[i].second, grid,
                              opts, exec.cache);
          });

  FlowResult result;
  for (DeviceExtraction& dev : devices) {
    result.library.put(dev.variant, dev.polarity, dev.report.card);
    result.devices.push_back(std::move(dev));
  }
  return result;
}

}  // namespace mivtx::core
