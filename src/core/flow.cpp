#include "core/flow.h"

#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/strings.h"
#include "core/flow_units.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"
#include "tcad/characterize.h"
#include "trace/trace.h"

namespace mivtx::core {

void ModelLibrary::put(Variant v, Polarity pol, bsimsoi::SoiModelCard card) {
  card.name = device_key(v, pol);
  cards_[card.name] = std::move(card);
}

const bsimsoi::SoiModelCard& ModelLibrary::card(Variant v,
                                                Polarity pol) const {
  const auto it = cards_.find(device_key(v, pol));
  MIVTX_EXPECT(it != cards_.end(),
               "model library missing " + device_key(v, pol));
  return it->second;
}

bool ModelLibrary::has(Variant v, Polarity pol) const {
  return cards_.count(device_key(v, pol)) > 0;
}

std::string ModelLibrary::to_text() const {
  std::ostringstream os;
  for (const auto& [name, card] : cards_) os << card.to_model_line() << '\n';
  return os.str();
}

ModelLibrary ModelLibrary::from_text(const std::string& text) {
  ModelLibrary lib;
  for (const std::string& raw : split(text, "\n")) {
    const std::string line(trim(raw));
    if (line.empty()) continue;
    bsimsoi::SoiModelCard card = bsimsoi::SoiModelCard::from_model_line(line);
    lib.cards_[card.name] = std::move(card);
  }
  return lib;
}

extract::CharacteristicSet characterize_device(
    const ProcessParams& process, Variant v, Polarity pol,
    const extract::SweepGrid& grid) {
  tcad::DeviceSimulator sim(device_spec(process, v, pol));
  tcad::Characterizer ch(sim);

  extract::CharacteristicSet data;
  data.device_name = device_key(v, pol);
  data.vds_low = 0.05;
  data.vds_high = grid.vdd;
  data.idvg_low = ch.id_vg(data.vds_low, grid.vg_points());
  data.idvg_high = ch.id_vg(data.vds_high, grid.vg_points());
  for (double vgs : grid.idvd_vgs) {
    data.idvd.push_back(extract::OutputCurve{
        vgs, ch.id_vd(vgs, grid.vd_points())});
  }
  data.cv = ch.cgg_vg(0.0, grid.cv_points());
  data.validate();
  return data;
}

FlowResult run_full_flow(const ProcessParams& process,
                         const extract::SweepGrid& grid,
                         const extract::ExtractionOptions& opts,
                         const FlowOptions& exec) {
  trace::Span span("flow.run", "flow");
  runtime::ScopedTimer timer("flow.total");
  std::vector<std::pair<Variant, Polarity>> order;
  for (Polarity pol : {Polarity::kNmos, Polarity::kPmos}) {
    for (Variant v : all_variants()) order.emplace_back(v, pol);
  }

  // The 8 device pipelines (curves unit -> extraction unit, see
  // core/flow_units.h) are fully independent; fan out and reassemble in
  // the fixed order above, so results match the serial run exactly.  A
  // partially warm cache resumes each pipeline mid-flow: cached stages
  // deserialize, only the cold tail computes.
  runtime::ThreadPool pool(exec.jobs);
  runtime::ThreadPool* pool_ptr = pool.size() > 1 ? &pool : nullptr;
  std::vector<DeviceExtraction> devices =
      runtime::parallel_map<DeviceExtraction>(
          pool_ptr, order.size(), [&](std::size_t i) {
            return run_extraction_unit(process, order[i].first,
                                       order[i].second, grid, opts,
                                       exec.cache);
          });

  FlowResult result;
  for (DeviceExtraction& dev : devices) {
    result.library.put(dev.variant, dev.polarity, dev.report.card);
    result.devices.push_back(std::move(dev));
  }
  return result;
}

}  // namespace mivtx::core
