// End-to-end characterization + extraction flow:
//   TCAD device simulation  ->  characteristic curves  ->  Level-70 card.
//
// This is the reproduction of the paper's Fig. 3 toolchain (Sentaurus +
// TCAD2SPICE in the original).  Running the full flow for all 8 devices
// takes tens of seconds; the PPA benches default to the cached cards in
// core/reference_cards.h, which this flow regenerates.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "core/technology.h"
#include "extract/dataset.h"
#include "extract/pipeline.h"
#include "runtime/exec_policy.h"

namespace mivtx::core {

// Extracted model cards for every (variant, polarity).
class ModelLibrary {
 public:
  void put(Variant v, Polarity pol, bsimsoi::SoiModelCard card);
  const bsimsoi::SoiModelCard& card(Variant v, Polarity pol) const;
  bool has(Variant v, Polarity pol) const;
  std::size_t size() const { return cards_.size(); }

  // Serialize as one .model line per card / parse back.
  std::string to_text() const;
  static ModelLibrary from_text(const std::string& text);

 private:
  std::map<std::string, bsimsoi::SoiModelCard> cards_;
};

// TCAD characterization of one device under the grid.
extract::CharacteristicSet characterize_device(const ProcessParams& process,
                                               Variant v, Polarity pol,
                                               const extract::SweepGrid& grid);

struct DeviceExtraction {
  Variant variant = Variant::kTraditional;
  Polarity polarity = Polarity::kNmos;
  extract::CharacteristicSet data;
  extract::ExtractionReport report;
};

struct FlowResult {
  ModelLibrary library;
  std::vector<DeviceExtraction> devices;  // all 8, trad/1/2/4 x n/p
};

// Execution knobs for run_full_flow, separate from the physics options so
// cache keys never depend on scheduling.
struct FlowOptions {
  // Worker threads for the 8 independent (variant, polarity) devices.
  // 1 = serial; 0 = hardware concurrency.  Results are identical for any
  // value (each device computes independently; assembly is in fixed order).
  std::size_t jobs = 1;
  // Optional artifact reuse: characterization sets ("char") and extraction
  // reports ("card") are looked up / stored by content hash; a warm cache
  // skips TCAD and extraction entirely.  See core/artifacts.h.
  runtime::ArtifactCache* cache = nullptr;
};

// Run TCAD + extraction for every variant and polarity (Table III).
FlowResult run_full_flow(const ProcessParams& process,
                         const extract::SweepGrid& grid = {},
                         const extract::ExtractionOptions& opts = {},
                         const FlowOptions& exec = {});

}  // namespace mivtx::core
