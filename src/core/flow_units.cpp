#include "core/flow_units.h"

#include "common/error.h"
#include "common/log.h"
#include "core/artifacts.h"
#include "runtime/artifact_cache.h"
#include "runtime/metrics.h"
#include "tcad/characterize.h"
#include "trace/trace.h"

namespace mivtx::core {

namespace {

// Fetch-or-compute scaffold shared by the units: cache lookup with corrupt
// payloads demoted to misses, metric counters named <domain>.cache_hit /
// <domain>.computed, and the key pinned against disk GC for the whole call.
template <typename T, typename Parse, typename Compute, typename Serialize>
T cached_unit(const char* what, const runtime::CacheKey& key,
              runtime::ArtifactCache* cache, Parse parse, Compute compute,
              Serialize serialize) {
  runtime::Metrics& metrics = runtime::Metrics::global();
  const runtime::CachePin pin(cache, key);
  if (cache != nullptr) {
    if (const auto hit = cache->get(key)) {
      try {
        T value = parse(*hit);
        metrics.add(std::string("flow.") + key.domain + ".cache_hit");
        return value;
      } catch (const Error& e) {
        MIVTX_WARN << "discarding unreadable cached " << what << " ("
                   << key.id() << "): " << e.what();
      }
    }
  }
  T value = compute();
  metrics.add(std::string("flow.") + key.domain + ".computed");
  if (cache != nullptr) cache->put(key, serialize(value));
  return value;
}

}  // namespace

extract::CharacteristicSet run_curves_unit(const ProcessParams& process,
                                           Variant v, Polarity pol,
                                           const extract::SweepGrid& grid,
                                           runtime::ArtifactCache* cache) {
  return cached_unit<extract::CharacteristicSet>(
      "characteristics", characterization_key(process, v, pol, grid), cache,
      parse_characteristics,
      [&] {
        MIVTX_INFO << "characterizing " << device_key(v, pol);
        trace::Span span("flow.characterize", "flow",
                         device_key(v, pol).c_str());
        runtime::ScopedTimer timer("flow.characterize");
        return characterize_device(process, v, pol, grid);
      },
      serialize_characteristics);
}

DeviceExtraction run_extraction_unit(const ProcessParams& process, Variant v,
                                     Polarity pol,
                                     const extract::SweepGrid& grid,
                                     const extract::ExtractionOptions& opts,
                                     runtime::ArtifactCache* cache) {
  trace::Span span("flow.device", "flow", device_key(v, pol).c_str());
  DeviceExtraction dev;
  dev.variant = v;
  dev.polarity = pol;
  dev.data = run_curves_unit(process, v, pol, grid, cache);
  dev.report = cached_unit<extract::ExtractionReport>(
      "extraction", extraction_key(process, v, pol, grid, opts), cache,
      parse_extraction,
      [&] {
        MIVTX_INFO << "extracting " << device_key(v, pol);
        trace::Span extract_span("flow.extract", "flow",
                                 device_key(v, pol).c_str());
        runtime::ScopedTimer timer("flow.extract");
        return extract::extract_card(dev.data, initial_card(process, v, pol),
                                     opts);
      },
      serialize_extraction);
  return dev;
}

}  // namespace mivtx::core
