// Resumable flow units: the TCAD -> extract pipeline split into
// individually cacheable stages.
//
// run_full_flow used to be one opaque computation; mivtx::serve (and any
// client that wants partial results) needs the stages addressable on their
// own, each keyed by its own StableHash digest (core/artifacts.h):
//
//   curves unit      "char" key   TCAD characterization of one device
//   extraction unit  "card" key   staged model extraction (consumes curves)
//   cell-PPA unit    "ppa"  key   transient measurement of one cell
//                                 (lives in core/ppa.h; listed here because
//                                 it is the third request unit serve exposes)
//
// Every unit is fetch-or-compute against an optional ArtifactCache: a warm
// cache resumes the flow mid-pipeline (cached curves + cold extraction
// runs only the fit; everything warm is pure deserialization).  Units pin
// their key for the duration of the call so the disk garbage collector
// (ArtifactCache::Options::max_disk_bytes) never evicts an artifact an
// in-flight computation is about to re-read or just produced.
#pragma once

#include "core/flow.h"

namespace mivtx::core {

// Stage 1: characteristic curves for one (variant, polarity) device.
extract::CharacteristicSet run_curves_unit(const ProcessParams& process,
                                           Variant v, Polarity pol,
                                           const extract::SweepGrid& grid,
                                           runtime::ArtifactCache* cache);

// Stage 2: staged extraction for one device.  Resumes from the stage-1
// artifact when cached; otherwise computes it (and stores it) first.
DeviceExtraction run_extraction_unit(const ProcessParams& process, Variant v,
                                     Polarity pol,
                                     const extract::SweepGrid& grid,
                                     const extract::ExtractionOptions& opts,
                                     runtime::ArtifactCache* cache);

}  // namespace mivtx::core
