#include "core/liberty.h"

#include <sstream>

#include "common/strings.h"
#include "layout/cell_layout.h"

namespace mivtx::core {

std::string export_liberty(const gatelevel::TimingModel& timing,
                           cells::Implementation impl,
                           const layout::DesignRules& rules,
                           const LibertyOptions& opts) {
  const layout::LayoutModel layout_model(rules);
  std::ostringstream os;
  std::string impl_tag = cells::impl_name(impl);
  for (char& c : impl_tag) {
    if (c == '-') c = '_';
  }

  os << "library (" << opts.library_prefix << "_" << impl_tag << ") {\n";
  os << "  comment : \"measured by the mivtx PPA engine; see EXPERIMENTS.md\";\n";
  os << "  time_unit : \"1ps\";\n";
  os << "  capacitive_load_unit (1, ff);\n";
  os << "  voltage_unit : \"1V\";\n";
  os << "  current_unit : \"1uA\";\n";
  os << "  nom_voltage : " << format("%.2f", opts.vdd) << ";\n";
  os << "  nom_temperature : " << format("%.1f", opts.temp_c) << ";\n";
  os << "  default_max_transition : 100;\n\n";

  const double slope_ps_per_ff = timing.slope(impl) * 1e12 * 1e-15;
  const double c_ref_ff = timing.c_ref * 1e15;

  for (cells::CellType type : cells::all_cells()) {
    const gatelevel::CellTiming& t = timing.timing(impl, type);
    const layout::CellLayout l = layout_model.layout_cell(type, impl);
    const double d_ref_ps = t.delay_ref * 1e12;
    const double cin_ff = t.input_cap * 1e15;

    os << "  cell (" << cells::cell_name(type) << ") {\n";
    os << "    area : " << format("%.6f", l.cell_area() * 1e12) << ";\n";
    for (const std::string& pin : cells::cell_input_names(type)) {
      os << "    pin (" << pin << ") {\n";
      os << "      direction : input;\n";
      os << "      capacitance : " << format("%.4f", cin_ff) << ";\n";
      os << "    }\n";
    }
    os << "    pin (Y) {\n";
    os << "      direction : output;\n";
    os << "      function : \"" << cells::cell_function_string(type)
       << "\";\n";
    for (const std::string& pin : cells::cell_input_names(type)) {
      os << "      timing () {\n";
      os << "        related_pin : \"" << pin << "\";\n";
      // Two-point linear load table anchored at the measured reference
      // load; delays at 1x and 4x the reference.
      const double d1 = d_ref_ps;
      const double d4 = d_ref_ps + slope_ps_per_ff * 3.0 * c_ref_ff;
      os << "        cell_rise (scalar) {\n";
      os << "          values (\"" << format("%.3f, %.3f", d1, d4)
         << "\"); /* at " << format("%.1f, %.1f", c_ref_ff, 4.0 * c_ref_ff)
         << " fF */\n";
      os << "        }\n";
      os << "        cell_fall (scalar) {\n";
      os << "          values (\"" << format("%.3f, %.3f", d1, d4)
         << "\");\n";
      os << "        }\n";
      os << "      }\n";
    }
    os << "    }\n";
    os << "  }\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace mivtx::core
