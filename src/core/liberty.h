// Simplified Liberty (.lib) export of the measured cell library.
//
// Produces one library per implementation with per-cell area (um^2), pin
// capacitances, the Liberty boolean function, and scalar timing (the PPA
// reference delay plus the measured load-sensitivity slope as a
// two-point linear table).  The output is a small but syntactically
// conventional subset of Liberty - enough for downstream scripts and for
// eyeballing the library, not a sign-off model.
#pragma once

#include <string>

#include "core/chip.h"

namespace mivtx::core {

struct LibertyOptions {
  std::string library_prefix = "mivtx";
  double vdd = 1.0;
  double temp_c = 25.0;
};

// One Liberty library for one implementation, from a measured timing model.
std::string export_liberty(const gatelevel::TimingModel& timing,
                           cells::Implementation impl,
                           const layout::DesignRules& rules = {},
                           const LibertyOptions& opts = {});

}  // namespace mivtx::core
