#include "core/ppa.h"

#include <cmath>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "common/strings.h"
#include "core/artifacts.h"
#include "lint/cell_rules.h"
#include "lint/circuit_rules.h"
#include "runtime/artifact_cache.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"
#include "spice/transient.h"
#include "trace/trace.h"
#include "waveform/measure.h"

namespace mivtx::core {

namespace {

Variant variant_of(cells::Implementation impl) {
  switch (impl) {
    case cells::Implementation::k2D: return Variant::kTraditional;
    case cells::Implementation::kMiv1Channel: return Variant::kMiv1Channel;
    case cells::Implementation::kMiv2Channel: return Variant::kMiv2Channel;
    case cells::Implementation::kMiv4Channel: return Variant::kMiv4Channel;
  }
  return Variant::kTraditional;
}

}  // namespace

PpaEngine::PpaEngine(const ModelLibrary& library, PpaOptions opts,
                     layout::DesignRules rules, runtime::ExecPolicy exec)
    : library_(library), opts_(opts), layout_(rules), exec_(exec) {}

cells::ModelSet PpaEngine::model_set(cells::Implementation impl) const {
  cells::ModelSet set;
  set.nmos = library_.card(variant_of(impl), Polarity::kNmos);
  // The bottom tier is always the traditional 2D FDSOI p-type device.
  set.pmos = library_.card(Variant::kTraditional, Polarity::kPmos);
  return set;
}

std::optional<std::vector<bool>> PpaEngine::sensitize(cells::CellType type,
                                                      std::size_t pin_index) {
  const std::size_t n = cells::cell_num_inputs(type);
  MIVTX_EXPECT(pin_index < n, "pin index out of range");
  const std::size_t combos = std::size_t{1} << (n - 1);
  for (std::size_t mask = 0; mask < combos; ++mask) {
    std::vector<bool> in(n, false);
    std::size_t bit = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == pin_index) continue;
      in[i] = (mask >> bit) & 1u;
      ++bit;
    }
    in[pin_index] = false;
    const bool f0 = cells::cell_logic(type, in);
    in[pin_index] = true;
    const bool f1 = cells::cell_logic(type, in);
    if (f0 != f1) {
      in[pin_index] = false;  // return the side values; pin value unused
      return in;
    }
  }
  return std::nullopt;
}

double pin_probe_t_stop(const PpaOptions& opts) {
  return opts.t_delay + opts.t_width + opts.t_delay + opts.t_width;
}

void apply_pin_stimulus(cells::CellNetlist& cell,
                        const std::vector<std::string>& input_names,
                        std::size_t pin, const std::vector<bool>& side,
                        const PpaOptions& opts) {
  // Side inputs at their sensitizing DC levels; the probed pin pulses
  // low -> high -> low.
  for (std::size_t i = 0; i < input_names.size(); ++i) {
    spice::Element& src = cell.circuit.element("V" + input_names[i]);
    if (i == pin) {
      spice::PulseSpec p;
      p.v1 = 0.0;
      p.v2 = opts.vdd;
      p.delay = opts.t_delay;
      p.rise = opts.t_edge;
      p.fall = opts.t_edge;
      p.width = opts.t_width;
      src.source = spice::SourceSpec::Pulse(p);
    } else {
      src.source = spice::SourceSpec::DC(side[i] ? opts.vdd : 0.0);
    }
  }
}

PinWaveMeasurement measure_pin_waveforms(const spice::TransientResult& tr,
                                         const cells::CellNetlist& cell,
                                         const std::string& pin_name,
                                         const PpaOptions& opts) {
  PinWaveMeasurement out;
  // Circuit node names are case-normalized to lower case.
  const auto& v_in = tr.v(to_lower(pin_name) + "_in");
  const auto& v_out = tr.v(cell.output_node);
  const double half = 0.5 * opts.vdd;

  const auto d_rise = waveform::propagation_delay(
      v_in, v_out, half, half, 0.0, waveform::EdgeKind::kRise,
      waveform::EdgeKind::kAny);
  const auto d_fall = waveform::propagation_delay(
      v_in, v_out, half, half, opts.t_delay + opts.t_width,
      waveform::EdgeKind::kFall, waveform::EdgeKind::kAny);
  if (d_rise) out.arcs.push_back(ArcMeasurement{pin_name, true, *d_rise});
  if (d_fall) out.arcs.push_back(ArcMeasurement{pin_name, false, *d_fall});

  // Supply power: current delivered by the VDD source (branch current is
  // + -> - through the source, so delivering current reads negative).
  out.power =
      -opts.vdd * tr.i(cell.vdd_source).average(0.0, pin_probe_t_stop(opts));
  return out;
}

PpaEngine::PinOutcome PpaEngine::measure_pin(
    cells::CellType type, cells::Implementation impl,
    const cells::ModelSet& models, std::size_t pin,
    const std::vector<bool>& side) const {
  PinOutcome out;
  const auto input_names = cells::cell_input_names(type);
  trace::Span span("ppa.pin", "ppa", input_names[pin].c_str());

  cells::CellNetlist cell =
      cells::build_cell(type, impl, models, opts_.parasitics, opts_.vdd);
  out.mivs = cell.mivs;
  apply_pin_stimulus(cell, input_names, pin, side, opts_);

  spice::TransientOptions topt;
  topt.t_stop = pin_probe_t_stop(opts_);
  topt.h_max = opts_.h_max;
  topt.newton = opts_.newton;
  runtime::Metrics::global().add("ppa.transients");
  const spice::TransientResult tr = spice::transient(cell.circuit, topt);
  if (!tr.ok) {
    MIVTX_WARN << cells::cell_name(type) << "/" << cells::impl_name(impl)
               << " pin " << input_names[pin]
               << ": transient failed: " << tr.error;
    return out;  // simulated == false
  }
  out.simulated = true;

  PinWaveMeasurement m =
      measure_pin_waveforms(tr, cell, input_names[pin], opts_);
  out.arcs = std::move(m.arcs);
  out.power = m.power;
  return out;
}

CellPpa PpaEngine::measure_uncached(cells::CellType type,
                                    cells::Implementation impl) const {
  trace::Span span("ppa.cell", "ppa",
                   (std::string(cells::cell_name(type)) + "/" +
                    cells::impl_name(impl))
                       .c_str());
  runtime::ScopedTimer timer("ppa.measure");
  CellPpa result;
  result.type = type;
  result.impl = impl;
  const layout::CellLayout cell_layout = layout_.layout_cell(type, impl);
  result.area = cell_layout.cell_area();

  const cells::ModelSet models = model_set(impl);
  const auto input_names = cells::cell_input_names(type);

  // Pre-simulation gate: a floating gate, a KOZ violation or a singular
  // netlist must fail loudly here, not corrupt the Fig. 5 averages with a
  // quietly-diverged transient.
  if (opts_.lint) {
    lint::DiagnosticSink sink;
    lint::lint_topology(cells::cell_topology(type), sink);
    lint::lint_layout(cell_layout, layout_.rules(), sink);
    const cells::CellNetlist probe =
        cells::build_cell(type, impl, models, opts_.parasitics, opts_.vdd);
    lint::lint_circuit(probe.circuit, sink);
    if (sink.has_errors()) {
      MIVTX_WARN << cells::cell_name(type) << "/" << cells::impl_name(impl)
                 << " rejected by lint gate:\n"
                 << sink.render_text();
      return result;  // ok == false
    }
  }

  // Pin sensitizations (serial: cheap truth-table walk, deterministic
  // warnings), then the expensive transients fan out per pin.
  std::vector<std::optional<std::vector<bool>>> sides(input_names.size());
  for (std::size_t pin = 0; pin < input_names.size(); ++pin) {
    sides[pin] = sensitize(type, pin);
    if (!sides[pin]) {
      MIVTX_WARN << cells::cell_name(type) << ": pin " << input_names[pin]
                 << " cannot be sensitized";
    }
  }

  const std::vector<PinOutcome> outcomes =
      runtime::parallel_map<PinOutcome>(
          exec_.pool, input_names.size(), [&](std::size_t pin) {
            if (!sides[pin]) return PinOutcome{};
            return measure_pin(type, impl, models, pin, *sides[pin]);
          });

  // Ordered reduction: accumulate in pin order exactly as the serial loop
  // did, so delay/power averages are bit-identical for any pool size.
  double delay_sum = 0.0;
  std::size_t delay_count = 0;
  double power_sum = 0.0;
  std::size_t power_count = 0;
  for (const PinOutcome& out : outcomes) {
    if (!out.simulated) continue;
    result.mivs = out.mivs;
    for (const ArcMeasurement& arc : out.arcs) {
      delay_sum += arc.delay;
      ++delay_count;
      result.arcs.push_back(arc);
    }
    power_sum += out.power;
    ++power_count;
  }

  if (delay_count > 0 && power_count > 0) {
    result.ok = true;
    result.delay = delay_sum / static_cast<double>(delay_count);
    result.power = power_sum / static_cast<double>(power_count);
    result.pdp = result.delay * result.power;
  }
  return result;
}

CellPpa PpaEngine::measure(cells::CellType type,
                           cells::Implementation impl) const {
  runtime::Metrics& metrics = runtime::Metrics::global();
  if (exec_.cache != nullptr) {
    const runtime::CacheKey key =
        ppa_key(model_set(impl), type, impl, opts_, layout_.rules());
    if (const auto hit = exec_.cache->get(key)) {
      try {
        CellPpa cached = parse_cell_ppa(*hit);
        metrics.add("ppa.cache_hit");
        return cached;
      } catch (const Error& e) {
        MIVTX_WARN << "discarding unreadable cached PPA for "
                   << cells::cell_name(type) << "/" << cells::impl_name(impl)
                   << ": " << e.what();
      }
    }
    CellPpa result = measure_uncached(type, impl);
    metrics.add("ppa.computed");
    exec_.cache->put(key, serialize_cell_ppa(result));
    return result;
  }
  CellPpa result = measure_uncached(type, impl);
  metrics.add("ppa.computed");
  return result;
}

std::vector<CellPpa> PpaEngine::measure_all() const {
  trace::Span span("ppa.measure_all", "ppa");
  std::vector<std::pair<cells::CellType, cells::Implementation>> order;
  for (cells::CellType type : cells::all_cells()) {
    for (cells::Implementation impl : cells::all_implementations()) {
      order.emplace_back(type, impl);
    }
  }
  // (cell, implementation) pairs are independent; nested per-pin fan-out
  // shares the same pool (TaskGroup::wait helps, so this cannot deadlock).
  return runtime::parallel_map<CellPpa>(
      exec_.pool, order.size(), [&](std::size_t i) {
        return measure(order[i].first, order[i].second);
      });
}

std::vector<ImplementationSummary> summarize(const std::vector<CellPpa>& all) {
  std::vector<ImplementationSummary> out;
  for (cells::Implementation impl : cells::all_implementations()) {
    ImplementationSummary s;
    s.impl = impl;
    std::size_t n = 0;
    for (const CellPpa& c : all) {
      if (c.impl != impl || !c.ok) continue;
      s.mean_delay += c.delay;
      s.mean_power += c.power;
      s.mean_area += c.area;
      s.mean_pdp += c.pdp;
      ++n;
    }
    if (n > 0) {
      const double inv = 1.0 / static_cast<double>(n);
      s.mean_delay *= inv;
      s.mean_power *= inv;
      s.mean_area *= inv;
      s.mean_pdp *= inv;
    }
    out.push_back(s);
  }
  return out;
}

}  // namespace mivtx::core
