// PPA measurement engine (paper §IV / Fig. 5).
//
// For every (cell, implementation) it builds the parasitic-annotated
// netlist, then for each input pin finds a side-input assignment that makes
// the output sensitive to that pin, applies a full-swing pulse and runs a
// transient.  Reported metrics:
//   delay  - mean 50%-to-50% propagation delay over all pin arcs and both
//            edges (the paper's "average propagation delay of the outputs")
//   power  - mean VDD-rail power over the switching window, averaged over
//            the pin simulations
//   area   - cell layout area from layout/cell_layout.h
//   pdp    - power * delay
#pragma once

#include <optional>
#include <vector>

#include "cells/netgen.h"
#include "core/flow.h"
#include "layout/cell_layout.h"
#include "runtime/exec_policy.h"
#include "spice/dcop.h"
#include "spice/transient.h"

namespace mivtx::core {

struct ArcMeasurement {
  std::string pin;
  bool input_rising = false;
  double delay = 0.0;  // s
};

struct CellPpa {
  cells::CellType type = cells::CellType::kInv1;
  cells::Implementation impl = cells::Implementation::k2D;
  bool ok = false;
  double delay = 0.0;  // s (average over arcs)
  double power = 0.0;  // W (average)
  double area = 0.0;   // m^2
  double pdp = 0.0;    // J
  cells::MivStats mivs;
  std::vector<ArcMeasurement> arcs;
};

struct PpaOptions {
  double vdd = 1.0;
  double t_edge = 20e-12;    // input rise/fall
  double t_delay = 200e-12;  // time before the first edge
  double t_width = 500e-12;  // pulse width
  double h_max = 10e-12;     // transient step cap
  // Solver-core selection for the measurement transients (backend,
  // bypass tolerance, ...); defaults pick the sparse core for every cell.
  spice::NewtonOptions newton;
  cells::ParasiticSpec parasitics;
  // Mandatory pre-simulation gate: lint the cell topology, the rule-driven
  // layout (KOZ checks), and the generated netlist before spending any
  // transient time on it.  A cell failing the gate comes back with
  // ok == false and no measurements.  Opt out for deliberately ill-formed
  // experiments.
  bool lint = true;
};

// Pin-probe primitives shared by PpaEngine::measure_pin and the
// lane-packed variability engine (core/variability.h), which packs one
// Monte-Carlo sample per SIMD lane over the same per-pin transient.

// Total simulated time of one pin probe (pulse up, pulse down, recovery).
double pin_probe_t_stop(const PpaOptions& opts);

// Drive a built cell for probing `pin`: side inputs at their sensitizing
// DC levels, the probed pin pulsing low -> high -> low.
void apply_pin_stimulus(cells::CellNetlist& cell,
                        const std::vector<std::string>& input_names,
                        std::size_t pin, const std::vector<bool>& side,
                        const PpaOptions& opts);

// Arc delays and average VDD-rail power extracted from one pin-probe
// transient (`pin_name` is the un-normalized input pin name).
struct PinWaveMeasurement {
  std::vector<ArcMeasurement> arcs;
  double power = 0.0;
};
PinWaveMeasurement measure_pin_waveforms(const spice::TransientResult& tr,
                                         const cells::CellNetlist& cell,
                                         const std::string& pin_name,
                                         const PpaOptions& opts);

class PpaEngine {
 public:
  // `exec` controls scheduling and artifact reuse only; measured numbers
  // are identical for any pool size (per-pin results reduce in pin order)
  // and any cache state (keys hash the cards + every physics option).
  PpaEngine(const ModelLibrary& library, PpaOptions opts = {},
            layout::DesignRules rules = {}, runtime::ExecPolicy exec = {});

  // Model set used for an implementation (n-type per variant, p-type
  // always traditional).
  cells::ModelSet model_set(cells::Implementation impl) const;

  CellPpa measure(cells::CellType type, cells::Implementation impl) const;
  // All 14 cells x 4 implementations.
  std::vector<CellPpa> measure_all() const;

  // Pin sensitization: values for the other inputs so the output follows
  // (or inverts) pin `pin_index`.  nullopt if the pin cannot toggle the
  // output (never the case for these cells).
  static std::optional<std::vector<bool>> sensitize(cells::CellType type,
                                                    std::size_t pin_index);

  const layout::DesignRules& rules() const { return layout_.rules(); }

 private:
  // Per-pin measurement, the unit of intra-cell parallelism.
  struct PinOutcome {
    bool simulated = false;  // transient converged
    std::vector<ArcMeasurement> arcs;
    double power = 0.0;
    cells::MivStats mivs;
  };
  PinOutcome measure_pin(cells::CellType type, cells::Implementation impl,
                         const cells::ModelSet& models, std::size_t pin,
                         const std::vector<bool>& side) const;
  CellPpa measure_uncached(cells::CellType type,
                           cells::Implementation impl) const;

  const ModelLibrary& library_;
  PpaOptions opts_;
  layout::LayoutModel layout_;
  runtime::ExecPolicy exec_;
};

// Per-implementation averages across all cells (the summary numbers the
// paper quotes: delay -3 %/-2 %/+2 %, power -0.5 %/-1 %/-2 %, ...).
struct ImplementationSummary {
  cells::Implementation impl = cells::Implementation::k2D;
  double mean_delay = 0.0;
  double mean_power = 0.0;
  double mean_area = 0.0;
  double mean_pdp = 0.0;
};

std::vector<ImplementationSummary> summarize(const std::vector<CellPpa>& all);

}  // namespace mivtx::core
