// Cached extracted model cards for the nominal process.
//
// These are the verbatim output of core::run_full_flow() under the default
// ProcessParams / SweepGrid / ExtractionOptions (see tools in bench/ and
// tests/test_flow.cpp which re-derive and cross-check them).  The PPA
// benches default to this library so they start in milliseconds instead of
// re-running the TCAD characterization; pass --extract to any PPA bench to
// regenerate from scratch.
#pragma once

#include "core/flow.h"

namespace mivtx::core {

// The cached library (8 cards: {trad,1ch,2ch,4ch} x {n,p}).
const ModelLibrary& reference_model_library();

// The raw .model lines backing the cache.
const char* reference_model_text();

}  // namespace mivtx::core
