#include "core/technology.h"

namespace mivtx::core {

const std::vector<Variant>& all_variants() {
  static const std::vector<Variant> kAll = {
      Variant::kTraditional, Variant::kMiv1Channel, Variant::kMiv2Channel,
      Variant::kMiv4Channel};
  return kAll;
}

tcad::DeviceSpec device_spec(const ProcessParams& p, Variant v,
                             Polarity pol) {
  tcad::DeviceSpec spec = tcad::DeviceSpec::for_variant(v, pol);
  spec.tsi = p.t_si;
  spec.tox = p.t_ox;
  // spec.t_liner is NOT tied to p.t_ox: for MIV variants for_variant()
  // already scaled the effective liner dielectric by the pillar/width
  // fraction (see tcad/device.cpp); overriding it with the physical 1 nm
  // liner would over-couple the extruded 2-D side gate.
  spec.l_src = p.l_src;
  spec.l_gate = p.l_gate;
  spec.l_spacer = p.t_spacer;
  spec.w_total = p.w_src;
  spec.n_src = p.n_src;
  return spec;
}

bsimsoi::SoiModelCard initial_card(const ProcessParams& p, Variant v,
                                   Polarity pol) {
  bsimsoi::SoiModelCard card;
  card.name = device_key(v, pol);
  card.polarity = pol == Polarity::kNmos ? bsimsoi::Polarity::kNmos
                                         : bsimsoi::Polarity::kPmos;
  card.tsi = p.t_si;
  card.tox = p.t_ox;
  card.tbox = p.t_box;
  card.l = p.l_gate;
  card.w = p.w_src;
  card.tnom = p.tnom_c;
  card.nf = tcad::variant_channels(v);
  if (card.polarity == bsimsoi::Polarity::kPmos) {
    card.vth0 = -0.35;
    card.u0 = 0.012;  // hole mobility seed
  }
  return card;
}

std::string device_key(Variant v, Polarity pol) {
  std::string name = pol == Polarity::kNmos ? "nmos_" : "pmos_";
  switch (v) {
    case Variant::kTraditional: name += "trad"; break;
    case Variant::kMiv1Channel: name += "1ch"; break;
    case Variant::kMiv2Channel: name += "2ch"; break;
    case Variant::kMiv4Channel: name += "4ch"; break;
  }
  return name;
}

}  // namespace mivtx::core
