// Top-level technology description (paper Table I) and the derived
// per-variant device specs / initial model cards.
#pragma once

#include <string>
#include <vector>

#include "bsimsoi/params.h"
#include "tcad/device.h"

namespace mivtx::core {

using tcad::Polarity;
using tcad::Variant;

struct ProcessParams {
  // Process group.
  double t_si = 7e-9;       // silicon thickness
  double h_src = 7e-9;      // source/drain region height (== t_si, raised S/D
                            // is not modelled separately)
  double t_ox = 1e-9;       // oxide liner / gate oxide thickness
  double n_src = 1e25;      // source/drain doping (m^-3; 1e19 cm^-3)
  double t_spacer = 10e-9;  // spacer thickness
  double t_box = 100e-9;    // buried oxide thickness
  // Design group.
  double t_miv = 25e-9;   // MIV thickness
  double l_src = 48e-9;   // source/drain region length
  double w_src = 192e-9;  // source/drain region width (equivalent W)
  double l_gate = 24e-9;  // gate length
  // Operating point.
  double vdd = 1.0;
  double tnom_c = 25.0;
};

// All four variants in paper order (Table III column order is 4/2/1/trad;
// this list is trad/1/2/4 — benches order their own columns).
const std::vector<Variant>& all_variants();

// TCAD device spec for a (variant, polarity) under this process.
tcad::DeviceSpec device_spec(const ProcessParams& p, Variant v, Polarity pol);

// Initial (pre-extraction) model card: geometry and flags per Table II.
bsimsoi::SoiModelCard initial_card(const ProcessParams& p, Variant v,
                                   Polarity pol);

// Canonical card/device name, e.g. "nmos_2ch", "pmos_trad".
std::string device_key(Variant v, Polarity pol);

}  // namespace mivtx::core
