#include "core/variability.h"

#include <cmath>
#include <optional>

#include "common/error.h"
#include "common/rng.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"
#include "trace/trace.h"

namespace mivtx::core {

bsimsoi::SoiModelCard perturb_card(const bsimsoi::SoiModelCard& card,
                                   double dvth, double u0_scale) {
  bsimsoi::SoiModelCard out = card;
  // VTH0 carries the polarity sign; shift its magnitude.
  const double sign = out.vth0 < 0.0 ? -1.0 : 1.0;
  out.vth0 = sign * std::max(0.01, std::fabs(out.vth0) + dvth);
  out.u0 = std::max(1e-4, out.u0 * u0_scale);
  return out;
}

VariabilityStats run_variability(const ModelLibrary& library,
                                 cells::CellType type,
                                 cells::Implementation impl,
                                 const VariationSpec& spec,
                                 const PpaOptions& ppa_opts,
                                 const runtime::ExecPolicy& exec) {
  MIVTX_EXPECT(spec.samples >= 2, "need at least 2 Monte-Carlo samples");
  trace::Span run_span("variability.run", "variability");
  runtime::ScopedTimer timer("variability.run");
  VariabilityStats stats;
  stats.type = type;
  stats.impl = impl;

  const Rng base(spec.seed + static_cast<std::uint64_t>(type) * 131 +
                 static_cast<std::uint64_t>(impl));

  // One cell measurement per Monte-Carlo sample; each sample owns an
  // independent split of the base stream, so its draws do not depend on
  // which worker runs it or in what order.
  const std::vector<std::optional<CellPpa>> samples =
      runtime::parallel_map<std::optional<CellPpa>>(
          exec.pool, spec.samples, [&](std::size_t s) -> std::optional<CellPpa> {
            trace::Span span("variability.sample", "variability");
            span.annotate("sample", static_cast<double>(s));
            Rng rng = base.split(s);
            // Correlated sample: both device types shift together (worst
            // case for delay spread; uncorrelated per-device variation
            // partially averages out inside a cell).
            const double dvth = rng.normal(0.0, spec.sigma_vth);
            const double u0s = std::exp(rng.normal(0.0, spec.sigma_u0_rel));

            ModelLibrary sampled;
            for (Polarity pol : {Polarity::kNmos, Polarity::kPmos}) {
              for (Variant v : all_variants()) {
                if (!library.has(v, pol)) continue;
                sampled.put(v, pol,
                            perturb_card(library.card(v, pol), dvth, u0s));
              }
            }
            // Samples already saturate the pool; keep the inner engine
            // serial but let it share the artifact cache.
            runtime::ExecPolicy inner;
            inner.cache = exec.cache;
            PpaEngine engine(sampled, ppa_opts, {}, inner);
            CellPpa ppa = engine.measure(type, impl);
            if (!ppa.ok) return std::nullopt;
            return ppa;
          });

  // Ordered reduction: identical float accumulation for any pool size.
  double sum = 0.0, sum_sq = 0.0, sum_p = 0.0;
  std::size_t ok = 0;
  for (const auto& ppa : samples) {
    if (!ppa) continue;
    ++ok;
    sum += ppa->delay;
    sum_sq += ppa->delay * ppa->delay;
    sum_p += ppa->power;
    stats.worst_delay = std::max(stats.worst_delay, ppa->delay);
  }
  MIVTX_EXPECT(ok >= 2, "too few converged Monte-Carlo samples");
  stats.samples = ok;
  const double n = static_cast<double>(ok);
  stats.mean_delay = sum / n;
  stats.mean_power = sum_p / n;
  const double var = std::max(0.0, sum_sq / n - stats.mean_delay * stats.mean_delay);
  stats.sigma_delay = std::sqrt(var * n / (n - 1.0));
  return stats;
}

}  // namespace mivtx::core
