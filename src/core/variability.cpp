#include "core/variability.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace mivtx::core {

bsimsoi::SoiModelCard perturb_card(const bsimsoi::SoiModelCard& card,
                                   double dvth, double u0_scale) {
  bsimsoi::SoiModelCard out = card;
  // VTH0 carries the polarity sign; shift its magnitude.
  const double sign = out.vth0 < 0.0 ? -1.0 : 1.0;
  out.vth0 = sign * std::max(0.01, std::fabs(out.vth0) + dvth);
  out.u0 = std::max(1e-4, out.u0 * u0_scale);
  return out;
}

VariabilityStats run_variability(const ModelLibrary& library,
                                 cells::CellType type,
                                 cells::Implementation impl,
                                 const VariationSpec& spec,
                                 const PpaOptions& ppa_opts) {
  MIVTX_EXPECT(spec.samples >= 2, "need at least 2 Monte-Carlo samples");
  VariabilityStats stats;
  stats.type = type;
  stats.impl = impl;

  PpaEngine nominal_engine(library, ppa_opts);
  const cells::ModelSet nominal = nominal_engine.model_set(impl);

  Rng rng(spec.seed + static_cast<std::uint64_t>(type) * 131 +
          static_cast<std::uint64_t>(impl));

  double sum = 0.0, sum_sq = 0.0, sum_p = 0.0;
  std::size_t ok = 0;
  for (std::size_t s = 0; s < spec.samples; ++s) {
    // Correlated sample: both device types shift together (worst case for
    // delay spread; uncorrelated per-device variation partially averages
    // out inside a cell).
    const double dvth = rng.normal(0.0, spec.sigma_vth);
    const double u0s = std::exp(rng.normal(0.0, spec.sigma_u0_rel));

    ModelLibrary sampled;
    for (Polarity pol : {Polarity::kNmos, Polarity::kPmos}) {
      for (Variant v : all_variants()) {
        if (!library.has(v, pol)) continue;
        sampled.put(v, pol, perturb_card(library.card(v, pol), dvth, u0s));
      }
    }
    PpaEngine engine(sampled, ppa_opts);
    const CellPpa ppa = engine.measure(type, impl);
    if (!ppa.ok) continue;
    ++ok;
    sum += ppa.delay;
    sum_sq += ppa.delay * ppa.delay;
    sum_p += ppa.power;
    stats.worst_delay = std::max(stats.worst_delay, ppa.delay);
  }
  MIVTX_EXPECT(ok >= 2, "too few converged Monte-Carlo samples");
  stats.samples = ok;
  const double n = static_cast<double>(ok);
  stats.mean_delay = sum / n;
  stats.mean_power = sum_p / n;
  const double var = std::max(0.0, sum_sq / n - stats.mean_delay * stats.mean_delay);
  stats.sigma_delay = std::sqrt(var * n / (n - 1.0));
  return stats;
}

}  // namespace mivtx::core
