#include "core/variability.h"

#include <cmath>
#include <optional>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "common/rng.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"
#include "spice/corner.h"
#include "trace/trace.h"

namespace mivtx::core {

bsimsoi::SoiModelCard perturb_card(const bsimsoi::SoiModelCard& card,
                                   double dvth, double u0_scale) {
  bsimsoi::SoiModelCard out = card;
  // VTH0 carries the polarity sign; shift its magnitude.
  const double sign = out.vth0 < 0.0 ? -1.0 : 1.0;
  out.vth0 = sign * std::max(0.01, std::fabs(out.vth0) + dvth);
  out.u0 = std::max(1e-4, out.u0 * u0_scale);
  return out;
}

namespace {

// Delay/power result of one Monte-Carlo sample (the slice of CellPpa the
// statistics consume).
struct SampleResult {
  double delay = 0.0;
  double power = 0.0;
};

ModelLibrary sample_library(const ModelLibrary& library, double dvth,
                            double u0s) {
  ModelLibrary sampled;
  for (Polarity pol : {Polarity::kNmos, Polarity::kPmos}) {
    for (Variant v : all_variants()) {
      if (!library.has(v, pol)) continue;
      sampled.put(v, pol, perturb_card(library.card(v, pol), dvth, u0s));
    }
  }
  return sampled;
}

// Reference engine: one full PpaEngine measurement per sample, fanned out
// over the pool.
std::vector<std::optional<SampleResult>> run_per_sample(
    const ModelLibrary& library, cells::CellType type,
    cells::Implementation impl, const VariationSpec& spec,
    const PpaOptions& ppa_opts, const runtime::ExecPolicy& exec,
    const Rng& base) {
  return runtime::parallel_map<std::optional<SampleResult>>(
      exec.pool, spec.samples,
      [&](std::size_t s) -> std::optional<SampleResult> {
        trace::Span span("variability.sample", "variability");
        span.annotate("sample", static_cast<double>(s));
        Rng rng = base.split(s);
        // Correlated sample: both device types shift together (worst
        // case for delay spread; uncorrelated per-device variation
        // partially averages out inside a cell).
        const double dvth = rng.normal(0.0, spec.sigma_vth);
        const double u0s = std::exp(rng.normal(0.0, spec.sigma_u0_rel));

        const ModelLibrary sampled = sample_library(library, dvth, u0s);
        // Samples already saturate the pool; keep the inner engine
        // serial but let it share the artifact cache.
        runtime::ExecPolicy inner;
        inner.cache = exec.cache;
        PpaEngine engine(sampled, ppa_opts, {}, inner);
        CellPpa ppa = engine.measure(type, impl);
        if (!ppa.ok) return std::nullopt;
        return SampleResult{ppa.delay, ppa.power};
      });
}

// Lane-packed engine: every pin probe runs all samples as ONE lockstepped
// corner transient (spice::corner_transient), one Monte-Carlo sample per
// SIMD lane of the batched BSIMSOI kernel.  The RNG streams are the same
// counter-based splits as run_per_sample, so both engines simulate
// identical sampled circuits.
std::vector<std::optional<SampleResult>> run_lane_packed(
    const ModelLibrary& library, cells::CellType type,
    cells::Implementation impl, const VariationSpec& spec,
    const PpaOptions& ppa_opts, const Rng& base,
    std::size_t& lockstep_groups) {
  const std::size_t num_samples = spec.samples;
  const auto input_names = cells::cell_input_names(type);

  std::vector<cells::ModelSet> sets;
  sets.reserve(num_samples);
  for (std::size_t s = 0; s < num_samples; ++s) {
    Rng rng = base.split(s);
    const double dvth = rng.normal(0.0, spec.sigma_vth);
    const double u0s = std::exp(rng.normal(0.0, spec.sigma_u0_rel));
    const ModelLibrary sampled = sample_library(library, dvth, u0s);
    // Cheap throwaway engine purely for the variant -> card mapping;
    // ModelSet copies the cards out of the sampled library.
    sets.push_back(PpaEngine(sampled, ppa_opts).model_set(impl));
  }

  struct Acc {
    double delay_sum = 0.0;
    std::size_t delay_count = 0;
    double power_sum = 0.0;
    std::size_t power_count = 0;
    bool failed = false;  // any pin transient failed for this sample
  };
  std::vector<Acc> acc(num_samples);

  spice::TransientOptions topt;
  topt.t_stop = pin_probe_t_stop(ppa_opts);
  topt.h_max = ppa_opts.h_max;
  topt.newton = ppa_opts.newton;

  for (std::size_t pin = 0; pin < input_names.size(); ++pin) {
    const auto side = PpaEngine::sensitize(type, pin);
    if (!side) {
      MIVTX_WARN << cells::cell_name(type) << ": pin " << input_names[pin]
                 << " cannot be sensitized";
      continue;
    }
    trace::Span span("variability.pin_group", "variability",
                     input_names[pin].c_str());

    std::vector<cells::CellNetlist> cells_built;
    cells_built.reserve(num_samples);
    std::vector<const spice::Circuit*> corners;
    corners.reserve(num_samples);
    for (std::size_t s = 0; s < num_samples; ++s) {
      cells_built.push_back(cells::build_cell(
          type, impl, sets[s], ppa_opts.parasitics, ppa_opts.vdd));
      apply_pin_stimulus(cells_built.back(), input_names, pin, *side,
                         ppa_opts);
      corners.push_back(&cells_built.back().circuit);
    }

    runtime::Metrics::global().add("variability.pin_groups");
    const spice::CornerTransientResult group =
        spice::corner_transient(corners, topt);
    if (group.lockstep) ++lockstep_groups;

    for (std::size_t s = 0; s < num_samples; ++s) {
      const spice::TransientResult& tr = group.lanes[s];
      if (!tr.ok) {
        MIVTX_WARN << cells::cell_name(type) << "/" << cells::impl_name(impl)
                   << " pin " << input_names[pin] << " sample " << s
                   << ": transient failed: " << tr.error;
        acc[s].failed = true;
        continue;
      }
      const PinWaveMeasurement m = measure_pin_waveforms(
          tr, cells_built[s], input_names[pin], ppa_opts);
      for (const ArcMeasurement& arc : m.arcs) {
        acc[s].delay_sum += arc.delay;
        acc[s].delay_count += 1;
      }
      acc[s].power_sum += m.power;
      acc[s].power_count += 1;
    }
  }

  std::vector<std::optional<SampleResult>> out(num_samples);
  for (std::size_t s = 0; s < num_samples; ++s) {
    if (acc[s].failed || acc[s].delay_count == 0 || acc[s].power_count == 0)
      continue;
    out[s] = SampleResult{
        acc[s].delay_sum / static_cast<double>(acc[s].delay_count),
        acc[s].power_sum / static_cast<double>(acc[s].power_count)};
  }
  return out;
}

}  // namespace

VariabilityStats run_variability(const ModelLibrary& library,
                                 cells::CellType type,
                                 cells::Implementation impl,
                                 const VariationSpec& spec,
                                 const PpaOptions& ppa_opts,
                                 const runtime::ExecPolicy& exec) {
  MIVTX_EXPECT(spec.samples >= 2, "need at least 2 Monte-Carlo samples");
  trace::Span run_span("variability.run", "variability");
  runtime::ScopedTimer timer("variability.run");
  VariabilityStats stats;
  stats.type = type;
  stats.impl = impl;

  const Rng base(spec.seed + static_cast<std::uint64_t>(type) * 131 +
                 static_cast<std::uint64_t>(impl));

  // One cell measurement per Monte-Carlo sample; each sample owns an
  // independent split of the base stream, so its draws do not depend on
  // which engine, worker, or lane runs it.
  const std::vector<std::optional<SampleResult>> samples =
      spec.engine == VariabilityEngine::kLanePacked
          ? run_lane_packed(library, type, impl, spec, ppa_opts, base,
                            stats.lockstep_groups)
          : run_per_sample(library, type, impl, spec, ppa_opts, exec, base);

  // Ordered reduction: identical float accumulation for any pool size.
  double sum = 0.0, sum_sq = 0.0, sum_p = 0.0;
  std::size_t ok = 0;
  for (const auto& sample : samples) {
    if (!sample) continue;
    ++ok;
    sum += sample->delay;
    sum_sq += sample->delay * sample->delay;
    sum_p += sample->power;
    stats.worst_delay = std::max(stats.worst_delay, sample->delay);
  }
  MIVTX_EXPECT(ok >= 2, "too few converged Monte-Carlo samples");
  stats.samples = ok;
  const double n = static_cast<double>(ok);
  stats.mean_delay = sum / n;
  stats.mean_power = sum_p / n;
  const double var = std::max(0.0, sum_sq / n - stats.mean_delay * stats.mean_delay);
  stats.sigma_delay = std::sqrt(var * n / (n - 1.0));
  return stats;
}

}  // namespace mivtx::core
