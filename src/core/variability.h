// Process-variation extension: Monte-Carlo sampling of threshold voltage
// and mobility on the extracted cards, propagated through transient cell
// simulation.  Answers a question the paper leaves open - whether the
// small MIV-transistor delay advantages survive local variation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ppa.h"

namespace mivtx::core {

// How the Monte-Carlo samples are scheduled onto the solver:
//   kPerSample   — one full PpaEngine measurement per sample (thread-pool
//                  fan-out; the reference path).
//   kLanePacked  — all samples of each pin probe run as ONE lockstepped
//                  spice::corner_transient, one sample per SIMD lane of
//                  the batched BSIMSOI kernel.  Every sample satisfies the
//                  same Newton/LTE tolerances on a shared (conservatively
//                  finer) time grid, so the statistics agree with
//                  kPerSample to well within sampling noise, at a fraction
//                  of the device-evaluation cost.
enum class VariabilityEngine { kPerSample, kLanePacked };

struct VariationSpec {
  // 1-sigma local variation applied per sample (global, all devices of the
  // cell shifted together - the pessimistic correlated case).
  double sigma_vth = 0.015;   // V; AVt/sqrt(WL)-flavored magnitude
  double sigma_u0_rel = 0.03; // relative mobility variation
  std::size_t samples = 25;
  std::uint64_t seed = 0x5eed;
  VariabilityEngine engine = VariabilityEngine::kPerSample;
};

struct VariabilityStats {
  cells::CellType type = cells::CellType::kInv1;
  cells::Implementation impl = cells::Implementation::k2D;
  std::size_t samples = 0;
  double mean_delay = 0.0;   // s
  double sigma_delay = 0.0;  // s
  double worst_delay = 0.0;  // s (max over samples)
  double mean_power = 0.0;   // W
  // kLanePacked only: pin-probe groups that actually ran the lockstep
  // lane-packed engine (vs its scalar per-lane fallback).
  std::size_t lockstep_groups = 0;
};

// Sample-perturbed copies of a card (VTH0 shifted, U0 scaled).
bsimsoi::SoiModelCard perturb_card(const bsimsoi::SoiModelCard& card,
                                   double dvth, double u0_scale);

// Monte-Carlo delay/power distribution of one cell/implementation.
// Each sample draws from its own counter-based Rng stream
// (rng.split(sample)), so the sequence of perturbations - and therefore
// every statistic - is identical whether samples run serially or fan out
// across `exec.pool` in any interleaving.
VariabilityStats run_variability(const ModelLibrary& library,
                                 cells::CellType type,
                                 cells::Implementation impl,
                                 const VariationSpec& spec = {},
                                 const PpaOptions& ppa_opts = {},
                                 const runtime::ExecPolicy& exec = {});

}  // namespace mivtx::core
