#include "extract/dataset.h"

#include "common/error.h"
#include "linalg/vector_ops.h"

namespace mivtx::extract {

namespace {
void check_curve(const Curve& c, const char* what) {
  MIVTX_EXPECT(!c.empty(), std::string(what) + ": empty curve");
  for (std::size_t i = 1; i < c.size(); ++i)
    MIVTX_EXPECT(c[i].x > c[i - 1].x,
                 std::string(what) + ": x must be increasing");
}
}  // namespace

void CharacteristicSet::validate() const {
  check_curve(idvg_low, "idvg_low");
  check_curve(idvg_high, "idvg_high");
  MIVTX_EXPECT(!idvd.empty(), "no output curves");
  for (const OutputCurve& oc : idvd) check_curve(oc.curve, "idvd");
  check_curve(cv, "cv");
}

std::vector<double> SweepGrid::vg_points() const {
  return linalg::linspace(0.0, vdd, n_vg);
}

std::vector<double> SweepGrid::vd_points() const {
  return linalg::linspace(0.0, vdd, n_vd);
}

std::vector<double> SweepGrid::cv_points() const {
  return linalg::linspace(0.0, vdd, n_cv);
}

}  // namespace mivtx::extract
