// Characterization dataset: the "measured" curves one extraction run fits.
//
// Mirrors the paper's Fig. 3 inputs:
//   - low-drain transfer curve  (Id-Vg at |Vds| = 0.05 V)
//   - high-drain transfer curve (Id-Vg at |Vds| = 1.0 V)
//   - output curves             (Id-Vd at |Vgs| = 0.4 ... 1.0 V)
//   - gate capacitance          (Cgg-Vg at |Vds| = 0)
// All sweeps are in magnitude space (see tcad/characterize.h).
#pragma once

#include <string>
#include <vector>

#include "common/curve.h"

namespace mivtx::extract {

struct OutputCurve {
  double vgs = 0.0;  // magnitude
  Curve curve;       // |Id| vs |Vd|
};

struct CharacteristicSet {
  std::string device_name;

  double vds_low = 0.05;
  double vds_high = 1.0;
  Curve idvg_low;   // |Id| vs |Vg| at vds_low
  Curve idvg_high;  // |Id| vs |Vg| at vds_high
  std::vector<OutputCurve> idvd;
  Curve cv;         // Cgg vs |Vg| at |Vds| = 0

  // Sanity: every curve non-empty and x-sorted.
  void validate() const;
};

// Sweep grids used by both the TCAD characterization and the model replay,
// so compared curves share x-axes exactly.
struct SweepGrid {
  double vdd = 1.0;
  std::size_t n_vg = 21;
  std::size_t n_vd = 21;
  std::size_t n_cv = 21;
  std::vector<double> idvd_vgs = {0.4, 0.6, 0.8, 1.0};

  std::vector<double> vg_points() const;
  std::vector<double> vd_points() const;
  std::vector<double> cv_points() const;
};

}  // namespace mivtx::extract
