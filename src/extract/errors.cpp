#include "extract/errors.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mivtx::extract {

std::vector<double> curve_residuals(const Curve& measured, const Curve& fit,
                                    double floor_frac) {
  MIVTX_EXPECT(measured.size() == fit.size(),
               "curve_residuals: size mismatch");
  double peak = 0.0;
  for (const CurvePoint& pt : measured) peak = std::max(peak, std::fabs(pt.y));
  MIVTX_EXPECT(peak > 0.0, "curve_residuals: all-zero measured curve");
  const double floor = floor_frac * peak;
  std::vector<double> r(measured.size());
  for (std::size_t i = 0; i < measured.size(); ++i) {
    MIVTX_EXPECT(std::fabs(measured[i].x - fit[i].x) < 1e-12,
                 "curve_residuals: x grids differ");
    const double denom = std::max(std::fabs(measured[i].y), floor);
    r[i] = (fit[i].y - measured[i].y) / denom;
  }
  return r;
}

double rms(const std::vector<double>& residuals) {
  MIVTX_EXPECT(!residuals.empty(), "rms of empty vector");
  double s = 0.0;
  for (double v : residuals) s += v * v;
  return std::sqrt(s / static_cast<double>(residuals.size()));
}

double curve_error(const Curve& measured, const Curve& fit,
                   double floor_frac) {
  return rms(curve_residuals(measured, fit, floor_frac));
}

}  // namespace mivtx::extract
