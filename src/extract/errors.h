// Region error metrics (the quantities Table III reports).
//
// Per-point residual: (fit - measured) / max(|measured|, floor_frac * peak),
// i.e. relative error with a floor that keeps deep-subthreshold points from
// dominating while still constraining the exponential region.  Region error
// is the RMS of these residuals, reported as a fraction (0.07 = 7 %).
#pragma once

#include <vector>

#include "common/curve.h"

namespace mivtx::extract {

inline constexpr double kErrorFloorFraction = 0.02;

// Residuals between two curves sampled on the same x grid.
std::vector<double> curve_residuals(const Curve& measured, const Curve& fit,
                                    double floor_frac = kErrorFloorFraction);

// RMS of a residual vector.
double rms(const std::vector<double>& residuals);

// RMS error between curves (fraction).
double curve_error(const Curve& measured, const Curve& fit,
                   double floor_frac = kErrorFloorFraction);

}  // namespace mivtx::extract
