#include "extract/optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "linalg/dense.h"

namespace mivtx::extract {

double ParamBounds::to_unit(double value) const {
  MIVTX_EXPECT(hi > lo, "bounds inverted for " + name);
  double u;
  if (log_scale) {
    MIVTX_EXPECT(lo > 0.0, "log-scale bounds must be positive for " + name);
    u = (std::log(value) - std::log(lo)) / (std::log(hi) - std::log(lo));
  } else {
    u = (value - lo) / (hi - lo);
  }
  return std::clamp(u, 0.0, 1.0);
}

double ParamBounds::from_unit(double unit) const {
  const double u = std::clamp(unit, 0.0, 1.0);
  if (log_scale) {
    return std::exp(std::log(lo) + u * (std::log(hi) - std::log(lo)));
  }
  return lo + u * (hi - lo);
}

namespace {

std::vector<double> to_physical(const std::vector<ParamBounds>& bounds,
                                const std::vector<double>& unit) {
  std::vector<double> out(unit.size());
  for (std::size_t i = 0; i < unit.size(); ++i)
    out[i] = bounds[i].from_unit(unit[i]);
  return out;
}

}  // namespace

OptResult nelder_mead(const Objective& f,
                      const std::vector<ParamBounds>& bounds,
                      const std::vector<double>& x0,
                      const NelderMeadOptions& opts) {
  const std::size_t n = bounds.size();
  MIVTX_EXPECT(n > 0 && x0.size() == n, "nelder_mead: bad dimensions");

  std::size_t evals = 0;
  auto eval_unit = [&](const std::vector<double>& u) {
    ++evals;
    return f(to_physical(bounds, u));
  };

  std::vector<double> best_u(n);
  for (std::size_t i = 0; i < n; ++i) best_u[i] = bounds[i].to_unit(x0[i]);
  double best_f = eval_unit(best_u);
  const double initial_f = best_f;

  for (std::size_t restart = 0; restart <= opts.restarts; ++restart) {
    // Build the simplex around the current best point.
    std::vector<std::vector<double>> simplex(n + 1, best_u);
    std::vector<double> fv(n + 1);
    fv[0] = best_f;
    const double step = opts.initial_step / (1.0 + restart);
    for (std::size_t i = 0; i < n; ++i) {
      simplex[i + 1][i] = std::clamp(
          best_u[i] + (best_u[i] > 0.5 ? -step : step), 0.0, 1.0);
      fv[i + 1] = eval_unit(simplex[i + 1]);
    }

    while (evals < opts.max_evaluations) {
      // Order simplex.
      std::vector<std::size_t> idx(n + 1);
      for (std::size_t i = 0; i <= n; ++i) idx[i] = i;
      std::sort(idx.begin(), idx.end(),
                [&](std::size_t a, std::size_t b) { return fv[a] < fv[b]; });
      {
        std::vector<std::vector<double>> s2(n + 1);
        std::vector<double> f2(n + 1);
        for (std::size_t i = 0; i <= n; ++i) {
          s2[i] = simplex[idx[i]];
          f2[i] = fv[idx[i]];
        }
        simplex = std::move(s2);
        fv = std::move(f2);
      }

      // Convergence: simplex extent and value spread.
      double extent = 0.0;
      for (std::size_t i = 1; i <= n; ++i)
        for (std::size_t k = 0; k < n; ++k)
          extent = std::max(extent, std::fabs(simplex[i][k] - simplex[0][k]));
      if (extent < opts.x_tol || std::fabs(fv[n] - fv[0]) < opts.f_tol) break;

      // Centroid of the n best vertices.
      std::vector<double> centroid(n, 0.0);
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t k = 0; k < n; ++k) centroid[k] += simplex[i][k] / n;

      auto blend = [&](double alpha) {
        std::vector<double> u(n);
        for (std::size_t k = 0; k < n; ++k) {
          u[k] = std::clamp(centroid[k] + alpha * (centroid[k] - simplex[n][k]),
                            0.0, 1.0);
        }
        return u;
      };

      const std::vector<double> xr = blend(1.0);  // reflection
      const double fr = eval_unit(xr);
      if (fr < fv[0]) {
        const std::vector<double> xe = blend(2.0);  // expansion
        const double fe = eval_unit(xe);
        if (fe < fr) {
          simplex[n] = xe;
          fv[n] = fe;
        } else {
          simplex[n] = xr;
          fv[n] = fr;
        }
      } else if (fr < fv[n - 1]) {
        simplex[n] = xr;
        fv[n] = fr;
      } else {
        const std::vector<double> xc = blend(fr < fv[n] ? 0.5 : -0.5);
        const double fc = eval_unit(xc);
        if (fc < std::min(fr, fv[n])) {
          simplex[n] = xc;
          fv[n] = fc;
        } else {
          // Shrink toward the best vertex.
          for (std::size_t i = 1; i <= n; ++i) {
            for (std::size_t k = 0; k < n; ++k)
              simplex[i][k] =
                  simplex[0][k] + 0.5 * (simplex[i][k] - simplex[0][k]);
            fv[i] = eval_unit(simplex[i]);
            if (evals >= opts.max_evaluations) break;
          }
        }
      }
      if (fv[0] < best_f) {
        best_f = fv[0];
        best_u = simplex[0];
      }
    }
    // Track best vertex found in this round.
    for (std::size_t i = 0; i <= n; ++i) {
      if (fv[i] < best_f) {
        best_f = fv[i];
        best_u = simplex[i];
      }
    }
    if (evals >= opts.max_evaluations) break;
  }

  OptResult out;
  out.x = to_physical(bounds, best_u);
  out.value = best_f;
  out.evaluations = evals;
  out.improved = best_f < initial_f;
  return out;
}

OptResult levenberg_marquardt(const ResidualFn& residuals,
                              const std::vector<ParamBounds>& bounds,
                              const std::vector<double>& x0,
                              const LevenbergMarquardtOptions& opts) {
  const std::size_t n = bounds.size();
  MIVTX_EXPECT(n > 0 && x0.size() == n, "lm: bad dimensions");

  std::size_t evals = 0;
  auto eval_unit = [&](const std::vector<double>& u) {
    ++evals;
    return residuals(to_physical(bounds, u));
  };
  auto ssq = [](const std::vector<double>& r) {
    double s = 0.0;
    for (double v : r) s += v * v;
    return s;
  };

  std::vector<double> u(n);
  for (std::size_t i = 0; i < n; ++i) u[i] = bounds[i].to_unit(x0[i]);
  std::vector<double> r = eval_unit(u);
  double f = ssq(r);
  const double initial_f = f;
  const std::size_t m = r.size();
  MIVTX_EXPECT(m > 0, "lm: no residuals");

  double lambda = opts.initial_lambda;
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    // Numeric Jacobian in unit space.
    linalg::DenseMatrix jac(m, n);
    for (std::size_t k = 0; k < n; ++k) {
      std::vector<double> up = u;
      const double h =
          (up[k] + opts.step_rel <= 1.0) ? opts.step_rel : -opts.step_rel;
      up[k] += h;
      const std::vector<double> rp = eval_unit(up);
      for (std::size_t i = 0; i < m; ++i)
        jac(i, k) = (rp[i] - r[i]) / h;
    }
    // Normal equations (J^T J + lambda diag) d = -J^T r.
    linalg::DenseMatrix jtj(n, n);
    linalg::Vector jtr(n, 0.0);
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a; b < n; ++b) {
        double s = 0.0;
        for (std::size_t i = 0; i < m; ++i) s += jac(i, a) * jac(i, b);
        jtj(a, b) = s;
        jtj(b, a) = s;
      }
      double s = 0.0;
      for (std::size_t i = 0; i < m; ++i) s += jac(i, a) * r[i];
      jtr[a] = s;
    }
    double gmax = 0.0;
    for (double g : jtr) gmax = std::max(gmax, std::fabs(g));
    if (gmax < opts.g_tol) break;

    bool stepped = false;
    for (int tries = 0; tries < 10 && !stepped; ++tries) {
      linalg::DenseMatrix a = jtj;
      for (std::size_t k = 0; k < n; ++k)
        a(k, k) += lambda * std::max(jtj(k, k), 1e-12);
      linalg::Vector rhs(n);
      for (std::size_t k = 0; k < n; ++k) rhs[k] = -jtr[k];
      linalg::Vector d;
      try {
        d = linalg::solve_dense(std::move(a), rhs);
      } catch (const Error&) {
        lambda *= 10.0;
        continue;
      }
      std::vector<double> u_new(n);
      for (std::size_t k = 0; k < n; ++k)
        u_new[k] = std::clamp(u[k] + d[k], 0.0, 1.0);
      const std::vector<double> r_new = eval_unit(u_new);
      const double f_new = ssq(r_new);
      if (f_new < f) {
        u = std::move(u_new);
        r = r_new;
        f = f_new;
        lambda = std::max(lambda * 0.3, 1e-12);
        stepped = true;
      } else {
        lambda *= 10.0;
      }
    }
    if (!stepped) break;
  }

  OptResult out;
  out.x = to_physical(bounds, u);
  out.value = f;
  out.evaluations = evals;
  out.improved = f < initial_f;
  return out;
}

}  // namespace mivtx::extract
