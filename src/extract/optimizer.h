// Derivative-free and least-squares optimizers used by the extraction
// pipeline.  Both operate in a normalized box: each parameter is mapped to
// [0, 1] (linearly or logarithmically per its ParamBounds), which equalizes
// scales across parameters spanning 10+ decades (UB ~ 1e-18 vs VSAT ~ 1e5).
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace mivtx::extract {

struct ParamBounds {
  std::string name;
  double lo = 0.0;
  double hi = 1.0;
  bool log_scale = false;

  double to_unit(double value) const;    // physical -> [0,1]
  double from_unit(double unit) const;   // [0,1] -> physical
};

using Objective = std::function<double(const std::vector<double>&)>;

struct OptResult {
  std::vector<double> x;  // physical parameter values
  double value = 0.0;     // objective at x
  std::size_t evaluations = 0;
  bool improved = false;  // beat the initial point
};

struct NelderMeadOptions {
  std::size_t max_evaluations = 4000;
  double initial_step = 0.15;   // simplex edge in unit space
  double x_tol = 1e-5;          // simplex size stop
  double f_tol = 1e-12;         // spread stop
  std::size_t restarts = 1;     // re-seeded restarts around the best point
};

// Minimize `f` (called with physical values) within bounds, starting at x0.
OptResult nelder_mead(const Objective& f, const std::vector<ParamBounds>& bounds,
                      const std::vector<double>& x0,
                      const NelderMeadOptions& opts = {});

struct LevenbergMarquardtOptions {
  std::size_t max_iterations = 60;
  double initial_lambda = 1e-3;
  double g_tol = 1e-12;
  double step_rel = 1e-4;  // forward-difference step in unit space
};

// Residual vector version: minimize sum r_i(x)^2.
using ResidualFn =
    std::function<std::vector<double>(const std::vector<double>&)>;

OptResult levenberg_marquardt(const ResidualFn& residuals,
                              const std::vector<ParamBounds>& bounds,
                              const std::vector<double>& x0,
                              const LevenbergMarquardtOptions& opts = {});

}  // namespace mivtx::extract
