#include "extract/pipeline.h"

#include <cmath>
#include <functional>
#include <map>

#include "bsimsoi/curves.h"
#include "common/error.h"
#include "common/log.h"
#include "extract/errors.h"

namespace mivtx::extract {

namespace {

std::vector<double> xs_of(const Curve& c) {
  std::vector<double> xs(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) xs[i] = c[i].x;
  return xs;
}

}  // namespace

ParamBounds param_bounds(const std::string& name) {
  static const std::map<std::string, ParamBounds> kBounds = {
      {"VTH0", {"VTH0", 0.05, 0.70, false}},
      {"DVT0", {"DVT0", 0.0, 2.0, false}},
      {"DVT1", {"DVT1", 0.2, 3.0, false}},
      {"DELVT", {"DELVT", -0.25, 0.25, false}},
      {"NFACTOR", {"NFACTOR", 0.6, 3.0, false}},
      {"CDSC", {"CDSC", 1e-7, 3e-2, true}},
      {"CDSCD", {"CDSCD", 0.0, 3e-2, false}},
      {"ETAB", {"ETAB", 0.0, 0.25, false}},
      {"U0", {"U0", 2e-3, 0.30, true}},
      {"UA", {"UA", 1e-12, 3e-8, true}},
      {"UB", {"UB", 1e-22, 1e-15, true}},
      {"UD", {"UD", 0.0, 20.0, false}},
      {"UCS", {"UCS", 0.03, 8.0, true}},
      {"VSAT", {"VSAT", 1e4, 1e6, true}},
      {"PCLM", {"PCLM", 0.3, 8.0, false}},
      {"PVAG", {"PVAG", 0.0, 8.0, false}},
      {"RDSW", {"RDSW", 1e-2, 3e3, true}},
      {"CKAPPA", {"CKAPPA", 0.02, 3.0, true}},
      {"CGSO", {"CGSO", 1e-13, 2e-9, true}},
      {"CGDO", {"CGDO", 1e-13, 2e-9, true}},
      {"CGSL", {"CGSL", 1e-13, 2e-9, true}},
      {"CGDL", {"CGDL", 1e-13, 2e-9, true}},
      {"CF", {"CF", 1e-14, 2e-9, true}},
      {"MOIN", {"MOIN", 1.0, 40.0, false}},
      {"K1B", {"K1B", 0.0, 2.0, false}},
      {"DVTB", {"DVTB", 0.0, 0.8, false}},
  };
  const auto it = kBounds.find(name);
  MIVTX_EXPECT(it != kBounds.end(), "no bounds registered for " + name);
  return it->second;
}

Curve model_idvg(const bsimsoi::SoiModelCard& card, const Curve& measured,
                 double vds) {
  return bsimsoi::id_vg(card, vds, xs_of(measured));
}

Curve model_idvd(const bsimsoi::SoiModelCard& card, const Curve& measured,
                 double vgs) {
  return bsimsoi::id_vd(card, vgs, xs_of(measured));
}

Curve model_cv(const bsimsoi::SoiModelCard& card, const Curve& measured) {
  return bsimsoi::cgg_vg(card, 0.0, xs_of(measured));
}

RegionErrors region_errors(const bsimsoi::SoiModelCard& card,
                           const CharacteristicSet& data) {
  RegionErrors e;
  std::vector<double> r_idvg = curve_residuals(
      data.idvg_low, model_idvg(card, data.idvg_low, data.vds_low));
  {
    const auto r_hi = curve_residuals(
        data.idvg_high, model_idvg(card, data.idvg_high, data.vds_high));
    r_idvg.insert(r_idvg.end(), r_hi.begin(), r_hi.end());
  }
  e.idvg = rms(r_idvg);

  std::vector<double> r_idvd;
  for (const OutputCurve& oc : data.idvd) {
    const auto r = curve_residuals(oc.curve,
                                   model_idvd(card, oc.curve, oc.vgs));
    r_idvd.insert(r_idvd.end(), r.begin(), r.end());
  }
  e.idvd = rms(r_idvd);

  e.cv = curve_error(data.cv, model_cv(card, data.cv));
  return e;
}

namespace {

// Residuals targeted by each stage.
std::vector<double> stage_residuals(int stage,
                                    const bsimsoi::SoiModelCard& card,
                                    const CharacteristicSet& data) {
  std::vector<double> r;
  switch (stage) {
    case 1: {
      r = curve_residuals(data.idvg_low,
                          model_idvg(card, data.idvg_low, data.vds_low));
      break;
    }
    case 2: {
      r = curve_residuals(data.idvg_high,
                          model_idvg(card, data.idvg_high, data.vds_high));
      // Keep the low-drain curve lightly weighted so stage 2 does not undo
      // stage 1 (the paper re-tunes U0/UA/DVT0/DVT1 here too).
      auto r_low = curve_residuals(
          data.idvg_low, model_idvg(card, data.idvg_low, data.vds_low));
      for (double v : r_low) r.push_back(0.5 * v);
      for (const OutputCurve& oc : data.idvd) {
        const auto rr =
            curve_residuals(oc.curve, model_idvd(card, oc.curve, oc.vgs));
        r.insert(r.end(), rr.begin(), rr.end());
      }
      // Heavily weight the effective-current points Id(Vg=Vdd/2, Vd=Vdd)
      // and Id(Vg=Vdd, Vd=Vdd/2): cell delay is governed by them, so a
      // few-percent systematic bias here (invisible in the RMS) would
      // scramble the device ranking the PPA study depends on.
      const double kIeffWeight = 6.0;
      auto add_point = [&](const Curve& measured, double x_target,
                           double response) {
        for (const CurvePoint& pt : measured) {
          if (std::fabs(pt.x - x_target) < 1e-9 && pt.y > 0.0) {
            r.push_back(kIeffWeight * (response - pt.y) / pt.y);
            return;
          }
        }
      };
      const double half = 0.5 * data.vds_high;
      add_point(data.idvg_high, half,
                bsimsoi::id_vg(card, data.vds_high, {half})[0].y);
      for (const OutputCurve& oc : data.idvd) {
        if (std::fabs(oc.vgs - data.vds_high) < 1e-9) {
          add_point(oc.curve, half, bsimsoi::id_vd(card, oc.vgs, {half})[0].y);
        }
      }
      break;
    }
    case 3: {
      r = curve_residuals(data.cv, model_cv(card, data.cv));
      break;
    }
    case 4: {
      // Effective-current retarget ("binning" trim): exactly two residuals,
      // Id(Vdd/2, Vdd) and Id(Vdd, Vdd/2) relative errors, solved with two
      // degrees of freedom (U0, RDSW).  Removes the per-card systematic
      // mid-bias error that would otherwise scramble the small PPA deltas
      // between implementations.
      const double half = 0.5 * data.vds_high;
      auto add_point = [&](const Curve& measured, double x_target,
                           double response) {
        for (const CurvePoint& pt : measured) {
          if (std::fabs(pt.x - x_target) < 1e-9 && pt.y > 0.0) {
            r.push_back((response - pt.y) / pt.y);
            return;
          }
        }
      };
      add_point(data.idvg_high, half,
                bsimsoi::id_vg(card, data.vds_high, {half})[0].y);
      for (const OutputCurve& oc : data.idvd) {
        if (std::fabs(oc.vgs - data.vds_high) < 1e-9) {
          add_point(oc.curve, half, bsimsoi::id_vd(card, oc.vgs, {half})[0].y);
        }
      }
      MIVTX_EXPECT(!r.empty(), "retarget stage found no Ieff points");
      break;
    }
    default:
      MIVTX_FAIL("unknown stage");
  }
  return r;
}

using CardHook = std::function<void(bsimsoi::SoiModelCard&)>;

StageReport run_stage(int stage, const std::string& name,
                      const std::vector<std::string>& params,
                      bsimsoi::SoiModelCard& card,
                      const CharacteristicSet& data,
                      const ExtractionOptions& opts,
                      const CardHook& post_set = nullptr) {
  StageReport report;
  report.name = name;
  report.parameters = params;

  std::vector<ParamBounds> bounds;
  std::vector<double> x0;
  for (const std::string& p : params) {
    ParamBounds b = param_bounds(p);
    double v = card.get(p);
    // Clamp the seed into the box (e.g. zero-valued log-scale parameters).
    v = std::min(std::max(v, b.lo), b.hi);
    bounds.push_back(std::move(b));
    x0.push_back(v);
  }

  auto apply = [&](const std::vector<double>& x) {
    for (std::size_t i = 0; i < params.size(); ++i) card.set(params[i], x[i]);
    if (post_set) post_set(card);
  };

  ResidualFn residuals = [&](const std::vector<double>& x) {
    bsimsoi::SoiModelCard trial = card;
    for (std::size_t i = 0; i < params.size(); ++i)
      trial.set(params[i], x[i]);
    if (post_set) post_set(trial);
    return stage_residuals(stage, trial, data);
  };
  Objective objective = [&](const std::vector<double>& x) {
    return rms(residuals(x));
  };

  report.error_before = objective(x0);

  OptResult best = nelder_mead(objective, bounds, x0, opts.nm);
  report.evaluations += best.evaluations;
  if (opts.run_lm_polish) {
    const OptResult lm =
        levenberg_marquardt(residuals, bounds, best.x, opts.lm);
    report.evaluations += lm.evaluations;
    if (rms(residuals(lm.x)) < rms(residuals(best.x))) best = lm;
  }
  apply(best.x);
  report.error_after = objective(best.x);
  return report;
}

// Constant-current threshold estimate used to seed VTH0.
double seed_vth(const CharacteristicSet& data,
                const bsimsoi::SoiModelCard& card) {
  const double i_crit = 100e-9 * card.w / card.l;
  const Curve& c = data.idvg_low;
  for (std::size_t k = 1; k < c.size(); ++k) {
    if (c[k - 1].y < i_crit && c[k].y >= i_crit && c[k - 1].y > 0.0) {
      const double f = (std::log(i_crit) - std::log(c[k - 1].y)) /
                       (std::log(c[k].y) - std::log(c[k - 1].y));
      return c[k - 1].x + f * (c[k].x - c[k - 1].x);
    }
  }
  return 0.35;
}

}  // namespace

ExtractionReport extract_card(const CharacteristicSet& data,
                              const bsimsoi::SoiModelCard& initial,
                              const ExtractionOptions& opts) {
  data.validate();
  ExtractionReport report;
  report.card = initial;

  // Seed the threshold from the measured low-drain curve.  The stages work
  // on the VTH0 magnitude (the model core mirrors PMOS internally); the
  // conventional negative sign is restored after the last stage.
  report.card.vth0 = seed_vth(data, report.card);

  report.stages.push_back(run_stage(
      1, "low-drain",
      {"CDSC", "U0", "UA", "UB", "UD", "UCS", "DVT0", "DVT1", "NFACTOR"},
      report.card, data, opts));
  report.stages.push_back(run_stage(
      2, "high-drain",
      {"CDSC", "CDSCD", "U0", "UA", "VTH0", "PVAG", "DVT0", "DVT1", "ETAB",
       "VSAT", "RDSW", "PCLM"},
      report.card, data, opts));
  // The C-V data is taken at Vds = 0, where gate capacitance cannot
  // distinguish the source and drain sides; fit one overlap pair and
  // mirror it so the optimizer cannot dump arbitrary asymmetry onto the
  // drain (which would scramble Miller loading in the cell simulations).
  const auto mirror_overlaps = [](bsimsoi::SoiModelCard& c) {
    c.cgdo = c.cgso;
    c.cgdl = c.cgsl;
  };
  report.stages.push_back(run_stage(
      3, "capacitance",
      {"CKAPPA", "DELVT", "CF", "CGSO", "MOIN", "CGSL", "K1B", "DVTB"},
      report.card, data, opts, mirror_overlaps));
  if (opts.run_ieff_retarget) {
    report.stages.push_back(run_stage(4, "ieff-retarget", {"U0", "RDSW"},
                                      report.card, data, opts));
  }

  if (report.card.polarity == bsimsoi::Polarity::kPmos)
    report.card.vth0 = -std::fabs(report.card.vth0);

  report.errors = region_errors(report.card, data);
  MIVTX_INFO << "extraction " << data.device_name
             << ": idvg=" << report.errors.idvg
             << " idvd=" << report.errors.idvd << " cv=" << report.errors.cv;
  return report;
}

}  // namespace mivtx::extract
