// Staged TCAD-to-SPICE extraction pipeline (paper Fig. 3).
//
// Three sequential stages, each tuning its own parameter group against its
// own target curves (Nelder-Mead global pass followed by a Levenberg-
// Marquardt polish):
//   1. Low-drain:   CDSC, U0, UA, UB, UD, UCS, DVT0, DVT1 (+NFACTOR)
//                   against Id-Vg at |Vds| = 50 mV.
//   2. High-drain:  CDSC, CDSCD, U0, UA, VTH0, PVAG, DVT0, DVT1, ETAB,
//                   VSAT (+RDSW, PCLM) against Id-Vg at |Vds| = 1 V and the
//                   Id-Vd family.
//   3. Capacitance: CKAPPA, DELVT, CF, CGSO, CGDO, MOIN, CGSL, CGDL
//                   against Cgg-Vg.
// U0/UA/DVT0/DVT1 deliberately appear in both I-V stages, matching the
// paper's note that they are "passed to the subsequent extraction regions
// for fine-tuning".
#pragma once

#include <string>
#include <vector>

#include "bsimsoi/params.h"
#include "extract/dataset.h"
#include "extract/optimizer.h"

namespace mivtx::extract {

struct StageReport {
  std::string name;
  std::vector<std::string> parameters;
  double error_before = 0.0;  // stage objective (RMS fraction)
  double error_after = 0.0;
  std::size_t evaluations = 0;
};

struct RegionErrors {
  double idvg = 0.0;  // combined low+high transfer curves
  double idvd = 0.0;  // output curve family
  double cv = 0.0;    // gate capacitance
};

struct ExtractionReport {
  bsimsoi::SoiModelCard card;
  RegionErrors errors;
  std::vector<StageReport> stages;
};

struct ExtractionOptions {
  NelderMeadOptions nm;
  LevenbergMarquardtOptions lm;
  bool run_lm_polish = true;
  // Final trim of {U0, RDSW} to exactly hit the two effective-current
  // points Id(Vdd/2, Vdd) and Id(Vdd, Vdd/2) - standard model retargeting
  // so cell-delay-critical drive survives the global fit.
  bool run_ieff_retarget = true;
};

// Parameter search box used by the extraction stages; throws for a
// parameter with no registered bounds.
ParamBounds param_bounds(const std::string& name);

// Replay the model against a dataset's sweep grids.
Curve model_idvg(const bsimsoi::SoiModelCard& card, const Curve& measured,
                 double vds);
Curve model_idvd(const bsimsoi::SoiModelCard& card, const Curve& measured,
                 double vgs);
Curve model_cv(const bsimsoi::SoiModelCard& card, const Curve& measured);

// Final per-region errors of a card against a dataset.
RegionErrors region_errors(const bsimsoi::SoiModelCard& card,
                           const CharacteristicSet& data);

// Run the full three-stage flow.  `initial` supplies geometry/polarity and
// starting values; the returned card is the tuned copy.
ExtractionReport extract_card(const CharacteristicSet& data,
                              const bsimsoi::SoiModelCard& initial,
                              const ExtractionOptions& opts = {});

}  // namespace mivtx::extract
