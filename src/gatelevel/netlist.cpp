#include "gatelevel/netlist.h"

#include <algorithm>
#include <set>

#include "common/error.h"
#include "common/strings.h"

namespace mivtx::gatelevel {

void GateNetlist::add_input(const std::string& net) {
  MIVTX_EXPECT(!finalized_, "netlist already finalized");
  MIVTX_EXPECT(driver_.count(net) == 0, "net already driven: " + net);
  inputs_.push_back(net);
  driver_[net] = static_cast<std::size_t>(-1);  // primary input marker
}

void GateNetlist::add_output(const std::string& net) {
  MIVTX_EXPECT(!finalized_, "netlist already finalized");
  outputs_.push_back(net);
}

const std::string& GateNetlist::add_instance(
    cells::CellType type, const std::string& name,
    const std::vector<std::string>& inputs, const std::string& output) {
  MIVTX_EXPECT(!finalized_, "netlist already finalized");
  MIVTX_EXPECT(inputs.size() == cells::cell_num_inputs(type),
               name + ": wrong input count for " +
                   std::string(cells::cell_name(type)));
  MIVTX_EXPECT(driver_.count(output) == 0,
               "net already driven: " + output + " (instance " + name + ")");
  driver_[output] = instances_.size();
  instances_.push_back(Instance{name, type, inputs, output});
  return instances_.back().output;
}

void GateNetlist::finalize() {
  MIVTX_EXPECT(!finalized_, "finalize called twice");
  // Every read net must be driven.
  auto check_driven = [&](const std::string& net, const std::string& who) {
    MIVTX_EXPECT(driver_.count(net) > 0,
                 "undriven net " + net + " read by " + who);
  };
  for (const Instance& inst : instances_) {
    for (const std::string& in : inst.inputs) check_driven(in, inst.name);
  }
  for (const std::string& out : outputs_) check_driven(out, "primary output");

  // Kahn topological sort over instance dependencies.
  std::vector<std::size_t> indegree(instances_.size(), 0);
  std::vector<std::vector<std::size_t>> readers(instances_.size());
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    for (const std::string& in : instances_[i].inputs) {
      const std::size_t d = driver_.at(in);
      if (d == static_cast<std::size_t>(-1)) continue;  // primary input
      readers[d].push_back(i);
      ++indegree[i];
    }
  }
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  topo_.clear();
  while (!ready.empty()) {
    const std::size_t i = ready.back();
    ready.pop_back();
    topo_.push_back(i);
    for (const std::size_t r : readers[i]) {
      if (--indegree[r] == 0) ready.push_back(r);
    }
  }
  MIVTX_EXPECT(topo_.size() == instances_.size(),
               "combinational cycle in netlist " + name_);
  finalized_ = true;
}

const std::vector<std::size_t>& GateNetlist::topological_order() const {
  MIVTX_EXPECT(finalized_, "netlist not finalized");
  return topo_;
}

std::map<cells::CellType, std::size_t> GateNetlist::cell_histogram() const {
  std::map<cells::CellType, std::size_t> h;
  for (const Instance& inst : instances_) ++h[inst.type];
  return h;
}

std::size_t GateNetlist::fanout(const std::string& net) const {
  std::size_t n = 0;
  for (const Instance& inst : instances_) {
    n += static_cast<std::size_t>(
        std::count(inst.inputs.begin(), inst.inputs.end(), net));
  }
  n += static_cast<std::size_t>(
      std::count(outputs_.begin(), outputs_.end(), net));
  return n;
}

std::map<std::string, bool> GateNetlist::evaluate(
    const std::map<std::string, bool>& input_values) const {
  MIVTX_EXPECT(finalized_, "netlist not finalized");
  std::map<std::string, bool> value;
  for (const std::string& in : inputs_) {
    const auto it = input_values.find(in);
    MIVTX_EXPECT(it != input_values.end(), "missing input value for " + in);
    value[in] = it->second;
  }
  for (const std::size_t i : topo_) {
    const Instance& inst = instances_[i];
    std::vector<bool> args;
    args.reserve(inst.inputs.size());
    for (const std::string& in : inst.inputs) args.push_back(value.at(in));
    value[inst.output] = cells::cell_logic(inst.type, args);
  }
  std::map<std::string, bool> out;
  for (const std::string& o : outputs_) out[o] = value.at(o);
  return out;
}

// --- Generators ----------------------------------------------------------------

GateNetlist ripple_carry_adder(std::size_t bits) {
  MIVTX_EXPECT(bits >= 1, "adder needs at least 1 bit");
  GateNetlist n(format("rca%zu", bits));
  for (std::size_t i = 0; i < bits; ++i) {
    n.add_input(format("a%zu", i));
    n.add_input(format("b%zu", i));
  }
  n.add_input("cin");
  std::string carry = "cin";
  for (std::size_t i = 0; i < bits; ++i) {
    const std::string a = format("a%zu", i), b = format("b%zu", i);
    const std::string axb = format("axb%zu", i);
    n.add_instance(cells::CellType::kXor2, format("u_xor1_%zu", i), {a, b},
                   axb);
    n.add_instance(cells::CellType::kXor2, format("u_xor2_%zu", i),
                   {axb, carry}, format("s%zu", i));
    const std::string t1 = format("t1_%zu", i), t2 = format("t2_%zu", i);
    n.add_instance(cells::CellType::kAnd2, format("u_and1_%zu", i), {a, b},
                   t1);
    n.add_instance(cells::CellType::kAnd2, format("u_and2_%zu", i),
                   {axb, carry}, t2);
    const std::string cnext = format("c%zu", i + 1);
    n.add_instance(cells::CellType::kOr2, format("u_or_%zu", i), {t1, t2},
                   cnext);
    carry = cnext;
    n.add_output(format("s%zu", i));
  }
  n.add_output(carry);
  n.add_output("cout_alias");
  // Buffer the final carry through an AND with itself?  Simpler: alias via
  // two inverters to exercise INV cells as well.
  n.add_instance(cells::CellType::kInv1, "u_cinv1", {carry}, "cout_n");
  n.add_instance(cells::CellType::kInv1, "u_cinv2", {"cout_n"}, "cout_alias");
  n.finalize();
  return n;
}

GateNetlist decoder(std::size_t bits) {
  MIVTX_EXPECT(bits >= 1 && bits <= 6, "decoder supports 1..6 bits");
  GateNetlist n(format("dec%zu", bits));
  n.add_input("en");
  for (std::size_t i = 0; i < bits; ++i) n.add_input(format("a%zu", i));
  // Inverted address lines.
  for (std::size_t i = 0; i < bits; ++i) {
    n.add_instance(cells::CellType::kInv1, format("u_inv%zu", i),
                   {format("a%zu", i)}, format("an%zu", i));
  }
  const std::size_t rows = std::size_t{1} << bits;
  for (std::size_t r = 0; r < rows; ++r) {
    // AND-reduce the address literals, then gate with enable.
    std::string acc = ((r >> 0) & 1u) ? "a0" : "an0";
    for (std::size_t i = 1; i < bits; ++i) {
      const std::string lit =
          ((r >> i) & 1u) ? format("a%zu", i) : format("an%zu", i);
      const std::string next = format("p%zu_%zu", r, i);
      n.add_instance(cells::CellType::kAnd2, format("u_and%zu_%zu", r, i),
                     {acc, lit}, next);
      acc = next;
    }
    n.add_instance(cells::CellType::kAnd2, format("u_en%zu", r), {acc, "en"},
                   format("y%zu", r));
    n.add_output(format("y%zu", r));
  }
  n.finalize();
  return n;
}

GateNetlist parity_tree(std::size_t inputs) {
  MIVTX_EXPECT(inputs >= 2 && (inputs & (inputs - 1)) == 0,
               "parity tree needs a power-of-two input count");
  GateNetlist n(format("parity%zu", inputs));
  std::vector<std::string> level;
  for (std::size_t i = 0; i < inputs; ++i) {
    n.add_input(format("d%zu", i));
    level.push_back(format("d%zu", i));
  }
  std::size_t uid = 0;
  while (level.size() > 1) {
    std::vector<std::string> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const std::string out = format("x%zu", uid);
      n.add_instance(cells::CellType::kXor2, format("u_x%zu", uid),
                     {level[i], level[i + 1]}, out);
      next.push_back(out);
      ++uid;
    }
    level = std::move(next);
  }
  n.add_output("parity");
  n.add_instance(cells::CellType::kInv1, "u_pinv1", {level[0]}, "parity_n");
  n.add_instance(cells::CellType::kInv1, "u_pinv2", {"parity_n"}, "parity");
  n.finalize();
  return n;
}

GateNetlist mux_tree(std::size_t inputs) {
  MIVTX_EXPECT(inputs >= 2 && (inputs & (inputs - 1)) == 0,
               "mux tree needs a power-of-two input count");
  GateNetlist n(format("mux%zu", inputs));
  std::vector<std::string> level;
  std::size_t sel_bits = 0;
  for (std::size_t v = inputs; v > 1; v >>= 1) ++sel_bits;
  for (std::size_t i = 0; i < inputs; ++i) {
    n.add_input(format("d%zu", i));
    level.push_back(format("d%zu", i));
  }
  for (std::size_t s = 0; s < sel_bits; ++s) n.add_input(format("s%zu", s));
  std::size_t uid = 0;
  for (std::size_t s = 0; s < sel_bits; ++s) {
    std::vector<std::string> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const std::string out =
          (level.size() == 2) ? std::string("y") : format("m%zu", uid);
      n.add_instance(cells::CellType::kMux2, format("u_m%zu", uid),
                     {level[i], level[i + 1], format("s%zu", s)}, out);
      next.push_back(out);
      ++uid;
    }
    level = std::move(next);
  }
  n.add_output("y");
  n.finalize();
  return n;
}

GateNetlist alu_block(std::size_t bits) {
  MIVTX_EXPECT(bits >= 1, "ALU needs at least 1 bit");
  GateNetlist n(format("alu%zu", bits));
  for (std::size_t i = 0; i < bits; ++i) {
    n.add_input(format("a%zu", i));
    n.add_input(format("b%zu", i));
  }
  n.add_input("cin");
  n.add_input("op0");
  n.add_input("op1");
  std::string carry = "cin";
  for (std::size_t i = 0; i < bits; ++i) {
    const std::string a = format("a%zu", i), b = format("b%zu", i);
    const std::string andv = format("and%zu", i);
    const std::string orv = format("or%zu", i);
    const std::string xorv = format("xor%zu", i);
    n.add_instance(cells::CellType::kAnd2, format("u_and_%zu", i), {a, b},
                   andv);
    n.add_instance(cells::CellType::kOr2, format("u_or_%zu", i), {a, b}, orv);
    n.add_instance(cells::CellType::kXor2, format("u_xor_%zu", i), {a, b},
                   xorv);
    // Full adder reusing andv (= a&b) and xorv (= a^b).
    const std::string sum = format("sum%zu", i);
    const std::string t = format("t%zu", i);
    const std::string cnext = format("c%zu", i + 1);
    n.add_instance(cells::CellType::kXor2, format("u_sum_%zu", i),
                   {xorv, carry}, sum);
    n.add_instance(cells::CellType::kAnd2, format("u_cand_%zu", i),
                   {xorv, carry}, t);
    n.add_instance(cells::CellType::kOr2, format("u_cor_%zu", i), {andv, t},
                   cnext);
    carry = cnext;
    // Function select: op1 picks between (AND/OR) and (XOR/ADD), op0 the
    // member of each pair.  MUX2 inputs are {A, B, S}: Y = S ? B : A.
    const std::string m0 = format("m0_%zu", i);
    const std::string m1 = format("m1_%zu", i);
    n.add_instance(cells::CellType::kMux2, format("u_m0_%zu", i),
                   {andv, orv, "op0"}, m0);
    n.add_instance(cells::CellType::kMux2, format("u_m1_%zu", i),
                   {xorv, sum, "op0"}, m1);
    n.add_instance(cells::CellType::kMux2, format("u_y_%zu", i),
                   {m0, m1, "op1"}, format("y%zu", i));
    n.add_output(format("y%zu", i));
  }
  n.add_output(carry);
  n.finalize();
  return n;
}

GateNetlist aoi_block() {
  GateNetlist n("aoiblk");
  for (int i = 0; i < 4; ++i) n.add_input(format("d%d", i));
  n.add_instance(cells::CellType::kAoi2, "u_aoi", {"d0", "d1", "d2"}, "z0");
  n.add_instance(cells::CellType::kOai2, "u_oai", {"d1", "d2", "d3"}, "z1");
  n.add_instance(cells::CellType::kNand3, "u_nand", {"d0", "z0", "z1"}, "t0");
  n.add_instance(cells::CellType::kNor3, "u_nor", {"d3", "z0", "z1"}, "t1");
  n.add_instance(cells::CellType::kXnor2, "u_xnor", {"t0", "t1"}, "z2");
  n.add_output("z0");
  n.add_output("z1");
  n.add_output("z2");
  n.finalize();
  return n;
}

GateNetlist random_logic_block(std::size_t gates, std::uint64_t seed) {
  MIVTX_EXPECT(gates > 0, "random_logic_block needs at least one gate");
  GateNetlist n(format("rnd%zu_%llu", gates,
                       static_cast<unsigned long long>(seed)));
  // xorshift64*: deterministic across platforms, no <random> distribution
  // quirks.
  std::uint64_t state = seed != 0 ? seed : 0x9e3779b97f4a7c15ULL;
  auto next = [&state](std::uint64_t bound) {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return (state * 0x2545f4914f6cdd1dULL) % bound;
  };

  const std::size_t n_inputs =
      std::max<std::size_t>(4, std::min<std::size_t>(64, gates / 6 + 4));
  std::vector<std::string> pool;
  for (std::size_t i = 0; i < n_inputs; ++i) {
    const std::string net = format("d%zu", i);
    n.add_input(net);
    pool.push_back(net);
  }

  const std::vector<cells::CellType>& types = cells::all_cells();
  std::set<std::string> read;
  for (std::size_t g = 0; g < gates; ++g) {
    const cells::CellType type = types[next(types.size())];
    const std::size_t arity = cells::cell_num_inputs(type);
    // Distinct input nets (pool always holds >= 4 >= max arity).
    std::vector<std::string> ins;
    while (ins.size() < arity) {
      const std::string& pick = pool[next(pool.size())];
      if (std::find(ins.begin(), ins.end(), pick) == ins.end())
        ins.push_back(pick);
    }
    const std::string out = format("n%zu", g);
    n.add_instance(type, format("g%zu", g), ins, out);
    for (const std::string& in : ins) read.insert(in);
    pool.push_back(out);
  }
  // Every unread gate output is a primary output (at least the last gate's
  // net is unread, so the block always has one).
  for (std::size_t g = 0; g < gates; ++g) {
    const std::string out = format("n%zu", g);
    if (read.find(out) == read.end()) n.add_output(out);
  }
  n.finalize();
  return n;
}

}  // namespace mivtx::gatelevel
