// Gate-level structural netlists built from the 14-cell library.
//
// Used by the chip-level extensions: static timing analysis over the
// measured cell delays (gatelevel/sta.h) and the per-tier placement study
// (src/place) that the paper's section IV sketches as future work.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cells/celltypes.h"

namespace mivtx::gatelevel {

struct Instance {
  std::string name;
  cells::CellType type = cells::CellType::kInv1;
  std::vector<std::string> inputs;  // nets, in cell pin order
  std::string output;               // driven net
};

// A combinational netlist: primary inputs, primary outputs, cell instances.
// Invariants enforced on finalize(): every net has exactly one driver
// (a primary input or an instance output), every instance input and primary
// output is driven, and the instance graph is acyclic.
class GateNetlist {
 public:
  explicit GateNetlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void add_input(const std::string& net);
  void add_output(const std::string& net);
  // Returns the driven net's name for chaining.
  const std::string& add_instance(cells::CellType type,
                                  const std::string& name,
                                  const std::vector<std::string>& inputs,
                                  const std::string& output);

  // Validate invariants and compute the topological order; must be called
  // before evaluate()/topological_order().  Throws mivtx::Error on a
  // malformed netlist.
  void finalize();
  bool finalized() const { return finalized_; }

  const std::vector<std::string>& primary_inputs() const { return inputs_; }
  const std::vector<std::string>& primary_outputs() const { return outputs_; }
  const std::vector<Instance>& instances() const { return instances_; }
  // Instances in dependency order (drivers before readers).
  const std::vector<std::size_t>& topological_order() const;

  // Number of instances of each cell type (for area/placement rollups).
  std::map<cells::CellType, std::size_t> cell_histogram() const;

  // Fanout count of a net (instance inputs + primary outputs reading it).
  std::size_t fanout(const std::string& net) const;

  // Evaluate the combinational function on a full input assignment.
  std::map<std::string, bool> evaluate(
      const std::map<std::string, bool>& input_values) const;

 private:
  std::string name_;
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;
  std::vector<Instance> instances_;
  std::map<std::string, std::size_t> driver_;  // net -> instance index
  std::vector<std::size_t> topo_;
  bool finalized_ = false;
};

// --- Benchmark circuit generators -------------------------------------------

// n-bit ripple-carry adder: inputs a0..a{n-1}, b0..b{n-1}, cin; outputs
// s0..s{n-1}, cout.  Built from XOR2/AND2/OR2 full adders.
GateNetlist ripple_carry_adder(std::size_t bits);

// n-to-2^n decoder with enable: inputs en, a0..a{n-1}; outputs y0..y{2^n-1}.
GateNetlist decoder(std::size_t bits);

// n-input parity tree (n a power of two): inputs d0..d{n-1}, output parity.
GateNetlist parity_tree(std::size_t inputs);

// n-to-1 multiplexer tree (n a power of two) built from MUX2 cells:
// inputs d0..d{n-1}, selects s0..s{log2 n - 1}, output y.
GateNetlist mux_tree(std::size_t inputs);

// 4-bit x "population-count-ish" AOI/OAI mixed logic block exercising the
// complex gates; inputs d0..d3, outputs z0..z2.
GateNetlist aoi_block();

// n-bit 4-function ALU: inputs a0..a{n-1}, b0..b{n-1}, cin, op0, op1;
// outputs y0..y{n-1}, cout.  op selects AND (00), OR (01), XOR (10) or
// ADD (11); cout is the ripple carry out (meaningful for ADD).  9 gates per
// bit — alu_block(64) is the >=500-instance block the analyzer CI gate
// runs on.
GateNetlist alu_block(std::size_t bits);

// Seeded random layered combinational block: `gates` instances drawn
// uniformly from the 14-cell library over a growing net pool (distinct
// input nets per gate, every unread gate output promoted to a primary
// output).  Deterministic for a given (gates, seed) on every platform —
// the circuitgen-style scaling workload for block-level PPA studies.
GateNetlist random_logic_block(std::size_t gates, std::uint64_t seed = 1);

}  // namespace mivtx::gatelevel
