#include "gatelevel/sta.h"

#include <algorithm>

#include "common/error.h"

namespace mivtx::gatelevel {

const CellTiming& TimingModel::timing(cells::Implementation impl,
                                      cells::CellType type) const {
  const auto impl_it = cells.find(impl);
  MIVTX_EXPECT(impl_it != cells.end(), "timing model missing implementation");
  const auto it = impl_it->second.find(type);
  MIVTX_EXPECT(it != impl_it->second.end(),
               std::string("timing model missing cell ") +
                   cells::cell_name(type));
  return it->second;
}

double TimingModel::slope(cells::Implementation impl) const {
  const auto it = load_slope.find(impl);
  MIVTX_EXPECT(it != load_slope.end(), "timing model missing load slope");
  return it->second;
}

StaResult run_sta(const GateNetlist& netlist, const TimingModel& model,
                  cells::Implementation impl) {
  MIVTX_EXPECT(netlist.finalized(), "netlist not finalized");
  StaResult out;
  for (const std::string& in : netlist.primary_inputs()) {
    out.arrival[in] = ArrivalInfo{0.0, ""};
  }

  // Fanout capacitance per net: sum of driven pins' input caps; each primary
  // output carries the reference load (the 1 fF measurement condition).
  auto fanout_cap = [&](const std::string& net) {
    double c = 0.0;
    for (const Instance& reader : netlist.instances()) {
      for (const std::string& in : reader.inputs) {
        if (in == net) c += model.timing(impl, reader.type).input_cap;
      }
    }
    for (const std::string& po : netlist.primary_outputs()) {
      if (po == net) c += model.c_ref;
    }
    return c;
  };

  std::map<std::string, std::string> critical_driver;  // net -> instance
  for (const std::size_t idx : netlist.topological_order()) {
    const Instance& inst = netlist.instances()[idx];
    double worst = 0.0;
    std::string worst_net;
    for (const std::string& in : inst.inputs) {
      const auto it = out.arrival.find(in);
      MIVTX_EXPECT(it != out.arrival.end(), "missing arrival for " + in);
      if (it->second.time >= worst) {
        worst = it->second.time;
        worst_net = in;
      }
    }
    const CellTiming& t = model.timing(impl, inst.type);
    const double extra = fanout_cap(inst.output) - model.c_ref;
    const double delay =
        std::max(t.delay_ref + model.slope(impl) * extra, 0.0);
    out.arrival[inst.output] = ArrivalInfo{worst + delay, worst_net};
    critical_driver[inst.output] = inst.name;
  }

  // Worst primary output.
  for (const std::string& po : netlist.primary_outputs()) {
    const auto it = out.arrival.find(po);
    MIVTX_EXPECT(it != out.arrival.end(), "primary output unresolved: " + po);
    if (it->second.time >= out.critical_delay) {
      out.critical_delay = it->second.time;
      out.critical_output = po;
    }
  }

  // Trace the critical path back through `critical_from`.
  std::string net = out.critical_output;
  while (!net.empty() && critical_driver.count(net)) {
    out.critical_path.push_back(critical_driver.at(net));
    net = out.arrival.at(net).critical_from;
  }
  std::reverse(out.critical_path.begin(), out.critical_path.end());
  return out;
}

}  // namespace mivtx::gatelevel
