#include "gatelevel/sta.h"

#include <algorithm>

#include "common/error.h"

namespace mivtx::gatelevel {

const CellTiming& TimingModel::timing(cells::Implementation impl,
                                      cells::CellType type) const {
  const auto impl_it = cells.find(impl);
  MIVTX_EXPECT(impl_it != cells.end(), "timing model missing implementation");
  const auto it = impl_it->second.find(type);
  MIVTX_EXPECT(it != impl_it->second.end(),
               std::string("timing model missing cell ") +
                   cells::cell_name(type));
  return it->second;
}

double TimingModel::slope(cells::Implementation impl) const {
  const auto it = load_slope.find(impl);
  MIVTX_EXPECT(it != load_slope.end(), "timing model missing load slope");
  return it->second;
}

double StaLoadOptions::load_for_output(const std::string& net,
                                       double c_ref) const {
  const auto it = output_load.find(net);
  if (it != output_load.end()) return it->second;
  return default_output_load < 0.0 ? c_ref : default_output_load;
}

std::map<std::string, double> net_loads(const GateNetlist& netlist,
                                        const TimingModel& model,
                                        cells::Implementation impl,
                                        const StaLoadOptions& loads) {
  std::map<std::string, double> c;
  for (const Instance& reader : netlist.instances()) {
    const double cin = model.timing(impl, reader.type).input_cap;
    for (const std::string& in : reader.inputs) c[in] += cin;
  }
  for (const std::string& po : netlist.primary_outputs()) {
    c[po] += loads.load_for_output(po, model.c_ref);
  }
  for (const auto& [net, extra] : loads.extra_net_load) c[net] += extra;
  return c;
}

StaResult run_sta(const GateNetlist& netlist, const TimingModel& model,
                  cells::Implementation impl, const StaLoadOptions& loads) {
  MIVTX_EXPECT(netlist.finalized(), "netlist not finalized");
  StaResult out;
  for (const std::string& in : netlist.primary_inputs()) {
    out.arrival[in] = ArrivalInfo{0.0, ""};
  }

  const std::map<std::string, double> load = net_loads(netlist, model, impl,
                                                       loads);
  std::map<std::string, std::string> critical_driver;  // net -> instance
  for (const std::size_t idx : netlist.topological_order()) {
    const Instance& inst = netlist.instances()[idx];
    double worst = 0.0;
    std::string worst_net;
    for (const std::string& in : inst.inputs) {
      const auto it = out.arrival.find(in);
      MIVTX_EXPECT(it != out.arrival.end(), "missing arrival for " + in);
      if (it->second.time >= worst) {
        worst = it->second.time;
        worst_net = in;
      }
    }
    const CellTiming& t = model.timing(impl, inst.type);
    const auto load_it = load.find(inst.output);
    const double c_out = load_it == load.end() ? 0.0 : load_it->second;
    const double delay =
        std::max(t.delay_ref + model.slope(impl) * (c_out - model.c_ref),
                 0.0);
    out.arrival[inst.output] = ArrivalInfo{worst + delay, worst_net};
    critical_driver[inst.output] = inst.name;
  }

  // Worst primary output.
  for (const std::string& po : netlist.primary_outputs()) {
    const auto it = out.arrival.find(po);
    MIVTX_EXPECT(it != out.arrival.end(), "primary output unresolved: " + po);
    if (it->second.time >= out.critical_delay) {
      out.critical_delay = it->second.time;
      out.critical_output = po;
    }
  }

  // Trace the critical path back through `critical_from`.
  std::string net = out.critical_output;
  while (!net.empty() && critical_driver.count(net)) {
    out.critical_path.push_back(critical_driver.at(net));
    net = out.arrival.at(net).critical_from;
  }
  std::reverse(out.critical_path.begin(), out.critical_path.end());
  return out;
}

}  // namespace mivtx::gatelevel
