// Static timing analysis over the measured cell delays.
//
// The timing model is built from PPA measurements: each (cell, impl) gets
// its nominal delay at the reference 1 fF load, an implementation-level
// load-sensitivity slope (s/F), and a per-pin input capacitance estimated
// from the compact model's gate charge.  Arrival time of an instance is
//   max(arrival of inputs) + d0 + slope * (C_fanout - C_ref)
// where C_fanout sums the input capacitances of the driven pins (primary
// outputs count as one reference load each).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cells/netgen.h"
#include "gatelevel/netlist.h"

namespace mivtx::gatelevel {

struct CellTiming {
  double delay_ref = 0.0;  // s, at the reference load
  double input_cap = 0.0;  // F, per input pin (average)
  // Slew model used by the slack-based analyzer (analyze/sta.h); the
  // defaults degrade gracefully to the pure delay model above.
  double slew_ref = 0.0;    // s, output transition at the reference load
  double slew_slope = 0.0;  // s/F, transition sensitivity to extra load
  double slew_sens = 0.0;   // extra delay per second of input transition
};

class TimingModel {
 public:
  // Reference load the delays were measured at (the paper's 1 fF).
  double c_ref = 1e-15;
  // Delay sensitivity to extra load (s/F), per implementation.
  std::map<cells::Implementation, double> load_slope;
  // Per (impl, cell) timing data.
  std::map<cells::Implementation, std::map<cells::CellType, CellTiming>>
      cells;

  const CellTiming& timing(cells::Implementation impl,
                           cells::CellType type) const;
  double slope(cells::Implementation impl) const;
};

// External load configuration.  The original model hardcoded one reference
// load per primary output (the paper's 1 fF measurement condition); these
// options keep that default but allow per-output loads and extra lumped
// capacitance on internal nets (wire load, probe caps).
struct StaLoadOptions {
  // Load on each primary output not listed in `output_load`.
  // Negative = use the timing model's reference load c_ref.
  double default_output_load = -1.0;
  // Per-primary-output load overrides (F).
  std::map<std::string, double> output_load;
  // Additional lumped capacitance per net (F), applied on top of the pin
  // and output loads (any net, not just outputs).
  std::map<std::string, double> extra_net_load;

  // Effective load a primary output contributes.
  double load_for_output(const std::string& net, double c_ref) const;
};

struct ArrivalInfo {
  double time = 0.0;          // s
  std::string critical_from;  // driving net on the critical input
};

struct StaResult {
  // Arrival time per net (primary inputs at 0).
  std::map<std::string, ArrivalInfo> arrival;
  // Worst primary-output arrival and the critical path to it, as a list of
  // instance names from input to output.
  double critical_delay = 0.0;
  std::string critical_output;
  std::vector<std::string> critical_path;
};

StaResult run_sta(const GateNetlist& netlist, const TimingModel& model,
                  cells::Implementation impl,
                  const StaLoadOptions& loads = {});

// Capacitive load of every net in one sweep: driven pin input caps +
// primary-output loads + any extra net load.  Shared by the arrival-only
// STA above and the slack-based analyzer (analyze/sta.h) so both see
// identical electricals (and neither pays the per-net instance scan).
std::map<std::string, double> net_loads(const GateNetlist& netlist,
                                        const TimingModel& model,
                                        cells::Implementation impl,
                                        const StaLoadOptions& loads);

}  // namespace mivtx::gatelevel
