#include "layout/cell_layout.h"

#include <algorithm>
#include <set>

#include "cells/topology.h"
#include "common/error.h"

namespace mivtx::layout {

int count_gate_nets(cells::CellType type) {
  const cells::CellTopology& topo = cells::cell_topology(type);
  std::set<std::string> nets;
  for (const cells::MosInstance& m : topo.fets) {
    if (!m.pmos) nets.insert(m.gate);
  }
  return static_cast<int>(nets.size());
}

double diffusion_row_width(const DesignRules& r, std::size_t n_fets,
                           bool shared_diffusion) {
  const double device_pitch = 2.0 * r.spacer + r.gate_length + r.sd_length;
  if (shared_diffusion) {
    return r.sd_length + static_cast<double>(n_fets) * device_pitch;
  }
  // Isolated devices: full footprint each plus an M1 separation between
  // neighbours.
  const double full = r.sd_length + device_pitch;  // sd | sp g sp | sd
  return static_cast<double>(n_fets) * full +
         static_cast<double>(n_fets > 0 ? n_fets - 1 : 0) * r.m1_space;
}

double external_miv_width(const DesignRules& r) {
  return std::max(r.miv_keepout_edge() - r.miv_keepout_overlap, 0.0);
}

CellLayout LayoutModel::layout_cell(cells::CellType type,
                                    cells::Implementation impl) const {
  using cells::Implementation;
  const DesignRules& r = rules_;
  const cells::CellTopology& topo = cells::cell_topology(type);
  const std::size_t n_n = topo.num_nmos();
  const std::size_t n_p = topo.num_pmos();

  CellLayout out;
  out.type = type;
  out.impl = impl;

  // Bottom tier: p-type devices, always traditional FDSOI.
  out.bottom.width = diffusion_row_width(r, n_p, /*shared_diffusion=*/true);
  out.bottom.height = r.device_width;

  const double via_stem = r.miv_size + 2.0 * r.miv_liner;  // 27 nm

  // Effective width an external-contact MIV adds to the 2D top tier: the
  // keep-out square partially overlaps the contact landing area already
  // present beside the gate (the via lands on the gate strap), so only the
  // non-overlapped part costs area (see DesignRules::miv_keepout_overlap).
  const double ext_miv_width = external_miv_width(r);
  // M1 allowance per S/D contact strap of the wide 1-channel device (§III:
  // "Source and Drain contacts should have minimum M1 spacing").
  const double kOneChStrap = 16e-9;

  switch (impl) {
    case Implementation::k2D: {
      out.external_mivs = count_gate_nets(type);
      out.top.width = diffusion_row_width(r, n_n, true) +
                      static_cast<double>(out.external_mivs) * ext_miv_width;
      // Contact landing track above the row for the via strip.
      out.top.height = r.device_width + r.m1_width;
      break;
    }
    case Implementation::kMiv1Channel: {
      // Via fused with the gate end: stem extends the row; the wide single
      // channel needs an M1 allowance per device for the S/D contact strap.
      out.top.width = diffusion_row_width(r, n_n, true) +
                      static_cast<double>(n_n) * kOneChStrap;
      out.top.height = r.device_width + via_stem;
      break;
    }
    case Implementation::kMiv2Channel: {
      // Two W/2 channels flank the central via row; contacts land on
      // opposite sides so no strap allowance is needed.
      out.top.width = diffusion_row_width(r, n_n, true);
      out.top.height = r.device_width + via_stem;
      break;
    }
    case Implementation::kMiv4Channel: {
      // Four W/4 channels around the via: the most compact device height
      // (two quarter-width channels stacked around the stem), but the
      // split S/D regions need per-device M1 strap separation in the row
      // plus a strap track above it.
      out.top.width = diffusion_row_width(r, n_n, true) +
                      static_cast<double>(n_n) * r.m1_space;
      out.top.height = 2.0 * (r.device_width / 4.0) + via_stem +
                       2.0 * r.spacer + r.m1_width;
      break;
    }
  }

  const double w = std::max(out.top.width, out.bottom.width);
  const double h = std::max(out.top.height, out.bottom.height);
  out.cell_width = w + 2.0 * r.cell_margin;
  out.cell_height = h + 2.0 * r.rail_track;
  return out;
}

}  // namespace mivtx::layout
