// Rule-driven layout area model for the two-tier standard cells
// (paper Fig. 5(c) and the substrate-area discussion in §IV).
//
// Geometry model per tier: one diffusion row of transistors with shared
// source/drain regions (row width = sd + n*(sp + gate + sp + sd)), plus
// per-implementation extras:
//   * 2D:   every net feeding an n-type gate needs an external-contact MIV
//           whose keep-out square (via + liner + M1 separation ring) sits
//           beside the gate it contacts, costing top-tier width; the via
//           strip also raises the top row by a contact landing track.
//   * 1-ch: the via merges with the gate end - no keep-out - but the via
//           stem extends the row height and the S/D contacts of the wide
//           single channel need an M1-separation allowance per cell.
//   * 2-ch: two half-width channels flank the central via row; the row
//           height is 2*(W/2) + via stem, with no keep-out and no M1
//           allowance (contacts land on opposite sides).
//   * 4-ch: quarter-width channels surround the via, giving the most
//           compact transistor, but S/D regions sit on both sides: no
//           diffusion sharing (full pitch per device) and one extra M1
//           routing track per cell to strap the split S/D regions.
// Cell area uses the paper's rule: max of the two tiers' dimensions (the
// placer must align both tiers), plus rail tracks and cell margins.
// Substrate area sums the two tiers independently (the "up to 31 %" claim
// assumes per-tier placement).
#pragma once

#include "cells/celltypes.h"
#include "cells/netgen.h"
#include "layout/rules.h"

namespace mivtx::layout {

struct TierFootprint {
  double width = 0.0;   // m
  double height = 0.0;  // m
  double area() const { return width * height; }
};

struct CellLayout {
  cells::CellType type = cells::CellType::kInv1;
  cells::Implementation impl = cells::Implementation::k2D;
  TierFootprint top;     // n-type tier
  TierFootprint bottom;  // p-type tier
  double cell_width = 0.0;
  double cell_height = 0.0;
  int external_mivs = 0;  // keep-out-paying vias (2D only)

  double cell_area() const { return cell_width * cell_height; }
  double substrate_area() const { return top.area() + bottom.area(); }
};

class LayoutModel {
 public:
  explicit LayoutModel(DesignRules rules = {}) : rules_(rules) {}
  const DesignRules& rules() const { return rules_; }

  CellLayout layout_cell(cells::CellType type,
                         cells::Implementation impl) const;

 private:
  DesignRules rules_;
};

// Width of a diffusion row of n transistors (shared S/D regions, or isolated
// full-footprint devices with an M1 separation between neighbours).  Shared
// by the layout model and the lint KOZ checks (lint/cell_rules.h).
double diffusion_row_width(const DesignRules& rules, std::size_t n_fets,
                           bool shared_diffusion);

// Effective top-tier width one external-contact MIV adds in the 2D
// implementation: the keep-out square minus the landing-area overlap.
double external_miv_width(const DesignRules& rules);

// Count of nets feeding at least one n-type gate (the external-contact MIVs
// a 2D implementation pays keep-out for).
int count_gate_nets(cells::CellType type);

}  // namespace mivtx::layout
