// Layout design rules for the assumed 2-layer M3D FDSOI process
// (paper Table I + §IV assumptions, 7nm-PDK-flavored).
#pragma once

namespace mivtx::layout {

struct DesignRules {
  // All dimensions in meters.
  double gate_length = 24e-9;   // L_G
  double spacer = 10e-9;        // gate spacer, each side
  double sd_length = 48e-9;     // l_src: contacted source/drain length
  double device_width = 192e-9; // w_src: drawn equivalent width
  double m1_width = 24e-9;
  double m1_space = 24e-9;      // minimum M1 separation (area comparisons)
  double via_size = 24e-9;
  double miv_size = 25e-9;      // t_miv
  double miv_liner = 1e-9;      // oxide liner each side of the via
  double rail_track = 48e-9;    // per-tier supply rail allocation (height)
  double cell_margin = 24e-9;   // boundary margin per side (width)
  // Part of the keep-out square that overlaps the contact landing area
  // already present beside the gate the via lands on.  Calibration
  // constant: exact mask geometry is not recoverable from the paper, so it
  // is set such that the 14-cell average area deltas reproduce the
  // reported -9 % / -18 % / -12 % (see bench_fig5c_area).
  double miv_keepout_overlap = 43e-9;

  // Keep-out ring width around an external-contact MIV: the via must stay
  // an M1 separation away from any device/metal on the top tier.
  double miv_keepout_ring() const { return m1_space; }
  // Full keep-out square edge for an external-contact MIV.
  double miv_keepout_edge() const {
    return miv_size + 2.0 * miv_liner + 2.0 * miv_keepout_ring();
  }
};

}  // namespace mivtx::layout
