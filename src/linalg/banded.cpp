#include "linalg/banded.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mivtx::linalg {

BandedMatrix::BandedMatrix(std::size_t n, std::size_t kl, std::size_t ku)
    : n_(n), kl_(kl), ku_(ku), ldab_(2 * kl + ku + 1),
      store_(ldab_ * n, 0.0) {
  MIVTX_EXPECT(n > 0, "banded: empty matrix");
  MIVTX_EXPECT(kl < n && ku < n, "banded: bandwidth >= n");
}

bool BandedMatrix::in_band(std::size_t r, std::size_t c) const {
  return (c + kl_ >= r) && (r + ku_ >= c);
}

std::size_t BandedMatrix::index(std::size_t r, std::size_t c) const {
  // gbtrf layout: entry (r, c) stored at row (kl + ku + r - c) of column c.
  const std::size_t band_row = kl_ + ku_ + r - c;
  return c * ldab_ + band_row;
}

double BandedMatrix::at(std::size_t r, std::size_t c) const {
  MIVTX_EXPECT(r < n_ && c < n_, "banded: index out of range");
  if (!in_band(r, c)) return 0.0;
  return store_[index(r, c)];
}

void BandedMatrix::set(std::size_t r, std::size_t c, double v) {
  MIVTX_EXPECT(r < n_ && c < n_, "banded: index out of range");
  MIVTX_EXPECT(in_band(r, c), "banded: write outside band");
  store_[index(r, c)] = v;
}

void BandedMatrix::add(std::size_t r, std::size_t c, double v) {
  MIVTX_EXPECT(r < n_ && c < n_, "banded: index out of range");
  MIVTX_EXPECT(in_band(r, c), "banded: write outside band");
  store_[index(r, c)] += v;
}

void BandedMatrix::set_zero() {
  std::fill(store_.begin(), store_.end(), 0.0);
}

Vector BandedMatrix::multiply(const Vector& x) const {
  MIVTX_EXPECT(x.size() == n_, "banded multiply: size mismatch");
  Vector y(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    const std::size_t c0 = (r > kl_) ? r - kl_ : 0;
    const std::size_t c1 = std::min(n_ - 1, r + ku_);
    double s = 0.0;
    for (std::size_t c = c0; c <= c1; ++c) s += store_[index(r, c)] * x[c];
    y[r] = s;
  }
  return y;
}

BandedLU::BandedLU(BandedMatrix a) : lu_(std::move(a)) {
  const std::size_t n = lu_.n_;
  const std::size_t kl = lu_.kl_;
  const std::size_t ku = lu_.ku_;
  pivots_.resize(n);

  // Effective upper bandwidth after pivoting grows to kl + ku.
  const std::size_t kv = kl + ku;
  for (std::size_t j = 0; j < n; ++j) {
    // Find pivot in column j among rows j .. min(j+kl, n-1).
    const std::size_t rmax = std::min(j + kl, n - 1);
    std::size_t p = j;
    double best = std::fabs(lu_.store_[lu_.index(j, j)]);
    for (std::size_t r = j + 1; r <= rmax; ++r) {
      const double v = std::fabs(lu_.store_[lu_.index(r, j)]);
      if (v > best) {
        best = v;
        p = r;
      }
    }
    MIVTX_EXPECT(best > 0.0 && std::isfinite(best),
                 "singular matrix in BandedLU at column " + std::to_string(j));
    pivots_[j] = p;
    if (p != j) {
      // Swap rows j and p across the accessible band columns.
      const std::size_t cend = std::min(j + kv, n - 1);
      for (std::size_t c = j; c <= cend; ++c) {
        std::swap(lu_.store_[lu_.index(j, c)], lu_.store_[lu_.index(p, c)]);
      }
    }
    const double inv = 1.0 / lu_.store_[lu_.index(j, j)];
    for (std::size_t r = j + 1; r <= rmax; ++r) {
      const double f = lu_.store_[lu_.index(r, j)] * inv;
      lu_.store_[lu_.index(r, j)] = f;
      if (f == 0.0) continue;
      const std::size_t cend = std::min(j + kv, n - 1);
      for (std::size_t c = j + 1; c <= cend; ++c) {
        lu_.store_[lu_.index(r, c)] -= f * lu_.store_[lu_.index(j, c)];
      }
    }
  }
}

void BandedLU::solve_in_place(Vector& b) const {
  const std::size_t n = lu_.n_;
  const std::size_t kl = lu_.kl_;
  const std::size_t kv = lu_.kl_ + lu_.ku_;
  MIVTX_EXPECT(b.size() == n, "banded solve: rhs size mismatch");
  // Apply permutation + forward substitution.
  for (std::size_t j = 0; j < n; ++j) {
    if (pivots_[j] != j) std::swap(b[j], b[pivots_[j]]);
    const double bj = b[j];
    if (bj == 0.0) continue;
    const std::size_t rmax = std::min(j + kl, n - 1);
    for (std::size_t r = j + 1; r <= rmax; ++r)
      b[r] -= lu_.store_[lu_.index(r, j)] * bj;
  }
  // Back substitution.
  for (std::size_t jj = n; jj-- > 0;) {
    const std::size_t cend = std::min(jj + kv, n - 1);
    double s = b[jj];
    for (std::size_t c = jj + 1; c <= cend; ++c)
      s -= lu_.store_[lu_.index(jj, c)] * b[c];
    b[jj] = s / lu_.store_[lu_.index(jj, jj)];
  }
}

Vector BandedLU::solve(const Vector& b) const {
  Vector x = b;
  solve_in_place(x);
  return x;
}

Vector solve_banded(BandedMatrix a, const Vector& b) {
  return BandedLU(std::move(a)).solve(b);
}

}  // namespace mivtx::linalg
