// Banded matrix storage and LU factorization with partial pivoting
// (LAPACK gbtrf-style layout).
//
// The TCAD finite-volume discretization on a structured nx-by-ny grid
// produces matrices with bandwidth min(nx, ny) after natural ordering, so a
// banded solver gives near-linear-time factorizations without a general
// sparse LU.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vector_ops.h"

namespace mivtx::linalg {

// Square banded matrix with kl sub-diagonals and ku super-diagonals.
// Storage keeps kl extra super-diagonals for pivoting fill-in.
class BandedMatrix {
 public:
  BandedMatrix(std::size_t n, std::size_t kl, std::size_t ku);

  std::size_t size() const { return n_; }
  std::size_t lower_bandwidth() const { return kl_; }
  std::size_t upper_bandwidth() const { return ku_; }

  // Accessors valid only for |r - c| within the band; out-of-band reads
  // return 0, out-of-band writes are an error.
  double at(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, double v);
  void add(std::size_t r, std::size_t c, double v);

  void set_zero();
  Vector multiply(const Vector& x) const;

 private:
  friend class BandedLU;
  bool in_band(std::size_t r, std::size_t c) const;
  // Element (r, c) lives at store_[index(r, c)] when in the widened band.
  std::size_t index(std::size_t r, std::size_t c) const;

  std::size_t n_, kl_, ku_;
  std::size_t ldab_;  // rows of the band store: 2*kl + ku + 1
  std::vector<double> store_;
};

class BandedLU {
 public:
  explicit BandedLU(BandedMatrix a);

  Vector solve(const Vector& b) const;
  void solve_in_place(Vector& b) const;

 private:
  BandedMatrix lu_;
  std::vector<std::size_t> pivots_;
};

Vector solve_banded(BandedMatrix a, const Vector& b);

}  // namespace mivtx::linalg
