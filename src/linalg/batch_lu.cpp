#include "linalg/batch_lu.h"

#include "common/error.h"

namespace mivtx::linalg {

namespace batchlu {

bool avx2_compiled() {
#if defined(MIVTX_SIMD_AVX2)
  return true;
#else
  return false;
#endif
}

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

#if !defined(MIVTX_SIMD_AVX2)
// Link-safety stubs for MIVTX_SIMD=OFF builds; bind() never selects the
// AVX2 kernel when it is not compiled in.
bool refactorize_avx2(const View&, const double*, double*, double*, double*,
                      double*, unsigned char*) {
  __builtin_trap();
}
void solve_avx2(const View&, const double*, const double*, const double*,
                double*, double*) {
  __builtin_trap();
}
#endif

}  // namespace batchlu

void BatchSparseLU::bind(const SparseLU& ref, std::size_t lanes,
                         bool allow_simd) {
  MIVTX_EXPECT(ref.analyzed() && ref.factorized(),
               "BatchSparseLU::bind needs a factorized reference");
  MIVTX_EXPECT(lanes >= 1, "BatchSparseLU::bind: no lanes");
  ref_ = &ref;
  lanes_ = lanes;
  stride_ = (lanes + 3) & ~std::size_t{3};
  use_avx2_ =
      allow_simd && batchlu::avx2_compiled() && batchlu::cpu_has_avx2();

  const std::size_t n = ref.size();
  view_.n = n;
  view_.stride = stride_;
  view_.col_ptr = ref.col_ptr_.data();
  view_.row_idx = ref.row_idx_.data();
  view_.csc_src = ref.csc_src_.data();
  view_.colperm = ref.colperm_.data();
  view_.lp = ref.lp_.data();
  view_.li = ref.li_.data();
  view_.up = ref.up_.data();
  view_.ui = ref.ui_.data();
  view_.pat_ptr = ref.pat_ptr_.data();
  view_.pat_row = ref.pat_row_.data();
  view_.pinv = ref.pinv_.data();
  view_.piv_row = ref.piv_row_.data();
  view_.pivot_tol = ref.refactor_pivot_tol;

  lx_.assign(ref.lx_.size() * stride_, 0.0);
  ux_.assign(ref.ux_.size() * stride_, 0.0);
  udiag_.assign(n * stride_, 0.0);
  work_.assign((n + 1) * stride_, 0.0);
  xperm_.assign(n * stride_, 0.0);
}

bool BatchSparseLU::refactorize(const double* values_soa,
                                unsigned char* lane_ok) {
  MIVTX_EXPECT(bound(), "BatchSparseLU::refactorize before bind");
  for (std::size_t j = 0; j < stride_; ++j) lane_ok[j] = 1;
  if (use_avx2_) {
    return batchlu::refactorize_avx2(view_, values_soa, lx_.data(), ux_.data(),
                                     udiag_.data(), work_.data(), lane_ok);
  }
  return batchlu::refactorize_portable(view_, values_soa, lx_.data(),
                                       ux_.data(), udiag_.data(), work_.data(),
                                       lane_ok);
}

void BatchSparseLU::solve(double* b_soa) {
  MIVTX_EXPECT(bound(), "BatchSparseLU::solve before bind");
  if (use_avx2_) {
    batchlu::solve_avx2(view_, lx_.data(), ux_.data(), udiag_.data(), b_soa,
                        xperm_.data());
    return;
  }
  batchlu::solve_portable(view_, lx_.data(), ux_.data(), udiag_.data(), b_soa,
                          xperm_.data());
}

}  // namespace mivtx::linalg
