// Lane-packed numeric sparse LU: the cross-corner twin of SparseLU.
//
// A lockstep multi-corner Newton solve factors K matrices per iteration
// that share one sparsity pattern and differ only by small parameter
// perturbations (bsimsoi corner/Monte-Carlo lanes).  Re-running the
// scalar refactorize()/solve() per lane walks the same index schedule K
// times; BatchSparseLU walks it once and carries the K value lanes
// through every update as a SIMD block (SoA, lane-minor: entry e of lane
// j lives at soa[e * stride() + j]).
//
// The pivot order, fill pattern and replay schedule are ADOPTED from a
// factorized reference SparseLU (typically lane 0) — Gilbert-Peierls
// reach is purely structural for a fixed pivot sequence, so the replay is
// exact for every lane.  Numerical safety is the same contract scalar
// refactorize() gives time-varying values: each lane's pivots are checked
// against refactor_pivot_tol, and a degraded lane is flagged in
// `lane_ok` so the caller can re-pivot that lane through its own scalar
// SparseLU while the healthy lanes keep the shared schedule.
//
// Two kernel builds mirror the bsimsoi batch kernel: a portable
// scalar-lane build (always compiled) and an AVX2+FMA build (own TU,
// compiled only with MIVTX_SIMD=ON) selected at bind() time via CPUID.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/sparse_lu.h"

namespace mivtx::linalg {

namespace batchlu {

// Borrowed pointers into the reference SparseLU's schedule plus the lane
// geometry — everything the kernel TUs need without befriending SparseLU.
struct View {
  std::size_t n = 0;
  std::size_t stride = 0;  // lanes rounded up to the 4-lane block
  const std::size_t* col_ptr = nullptr;
  const std::size_t* row_idx = nullptr;
  const std::size_t* csc_src = nullptr;
  const std::size_t* colperm = nullptr;
  const std::size_t* lp = nullptr;
  const std::size_t* li = nullptr;
  const std::size_t* up = nullptr;
  const std::size_t* ui = nullptr;
  const std::size_t* pat_ptr = nullptr;
  const std::size_t* pat_row = nullptr;
  const std::size_t* pinv = nullptr;
  const std::size_t* piv_row = nullptr;
  double pivot_tol = 1e-3;
};

// `work` is (n + 1) * stride doubles (the extra row holds the per-lane
// column max of the pivot-acceptance check).  Returns true when every
// lane's pivots held; failed lanes have lane_ok[j] cleared (their factor
// lanes are garbage) and the healthy lanes stay fully usable.
bool refactorize_portable(const View& v, const double* values_soa, double* lx,
                          double* ux, double* udiag, double* work,
                          unsigned char* lane_ok);
void solve_portable(const View& v, const double* lx, const double* ux,
                    const double* udiag, double* b_soa, double* xperm);
bool refactorize_avx2(const View& v, const double* values_soa, double* lx,
                      double* ux, double* udiag, double* work,
                      unsigned char* lane_ok);
void solve_avx2(const View& v, const double* lx, const double* ux,
                const double* udiag, double* b_soa, double* xperm);
// True when the AVX2 TU was compiled in (MIVTX_SIMD=ON).
bool avx2_compiled();
// True when the running CPU reports AVX2 + FMA.
bool cpu_has_avx2();

}  // namespace batchlu

class BatchSparseLU {
 public:
  // Adopt the schedule of `ref` (analyzed + factorized; must outlive this
  // object and not be re-factorized between bind() and the last
  // refactorize/solve — re-bind after every ref.factorize()).
  // `allow_simd` gates the AVX2 kernel; the CPU capability is still
  // checked at runtime.
  void bind(const SparseLU& ref, std::size_t lanes, bool allow_simd);
  bool bound() const { return ref_ != nullptr; }
  std::size_t lanes() const { return lanes_; }
  // Lane stride of every SoA array (lanes rounded up to the 4-lane
  // block).  Pad lanes (index >= lanes()) must be filled with a copy of a
  // real lane so the kernel never touches non-finite garbage.
  std::size_t stride() const { return stride_; }
  bool simd_active() const { return use_avx2_; }

  // Numeric refactorization of all lanes at once; values_soa is
  // ref.factor-pattern CSR values, nnz x stride() lane-minor.  lane_ok
  // must hold stride() entries; entry j is set to 0 when lane j's pivot
  // degraded past ref.refactor_pivot_tol (that lane's factors are
  // unusable until the next refactorize; other lanes are unaffected).
  // Returns true when every lane (including pads) passed.
  bool refactorize(const double* values_soa, unsigned char* lane_ok);

  // In-place solve of all lanes: b_soa is n x stride() lane-minor, and
  // receives x.  Lanes flagged by the last refactorize produce garbage.
  void solve(double* b_soa);

 private:
  const SparseLU* ref_ = nullptr;
  std::size_t lanes_ = 0;
  std::size_t stride_ = 0;
  bool use_avx2_ = false;
  batchlu::View view_;
  std::vector<double> lx_, ux_, udiag_, work_, xperm_;
};

}  // namespace mivtx::linalg
