// AVX2+FMA build of the lane-packed sparse-LU kernel: each 4-lane block
// of the SoA factor arrays is one __m256d.  Compiled with -mavx2 -mfma
// (set per-source in CMake) and only when the MIVTX_SIMD option is ON;
// batch_lu_portable.cpp carries the link-safety stubs otherwise.
#if defined(MIVTX_SIMD_AVX2)

#include <cmath>
#include <immintrin.h>

#include "linalg/batch_lu_kernel_impl.h"

namespace mivtx::linalg::batchlu {

namespace {

struct LanesAvx2 {
  static void store_zero(double* dst) {
    _mm256_storeu_pd(dst, _mm256_setzero_pd());
  }
  static void copy(double* dst, const double* src) {
    _mm256_storeu_pd(dst, _mm256_loadu_pd(src));
  }
  static void fnma(double* w, const double* a, const double* x) {
    _mm256_storeu_pd(w, _mm256_fnmadd_pd(_mm256_loadu_pd(a),
                                         _mm256_loadu_pd(x),
                                         _mm256_loadu_pd(w)));
  }
  static void div(double* dst, const double* num, const double* den) {
    _mm256_storeu_pd(dst,
                     _mm256_div_pd(_mm256_loadu_pd(num), _mm256_loadu_pd(den)));
  }
  static void max_abs(double* acc, const double* w) {
    const __m256d mask = _mm256_set1_pd(-0.0);
    const __m256d a = _mm256_andnot_pd(mask, _mm256_loadu_pd(w));
    _mm256_storeu_pd(acc, _mm256_max_pd(_mm256_loadu_pd(acc), a));
  }
  static bool pivot_ok(double pivot, double colmax, double tol) {
    const double a = std::fabs(pivot);
    return std::isfinite(pivot) && a > 0.0 && a >= tol * colmax;
  }
};

}  // namespace

bool refactorize_avx2(const View& v, const double* values_soa, double* lx,
                      double* ux, double* udiag, double* work,
                      unsigned char* lane_ok) {
  return refactorize_t<LanesAvx2>(v, values_soa, lx, ux, udiag, work, lane_ok);
}

void solve_avx2(const View& v, const double* lx, const double* ux,
                const double* udiag, double* b_soa, double* xperm) {
  solve_t<LanesAvx2>(v, lx, ux, udiag, b_soa, xperm);
}

}  // namespace mivtx::linalg::batchlu

#endif  // MIVTX_SIMD_AVX2
