// Shared body of the lane-packed sparse-LU kernel, included by exactly
// two translation units: batch_lu_portable.cpp (scalar lanes) and
// batch_lu_avx2.cpp (4 x double AVX2+FMA lanes).
//
// The algorithm is scalar SparseLU::refactorize()/solve() with the lane
// dimension innermost: every index-schedule step applies to a 4-lane
// block at a time, and the stride is always a multiple of 4 (pad lanes
// replicate a real lane), so there are no scalar tails.  A lane whose
// pivot degrades is flagged and keeps flowing through the arithmetic —
// its inf/nan stay confined to that lane's slots.
//
// The lane type V supplies load/store, fused w -= a*x, division, |max|
// accumulation and a finite/dominance test; everything else is generic.
#pragma once

#include <cstddef>

#include "linalg/batch_lu.h"

namespace mivtx::linalg::batchlu {

template <class V>
bool refactorize_t(const View& s, const double* values_soa, double* lx,
                   double* ux, double* udiag, double* work,
                   unsigned char* lane_ok) {
  const std::size_t K = s.stride;
  double* colmax = work + s.n * K;  // scratch row appended by the caller
  bool all_ok = true;

  for (std::size_t k = 0; k < s.n; ++k) {
    const std::size_t col = s.colperm[k];
    const std::size_t p0 = s.pat_ptr[k], p1 = s.pat_ptr[k + 1];
    for (std::size_t p = p0; p < p1; ++p) {
      double* w = work + s.pat_row[p] * K;
      for (std::size_t b = 0; b < K; b += 4) V::store_zero(w + b);
    }
    for (std::size_t p = s.col_ptr[col]; p < s.col_ptr[col + 1]; ++p) {
      double* w = work + s.row_idx[p] * K;
      const double* src = values_soa + s.csc_src[p] * K;
      for (std::size_t b = 0; b < K; b += 4) V::copy(w + b, src + b);
    }
    // Replay the recorded topological update schedule (U part).
    std::size_t uc = s.up[k];
    for (std::size_t p = p0; p < p1; ++p) {
      const std::size_t i = s.pat_row[p];
      const std::size_t j = s.pinv[i];
      if (j >= k) continue;
      const double* xj = work + i * K;
      double* uxp = ux + uc * K;
      ++uc;
      for (std::size_t b = 0; b < K; b += 4) V::copy(uxp + b, xj + b);
      for (std::size_t q = s.lp[j]; q < s.lp[j + 1]; ++q) {
        double* w = work + s.li[q] * K;
        const double* l = lx + q * K;
        for (std::size_t b = 0; b < K; b += 4)
          V::fnma(w + b, l + b, xj + b);  // w -= l * xj
      }
    }
    // Per-lane pivot acceptance against the lane's own column max.
    const double* piv = work + s.piv_row[k] * K;
    for (std::size_t b = 0; b < K; b += 4) V::store_zero(colmax + b);
    for (std::size_t p = p0; p < p1; ++p) {
      const std::size_t i = s.pat_row[p];
      if (s.pinv[i] < k) continue;
      const double* w = work + i * K;
      for (std::size_t b = 0; b < K; b += 4) V::max_abs(colmax + b, w + b);
    }
    for (std::size_t j = 0; j < K; ++j) {
      if (!V::pivot_ok(piv[j], colmax[j], s.pivot_tol)) {
        lane_ok[j] = 0;
        all_ok = false;
      }
    }
    double* ud = udiag + k * K;
    std::size_t lc = s.lp[k];
    for (std::size_t b = 0; b < K; b += 4) V::copy(ud + b, piv + b);
    for (std::size_t p = p0; p < p1; ++p) {
      const std::size_t i = s.pat_row[p];
      if (s.pinv[i] <= k) continue;
      double* lxp = lx + lc * K;
      ++lc;
      const double* w = work + i * K;
      for (std::size_t b = 0; b < K; b += 4)
        V::div(lxp + b, w + b, piv + b);
    }
  }
  return all_ok;
}

template <class V>
void solve_t(const View& s, const double* lx, const double* ux,
             const double* udiag, double* b_soa, double* xperm) {
  const std::size_t K = s.stride;
  const std::size_t n = s.n;
  // Row permutation: P b.
  for (std::size_t k = 0; k < n; ++k) {
    const double* src = b_soa + s.piv_row[k] * K;
    double* dst = xperm + k * K;
    for (std::size_t b = 0; b < K; b += 4) V::copy(dst + b, src + b);
  }
  // Forward substitution, unit-diagonal L (rows stored as original ids).
  for (std::size_t k = 0; k < n; ++k) {
    const double* xk = xperm + k * K;
    for (std::size_t q = s.lp[k]; q < s.lp[k + 1]; ++q) {
      double* t = xperm + s.pinv[s.li[q]] * K;
      const double* l = lx + q * K;
      for (std::size_t b = 0; b < K; b += 4) V::fnma(t + b, l + b, xk + b);
    }
  }
  // Back substitution on column-stored U.
  for (std::size_t kk = n; kk-- > 0;) {
    double* xk = xperm + kk * K;
    const double* ud = udiag + kk * K;
    for (std::size_t b = 0; b < K; b += 4) V::div(xk + b, xk + b, ud + b);
    for (std::size_t q = s.up[kk]; q < s.up[kk + 1]; ++q) {
      double* t = xperm + s.ui[q] * K;
      const double* u = ux + q * K;
      for (std::size_t b = 0; b < K; b += 4) V::fnma(t + b, u + b, xk + b);
    }
  }
  // Column permutation: x = Q y.
  for (std::size_t k = 0; k < n; ++k) {
    const double* src = xperm + k * K;
    double* dst = b_soa + s.colperm[k] * K;
    for (std::size_t b = 0; b < K; b += 4) V::copy(dst + b, src + b);
  }
}

}  // namespace mivtx::linalg::batchlu
