// Portable build of the lane-packed sparse-LU kernel: plain double loops
// over each 4-lane block.  Always compiled; the baseline every platform
// gets and the reference the AVX2 build is tested against.
#include <cmath>

#include "linalg/batch_lu_kernel_impl.h"

namespace mivtx::linalg::batchlu {

namespace {

struct LanesPortable {
  static void store_zero(double* dst) {
    for (int j = 0; j < 4; ++j) dst[j] = 0.0;
  }
  static void copy(double* dst, const double* src) {
    for (int j = 0; j < 4; ++j) dst[j] = src[j];
  }
  static void fnma(double* w, const double* a, const double* x) {
    for (int j = 0; j < 4; ++j) w[j] -= a[j] * x[j];
  }
  static void div(double* dst, const double* num, const double* den) {
    for (int j = 0; j < 4; ++j) dst[j] = num[j] / den[j];
  }
  static void max_abs(double* acc, const double* w) {
    for (int j = 0; j < 4; ++j) {
      const double v = std::fabs(w[j]);
      if (v > acc[j]) acc[j] = v;
    }
  }
  static bool pivot_ok(double pivot, double colmax, double tol) {
    const double a = std::fabs(pivot);
    return std::isfinite(pivot) && a > 0.0 && a >= tol * colmax;
  }
};

}  // namespace

bool refactorize_portable(const View& v, const double* values_soa, double* lx,
                          double* ux, double* udiag, double* work,
                          unsigned char* lane_ok) {
  return refactorize_t<LanesPortable>(v, values_soa, lx, ux, udiag, work,
                                      lane_ok);
}

void solve_portable(const View& v, const double* lx, const double* ux,
                    const double* udiag, double* b_soa, double* xperm) {
  solve_t<LanesPortable>(v, lx, ux, udiag, b_soa, xperm);
}

}  // namespace mivtx::linalg::batchlu
