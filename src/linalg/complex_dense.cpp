#include "linalg/complex_dense.h"

#include <cmath>

#include "common/error.h"

namespace mivtx::linalg {

ComplexDenseMatrix::ComplexDenseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols) {}

ComplexDenseMatrix::ComplexDenseMatrix(const DenseMatrix& real_part,
                                       const DenseMatrix& imag_part,
                                       double imag_scale)
    : ComplexDenseMatrix(real_part.rows(), real_part.cols()) {
  MIVTX_EXPECT(real_part.rows() == imag_part.rows() &&
                   real_part.cols() == imag_part.cols(),
               "complex matrix: shape mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      (*this)(r, c) =
          Complex(real_part(r, c), imag_scale * imag_part(r, c));
    }
  }
}

ComplexVector ComplexDenseMatrix::multiply(const ComplexVector& x) const {
  MIVTX_EXPECT(x.size() == cols_, "complex multiply: size mismatch");
  ComplexVector y(rows_, Complex(0.0, 0.0));
  for (std::size_t r = 0; r < rows_; ++r) {
    Complex s(0.0, 0.0);
    for (std::size_t c = 0; c < cols_; ++c) s += (*this)(r, c) * x[c];
    y[r] = s;
  }
  return y;
}

ComplexDenseLU::ComplexDenseLU(ComplexDenseMatrix a) : lu_(std::move(a)) {
  MIVTX_EXPECT(lu_.rows() == lu_.cols(), "complex LU needs a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t p = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        p = r;
      }
    }
    MIVTX_EXPECT(best > 0.0 && std::isfinite(best),
                 "singular matrix in ComplexDenseLU");
    if (p != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(p, c));
      std::swap(perm_[k], perm_[p]);
    }
    const Complex inv = Complex(1.0, 0.0) / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const Complex f = lu_(r, k) * inv;
      lu_(r, k) = f;
      if (f == Complex(0.0, 0.0)) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= f * lu_(k, c);
    }
  }
}

ComplexVector ComplexDenseLU::solve(const ComplexVector& b) const {
  const std::size_t n = lu_.rows();
  MIVTX_EXPECT(b.size() == n, "complex solve: rhs size mismatch");
  ComplexVector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    Complex s = x[i];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    Complex s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * x[j];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

ComplexVector solve_complex_dense(ComplexDenseMatrix a,
                                  const ComplexVector& b) {
  return ComplexDenseLU(std::move(a)).solve(b);
}

}  // namespace mivtx::linalg
