// Complex dense matrix and LU solver for small-signal (AC) analysis:
// systems of the form (G + j*omega*C) x = b.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "linalg/dense.h"

namespace mivtx::linalg {

using Complex = std::complex<double>;
using ComplexVector = std::vector<Complex>;

class ComplexDenseMatrix {
 public:
  ComplexDenseMatrix() = default;
  ComplexDenseMatrix(std::size_t rows, std::size_t cols);
  // G + j*scale*C (shapes must match).
  ComplexDenseMatrix(const DenseMatrix& real_part,
                     const DenseMatrix& imag_part, double imag_scale);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Complex& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  Complex operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  ComplexVector multiply(const ComplexVector& x) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<Complex> data_;
};

// LU with partial pivoting (by magnitude).  Throws on singular pivot.
class ComplexDenseLU {
 public:
  explicit ComplexDenseLU(ComplexDenseMatrix a);
  ComplexVector solve(const ComplexVector& b) const;

 private:
  ComplexDenseMatrix lu_;
  std::vector<std::size_t> perm_;
};

ComplexVector solve_complex_dense(ComplexDenseMatrix a,
                                  const ComplexVector& b);

}  // namespace mivtx::linalg
