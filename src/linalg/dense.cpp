#include "linalg/dense.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mivtx::linalg {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void DenseMatrix::set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

void DenseMatrix::add_scaled(const DenseMatrix& other, double alpha) {
  MIVTX_EXPECT(rows_ == other.rows_ && cols_ == other.cols_,
               "add_scaled: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
}

Vector DenseMatrix::multiply(const Vector& x) const {
  MIVTX_EXPECT(x.size() == cols_, "multiply: size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  MIVTX_EXPECT(cols_ == other.rows_, "matmul: shape mismatch");
  DenseMatrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c)
        out(r, c) += a * other(k, c);
    }
  }
  return out;
}

double DenseMatrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

DenseLU::DenseLU(DenseMatrix a) : lu_(std::move(a)) {
  MIVTX_EXPECT(lu_.rows() == lu_.cols(), "LU needs a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  double max_pivot = 0.0;
  double min_pivot = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude entry in column k.
    std::size_t p = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::fabs(lu_(r, k));
      if (v > best) {
        best = v;
        p = r;
      }
    }
    MIVTX_EXPECT(best > 0.0 && std::isfinite(best),
                 "singular matrix in DenseLU at column " + std::to_string(k));
    if (p != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(p, c));
      std::swap(perm_[k], perm_[p]);
    }
    max_pivot = std::max(max_pivot, best);
    min_pivot = std::min(min_pivot, best);
    const double inv = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double f = lu_(r, k) * inv;
      lu_(r, k) = f;
      if (f == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= f * lu_(k, c);
    }
  }
  pivot_ratio_ = (max_pivot > 0.0) ? min_pivot / max_pivot : 0.0;
}

void DenseLU::solve_in_place(Vector& b) const {
  const std::size_t n = lu_.rows();
  MIVTX_EXPECT(b.size() == n, "solve: rhs size mismatch");
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution (L has implicit unit diagonal).
  for (std::size_t i = 1; i < n; ++i) {
    double s = x[i];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * x[j];
    x[ii] = s / lu_(ii, ii);
  }
  b = std::move(x);
}

Vector DenseLU::solve(const Vector& b) const {
  Vector x = b;
  solve_in_place(x);
  return x;
}

Vector solve_dense(DenseMatrix a, const Vector& b) {
  return DenseLU(std::move(a)).solve(b);
}

}  // namespace mivtx::linalg
