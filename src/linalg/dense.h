// Dense matrix and LU factorization with partial pivoting.
//
// The MNA systems produced by standard cells are small (tens of unknowns),
// so a dense solver is both simplest and fastest there.  Larger structured
// systems (TCAD) use linalg/banded.h instead.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vector_ops.h"

namespace mivtx::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  void set_zero();
  // this += alpha * other (same shape).
  void add_scaled(const DenseMatrix& other, double alpha);

  Vector multiply(const Vector& x) const;
  DenseMatrix transpose() const;
  DenseMatrix multiply(const DenseMatrix& other) const;

  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// LU factorization (PA = LU) of a square matrix.  Throws mivtx::Error on a
// numerically singular pivot.
class DenseLU {
 public:
  explicit DenseLU(DenseMatrix a);

  Vector solve(const Vector& b) const;
  void solve_in_place(Vector& b) const;
  // Estimate of the smallest pivot magnitude relative to the largest —
  // a cheap conditioning indicator used by the MNA solver diagnostics.
  double pivot_ratio() const { return pivot_ratio_; }

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
  double pivot_ratio_ = 0.0;
};

// One-shot helper: solve A x = b.
Vector solve_dense(DenseMatrix a, const Vector& b);

}  // namespace mivtx::linalg
