#include "linalg/krylov.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace mivtx::linalg {

void csr_matvec(const CsrView& a, const Vector& x, Vector& y) {
  MIVTX_EXPECT(x.size() == a.n && y.size() == a.n,
               "csr_matvec: size mismatch");
  const std::vector<std::size_t>& row_ptr = *a.row_ptr;
  const std::vector<std::size_t>& col_idx = *a.col_idx;
  const std::vector<double>& val = *a.values;
  for (std::size_t r = 0; r < a.n; ++r) {
    double acc = 0.0;
    for (std::size_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p)
      acc += val[p] * x[col_idx[p]];
    y[r] = acc;
  }
}

// --- Jacobi ----------------------------------------------------------------

void JacobiPreconditioner::analyze(std::size_t n,
                                   const std::vector<std::size_t>& row_ptr,
                                   const std::vector<std::size_t>& col_idx) {
  diag_slot_.assign(n, kNone);
  inv_diag_.assign(n, 1.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p)
      if (col_idx[p] == r) diag_slot_[r] = p;
}

bool JacobiPreconditioner::factorize(const std::vector<double>& csr_values) {
  const std::size_t n = diag_slot_.size();
  for (std::size_t r = 0; r < n; ++r) {
    if (diag_slot_[r] == kNone) {
      inv_diag_[r] = 1.0;  // MNA branch row: no diagonal, pass through
      continue;
    }
    const double d = csr_values[diag_slot_[r]];
    if (!std::isfinite(d)) return false;
    inv_diag_[r] = d != 0.0 ? 1.0 / d : 1.0;
  }
  return true;
}

void JacobiPreconditioner::apply(const Vector& r, Vector& z) const {
  const std::size_t n = inv_diag_.size();
  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag_[i] * r[i];
}

// --- ILU(0) ----------------------------------------------------------------

void Ilu0Preconditioner::analyze(std::size_t n,
                                 const std::vector<std::size_t>& row_ptr,
                                 const std::vector<std::size_t>& col_idx) {
  n_ = n;
  row_ptr_.assign(1, 0);
  col_idx_.clear();
  src_.clear();
  diag_.assign(n, kNone);
  for (std::size_t r = 0; r < n; ++r) {
    bool have_diag = false;
    for (std::size_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      const std::size_t c = col_idx[p];
      if (!have_diag && c > r) {
        // Insert the missing (r,r) slot in sorted position.
        diag_[r] = col_idx_.size();
        col_idx_.push_back(r);
        src_.push_back(kNone);
        have_diag = true;
      }
      if (c == r) {
        diag_[r] = col_idx_.size();
        have_diag = true;
      }
      col_idx_.push_back(c);
      src_.push_back(p);
    }
    if (!have_diag) {
      diag_[r] = col_idx_.size();
      col_idx_.push_back(r);
      src_.push_back(kNone);
    }
    row_ptr_.push_back(col_idx_.size());
  }
  lu_.assign(col_idx_.size(), 0.0);
  pos_.assign(n, 0);
  rowmax_.assign(n, 0.0);
}

bool Ilu0Preconditioner::factorize(const std::vector<double>& csr_values) {
  MIVTX_EXPECT(n_ != 0, "Ilu0Preconditioner::factorize before analyze");
  const std::size_t n = n_;
  for (std::size_t k = 0; k < lu_.size(); ++k)
    lu_[k] = src_[k] == kNone ? 0.0 : csr_values[src_[k]];
  for (std::size_t r = 0; r < n; ++r) {
    double m = 0.0;
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p)
      m = std::max(m, std::fabs(lu_[p]));
    rowmax_[r] = m;
  }

  // Row-wise IKJ elimination restricted to the A ∪ diag pattern.  Any
  // update landing outside the pattern is dropped (that is the "0" of
  // ILU(0)); pivots are the already-factored diagonals of earlier rows.
  bool ok = true;
  for (std::size_t i = 0; i < n && ok; ++i) {
    const std::size_t b = row_ptr_[i], e = row_ptr_[i + 1];
    for (std::size_t p = b; p < e; ++p) pos_[col_idx_[p]] = p + 1;
    for (std::size_t p = b; p < e && col_idx_[p] < i; ++p) {
      const std::size_t k = col_idx_[p];
      const double piv = lu_[diag_[k]];
      if (!std::isfinite(piv) || piv == 0.0) {
        ok = false;
        break;
      }
      const double factor = lu_[p] / piv;
      lu_[p] = factor;
      for (std::size_t q = diag_[k] + 1; q < row_ptr_[k + 1]; ++q) {
        const std::size_t slot = pos_[col_idx_[q]];
        if (slot != 0) lu_[slot - 1] -= factor * lu_[q];
      }
    }
    for (std::size_t p = b; p < e; ++p) pos_[col_idx_[p]] = 0;
    const double d = lu_[diag_[i]];
    // Pivot health relative to the row's own scale: MNA mixes conductances
    // over ~12 decades, so an absolute test would misfire on healthy rows.
    if (!std::isfinite(d) || std::fabs(d) <= 1e-14 * rowmax_[i]) ok = false;
  }
  return ok;
}

void Ilu0Preconditioner::apply(const Vector& r, Vector& z) const {
  const std::size_t n = n_;
  // Forward solve with unit-diagonal L (slots left of the diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double s = r[i];
    for (std::size_t p = row_ptr_[i]; p < diag_[i]; ++p)
      s -= lu_[p] * z[col_idx_[p]];
    z[i] = s;
  }
  // Back substitution with U (diagonal and rightward slots).
  for (std::size_t i = n; i-- > 0;) {
    double s = z[i];
    for (std::size_t p = diag_[i] + 1; p < row_ptr_[i + 1]; ++p)
      s -= lu_[p] * z[col_idx_[p]];
    z[i] = s / lu_[diag_[i]];
  }
}

// --- Krylov drivers --------------------------------------------------------

const char* to_string(IterativeOutcome outcome) {
  switch (outcome) {
    case IterativeOutcome::kConverged: return "converged";
    case IterativeOutcome::kMaxIterations: return "max-iterations";
    case IterativeOutcome::kBreakdown: return "breakdown";
    case IterativeOutcome::kStagnation: return "stagnation";
  }
  return "?";
}

namespace {

int resolve_max_iterations(const IterativeOptions& opts, std::size_t n) {
  if (opts.max_iterations > 0) return opts.max_iterations;
  return static_cast<int>(std::min<std::size_t>(2 * n, 1000));
}

// Identity preconditioner fallback so the drivers need no null checks in
// their inner loops.
void precond(const Preconditioner* m, const Vector& r, Vector& z) {
  if (m != nullptr)
    m->apply(r, z);
  else
    z = r;
}

// Tracks the best residual seen and declares stagnation when it has not
// halved within `window` iterations.
class StagnationGuard {
 public:
  explicit StagnationGuard(int window) : window_(window) {}
  bool stalled(double rnorm) {
    if (rnorm < 0.5 * best_) {
      best_ = rnorm;
      since_ = 0;
      return false;
    }
    return ++since_ >= window_;
  }

 private:
  int window_;
  int since_ = 0;
  double best_ = std::numeric_limits<double>::infinity();
};

}  // namespace

void KrylovSolver::bind(std::size_t n) {
  r_.assign(n, 0.0);
  z_.assign(n, 0.0);
  p_.assign(n, 0.0);
  q_.assign(n, 0.0);
  r0_.assign(n, 0.0);
  v_.assign(n, 0.0);
  s_.assign(n, 0.0);
  t_.assign(n, 0.0);
  y_.assign(n, 0.0);
  sh_.assign(n, 0.0);
}

IterativeResult KrylovSolver::cg(const CsrView& a, const Preconditioner* m,
                                 const Vector& b, Vector& x,
                                 const IterativeOptions& opts) {
  MIVTX_EXPECT(b.size() == a.n && x.size() == a.n, "cg: size mismatch");
  bind(a.n);
  IterativeResult res;
  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    res.outcome = IterativeOutcome::kConverged;
    return res;
  }
  const double target = std::max(opts.rtol * bnorm, opts.atol);
  const int max_it = resolve_max_iterations(opts, a.n);
  StagnationGuard guard(opts.stagnation_window);

  csr_matvec(a, x, r_);
  for (std::size_t i = 0; i < a.n; ++i) r_[i] = b[i] - r_[i];
  double rnorm = norm2(r_);
  if (rnorm <= target) {
    res.outcome = IterativeOutcome::kConverged;
    res.rel_residual = rnorm / bnorm;
    return res;
  }
  precond(m, r_, z_);
  p_ = z_;
  double rho = dot(r_, z_);
  for (int it = 1; it <= max_it; ++it) {
    res.iterations = it;
    csr_matvec(a, p_, q_);
    const double pq = dot(p_, q_);
    // p'Ap must stay positive for SPD A; anything else is a breakdown
    // (typically the caller handed CG a nonsymmetric Jacobian).
    if (!(pq > 0.0) || !std::isfinite(pq)) {
      res.outcome = IterativeOutcome::kBreakdown;
      res.rel_residual = rnorm / bnorm;
      return res;
    }
    const double alpha = rho / pq;
    axpy(alpha, p_, x);
    axpy(-alpha, q_, r_);
    rnorm = norm2(r_);
    res.rel_residual = rnorm / bnorm;
    if (!std::isfinite(rnorm)) {
      res.outcome = IterativeOutcome::kBreakdown;
      return res;
    }
    if (rnorm <= target) {
      res.outcome = IterativeOutcome::kConverged;
      return res;
    }
    if (guard.stalled(rnorm)) {
      res.outcome = IterativeOutcome::kStagnation;
      return res;
    }
    precond(m, r_, z_);
    const double rho_next = dot(r_, z_);
    if (rho_next == 0.0 || !std::isfinite(rho_next)) {
      res.outcome = IterativeOutcome::kBreakdown;
      return res;
    }
    const double beta = rho_next / rho;
    rho = rho_next;
    for (std::size_t i = 0; i < a.n; ++i) p_[i] = z_[i] + beta * p_[i];
  }
  res.outcome = IterativeOutcome::kMaxIterations;
  return res;
}

IterativeResult KrylovSolver::bicgstab(const CsrView& a,
                                       const Preconditioner* m,
                                       const Vector& b, Vector& x,
                                       const IterativeOptions& opts) {
  MIVTX_EXPECT(b.size() == a.n && x.size() == a.n, "bicgstab: size mismatch");
  bind(a.n);
  IterativeResult res;
  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    res.outcome = IterativeOutcome::kConverged;
    return res;
  }
  const double target = std::max(opts.rtol * bnorm, opts.atol);
  const int max_it = resolve_max_iterations(opts, a.n);
  StagnationGuard guard(opts.stagnation_window);

  csr_matvec(a, x, r_);
  for (std::size_t i = 0; i < a.n; ++i) r_[i] = b[i] - r_[i];
  r0_ = r_;  // fixed shadow residual
  double rnorm = norm2(r_);
  res.rel_residual = rnorm / bnorm;
  if (rnorm <= target) {
    res.outcome = IterativeOutcome::kConverged;
    return res;
  }
  double rho = 1.0, alpha = 1.0, omega = 1.0;
  std::fill(v_.begin(), v_.end(), 0.0);
  std::fill(p_.begin(), p_.end(), 0.0);
  for (int it = 1; it <= max_it; ++it) {
    res.iterations = it;
    const double rho_next = dot(r0_, r_);
    if (!std::isfinite(rho_next) ||
        std::fabs(rho_next) < 1e-300 * rnorm * rnorm) {
      // r ⟂ r0: the biorthogonal recurrence has collapsed.
      res.outcome = IterativeOutcome::kBreakdown;
      return res;
    }
    const double beta = (rho_next / rho) * (alpha / omega);
    rho = rho_next;
    for (std::size_t i = 0; i < a.n; ++i)
      p_[i] = r_[i] + beta * (p_[i] - omega * v_[i]);
    precond(m, p_, y_);
    csr_matvec(a, y_, v_);
    const double r0v = dot(r0_, v_);
    if (r0v == 0.0 || !std::isfinite(r0v)) {
      res.outcome = IterativeOutcome::kBreakdown;
      return res;
    }
    alpha = rho / r0v;
    for (std::size_t i = 0; i < a.n; ++i) s_[i] = r_[i] - alpha * v_[i];
    const double snorm = norm2(s_);
    if (snorm <= target) {
      axpy(alpha, y_, x);
      res.rel_residual = snorm / bnorm;
      res.outcome = IterativeOutcome::kConverged;
      return res;
    }
    precond(m, s_, sh_);
    csr_matvec(a, sh_, t_);
    const double tt = dot(t_, t_);
    if (tt == 0.0 || !std::isfinite(tt)) {
      res.outcome = IterativeOutcome::kBreakdown;
      return res;
    }
    omega = dot(t_, s_) / tt;
    for (std::size_t i = 0; i < a.n; ++i)
      x[i] += alpha * y_[i] + omega * sh_[i];
    for (std::size_t i = 0; i < a.n; ++i) r_[i] = s_[i] - omega * t_[i];
    rnorm = norm2(r_);
    res.rel_residual = rnorm / bnorm;
    if (!std::isfinite(rnorm)) {
      res.outcome = IterativeOutcome::kBreakdown;
      return res;
    }
    if (rnorm <= target) {
      res.outcome = IterativeOutcome::kConverged;
      return res;
    }
    if (omega == 0.0) {
      res.outcome = IterativeOutcome::kBreakdown;
      return res;
    }
    if (guard.stalled(rnorm)) {
      res.outcome = IterativeOutcome::kStagnation;
      return res;
    }
  }
  res.outcome = IterativeOutcome::kMaxIterations;
  return res;
}

}  // namespace mivtx::linalg
