// Iterative (Krylov) solver tier for large MNA systems.
//
// Direct sparse LU is the right tool up to a few thousand unknowns; past
// that, factor fill-in dominates (a 2D power-grid mesh factors in
// O(n^1.5) space / O(n^2) work even with a good ordering) while a
// preconditioned Krylov solve stays O(nnz) per iteration.  This header
// supplies the pieces SolverWorkspace's auto-selection stitches together:
//
//   CsrView                 non-owning view of the AssemblyPlan's CSR
//                           pattern + the workspace's value array.
//   JacobiPreconditioner    diagonal scaling; rows with a missing/zero
//                           diagonal (MNA voltage-source branch rows)
//                           pass through unscaled.
//   Ilu0Preconditioner      ILU(0) on the pattern A ∪ full diagonal.
//                           MNA branch rows have a structurally ZERO
//                           diagonal, so the factorization pattern must
//                           include every (i,i) slot for elimination to
//                           fill it -- restricted to A's own pattern the
//                           pivot would stay 0 and the factorization
//                           would be singular.  No pivoting: unknowns
//                           keep MNA order (node voltages before branch
//                           currents), which eliminates the conductance
//                           block first and fills the branch diagonals.
//   KrylovSolver            preconditioned CG (SPD / symmetrizable
//                           values) and BiCGStab (general MNA), with
//                           typed outcomes so the caller can fall back
//                           to direct LU on breakdown or stagnation
//                           instead of returning garbage.
//
// Like SparseLU, everything here is analyze-once / factorize-per-value-set
// and the hot calls never allocate after the first solve at a given size.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vector_ops.h"

namespace mivtx::linalg {

// Non-owning CSR view (square, sorted duplicate-free columns per row).
// The pointed-to containers must outlive the view.
struct CsrView {
  std::size_t n = 0;
  const std::vector<std::size_t>* row_ptr = nullptr;
  const std::vector<std::size_t>* col_idx = nullptr;
  const std::vector<double>* values = nullptr;
};

// y = A x.
void csr_matvec(const CsrView& a, const Vector& x, Vector& y);

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  // z = M^{-1} r.  r and z must not alias.
  virtual void apply(const Vector& r, Vector& z) const = 0;
  virtual const char* name() const = 0;
};

class JacobiPreconditioner final : public Preconditioner {
 public:
  void analyze(std::size_t n, const std::vector<std::size_t>& row_ptr,
               const std::vector<std::size_t>& col_idx);
  // Returns false only on a non-finite diagonal; zero/missing diagonals
  // degrade to identity on that row.
  bool factorize(const std::vector<double>& csr_values);
  void apply(const Vector& r, Vector& z) const override;
  const char* name() const override { return "jacobi"; }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> diag_slot_;  // kNone when (i,i) not in pattern
  std::vector<double> inv_diag_;
};

class Ilu0Preconditioner final : public Preconditioner {
 public:
  // Build the factorization pattern A ∪ diagonal and the scatter map from
  // the caller's CSR slots into it.
  void analyze(std::size_t n, const std::vector<std::size_t>& row_ptr,
               const std::vector<std::size_t>& col_idx);
  // Incomplete factorization of the caller's values on the analyzed
  // pattern.  Returns false on a non-finite or relatively-tiny pivot
  // (caller should drop to Jacobi or direct LU).
  bool factorize(const std::vector<double>& csr_values);
  void apply(const Vector& r, Vector& z) const override;
  const char* name() const override { return "ilu0"; }
  std::size_t pattern_nnz() const { return col_idx_.size(); }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t n_ = 0;
  // Own pattern (A plus any missing diagonal slots), sorted per row.
  std::vector<std::size_t> row_ptr_, col_idx_;
  std::vector<std::size_t> diag_;  // row -> slot of (i,i) in own pattern
  std::vector<std::size_t> src_;   // own slot -> caller slot (kNone = inserted)
  std::vector<double> lu_;         // factored values, L unit-diagonal
  std::vector<std::size_t> pos_;   // scratch: column -> own slot + 1
  std::vector<double> rowmax_;     // scratch: max |a_ij| per row pre-elim
};

enum class IterativeOutcome {
  kConverged,
  kMaxIterations,  // residual target not reached in the iteration budget
  kBreakdown,      // zero/non-finite inner product (CG: lost positive
                   // definiteness; BiCGStab: rho/omega collapse)
  kStagnation,     // residual stopped improving (see stagnation_window)
};
const char* to_string(IterativeOutcome outcome);

struct IterativeOptions {
  // Converged when ||r||_2 <= max(rtol * ||b||_2, atol).
  double rtol = 1e-10;
  double atol = 0.0;
  // <= 0 picks min(2n, 1000).
  int max_iterations = 0;
  // Declare stagnation when the best residual seen has not halved within
  // this many consecutive iterations.
  int stagnation_window = 100;
};

struct IterativeResult {
  IterativeOutcome outcome = IterativeOutcome::kBreakdown;
  int iterations = 0;
  double rel_residual = 0.0;  // ||r||_2 / ||b||_2 at exit
  bool ok() const { return outcome == IterativeOutcome::kConverged; }
};

// Workspace-owning driver: scratch vectors are sized on first use and
// reused, so repeated solves at one size never allocate.
class KrylovSolver {
 public:
  // Preconditioned conjugate gradient.  Correct only for symmetric
  // positive-definite values (the caller sniffs value symmetry); on
  // anything else the p'Ap > 0 invariant breaks and the result reports
  // kBreakdown.  x is the initial guess and receives the best iterate.
  IterativeResult cg(const CsrView& a, const Preconditioner* m,
                     const Vector& b, Vector& x,
                     const IterativeOptions& opts = {});
  // Preconditioned BiCGStab for general unsymmetric systems.
  IterativeResult bicgstab(const CsrView& a, const Preconditioner* m,
                           const Vector& b, Vector& x,
                           const IterativeOptions& opts = {});

 private:
  void bind(std::size_t n);
  Vector r_, z_, p_, q_, r0_, v_, s_, t_, y_, sh_;
};

}  // namespace mivtx::linalg
