#include "linalg/sparse.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mivtx::linalg {

SparseBuilder::SparseBuilder(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {
  MIVTX_EXPECT(rows > 0 && cols > 0, "sparse: empty shape");
}

void SparseBuilder::add(std::size_t r, std::size_t c, double v) {
  MIVTX_EXPECT(r < rows_ && c < cols_, "sparse: index out of range");
  if (v == 0.0) return;
  entries_.push_back(Entry{r, c, v});
}

SparseMatrix::SparseMatrix(const SparseBuilder& builder)
    : rows_(builder.rows()), cols_(builder.cols()) {
  // Pattern-ordered builders (the common case when entries were emitted by
  // an assembly plan) compress without the copy + sort.
  bool ordered = true;
  const std::vector<SparseBuilder::Entry>& raw = builder.entries();
  for (std::size_t i = 1; i < raw.size() && ordered; ++i) {
    ordered = raw[i - 1].row < raw[i].row ||
              (raw[i - 1].row == raw[i].row && raw[i - 1].col < raw[i].col);
  }
  if (ordered) {
    row_ptr_.assign(rows_ + 1, 0);
    col_idx_.reserve(raw.size());
    values_.reserve(raw.size());
    for (const SparseBuilder::Entry& e : raw) {
      if (e.value == 0.0) continue;
      col_idx_.push_back(e.col);
      values_.push_back(e.value);
      ++row_ptr_[e.row + 1];
    }
    for (std::size_t r = 0; r < rows_; ++r) row_ptr_[r + 1] += row_ptr_[r];
    return;
  }
  std::vector<SparseBuilder::Entry> ents = builder.entries();
  std::sort(ents.begin(), ents.end(),
            [](const SparseBuilder::Entry& a, const SparseBuilder::Entry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  row_ptr_.assign(rows_ + 1, 0);
  for (std::size_t i = 0; i < ents.size();) {
    std::size_t j = i;
    double sum = 0.0;
    while (j < ents.size() && ents[j].row == ents[i].row &&
           ents[j].col == ents[i].col) {
      sum += ents[j].value;
      ++j;
    }
    if (sum != 0.0) {
      col_idx_.push_back(ents[i].col);
      values_.push_back(sum);
      ++row_ptr_[ents[i].row + 1];
    }
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

Vector SparseMatrix::multiply(const Vector& x) const {
  MIVTX_EXPECT(x.size() == cols_, "sparse multiply: size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      s += values_[k] * x[col_idx_[k]];
    y[r] = s;
  }
  return y;
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  MIVTX_EXPECT(r < rows_ && c < cols_, "sparse at: index out of range");
  // Columns are sorted within each row, so binary-search the row slice.
  const auto first = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto last = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(first, last, c);
  if (it == last || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Ilu0::Ilu0(const SparseMatrix& a)
    : n_(a.rows()), row_ptr_(a.row_ptr()), col_idx_(a.col_idx()),
      values_(a.values()) {
  MIVTX_EXPECT(a.rows() == a.cols(), "ILU0 needs a square matrix");
  diag_.assign(n_, static_cast<std::size_t>(-1));
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (col_idx_[k] == r) diag_[r] = k;
    }
    MIVTX_EXPECT(diag_[r] != static_cast<std::size_t>(-1),
                 "ILU0: zero diagonal pattern at row " + std::to_string(r));
  }
  // IKJ-variant ILU(0).
  for (std::size_t i = 1; i < n_; ++i) {
    for (std::size_t kk = row_ptr_[i]; kk < row_ptr_[i + 1]; ++kk) {
      const std::size_t k = col_idx_[kk];
      if (k >= i) break;
      const double pivot = values_[diag_[k]];
      MIVTX_EXPECT(pivot != 0.0, "ILU0: zero pivot");
      const double f = values_[kk] / pivot;
      values_[kk] = f;
      // Update row i entries with columns > k that exist in the pattern.
      for (std::size_t jj = diag_[k] + 1; jj < row_ptr_[k + 1]; ++jj) {
        const std::size_t j = col_idx_[jj];
        // Find (i, j) in row i.
        for (std::size_t ii = kk + 1; ii < row_ptr_[i + 1]; ++ii) {
          if (col_idx_[ii] == j) {
            values_[ii] -= f * values_[jj];
            break;
          }
          if (col_idx_[ii] > j) break;
        }
      }
    }
  }
}

Vector Ilu0::apply(const Vector& r) const {
  MIVTX_EXPECT(r.size() == n_, "ILU0 apply: size mismatch");
  Vector z = r;
  // Forward solve L z = r (unit diagonal).
  for (std::size_t i = 0; i < n_; ++i) {
    double s = z[i];
    for (std::size_t k = row_ptr_[i]; k < diag_[i]; ++k)
      s -= values_[k] * z[col_idx_[k]];
    z[i] = s;
  }
  // Backward solve U z = z.
  for (std::size_t ii = n_; ii-- > 0;) {
    double s = z[ii];
    for (std::size_t k = diag_[ii] + 1; k < row_ptr_[ii + 1]; ++k)
      s -= values_[k] * z[col_idx_[k]];
    z[ii] = s / values_[diag_[ii]];
  }
  return z;
}

IterativeResult bicgstab(const SparseMatrix& a, const Vector& b, Vector& x,
                         const Ilu0* precond, double tol,
                         std::size_t max_iter) {
  MIVTX_EXPECT(a.rows() == a.cols(), "bicgstab needs a square matrix");
  MIVTX_EXPECT(b.size() == a.rows(), "bicgstab: rhs size mismatch");
  if (x.size() != b.size()) x.assign(b.size(), 0.0);

  IterativeResult result;
  const double bnorm = std::max(norm2(b), 1e-300);
  Vector r = sub(b, a.multiply(x));
  Vector r0 = r;
  double rho = 1.0, alpha = 1.0, omega = 1.0;
  Vector v(b.size(), 0.0), p(b.size(), 0.0);

  for (std::size_t it = 0; it < max_iter; ++it) {
    const double rho_new = dot(r0, r);
    if (std::fabs(rho_new) < 1e-300) break;  // breakdown
    if (it == 0) {
      p = r;
    } else {
      const double beta = (rho_new / rho) * (alpha / omega);
      for (std::size_t i = 0; i < p.size(); ++i)
        p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    rho = rho_new;
    const Vector phat = precond ? precond->apply(p) : p;
    v = a.multiply(phat);
    const double r0v = dot(r0, v);
    if (std::fabs(r0v) < 1e-300) break;
    alpha = rho / r0v;
    Vector s = r;
    axpy(-alpha, v, s);
    if (norm2(s) / bnorm < tol) {
      axpy(alpha, phat, x);
      result.converged = true;
      result.iterations = it + 1;
      result.residual_norm = norm2(s) / bnorm;
      return result;
    }
    const Vector shat = precond ? precond->apply(s) : s;
    const Vector t = a.multiply(shat);
    const double tt = dot(t, t);
    if (tt < 1e-300) break;
    omega = dot(t, s) / tt;
    axpy(alpha, phat, x);
    axpy(omega, shat, x);
    r = s;
    axpy(-omega, t, r);
    const double rel = norm2(r) / bnorm;
    result.iterations = it + 1;
    result.residual_norm = rel;
    if (rel < tol) {
      result.converged = true;
      return result;
    }
    if (std::fabs(omega) < 1e-300) break;
  }
  result.residual_norm = norm2(sub(b, a.multiply(x))) / bnorm;
  result.converged = result.residual_norm < tol;
  return result;
}

}  // namespace mivtx::linalg
