// Compressed-sparse-row matrix with a COO-style builder, Jacobi/ILU(0)
// preconditioners and a BiCGSTAB solver.
//
// Used for experimentation and cross-checking the banded TCAD solves; the
// production paths prefer DenseLU (circuits) and BandedLU (device grids).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vector_ops.h"

namespace mivtx::linalg {

class SparseBuilder {
 public:
  explicit SparseBuilder(std::size_t rows, std::size_t cols);

  // Accumulates duplicates.
  void add(std::size_t r, std::size_t c, double v);
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t num_entries() const { return entries_.size(); }

  struct Entry {
    std::size_t row, col;
    double value;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::size_t rows_, cols_;
  std::vector<Entry> entries_;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;
  // Compresses (sorts rows, merges duplicates).
  explicit SparseMatrix(const SparseBuilder& builder);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t num_nonzeros() const { return values_.size(); }

  Vector multiply(const Vector& x) const;
  double at(std::size_t r, std::size_t c) const;

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

struct IterativeResult {
  bool converged = false;
  std::size_t iterations = 0;
  double residual_norm = 0.0;
};

// ILU(0) preconditioner on the sparsity pattern of A (square only).
class Ilu0 {
 public:
  explicit Ilu0(const SparseMatrix& a);
  // Solve (LU) z = r approximately.
  Vector apply(const Vector& r) const;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_, col_idx_;
  std::vector<double> values_;
  std::vector<std::size_t> diag_;
};

// Preconditioned BiCGSTAB; `precond` may be null for unpreconditioned runs.
IterativeResult bicgstab(const SparseMatrix& a, const Vector& b, Vector& x,
                         const Ilu0* precond, double tol = 1e-10,
                         std::size_t max_iter = 1000);

}  // namespace mivtx::linalg
