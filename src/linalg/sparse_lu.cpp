#include "linalg/sparse_lu.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>
#include <utility>

#include "common/error.h"

namespace mivtx::linalg {

void SparseLU::analyze(std::size_t n, const std::vector<std::size_t>& row_ptr,
                       const std::vector<std::size_t>& col_idx) {
  MIVTX_EXPECT(n > 0, "SparseLU: empty system");
  MIVTX_EXPECT(row_ptr.size() == n + 1, "SparseLU: bad row_ptr");
  MIVTX_EXPECT(row_ptr.back() == col_idx.size(), "SparseLU: bad pattern");
  n_ = n;
  factorized_ = false;
  const std::size_t nnz = col_idx.size();

  // CSR -> CSC with a source map so numeric passes can scatter straight
  // from the caller's CSR value array.
  col_ptr_.assign(n + 1, 0);
  for (std::size_t k = 0; k < nnz; ++k) col_ptr_[col_idx[k] + 1] += 1;
  for (std::size_t c = 0; c < n; ++c) col_ptr_[c + 1] += col_ptr_[c];
  row_idx_.assign(nnz, 0);
  csc_src_.assign(nnz, 0);
  std::vector<std::size_t> next(col_ptr_.begin(), col_ptr_.end() - 1);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const std::size_t dst = next[col_idx[k]]++;
      row_idx_[dst] = r;
      csc_src_[dst] = k;
    }
  }

  order_columns(row_ptr, col_idx);

  // Scratch for the numeric phases.
  work_.assign(n, 0.0);
  xi_.assign(n, 0);
  stack_.assign(n, 0);
  pstack_.assign(n, 0);
  mark_.assign(n, 0);
  xperm_.assign(n, 0.0);
  pinv_.assign(n, kNone);
  piv_row_.assign(n, kNone);
  lp_.clear();
  li_.clear();
  lx_.clear();
  up_.clear();
  ui_.clear();
  ux_.clear();
  udiag_.clear();
  pat_ptr_.clear();
  pat_row_.clear();
}

void SparseLU::order_columns(const std::vector<std::size_t>& row_ptr,
                             const std::vector<std::size_t>& col_idx) {
  // Greedy minimum degree on the symmetrized pattern A + A^T.  Selection
  // runs through a lazy min-heap of (degree, vertex) entries that are
  // revalidated on pop, so ordering a 10k+-unknown grid costs roughly
  // O(fill log n) instead of the O(n^2) sweep this replaced; ties break
  // toward the lowest vertex id, keeping orderings deterministic.
  // Degrees are exact at push time but may grow stale as neighbors die;
  // that approximation only perturbs tie-breaking quality, never
  // correctness (any permutation is a valid pivot order).
  const std::size_t n = n_;
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const std::size_t c = col_idx[k];
      if (c == r) continue;
      adj[r].push_back(c);
      adj[c].push_back(r);
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(adj[v].begin(), adj[v].end());
    adj[v].erase(std::unique(adj[v].begin(), adj[v].end()), adj[v].end());
  }

  colperm_.assign(n, 0);
  predicted_factor_nnz_ = 0;
  std::vector<std::size_t> deg(n);
  using Entry = std::pair<std::size_t, std::size_t>;  // (degree, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (std::size_t v = 0; v < n; ++v) {
    deg[v] = adj[v].size();
    heap.push({deg[v], v});
  }
  std::vector<char> dead(n, 0);
  std::vector<std::size_t> live, merged;
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = kNone;
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (dead[v] || d != deg[v]) continue;  // stale entry
      best = v;
      break;
    }
    MIVTX_EXPECT(best != kNone, "SparseLU: min-degree heap exhausted");
    colperm_[step] = best;
    dead[best] = 1;
    live.clear();
    for (const std::size_t w : adj[best])
      if (!dead[w]) live.push_back(w);
    predicted_factor_nnz_ += 2 * live.size() + 1;
    // Eliminating `best` turns its live neighborhood into a clique; merge
    // it into each survivor's list (dropping dead entries on the way) and
    // requeue the survivor at its refreshed degree.
    for (const std::size_t a : live) {
      merged.clear();
      auto it = adj[a].begin();
      const auto end = adj[a].end();
      auto lt = live.begin();
      while (it != end || lt != live.end()) {
        std::size_t next;
        if (lt == live.end() || (it != end && *it < *lt)) {
          next = *it++;
          if (dead[next]) continue;
        } else {
          next = *lt;
          if (it != end && *it == next) ++it;
          ++lt;
          if (next == a) continue;
        }
        merged.push_back(next);
      }
      adj[a].swap(merged);
      deg[a] = adj[a].size();
      heap.push({deg[a], a});
    }
  }
}

std::size_t SparseLU::reach_dfs(std::size_t start, std::size_t top) {
  auto child_begin = [&](std::size_t i) {
    return pinv_[i] == kNone ? std::size_t{0} : lp_[pinv_[i]];
  };
  auto child_end = [&](std::size_t i) {
    return pinv_[i] == kNone ? std::size_t{0} : lp_[pinv_[i] + 1];
  };
  std::size_t depth = 0;
  stack_[0] = start;
  pstack_[0] = child_begin(start);
  mark_[start] = 1;
  while (true) {
    const std::size_t i = stack_[depth];
    const std::size_t end = child_end(i);
    std::size_t p = pstack_[depth];
    bool descended = false;
    while (p < end) {
      const std::size_t child = li_[p];
      ++p;
      if (!mark_[child]) {
        pstack_[depth] = p;
        ++depth;
        stack_[depth] = child;
        pstack_[depth] = child_begin(child);
        mark_[child] = 1;
        descended = true;
        break;
      }
    }
    if (descended) continue;
    xi_[--top] = i;  // all children emitted -> topological position
    if (depth == 0) return top;
    --depth;
  }
}

bool SparseLU::factorize(const std::vector<double>& csr_values) {
  MIVTX_EXPECT(analyzed(), "SparseLU::factorize before analyze");
  MIVTX_EXPECT(csr_values.size() == csc_src_.size(),
               "SparseLU: value array does not match the analyzed pattern");
  const std::size_t n = n_;
  factorized_ = false;
  std::fill(pinv_.begin(), pinv_.end(), kNone);
  std::fill(piv_row_.begin(), piv_row_.end(), kNone);
  lp_.clear();
  li_.clear();
  lx_.clear();
  up_.clear();
  ui_.clear();
  ux_.clear();
  udiag_.clear();
  pat_ptr_.clear();
  pat_row_.clear();
  lp_.push_back(0);
  up_.push_back(0);
  pat_ptr_.push_back(0);

  double min_pivot = std::numeric_limits<double>::infinity();
  double max_pivot = 0.0;

  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t col = colperm_[k];
    // Symbolic: reach of A(:,col) through the partial L.
    std::size_t top = n;
    for (std::size_t p = col_ptr_[col]; p < col_ptr_[col + 1]; ++p) {
      if (!mark_[row_idx_[p]]) top = reach_dfs(row_idx_[p], top);
    }
    // Numeric: sparse triangular solve x = L \ A(:,col).
    for (std::size_t t = top; t < n; ++t) work_[xi_[t]] = 0.0;
    for (std::size_t p = col_ptr_[col]; p < col_ptr_[col + 1]; ++p)
      work_[row_idx_[p]] = csr_values[csc_src_[p]];
    for (std::size_t t = top; t < n; ++t) {
      const std::size_t i = xi_[t];
      const std::size_t j = pinv_[i];
      if (j == kNone) continue;
      const double xj = work_[i];
      for (std::size_t q = lp_[j]; q < lp_[j + 1]; ++q)
        work_[li_[q]] -= lx_[q] * xj;
    }
    // Partial pivoting over the not-yet-pivotal rows.
    std::size_t ipiv = kNone;
    double best = 0.0;
    for (std::size_t t = top; t < n; ++t) {
      const std::size_t i = xi_[t];
      if (pinv_[i] != kNone) continue;
      const double v = std::fabs(work_[i]);
      if (v > best) {
        best = v;
        ipiv = i;
      }
    }
    if (ipiv == kNone || !(best > 0.0) || !std::isfinite(best)) {
      for (std::size_t t = top; t < n; ++t) mark_[xi_[t]] = 0;
      return false;
    }
    const double pivot = work_[ipiv];
    pinv_[ipiv] = k;
    piv_row_[k] = ipiv;
    udiag_.push_back(pivot);
    min_pivot = std::min(min_pivot, best);
    max_pivot = std::max(max_pivot, best);
    // Store the step: reach pattern (topological), U entries in that same
    // order (refactorize replays it), L entries scaled by the pivot.
    for (std::size_t t = top; t < n; ++t) {
      const std::size_t i = xi_[t];
      pat_row_.push_back(i);
      const std::size_t j = pinv_[i];
      if (j == k) continue;  // pivot -> udiag_
      if (j != kNone) {
        ui_.push_back(j);
        ux_.push_back(work_[i]);
      } else {
        li_.push_back(i);
        lx_.push_back(work_[i] / pivot);
      }
      mark_[i] = 0;
    }
    mark_[ipiv] = 0;
    lp_.push_back(li_.size());
    up_.push_back(ui_.size());
    pat_ptr_.push_back(pat_row_.size());
  }

  pivot_ratio_ = max_pivot > 0.0 ? min_pivot / max_pivot : 0.0;
  factorized_ = true;
  return true;
}

bool SparseLU::refactorize(const std::vector<double>& csr_values) {
  if (!factorized_) return false;
  MIVTX_EXPECT(csr_values.size() == csc_src_.size(),
               "SparseLU: value array does not match the analyzed pattern");
  const std::size_t n = n_;
  double min_pivot = std::numeric_limits<double>::infinity();
  double max_pivot = 0.0;

  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t col = colperm_[k];
    const std::size_t p0 = pat_ptr_[k], p1 = pat_ptr_[k + 1];
    for (std::size_t p = p0; p < p1; ++p) work_[pat_row_[p]] = 0.0;
    for (std::size_t p = col_ptr_[col]; p < col_ptr_[col + 1]; ++p)
      work_[row_idx_[p]] = csr_values[csc_src_[p]];
    // Replay the recorded topological update schedule (U part).
    std::size_t uc = up_[k];
    for (std::size_t p = p0; p < p1; ++p) {
      const std::size_t i = pat_row_[p];
      const std::size_t j = pinv_[i];
      if (j >= k) continue;
      const double xj = work_[i];
      ux_[uc++] = xj;
      for (std::size_t q = lp_[j]; q < lp_[j + 1]; ++q)
        work_[li_[q]] -= lx_[q] * xj;
    }
    // Pivot acceptance: the fixed pivot row must still dominate its
    // column to within refactor_pivot_tol, otherwise force a re-pivot.
    const double pivot = work_[piv_row_[k]];
    double colmax = 0.0;
    for (std::size_t p = p0; p < p1; ++p) {
      const std::size_t i = pat_row_[p];
      if (pinv_[i] < k) continue;
      colmax = std::max(colmax, std::fabs(work_[i]));
    }
    if (!std::isfinite(pivot) || !(std::fabs(pivot) > 0.0) ||
        std::fabs(pivot) < refactor_pivot_tol * colmax) {
      factorized_ = false;  // factors half-overwritten; force factorize()
      return false;
    }
    udiag_[k] = pivot;
    std::size_t lc = lp_[k];
    for (std::size_t p = p0; p < p1; ++p) {
      const std::size_t i = pat_row_[p];
      if (pinv_[i] <= k) continue;
      lx_[lc++] = work_[i] / pivot;
    }
    min_pivot = std::min(min_pivot, std::fabs(pivot));
    max_pivot = std::max(max_pivot, std::fabs(pivot));
  }

  pivot_ratio_ = max_pivot > 0.0 ? min_pivot / max_pivot : 0.0;
  return true;
}

void SparseLU::solve(Vector& b) {
  MIVTX_EXPECT(factorized_, "SparseLU::solve without a factorization");
  MIVTX_EXPECT(b.size() == n_, "SparseLU::solve: rhs size mismatch");
  const std::size_t n = n_;
  // Row permutation: P b.
  for (std::size_t k = 0; k < n; ++k) xperm_[k] = b[piv_row_[k]];
  // Forward substitution, unit-diagonal L (rows stored as original ids).
  for (std::size_t k = 0; k < n; ++k) {
    const double xk = xperm_[k];
    if (xk == 0.0) continue;
    for (std::size_t q = lp_[k]; q < lp_[k + 1]; ++q)
      xperm_[pinv_[li_[q]]] -= lx_[q] * xk;
  }
  // Back substitution on column-stored U.
  for (std::size_t kk = n; kk-- > 0;) {
    const double xk = xperm_[kk] / udiag_[kk];
    xperm_[kk] = xk;
    if (xk == 0.0) continue;
    for (std::size_t q = up_[kk]; q < up_[kk + 1]; ++q)
      xperm_[ui_[q]] -= ux_[q] * xk;
  }
  // Column permutation: x = Q y.
  for (std::size_t k = 0; k < n; ++k) b[colperm_[k]] = xperm_[k];
}

}  // namespace mivtx::linalg
