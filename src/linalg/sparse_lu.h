// Sparse LU factorization for the MNA solver core.
//
// Left-looking Gilbert-Peierls factorization with partial pivoting over a
// fixed sparsity pattern.  The lifecycle is split so repeated solves on the
// same structure amortize all symbolic work:
//
//   analyze()      once per pattern: CSR -> CSC mapping plus a greedy
//                  minimum-degree column ordering on the symmetrized
//                  pattern (the usual fill-reducing heuristic for
//                  unsymmetric LU with partial pivoting).
//   factorize()    full numeric factorization with fresh partial pivoting;
//                  records the pivot sequence, the per-column reach in
//                  topological order, and the L/U fill pattern.
//   refactorize()  numeric-only refresh on new values: no DFS, no pivot
//                  search, no allocation -- replays the recorded schedule
//                  and fails out if a pivot degraded past
//                  `refactor_pivot_tol` relative to its column.
//   solve()        permuted forward/back substitution in place, no
//                  allocation.
//
// Callers (spice::SolverWorkspace) fall back to DenseLU below a small-n
// threshold and whenever factorize() reports a singular pivot.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vector_ops.h"

namespace mivtx::linalg {

class SparseLU {
 public:
  SparseLU() = default;

  // Symbolic analysis of a square CSR pattern (sorted, duplicate-free
  // column indices per row).  Resets any previous factorization.
  void analyze(std::size_t n, const std::vector<std::size_t>& row_ptr,
               const std::vector<std::size_t>& col_idx);
  bool analyzed() const { return n_ != 0; }
  std::size_t size() const { return n_; }

  // Full factorization of the CSR values laid out on the analyzed pattern.
  // Returns false (and clears factorized()) on a structurally or
  // numerically singular pivot.
  bool factorize(const std::vector<double>& csr_values);

  // Numeric-only refactorization reusing the pivot sequence and fill
  // pattern of the last successful factorize().  Returns false if any
  // pivot shrank below refactor_pivot_tol * (max |entry| in its column),
  // in which case the factors are invalidated and the caller should run
  // factorize() to re-pivot.
  bool refactorize(const std::vector<double>& csr_values);
  bool factorized() const { return factorized_; }

  // Solve A x = b in place (b receives x).  Requires factorized().
  void solve(Vector& b);

  // min |pivot| / max |pivot| of the last factorization.
  double pivot_ratio() const { return pivot_ratio_; }
  std::size_t factor_nnz() const { return li_.size() + ui_.size() + n_; }
  const std::vector<std::size_t>& column_order() const { return colperm_; }
  // Factor-size estimate from the symbolic elimination analyze() ran on
  // the symmetrized pattern: sum over pivots of (live degree + 1) L and U
  // entries.  Partial pivoting can exceed it; SolverWorkspace's
  // direct-vs-iterative crossover only needs the order of magnitude.
  std::size_t predicted_factor_nnz() const { return predicted_factor_nnz_; }

  // Relative pivot-degradation bound accepted by refactorize().
  double refactor_pivot_tol = 1e-3;

 private:
  // Lane-packed twin (batch_lu.h): adopts this object's pivot order and
  // replay schedule for K same-pattern value lanes.
  friend class BatchSparseLU;

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  void order_columns(const std::vector<std::size_t>& row_ptr,
                     const std::vector<std::size_t>& col_idx);
  // DFS over the partial L structure; prepends the reach of `start` to
  // xi_[top..n) in topological order and returns the new top.
  std::size_t reach_dfs(std::size_t start, std::size_t top);

  std::size_t n_ = 0;
  bool factorized_ = false;
  double pivot_ratio_ = 0.0;
  std::size_t predicted_factor_nnz_ = 0;

  // CSC view of the analyzed pattern; csc_src_[k] is the index of CSC
  // entry k inside the caller's CSR value array.
  std::vector<std::size_t> col_ptr_, row_idx_, csc_src_;
  std::vector<std::size_t> colperm_;  // pivot step -> original column

  // L strictly lower (unit diagonal implicit), per pivot step, rows kept
  // as ORIGINAL ids.  U strictly upper per pivot step, rows in pivot
  // coordinates, stored in the topological order factorize() visited them
  // (refactorize() replays that exact sequence).
  std::vector<std::size_t> lp_, li_;
  std::vector<double> lx_;
  std::vector<std::size_t> up_, ui_;
  std::vector<double> ux_;
  std::vector<double> udiag_;
  std::vector<std::size_t> pinv_;     // original row -> pivot step
  std::vector<std::size_t> piv_row_;  // pivot step -> original row

  // Reach of every pivot step (original row ids, topological order).
  std::vector<std::size_t> pat_ptr_, pat_row_;

  // Scratch (sized by analyze; hot calls never allocate).
  std::vector<double> work_;
  std::vector<std::size_t> xi_, stack_, pstack_;
  std::vector<char> mark_;
  std::vector<double> xperm_;
};

}  // namespace mivtx::linalg
