#include "linalg/vector_ops.h"

#include <cmath>

#include "common/error.h"

namespace mivtx::linalg {

double dot(const Vector& a, const Vector& b) {
  MIVTX_EXPECT(a.size() == b.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

double norm_inf(const Vector& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::fabs(v));
  return m;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  MIVTX_EXPECT(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(Vector& x, double alpha) {
  for (double& v : x) v *= alpha;
}

Vector add(const Vector& a, const Vector& b) {
  MIVTX_EXPECT(a.size() == b.size(), "add: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector sub(const Vector& a, const Vector& b) {
  MIVTX_EXPECT(a.size() == b.size(), "sub: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

double max_abs_diff(const Vector& a, const Vector& b) {
  MIVTX_EXPECT(a.size() == b.size(), "max_abs_diff: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

Vector linspace(double lo, double hi, std::size_t n) {
  MIVTX_EXPECT(n >= 1, "linspace: n must be >= 1");
  Vector out(n);
  if (n == 1) {
    out[0] = lo;
    return out;
  }
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
  out[n - 1] = hi;
  return out;
}

}  // namespace mivtx::linalg
