// Free functions over std::vector<double>, the toolkit's vector type.
#pragma once

#include <cstddef>
#include <vector>

namespace mivtx::linalg {

using Vector = std::vector<double>;

double dot(const Vector& a, const Vector& b);
double norm2(const Vector& a);
double norm_inf(const Vector& a);
// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y);
// x *= alpha
void scale(Vector& x, double alpha);
Vector add(const Vector& a, const Vector& b);
Vector sub(const Vector& a, const Vector& b);
// Max |a - b| over all entries.
double max_abs_diff(const Vector& a, const Vector& b);
// Evenly spaced values from lo to hi inclusive (n >= 2), or {lo} for n == 1.
Vector linspace(double lo, double hi, std::size_t n);

}  // namespace mivtx::linalg
