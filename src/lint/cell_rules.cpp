#include "lint/cell_rules.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "cells/celltypes.h"
#include "common/strings.h"

namespace mivtx::lint {

namespace {

// Net adjacency built from the fet list; BFS reachability over it.
class NetGraph {
 public:
  void add_edge(const std::string& a, const std::string& b) {
    adj_[a].push_back(b);
    adj_[b].push_back(a);
  }

  bool reaches(const std::string& from, const std::string& to) const {
    if (from == to) return true;
    std::vector<std::string> stack{from};
    std::map<std::string, bool> seen{{from, true}};
    while (!stack.empty()) {
      const std::string net = stack.back();
      stack.pop_back();
      const auto it = adj_.find(net);
      if (it == adj_.end()) continue;
      for (const std::string& next : it->second) {
        if (next == to) return true;
        if (!seen[next]) {
          seen[next] = true;
          stack.push_back(next);
        }
      }
    }
    return false;
  }

 private:
  std::map<std::string, std::vector<std::string>> adj_;
};

}  // namespace

std::size_t lint_topology(const cells::CellTopology& topo,
                          DiagnosticSink& sink) {
  const std::size_t errors_before = sink.num_errors();
  const std::string cell = cells::cell_name(topo.type);

  // Channel graphs (per polarity and combined) and the influence graph,
  // where a gate net additionally connects to the channel it controls.
  NetGraph pull_up;
  NetGraph pull_down;
  NetGraph influence;
  for (const cells::MosInstance& m : topo.fets) {
    (m.pmos ? pull_up : pull_down).add_edge(m.drain, m.source);
    influence.add_edge(m.drain, m.source);
    influence.add_edge(m.gate, m.drain);
    influence.add_edge(m.gate, m.source);
  }

  for (const std::string& input : topo.inputs) {
    const bool drives_gate =
        std::any_of(topo.fets.begin(), topo.fets.end(),
                    [&](const cells::MosInstance& m) {
                      return m.gate == input;
                    });
    if (!drives_gate) {
      sink.error("cell-floating-input",
                 "input pin '" + input + "' drives no gate terminal", cell,
                 input);
    } else if (!influence.reaches(input, topo.output)) {
      sink.error("cell-disconnected",
                 "input pin '" + input +
                     "' has no gate->channel influence path to output '" +
                     topo.output + "'",
                 cell, input);
    }
  }

  if (!pull_up.reaches(topo.output, "vdd")) {
    sink.error("cell-output-unreachable",
               "output '" + topo.output +
                   "' has no pull-up path to vdd through PMOS channels",
               cell, topo.output);
  }
  if (!pull_down.reaches(topo.output, "gnd")) {
    sink.error("cell-output-unreachable",
               "output '" + topo.output +
                   "' has no pull-down path to gnd through NMOS channels",
               cell, topo.output);
  }

  return sink.num_errors() - errors_before;
}

std::size_t lint_layout(const layout::CellLayout& cl,
                        const layout::DesignRules& rules,
                        DiagnosticSink& sink) {
  const std::size_t errors_before = sink.num_errors();
  const std::string cell = std::string(cells::cell_name(cl.type)) + "/" +
                           cells::impl_name(cl.impl);
  // Dimensions are tens of nanometers; 1e-15 m absorbs float round-off.
  constexpr double kEps = 1e-15;

  const struct {
    const char* what;
    double value;
  } dims[] = {
      {"top tier width", cl.top.width},
      {"top tier height", cl.top.height},
      {"bottom tier width", cl.bottom.width},
      {"bottom tier height", cl.bottom.height},
      {"cell width", cl.cell_width},
      {"cell height", cl.cell_height},
  };
  bool geometry_ok = true;
  for (const auto& d : dims) {
    if (!(d.value > 0.0)) {
      sink.error("negative-geometry",
                 format("%s is %g m; all dimensions must be positive",
                        d.what, d.value),
                 cell);
      geometry_ok = false;
    }
  }
  if (!geometry_ok) return sink.num_errors() - errors_before;

  if (cl.impl == cells::Implementation::k2D) {
    const int expected = layout::count_gate_nets(cl.type);
    if (cl.external_mivs != expected) {
      sink.warning("koz-external-miv",
                   format("2D layout reports %d external-contact MIVs but "
                          "the topology has %d gate nets",
                          cl.external_mivs, expected),
                   cell);
    }
    // Every external-contact MIV pays a keep-out square beside the gate it
    // lands on; the top tier must be wide enough to host the device row
    // plus all keep-out allowances.
    const std::size_t n_n = cells::cell_topology(cl.type).num_nmos();
    const double required =
        layout::diffusion_row_width(rules, n_n, /*shared_diffusion=*/true) +
        static_cast<double>(cl.external_mivs) *
            layout::external_miv_width(rules);
    if (cl.top.width + kEps < required) {
      sink.error(
          "koz-violation",
          format("top tier width %.4g nm cannot host %d MIV keep-out "
                 "square(s) beside the device row (needs %.4g nm; keep-out "
                 "edge %.4g nm)",
                 cl.top.width * 1e9, cl.external_mivs, required * 1e9,
                 rules.miv_keepout_edge() * 1e9),
          cell);
    }
  } else if (cl.external_mivs != 0) {
    sink.error("koz-external-miv",
               format("MIV-transistor implementation reports %d "
                      "keep-out-paying external MIVs; the via is the device "
                      "and pays no keep-out",
                      cl.external_mivs),
               cell);
  }

  const double tier_h = std::max(cl.top.height, cl.bottom.height);
  if (cl.cell_height + kEps < tier_h + 2.0 * rules.rail_track) {
    sink.error("rail-overflow",
               format("cell height %.4g nm leaves less than the %.4g nm "
                      "supply-rail track on each side of the %.4g nm device "
                      "row",
                      cl.cell_height * 1e9, rules.rail_track * 1e9,
                      tier_h * 1e9),
               cell);
  }
  const double tier_w = std::max(cl.top.width, cl.bottom.width);
  if (cl.cell_width + kEps < tier_w + 2.0 * rules.cell_margin) {
    sink.error("margin-overflow",
               format("cell width %.4g nm leaves less than the %.4g nm "
                      "boundary margin on each side of the %.4g nm device "
                      "row",
                      cl.cell_width * 1e9, rules.cell_margin * 1e9,
                      tier_w * 1e9),
               cell);
  }

  return sink.num_errors() - errors_before;
}

}  // namespace mivtx::lint
