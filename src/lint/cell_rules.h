// Static analysis of standard-cell topologies and rule-driven layouts.
//
// lint_topology checks the transistor-level schematic (cells/topology.h):
//   cell-floating-input      (error) an input pin drives no gate terminal
//   cell-disconnected        (error) an input has no structural influence
//                            path (gate -> channel hops) to the output
//   cell-output-unreachable  (error) the output has no pull-up path to vdd
//                            through PMOS channels, or no pull-down path to
//                            gnd through NMOS channels
//
// lint_layout checks a CellLayout against the process DesignRules
// (the KOZ rule class of Vemuri & Tida, ISQED'23):
//   negative-geometry   (error) a tier or cell dimension is negative/zero
//   koz-violation       (error) the 2D top tier is too narrow to host its
//                        external-contact MIVs' keep-out squares
//   koz-external-miv    (error) a MIV-transistor implementation reports
//                        keep-out-paying external MIVs (it has none: the
//                        via *is* the device); also warns when a 2D layout's
//                        external MIV count disagrees with the topology
//   rail-overflow       (error) devices intrude into the supply-rail tracks
//   margin-overflow     (error) devices intrude into the cell side margins
#pragma once

#include <cstddef>

#include "cells/topology.h"
#include "layout/cell_layout.h"
#include "layout/rules.h"
#include "lint/diagnostics.h"

namespace mivtx::lint {

// Both return the number of errors added to `sink`.
std::size_t lint_topology(const cells::CellTopology& topo,
                          DiagnosticSink& sink);

std::size_t lint_layout(const layout::CellLayout& cell_layout,
                        const layout::DesignRules& rules,
                        DiagnosticSink& sink);

}  // namespace mivtx::lint
