#include "lint/circuit_rules.h"

#include <vector>

#include "common/strings.h"

namespace mivtx::lint {

namespace {

using spice::Circuit;
using spice::Element;
using spice::ElementKind;
using spice::NodeId;

std::size_t nodes_used(const Element& e) {
  switch (e.kind) {
    case ElementKind::kVcvs:
    case ElementKind::kVccs:
      return 4;
    case ElementKind::kMosfet:
      return 3;
    default:
      return 2;
  }
}

}  // namespace

std::size_t lint_circuit(const Circuit& circuit, DiagnosticSink& sink,
                         const CircuitLintOptions& opts) {
  const std::size_t errors_before = sink.num_errors();

  if (opts.solvability) check_solvable(circuit, sink);

  // Terminal incidence per node; a non-ground node touched exactly once is
  // dangling (a capacitor to an otherwise unused node, a typo'd net, ...).
  std::vector<std::size_t> degree(circuit.num_nodes(), 0);
  std::vector<const Element*> last_touch(circuit.num_nodes(), nullptr);
  for (const Element& e : circuit.elements()) {
    const std::size_t used = nodes_used(e);
    for (std::size_t k = 0; k < used; ++k) {
      ++degree[e.nodes[k]];
      last_touch[e.nodes[k]] = &e;
    }
  }
  for (NodeId n = 1; n < circuit.num_nodes(); ++n) {
    if (degree[n] == 1) {
      sink.warning("dangling-node",
                   "node is referenced by exactly one element terminal",
                   last_touch[n]->name, circuit.node_name(n));
    }
  }

  for (const Element& e : circuit.elements()) {
    if (e.kind != ElementKind::kMosfet) continue;
    const NodeId d = e.nodes[0];
    const NodeId g = e.nodes[1];
    const NodeId s = e.nodes[2];
    if (d == spice::kGround && g == spice::kGround && s == spice::kGround) {
      sink.warning("mos-all-ground",
                   "all three MOSFET terminals are grounded; the device "
                   "contributes nothing",
                   e.name);
    } else if (d == s) {
      sink.warning("mos-shorted",
                   "drain and source are the same node '" +
                       circuit.node_name(d) + "'; the channel is shorted",
                   e.name, circuit.node_name(d));
    }
  }

  return sink.num_errors() - errors_before;
}

std::size_t lint_netlist(const spice::ParsedNetlist& netlist,
                         DiagnosticSink& sink,
                         const CircuitLintOptions& opts) {
  sink.set_source_lines(&netlist.element_lines);
  const std::size_t errors_before = sink.num_errors();

  lint_circuit(netlist.circuit, sink, opts);

  for (const spice::ModelDecl& m : netlist.models) {
    if (!m.referenced) {
      sink.warning("unreferenced-model",
                   "model card '" + m.name + "' is never instantiated", "",
                   "", m.line);
    }
  }

  return sink.num_errors() - errors_before;
}

}  // namespace mivtx::lint
