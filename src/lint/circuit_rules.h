// Full static analysis over a spice::Circuit / parsed netlist.
//
// lint_circuit layers connectivity-style rules on top of the pre-solve
// solvability rules of lint/presolve.h:
//   dangling-node       (warning) node referenced by exactly one element
//                       terminal — usually a typo'd net name
//   mos-shorted         (warning) MOSFET with drain and source on the same
//                       node (the channel can never do anything)
//   mos-all-ground      (warning) MOSFET with all three terminals grounded
//
// lint_netlist additionally attaches parser line numbers to every finding
// (via ParsedNetlist::element_lines) and checks declaration hygiene:
//   unreferenced-model  (warning) .model card no device instantiates
#pragma once

#include <cstddef>

#include "lint/diagnostics.h"
#include "lint/presolve.h"
#include "spice/circuit.h"
#include "spice/parser.h"

namespace mivtx::lint {

struct CircuitLintOptions {
  // Include the pre-solve singularity rules (lint/presolve.h).  Off when the
  // caller has already gated on check_solvable and only wants style rules.
  bool solvability = true;
};

// Returns the number of errors added to `sink`.
std::size_t lint_circuit(const spice::Circuit& circuit, DiagnosticSink& sink,
                         const CircuitLintOptions& opts = {});

// Circuit rules plus netlist-level declaration checks, with line numbers.
// Installs netlist.element_lines as the sink's line map (and leaves it
// installed, so `netlist` must outlive later reports into `sink`).
std::size_t lint_netlist(const spice::ParsedNetlist& netlist,
                         DiagnosticSink& sink,
                         const CircuitLintOptions& opts = {});

}  // namespace mivtx::lint
