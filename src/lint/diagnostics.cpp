#include "lint/diagnostics.h"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "common/strings.h"

namespace mivtx::lint {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

namespace {

void json_escape_into(std::ostringstream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << format("\\u%04x", c);
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

void sort_diagnostics(std::vector<Diagnostic>& diags) {
  std::stable_sort(diags.begin(), diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.file, a.line, a.rule, a.element, a.node,
                                     a.message, a.severity) <
                            std::tie(b.file, b.line, b.rule, b.element, b.node,
                                     b.message, b.severity);
                   });
}

std::string render_text(const std::vector<Diagnostic>& diags) {
  std::vector<Diagnostic> sorted = diags;
  sort_diagnostics(sorted);
  std::ostringstream os;
  for (const Diagnostic& d : sorted) {
    os << severity_name(d.severity) << "[" << d.rule << "]";
    if (!d.file.empty()) os << " " << d.file;
    if (!d.element.empty()) os << " " << d.element;
    if (!d.node.empty()) os << " node '" << d.node << "'";
    if (d.line > 0) os << " (line " << d.line << ")";
    os << ": " << d.message << "\n";
  }
  return os.str();
}

std::string render_json(const std::vector<Diagnostic>& diags) {
  std::vector<Diagnostic> sorted = diags;
  sort_diagnostics(sorted);
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const Diagnostic& d : sorted) {
    if (d.severity == Severity::kError) ++errors;
    if (d.severity == Severity::kWarning) ++warnings;
  }
  std::ostringstream os;
  os << "{\"errors\":" << errors << ",\"warnings\":" << warnings
     << ",\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : sorted) {
    if (!first) os << ",";
    first = false;
    os << "{\"severity\":\"" << severity_name(d.severity) << "\",\"rule\":\"";
    json_escape_into(os, d.rule);
    os << "\",\"message\":\"";
    json_escape_into(os, d.message);
    os << "\"";
    if (!d.element.empty()) {
      os << ",\"element\":\"";
      json_escape_into(os, d.element);
      os << "\"";
    }
    if (!d.node.empty()) {
      os << ",\"node\":\"";
      json_escape_into(os, d.node);
      os << "\"";
    }
    if (d.line > 0) os << ",\"line\":" << d.line;
    if (!d.file.empty()) {
      os << ",\"file\":\"";
      json_escape_into(os, d.file);
      os << "\"";
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

void DiagnosticSink::report(Diagnostic d) {
  if (is_suppressed(d.rule)) return;
  if (d.severity == Severity::kError && downgraded_.count(d.rule) > 0) {
    d.severity = Severity::kWarning;
  }
  if (d.line == 0 && !d.element.empty() && source_lines_ != nullptr) {
    const auto it = source_lines_->find(to_lower(d.element));
    if (it != source_lines_->end()) d.line = it->second;
  }
  if (d.file.empty()) d.file = default_file_;
  diags_.push_back(std::move(d));
}

void DiagnosticSink::error(std::string rule, std::string message,
                           std::string element, std::string node, int line) {
  report(Diagnostic{Severity::kError, std::move(rule), std::move(message),
                    std::move(element), std::move(node), line, {}});
}

void DiagnosticSink::warning(std::string rule, std::string message,
                             std::string element, std::string node, int line) {
  report(Diagnostic{Severity::kWarning, std::move(rule), std::move(message),
                    std::move(element), std::move(node), line, {}});
}

void DiagnosticSink::info(std::string rule, std::string message,
                          std::string element, std::string node, int line) {
  report(Diagnostic{Severity::kInfo, std::move(rule), std::move(message),
                    std::move(element), std::move(node), line, {}});
}

std::size_t DiagnosticSink::num_errors() const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

std::size_t DiagnosticSink::num_warnings() const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == Severity::kWarning) ++n;
  }
  return n;
}

}  // namespace mivtx::lint
