// Structured diagnostics for the static analyzers (lint/*).
//
// A Diagnostic is one finding of one rule: severity, a stable kebab-case
// rule id (the unit of enable/suppress and of test assertions), a
// human-readable message, and optional anchors (element name, node/net name,
// 1-based netlist line).  DiagnosticSink collects findings, applies per-rule
// suppression/downgrading at report time, resolves line numbers through an
// optional element->line map, and renders either a plain-text listing or a
// machine-readable JSON document.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace mivtx::lint {

enum class Severity { kInfo, kWarning, kError };

const char* severity_name(Severity s);

struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string rule;     // stable rule id, e.g. "no-dc-path"
  std::string message;  // human-readable explanation
  std::string element;  // offending element / device / cell ("" if n/a)
  std::string node;     // offending node or net ("" if n/a)
  int line = 0;         // 1-based source line (0 = unknown)
  std::string file;     // source artifact the finding anchors to ("" if n/a)
};

// Deterministic report order: (file, line, rule, element, node, message,
// severity).  Every renderer sorts a copy through this before emitting, so
// text/JSON/SARIF output and baseline files are byte-stable regardless of
// the order passes ran in.  DiagnosticSink::diagnostics() itself stays in
// reporting order (tests assert on it).
void sort_diagnostics(std::vector<Diagnostic>& diags);

// Render `diags` one finding per line (sorted):
//   error[no-dc-path] node 'x' (line 4): no DC path to ground
std::string render_text(const std::vector<Diagnostic>& diags);
// Render as {"errors":N,"warnings":N,"diagnostics":[{...},...]} (sorted).
std::string render_json(const std::vector<Diagnostic>& diags);

class DiagnosticSink {
 public:
  // Per-rule controls; both apply to findings reported afterwards.
  void suppress(const std::string& rule) { suppressed_.insert(rule); }
  // Demote a rule's errors to warnings (keeps the finding visible without
  // failing a gate).
  void downgrade(const std::string& rule) { downgraded_.insert(rule); }
  bool is_suppressed(const std::string& rule) const {
    return suppressed_.count(rule) > 0;
  }

  // Resolve line numbers for findings whose `element` is set but whose
  // `line` is 0.  Keys are lower-cased element names; the map must outlive
  // the reporting calls (the sink does not copy it).
  void set_source_lines(const std::unordered_map<std::string, int>* lines) {
    source_lines_ = lines;
  }

  // Default artifact anchor stamped onto findings reported with an empty
  // `file` (the analyzer sets this to the netlist path / design name once
  // instead of threading it through every rule).
  void set_default_file(std::string file) { default_file_ = std::move(file); }

  void report(Diagnostic d);
  void error(std::string rule, std::string message, std::string element = "",
             std::string node = "", int line = 0);
  void warning(std::string rule, std::string message, std::string element = "",
               std::string node = "", int line = 0);
  void info(std::string rule, std::string message, std::string element = "",
            std::string node = "", int line = 0);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  std::size_t num_errors() const;
  std::size_t num_warnings() const;
  bool has_errors() const { return num_errors() > 0; }
  void clear() { diags_.clear(); }

  std::string render_text() const { return lint::render_text(diags_); }
  std::string render_json() const { return lint::render_json(diags_); }

 private:
  std::vector<Diagnostic> diags_;
  std::set<std::string> suppressed_;
  std::set<std::string> downgraded_;
  std::string default_file_;
  const std::unordered_map<std::string, int>* source_lines_ = nullptr;
};

}  // namespace mivtx::lint
