#include "lint/presolve.h"

#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include "common/strings.h"
#include "spice/circuit.h"

namespace mivtx::lint {

namespace {

using spice::Circuit;
using spice::Element;
using spice::ElementKind;
using spice::NodeId;

// Number of node slots an element actually uses (see Element::nodes).
std::size_t nodes_used(const Element& e) {
  switch (e.kind) {
    case ElementKind::kVcvs:
    case ElementKind::kVccs:
      return 4;
    case ElementKind::kMosfet:
      return 3;
    default:
      return 2;
  }
}

const char* value_unit(ElementKind kind) {
  switch (kind) {
    case ElementKind::kResistor:
      return "ohm";
    case ElementKind::kCapacitor:
      return "farad";
    default:
      return "henry";
  }
}

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t a) {
    while (parent_[a] != a) {
      parent_[a] = parent_[parent_[a]];  // path halving
      a = parent_[a];
    }
    return a;
  }

  // False if a and b were already in the same set.
  bool merge(std::size_t a, std::size_t b) {
    const std::size_t ra = find(a);
    const std::size_t rb = find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::size_t check_solvable(const Circuit& circuit, DiagnosticSink& sink) {
  const std::size_t errors_before = sink.num_errors();
  const std::vector<Element>& elements = circuit.elements();

  // --- nonpositive-value: R/C/L must be finite and positive ---------------
  for (const Element& e : elements) {
    if (e.kind != ElementKind::kResistor &&
        e.kind != ElementKind::kCapacitor && e.kind != ElementKind::kInductor)
      continue;
    if (!std::isfinite(e.value) || e.value <= 0.0) {
      sink.error("nonpositive-value",
                 format("value %g %s must be positive and finite", e.value,
                        value_unit(e.kind)),
                 e.name);
    }
  }

  // --- no-ground: nothing references node 0 at all ------------------------
  bool touches_ground = false;
  for (const Element& e : elements) {
    const std::size_t used = nodes_used(e);
    for (std::size_t k = 0; k < used; ++k) {
      if (e.nodes[k] == spice::kGround) touches_ground = true;
    }
  }
  if (!touches_ground && circuit.num_nodes() > 1) {
    sink.error("no-ground",
               "no element terminal is connected to ground (node 0); every "
               "node voltage is floating");
  }

  // --- vsource-shorted / vsource-loop / inductor-loop ----------------------
  // V, E and L branches each pin the voltage across a node pair (L pins it
  // to 0 at DC).  Two such branches across the same pair — any cycle in the
  // V/E/L edge graph — make the MNA matrix singular.
  {
    UnionFind uf(circuit.num_nodes());
    for (const Element& e : elements) {
      if (e.kind != ElementKind::kVoltageSource &&
          e.kind != ElementKind::kVcvs && e.kind != ElementKind::kInductor)
        continue;
      const bool is_l = e.kind == ElementKind::kInductor;
      if (e.nodes[0] == e.nodes[1]) {
        if (is_l) {
          sink.error("inductor-loop",
                     "inductor shorted on itself (both terminals on node '" +
                         circuit.node_name(e.nodes[0]) + "')",
                     e.name, circuit.node_name(e.nodes[0]));
        } else {
          sink.error("vsource-shorted",
                     "both terminals on node '" +
                         circuit.node_name(e.nodes[0]) +
                         "'; the branch equation is unsatisfiable",
                     e.name, circuit.node_name(e.nodes[0]));
        }
        continue;
      }
      if (!uf.merge(e.nodes[0], e.nodes[1])) {
        sink.error(is_l ? "inductor-loop" : "vsource-loop",
                   std::string(is_l ? "inductor" : "voltage source") +
                       " closes a loop of V/E/L branches; the node-pair "
                       "voltage is over-constrained (singular at DC)",
                   e.name);
      }
    }
  }

  // --- no-dc-path / isource-cutset -----------------------------------------
  // DC-conducting edges: R, L, V branches; a VCVS output pair; a MOSFET
  // channel (drain-source).  Capacitors are open at DC; current sources and
  // VCCS outputs conduct but do not constrain a voltage.  Every node must
  // reach ground through conducting edges, otherwise its rows of the DC
  // matrix are rank-deficient (or, with a current source injecting into the
  // cut component, KCL is unsatisfiable).
  if (touches_ground) {
    UnionFind uf(circuit.num_nodes());
    for (const Element& e : elements) {
      switch (e.kind) {
        case ElementKind::kResistor:
        case ElementKind::kInductor:
        case ElementKind::kVoltageSource:
        case ElementKind::kVcvs:
          uf.merge(e.nodes[0], e.nodes[1]);
          break;
        case ElementKind::kMosfet:
          uf.merge(e.nodes[0], e.nodes[2]);  // drain - source
          break;
        case ElementKind::kCapacitor:
        case ElementKind::kCurrentSource:
        case ElementKind::kVccs:
          break;
      }
    }

    const std::size_t ground_root = uf.find(spice::kGround);
    std::map<std::size_t, std::vector<NodeId>> floating;  // root -> nodes
    for (NodeId n = 1; n < circuit.num_nodes(); ++n) {
      const std::size_t root = uf.find(n);
      if (root != ground_root) floating[root].push_back(n);
    }
    if (!floating.empty()) {
      // Components a current source injects into fail KCL outright.
      std::set<std::size_t> isource_roots;
      for (const Element& e : elements) {
        if (e.kind != ElementKind::kCurrentSource &&
            e.kind != ElementKind::kVccs)
          continue;
        isource_roots.insert(uf.find(e.nodes[0]));
        isource_roots.insert(uf.find(e.nodes[1]));
      }
      for (const auto& [root, nodes] : floating) {
        std::string names = "'" + circuit.node_name(nodes[0]) + "'";
        for (std::size_t k = 1; k < nodes.size() && k < 4; ++k) {
          names += ", '" + circuit.node_name(nodes[k]) + "'";
        }
        if (nodes.size() > 4) {
          names += format(" (+%zu more)", nodes.size() - 4);
        }
        if (isource_roots.count(root) > 0) {
          sink.error("isource-cutset",
                     "current source drives node(s) " + names +
                         " which have no DC return path to ground; KCL is "
                         "unsatisfiable there",
                     "", circuit.node_name(nodes[0]));
        } else {
          sink.error("no-dc-path",
                     "node(s) " + names +
                         " have no DC path to ground (capacitor-only cut); "
                         "the DC operating point is singular",
                     "", circuit.node_name(nodes[0]));
        }
      }
    }
  }

  return sink.num_errors() - errors_before;
}

}  // namespace mivtx::lint
