// Pre-solve structural solvability checks over a spice::Circuit.
//
// These are the rules whose violation makes the MNA system singular (or its
// solution gmin-dependent, i.e. arbitrary), so the DC/transient drivers run
// them before assembling a matrix and fail fast with a diagnostic instead of
// a numeric solver error.  Detection is union-find over the element graph —
// O(n alpha(n)), negligible next to one Newton iteration.
//
// Rules emitted (all Severity::kError):
//   no-ground         circuit has nodes but no element touches ground
//   no-dc-path        component with no DC path to ground (capacitor-only
//                     cut: at DC every cap is open, so the component's node
//                     voltages are unconstrained -> singular matrix rows)
//   isource-cutset    current source drives a component with no DC return
//                     path (KCL in that component is unsatisfiable)
//   vsource-shorted   V or E element with both terminals on the same node
//   vsource-loop      cycle of V/E branches (two branch equations constrain
//                     the same node-pair voltage)
//   inductor-loop     cycle of L branches, possibly through V/E branches
//                     (at DC an inductor is a 0 V branch: same singularity)
//   nonpositive-value R/C/L with a zero, negative, or non-finite value
//
// This file lives in src/lint/ but is compiled into mivtx_spice so the
// solver entry points can call it without a library cycle; the full
// analyzer (lint/circuit_rules.h, library mivtx_lint) layers the style
// rules on top.
#pragma once

#include <cstddef>

#include "lint/diagnostics.h"

namespace mivtx::spice {
class Circuit;
}  // namespace mivtx::spice

namespace mivtx::lint {

// Appends one diagnostic per violation to `sink`; returns the number of
// *errors* added (suppressed rules do not count, which is also the opt-out
// mechanism for individual rules).
std::size_t check_solvable(const spice::Circuit& circuit,
                           DiagnosticSink& sink);

}  // namespace mivtx::lint
