#include "place/placer.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mivtx::place {

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kCoupled: return "coupled";
    case Mode::kPerTier: return "per-tier";
  }
  return "?";
}

double Placement::chip_area() const {
  if (mode == Mode::kCoupled) return coupled.area();
  return std::max(top.area(), bottom.area());
}

TierPlacement Placer::pack(std::vector<Item> items) const {
  TierPlacement out;
  if (items.empty()) return out;

  // Rows have uniform height: the tallest item (cells in one implementation
  // share their height by construction, but per-tier footprints can vary a
  // little across cell types).
  double row_height = 0.0;
  double total_area = 0.0;
  double total_width = 0.0;
  for (const Item& it : items) {
    row_height = std::max(row_height, it.height);
    total_area += it.width * it.height;
    total_width += it.width;
  }

  // Choose a row capacity so the outline approaches the target aspect
  // ratio: width ~ aspect * height = aspect * rows * row_height and
  // rows * width ~ total_width.
  const double est_rows = std::sqrt(
      total_width / (opts_.target_aspect * (row_height + opts_.row_gap)));
  const std::size_t rows = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(est_rows)));
  double capacity = total_width / static_cast<double>(rows);
  // Never narrower than the widest single cell.
  for (const Item& it : items) capacity = std::max(capacity, it.width);
  capacity *= 1.0 + 1e-12;  // guard exact-fit rounding

  // First-fit-decreasing: sort by width (deterministic tiebreak on name).
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.width != b.width) return a.width > b.width;
    return a.instance < b.instance;
  });

  std::vector<double> row_used;
  std::vector<std::vector<const Item*>> row_items;
  for (const Item& it : items) {
    bool placed = false;
    for (std::size_t r = 0; r < row_used.size(); ++r) {
      if (row_used[r] + it.width <= capacity) {
        row_used[r] += it.width;
        row_items[r].push_back(&it);
        placed = true;
        break;
      }
    }
    if (!placed) {
      row_used.push_back(it.width);
      row_items.push_back({&it});
    }
  }

  // Materialize coordinates.
  double max_width = 0.0;
  for (std::size_t r = 0; r < row_items.size(); ++r) {
    double x = 0.0;
    const double y =
        static_cast<double>(r) * (row_height + opts_.row_gap);
    for (const Item* it : row_items[r]) {
      out.cells.push_back(
          PlacedCell{it->instance, it->type, x, y, it->width, it->height});
      x += it->width;
    }
    max_width = std::max(max_width, x);
  }
  out.width = max_width;
  out.height = static_cast<double>(row_items.size()) * row_height +
               (row_items.empty()
                    ? 0.0
                    : static_cast<double>(row_items.size() - 1) * opts_.row_gap);
  out.cell_area = total_area;
  return out;
}

Placement Placer::place(const gatelevel::GateNetlist& netlist,
                        cells::Implementation impl, Mode mode) const {
  MIVTX_EXPECT(netlist.finalized(), "netlist not finalized");
  Placement out;
  out.mode = mode;
  out.impl = impl;

  // Both modes pad tier footprints with the same abutment/rail allowance,
  // so the coupled-vs-per-tier comparison isolates the max() tier coupling
  // rather than differences in bookkeeping overhead.
  const layout::DesignRules& r = model_.rules();
  const double pad_w = r.cell_margin;
  const double pad_h = r.rail_track;

  std::vector<Item> coupled, top, bottom;
  for (const gatelevel::Instance& inst : netlist.instances()) {
    const layout::CellLayout l = model_.layout_cell(inst.type, impl);
    if (mode == Mode::kCoupled) {
      // Coupled footprint: the Fig. 5(c) rule - the max of the tier
      // dimensions, since the tiers must land on the same site.
      coupled.push_back(Item{inst.name, inst.type,
                             std::max(l.top.width, l.bottom.width) + pad_w,
                             std::max(l.top.height, l.bottom.height) + pad_h});
    } else {
      top.push_back(Item{inst.name, inst.type, l.top.width + pad_w,
                         l.top.height + pad_h});
      bottom.push_back(Item{inst.name, inst.type, l.bottom.width + pad_w,
                            l.bottom.height + pad_h});
    }
  }
  if (mode == Mode::kCoupled) {
    out.coupled = pack(std::move(coupled));
  } else {
    out.top = pack(std::move(top));
    out.bottom = pack(std::move(bottom));
  }
  return out;
}

}  // namespace mivtx::place
