// Row-based standard-cell placement for the two-tier M3D process — the
// paper's stated future work ("placement algorithms that consider the
// bottom-layer and top-layer device placement separately").
//
// Two modes:
//   kCoupled  — classic M3D standard-cell placement: each cell occupies its
//               coupled footprint (max of tier dimensions, the Fig. 5(c)
//               area rule) and both tiers share the row grid.
//   kPerTier  — each tier is placed independently with its own per-tier
//               footprints; the chip outline is the larger tier.  This is
//               what banks the paper's "up to 31 %" substrate saving.
//
// Placement itself is first-fit-decreasing row packing against a target
// aspect ratio, with a deterministic tie order — adequate for area studies
// (no wirelength objective; see DESIGN.md).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cells/netgen.h"
#include "gatelevel/netlist.h"
#include "layout/cell_layout.h"

namespace mivtx::place {

enum class Mode { kCoupled, kPerTier };
const char* mode_name(Mode mode);

struct PlacedCell {
  std::string instance;
  cells::CellType type = cells::CellType::kInv1;
  double x = 0.0, y = 0.0;  // lower-left corner (m)
  double width = 0.0, height = 0.0;
};

struct TierPlacement {
  std::vector<PlacedCell> cells;
  double width = 0.0;   // outline (m)
  double height = 0.0;
  double cell_area = 0.0;  // sum of placed footprints
  double area() const { return width * height; }
  // Packing efficiency: placed footprint / outline.
  double utilization() const {
    return area() > 0.0 ? cell_area / area() : 0.0;
  }
};

struct Placement {
  Mode mode = Mode::kCoupled;
  cells::Implementation impl = cells::Implementation::k2D;
  // Coupled mode: only `coupled` is populated.  Per-tier mode: top and
  // bottom are placed independently.
  TierPlacement coupled;
  TierPlacement top;
  TierPlacement bottom;

  // Chip outline area (m^2): the coupled outline, or the max of the two
  // tier outlines (the tiers stack vertically).
  double chip_area() const;
};

struct PlacerOptions {
  double target_aspect = 1.0;  // desired width/height of the outline
  // Inter-row spacing (shared rail allocation is already inside the cell
  // heights, so default 0).
  double row_gap = 0.0;
};

class Placer {
 public:
  explicit Placer(layout::DesignRules rules = {}, PlacerOptions opts = {})
      : model_(rules), opts_(opts) {}

  Placement place(const gatelevel::GateNetlist& netlist,
                  cells::Implementation impl, Mode mode) const;

 private:
  struct Item {
    std::string instance;
    cells::CellType type;
    double width, height;
  };
  // First-fit-decreasing row packing of uniform-height items.
  TierPlacement pack(std::vector<Item> items) const;

  layout::LayoutModel model_;
  PlacerOptions opts_;
};

}  // namespace mivtx::place
