#include "runtime/artifact_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "common/error.h"
#include "common/log.h"
#include "common/strings.h"

namespace mivtx::runtime {

namespace fs = std::filesystem;

std::string CacheKey::id() const {
  return domain + "-" + format("%016llx", static_cast<unsigned long long>(digest));
}

std::string CacheKey::filename() const { return id() + ".art"; }

ArtifactCache::ArtifactCache(Options opts) : opts_(std::move(opts)) {
  MIVTX_EXPECT(opts_.max_entries > 0, "cache needs at least one entry");
  if (!opts_.disk_dir.empty()) {
    std::error_code ec;
    fs::create_directories(opts_.disk_dir, ec);
    if (ec) {
      MIVTX_WARN << "artifact cache: cannot create '" << opts_.disk_dir
                 << "' (" << ec.message() << "); falling back to memory-only";
      opts_.disk_dir.clear();
    }
  }
  if (!opts_.disk_dir.empty()) {
    // Seed the usage tracker from artifacts a previous process left behind,
    // so the budget covers the whole directory, not just this run's stores.
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(opts_.disk_dir, ec)) {
      if (entry.path().extension() != ".art") continue;
      std::error_code size_ec;
      const auto size = entry.file_size(size_ec);
      if (!size_ec) disk_bytes_ += size;
    }
  }
}

std::string ArtifactCache::env_disk_dir() {
  const char* dir = std::getenv("MIVTX_CACHE_DIR");
  return dir == nullptr ? std::string() : std::string(dir);
}

void ArtifactCache::insert_locked(const std::string& id,
                                  const std::string& payload) {
  const auto it = index_.find(id);
  if (it != index_.end()) {
    it->second->payload = payload;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{id, payload});
  index_[id] = lru_.begin();
  while (lru_.size() > opts_.max_entries) {
    index_.erase(lru_.back().id);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::optional<std::string> ArtifactCache::get(const CacheKey& key) {
  {
    std::lock_guard<std::mutex> lk(m_);
    const auto it = index_.find(key.id());
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      return it->second->payload;
    }
  }
  if (!opts_.disk_dir.empty()) {
    if (auto payload = disk_get(key)) {
      std::lock_guard<std::mutex> lk(m_);
      insert_locked(key.id(), *payload);
      ++stats_.hits;
      ++stats_.disk_hits;
      return payload;
    }
  }
  std::lock_guard<std::mutex> lk(m_);
  ++stats_.misses;
  return std::nullopt;
}

void ArtifactCache::put(const CacheKey& key, const std::string& payload) {
  {
    std::lock_guard<std::mutex> lk(m_);
    insert_locked(key.id(), payload);
    ++stats_.stores;
  }
  if (!opts_.disk_dir.empty()) disk_put(key, payload);
}

std::optional<std::string> ArtifactCache::disk_get(const CacheKey& key) {
  const fs::path path = fs::path(opts_.disk_dir) / key.filename();
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // plain miss, not corruption
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string file = buf.str();

  // Header: "mivtx-artifact <format> <domain> <digest-hex> <bytes>\n"
  const std::size_t nl = file.find('\n');
  bool ok = nl != std::string::npos;
  if (ok) {
    const auto fields = split(file.substr(0, nl), " ");
    ok = fields.size() == 5 && fields[0] == "mivtx-artifact" &&
         fields[1] == std::to_string(kCacheFormatVersion) &&
         fields[2] == key.domain &&
         fields[3] == format("%016llx",
                             static_cast<unsigned long long>(key.digest)) &&
         fields[4] == std::to_string(file.size() - nl - 1);
  }
  if (!ok) {
    MIVTX_WARN << "artifact cache: rejecting corrupt file " << path.string();
    std::lock_guard<std::mutex> lk(m_);
    ++stats_.corrupt;
    return std::nullopt;
  }
  return file.substr(nl + 1);
}

void ArtifactCache::disk_put(const CacheKey& key, const std::string& payload) {
  const fs::path path = fs::path(opts_.disk_dir) / key.filename();
  // Write-to-temp + rename so a concurrent reader (or a crash) never sees a
  // half-written artifact.  The temp name carries the writer's pid: with a
  // fixed ".tmp" suffix, two processes sharing one cache dir (benches with
  // the same --cache-dir, parallel ctest workers) would truncate each
  // other's half-written temp file and rename interleaved garbage into
  // place.  Distinct temp names make the final rename the only contended
  // step, and rename is atomic — last writer wins with complete content.
  const fs::path tmp =
      path.string() + format(".%ld.tmp", static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      MIVTX_WARN << "artifact cache: cannot write " << tmp.string();
      return;
    }
    out << "mivtx-artifact " << kCacheFormatVersion << ' ' << key.domain << ' '
        << format("%016llx", static_cast<unsigned long long>(key.digest))
        << ' ' << payload.size() << '\n'
        << payload;
  }
  std::error_code ec;
  std::uint64_t replaced = 0;
  const auto old_size = fs::file_size(path, ec);
  if (!ec) replaced = old_size;
  fs::rename(tmp, path, ec);
  if (ec) {
    MIVTX_WARN << "artifact cache: rename to " << path.string() << " failed ("
               << ec.message() << ")";
    fs::remove(tmp, ec);
    return;
  }
  std::lock_guard<std::mutex> lk(m_);
  const auto size = fs::file_size(path, ec);
  if (!ec) {
    disk_bytes_ -= std::min(replaced, disk_bytes_);
    disk_bytes_ += size;
  }
  if (opts_.max_disk_bytes > 0 && disk_bytes_ > opts_.max_disk_bytes)
    disk_gc_locked();
}

void ArtifactCache::disk_gc_locked() {
  struct Victim {
    fs::file_time_type mtime;
    std::string name;  // tie-break for equal mtimes: deterministic order
    std::uint64_t size = 0;
  };
  std::vector<Victim> victims;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(opts_.disk_dir, ec)) {
    if (entry.path().extension() != ".art") continue;
    const std::string name = entry.path().filename().string();
    if (pins_.count(name) > 0) continue;  // in-flight: never evicted
    std::error_code item_ec;
    const auto mtime = entry.last_write_time(item_ec);
    if (item_ec) continue;
    const auto size = entry.file_size(item_ec);
    if (item_ec) continue;
    victims.push_back(Victim{mtime, name, size});
  }
  std::sort(victims.begin(), victims.end(), [](const Victim& a,
                                               const Victim& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.name < b.name;
  });
  for (const Victim& v : victims) {
    if (disk_bytes_ <= opts_.max_disk_bytes) break;
    std::error_code rm_ec;
    if (!fs::remove(fs::path(opts_.disk_dir) / v.name, rm_ec) || rm_ec)
      continue;
    disk_bytes_ -= std::min(v.size, disk_bytes_);
    ++stats_.disk_evictions;
  }
}

void ArtifactCache::pin(const CacheKey& key) {
  std::lock_guard<std::mutex> lk(m_);
  pins_[key.filename()] += 1;
}

void ArtifactCache::unpin(const CacheKey& key) {
  std::lock_guard<std::mutex> lk(m_);
  const auto it = pins_.find(key.filename());
  if (it == pins_.end()) return;
  if (--it->second <= 0) pins_.erase(it);
}

CachePin::CachePin(ArtifactCache* cache, CacheKey key)
    : cache_(cache), key_(std::move(key)) {
  if (cache_ != nullptr) cache_->pin(key_);
}

CachePin::~CachePin() {
  if (cache_ != nullptr) cache_->unpin(key_);
}

CachePin::CachePin(CachePin&& o) noexcept
    : cache_(o.cache_), key_(std::move(o.key_)) {
  o.cache_ = nullptr;
}

CachePin& CachePin::operator=(CachePin&& o) noexcept {
  if (this != &o) {
    if (cache_ != nullptr) cache_->unpin(key_);
    cache_ = o.cache_;
    key_ = std::move(o.key_);
    o.cache_ = nullptr;
  }
  return *this;
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lk(m_);
  return stats_;
}

std::size_t ArtifactCache::memory_entries() const {
  std::lock_guard<std::mutex> lk(m_);
  return lru_.size();
}

std::uint64_t ArtifactCache::disk_usage_bytes() const {
  std::lock_guard<std::mutex> lk(m_);
  return disk_bytes_;
}

}  // namespace mivtx::runtime
