#include "runtime/artifact_cache.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/error.h"
#include "common/log.h"
#include "common/strings.h"

namespace mivtx::runtime {

namespace fs = std::filesystem;

std::string CacheKey::id() const {
  return domain + "-" + format("%016llx", static_cast<unsigned long long>(digest));
}

std::string CacheKey::filename() const { return id() + ".art"; }

ArtifactCache::ArtifactCache(Options opts) : opts_(std::move(opts)) {
  MIVTX_EXPECT(opts_.max_entries > 0, "cache needs at least one entry");
  if (!opts_.disk_dir.empty()) {
    std::error_code ec;
    fs::create_directories(opts_.disk_dir, ec);
    if (ec) {
      MIVTX_WARN << "artifact cache: cannot create '" << opts_.disk_dir
                 << "' (" << ec.message() << "); falling back to memory-only";
      opts_.disk_dir.clear();
    }
  }
}

std::string ArtifactCache::env_disk_dir() {
  const char* dir = std::getenv("MIVTX_CACHE_DIR");
  return dir == nullptr ? std::string() : std::string(dir);
}

void ArtifactCache::insert_locked(const std::string& id,
                                  const std::string& payload) {
  const auto it = index_.find(id);
  if (it != index_.end()) {
    it->second->payload = payload;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{id, payload});
  index_[id] = lru_.begin();
  while (lru_.size() > opts_.max_entries) {
    index_.erase(lru_.back().id);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::optional<std::string> ArtifactCache::get(const CacheKey& key) {
  {
    std::lock_guard<std::mutex> lk(m_);
    const auto it = index_.find(key.id());
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      return it->second->payload;
    }
  }
  if (!opts_.disk_dir.empty()) {
    if (auto payload = disk_get(key)) {
      std::lock_guard<std::mutex> lk(m_);
      insert_locked(key.id(), *payload);
      ++stats_.hits;
      ++stats_.disk_hits;
      return payload;
    }
  }
  std::lock_guard<std::mutex> lk(m_);
  ++stats_.misses;
  return std::nullopt;
}

void ArtifactCache::put(const CacheKey& key, const std::string& payload) {
  {
    std::lock_guard<std::mutex> lk(m_);
    insert_locked(key.id(), payload);
    ++stats_.stores;
  }
  if (!opts_.disk_dir.empty()) disk_put(key, payload);
}

std::optional<std::string> ArtifactCache::disk_get(const CacheKey& key) {
  const fs::path path = fs::path(opts_.disk_dir) / key.filename();
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // plain miss, not corruption
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string file = buf.str();

  // Header: "mivtx-artifact <format> <domain> <digest-hex> <bytes>\n"
  const std::size_t nl = file.find('\n');
  bool ok = nl != std::string::npos;
  if (ok) {
    const auto fields = split(file.substr(0, nl), " ");
    ok = fields.size() == 5 && fields[0] == "mivtx-artifact" &&
         fields[1] == std::to_string(kCacheFormatVersion) &&
         fields[2] == key.domain &&
         fields[3] == format("%016llx",
                             static_cast<unsigned long long>(key.digest)) &&
         fields[4] == std::to_string(file.size() - nl - 1);
  }
  if (!ok) {
    MIVTX_WARN << "artifact cache: rejecting corrupt file " << path.string();
    std::lock_guard<std::mutex> lk(m_);
    ++stats_.corrupt;
    return std::nullopt;
  }
  return file.substr(nl + 1);
}

void ArtifactCache::disk_put(const CacheKey& key, const std::string& payload) {
  const fs::path path = fs::path(opts_.disk_dir) / key.filename();
  // Write-to-temp + rename so a concurrent reader (or a crash) never sees a
  // half-written artifact.  The temp name carries the writer's pid: with a
  // fixed ".tmp" suffix, two processes sharing one cache dir (benches with
  // the same --cache-dir, parallel ctest workers) would truncate each
  // other's half-written temp file and rename interleaved garbage into
  // place.  Distinct temp names make the final rename the only contended
  // step, and rename is atomic — last writer wins with complete content.
  const fs::path tmp =
      path.string() + format(".%ld.tmp", static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      MIVTX_WARN << "artifact cache: cannot write " << tmp.string();
      return;
    }
    out << "mivtx-artifact " << kCacheFormatVersion << ' ' << key.domain << ' '
        << format("%016llx", static_cast<unsigned long long>(key.digest))
        << ' ' << payload.size() << '\n'
        << payload;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    MIVTX_WARN << "artifact cache: rename to " << path.string() << " failed ("
               << ec.message() << ")";
    fs::remove(tmp, ec);
  }
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lk(m_);
  return stats_;
}

std::size_t ArtifactCache::memory_entries() const {
  std::lock_guard<std::mutex> lk(m_);
  return lru_.size();
}

}  // namespace mivtx::runtime
