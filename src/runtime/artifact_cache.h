// Content-addressed artifact cache: in-memory LRU + optional on-disk store.
//
// Keys are (domain, 64-bit stable digest); producers hash *every* input the
// artifact depends on — process parameters, sweep grids, model cards,
// options — plus a schema version (core/artifacts.h), so any physics or
// format change invalidates cleanly: a new digest simply never finds the
// old payload.  Payloads are opaque strings (the flow serializes its
// artifacts as lossless text, see core/artifacts.h).
//
// Disk files carry a validated header line; any mismatch (truncation,
// partial write, foreign file) counts as a miss and is reported in stats,
// never an error — a corrupt cache can only cost recomputation.
//
// The disk layer can be bounded (Options::max_disk_bytes, mivtx_serve
// --cache-max-bytes): when a store pushes the directory over budget, the
// oldest artifacts by mtime are garbage-collected until it fits again.
// Keys pinned through pin()/CachePin — entries some in-flight computation
// or response still needs — are never evicted.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace mivtx::runtime {

// On-disk container format version (header line), independent of the
// artifact *schema* versions the key digests carry.
inline constexpr int kCacheFormatVersion = 1;

struct CacheKey {
  std::string domain;        // short tag: "char", "card", "ppa", ...
  std::uint64_t digest = 0;  // StableHash of every input + schema version

  std::string id() const;        // "char-0123456789abcdef"
  std::string filename() const;  // id() + ".art"
  bool operator==(const CacheKey& o) const {
    return digest == o.digest && domain == o.domain;
  }
};

struct CacheStats {
  std::uint64_t hits = 0;       // served (memory or disk)
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t disk_hits = 0;  // subset of hits that came from disk
  std::uint64_t corrupt = 0;    // disk payloads rejected by validation
  std::uint64_t evictions = 0;  // LRU evictions (memory layer only)
  std::uint64_t disk_evictions = 0;  // files removed by the disk GC

  double hit_rate() const {
    const std::uint64_t n = hits + misses;
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

class ArtifactCache {
 public:
  struct Options {
    std::size_t max_entries = 512;  // in-memory LRU capacity
    std::string disk_dir;           // empty = memory-only
    // Disk-layer budget in bytes; 0 = unbounded.  Enforced after every
    // store by evicting the mtime-oldest unpinned artifacts.
    std::uint64_t max_disk_bytes = 0;
  };

  ArtifactCache() : ArtifactCache(Options()) {}
  explicit ArtifactCache(Options opts);

  // $MIVTX_CACHE_DIR, or "" when unset — the conventional way benches pick
  // a default disk directory.
  static std::string env_disk_dir();

  // Thread-safe.  get() promotes memory hits to most-recently-used and
  // pulls disk hits into the memory layer.
  std::optional<std::string> get(const CacheKey& key);
  void put(const CacheKey& key, const std::string& payload);

  // Pin a key against disk GC while a computation or response that needs
  // it is in flight.  Re-entrant (counted); prefer the CachePin RAII.
  void pin(const CacheKey& key);
  void unpin(const CacheKey& key);

  CacheStats stats() const;
  std::size_t memory_entries() const;
  // Tracked size of the disk layer (headers + payloads), in bytes.
  std::uint64_t disk_usage_bytes() const;
  const std::string& disk_dir() const { return opts_.disk_dir; }

 private:
  struct Entry {
    std::string id;
    std::string payload;
  };

  void insert_locked(const std::string& id, const std::string& payload);
  std::optional<std::string> disk_get(const CacheKey& key);
  void disk_put(const CacheKey& key, const std::string& payload);
  void disk_gc_locked();

  Options opts_;
  mutable std::mutex m_;
  std::list<Entry> lru_;  // front = most recent
  std::map<std::string, std::list<Entry>::iterator> index_;
  std::map<std::string, int> pins_;  // filename -> pin count
  std::uint64_t disk_bytes_ = 0;     // tracked *.art usage under disk_dir
  CacheStats stats_;
};

// RAII pin: protects `key` from disk GC for the scope's lifetime.  A
// default-constructed (or moved-from) pin is inert; so is one on a null
// cache, which lets call sites pin unconditionally.
class CachePin {
 public:
  CachePin() = default;
  CachePin(ArtifactCache* cache, CacheKey key);
  ~CachePin();
  CachePin(CachePin&& o) noexcept;
  CachePin& operator=(CachePin&& o) noexcept;
  CachePin(const CachePin&) = delete;
  CachePin& operator=(const CachePin&) = delete;

 private:
  ArtifactCache* cache_ = nullptr;
  CacheKey key_;
};

}  // namespace mivtx::runtime
