// Execution policy handed to the flows: which pool to fan out on (null =
// serial) and which artifact cache to reuse results through (null = always
// recompute).  Physics options stay in their own structs (PpaOptions,
// ExtractionOptions, ...) so cache keys never depend on how a run was
// scheduled.
#pragma once

namespace mivtx::runtime {

class ThreadPool;
class ArtifactCache;

struct ExecPolicy {
  ThreadPool* pool = nullptr;
  ArtifactCache* cache = nullptr;
};

}  // namespace mivtx::runtime
