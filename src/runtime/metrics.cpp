#include "runtime/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ctime>
#include <sstream>

#include "common/strings.h"
#include "common/table.h"

namespace mivtx::runtime {

std::size_t histogram_bucket(double seconds) {
  const double ns = seconds * 1e9;
  if (!(ns >= 1.0)) return 0;  // sub-ns, negative and NaN all land in [0]
  const double b = std::log2(ns);
  // Clamp in the double domain: seconds = inf (or anything whose ns
  // product overflows) makes log2 return +inf, and converting a value
  // outside the destination range to an integer is undefined behavior —
  // the old post-cast std::min clamped one step too late.
  if (!(b < static_cast<double>(kHistogramBuckets - 1)))
    return kHistogramBuckets - 1;
  return static_cast<std::size_t>(b);
}

double HistogramValue::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank && buckets[i] > 0)
      return std::ldexp(1.0, static_cast<int>(i) + 1) * 1e-9;  // top edge
  }
  return max_s;
}

Metrics& Metrics::global() {
  static Metrics instance;
  return instance;
}

void Metrics::add(std::string_view name, double value) {
  std::lock_guard<std::mutex> lk(m_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), CounterValue{}).first;
  it->second.total += value;
  it->second.samples += 1;
}

void Metrics::record_time(std::string_view name, double wall_s, double cpu_s) {
  std::lock_guard<std::mutex> lk(m_);
  auto it = timers_.find(name);
  if (it == timers_.end())
    it = timers_.emplace(std::string(name), TimerValue{}).first;
  TimerValue& t = it->second;
  t.count += 1;
  t.wall_s += wall_s;
  t.cpu_s += cpu_s;
  t.wall_max_s = std::max(t.wall_max_s, wall_s);
}

void Metrics::record_latency(std::string_view name, double seconds) {
  std::lock_guard<std::mutex> lk(m_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), HistogramValue{}).first;
  HistogramValue& h = it->second;
  h.count += 1;
  h.sum_s += seconds;
  h.max_s = std::max(h.max_s, seconds);
  h.buckets[histogram_bucket(seconds)] += 1;
}

void Metrics::reset() {
  std::lock_guard<std::mutex> lk(m_);
  counters_.clear();
  timers_.clear();
  histograms_.clear();
}

std::map<std::string, CounterValue> Metrics::counters() const {
  std::lock_guard<std::mutex> lk(m_);
  return {counters_.begin(), counters_.end()};
}

std::map<std::string, TimerValue> Metrics::timers() const {
  std::lock_guard<std::mutex> lk(m_);
  return {timers_.begin(), timers_.end()};
}

std::map<std::string, HistogramValue> Metrics::histograms() const {
  std::lock_guard<std::mutex> lk(m_);
  return {histograms_.begin(), histograms_.end()};
}

double Metrics::counter_total(std::string_view name) const {
  std::lock_guard<std::mutex> lk(m_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second.total;
}

HistogramValue Metrics::histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lk(m_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramValue{} : it->second;
}

std::string Metrics::render_text() const {
  const auto counters = this->counters();
  const auto timers = this->timers();
  const auto histograms = this->histograms();
  std::ostringstream os;
  if (!histograms.empty()) {
    TextTable t({"latency", "count", "mean", "p50", "p95", "p99", "max"});
    t.set_align(0, TextTable::Align::kLeft);
    for (const auto& [name, h] : histograms) {
      t.add_row({name, format("%llu", static_cast<unsigned long long>(h.count)),
                 eng_format(h.mean_s(), "s"), eng_format(h.quantile(0.50), "s"),
                 eng_format(h.quantile(0.95), "s"),
                 eng_format(h.quantile(0.99), "s"), eng_format(h.max_s, "s")});
    }
    os << t.to_string();
  }
  if (!timers.empty()) {
    TextTable t({"timer", "calls", "wall (s)", "cpu (s)", "max (s)"});
    t.set_align(0, TextTable::Align::kLeft);
    for (const auto& [name, v] : timers) {
      t.add_row({name, format("%llu", static_cast<unsigned long long>(v.count)),
                 format("%.3f", v.wall_s), format("%.3f", v.cpu_s),
                 format("%.3f", v.wall_max_s)});
    }
    os << t.to_string();
  }
  if (!counters.empty()) {
    TextTable t({"counter", "total", "samples"});
    t.set_align(0, TextTable::Align::kLeft);
    for (const auto& [name, v] : counters) {
      t.add_row({name, format("%g", v.total),
                 format("%llu", static_cast<unsigned long long>(v.samples))});
    }
    os << t.to_string();
  }
  if (counters.empty() && timers.empty() && histograms.empty())
    os << "(no metrics recorded)\n";
  return os.str();
}

std::string Metrics::render_json() const {
  const auto counters = this->counters();
  const auto timers = this->timers();
  const auto histograms = this->histograms();
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    \"" << name << "\": {\"total\": " << format("%.17g", v.total)
       << ", \"samples\": " << v.samples << "}";
  }
  os << (first ? "" : "\n  ") << "},\n  \"timers\": {";
  first = true;
  for (const auto& [name, v] : timers) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    \"" << name << "\": {\"count\": " << v.count
       << ", \"wall_s\": " << format("%.6f", v.wall_s)
       << ", \"cpu_s\": " << format("%.6f", v.cpu_s)
       << ", \"wall_max_s\": " << format("%.6f", v.wall_max_s) << "}";
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    \"" << name << "\": {\"count\": " << h.count
       << ", \"mean_s\": " << format("%.9f", h.mean_s())
       << ", \"p50_s\": " << format("%.9f", h.quantile(0.50))
       << ", \"p95_s\": " << format("%.9f", h.quantile(0.95))
       << ", \"p99_s\": " << format("%.9f", h.quantile(0.99))
       << ", \"max_s\": " << format("%.9f", h.max_s) << ", \"buckets\": [";
    // Buckets trimmed to the highest occupied one; index i covers
    // [2^i, 2^{i+1}) ns.
    std::size_t top = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
      if (h.buckets[i] > 0) top = i + 1;
    for (std::size_t i = 0; i < top; ++i)
      os << (i == 0 ? "" : ", ") << h.buckets[i];
    os << "]}";
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
#endif
  return wall_seconds();
}

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ScopedTimer::ScopedTimer(std::string name, Metrics& metrics)
    : name_(std::move(name)),
      metrics_(metrics),
      wall0_(wall_seconds()),
      cpu0_(thread_cpu_seconds()) {}

ScopedTimer::~ScopedTimer() {
  metrics_.record_time(name_, wall_seconds() - wall0_,
                       thread_cpu_seconds() - cpu0_);
}

}  // namespace mivtx::runtime
