#include "runtime/metrics.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <sstream>

#include "common/strings.h"
#include "common/table.h"

namespace mivtx::runtime {

Metrics& Metrics::global() {
  static Metrics instance;
  return instance;
}

void Metrics::add(std::string_view name, double value) {
  std::lock_guard<std::mutex> lk(m_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), CounterValue{}).first;
  it->second.total += value;
  it->second.samples += 1;
}

void Metrics::record_time(std::string_view name, double wall_s, double cpu_s) {
  std::lock_guard<std::mutex> lk(m_);
  auto it = timers_.find(name);
  if (it == timers_.end())
    it = timers_.emplace(std::string(name), TimerValue{}).first;
  TimerValue& t = it->second;
  t.count += 1;
  t.wall_s += wall_s;
  t.cpu_s += cpu_s;
  t.wall_max_s = std::max(t.wall_max_s, wall_s);
}

void Metrics::reset() {
  std::lock_guard<std::mutex> lk(m_);
  counters_.clear();
  timers_.clear();
}

std::map<std::string, CounterValue> Metrics::counters() const {
  std::lock_guard<std::mutex> lk(m_);
  return {counters_.begin(), counters_.end()};
}

std::map<std::string, TimerValue> Metrics::timers() const {
  std::lock_guard<std::mutex> lk(m_);
  return {timers_.begin(), timers_.end()};
}

double Metrics::counter_total(std::string_view name) const {
  std::lock_guard<std::mutex> lk(m_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second.total;
}

std::string Metrics::render_text() const {
  const auto counters = this->counters();
  const auto timers = this->timers();
  std::ostringstream os;
  if (!timers.empty()) {
    TextTable t({"timer", "calls", "wall (s)", "cpu (s)", "max (s)"});
    t.set_align(0, TextTable::Align::kLeft);
    for (const auto& [name, v] : timers) {
      t.add_row({name, format("%llu", static_cast<unsigned long long>(v.count)),
                 format("%.3f", v.wall_s), format("%.3f", v.cpu_s),
                 format("%.3f", v.wall_max_s)});
    }
    os << t.to_string();
  }
  if (!counters.empty()) {
    TextTable t({"counter", "total", "samples"});
    t.set_align(0, TextTable::Align::kLeft);
    for (const auto& [name, v] : counters) {
      t.add_row({name, format("%g", v.total),
                 format("%llu", static_cast<unsigned long long>(v.samples))});
    }
    os << t.to_string();
  }
  if (counters.empty() && timers.empty()) os << "(no metrics recorded)\n";
  return os.str();
}

std::string Metrics::render_json() const {
  const auto counters = this->counters();
  const auto timers = this->timers();
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    \"" << name << "\": {\"total\": " << format("%.17g", v.total)
       << ", \"samples\": " << v.samples << "}";
  }
  os << (first ? "" : "\n  ") << "},\n  \"timers\": {";
  first = true;
  for (const auto& [name, v] : timers) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    \"" << name << "\": {\"count\": " << v.count
       << ", \"wall_s\": " << format("%.6f", v.wall_s)
       << ", \"cpu_s\": " << format("%.6f", v.cpu_s)
       << ", \"wall_max_s\": " << format("%.6f", v.wall_max_s) << "}";
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
#endif
  return wall_seconds();
}

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ScopedTimer::ScopedTimer(std::string name, Metrics& metrics)
    : name_(std::move(name)),
      metrics_(metrics),
      wall0_(wall_seconds()),
      cpu0_(thread_cpu_seconds()) {}

ScopedTimer::~ScopedTimer() {
  metrics_.record_time(name_, wall_seconds() - wall0_,
                       thread_cpu_seconds() - cpu0_);
}

}  // namespace mivtx::runtime
