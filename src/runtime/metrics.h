// Lightweight task metrics: named counters, scoped wall/CPU timers and
// fixed-bucket latency histograms.
//
// Everything funnels into one mutex-guarded registry (hot paths record a
// handful of times per device/cell/request, not per Newton iteration, so a
// mutex is plenty).  Reports render as a text table or JSON; benches expose
// them via --metrics and mivtx_serve dumps them per request and on
// /metrics.  Timers read the clock but never feed results back into any
// computation, so the determinism contract (DESIGN.md §5.10) is preserved.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace mivtx::runtime {

struct CounterValue {
  double total = 0.0;
  std::uint64_t samples = 0;
};

struct TimerValue {
  std::uint64_t count = 0;
  double wall_s = 0.0;
  double cpu_s = 0.0;
  double wall_max_s = 0.0;
};

// Log2 latency histogram: bucket i counts samples in [2^i, 2^{i+1}) ns,
// which spans 1 ns to ~4.8 hours in 44 buckets at a fixed memory cost and
// bounded (factor-of-two) quantile error — plenty for p50/p95/p99 request
// latencies that vary over six orders of magnitude between a cold TCAD
// flow and a warm cache hit.
inline constexpr std::size_t kHistogramBuckets = 44;

struct HistogramValue {
  std::uint64_t count = 0;
  double sum_s = 0.0;
  double max_s = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  // Quantile upper bound in seconds (q in [0,1]): the top edge of the
  // bucket holding the ceil(q * count)-th smallest sample; 0 when empty.
  double quantile(double q) const;
  double mean_s() const {
    return count == 0 ? 0.0 : sum_s / static_cast<double>(count);
  }
};

// Bucket index for a latency in seconds (floor(log2(ns)), clamped).
std::size_t histogram_bucket(double seconds);

class Metrics {
 public:
  // Process-wide registry; benches/examples report and reset it.
  static Metrics& global();

  void add(std::string_view name, double value = 1.0);
  void record_time(std::string_view name, double wall_s, double cpu_s);
  void record_latency(std::string_view name, double seconds);
  void reset();

  std::map<std::string, CounterValue> counters() const;
  std::map<std::string, TimerValue> timers() const;
  std::map<std::string, HistogramValue> histograms() const;
  // Convenience: counter total (0 if absent).
  double counter_total(std::string_view name) const;
  // Convenience: histogram snapshot (empty-value default if absent).
  HistogramValue histogram(std::string_view name) const;

  std::string render_text() const;
  std::string render_json() const;

 private:
  mutable std::mutex m_;
  std::map<std::string, CounterValue, std::less<>> counters_;
  std::map<std::string, TimerValue, std::less<>> timers_;
  std::map<std::string, HistogramValue, std::less<>> histograms_;
};

// Per-thread CPU time (CLOCK_THREAD_CPUTIME_ID on POSIX; wall-clock
// fallback elsewhere) — summed over tasks it exceeds wall time when the
// pool actually ran in parallel, which is exactly the signal we want.
double thread_cpu_seconds();
double wall_seconds();

class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name, Metrics& metrics = Metrics::global());
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string name_;
  Metrics& metrics_;
  double wall0_;
  double cpu0_;
};

}  // namespace mivtx::runtime
