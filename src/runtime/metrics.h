// Lightweight task metrics: named counters and scoped wall/CPU timers.
//
// Everything funnels into one mutex-guarded registry (hot paths record a
// handful of times per device/cell, not per Newton iteration, so a mutex is
// plenty).  Reports render as a text table or JSON; benches expose them via
// --metrics.  Timers read the clock but never feed results back into any
// computation, so the determinism contract (DESIGN.md §5.10) is preserved.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace mivtx::runtime {

struct CounterValue {
  double total = 0.0;
  std::uint64_t samples = 0;
};

struct TimerValue {
  std::uint64_t count = 0;
  double wall_s = 0.0;
  double cpu_s = 0.0;
  double wall_max_s = 0.0;
};

class Metrics {
 public:
  // Process-wide registry; benches/examples report and reset it.
  static Metrics& global();

  void add(std::string_view name, double value = 1.0);
  void record_time(std::string_view name, double wall_s, double cpu_s);
  void reset();

  std::map<std::string, CounterValue> counters() const;
  std::map<std::string, TimerValue> timers() const;
  // Convenience: counter total (0 if absent).
  double counter_total(std::string_view name) const;

  std::string render_text() const;
  std::string render_json() const;

 private:
  mutable std::mutex m_;
  std::map<std::string, CounterValue, std::less<>> counters_;
  std::map<std::string, TimerValue, std::less<>> timers_;
};

// Per-thread CPU time (CLOCK_THREAD_CPUTIME_ID on POSIX; wall-clock
// fallback elsewhere) — summed over tasks it exceeds wall time when the
// pool actually ran in parallel, which is exactly the signal we want.
double thread_cpu_seconds();
double wall_seconds();

class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name, Metrics& metrics = Metrics::global());
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string name_;
  Metrics& metrics_;
  double wall0_;
  double cpu0_;
};

}  // namespace mivtx::runtime
