#include "runtime/thread_pool.h"

#include <cstdio>

#include "trace/trace.h"

namespace mivtx::runtime {

namespace {
// Index of the deque owned by the current thread inside *some* pool, or
// SIZE_MAX for external threads.  A thread only ever belongs to one pool,
// so a plain thread_local pair (pool, index) suffices.
thread_local const ThreadPool* t_pool = nullptr;
thread_local std::size_t t_index = SIZE_MAX;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  size_ = threads;
  if (threads <= 1) return;  // inline mode: no deques, no workers
  deques_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    deques_.push_back(std::make_unique<Deque>());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(wake_m_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (deques_.empty()) {  // size <= 1: degenerate pool, run inline
    task();
    return;
  }
  std::size_t home;
  if (t_pool == this) {
    home = t_index;  // worker: own deque, LIFO end
    std::lock_guard<std::mutex> lk(deques_[home]->m);
    deques_[home]->tasks.push_front(std::move(task));
  } else {
    home = next_.fetch_add(1, std::memory_order_relaxed) % deques_.size();
    std::lock_guard<std::mutex> lk(deques_[home]->m);
    deques_[home]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  wake_.notify_one();
}

bool ThreadPool::try_pop(std::size_t home, std::function<void()>& out) {
  const std::size_t n = deques_.size();
  // Own deque first (front = most recently pushed by this worker)...
  if (home < n) {
    Deque& d = *deques_[home];
    std::lock_guard<std::mutex> lk(d.m);
    if (!d.tasks.empty()) {
      out = std::move(d.tasks.front());
      d.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  // ... then steal from the back of the others.
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (home + 1 + k) % n;
    if (victim == home) continue;
    Deque& d = *deques_[victim];
    std::lock_guard<std::mutex> lk(d.m);
    if (!d.tasks.empty()) {
      out = std::move(d.tasks.back());
      d.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  return false;
}

bool ThreadPool::run_one() {
  if (deques_.empty()) return false;
  const std::size_t home = (t_pool == this) ? t_index : 0;
  std::function<void()> task;
  if (!try_pop(home, task)) return false;
  task();
  return true;
}

void ThreadPool::worker_main(std::size_t index) {
  t_pool = this;
  t_index = index;
  char name[32];
  std::snprintf(name, sizeof name, "worker-%zu", index);
  trace::set_thread_name(name);
  for (;;) {
    std::function<void()> task;
    if (try_pop(index, task)) {
      task();
      task = nullptr;  // release captures before going idle
      continue;
    }
    std::unique_lock<std::mutex> lk(wake_m_);
    wake_.wait(lk, [this] {
      return stop_ || queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_ && queued_.load(std::memory_order_acquire) == 0) return;
  }
}

TaskGroup::~TaskGroup() {
  // Structured: never let tasks outlive the group.  Errors were already
  // recorded; destructor must not throw.
  while (outstanding_.load(std::memory_order_acquire) > 0) {
    if (pool_ == nullptr || !pool_->run_one()) std::this_thread::yield();
  }
}

void TaskGroup::record_error(std::size_t index, std::exception_ptr err) {
  std::lock_guard<std::mutex> lk(err_m_);
  if (!first_error_ || index < first_error_index_) {
    first_error_ = std::move(err);
    first_error_index_ = index;
  }
}

void TaskGroup::run(std::function<void()> fn) {
  const std::size_t index = next_index_++;
  if (pool_ == nullptr || pool_->size() <= 1) {
    try {
      fn();
    } catch (...) {
      record_error(index, std::current_exception());
    }
    return;
  }
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  // Capture the submitting thread's open span so spans created inside the
  // task nest under it even when another worker steals the task.
  const std::uint64_t parent_span = trace::current_span_id();
  pool_->submit([this, index, parent_span, fn = std::move(fn)] {
    trace::TaskScope scope(parent_span);
    try {
      fn();
    } catch (...) {
      record_error(index, std::current_exception());
    }
    outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  });
}

void TaskGroup::wait() {
  while (outstanding_.load(std::memory_order_acquire) > 0) {
    // Help instead of blocking: this is what makes nested parallel_for
    // safe on a shared pool.
    if (!pool_->run_one()) std::this_thread::yield();
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(err_m_);
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace mivtx::runtime
