// Work-stealing thread pool and structured-parallelism primitives.
//
// Design goals, in priority order:
//   1. Determinism: parallel_for / parallel_map produce results (and
//      propagate exceptions) identical for 1 and N worker threads.  Each
//      index writes its own output slot and reductions happen on the caller
//      in index order, so floating-point sums are bit-identical to the
//      serial run.
//   2. Composability: TaskGroup::wait() *helps* — a worker blocked on a
//      nested group executes pending pool tasks instead of sleeping, so
//      fan-out inside fan-out (PPA cells -> pin arcs) cannot deadlock and
//      wastes no threads.
//   3. Simplicity over raw throughput: per-worker deques are mutex-guarded
//      (owner pops the front, thieves steal from the back).  Tasks here are
//      milliseconds-to-seconds of TCAD/transient work; lock-free deques
//      would buy nothing measurable.
//
// A null / single-thread pool degrades to inline serial execution, which is
// also the reference ordering for the determinism contract.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace mivtx::runtime {

class ThreadPool {
 public:
  // threads == 0 picks std::thread::hardware_concurrency() (at least 1).
  // A pool of size <= 1 spawns no threads; everything runs inline.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return size_; }

  // Enqueue a task.  Worker threads push onto their own deque (LIFO for
  // locality); external callers round-robin across deques.
  void submit(std::function<void()> task);

  // Run one pending task on the calling thread.  Returns false when every
  // deque is empty.  This is the "help" primitive TaskGroup::wait uses.
  bool run_one();

 private:
  struct Deque {
    std::mutex m;
    std::deque<std::function<void()>> tasks;
  };

  void worker_main(std::size_t index);
  bool try_pop(std::size_t home, std::function<void()>& out);

  std::size_t size_ = 1;
  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> workers_;
  std::mutex wake_m_;
  std::condition_variable wake_;
  std::atomic<std::size_t> queued_{0};  // tasks enqueued, not yet popped
  std::atomic<std::size_t> next_{0};    // round-robin cursor for externals
  bool stop_ = false;                   // guarded by wake_m_
};

// Structured task group: run() submits, wait() blocks until every submitted
// task finished, helping the pool while it waits, then rethrows the
// exception of the lowest-numbered failed task (deterministic regardless of
// scheduling).  With a null pool, run() executes inline; wait() only
// rethrows.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> fn);
  void wait();

 private:
  void record_error(std::size_t index, std::exception_ptr err);

  ThreadPool* pool_;
  std::atomic<std::size_t> outstanding_{0};
  std::size_t next_index_ = 0;
  std::mutex err_m_;
  std::size_t first_error_index_ = 0;
  std::exception_ptr first_error_;
};

// Run fn(i) for i in [0, n).  Indices are chunked contiguously; each chunk
// runs sequentially, so the first exception within the lowest failing chunk
// is the same exception the serial loop would have thrown.  Serial when
// pool is null, pool->size() <= 1, or n <= 1.
template <typename Fn>
void parallel_for(ThreadPool* pool, std::size_t n, Fn&& fn) {
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunks =
      n < pool->size() * 4 ? n : pool->size() * 4;
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  TaskGroup group(pool);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    group.run([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
    begin = end;
  }
  group.wait();
}

// Map i -> fn(i) into a vector with results in index order.  T must be
// default-constructible and movable.  Bit-identical for 1 vs N threads.
template <typename T, typename Fn>
std::vector<T> parallel_map(ThreadPool* pool, std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(pool, n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace mivtx::runtime
