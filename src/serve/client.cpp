#include "serve/client.h"

#include "common/error.h"

namespace mivtx::serve {

Client::Client(const std::string& host, int port)
    : sock_(connect_to(host, port)), reader_(sock_.fd()) {}

void Client::send(const Request& req) {
  MIVTX_EXPECT(sock_.write_all(req.to_json_line()) && sock_.write_all("\n"),
               "serve client: connection lost while sending");
}

std::optional<Response> Client::read() {
  const std::optional<std::string> line = reader_.read_line();
  if (!line) return std::nullopt;
  return Response::from_json_line(*line);
}

Response Client::call(const Request& req) {
  send(req);
  std::optional<Response> resp = read();
  MIVTX_EXPECT(resp.has_value(),
               "serve client: connection closed before the response");
  MIVTX_EXPECT(resp->id == req.id,
               "serve client: response id '" + resp->id +
                   "' does not match request '" + req.id +
                   "' (one outstanding request per connection)");
  return *resp;
}

}  // namespace mivtx::serve
