// Scripting client for mivtx_serve: connect, send request lines, read
// typed responses.
//
// The simple path is call(): send one request, block for one response.
// Responses on a connection arrive in *completion* order (workers finish
// when they finish), so call() is only id-safe with one outstanding
// request per connection — which is how the CLI and the tests use it;
// herd scenarios open one Client per concurrent request.  send()/read()
// expose the pipelined layer for callers that correlate ids themselves.
#pragma once

#include <optional>
#include <string>

#include "serve/net.h"
#include "serve/protocol.h"

namespace mivtx::serve {

class Client {
 public:
  // Throws mivtx::Error when the connection fails.
  Client(const std::string& host, int port);

  // One request, one response.  Throws mivtx::Error on a dropped
  // connection or a response-id mismatch; protocol-level failures
  // (error / queue_full / draining) come back as the Response.
  Response call(const Request& req);

  // Pipelined layer.  send() throws on a dropped connection; read()
  // returns nullopt at EOF (server closed / drained).
  void send(const Request& req);
  std::optional<Response> read();

 private:
  Socket sock_;
  LineReader reader_;
};

}  // namespace mivtx::serve
