#include "serve/coalesce.h"

#include <exception>
#include <utility>

namespace mivtx::serve {

std::pair<std::shared_ptr<const Coalescer::Result>, bool> Coalescer::run(
    const std::string& key, const Compute& compute) {
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(m_);
    const auto it = flights_.find(key);
    if (it != flights_.end()) {
      flight = it->second;  // follower: join the in-flight computation
      ++flight->waiters;
    } else {
      flight = std::make_shared<Flight>();
      flight->future = flight->promise.get_future().share();
      flights_.emplace(key, flight);
      leader = true;
    }
  }

  if (!leader) return {flight->future.get(), false};

  auto result = std::make_shared<Result>();
  try {
    *result = compute();
  } catch (const std::exception& e) {
    result->ok = false;
    result->error = e.what();
  }

  {
    // Close the flight *before* publishing: a request that arrives after
    // this point starts fresh (and finds the artifact cache warm) instead
    // of piggybacking on a completed flight.
    std::lock_guard<std::mutex> lock(m_);
    flights_.erase(key);
  }
  flight->promise.set_value(result);
  return {result, true};
}

std::size_t Coalescer::waiters(const std::string& key) const {
  std::lock_guard<std::mutex> lock(m_);
  const auto it = flights_.find(key);
  return it == flights_.end() ? 0 : it->second->waiters;
}

std::size_t Coalescer::inflight() const {
  std::lock_guard<std::mutex> lock(m_);
  return flights_.size();
}

}  // namespace mivtx::serve
