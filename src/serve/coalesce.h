// Single-flight request coalescing.
//
// When N clients ask for the same characterization while it is still
// running, exactly one computation must happen: the first request (the
// leader) computes, the other N-1 (followers) block on a shared future and
// fan out the leader's result.  This is what makes a characterization
// *service* cheaper than N clients running the flow themselves — the
// artifact cache dedups across time, the coalescer dedups across
// concurrent clients, and together a thundering herd of identical cold
// requests costs one flow.
//
// The flight table is keyed by an opaque digest string (the serve layer
// hashes the canonical request line, minus the client correlation id).  A
// flight exists only while its leader computes; it is removed before the
// result is published, so a request arriving after completion starts a
// fresh flight and hits the artifact cache instead.
//
// waiters(key) reports how many followers are currently blocked on a
// flight — tests use it to deterministically assemble a herd before the
// leader finishes, instead of racing the fan-in window.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace mivtx::serve {

class Coalescer {
 public:
  // Outcome of one computation, shared verbatim with every follower.
  // Failures coalesce too: if the leader throws, the herd gets the same
  // error instead of retrying the same doomed computation N times.
  struct Result {
    bool ok = false;
    std::string error;      // when !ok
    std::string payload;    // artifact text
    std::string meta_json;  // kind-specific JSON object
  };

  using Compute = std::function<Result()>;

  // Run `compute` under single-flight semantics for `key`.  Returns the
  // (possibly shared) result and whether this call was the leader that
  // actually computed it.  `compute` must not recursively run() the same
  // key on the same thread (it would deadlock on itself).
  std::pair<std::shared_ptr<const Result>, bool> run(const std::string& key,
                                                     const Compute& compute);

  // Followers currently blocked on `key` (0 when no flight is open).
  std::size_t waiters(const std::string& key) const;
  // Open flights (leaders currently computing).
  std::size_t inflight() const;

 private:
  struct Flight {
    std::promise<std::shared_ptr<const Result>> promise;
    std::shared_future<std::shared_ptr<const Result>> future;
    std::size_t waiters = 0;
  };

  mutable std::mutex m_;
  std::map<std::string, std::shared_ptr<Flight>> flights_;
};

}  // namespace mivtx::serve
