#include "serve/net.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.h"
#include "common/strings.h"

namespace mivtx::serve {

namespace {

sockaddr_in make_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  MIVTX_EXPECT(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
               "serve: bad IPv4 address '" + host + "'");
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

bool Socket::write_all(std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> LineReader::read_line() {
  while (true) {
    const std::size_t nl = buf_.find('\n', pos_);
    if (nl != std::string::npos) {
      std::string line = buf_.substr(pos_, nl - pos_);
      pos_ = nl + 1;
      if (pos_ > (1u << 16)) {  // compact the consumed prefix occasionally
        buf_.erase(0, pos_);
        pos_ = 0;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

Listener::Listener(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  MIVTX_EXPECT(fd_ >= 0, "serve: socket() failed");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(fd_, SOMAXCONN) != 0) {
    const std::string why = std::strerror(errno);
    close();
    throw Error(format("serve: cannot listen on %s:%d: %s", host.c_str(),
                       port, why.c_str()));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  MIVTX_EXPECT(::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound),
                             &len) == 0,
               "serve: getsockname() failed");
  port_ = ntohs(bound.sin_port);
}

Socket Listener::accept() {
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return Socket();  // listener closed (or fatal error): stop accepting
  }
}

void Listener::close() {
  if (fd_ >= 0) {
    // shutdown() before close() reliably wakes a thread blocked in
    // accept(); close() alone may leave it sleeping on some kernels.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Socket connect_to(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  MIVTX_EXPECT(fd >= 0, "serve: socket() failed");
  Socket sock(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr = make_addr(host, port);
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr) != 0) {
    if (errno == EINTR) continue;
    throw Error(format("serve: cannot connect to %s:%d: %s", host.c_str(),
                       port, std::strerror(errno)));
  }
  return sock;
}

}  // namespace mivtx::serve
