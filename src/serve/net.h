// Thin RAII layer over loopback TCP sockets (POSIX).
//
// mivtx_serve binds 127.0.0.1 only — it is a local characterization
// daemon, not an internet service — so plain blocking sockets with one
// reader thread per connection are the right complexity level.  Writes use
// MSG_NOSIGNAL (a client hanging up must surface as a write error, never
// SIGPIPE), and Listener::close() / Socket::shutdown_read() are the
// wake-up primitives the graceful-drain path uses to unblock accept() and
// read() without resorting to signals or polling.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace mivtx::serve {

// RAII file-descriptor wrapper.  Move-only; close on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();
  // Half-close the read side: a thread blocked in read() on this socket
  // returns 0 (EOF) while writes keep flowing.
  void shutdown_read();

  // Write the whole buffer; false on any error (peer gone, ...).
  bool write_all(std::string_view data);

 private:
  int fd_ = -1;
};

// Buffered newline-delimited reader over a socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  // Next line without its trailing '\n' (a trailing '\r' is stripped too,
  // so HTTP request lines parse cleanly).  nullopt on EOF or error.
  std::optional<std::string> read_line();

 private:
  int fd_;
  std::string buf_;
  std::size_t pos_ = 0;
};

// Listening socket on host:port; port 0 binds an ephemeral port (the
// actual one is in port()).  Throws mivtx::Error when binding fails.
class Listener {
 public:
  Listener(const std::string& host, int port);
  ~Listener() { close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  int port() const { return port_; }
  // Blocking accept; an invalid Socket means the listener was closed.
  Socket accept();
  // Close the listening fd; wakes a blocked accept().
  void close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

// Blocking connect to host:port.  Throws mivtx::Error on failure.
Socket connect_to(const std::string& host, int port);

}  // namespace mivtx::serve
