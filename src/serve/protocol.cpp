#include "serve/protocol.h"

#include "common/error.h"
#include "common/json.h"
#include "common/strings.h"

namespace mivtx::serve {

namespace {

// Canonical corner defaults the wire format diffs against: a request line
// only carries the fields that deviate, so the common "nominal corner"
// request stays one short line.
const core::ProcessParams kDefaultProcess{};
const extract::SweepGrid kDefaultGrid{};
const extract::ExtractionOptions kDefaultExtraction{};

}  // namespace

const char* kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kCurves: return "curves";
    case RequestKind::kExtract: return "extract";
    case RequestKind::kFlow: return "flow";
    case RequestKind::kPpa: return "ppa";
    case RequestKind::kCharlib: return "charlib";
    case RequestKind::kHealth: return "health";
    case RequestKind::kMetrics: return "metrics";
    case RequestKind::kShutdown: return "shutdown";
  }
  return "?";
}

RequestKind kind_from_name(const std::string& name) {
  for (RequestKind k :
       {RequestKind::kCurves, RequestKind::kExtract, RequestKind::kFlow,
        RequestKind::kPpa, RequestKind::kCharlib, RequestKind::kHealth,
        RequestKind::kMetrics, RequestKind::kShutdown}) {
    if (equals_ci(name, kind_name(k))) return k;
  }
  throw Error("serve: unknown request kind '" + name + "'");
}

bool is_compute_kind(RequestKind kind) {
  return kind == RequestKind::kCurves || kind == RequestKind::kExtract ||
         kind == RequestKind::kFlow || kind == RequestKind::kPpa ||
         kind == RequestKind::kCharlib;
}

const char* status_name(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kError: return "error";
    case ResponseStatus::kQueueFull: return "queue_full";
    case ResponseStatus::kDraining: return "draining";
  }
  return "?";
}

ResponseStatus status_from_name(const std::string& name) {
  for (ResponseStatus s :
       {ResponseStatus::kOk, ResponseStatus::kError,
        ResponseStatus::kQueueFull, ResponseStatus::kDraining}) {
    if (equals_ci(name, status_name(s))) return s;
  }
  throw Error("serve: unknown response status '" + name + "'");
}

tcad::Variant variant_from_token(const std::string& token) {
  if (equals_ci(token, "trad") || equals_ci(token, "traditional"))
    return tcad::Variant::kTraditional;
  if (equals_ci(token, "1ch") || equals_ci(token, "1-ch") ||
      equals_ci(token, "1-channel"))
    return tcad::Variant::kMiv1Channel;
  if (equals_ci(token, "2ch") || equals_ci(token, "2-ch") ||
      equals_ci(token, "2-channel"))
    return tcad::Variant::kMiv2Channel;
  if (equals_ci(token, "4ch") || equals_ci(token, "4-ch") ||
      equals_ci(token, "4-channel"))
    return tcad::Variant::kMiv4Channel;
  throw Error("serve: unknown variant '" + token + "'");
}

tcad::Polarity polarity_from_token(const std::string& token) {
  if (equals_ci(token, "nmos") || equals_ci(token, "n"))
    return tcad::Polarity::kNmos;
  if (equals_ci(token, "pmos") || equals_ci(token, "p"))
    return tcad::Polarity::kPmos;
  throw Error("serve: unknown polarity '" + token + "'");
}

cells::CellType cell_from_token(const std::string& token) {
  for (cells::CellType t : cells::all_cells())
    if (equals_ci(token, cells::cell_name(t))) return t;
  throw Error("serve: unknown cell '" + token + "'");
}

cells::Implementation impl_from_token(const std::string& token) {
  if (equals_ci(token, "2d")) return cells::Implementation::k2D;
  if (equals_ci(token, "1ch") || equals_ci(token, "1-ch"))
    return cells::Implementation::kMiv1Channel;
  if (equals_ci(token, "2ch") || equals_ci(token, "2-ch"))
    return cells::Implementation::kMiv2Channel;
  if (equals_ci(token, "4ch") || equals_ci(token, "4-ch"))
    return cells::Implementation::kMiv4Channel;
  throw Error("serve: unknown implementation '" + token + "'");
}

namespace {

const char* variant_token(tcad::Variant v) {
  switch (v) {
    case tcad::Variant::kTraditional: return "trad";
    case tcad::Variant::kMiv1Channel: return "1ch";
    case tcad::Variant::kMiv2Channel: return "2ch";
    case tcad::Variant::kMiv4Channel: return "4ch";
  }
  return "?";
}

const char* impl_token(cells::Implementation impl) {
  switch (impl) {
    case cells::Implementation::k2D: return "2d";
    case cells::Implementation::kMiv1Channel: return "1ch";
    case cells::Implementation::kMiv2Channel: return "2ch";
    case cells::Implementation::kMiv4Channel: return "4ch";
  }
  return "?";
}

}  // namespace

std::string Request::to_json_line() const {
  Json obj = Json::object();
  obj.set("id", Json::string(id));
  obj.set("kind", Json::string(kind_name(kind)));
  if (kind == RequestKind::kCurves || kind == RequestKind::kExtract) {
    obj.set("variant", Json::string(variant_token(variant)));
    obj.set("polarity", Json::string(polarity == tcad::Polarity::kNmos
                                         ? "nmos"
                                         : "pmos"));
  }
  if (kind == RequestKind::kPpa || kind == RequestKind::kCharlib) {
    obj.set("cell", Json::string(cells::cell_name(cell)));
    obj.set("impl", Json::string(impl_token(impl)));
    if (kind == RequestKind::kPpa && reference_library)
      obj.set("library", Json::string("reference"));
    if (kind == RequestKind::kCharlib && char_grid != "default")
      obj.set("char_grid", Json::string(char_grid));
  }
  if (is_compute_kind(kind)) {
    if (process.vdd != kDefaultProcess.vdd)
      obj.set("vdd", Json::number(process.vdd));
    if (process.tnom_c != kDefaultProcess.tnom_c)
      obj.set("tnom_c", Json::number(process.tnom_c));
    if (process.l_gate != kDefaultProcess.l_gate)
      obj.set("l_gate", Json::number(process.l_gate));
    if (process.t_miv != kDefaultProcess.t_miv)
      obj.set("t_miv", Json::number(process.t_miv));
    if (grid.n_vg != kDefaultGrid.n_vg)
      obj.set("grid_n", Json::number(static_cast<double>(grid.n_vg)));
    if (extraction.nm.max_evaluations != kDefaultExtraction.nm.max_evaluations)
      obj.set("nm_max_evals",
              Json::number(
                  static_cast<double>(extraction.nm.max_evaluations)));
    if (extraction.run_lm_polish != kDefaultExtraction.run_lm_polish)
      obj.set("lm_polish", Json::boolean(extraction.run_lm_polish));
    if (extraction.run_ieff_retarget != kDefaultExtraction.run_ieff_retarget)
      obj.set("ieff_retarget", Json::boolean(extraction.run_ieff_retarget));
  }
  return obj.dump();
}

Request Request::from_json_line(const std::string& line) {
  const Json doc = Json::parse(line);
  MIVTX_EXPECT(doc.is_object(), "serve: request must be a JSON object");
  Request req;
  bool have_kind = false;
  for (const auto& [key, value] : doc.members()) {
    if (key == "id") {
      req.id = value.type() == Json::Type::kNumber
                   ? format("%g", value.as_number())
                   : value.as_string();
    } else if (key == "kind") {
      req.kind = kind_from_name(value.as_string());
      have_kind = true;
    } else if (key == "variant") {
      req.variant = variant_from_token(value.as_string());
    } else if (key == "polarity") {
      req.polarity = polarity_from_token(value.as_string());
    } else if (key == "cell") {
      req.cell = cell_from_token(value.as_string());
    } else if (key == "impl") {
      req.impl = impl_from_token(value.as_string());
    } else if (key == "library") {
      const std::string& lib = value.as_string();
      if (equals_ci(lib, "reference")) {
        req.reference_library = true;
      } else {
        MIVTX_EXPECT(equals_ci(lib, "flow"),
                     "serve: library must be 'flow' or 'reference', got '" +
                         lib + "'");
        req.reference_library = false;
      }
    } else if (key == "char_grid") {
      const std::string& g = value.as_string();
      MIVTX_EXPECT(g == "mini" || g == "default",
                   "serve: char_grid must be 'mini' or 'default', got '" + g +
                       "'");
      req.char_grid = g;
    } else if (key == "vdd") {
      const double v = value.as_number();
      MIVTX_EXPECT(v > 0.0 && v <= 5.0, "serve: vdd out of range");
      req.process.vdd = v;
      req.grid.vdd = v;
    } else if (key == "tnom_c") {
      req.process.tnom_c = value.as_number();
    } else if (key == "l_gate") {
      const double v = value.as_number();
      MIVTX_EXPECT(v > 0.0 && v < 1e-6, "serve: l_gate out of range");
      req.process.l_gate = v;
    } else if (key == "t_miv") {
      const double v = value.as_number();
      MIVTX_EXPECT(v > 0.0 && v < 1e-6, "serve: t_miv out of range");
      req.process.t_miv = v;
    } else if (key == "grid_n") {
      const double v = value.as_number();
      MIVTX_EXPECT(v >= 5 && v <= 201 && v == static_cast<int>(v),
                   "serve: grid_n must be an integer in [5, 201]");
      req.grid.n_vg = static_cast<std::size_t>(v);
      req.grid.n_vd = static_cast<std::size_t>(v);
      req.grid.n_cv = static_cast<std::size_t>(v);
    } else if (key == "nm_max_evals") {
      const double v = value.as_number();
      MIVTX_EXPECT(v >= 1 && v == static_cast<int>(v),
                   "serve: nm_max_evals must be a positive integer");
      req.extraction.nm.max_evaluations = static_cast<std::size_t>(v);
    } else if (key == "lm_polish") {
      req.extraction.run_lm_polish = value.as_bool();
    } else if (key == "ieff_retarget") {
      req.extraction.run_ieff_retarget = value.as_bool();
    } else {
      throw Error("serve: unknown request field '" + key + "'");
    }
  }
  MIVTX_EXPECT(have_kind, "serve: request is missing 'kind'");
  return req;
}

std::string Response::to_json_line() const {
  Json obj = Json::object();
  obj.set("id", Json::string(id));
  obj.set("status", Json::string(status_name(status)));
  if (!kind.empty()) obj.set("kind", Json::string(kind));
  if (!error.empty()) obj.set("error", Json::string(error));
  if (!source.empty()) obj.set("source", Json::string(source));
  if (elapsed_s != 0.0) obj.set("elapsed_s", Json::number(elapsed_s));
  if (queue_s != 0.0) obj.set("queue_s", Json::number(queue_s));
  if (span_id != 0)
    obj.set("span", Json::number(static_cast<double>(span_id)));
  if (!meta_json.empty()) obj.set("meta", Json::parse(meta_json));
  if (!payload.empty()) obj.set("payload", Json::string(payload));
  return obj.dump();
}

Response Response::from_json_line(const std::string& line) {
  const Json doc = Json::parse(line);
  MIVTX_EXPECT(doc.is_object(), "serve: response must be a JSON object");
  Response resp;
  if (const Json* v = doc.find("id")) resp.id = v->as_string();
  if (const Json* v = doc.find("status"))
    resp.status = status_from_name(v->as_string());
  if (const Json* v = doc.find("kind")) resp.kind = v->as_string();
  if (const Json* v = doc.find("error")) resp.error = v->as_string();
  if (const Json* v = doc.find("source")) resp.source = v->as_string();
  if (const Json* v = doc.find("elapsed_s")) resp.elapsed_s = v->as_number();
  if (const Json* v = doc.find("queue_s")) resp.queue_s = v->as_number();
  if (const Json* v = doc.find("span"))
    resp.span_id = static_cast<std::uint64_t>(v->as_number());
  if (const Json* v = doc.find("meta")) resp.meta_json = v->dump();
  if (const Json* v = doc.find("payload")) resp.payload = v->as_string();
  return resp;
}

}  // namespace mivtx::serve
