// mivtx_serve wire protocol: one JSON object per line, both directions.
//
// A request names a characterization unit — device curves, device
// extraction, a full flow, one cell's PPA, or one cell's NLDM library
// entry ("charlib") — plus the corner it runs under (process / sweep-grid / extraction overrides; defaults match
// run_full_flow's defaults, so an empty request body means "the paper's
// nominal corner").  Unknown fields are a protocol error: silently
// ignoring a typo like "gird_n" would silently serve the wrong corner.
//
// Responses echo the request id, carry a typed status — "queue_full" and
// "draining" are statuses, not generic errors, so clients can implement
// backoff — and stream back the artifact payload (the same lossless text
// core/artifacts.h caches, so a served result is byte-comparable to a
// local run_full_flow), per-request wall time, queue wait and the trace
// span id for cross-referencing a server-side flamegraph.
//
// Admin kinds: "health" (liveness + queue depth), "metrics" (registry dump
// including latency histograms), "shutdown" (graceful drain).  For
// curl-style probing the server also answers HTTP "GET /healthz" and
// "GET /metrics" on the same port (see server.cpp); the JSON kinds are the
// first-class interface.
#pragma once

#include <cstdint>
#include <string>

#include "cells/netgen.h"
#include "core/flow.h"
#include "core/ppa.h"

namespace mivtx::serve {

enum class RequestKind {
  kCurves,    // stage 1: TCAD characteristic curves of one device
  kExtract,   // stage 2: extracted model card of one device
  kFlow,      // all 8 devices -> model library
  kPpa,       // one (cell, impl) PPA measurement
  kCharlib,   // one (cell, impl) NLDM characterization entry (.mlib text)
  kHealth,
  kMetrics,
  kShutdown,
};

const char* kind_name(RequestKind kind);
// Throws mivtx::Error for an unknown kind token.
RequestKind kind_from_name(const std::string& name);

bool is_compute_kind(RequestKind kind);

struct Request {
  std::string id;  // client correlation id, echoed in the response
  RequestKind kind = RequestKind::kHealth;

  // Device selection (curves / extract).
  tcad::Variant variant = tcad::Variant::kTraditional;
  tcad::Polarity polarity = tcad::Polarity::kNmos;

  // Cell selection (ppa / charlib).
  cells::CellType cell = cells::CellType::kInv1;
  cells::Implementation impl = cells::Implementation::k2D;
  // Characterization grid preset (charlib): "default" (3x3) or "mini"
  // (2x2, the CI smoke grid).  See charlib/characterize.h.
  std::string char_grid = "default";
  // "flow" derives the model library through the (cached) full flow under
  // this request's corner; "reference" uses the checked-in nominal cards
  // and skips TCAD entirely.
  bool reference_library = false;

  // Corner: overrides applied on top of the defaults.
  core::ProcessParams process;
  extract::SweepGrid grid;
  extract::ExtractionOptions extraction;

  // One line of JSON (no trailing newline).
  std::string to_json_line() const;
  // Throws mivtx::Error on malformed JSON, unknown kinds/fields/tokens.
  static Request from_json_line(const std::string& line);
};

enum class ResponseStatus { kOk, kError, kQueueFull, kDraining };

const char* status_name(ResponseStatus status);
ResponseStatus status_from_name(const std::string& name);

struct Response {
  std::string id;
  ResponseStatus status = ResponseStatus::kOk;
  std::string kind;     // echo of the request kind
  std::string error;    // human-readable cause when status != kOk
  std::string source;   // compute kinds: "computed" | "coalesced"
  std::string payload;  // artifact text (core/artifacts.h serialization)
  double elapsed_s = 0.0;  // service time on the worker
  double queue_s = 0.0;    // admission-queue wait before service
  std::uint64_t span_id = 0;  // trace span id (0 when tracing is off)
  std::string meta_json;      // kind-specific JSON object ("{}" when empty)

  bool ok() const { return status == ResponseStatus::kOk; }

  std::string to_json_line() const;
  static Response from_json_line(const std::string& line);
};

// Helpers shared by client flags and request parsing; all throw
// mivtx::Error on unknown tokens and accept a few aliases ("2-ch", "2ch").
tcad::Variant variant_from_token(const std::string& token);
tcad::Polarity polarity_from_token(const std::string& token);
cells::CellType cell_from_token(const std::string& token);
cells::Implementation impl_from_token(const std::string& token);

}  // namespace mivtx::serve
