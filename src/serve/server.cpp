#include "serve/server.h"

#include <exception>
#include <utility>

#include "common/error.h"
#include "common/json.h"
#include "common/log.h"
#include "common/strings.h"
#include "runtime/metrics.h"

namespace mivtx::serve {

namespace {

std::string http_response(int code, const char* reason,
                          const std::string& body) {
  return format("HTTP/1.1 %d %s\r\n"
                "Content-Type: application/json\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                code, reason, body.size()) +
         body;
}

}  // namespace

bool Server::Connection::send_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(write_m);
  return sock.write_all(line) && sock.write_all("\n");
}

Server::Server(ServerOptions opts)
    : opts_(opts),
      service_(opts.service),
      listener_(opts.host, opts.port) {
  if (opts_.workers == 0) opts_.workers = 1;
  if (opts_.queue_capacity == 0) opts_.queue_capacity = 1;
}

Server::~Server() {
  begin_shutdown();
  wait();
}

void Server::start() {
  std::lock_guard<std::mutex> lock(m_);
  if (started_) return;
  started_ = true;
  for (std::size_t i = 0; i < opts_.workers; ++i)
    workers_.emplace_back(&Server::worker_loop, this);
  accept_thread_ = std::thread(&Server::accept_loop, this);
  MIVTX_INFO << "serve: listening on " << opts_.host << ":" << port()
             << " (" << opts_.workers << " workers, queue "
             << opts_.queue_capacity << ")";
}

void Server::begin_shutdown() {
  {
    std::lock_guard<std::mutex> lock(m_);
    if (draining_) return;
    draining_ = true;
  }
  MIVTX_INFO << "serve: draining (queued work will complete)";
  listener_.close();  // wakes the accept thread
  work_cv_.notify_all();
  drain_cv_.notify_all();
}

void Server::wait() {
  {
    std::lock_guard<std::mutex> lock(m_);
    if (!started_ || joined_) return;
    joined_ = true;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::unique_lock<std::mutex> lock(m_);
    drain_cv_.wait(lock, [&] {
      return draining_ && queue_.empty() && active_ == 0;
    });
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  {
    // Unblock every reader thread; their sockets half-close so any final
    // write already flushed still reaches the client.
    std::lock_guard<std::mutex> lock(m_);
    for (const std::shared_ptr<Connection>& c : conns_)
      c->sock.shutdown_read();
  }
  for (std::thread& t : reader_threads_) t.join();
  MIVTX_INFO << "serve: drained; final metrics\n"
             << runtime::Metrics::global().render_text();
}

bool Server::draining() const {
  std::lock_guard<std::mutex> lock(m_);
  return draining_;
}

std::size_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(m_);
  return queue_.size();
}

void Server::accept_loop() {
  while (true) {
    Socket sock = listener_.accept();
    if (!sock.valid()) return;  // listener closed: drain started
    auto conn = std::make_shared<Connection>(std::move(sock));
    std::lock_guard<std::mutex> lock(m_);
    conns_.insert(conn);
    reader_threads_.emplace_back(&Server::reader_loop, this, conn);
  }
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  LineReader reader(conn->sock.fd());
  while (std::optional<std::string> line = reader.read_line()) {
    if (line->empty()) continue;
    if (!handle_line(conn, *line)) break;
  }
  std::lock_guard<std::mutex> lock(m_);
  conns_.erase(conn);
}

bool Server::handle_line(const std::shared_ptr<Connection>& conn,
                         const std::string& line) {
  if (line.rfind("GET ", 0) == 0) {
    handle_http(conn, line);
    return false;
  }

  Request req;
  try {
    req = Request::from_json_line(line);
  } catch (const std::exception& e) {
    runtime::Metrics::global().add("serve.protocol_errors");
    Response resp;
    resp.status = ResponseStatus::kError;
    resp.error = e.what();
    conn->send_line(resp.to_json_line());
    return true;
  }

  Response resp;
  resp.id = req.id;
  resp.kind = kind_name(req.kind);

  switch (req.kind) {
    case RequestKind::kHealth:
      resp.meta_json = health_json();
      conn->send_line(resp.to_json_line());
      return true;
    case RequestKind::kMetrics:
      resp.meta_json = runtime::Metrics::global().render_json();
      conn->send_line(resp.to_json_line());
      return true;
    case RequestKind::kShutdown:
      // Drain state must be set before the acknowledgment goes out: a
      // client that has read the stop response may immediately probe
      // draining() or send a request that must see the typed rejection.
      begin_shutdown();
      conn->send_line(resp.to_json_line());
      return true;
    default:
      break;
  }

  // Compute kind: admission control under the lock, response outside it.
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(m_);
    if (draining_) {
      resp.status = ResponseStatus::kDraining;
      resp.error = "server is draining; retry against a fresh instance";
    } else if (queue_.size() >= opts_.queue_capacity) {
      resp.status = ResponseStatus::kQueueFull;
      resp.error = format("admission queue full (%zu); back off and retry",
                          opts_.queue_capacity);
    } else {
      queue_.push_back(Job{req, conn, runtime::wall_seconds()});
      admitted = true;
    }
  }
  if (!admitted) {
    runtime::Metrics::global().add(resp.status == ResponseStatus::kDraining
                                       ? "serve.rejected.draining"
                                       : "serve.rejected.queue_full");
    conn->send_line(resp.to_json_line());
    return true;
  }
  runtime::Metrics::global().add("serve.admitted");
  work_cv_.notify_one();
  return true;
}

void Server::worker_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(m_);
      work_cv_.wait(lock, [&] { return !queue_.empty() || draining_; });
      if (queue_.empty()) return;  // draining and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    const double queue_s = runtime::wall_seconds() - job.enqueued_at;
    runtime::Metrics::global().record_latency("serve.queue_wait", queue_s);
    Response resp = service_.execute(job.req);
    resp.queue_s = queue_s;
    if (!job.conn->send_line(resp.to_json_line()))
      MIVTX_DEBUG << "serve: client gone before response for '" << job.req.id
                  << "'";
    {
      std::lock_guard<std::mutex> lock(m_);
      --active_;
    }
    drain_cv_.notify_all();
  }
}

std::string Server::health_json() const {
  const runtime::CacheStats cache = service_.cache().stats();
  Json obj = Json::object();
  {
    std::lock_guard<std::mutex> lock(m_);
    obj.set("status", Json::string(draining_ ? "draining" : "ok"));
    obj.set("queue_depth", Json::number(static_cast<double>(queue_.size())));
    obj.set("active", Json::number(static_cast<double>(active_)));
    obj.set("connections", Json::number(static_cast<double>(conns_.size())));
  }
  obj.set("workers", Json::number(static_cast<double>(opts_.workers)));
  obj.set("queue_capacity",
          Json::number(static_cast<double>(opts_.queue_capacity)));
  obj.set("inflight", Json::number(
                          static_cast<double>(service_.coalescer().inflight())));
  Json cj = Json::object();
  cj.set("hits", Json::number(static_cast<double>(cache.hits)));
  cj.set("misses", Json::number(static_cast<double>(cache.misses)));
  cj.set("stores", Json::number(static_cast<double>(cache.stores)));
  cj.set("disk_evictions",
         Json::number(static_cast<double>(cache.disk_evictions)));
  cj.set("disk_usage_bytes",
         Json::number(static_cast<double>(service_.cache().disk_usage_bytes())));
  obj.set("cache", std::move(cj));
  return obj.dump();
}

void Server::handle_http(const std::shared_ptr<Connection>& conn,
                         const std::string& request_line) {
  // "GET <path> HTTP/1.1" — enough for curl/wget probes; headers that
  // follow on the connection are irrelevant because we answer and close.
  const std::vector<std::string> parts = split(request_line, " ");
  const std::string path = parts.size() > 1 ? parts[1] : "/";
  std::string out;
  if (path == "/healthz") {
    out = http_response(200, "OK", health_json() + "\n");
  } else if (path == "/metrics") {
    out = http_response(200, "OK",
                        runtime::Metrics::global().render_json() + "\n");
  } else {
    out = http_response(404, "Not Found", "{\"error\":\"not found\"}\n");
  }
  std::lock_guard<std::mutex> lock(conn->write_m);
  conn->sock.write_all(out);
}

}  // namespace mivtx::serve
