// The mivtx_serve daemon core: accept loop, bounded admission queue,
// worker pool and graceful drain.
//
// Threading model (plain blocking I/O — this is a loopback daemon):
//   - one accept thread;
//   - one reader thread per connection, parsing request lines.  Admin
//     kinds (health / metrics / shutdown) answer inline; compute kinds go
//     through admission control into the bounded queue;
//   - `workers` worker threads popping the queue and running
//     Service::execute.  Identical requests coalesce inside the service,
//     so a herd of N equal requests occupies N workers but computes once.
//
// Admission control is explicit backpressure, not silent queueing: when
// the queue is at capacity the client gets a typed "queue_full" response
// immediately, and once a drain starts new compute requests get
// "draining".  Both are statuses a client can back off on — never a
// dropped connection.
//
// Drain protocol (begin_shutdown -> wait):
//   1. stop accepting, reject new compute requests with "draining";
//   2. workers finish every already-admitted job and flush its response —
//      admitted work is never lost;
//   3. once the queue is empty and no worker is active, half-close every
//      connection's read side to unblock the reader threads, join
//      everything, flush final metrics to the log.
// begin_shutdown() is safe from any thread (including a reader thread
// handling a "shutdown" request); only wait() joins.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/net.h"
#include "serve/protocol.h"
#include "serve/service.h"

namespace mivtx::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral (actual port in Server::port())
  std::size_t workers = 2;
  std::size_t queue_capacity = 64;  // admitted-but-unserved request bound
  ServiceOptions service;
};

class Server {
 public:
  // Binds the listener (throws mivtx::Error when that fails) but does not
  // accept until start().
  explicit Server(ServerOptions opts);
  ~Server();  // begin_shutdown() + wait() if still running

  int port() const { return listener_.port(); }
  Service& service() { return service_; }

  void start();
  // Initiate a graceful drain; idempotent, non-blocking, any thread.
  void begin_shutdown();
  // Block until the drain completes and all threads are joined.  Call
  // from the owning thread (the CLI main thread), never from a reader or
  // worker.
  void wait();

  bool draining() const;
  std::size_t queue_depth() const;

 private:
  struct Connection {
    explicit Connection(Socket s) : sock(std::move(s)) {}
    Socket sock;
    std::mutex write_m;  // reader + workers interleave responses
    bool send_line(const std::string& line);
  };

  struct Job {
    Request req;
    std::shared_ptr<Connection> conn;
    double enqueued_at = 0.0;
  };

  void accept_loop();
  void worker_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  // False = close the connection after this line (HTTP mode).
  bool handle_line(const std::shared_ptr<Connection>& conn,
                   const std::string& line);
  void handle_http(const std::shared_ptr<Connection>& conn,
                   const std::string& request_line);
  std::string health_json() const;

  ServerOptions opts_;
  Service service_;
  Listener listener_;

  mutable std::mutex m_;
  std::condition_variable work_cv_;   // workers: queue non-empty / draining
  std::condition_variable drain_cv_;  // wait(): drained
  std::deque<Job> queue_;
  std::size_t active_ = 0;  // jobs currently inside Service::execute
  bool draining_ = false;
  bool started_ = false;
  bool joined_ = false;
  std::set<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> reader_threads_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace mivtx::serve
