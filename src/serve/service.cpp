#include "serve/service.h"

#include <utility>

#include "charlib/characterize.h"
#include "common/error.h"
#include "common/hash.h"
#include "common/json.h"
#include "common/strings.h"
#include "core/artifacts.h"
#include "core/flow_units.h"
#include "core/ppa.h"
#include "core/reference_cards.h"
#include "runtime/metrics.h"
#include "trace/trace.h"

namespace mivtx::serve {

namespace {

const char* span_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kCurves: return "serve.curves";
    case RequestKind::kExtract: return "serve.extract";
    case RequestKind::kFlow: return "serve.flow";
    case RequestKind::kPpa: return "serve.ppa";
    case RequestKind::kCharlib: return "serve.charlib";
    default: return "serve.request";
  }
}

}  // namespace

Service::Service(ServiceOptions opts)
    : opts_(opts), cache_(opts.cache) {}

std::string Service::request_digest(const Request& req) {
  Request canonical = req;
  canonical.id.clear();
  StableHash h;
  h.mix(canonical.to_json_line());
  return format("%016llx",
                static_cast<unsigned long long>(h.digest()));
}

Response Service::execute(const Request& req) {
  Response resp;
  resp.id = req.id;
  resp.kind = kind_name(req.kind);
  if (!is_compute_kind(req.kind)) {
    resp.status = ResponseStatus::kError;
    resp.error = format("serve: '%s' is not a compute kind",
                        kind_name(req.kind));
    return resp;
  }

  trace::Span span(span_name(req.kind), "serve");
  resp.span_id = span.id();

  const double t0 = runtime::wall_seconds();
  const auto [result, led] =
      coalescer_.run(request_digest(req), [&] { return compute(req); });
  resp.elapsed_s = runtime::wall_seconds() - t0;

  runtime::Metrics& metrics = runtime::Metrics::global();
  metrics.add(led ? "serve.computed" : "serve.coalesced");
  metrics.record_latency("serve.latency", resp.elapsed_s);
  metrics.record_latency(std::string("serve.latency.") + resp.kind,
                         resp.elapsed_s);

  if (result->ok) {
    resp.status = ResponseStatus::kOk;
    resp.source = led ? "computed" : "coalesced";
    resp.payload = result->payload;
    resp.meta_json = result->meta_json;
  } else {
    resp.status = ResponseStatus::kError;
    resp.error = result->error;
    metrics.add("serve.errors");
  }
  return resp;
}

Coalescer::Result Service::compute(const Request& req) {
  Coalescer::Result r;
  Json meta = Json::object();

  switch (req.kind) {
    case RequestKind::kCurves: {
      const extract::CharacteristicSet data = core::run_curves_unit(
          req.process, req.variant, req.polarity, req.grid, &cache_);
      r.payload = core::serialize_characteristics(data);
      meta.set("device", Json::string(data.device_name));
      break;
    }
    case RequestKind::kExtract: {
      const core::DeviceExtraction dev = core::run_extraction_unit(
          req.process, req.variant, req.polarity, req.grid, req.extraction,
          &cache_);
      r.payload = core::serialize_extraction(dev.report);
      meta.set("device",
               Json::string(core::device_key(dev.variant, dev.polarity)));
      break;
    }
    case RequestKind::kFlow: {
      core::FlowOptions fo;
      fo.jobs = opts_.jobs;
      fo.cache = &cache_;
      const core::FlowResult result =
          core::run_full_flow(req.process, req.grid, req.extraction, fo);
      r.payload = result.library.to_text();
      meta.set("cards",
               Json::number(static_cast<double>(result.library.size())));
      break;
    }
    case RequestKind::kPpa: {
      // The derived-library path runs (or resumes) the full flow under this
      // request's corner first; with a warm cache that is pure
      // deserialization.
      core::ModelLibrary derived;
      if (!req.reference_library) {
        core::FlowOptions fo;
        fo.jobs = opts_.jobs;
        fo.cache = &cache_;
        derived =
            core::run_full_flow(req.process, req.grid, req.extraction, fo)
                .library;
      }
      const core::ModelLibrary& library = req.reference_library
                                              ? core::reference_model_library()
                                              : derived;
      core::PpaOptions popts;
      popts.vdd = req.process.vdd;
      core::PpaEngine engine(library, popts, {},
                             runtime::ExecPolicy{nullptr, &cache_});
      const core::CellPpa ppa = engine.measure(req.cell, req.impl);
      r.payload = core::serialize_cell_ppa(ppa);
      meta.set("cell", Json::string(cells::cell_name(ppa.type)));
      meta.set("impl", Json::string(cells::impl_name(ppa.impl)));
      meta.set("ok", Json::boolean(ppa.ok));
      meta.set("delay_s", Json::number(ppa.delay));
      meta.set("power_w", Json::number(ppa.power));
      meta.set("area_m2", Json::number(ppa.area));
      meta.set("pdp_j", Json::number(ppa.pdp));
      break;
    }
    case RequestKind::kCharlib: {
      // Library entry characterization runs (or resumes) the full flow
      // under this request's corner, then sweeps the cell's NLDM grid;
      // both stages read and fill the daemon's artifact cache, so a warm
      // repeat is pure deserialization.
      core::FlowOptions fo;
      fo.jobs = opts_.jobs;
      fo.cache = &cache_;
      const core::ModelLibrary library =
          core::run_full_flow(req.process, req.grid, req.extraction, fo)
              .library;
      charlib::CharOptions copts;
      copts.grid = req.char_grid == "mini" ? charlib::mini_char_grid()
                                           : charlib::default_char_grid();
      copts.ppa.vdd = req.process.vdd;
      const charlib::Characterizer characterizer(
          library, copts, {}, runtime::ExecPolicy{nullptr, &cache_});
      const charlib::CellChar entry =
          characterizer.characterize_cell(req.cell, req.impl);
      charlib::CharLibrary one;
      one.slew_axis = characterizer.grid().slews;
      one.load_axis = characterizer.grid().loads;
      one.insert(req.impl, entry);
      r.payload = one.to_text();
      meta.set("cell", Json::string(cells::cell_name(entry.type)));
      meta.set("impl", Json::string(charlib::impl_tag(req.impl)));
      meta.set("arcs", Json::number(static_cast<double>(entry.arcs.size())));
      meta.set("area_m2", Json::number(entry.area));
      break;
    }
    default:
      throw Error("serve: not a compute kind");
  }

  r.ok = true;
  r.meta_json = meta.dump();
  return r;
}

}  // namespace mivtx::serve
