// Request execution: one warm process state shared by every client.
//
// Service owns the daemon's long-lived state — the ArtifactCache (memory
// LRU + optional bounded disk layer) and the Coalescer — and maps each
// compute request onto the resumable flow units (core/flow_units.h):
//   curves  -> run_curves_unit        ("char" artifact)
//   extract -> run_extraction_unit    ("card" artifact)
//   flow    -> run_full_flow          (8 device pipelines, shared cache)
//   ppa     -> PpaEngine::measure     ("ppa" artifact)
// so a request is exactly as expensive as its cold suffix: stages another
// request (or a previous daemon run, via the disk layer) already produced
// deserialize instead of recomputing.
//
// Identical concurrent requests coalesce into one computation; identity is
// the StableHash of the canonical request line with the client correlation
// id blanked, so two clients asking for the same corner coalesce no matter
// what they call it.  Payloads are the artifact-text serializations from
// core/artifacts.h — byte-identical to what a local run of the same unit
// would produce.
#pragma once

#include <cstddef>
#include <string>

#include "runtime/artifact_cache.h"
#include "serve/coalesce.h"
#include "serve/protocol.h"

namespace mivtx::serve {

struct ServiceOptions {
  // Fan-out width for the flow's 8 device pipelines (0 = hardware
  // concurrency, 1 = serial).  Scheduling only — results are identical.
  std::size_t jobs = 0;
  // Shared artifact cache configuration (mivtx_serve --cache-dir /
  // --cache-max-bytes land here).
  runtime::ArtifactCache::Options cache;
};

class Service {
 public:
  explicit Service(ServiceOptions opts = {});

  // Execute one compute request (curves / extract / flow / ppa),
  // coalescing with identical in-flight requests.  Fills status, payload,
  // meta, source ("computed" | "coalesced"), elapsed_s and the trace span
  // id; never throws — failures come back as status "error".
  Response execute(const Request& req);

  runtime::ArtifactCache& cache() const { return cache_; }
  const Coalescer& coalescer() const { return coalescer_; }

  // Coalescing identity of a request: hex StableHash digest of its
  // canonical JSON line with the correlation id blanked.
  static std::string request_digest(const Request& req);

 private:
  Coalescer::Result compute(const Request& req);

  ServiceOptions opts_;
  // Internally synchronized; callers holding only a const Service (the
  // server's health probe) may still hit it.
  mutable runtime::ArtifactCache cache_;
  Coalescer coalescer_;
};

}  // namespace mivtx::serve
