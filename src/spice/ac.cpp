#include "spice/ac.h"

#include <cmath>

#include "common/error.h"
#include "linalg/complex_dense.h"
#include "spice/mna.h"
#include "spice/solver_workspace.h"

namespace mivtx::spice {

const std::vector<AcPhasor>& AcResult::v(const std::string& node) const {
  const auto it = node_v.find(node);
  MIVTX_EXPECT(it != node_v.end(), "no AC data for node " + node);
  return it->second;
}

double AcResult::magnitude(const std::string& node, std::size_t k) const {
  const auto& ph = v(node);
  MIVTX_EXPECT(k < ph.size(), "frequency index out of range");
  return std::abs(ph[k]);
}

double AcResult::phase(const std::string& node, std::size_t k) const {
  const auto& ph = v(node);
  MIVTX_EXPECT(k < ph.size(), "frequency index out of range");
  return std::arg(ph[k]);
}

std::vector<double> log_frequency_grid(double f_start, double f_stop,
                                       std::size_t points_per_decade) {
  MIVTX_EXPECT(f_start > 0.0 && f_stop > f_start,
               "bad AC frequency range");
  MIVTX_EXPECT(points_per_decade >= 1, "need at least 1 point per decade");
  std::vector<double> out;
  const double decades = std::log10(f_stop / f_start);
  const std::size_t n = static_cast<std::size_t>(
      std::ceil(decades * static_cast<double>(points_per_decade)));
  for (std::size_t i = 0; i <= n; ++i) {
    out.push_back(f_start *
                  std::pow(10.0, decades * static_cast<double>(i) /
                                     static_cast<double>(n)));
  }
  return out;
}

AcResult ac_analysis(const Circuit& circuit, const std::string& ac_source,
                     const std::vector<double>& frequencies,
                     const NewtonOptions& newton) {
  AcResult out;
  MIVTX_EXPECT(!frequencies.empty(), "AC analysis needs frequencies");
  const Element& src = circuit.element(ac_source);
  MIVTX_EXPECT(src.kind == ElementKind::kVoltageSource,
               "AC stimulus must be a voltage source");

  // The operating point runs on the sparse solver core; the per-frequency
  // phasor solves stay dense-complex (no Newton iteration to amortize).
  trace::Span span("spice.ac", "spice");
  SolverWorkspace ws(circuit, newton);
  StatsToSpan stats_guard(span, ws);
  span.annotate("frequencies", static_cast<double>(frequencies.size()));
  const DcResult dc = dc_operating_point(circuit, newton, ws);
  if (!dc.converged) {
    out.error = "DC operating point failed";
    return out;
  }

  // Linearize: G from the Newton Jacobian, C from the charge derivatives.
  const std::size_t n = circuit.system_size();
  linalg::DenseMatrix gmat, cmat;
  linalg::Vector f;
  AssemblyContext ctx;  // DC context
  assemble(circuit, dc.x, ctx, gmat, f, nullptr);
  assemble_capacitance(circuit, dc.x, cmat);

  linalg::ComplexVector rhs(n, linalg::Complex(0.0, 0.0));
  rhs[circuit.branch_unknown(src)] = linalg::Complex(1.0, 0.0);

  out.frequencies = frequencies;
  for (const double freq : frequencies) {
    const double omega = 2.0 * M_PI * freq;
    const linalg::ComplexDenseMatrix a(gmat, cmat, omega);
    const linalg::ComplexVector x = solve_complex_dense(a, rhs);
    for (NodeId node = 1; node < circuit.num_nodes(); ++node) {
      out.node_v[circuit.node_name(node)].push_back(
          x[circuit.node_unknown(node)]);
    }
    for (const Element& e : circuit.elements()) {
      if (e.kind == ElementKind::kVoltageSource) {
        out.branch_i[e.name].push_back(x[circuit.branch_unknown(e)]);
      }
    }
  }
  out.ok = true;
  return out;
}

}  // namespace mivtx::spice
