// Small-signal AC analysis.
//
// Linearizes the circuit at its DC operating point (conductance matrix G =
// the Newton Jacobian, capacitance matrix C = dQ/dV stamps) and solves
// (G + j*2*pi*f*C) x = b per frequency with a unit AC excitation on one
// voltage source.  Standard SPICE `.ac` semantics.
#pragma once

#include <complex>
#include <map>
#include <string>
#include <vector>

#include "spice/circuit.h"
#include "spice/dcop.h"

namespace mivtx::spice {

using AcPhasor = std::complex<double>;

struct AcResult {
  bool ok = false;
  std::string error;
  std::vector<double> frequencies;  // Hz
  // Node voltage phasors per node name, one entry per frequency.
  std::map<std::string, std::vector<AcPhasor>> node_v;
  // Branch current phasors per voltage-source name.
  std::map<std::string, std::vector<AcPhasor>> branch_i;

  const std::vector<AcPhasor>& v(const std::string& node) const;
  // |V(node)| at frequency index k.
  double magnitude(const std::string& node, std::size_t k) const;
  // Phase in radians.
  double phase(const std::string& node, std::size_t k) const;
};

// Logarithmically spaced frequency grid (points_per_decade over
// [f_start, f_stop]).
std::vector<double> log_frequency_grid(double f_start, double f_stop,
                                       std::size_t points_per_decade);

// Run AC analysis with a 1 V AC stimulus on `ac_source` (must be a voltage
// source; its DC value still sets the operating point).
AcResult ac_analysis(const Circuit& circuit, const std::string& ac_source,
                     const std::vector<double>& frequencies,
                     const NewtonOptions& newton = {});

}  // namespace mivtx::spice
