#include "spice/assembly_plan.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "spice/mna.h"

namespace mivtx::spice {

namespace {

using Coord = std::pair<std::size_t, std::size_t>;

// CSR slot of (r, c); the pattern is sorted per row, so binary search.
std::size_t slot_of(const std::vector<std::size_t>& row_ptr,
                    const std::vector<std::size_t>& col_idx, std::size_t r,
                    std::size_t c) {
  const auto first = col_idx.begin() + static_cast<std::ptrdiff_t>(row_ptr[r]);
  const auto last =
      col_idx.begin() + static_cast<std::ptrdiff_t>(row_ptr[r + 1]);
  const auto it = std::lower_bound(first, last, c);
  MIVTX_EXPECT(it != last && *it == c, "assembly plan: stamp outside pattern");
  return static_cast<std::size_t>(it - col_idx.begin());
}

}  // namespace

AssemblyPlan::AssemblyPlan(const Circuit& circuit)
    : n_(circuit.system_size()) {
  MIVTX_EXPECT(n_ > 0, "assembly plan: empty circuit");
  for (const Element& e : circuit.elements())
    if (e.kind == ElementKind::kMosfet) ++num_mosfets_;

  const std::vector<Coord> dc = assemble_pattern(circuit, /*dynamic=*/false);
  const std::vector<Coord> dyn = assemble_pattern(circuit, /*dynamic=*/true);

  // Union pattern -> CSR.
  std::vector<Coord> all;
  all.reserve(dc.size() + dyn.size());
  all.insert(all.end(), dc.begin(), dc.end());
  all.insert(all.end(), dyn.begin(), dyn.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());

  row_ptr_.assign(n_ + 1, 0);
  col_idx_.reserve(all.size());
  for (const Coord& rc : all) {
    MIVTX_EXPECT(rc.first < n_ && rc.second < n_,
                 "assembly plan: stamp out of range");
    col_idx_.push_back(rc.second);
    row_ptr_[rc.first + 1] += 1;
  }
  for (std::size_t r = 0; r < n_; ++r) row_ptr_[r + 1] += row_ptr_[r];

  // Emission-order slot maps for both stamp programs.
  slots_dc_.reserve(dc.size());
  for (const Coord& rc : dc)
    slots_dc_.push_back(slot_of(row_ptr_, col_idx_, rc.first, rc.second));
  slots_dynamic_.reserve(dyn.size());
  for (const Coord& rc : dyn)
    slots_dynamic_.push_back(slot_of(row_ptr_, col_idx_, rc.first, rc.second));
}

}  // namespace mivtx::spice
