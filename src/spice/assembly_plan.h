// Per-circuit MNA assembly plan.
//
// Computed once per Circuit: the fixed CSR sparsity pattern of the MNA
// Jacobian plus a stamp->slot index map per stamp program (DC and
// transient emit slightly different stamp sequences; the pattern is their
// union so one symbolic LU analysis covers both).  assemble_sparse()
// replays the stamp program with a cursor over the slot map and writes
// every Jacobian contribution straight into its CSR value slot — no entry
// lists, no sorting, no dense-matrix zeroing.
//
// The plan is valid for the lifetime of the circuit TOPOLOGY: element
// values and source specs may change freely (dc sweeps mutate them), but
// adding or removing elements or nodes invalidates the plan.
#pragma once

#include <cstddef>
#include <vector>

#include "spice/circuit.h"

namespace mivtx::spice {

class AssemblyPlan {
 public:
  explicit AssemblyPlan(const Circuit& circuit);

  // MNA system size the plan was built for.
  std::size_t size() const { return n_; }
  // Structural non-zeros of the union pattern.
  std::size_t nnz() const { return col_idx_.size(); }
  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }

  // CSR value slot of each stamp emission, in emission order, for the DC
  // (dynamic == false) or transient (dynamic == true) stamp program.
  const std::vector<std::size_t>& slots(bool dynamic) const {
    return dynamic ? slots_dynamic_ : slots_dc_;
  }

  std::size_t num_mosfets() const { return num_mosfets_; }

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_, col_idx_;
  std::vector<std::size_t> slots_dc_, slots_dynamic_;
  std::size_t num_mosfets_ = 0;
};

}  // namespace mivtx::spice
