#include "spice/circuit.h"

#include "common/error.h"
#include "common/strings.h"

namespace mivtx::spice {

Circuit::Circuit() {
  node_names_.push_back("0");
  node_ids_["0"] = kGround;
  node_ids_["gnd"] = kGround;
}

NodeId Circuit::node(const std::string& name) {
  const std::string key = to_lower(name);
  const auto it = node_ids_.find(key);
  if (it != node_ids_.end()) return it->second;
  const NodeId id = node_names_.size();
  node_names_.push_back(key);
  node_ids_[key] = id;
  return id;
}

NodeId Circuit::find_node(const std::string& name) const {
  const auto it = node_ids_.find(to_lower(name));
  MIVTX_EXPECT(it != node_ids_.end(), "unknown node: " + name);
  return it->second;
}

bool Circuit::has_node(const std::string& name) const {
  return node_ids_.count(to_lower(name)) > 0;
}

const std::string& Circuit::node_name(NodeId id) const {
  MIVTX_EXPECT(id < node_names_.size(), "node id out of range");
  return node_names_[id];
}

std::string Circuit::unknown_name(std::size_t unknown) const {
  MIVTX_EXPECT(unknown < system_size(), "unknown index out of range");
  for (NodeId n = 1; n < num_nodes(); ++n) {
    if (node_unknown(n) == unknown) return node_name(n);
  }
  for (const Element& e : elements_) {
    if ((e.kind == ElementKind::kVoltageSource ||
         e.kind == ElementKind::kVcvs ||
         e.kind == ElementKind::kInductor) &&
        branch_unknown(e) == unknown) {
      return "I(" + e.name + ")";
    }
  }
  MIVTX_FAIL("unknown index maps to no node or branch");
}

void Circuit::add_element(Element e) {
  MIVTX_EXPECT(!e.name.empty(), "element needs a name");
  const std::string key = to_lower(e.name);
  MIVTX_EXPECT(element_ids_.count(key) == 0, "duplicate element: " + e.name);
  element_ids_[key] = elements_.size();
  elements_.push_back(std::move(e));
}

void Circuit::add_resistor(const std::string& name, NodeId a, NodeId b,
                           double ohms) {
  MIVTX_EXPECT(ohms > 0.0, "resistor " + name + " must be positive");
  Element e;
  e.kind = ElementKind::kResistor;
  e.name = name;
  e.nodes[0] = a;
  e.nodes[1] = b;
  e.value = ohms;
  add_element(std::move(e));
}

void Circuit::add_capacitor(const std::string& name, NodeId a, NodeId b,
                            double farads) {
  MIVTX_EXPECT(farads > 0.0, "capacitor " + name + " must be positive");
  Element e;
  e.kind = ElementKind::kCapacitor;
  e.name = name;
  e.nodes[0] = a;
  e.nodes[1] = b;
  e.value = farads;
  add_element(std::move(e));
}

void Circuit::add_inductor(const std::string& name, NodeId a, NodeId b,
                           double henries) {
  MIVTX_EXPECT(henries > 0.0, "inductor " + name + " must be positive");
  Element e;
  e.kind = ElementKind::kInductor;
  e.name = name;
  e.nodes[0] = a;
  e.nodes[1] = b;
  e.value = henries;
  e.branch_index = num_branches_++;
  add_element(std::move(e));
}

void Circuit::add_vsource(const std::string& name, NodeId plus, NodeId minus,
                          SourceSpec spec) {
  Element e;
  e.kind = ElementKind::kVoltageSource;
  e.name = name;
  e.nodes[0] = plus;
  e.nodes[1] = minus;
  e.source = std::move(spec);
  e.branch_index = num_branches_++;
  add_element(std::move(e));
}

void Circuit::add_vcvs(const std::string& name, NodeId out_p, NodeId out_m,
                       NodeId ctrl_p, NodeId ctrl_m, double gain) {
  Element e;
  e.kind = ElementKind::kVcvs;
  e.name = name;
  e.nodes[0] = out_p;
  e.nodes[1] = out_m;
  e.nodes[2] = ctrl_p;
  e.nodes[3] = ctrl_m;
  e.value = gain;
  e.branch_index = num_branches_++;
  add_element(std::move(e));
}

void Circuit::add_vccs(const std::string& name, NodeId out_p, NodeId out_m,
                       NodeId ctrl_p, NodeId ctrl_m,
                       double transconductance) {
  Element e;
  e.kind = ElementKind::kVccs;
  e.name = name;
  e.nodes[0] = out_p;
  e.nodes[1] = out_m;
  e.nodes[2] = ctrl_p;
  e.nodes[3] = ctrl_m;
  e.value = transconductance;
  add_element(std::move(e));
}

void Circuit::add_isource(const std::string& name, NodeId plus, NodeId minus,
                          SourceSpec spec) {
  Element e;
  e.kind = ElementKind::kCurrentSource;
  e.name = name;
  e.nodes[0] = plus;
  e.nodes[1] = minus;
  e.source = std::move(spec);
  add_element(std::move(e));
}

void Circuit::add_mosfet(const std::string& name, NodeId drain, NodeId gate,
                         NodeId source, bsimsoi::SoiModelCard card) {
  Element e;
  e.kind = ElementKind::kMosfet;
  e.name = name;
  e.nodes[0] = drain;
  e.nodes[1] = gate;
  e.nodes[2] = source;
  e.model = std::move(card);
  add_element(std::move(e));
}

const Element& Circuit::element(const std::string& name) const {
  const auto it = element_ids_.find(to_lower(name));
  MIVTX_EXPECT(it != element_ids_.end(), "unknown element: " + name);
  return elements_[it->second];
}

Element& Circuit::element(const std::string& name) {
  const auto it = element_ids_.find(to_lower(name));
  MIVTX_EXPECT(it != element_ids_.end(), "unknown element: " + name);
  return elements_[it->second];
}

}  // namespace mivtx::spice
