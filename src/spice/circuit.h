// Circuit data model: named nodes plus a flat element list.
//
// Elements are plain structs dispatched by kind in the MNA assembler
// (spice/mna.h); this keeps every stamp in one translation unit instead of
// spreading numerics across a class hierarchy.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "bsimsoi/params.h"
#include "common/error.h"
#include "spice/source.h"

namespace mivtx::spice {

// Node 0 is ground.
using NodeId = std::size_t;
inline constexpr NodeId kGround = 0;

enum class ElementKind {
  kResistor,
  kCapacitor,
  kInductor,
  kVoltageSource,
  kCurrentSource,
  kVcvs,  // E: voltage-controlled voltage source
  kVccs,  // G: voltage-controlled current source
  kMosfet,
};

struct Element {
  ElementKind kind = ElementKind::kResistor;
  std::string name;
  // Node usage by kind:
  //   R, C, L:  a, b
  //   V, I:     plus, minus
  //   E, G:     out+, out-, ctrl+, ctrl-
  //   MOSFET:   drain, gate, source
  NodeId nodes[4] = {kGround, kGround, kGround, kGround};
  double value = 0.0;            // R (ohm), C (farad), L (henry), or gain
  SourceSpec source;             // V/I sources
  bsimsoi::SoiModelCard model;   // MOSFET card (instance-resolved copy)
  // V, E and L elements carry an extra MNA branch-current unknown.
  std::size_t branch_index = 0;
};

class Circuit {
 public:
  Circuit();

  // Returns the node id for `name`, creating it on first use.  "0" and
  // "gnd" are the ground node.
  NodeId node(const std::string& name);
  // Lookup without creation; throws if missing.
  NodeId find_node(const std::string& name) const;
  bool has_node(const std::string& name) const;
  const std::string& node_name(NodeId id) const;
  std::size_t num_nodes() const { return node_names_.size(); }  // incl. ground

  void add_resistor(const std::string& name, NodeId a, NodeId b, double ohms);
  void add_capacitor(const std::string& name, NodeId a, NodeId b,
                     double farads);
  void add_inductor(const std::string& name, NodeId a, NodeId b,
                    double henries);
  void add_vsource(const std::string& name, NodeId plus, NodeId minus,
                   SourceSpec spec);
  void add_isource(const std::string& name, NodeId plus, NodeId minus,
                   SourceSpec spec);
  // E element: v(out+) - v(out-) = gain * (v(ctrl+) - v(ctrl-)).
  void add_vcvs(const std::string& name, NodeId out_p, NodeId out_m,
                NodeId ctrl_p, NodeId ctrl_m, double gain);
  // G element: current gain * (v(ctrl+) - v(ctrl-)) flows out+ -> out-.
  void add_vccs(const std::string& name, NodeId out_p, NodeId out_m,
                NodeId ctrl_p, NodeId ctrl_m, double transconductance);
  void add_mosfet(const std::string& name, NodeId drain, NodeId gate,
                  NodeId source, bsimsoi::SoiModelCard card);

  const std::vector<Element>& elements() const { return elements_; }
  std::vector<Element>& elements() { return elements_; }
  // Number of extra branch-current unknowns (V, E and L elements).
  std::size_t num_branches() const { return num_branches_; }
  std::size_t num_vsources() const { return num_branches_; }  // legacy alias

  // Element lookup by name (unique names enforced); throws if missing.
  const Element& element(const std::string& name) const;
  Element& element(const std::string& name);

  // Total MNA unknowns: non-ground nodes + branch currents.
  std::size_t system_size() const {
    return (num_nodes() - 1) + num_branches_;
  }

  // Unknown index of a node voltage (node must not be ground).  Inline:
  // the assembler calls this ~10x per element per Newton iteration, and an
  // out-of-line call here was measurable in the transient profile.
  std::size_t node_unknown(NodeId n) const {
    MIVTX_EXPECT(n != kGround, "ground has no unknown");
    MIVTX_EXPECT(n < num_nodes(), "node id out of range");
    return n - 1;
  }
  // Human-readable name of an MNA unknown: the node name for a voltage
  // unknown, "I(<element>)" for a branch-current unknown.  Inverts the
  // actual node_unknown/branch_unknown relations instead of assuming
  // unknown == node - 1, so diagnostics stay correct if the unknown
  // numbering ever changes.  O(n) scan — diagnostics only, never hot.
  std::string unknown_name(std::size_t unknown) const;

  // Unknown index of a branch current (V, E or L element).
  std::size_t branch_unknown(const Element& branch_element) const {
    MIVTX_EXPECT(branch_element.kind == ElementKind::kVoltageSource ||
                     branch_element.kind == ElementKind::kVcvs ||
                     branch_element.kind == ElementKind::kInductor,
                 "branch_unknown needs a V, E or L element");
    return (num_nodes() - 1) + branch_element.branch_index;
  }

 private:
  void add_element(Element e);

  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> node_ids_;
  std::vector<Element> elements_;
  std::unordered_map<std::string, std::size_t> element_ids_;
  std::size_t num_branches_ = 0;
};

}  // namespace mivtx::spice
