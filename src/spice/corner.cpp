#include "spice/corner.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "bsimsoi/batch.h"
#include "bsimsoi/simd.h"
#include "common/error.h"
#include "common/log.h"
#include "common/strings.h"
#include "linalg/batch_lu.h"
#include "linalg/sparse_lu.h"
#include "linalg/vector_ops.h"
#include "lint/presolve.h"
#include "runtime/metrics.h"
#include "spice/assembly_plan.h"
#include "trace/trace.h"

namespace mivtx::spice {

namespace {

// Lane packing shares one AssemblyPlan across the corner circuits, so the
// stamp programs must be identical: same element sequence, same node
// wiring.  Values, model cards and source specs may differ freely.
bool same_topology(const Circuit& a, const Circuit& b) {
  if (a.system_size() != b.system_size() || a.num_nodes() != b.num_nodes())
    return false;
  const std::vector<Element>& ea = a.elements();
  const std::vector<Element>& eb = b.elements();
  if (ea.size() != eb.size()) return false;
  for (std::size_t i = 0; i < ea.size(); ++i) {
    if (ea[i].kind != eb[i].kind) return false;
    for (int t = 0; t < 4; ++t)
      if (ea[i].nodes[t] != eb[i].nodes[t]) return false;
  }
  return true;
}

struct RecordSlot {
  std::size_t unknown;
  waveform::Waveform* wave;
};

// Everything one corner lane owns: its solution/history vectors, CSR
// values, numeric LU, and device-bypass cache (staging into the shared
// DeviceBatch at stride K / offset lane) — the per-lane half of what
// SolverWorkspace owns for a standalone run.  The plan, the batch and the
// time-step controller are shared by the engine.
struct Lane {
  const Circuit* circuit = nullptr;
  MosfetCache cache;
  linalg::SparseLU lu;
  std::vector<double> values;
  linalg::Vector f, dx;
  linalg::Vector x, x_prev, x_pred, x_new, x_half, x_two;
  DynamicState state, state_prev, new_state, state_half;
  std::vector<RecordSlot> rec;

  // Jacobian identity tracking, mirroring SolverWorkspace: the generation
  // bumps whenever an assembly produced different values than the ones
  // last factored, so unchanged iterates reuse the numeric factors.
  std::uint64_t jac_generation = 0;
  std::uint64_t factored_generation = 0;
  std::uint64_t batch_factored_generation = 0;
  bool numeric_ok = false;
  bool have_coeffs = false;
  double last_gmin = 0.0, last_h = 0.0, last_step_ratio = 0.0;
  Integrator last_integrator = Integrator::kNone;
};

// One lane's role in a lockstep Newton solve: which iterate it corrects,
// which dynamic history it integrates against, and where the converged
// state lands.
struct Target {
  Lane* lane = nullptr;
  linalg::Vector* x = nullptr;
  const DynamicState* prev = nullptr;
  const DynamicState* prev2 = nullptr;
  DynamicState* final_state = nullptr;
  bool converged = false;
  bool batch_solved = false;
  bool recheck = false;
  std::size_t fresh = 0;
  int iterations = 0;
};

class CornerEngine {
 public:
  CornerEngine(const std::vector<const Circuit*>& corners,
               const TransientOptions& opts, bsimsoi::SimdLevel level,
               CornerTransientResult& out)
      : opts_(opts),
        out_(out),
        n_(corners[0]->system_size()),
        num_v_(corners[0]->num_nodes() - 1),
        plan_(*corners[0]) {
    const std::size_t k = corners.size();
    lanes_.resize(k);
    out_.lanes.clear();
    out_.lanes.resize(k);

    // Shared batch, device-major / corner-minor: the K corner variants of
    // MOSFET i occupy instances i*K .. i*K+K-1, so one kernel block holds
    // adjacent corners of the same device.
    std::vector<const bsimsoi::SoiModelCard*> cards;
    const std::vector<Element>& e0 = corners[0]->elements();
    for (std::size_t ei = 0; ei < e0.size(); ++ei) {
      if (e0[ei].kind != ElementKind::kMosfet) continue;
      for (std::size_t lane = 0; lane < k; ++lane)
        cards.push_back(&corners[lane]->elements()[ei].model);
    }
    batch_.bind(cards, level);

    for (std::size_t lane = 0; lane < k; ++lane) {
      Lane& ln = lanes_[lane];
      ln.circuit = corners[lane];
      ln.cache.vtol = opts_.newton.bypass_vtol;
      if (opts_.newton.bypass_vtol >= 0.0) ln.cache.bind(*ln.circuit);
      ln.cache.batch = &batch_;
      ln.cache.batch_stride = k;
      ln.cache.batch_offset = lane;
      ln.lu.analyze(plan_.size(), plan_.row_ptr(), plan_.col_idx());
      ln.values.assign(plan_.nnz(), 0.0);
      ln.f.assign(n_, 0.0);
      ln.dx.assign(n_, 0.0);
      ln.x.assign(n_, 0.0);
      ln.x_prev.assign(n_, 0.0);
      ln.x_pred.assign(n_, 0.0);
      ln.x_new.assign(n_, 0.0);
      ln.x_half.assign(n_, 0.0);
      ln.x_two.assign(n_, 0.0);
    }

    // Lane-packed numeric LU: one reference pivot order (lane 0) replayed
    // across every corner's values, one 4-lane SIMD block at a time.  The
    // reference is factorized lazily on the first group solve; per-lane
    // scalar LUs stay around as the fallback for degraded lanes.
    stride_ = (k + 3) & ~std::size_t{3};
    ref_lu_.analyze(plan_.size(), plan_.row_ptr(), plan_.col_idx());
    soa_values_.assign(plan_.nnz() * stride_, 0.0);
    soa_rhs_.assign(n_ * stride_, 0.0);
    lane_ok_.assign(stride_, 0);
    simd_lu_ = level == bsimsoi::SimdLevel::kAvx2;

    // Lane-packed assembly: one walk of the shared stamp program computes
    // every lane's CSR values and residuals straight into the SoA the
    // batch LU consumes.  Element values may differ per corner, so the
    // per-kind constants are transposed lane-minor here; pad lanes
    // replicate lane 0 throughout.  Covers the element kinds standard
    // cells produce — anything else keeps the per-lane scalar assembler.
    lane_src_.resize(stride_);
    for (std::size_t j = 0; j < stride_; ++j) lane_src_[j] = j < k ? j : 0;
    packed_ok_ = stride_ <= kMaxStride;
    std::size_t n_res = 0, n_cap = 0, n_vsrc = 0, n_isrc = 0;
    for (const Element& e : corners[0]->elements()) {
      switch (e.kind) {
        case ElementKind::kResistor: n_res += 1; break;
        case ElementKind::kCapacitor: n_cap += 1; break;
        case ElementKind::kVoltageSource: n_vsrc += 1; break;
        case ElementKind::kCurrentSource: n_isrc += 1; break;
        case ElementKind::kMosfet: break;
        default: packed_ok_ = false; break;
      }
    }
    if (packed_ok_) {
      charge_slots_ = count_charge_slots(*corners[0]);
      capture_.assign(stride_, nullptr);
      x_soa_.assign(n_ * stride_, 0.0);
      f_soa_.assign(n_ * stride_, 0.0);
      prevq_soa_.assign(charge_slots_ * stride_, 0.0);
      prev2q_soa_.assign(charge_slots_ * stride_, 0.0);
      previq_soa_.assign(charge_slots_ * stride_, 0.0);
      r_ginv_soa_.assign(n_res * stride_, 0.0);
      c_val_soa_.assign(n_cap * stride_, 0.0);
      vsrc_soa_.assign(n_vsrc * stride_, 0.0);
      isrc_soa_.assign(n_isrc * stride_, 0.0);
      std::size_t r_i = 0, c_i = 0;
      std::size_t ei = 0;
      for (const Element& e : corners[0]->elements()) {
        if (e.kind == ElementKind::kResistor) {
          for (std::size_t j = 0; j < stride_; ++j)
            r_ginv_soa_[r_i * stride_ + j] =
                1.0 / corners[lane_src_[j]]->elements()[ei].value;
          r_i += 1;
        } else if (e.kind == ElementKind::kCapacitor) {
          for (std::size_t j = 0; j < stride_; ++j)
            c_val_soa_[c_i * stride_ + j] =
                corners[lane_src_[j]]->elements()[ei].value;
          c_i += 1;
        }
        ei += 1;
      }
    }
  }

  ~CornerEngine() { flush_metrics(); }

  // False => the caller should discard out_ and re-run every lane through
  // the scalar transient() path.
  bool run();

 private:
  void note_eval(std::size_t blocks, std::size_t fresh) {
    if (blocks == 0) return;
    batch_evals_ += 1;
    batch_blocks_ += blocks;
    batch_lanes_ += fresh;
  }

  // Post-kernel half of one lane's assembly: stamp from the batch outputs
  // and track whether the Jacobian values actually changed.
  void finish_assembly(Lane& lane, const linalg::Vector& x,
                       const AssemblyContext& ctx, std::size_t fresh,
                       DynamicState* new_state) {
    assemble_sparse(*lane.circuit, plan_, x, ctx, lane.values, lane.f,
                    new_state, &lane.cache);
    const bool coeffs_changed =
        !lane.have_coeffs || ctx.gmin != lane.last_gmin ||
        ctx.h != lane.last_h || ctx.step_ratio != lane.last_step_ratio ||
        ctx.integrator != lane.last_integrator;
    if (fresh != 0 || coeffs_changed) lane.jac_generation += 1;
    lane.last_gmin = ctx.gmin;
    lane.last_h = ctx.h;
    lane.last_step_ratio = ctx.step_ratio;
    lane.last_integrator = ctx.integrator;
    lane.have_coeffs = true;
  }

  // SolverWorkspace's factorization ladder minus the dense fallback: a
  // singular lane reads as Newton non-convergence and the step controller
  // (or the engine-level scalar fallback) takes over.
  bool factor_and_solve(Lane& lane, linalg::Vector& b) {
    const bool reuse = opts_.newton.reuse_factorization;
    const bool current = reuse && lane.numeric_ok && lane.lu.factorized() &&
                         lane.factored_generation == lane.jac_generation;
    if (!current) {
      bool ok = false;
      if (lane.numeric_ok && reuse) ok = lane.lu.refactorize(lane.values);
      if (!ok) {
        ok = lane.lu.factorize(lane.values);
        lane.numeric_ok = ok;
        if (!ok) return false;
      }
      lane.factored_generation = lane.jac_generation;
    }
    lane.lu.solve(b);
    return true;
  }

  // Transpose every lane's CSR values into the lane-minor SoA the batch
  // kernel consumes; pad lanes replicate lane 0 so no block divides by
  // uninitialized pivots.
  void pack_values() {
    const std::size_t stride = batch_lu_.stride();
    const std::size_t nnz = plan_.nnz();
    for (std::size_t e = 0; e < nnz; ++e) {
      double* dst = &soa_values_[e * stride];
      for (std::size_t j = 0; j < lanes_.size(); ++j)
        dst[j] = lanes_[j].values[e];
      for (std::size_t j = lanes_.size(); j < stride; ++j) dst[j] = dst[0];
    }
  }

  // Copy one lane's column of the SoA Jacobian back into its contiguous
  // CSR array (scalar-LU fallback and reference factorization).
  void gather_lane(std::size_t j) {
    const std::size_t nnz = plan_.nnz();
    std::vector<double>& dst = lanes_[j].values;
    for (std::size_t e = 0; e < nnz; ++e)
      dst[e] = soa_values_[e * stride_ + j];
  }

  // Once-per-group-solve inputs of the packed assembler: source values at
  // the step time and the lane-minor transposes of the dynamic histories.
  void packed_precompute(const std::vector<Target>& ts,
                         const AssemblyContext& ctx) {
    std::size_t v_i = 0, i_i = 0, ei = 0;
    for (const Element& e : lanes_[0].circuit->elements()) {
      if (e.kind == ElementKind::kVoltageSource) {
        for (std::size_t j = 0; j < stride_; ++j)
          vsrc_soa_[v_i * stride_ + j] =
              ctx.source_scale *
              lanes_[lane_src_[j]].circuit->elements()[ei].source.value(
                  ctx.time);
        v_i += 1;
      } else if (e.kind == ElementKind::kCurrentSource) {
        for (std::size_t j = 0; j < stride_; ++j)
          isrc_soa_[i_i * stride_ + j] =
              ctx.source_scale *
              lanes_[lane_src_[j]].circuit->elements()[ei].source.value(
                  ctx.time);
        i_i += 1;
      }
      ei += 1;
    }
    if (ctx.integrator == Integrator::kNone) return;
    for (std::size_t j = 0; j < stride_; ++j) {
      const Target& t = ts[lane_src_[j]];
      const DynamicState* prev = t.prev;
      const DynamicState* prev2 = t.prev2 ? t.prev2 : t.prev;
      for (std::size_t sl = 0; sl < charge_slots_; ++sl) {
        prevq_soa_[sl * stride_ + j] = prev->q[sl];
        previq_soa_[sl * stride_ + j] = prev->iq[sl];
        prev2q_soa_[sl * stride_ + j] = prev2->q[sl];
      }
    }
  }

  // Lane-packed mirror of assemble_impl (mna.cpp) for the element kinds
  // standard cells produce: resistors, capacitors, V/I sources and
  // MOSFETs.  Walks the shared stamp program once, computing every lane's
  // value per emission and writing it at the emission's CSR slot in the
  // lane-minor SoA.  The emission sequence (cursor discipline, ground
  // skips) must match assemble_impl exactly — the cursor check at the end
  // guards against drift.  Residuals land in f_soa_; when capturing_ is
  // set the lanes with a non-null capture_[j] also receive their charges
  // and companion currents (convergence rechecks), matching what the
  // scalar assembler writes into new_state.
  void packed_assemble(const AssemblyContext& ctx) {
    const std::size_t K = stride_;
    const bool dynamic = ctx.integrator != Integrator::kNone;
    const Circuit& c0 = *lanes_[0].circuit;
    const std::vector<std::size_t>& slots = plan_.slots(dynamic);
    std::size_t cursor = 0;
    std::fill(soa_values_.begin(), soa_values_.end(), 0.0);
    std::fill(f_soa_.begin(), f_soa_.end(), 0.0);

    const IntegratorCoeffs ic = integrator_coeffs(ctx);
    double* vals = soa_values_.data();
    double* fs = f_soa_.data();
    const double* xs = x_soa_.data();
    static const double kZeros[kMaxStride] = {};

    auto xrow = [&](NodeId node) -> const double* {
      return node == kGround ? kZeros : xs + c0.node_unknown(node) * K;
    };
    auto add_f = [&](NodeId node, const double* cur, double sign) {
      if (node == kGround) return;
      double* dst = fs + c0.node_unknown(node) * K;
      for (std::size_t j = 0; j < K; ++j) dst[j] += sign * cur[j];
    };
    auto add_j = [&](const double* g, double sign) {
      double* dst = vals + slots[cursor++] * K;
      for (std::size_t j = 0; j < K; ++j) dst[j] += sign * g[j];
    };
    auto stamp_conductance = [&](NodeId a, NodeId b, const double* g) {
      double cur[kMaxStride];
      const double* va = xrow(a);
      const double* vb = xrow(b);
      for (std::size_t j = 0; j < K; ++j) cur[j] = g[j] * (va[j] - vb[j]);
      add_f(a, cur, 1.0);
      add_f(b, cur, -1.0);
      if (a != kGround) {
        add_j(g, 1.0);
        if (b != kGround) add_j(g, -1.0);
      }
      if (b != kGround) {
        add_j(g, 1.0);
        if (a != kGround) add_j(g, -1.0);
      }
    };

    double gmin_v[kMaxStride], leak_v[kMaxStride], gs_leak[kMaxStride];
    double ones[kMaxStride];
    for (std::size_t j = 0; j < K; ++j) {
      gmin_v[j] = ctx.gmin;
      leak_v[j] = 1e-12;
      gs_leak[j] = 1e-15;
      ones[j] = 1.0;
    }

    std::size_t slot = 0, r_i = 0, c_i = 0, v_i = 0, i_i = 0, m_i = 0;
    const std::size_t nl = lanes_.size();
    for (const Element& e : c0.elements()) {
      switch (e.kind) {
        case ElementKind::kResistor: {
          stamp_conductance(e.nodes[0], e.nodes[1], &r_ginv_soa_[r_i * K]);
          r_i += 1;
          break;
        }
        case ElementKind::kCapacitor: {
          const NodeId a = e.nodes[0], b = e.nodes[1];
          const double* cval = &c_val_soa_[c_i * K];
          c_i += 1;
          if (dynamic) {
            const double* pq = &prevq_soa_[slot * K];
            const double* p2q = &prev2q_soa_[slot * K];
            const double* piq = &previq_soa_[slot * K];
            const double* va = xrow(a);
            const double* vb = xrow(b);
            double cur[kMaxStride], g[kMaxStride];
            for (std::size_t j = 0; j < K; ++j) {
              const double q = cval[j] * (va[j] - vb[j]);
              const double ihist =
                  ic.c_prev * pq[j] + ic.c_prev2 * p2q[j] + ic.c_iq * piq[j];
              cur[j] = ic.geq * q - ihist;
              g[j] = ic.geq * cval[j];
            }
            if (capturing_) {
              for (std::size_t j = 0; j < K; ++j) {
                if (DynamicState* st = capture_[j]) {
                  st->q[slot] = cval[j] * (va[j] - vb[j]);
                  st->iq[slot] = cur[j];
                }
              }
            }
            add_f(a, cur, 1.0);
            add_f(b, cur, -1.0);
            if (a != kGround) {
              add_j(g, 1.0);
              if (b != kGround) add_j(g, -1.0);
            }
            if (b != kGround) {
              add_j(g, 1.0);
              if (a != kGround) add_j(g, -1.0);
            }
          }
          stamp_conductance(a, b, leak_v);
          slot += 1;
          break;
        }
        case ElementKind::kVoltageSource: {
          const NodeId p = e.nodes[0], m = e.nodes[1];
          const std::size_t k = c0.branch_unknown(e);
          const double* ibr = xs + k * K;
          add_f(p, ibr, 1.0);
          add_f(m, ibr, -1.0);
          if (p != kGround) add_j(ones, 1.0);
          if (m != kGround) add_j(ones, -1.0);
          const double* vp = xrow(p);
          const double* vm = xrow(m);
          const double* vset = &vsrc_soa_[v_i * K];
          double* fk = fs + k * K;
          for (std::size_t j = 0; j < K; ++j)
            fk[j] = vp[j] - vm[j] - vset[j];
          if (p != kGround) add_j(ones, 1.0);
          if (m != kGround) add_j(ones, -1.0);
          v_i += 1;
          break;
        }
        case ElementKind::kCurrentSource: {
          const double* iv = &isrc_soa_[i_i * K];
          add_f(e.nodes[0], iv, 1.0);
          add_f(e.nodes[1], iv, -1.0);
          i_i += 1;
          break;
        }
        case ElementKind::kMosfet: {
          const NodeId d = e.nodes[0], g = e.nodes[1], s = e.nodes[2];
          // Gather the kernel outputs lane-minor; pads read lane 0.
          double ids[kMaxStride], dids[3][kMaxStride];
          double qt[3][kMaxStride], dq[3][3][kMaxStride];
          for (std::size_t j = 0; j < K; ++j) {
            const bsimsoi::ModelOutput& o =
                batch_.output(m_i * nl + lane_src_[j]);
            ids[j] = o.ids;
            for (int t = 0; t < 3; ++t) dids[t][j] = o.dids[t];
            qt[0][j] = o.qg;
            qt[1][j] = o.qd;
            qt[2][j] = o.qs;
            for (int u = 0; u < 3; ++u) {
              dq[0][u][j] = o.dqg[u];
              dq[1][u][j] = o.dqd[u];
              dq[2][u][j] = o.dqs[u];
            }
          }
          m_i += 1;
          const NodeId term[3] = {g, d, s};
          add_f(d, ids, 1.0);
          add_f(s, ids, -1.0);
          for (int t = 0; t < 3; ++t) {
            if (term[t] == kGround) continue;
            if (d != kGround) add_j(dids[t], 1.0);
            if (s != kGround) add_j(dids[t], -1.0);
          }
          stamp_conductance(d, s, gmin_v);
          stamp_conductance(g, s, gs_leak);
          for (int t = 0; t < 3; ++t) {
            const std::size_t sl = slot + static_cast<std::size_t>(t);
            if (!dynamic) continue;
            const double* pq = &prevq_soa_[sl * K];
            const double* p2q = &prev2q_soa_[sl * K];
            const double* piq = &previq_soa_[sl * K];
            double cur[kMaxStride];
            for (std::size_t j = 0; j < K; ++j) {
              const double ihist =
                  ic.c_prev * pq[j] + ic.c_prev2 * p2q[j] + ic.c_iq * piq[j];
              cur[j] = ic.geq * qt[t][j] - ihist;
            }
            if (capturing_) {
              for (std::size_t j = 0; j < K; ++j) {
                if (DynamicState* st = capture_[j]) {
                  st->q[sl] = qt[t][j];
                  st->iq[sl] = cur[j];
                }
              }
            }
            add_f(term[t], cur, 1.0);
            if (term[t] == kGround) continue;
            for (int u = 0; u < 3; ++u) {
              if (term[u] == kGround) continue;
              double gj[kMaxStride];
              for (std::size_t j = 0; j < K; ++j)
                gj[j] = ic.geq * dq[t][u][j];
              add_j(gj, 1.0);
            }
          }
          slot += 3;
          break;
        }
        default:
          MIVTX_EXPECT(false, "packed_assemble: unsupported element kind");
      }
    }
    MIVTX_EXPECT(cursor == slots.size(),
                 "packed_assemble: stamp program drifted from the plan");
  }

  // Lane-packed factor + solve across the unconverged targets: one
  // BatchSparseLU replay covers every lane, and the per-lane pivot checks
  // decide which lanes (if any) must run their private scalar ladder this
  // iteration instead.  Expects lane.dx == -f on entry; overwrites dx with
  // the Newton correction for every target it marks batch_solved.  With
  // `packed` the SoA values were written by packed_assemble (always fresh,
  // so the factors always replay); otherwise they are transposed here from
  // the per-lane CSR arrays.
  void batch_factor_and_solve(std::vector<Target>& ts, bool packed) {
    std::size_t unconverged = 0;
    for (Target& t : ts) {
      t.batch_solved = false;
      if (!t.converged) ++unconverged;
    }
    // A lone unconverged straggler is cheaper on its scalar LU than a
    // full-width pack + replay.
    if (unconverged < 2) return;

    if (!ref_lu_.factorized()) {
      if (packed) gather_lane(0);
      if (!ref_lu_.factorize(lanes_[0].values)) return;
      batch_lu_.bind(ref_lu_, lanes_.size(), simd_lu_);
      batch_numeric_ok_ = false;
    }

    bool need = packed || !batch_numeric_ok_ ||
                !opts_.newton.reuse_factorization;
    for (const Target& t : ts)
      if (!t.converged &&
          t.lane->batch_factored_generation != t.lane->jac_generation)
        need = true;
    if (need) {
      if (!packed) pack_values();
      if (!batch_lu_.refactorize(soa_values_.data(), lane_ok_.data())) {
        // Some lane's pivot degraded past the replay bound.  Re-pivot the
        // reference at the current operating point and retry once — the
        // usual cause is the shared trajectory drifting, not one hostile
        // corner.  Lanes still flagged after the retry fall back to their
        // scalar LU for this iteration.
        if (packed) gather_lane(0);
        if (!ref_lu_.factorize(lanes_[0].values)) {
          batch_numeric_ok_ = false;
          return;
        }
        batch_lu_.bind(ref_lu_, lanes_.size(), simd_lu_);
        batch_lu_.refactorize(soa_values_.data(), lane_ok_.data());
      }
      batch_numeric_ok_ = true;
      for (Lane& ln : lanes_) ln.batch_factored_generation = ln.jac_generation;
      batch_lu_refactors_ += 1;
    }

    const std::size_t stride = batch_lu_.stride();
    std::fill(soa_rhs_.begin(), soa_rhs_.end(), 0.0);
    std::size_t solved = 0;
    for (Target& t : ts) {
      if (t.converged) continue;
      const std::size_t j =
          static_cast<std::size_t>(t.lane - lanes_.data());
      if (!lane_ok_[j]) continue;
      for (std::size_t i = 0; i < n_; ++i)
        soa_rhs_[i * stride + j] = t.lane->dx[i];
      t.batch_solved = true;
      solved += 1;
    }
    if (solved == 0) return;
    batch_lu_.solve(soa_rhs_.data());
    batch_lu_solves_ += 1;
    for (Target& t : ts) {
      if (!t.batch_solved) continue;
      const std::size_t j =
          static_cast<std::size_t>(t.lane - lanes_.data());
      for (std::size_t i = 0; i < n_; ++i)
        t.lane->dx[i] = soa_rhs_[i * stride + j];
    }
  }

  // Lockstep Newton over `ts`: per iteration ONE batched kernel pass
  // covers every unconverged lane's fresh devices, then each lane stamps,
  // factors, damps and checks convergence independently.  Converged lanes
  // freeze (their convergence-recheck assembly runs once, with a partial
  // restage that leaves the other lanes' kernel outputs untouched).
  // Damping, tolerances and the residual recheck mirror solve_newton()
  // exactly.  Returns true when every target converged.
  bool group_newton(std::vector<Target>& ts, AssemblyContext ctx) {
    const NewtonOptions& no = opts_.newton;
    const bool dynamic = ctx.integrator != Integrator::kNone;
    std::size_t done = 0;
    for (Target& t : ts) {
      t.converged = false;
      t.iterations = 0;
    }
    const bool packed = packed_ok_ && ts.size() == lanes_.size();
    if (packed) {
      for (std::size_t j = 0; j < ts.size(); ++j)
        MIVTX_EXPECT(ts[j].lane == &lanes_[j],
                     "group_newton: packed targets must follow lane order");
      packed_precompute(ts, ctx);
    }
    for (int it = 0; it < no.max_iterations && done < ts.size(); ++it) {
      batch_.clear_active();
      std::size_t staged = 0;
      for (Target& t : ts) {
        if (t.converged) continue;
        t.fresh = t.lane->cache.batch_stage(*t.lane->circuit, *t.x, dynamic);
        staged += t.fresh;
      }
      note_eval(batch_.eval(), staged);

      if (packed) {
        for (std::size_t j = 0; j < stride_; ++j) {
          const linalg::Vector& xv = *ts[lane_src_[j]].x;
          for (std::size_t i = 0; i < n_; ++i) x_soa_[i * stride_ + j] = xv[i];
        }
        packed_assemble(ctx);
        for (std::size_t j = 0; j < ts.size(); ++j) {
          if (ts[j].converged) continue;
          linalg::Vector& dx = ts[j].lane->dx;
          for (std::size_t i = 0; i < n_; ++i)
            dx[i] = -f_soa_[i * stride_ + j];
        }
      } else {
        for (Target& t : ts) {
          if (t.converged) continue;
          Lane& lane = *t.lane;
          ctx.prev = t.prev;
          ctx.prev2 = t.prev2;
          finish_assembly(lane, *t.x, ctx, t.fresh, nullptr);
          for (std::size_t i = 0; i < n_; ++i) lane.dx[i] = -lane.f[i];
        }
      }

      // One lane-packed numeric LU pass serves every unconverged lane;
      // lanes the batch declines (degraded pivot, lone straggler) keep
      // the per-lane scalar ladder below.
      batch_factor_and_solve(ts, packed);

      for (Target& t : ts) {
        if (t.converged) continue;
        Lane& lane = *t.lane;
        ctx.prev = t.prev;
        ctx.prev2 = t.prev2;

        linalg::Vector& dx = lane.dx;
        if (!t.batch_solved) {
          if (packed) {
            // The scalar ladder needs this lane's CSR values, which only
            // exist in the SoA when the packed assembler ran.
            gather_lane(static_cast<std::size_t>(t.lane - lanes_.data()));
            lane.jac_generation += 1;
          }
          if (!factor_and_solve(lane, dx)) return false;
        }

        double max_dv = 0.0;
        for (std::size_t i = 0; i < num_v_; ++i)
          max_dv = std::max(max_dv, std::fabs(dx[i]));
        double damp = 1.0;
        if (max_dv > no.max_dv) damp = no.max_dv / max_dv;
        for (std::size_t i = 0; i < n_; ++i) (*t.x)[i] += damp * dx[i];
        t.iterations = it + 1;

        bool converged = damp == 1.0;
        if (converged) {
          for (std::size_t i = 0; i < n_ && converged; ++i) {
            const double tol = (i < num_v_ ? no.vtol : no.itol) +
                               no.reltol * std::fabs((*t.x)[i]);
            if (std::fabs(dx[i]) > tol) converged = false;
          }
        }
        t.recheck = converged;
      }

      // Residual recheck at the accepted iterates; also captures the
      // dynamic states.  Lockstep makes lanes converge together, so the
      // candidates share ONE partial staging + kernel pass (DeviceBatch
      // retains the other lanes' outputs) instead of a tiny pass each.
      bool any_recheck = false;
      for (const Target& t : ts) any_recheck |= t.recheck;
      if (any_recheck) {
        batch_.clear_active();
        std::size_t staged2 = 0;
        for (Target& t : ts) {
          if (!t.recheck) continue;
          t.fresh = t.lane->cache.batch_stage(*t.lane->circuit, *t.x, dynamic);
          staged2 += t.fresh;
        }
        note_eval(batch_.eval(), staged2);
        if (packed) {
          // One packed assembly at the candidate iterates covers every
          // recheck lane's residual AND its dynamic-state capture; the
          // other lanes' columns are computed but never read (their batch
          // outputs are stale relative to the updated x).
          for (std::size_t j = 0; j < stride_; ++j) {
            const linalg::Vector& xv = *ts[lane_src_[j]].x;
            for (std::size_t i = 0; i < n_; ++i)
              x_soa_[i * stride_ + j] = xv[i];
          }
          for (std::size_t j = 0; j < ts.size(); ++j) {
            DynamicState* st = ts[j].recheck ? ts[j].final_state : nullptr;
            if (st != nullptr) {
              st->q.assign(charge_slots_, 0.0);
              st->iq.assign(charge_slots_, 0.0);
              capturing_ = true;
            }
            capture_[j] = st;
          }
          packed_assemble(ctx);
          capturing_ = false;
          std::fill(capture_.begin(), capture_.end(), nullptr);
          for (std::size_t j = 0; j < ts.size(); ++j) {
            Target& t = ts[j];
            if (!t.recheck) continue;
            t.recheck = false;
            double norm = 0.0;
            for (std::size_t i = 0; i < n_; ++i)
              norm = std::max(norm, std::fabs(f_soa_[i * stride_ + j]));
            if (norm < no.residual_tol) {
              t.converged = true;
              ++done;
            }
          }
        } else {
          for (Target& t : ts) {
            if (!t.recheck) continue;
            t.recheck = false;
            Lane& lane = *t.lane;
            ctx.prev = t.prev;
            ctx.prev2 = t.prev2;
            finish_assembly(lane, *t.x, ctx, t.fresh, t.final_state);
            if (linalg::norm_inf(lane.f) < no.residual_tol) {
              t.converged = true;
              ++done;
            }
          }
        }
      }
    }
    return done == ts.size();
  }

  // t=0 operating points, lockstep plain Newton from zero; a lane the
  // group solve cannot start falls back to the scalar gmin/source
  // continuation ladder on its own circuit.
  bool solve_dc() {
    AssemblyContext ctx;
    ctx.time = 0.0;
    ctx.integrator = Integrator::kNone;
    ctx.gmin = 1e-12;
    std::vector<Target> ts(lanes_.size());
    for (std::size_t k = 0; k < lanes_.size(); ++k) {
      lanes_[k].x.assign(n_, 0.0);
      ts[k].lane = &lanes_[k];
      ts[k].x = &lanes_[k].x;
    }
    group_newton(ts, ctx);
    for (std::size_t k = 0; k < lanes_.size(); ++k) {
      out_.lanes[k].newton_iterations +=
          static_cast<std::size_t>(ts[k].iterations);
      if (ts[k].converged) continue;
      NewtonOptions fallback = opts_.newton;
      fallback.presolve_lint = false;  // gated once in run()
      const DcResult r = dc_operating_point(*lanes_[k].circuit, fallback);
      out_.lanes[k].newton_iterations +=
          static_cast<std::size_t>(r.total_iterations);
      if (!r.converged) {
        MIVTX_WARN << "corner_transient: lane " << k
                   << " DC operating point failed; falling back to the "
                      "scalar path";
        return false;
      }
      lanes_[k].x = r.x;
    }
    return true;
  }

  void flush_metrics() {
    std::uint64_t evals = 0, bypasses = 0;
    std::uint64_t evals_dc = 0, evals_tran = 0;
    std::uint64_t bypasses_dc = 0, bypasses_tran = 0;
    for (const Lane& ln : lanes_) {
      evals += ln.cache.evals;
      bypasses += ln.cache.bypasses;
      evals_dc += ln.cache.evals_dc;
      evals_tran += ln.cache.evals_tran;
      bypasses_dc += ln.cache.bypasses_dc;
      bypasses_tran += ln.cache.bypasses_tran;
    }
    runtime::Metrics& m = runtime::Metrics::global();
    const auto add = [&m](const char* name, std::uint64_t v) {
      if (v != 0) m.add(name, static_cast<double>(v));
    };
    add("spice.device.evals", evals);
    add("spice.device.bypasses", bypasses);
    add("spice.device.evals.dc", evals_dc);
    add("spice.device.evals.tran", evals_tran);
    add("spice.device.bypasses.dc", bypasses_dc);
    add("spice.device.bypasses.tran", bypasses_tran);
    add("spice.device.batch.evals", batch_evals_);
    add("spice.device.batch.blocks", batch_blocks_);
    add("spice.device.batch.lanes", batch_lanes_);
    add("spice.lu.batch.refactors", batch_lu_refactors_);
    add("spice.lu.batch.solves", batch_lu_solves_);
    add("spice.corner.lanes", lanes_.size());
  }

  const TransientOptions& opts_;
  CornerTransientResult& out_;
  std::size_t n_ = 0;
  std::size_t num_v_ = 0;
  AssemblyPlan plan_;
  bsimsoi::DeviceBatch batch_;
  std::vector<Lane> lanes_;
  std::uint64_t batch_evals_ = 0, batch_blocks_ = 0, batch_lanes_ = 0;

  // Lane-packed LU shared by every lane (see batch_factor_and_solve).
  linalg::SparseLU ref_lu_;
  linalg::BatchSparseLU batch_lu_;
  std::vector<double> soa_values_, soa_rhs_;
  std::vector<unsigned char> lane_ok_;
  bool batch_numeric_ok_ = false;
  bool simd_lu_ = false;
  std::uint64_t batch_lu_refactors_ = 0, batch_lu_solves_ = 0;

  // Lane-packed assembly (see packed_assemble).  kMaxStride bounds the
  // stack temporaries of the stamp loops; wider corner sets fall back to
  // the per-lane scalar assembler.
  static constexpr std::size_t kMaxStride = 32;
  bool packed_ok_ = false;
  std::size_t stride_ = 0;
  std::size_t charge_slots_ = 0;
  std::vector<std::size_t> lane_src_;  // SoA lane -> source lane (pads -> 0)
  // Per-SoA-lane DynamicState capture targets of the current
  // packed_assemble call (rechecks only); null entries skip capture.
  std::vector<DynamicState*> capture_;
  bool capturing_ = false;
  std::vector<double> x_soa_, f_soa_;
  std::vector<double> prevq_soa_, prev2q_soa_, previq_soa_;
  std::vector<double> r_ginv_soa_, c_val_soa_;  // per-corner element values
  std::vector<double> vsrc_soa_, isrc_soa_;     // source values at step time
};

bool CornerEngine::run() {
  trace::Span span("spice.corner_transient", "spice");
  span.annotate("lanes", static_cast<double>(lanes_.size()));
  runtime::Metrics::global().add("spice.corner.transients");

  // Solvability is structural, and the lanes share a topology: gate once.
  if (opts_.newton.presolve_lint) {
    lint::DiagnosticSink sink;
    if (lint::check_solvable(*lanes_[0].circuit, sink) > 0) return false;
  }
  if (!solve_dc()) return false;

  const double t_stop = opts_.t_stop;
  const double h_max = opts_.h_max > 0.0 ? opts_.h_max : t_stop / 50.0;
  const std::size_t k = lanes_.size();

  for (std::size_t li = 0; li < k; ++li) {
    Lane& ln = lanes_[li];
    evaluate_charges(*ln.circuit, ln.x, ln.state);
    ln.state.iq.assign(ln.state.q.size(), 0.0);
    ln.state_prev = ln.state;

    TransientResult& res = out_.lanes[li];
    ln.rec.clear();
    for (NodeId node = 1; node < ln.circuit->num_nodes(); ++node) {
      ln.rec.push_back({ln.circuit->node_unknown(node),
                        &res.node_voltage[ln.circuit->node_name(node)]});
    }
    for (const Element& e : ln.circuit->elements()) {
      if (e.kind == ElementKind::kVoltageSource)
        ln.rec.push_back(
            {ln.circuit->branch_unknown(e), &res.branch_current[e.name]});
    }
    for (const RecordSlot& slot : ln.rec) slot.wave->append(0.0, ln.x[slot.unknown]);
  }

  // Union of the per-lane source breakpoints: every lane lands exactly on
  // its own corners (and, harmlessly, on the other lanes').
  std::vector<double> breakpoints;
  for (const Lane& ln : lanes_) {
    const std::vector<double> bp = transient_breakpoints(*ln.circuit, t_stop);
    breakpoints.insert(breakpoints.end(), bp.begin(), bp.end());
  }
  // Coalesce with the relative tolerance: per-lane `delay + k * period`
  // sums differ by a few ULP across lanes at large t, and a surviving
  // near-duplicate would force a sub-h_min landing step (scalar-path
  // fallback, lockstep lost) instead of a shared landing.
  coalesce_breakpoints(breakpoints);
  std::size_t next_bp = 0;

  double t = 0.0;
  double h = std::min(h_max, t_stop) / 100.0;
  double h_prev = 0.0;
  bool first_step = true;
  std::size_t accepted = 0, rejected = 0;

  AssemblyContext ctx;
  ctx.gmin = 1e-12;

  std::vector<Target> ts(k), ts_half(k), ts_two(k);

  while (t < t_stop - breakpoint_tol(t_stop)) {
    if (accepted + rejected > opts_.max_steps) {
      MIVTX_WARN << "corner_transient: step budget exhausted at t=" << t
                 << "; falling back to the scalar path";
      return false;
    }
    while (next_bp < breakpoints.size() &&
           breakpoints[next_bp] <= t + breakpoint_tol(t))
      ++next_bp;
    double h_eff = std::min(h, h_max);
    bool hit_bp = false;
    if (next_bp < breakpoints.size() &&
        t + h_eff >= breakpoints[next_bp] - breakpoint_tol(t)) {
      h_eff = breakpoints[next_bp] - t;
      hit_bp = true;
    }
    if (h_eff < opts_.h_min) {
      MIVTX_WARN << "corner_transient: time step underflow at t=" << t
                 << "; falling back to the scalar path";
      return false;
    }

    for (std::size_t li = 0; li < k; ++li) {
      Lane& ln = lanes_[li];
      ln.x_pred = ln.x;
      if (!first_step && h_prev > 0.0) {
        for (std::size_t i = 0; i < n_; ++i)
          ln.x_pred[i] = ln.x[i] + (ln.x[i] - ln.x_prev[i]) * (h_eff / h_prev);
      }
      ln.x_new = ln.x_pred;
      ts[li] = Target{};
      ts[li].lane = &ln;
      ts[li].x = &ln.x_new;
      ts[li].prev = &ln.state;
      ts[li].prev2 = &ln.state_prev;
      ts[li].final_state = &ln.new_state;
    }

    ctx.time = t + h_eff;
    ctx.h = h_eff;
    ctx.step_ratio = h_prev > 0.0 ? h_eff / h_prev : 1.0;
    ctx.integrator =
        first_step ? Integrator::kBackwardEuler : Integrator::kBdf2;

    const bool converged = group_newton(ts, ctx);
    for (std::size_t li = 0; li < k; ++li)
      out_.lanes[li].newton_iterations +=
          static_cast<std::size_t>(ts[li].iterations);
    if (!converged) {
      rejected += 1;
      h = h_eff * 0.25;
      continue;
    }

    // Shared LTE controller: worst ratio over every lane's voltage
    // unknowns, so each lane's local error stays inside the same
    // tolerances a standalone run enforces.
    double err_ratio = 0.0;
    bool have_lte = false;
    if (!first_step && h_prev > 0.0) {
      have_lte = true;
      for (const Lane& ln : lanes_) {
        for (std::size_t i = 0; i < num_v_; ++i) {
          const double lte = std::fabs(ln.x_new[i] - ln.x_pred[i]) / 3.0;
          const double tol =
              opts_.abstol_v + opts_.reltol * std::fabs(ln.x_new[i]);
          err_ratio = std::max(err_ratio, lte / tol);
        }
      }
    } else {
      // Startup step-doubling, lockstepped: both h/2 backward-Euler
      // sub-steps fan across the lanes exactly like the main corrector.
      ctx.h = 0.5 * h_eff;
      ctx.time = t + 0.5 * h_eff;
      for (std::size_t li = 0; li < k; ++li) {
        Lane& ln = lanes_[li];
        for (std::size_t i = 0; i < n_; ++i)
          ln.x_half[i] = 0.5 * (ln.x[i] + ln.x_new[i]);
        ts_half[li] = Target{};
        ts_half[li].lane = &ln;
        ts_half[li].x = &ln.x_half;
        ts_half[li].prev = &ln.state;
        ts_half[li].prev2 = &ln.state_prev;
        ts_half[li].final_state = &ln.state_half;
      }
      const bool r1 = group_newton(ts_half, ctx);
      for (std::size_t li = 0; li < k; ++li)
        out_.lanes[li].newton_iterations +=
            static_cast<std::size_t>(ts_half[li].iterations);
      if (r1) {
        ctx.time = t + h_eff;
        for (std::size_t li = 0; li < k; ++li) {
          Lane& ln = lanes_[li];
          ln.x_two = ln.x_new;
          ts_two[li] = Target{};
          ts_two[li].lane = &ln;
          ts_two[li].x = &ln.x_two;
          ts_two[li].prev = &ln.state_half;
          ts_two[li].prev2 = &ln.state_prev;
        }
        const bool r2 = group_newton(ts_two, ctx);
        for (std::size_t li = 0; li < k; ++li)
          out_.lanes[li].newton_iterations +=
              static_cast<std::size_t>(ts_two[li].iterations);
        if (r2) {
          have_lte = true;
          for (const Lane& ln : lanes_) {
            for (std::size_t i = 0; i < num_v_; ++i) {
              const double lte = 2.0 * std::fabs(ln.x_new[i] - ln.x_two[i]);
              const double tol =
                  opts_.abstol_v + opts_.reltol * std::fabs(ln.x_new[i]);
              err_ratio = std::max(err_ratio, lte / tol);
            }
          }
        }
      }
      ctx.h = h_eff;
      ctx.time = t + h_eff;
    }
    if (err_ratio > 4.0 && h_eff > 4.0 * opts_.h_min) {
      rejected += 1;
      h = h_eff * 0.5;
      continue;
    }

    // Accept the step on every lane.
    for (std::size_t li = 0; li < k; ++li) {
      Lane& ln = lanes_[li];
      std::swap(ln.x_prev, ln.x);
      std::swap(ln.x, ln.x_new);
      std::swap(ln.state_prev, ln.state);
      std::swap(ln.state, ln.new_state);
      for (const RecordSlot& slot : ln.rec)
        slot.wave->append(t + h_eff, ln.x[slot.unknown]);
    }
    h_prev = h_eff;
    t += h_eff;
    accepted += 1;
    first_step = false;

    double grow = 2.0;
    if (err_ratio > 1e-12) grow = std::clamp(0.9 / std::cbrt(err_ratio), 0.3, 2.0);
    if (!have_lte) grow = 1.0;
    h = h_eff * grow;
    if (hit_bp) {
      h = std::min(h, h_max / 100.0);
      first_step = true;
    }
  }

  for (TransientResult& res : out_.lanes) {
    res.ok = true;
    res.accepted_steps = accepted;
    res.rejected_steps = rejected;
  }
  out_.ok = true;
  return true;
}

void run_scalar(const std::vector<const Circuit*>& corners,
                const TransientOptions& opts, CornerTransientResult& out) {
  out.lockstep = false;
  out.ok = true;
  out.lanes.clear();
  out.lanes.reserve(corners.size());
  for (const Circuit* c : corners) {
    out.lanes.push_back(transient(*c, opts));
    if (!out.lanes.back().ok && out.error.empty()) {
      out.ok = false;
      out.error = out.lanes.back().error;
    }
    if (!out.lanes.back().ok) out.ok = false;
  }
}

}  // namespace

CornerTransientResult corner_transient(
    const std::vector<const Circuit*>& corners, const TransientOptions& opts) {
  CornerTransientResult out;
  MIVTX_EXPECT(!corners.empty(), "corner_transient: no corner circuits");
  for (const Circuit* c : corners)
    MIVTX_EXPECT(c != nullptr, "corner_transient: null corner circuit");

  // Lane packing needs >= 2 compatible lanes, at least one MOSFET (the
  // kernel is what the lanes share), and a batched device-eval strategy.
  bool packable = corners.size() >= 2;
  for (std::size_t i = 1; packable && i < corners.size(); ++i)
    packable = same_topology(*corners[0], *corners[i]);
  bool any_mosfet = false;
  for (const Element& e : corners[0]->elements())
    if (e.kind == ElementKind::kMosfet) any_mosfet = true;
  packable = packable && any_mosfet;

  bsimsoi::SimdLevel level = bsimsoi::best_simd_level();
  switch (opts.newton.device_eval) {
    case DeviceEval::kScalar:
      packable = false;
      break;
    case DeviceEval::kPortable:
      level = bsimsoi::SimdLevel::kScalarLane;
      break;
    case DeviceEval::kSimd:
      break;
    case DeviceEval::kAuto:
      if (bsimsoi::simd_env_disabled()) packable = false;
      break;
  }

  if (packable) {
    CornerEngine engine(corners, opts, level, out);
    if (engine.run()) {
      out.lockstep = true;
      return out;
    }
    out = CornerTransientResult{};
  }
  run_scalar(corners, opts, out);
  return out;
}

}  // namespace mivtx::spice
