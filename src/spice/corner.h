// Cross-corner lane packing: one transient over K same-topology corner
// circuits, lockstepped so the batched BSIMSOI kernel evaluates one corner
// per SIMD lane.
//
// The K circuits must share a topology (identical element list shapes and
// node wiring — only values, model cards and source levels may differ).
// They then share one AssemblyPlan and one bsimsoi::DeviceBatch bound
// device-major / corner-minor (instance = device * K + lane), so the K
// corner variants of each MOSFET sit in adjacent SIMD lanes of one kernel
// block.  Newton iterations and time steps run in lockstep: every
// iteration stages the fresh devices of every unconverged lane through its
// per-lane bypass cache, fires ONE batched kernel pass, then each lane
// stamps, factors and damps its own system independently.  The step
// controller takes the union of source breakpoints and the worst LTE
// ratio across lanes, so all lanes share one accepted time grid; each
// lane's waveforms satisfy the same LTE tolerances as a standalone run,
// on a (conservatively finer) shared set of time points.
//
// Fallbacks keep the engine strictly a performance feature: incompatible
// topologies, a single lane, or an irrecoverable lockstep failure re-run
// every lane through the scalar spice::transient() path, and a lane whose
// t=0 lockstep Newton fails falls back to the scalar gmin/source
// continuation ladder for its operating point only.
#pragma once

#include <string>
#include <vector>

#include "spice/transient.h"

namespace mivtx::spice {

struct CornerTransientResult {
  bool ok = false;        // every lane simulated successfully
  std::string error;      // first failure when !ok
  bool lockstep = false;  // ran lane-packed (false => scalar fallback path)
  std::vector<TransientResult> lanes;  // one per input circuit, same order
};

// Transient-analyze every circuit in `corners` (all pointers non-null)
// over one lane-packed time loop.  Waveform/timing semantics per lane
// match spice::transient() under the same TransientOptions.
CornerTransientResult corner_transient(
    const std::vector<const Circuit*>& corners, const TransientOptions& opts);

}  // namespace mivtx::spice
