#include "spice/dcop.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/error.h"
#include "common/log.h"
#include "linalg/vector_ops.h"
#include "lint/presolve.h"
#include "spice/solver_workspace.h"

namespace mivtx::spice {

NewtonResult solve_newton(const Circuit& circuit, const AssemblyContext& ctx,
                          linalg::Vector& x, const NewtonOptions& opts,
                          SolverWorkspace& ws, DynamicState* final_state) {
  const std::size_t n = circuit.system_size();
  MIVTX_EXPECT(x.size() == n, "newton: bad initial guess size");
  MIVTX_EXPECT(ws.size() == n, "newton: workspace built for another circuit");
  const std::size_t num_v = circuit.num_nodes() - 1;

  NewtonResult result;
#ifndef NDEBUG
  std::uint64_t steady_allocs = 0;
#endif

  for (int it = 0; it < opts.max_iterations; ++it) {
    ws.assemble(x, ctx);
    result.residual_norm = linalg::norm_inf(ws.f());

    // Solve J dx = -f in place in the workspace rhs buffer: the steady
    // state of this loop performs no heap allocations.
    linalg::Vector& dx = ws.rhs();
    const linalg::Vector& f = ws.f();
    for (std::size_t i = 0; i < n; ++i) dx[i] = -f[i];
    if (!ws.factor_and_solve(dx)) {
      return result;  // singular Jacobian: report non-convergence
    }

    // Damp: clamp voltage updates so the exponential model regions can't
    // catapult the iterate.
    double max_dv = 0.0;
    for (std::size_t i = 0; i < num_v; ++i)
      max_dv = std::max(max_dv, std::fabs(dx[i]));
    double damp = 1.0;
    if (max_dv > opts.max_dv) damp = opts.max_dv / max_dv;
    for (std::size_t i = 0; i < n; ++i) x[i] += damp * dx[i];

    result.iterations = it + 1;
    ws.stats().newton_iterations += 1;

#ifndef NDEBUG
    // Buffers reach steady-state size on the first iteration; any growth
    // after that is a regression in the allocation-free inner loop.
    if (it == 0) {
      steady_allocs = ws.stats().workspace_allocations;
    } else {
      assert(ws.stats().workspace_allocations == steady_allocs &&
             "newton inner loop allocated after the first iteration");
    }
#endif

    bool converged = damp == 1.0;
    if (converged) {
      for (std::size_t i = 0; i < n && converged; ++i) {
        const double tol =
            (i < num_v ? opts.vtol : opts.itol) + opts.reltol * std::fabs(x[i]);
        if (std::fabs(dx[i]) > tol) converged = false;
      }
    }
    if (converged) {
      // Re-check the residual at the accepted point.  This assembly
      // repeats the exact final iterate, so the device-bypass cache serves
      // every MOSFET and the factorization is reused untouched.  It also
      // captures the dynamic state for the caller when requested.
      ws.assemble(x, ctx, final_state);
      result.residual_norm = linalg::norm_inf(ws.f());
      if (result.residual_norm < opts.residual_tol) {
        result.converged = true;
        return result;
      }
    }
  }
  return result;
}

NewtonResult solve_newton(const Circuit& circuit, const AssemblyContext& ctx,
                          linalg::Vector& x, const NewtonOptions& opts) {
  SolverWorkspace ws(circuit, opts);
  return solve_newton(circuit, ctx, x, opts, ws);
}

DcResult dc_operating_point(const Circuit& circuit, const NewtonOptions& opts,
                            SolverWorkspace& ws) {
  trace::Span span("spice.dcop", "spice");
  StatsToSpan stats_guard(span, ws);
  const std::size_t n = circuit.system_size();
  DcResult out;
  out.x.assign(n, 0.0);

  // Structural singularities (capacitor-only cuts, V-source loops, ...)
  // make the Newton ladder fail slowly and confusingly; reject them with a
  // diagnostic before assembling anything.  Opt out via opts.presolve_lint.
  if (opts.presolve_lint) {
    lint::DiagnosticSink sink;
    if (lint::check_solvable(circuit, sink) > 0) {
      out.strategy = "lint";
      out.lint = sink.diagnostics();
      MIVTX_WARN << "dc_operating_point rejected by pre-solve lint:\n"
                 << sink.render_text();
      return out;
    }
  }

  AssemblyContext ctx;
  ctx.time = 0.0;
  ctx.integrator = Integrator::kNone;

  // Plain Newton from a zero start.
  {
    linalg::Vector x(n, 0.0);
    ctx.gmin = 1e-12;
    const NewtonResult r = solve_newton(circuit, ctx, x, opts, ws);
    out.total_iterations += r.iterations;
    if (r.converged) {
      out.converged = true;
      out.strategy = "newton";
      out.x = std::move(x);
      return out;
    }
  }

  // Gmin stepping: converge with a large parallel conductance, then ratchet
  // it down, re-using each solution as the next seed.  The workspace (plan,
  // symbolic LU, device cache) is shared across every stage.
  //
  // The drop per stage adapts: 100x while stages keep converging (the
  // original fixed schedule, so well-behaved circuits walk the identical
  // path), and when a stage diverges the march retreats to the last
  // converged gmin and retries with a geometrically smaller drop.  Deep
  // logic chains (e.g. the generated ripple-carry arrays) need the finer
  // schedule only around one transition decade, so the extra stages cost a
  // handful of Newton iterations.
  {
    linalg::Vector x(n, 0.0);
    bool ok = true;
    double gmin_good = 0.0;  // last converged stage (0 = none yet)
    double drop = 1e-2;
    double gmin = 1e-3;
    linalg::Vector good;
    int stages = 0;
    while (gmin >= 0.9e-12) {
      if (++stages > 64) {
        ok = false;
        break;
      }
      ctx.gmin = gmin;
      linalg::Vector trial = gmin_good > 0.0 ? good : x;
      const NewtonResult r = solve_newton(circuit, ctx, trial, opts, ws);
      out.total_iterations += r.iterations;
      if (r.converged) {
        good = std::move(trial);
        gmin_good = gmin;
        gmin *= drop;
        continue;
      }
      if (gmin_good <= 0.0) {
        ok = false;  // even the easiest stage failed; no seed to refine from
        break;
      }
      drop = std::sqrt(drop);
      if (drop > 0.5) {  // sub-2x stages and still diverging: give up
        ok = false;
        break;
      }
      gmin = gmin_good * drop;
    }
    if (ok && gmin_good > 0.0) x = std::move(good);
    if (ok) {
      ctx.gmin = 1e-12;
      const NewtonResult r = solve_newton(circuit, ctx, x, opts, ws);
      out.total_iterations += r.iterations;
      if (r.converged) {
        out.converged = true;
        out.strategy = "gmin";
        out.x = std::move(x);
        return out;
      }
    }
  }

  // Source stepping: ramp all independent sources from zero.
  {
    linalg::Vector x(n, 0.0);
    ctx.gmin = 1e-12;
    ctx.source_scale = 1.0;
    bool ok = true;
    for (double scale = 0.05; scale <= 1.0 + 1e-12; scale += 0.05) {
      ctx.source_scale = std::min(scale, 1.0);
      const NewtonResult r = solve_newton(circuit, ctx, x, opts, ws);
      out.total_iterations += r.iterations;
      if (!r.converged) {
        ok = false;
        break;
      }
    }
    if (ok) {
      out.converged = true;
      out.strategy = "source";
      out.x = std::move(x);
      return out;
    }
  }

  MIVTX_WARN << "dc_operating_point failed to converge ("
             << out.total_iterations << " total Newton iterations)";
  return out;
}

DcResult dc_operating_point(const Circuit& circuit,
                            const NewtonOptions& opts) {
  SolverWorkspace ws(circuit, opts);
  return dc_operating_point(circuit, opts, ws);
}

double solution_voltage(const Circuit& circuit, const linalg::Vector& x,
                        NodeId node) {
  if (node == kGround) return 0.0;
  return x[circuit.node_unknown(node)];
}

double solution_current(const Circuit& circuit, const linalg::Vector& x,
                        const std::string& vsource_name) {
  const Element& e = circuit.element(vsource_name);
  return x[circuit.branch_unknown(e)];
}

DcSweepResult dc_sweep(Circuit circuit, const std::string& source_name,
                       const std::vector<double>& values,
                       const NewtonOptions& opts) {
  DcSweepResult out;
  Element& src = circuit.element(source_name);
  MIVTX_EXPECT(src.kind == ElementKind::kVoltageSource,
               "dc_sweep target must be a voltage source");

  // Gate once up front; the per-point operating points skip the re-check
  // (the circuit topology does not change across sweep values).
  NewtonOptions point_opts = opts;
  point_opts.presolve_lint = false;
  if (opts.presolve_lint) {
    lint::DiagnosticSink sink;
    if (lint::check_solvable(circuit, sink) > 0) {
      out.lint = sink.diagnostics();
      MIVTX_WARN << "dc_sweep rejected by pre-solve lint:\n"
                 << sink.render_text();
      return out;
    }
  }

  // One workspace for the whole sweep: changing a source's DC value moves
  // only the residual, so a linear circuit factors exactly once for all
  // sweep points, and nonlinear ones reuse the symbolic analysis and pivot
  // schedule throughout.
  trace::Span span("spice.dc_sweep", "spice");
  SolverWorkspace ws(circuit, point_opts);
  StatsToSpan stats_guard(span, ws);

  linalg::Vector x;
  bool have_seed = false;
  AssemblyContext ctx;
  for (double v : values) {
    src.source = SourceSpec::DC(v);
    bool converged = false;
    if (have_seed) {
      linalg::Vector xs = x;
      const NewtonResult r = solve_newton(circuit, ctx, xs, point_opts, ws);
      if (r.converged) {
        x = std::move(xs);
        converged = true;
      }
    }
    if (!converged) {
      const DcResult r = dc_operating_point(circuit, point_opts, ws);
      if (!r.converged) {
        out.converged = false;
        return out;
      }
      x = r.x;
      converged = true;
    }
    have_seed = true;
    out.sweep_values.push_back(v);
    out.solutions.push_back(x);
  }
  out.converged = true;
  return out;
}

}  // namespace mivtx::spice
