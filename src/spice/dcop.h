// DC operating point and DC sweep.
//
// The Newton loop uses voltage-step damping; when plain Newton fails the
// driver falls back to gmin stepping and then source stepping, the same
// continuation ladder production SPICE engines use.
#pragma once

#include <string>
#include <vector>

#include "linalg/dense.h"
#include "lint/diagnostics.h"
#include "spice/circuit.h"
#include "spice/mna.h"

namespace mivtx::spice {

class SolverWorkspace;

// Linear-solver core selection.  kAuto picks sparse at or above
// sparse_min_unknowns and dense below it; the sparse path additionally
// falls back to dense on pivot failure (see SolverWorkspace).
enum class SolverBackend { kAuto, kDense, kSparse };

// MOSFET evaluation strategy (sparse backend; the dense small-circuit
// path always evaluates per device).
//   kAuto     — batched SoA evaluation at the best compiled-in SIMD level
//               the CPU supports; $MIVTX_SIMD=off/scalar drops it back to
//               the per-device scalar path (the production default).
//   kScalar   — legacy per-device bsimsoi::eval calls; the bit-exact
//               reference the differential harness compares against.
//   kPortable — batched through the scalar-lane kernel build (bit-faithful
//               to kScalar math, exercises the SoA/staging machinery).
//   kSimd     — batched at the best available level regardless of
//               $MIVTX_SIMD (verify/bench pin configurations with this).
enum class DeviceEval { kAuto, kScalar, kPortable, kSimd };

struct NewtonOptions {
  int max_iterations = 150;
  double vtol = 1e-9;        // absolute voltage tolerance (V)
  double reltol = 1e-6;      // relative tolerance on unknowns
  double itol = 1e-12;       // absolute branch-current tolerance (A)
  double max_dv = 0.5;       // per-iteration voltage damping clamp (V)
  double residual_tol = 1e-6;  // KCL residual infinity-norm bound (A)
  // Run lint::check_solvable before assembling the MNA system and fail
  // fast (strategy "lint", diagnostics in DcResult::lint) on structural
  // singularities instead of grinding through the continuation ladder.
  bool presolve_lint = true;
  // Sparse-first solver core (see solver_workspace.h).
  SolverBackend backend = SolverBackend::kAuto;
  std::size_t sparse_min_unknowns = 8;  // kAuto: dense below this size
  // MOSFET bypass tolerance (V): skip BSIMSOI re-evaluation when no
  // controlling terminal moved more than this since the last fresh stamp.
  // Negative disables the bypass cache (sparse backend only).
  double bypass_vtol = 1e-9;
  // Device evaluation strategy (see DeviceEval above).
  DeviceEval device_eval = DeviceEval::kAuto;
  // Factorization-ladder control (sparse backend): when false, every
  // linear solve runs a full pivoting factorization — the bit-identical
  // reuse and pivot-replay refactorize rungs are skipped.  Production
  // flows leave this on; mivtx::verify's differential engine turns it off
  // to cross-check the ladder rungs against the from-scratch path.
  bool reuse_factorization = true;
};

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  double residual_norm = 0.0;
};

// One Newton solve at fixed context; x is the initial guess and receives
// the solution (best iterate on failure).
NewtonResult solve_newton(const Circuit& circuit, const AssemblyContext& ctx,
                          linalg::Vector& x, const NewtonOptions& opts = {});
// Workspace-threaded variant: the hot path for gmin/source ladders,
// sweeps, and transient stepping.  All buffers, the assembly plan, the LU
// symbolic analysis, and the device-bypass cache live in `ws` and are
// reused across calls; the steady-state inner loop performs no heap
// allocations.  When `final_state` is non-null it receives the dynamic
// state (charges/companion currents) of the converged point, computed for
// free during the convergence-recheck assembly — callers that accept a
// timestep need no extra assembly of their own.
NewtonResult solve_newton(const Circuit& circuit, const AssemblyContext& ctx,
                          linalg::Vector& x, const NewtonOptions& opts,
                          SolverWorkspace& ws,
                          DynamicState* final_state = nullptr);

struct DcResult {
  bool converged = false;
  linalg::Vector x;          // solution (node voltages + branch currents)
  int total_iterations = 0;
  std::string strategy;      // "newton", "gmin", "source", or "lint"
  // Pre-solve findings when strategy == "lint" (converged stays false).
  std::vector<lint::Diagnostic> lint;
};

DcResult dc_operating_point(const Circuit& circuit,
                            const NewtonOptions& opts = {});
// Workspace-threaded variant (shares plan/LU/caches with the caller's
// other solves on the same circuit, e.g. the t=0 point of a transient).
DcResult dc_operating_point(const Circuit& circuit, const NewtonOptions& opts,
                            SolverWorkspace& ws);

// Voltage at a node from a DC solution.
double solution_voltage(const Circuit& circuit, const linalg::Vector& x,
                        NodeId node);
// Branch current of a voltage source from a DC solution.
double solution_current(const Circuit& circuit, const linalg::Vector& x,
                        const std::string& vsource_name);

struct DcSweepResult {
  bool converged = false;
  std::vector<double> sweep_values;
  std::vector<linalg::Vector> solutions;  // one per converged sweep value
  // Pre-solve findings when the sweep was rejected by the lint gate.
  std::vector<lint::Diagnostic> lint;
};

// Sweep the DC value of voltage source `source_name` over `values`,
// using each solution to seed the next.
DcSweepResult dc_sweep(Circuit circuit, const std::string& source_name,
                       const std::vector<double>& values,
                       const NewtonOptions& opts = {});

}  // namespace mivtx::spice
