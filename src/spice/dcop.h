// DC operating point and DC sweep.
//
// The Newton loop uses voltage-step damping; when plain Newton fails the
// driver falls back to gmin stepping and then source stepping, the same
// continuation ladder production SPICE engines use.
#pragma once

#include <string>
#include <vector>

#include "linalg/dense.h"
#include "lint/diagnostics.h"
#include "spice/circuit.h"
#include "spice/mna.h"

namespace mivtx::spice {

class SolverWorkspace;

// Linear-solver core selection.  kAuto picks sparse at or above
// sparse_min_unknowns and dense below it; the sparse path additionally
// falls back to dense on pivot failure (see SolverWorkspace).
enum class SolverBackend { kAuto, kDense, kSparse };

// Linear-solve method within the sparse backend (see solver_workspace.h).
//   kAuto     — direct sparse LU below the iterative crossover, Krylov at
//               or above it: n >= iterative_min_unknowns skips the LU
//               symbolic analysis outright; in the band
//               [iterative_fill_min_unknowns, iterative_min_unknowns) the
//               analysis runs and its predicted factor fill-in decides
//               (iterative when predicted_nnz >= iterative_fill_ratio *
//               nnz(A)).  Method choice: CG when the assembled values are
//               symmetric (e.g. a resistive power grid), BiCGStab for
//               general MNA Jacobians.
//   kDirect   — always the direct LU ladder.
//   kCg / kBicgstab — pin the Krylov method regardless of size (testing /
//               differential configs).  Breakdown, stagnation or an
//               iteration-budget miss on any iterative solve falls back to
//               the direct ladder with a typed SolverStats reason.
enum class LinearSolver { kAuto, kDirect, kCg, kBicgstab };
const char* linear_solver_name(LinearSolver s);

// MOSFET evaluation strategy (sparse backend; the dense small-circuit
// path always evaluates per device).
//   kAuto     — batched SoA evaluation at the best compiled-in SIMD level
//               the CPU supports; $MIVTX_SIMD=off/scalar drops it back to
//               the per-device scalar path (the production default).
//   kScalar   — legacy per-device bsimsoi::eval calls; the bit-exact
//               reference the differential harness compares against.
//   kPortable — batched through the scalar-lane kernel build (bit-faithful
//               to kScalar math, exercises the SoA/staging machinery).
//   kSimd     — batched at the best available level regardless of
//               $MIVTX_SIMD (verify/bench pin configurations with this).
enum class DeviceEval { kAuto, kScalar, kPortable, kSimd };

struct NewtonOptions {
  int max_iterations = 150;
  double vtol = 1e-9;        // absolute voltage tolerance (V)
  double reltol = 1e-6;      // relative tolerance on unknowns
  double itol = 1e-12;       // absolute branch-current tolerance (A)
  double max_dv = 0.5;       // per-iteration voltage damping clamp (V)
  double residual_tol = 1e-6;  // KCL residual infinity-norm bound (A)
  // Run lint::check_solvable before assembling the MNA system and fail
  // fast (strategy "lint", diagnostics in DcResult::lint) on structural
  // singularities instead of grinding through the continuation ladder.
  bool presolve_lint = true;
  // Sparse-first solver core (see solver_workspace.h).
  SolverBackend backend = SolverBackend::kAuto;
  std::size_t sparse_min_unknowns = 8;  // kAuto: dense below this size
  // MOSFET bypass tolerance (V): skip BSIMSOI re-evaluation when no
  // controlling terminal moved more than this since the last fresh stamp.
  // Negative disables the bypass cache (sparse backend only).
  double bypass_vtol = 1e-9;
  // Device evaluation strategy (see DeviceEval above).
  DeviceEval device_eval = DeviceEval::kAuto;
  // Factorization-ladder control (sparse backend): when false, every
  // linear solve runs a full pivoting factorization — the bit-identical
  // reuse and pivot-replay refactorize rungs are skipped.  Production
  // flows leave this on; mivtx::verify's differential engine turns it off
  // to cross-check the ladder rungs against the from-scratch path.
  bool reuse_factorization = true;
  // Iterative (Krylov) tier within the sparse backend; see LinearSolver.
  LinearSolver linear_solver = LinearSolver::kAuto;
  // kAuto crossover: iterative at or above this many unknowns without
  // even running the LU symbolic analysis (ordering a 100k-unknown mesh
  // is itself more work than a preconditioned solve)...
  std::size_t iterative_min_unknowns = 8192;
  // ...and below it, iterative when the symbolic analysis predicts factor
  // fill-in at least this multiple of nnz(A), checked only at or above
  // iterative_fill_min_unknowns (small systems always go direct).
  double iterative_fill_ratio = 16.0;
  std::size_t iterative_fill_min_unknowns = 2048;
  // Krylov convergence target, relative to ||rhs||_2, and the iteration
  // budget per linear solve (<= 0 picks the krylov.h default).
  double iterative_rtol = 1e-10;
  int iterative_max_iterations = 500;
};

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  double residual_norm = 0.0;
};

// One Newton solve at fixed context; x is the initial guess and receives
// the solution (best iterate on failure).
NewtonResult solve_newton(const Circuit& circuit, const AssemblyContext& ctx,
                          linalg::Vector& x, const NewtonOptions& opts = {});
// Workspace-threaded variant: the hot path for gmin/source ladders,
// sweeps, and transient stepping.  All buffers, the assembly plan, the LU
// symbolic analysis, and the device-bypass cache live in `ws` and are
// reused across calls; the steady-state inner loop performs no heap
// allocations.  When `final_state` is non-null it receives the dynamic
// state (charges/companion currents) of the converged point, computed for
// free during the convergence-recheck assembly — callers that accept a
// timestep need no extra assembly of their own.
NewtonResult solve_newton(const Circuit& circuit, const AssemblyContext& ctx,
                          linalg::Vector& x, const NewtonOptions& opts,
                          SolverWorkspace& ws,
                          DynamicState* final_state = nullptr);

struct DcResult {
  bool converged = false;
  linalg::Vector x;          // solution (node voltages + branch currents)
  int total_iterations = 0;
  std::string strategy;      // "newton", "gmin", "source", or "lint"
  // Pre-solve findings when strategy == "lint" (converged stays false).
  std::vector<lint::Diagnostic> lint;
};

DcResult dc_operating_point(const Circuit& circuit,
                            const NewtonOptions& opts = {});
// Workspace-threaded variant (shares plan/LU/caches with the caller's
// other solves on the same circuit, e.g. the t=0 point of a transient).
DcResult dc_operating_point(const Circuit& circuit, const NewtonOptions& opts,
                            SolverWorkspace& ws);

// Voltage at a node from a DC solution.
double solution_voltage(const Circuit& circuit, const linalg::Vector& x,
                        NodeId node);
// Branch current of a voltage source from a DC solution.
double solution_current(const Circuit& circuit, const linalg::Vector& x,
                        const std::string& vsource_name);

struct DcSweepResult {
  bool converged = false;
  std::vector<double> sweep_values;
  std::vector<linalg::Vector> solutions;  // one per converged sweep value
  // Pre-solve findings when the sweep was rejected by the lint gate.
  std::vector<lint::Diagnostic> lint;
};

// Sweep the DC value of voltage source `source_name` over `values`,
// using each solution to seed the next.
DcSweepResult dc_sweep(Circuit circuit, const std::string& source_name,
                       const std::vector<double>& values,
                       const NewtonOptions& opts = {});

}  // namespace mivtx::spice
