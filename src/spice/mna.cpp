#include "spice/mna.h"

#include <cmath>

#include "bsimsoi/batch.h"
#include "bsimsoi/model.h"
#include "common/error.h"
#include "spice/assembly_plan.h"

namespace mivtx::spice {

namespace {

// Voltage of a node given the unknown vector.
double node_v(const linalg::Vector& x, NodeId n) {
  return n == kGround ? 0.0 : x[n - 1];
}

// Companion-model coefficients: i = geq*q - ihist, where geq also scales
// the Jacobian contribution dq/dv.
struct CompanionCoeffs {
  double geq = 0.0;    // multiplies the new charge (and dq/dv)
  double ihist = 0.0;  // history term
};

}  // namespace

// Slot-independent part of the companion model.  The divisions here used
// to run per charge slot per assembly; hoisting them to one evaluation per
// assemble() was a measurable win on the transient profile.
IntegratorCoeffs integrator_coeffs(const AssemblyContext& ctx) {
  IntegratorCoeffs c;
  switch (ctx.integrator) {
    case Integrator::kNone:
      return c;  // DC: charge currents are zero
    case Integrator::kBackwardEuler:
      c.geq = 1.0 / ctx.h;
      c.c_prev = c.geq;
      return c;
    case Integrator::kTrapezoidal:
      // i = (2/h)(q - q_prev) - i_prev
      c.geq = 2.0 / ctx.h;
      c.c_prev = c.geq;
      c.c_iq = 1.0;
      return c;
    case Integrator::kBdf2: {
      // Variable-step BDF2 with r = h_n / h_{n-1}:
      //   i = [ (1+2r)/(1+r) q_{n+1} - (1+r) q_n + r^2/(1+r) q_{n-1} ] / h
      const double r = ctx.step_ratio;
      c.geq = (1.0 + 2.0 * r) / (1.0 + r) / ctx.h;
      c.c_prev = (1.0 + r) / ctx.h;
      c.c_prev2 = -r * r / (1.0 + r) / ctx.h;
      return c;
    }
  }
  return c;
}

std::size_t count_charge_slots(const Circuit& circuit) {
  std::size_t slots = 0;
  for (const Element& e : circuit.elements()) {
    if (e.kind == ElementKind::kCapacitor) slots += 1;
    if (e.kind == ElementKind::kInductor) slots += 1;
    if (e.kind == ElementKind::kMosfet) slots += 3;
  }
  return slots;
}

void MosfetCache::bind(const Circuit& circuit) {
  std::size_t mosfets = 0;
  for (const Element& e : circuit.elements())
    if (e.kind == ElementKind::kMosfet) ++mosfets;
  entries.assign(mosfets, Entry{});
}

void MosfetCache::invalidate() {
  for (Entry& e : entries) e.valid = false;
}

std::size_t MosfetCache::batch_stage(const Circuit& circuit,
                                     const linalg::Vector& x, bool dynamic) {
  MIVTX_EXPECT(batch != nullptr, "batch_stage: no DeviceBatch bound");
  std::size_t fresh = 0;
  std::size_t mi = 0;
  const bool bypass = enabled();
  for (const Element& e : circuit.elements()) {
    if (e.kind != ElementKind::kMosfet) continue;
    const double vg = node_v(x, e.nodes[1]);
    const double vd = node_v(x, e.nodes[0]);
    const double vs = node_v(x, e.nodes[2]);
    if (bypass) {
      Entry& ent = entries[mi];
      if (ent.valid && std::fabs(vg - ent.vg) <= vtol &&
          std::fabs(vd - ent.vd) <= vtol && std::fabs(vs - ent.vs) <= vtol) {
        bypasses += 1;
        (dynamic ? bypasses_tran : bypasses_dc) += 1;
        ++mi;
        continue;
      }
      ent.vg = vg;
      ent.vd = vd;
      ent.vs = vs;
      ent.valid = true;
    }
    batch->stage(mi * batch_stride + batch_offset, vg, vd, vs);
    evals += 1;
    (dynamic ? evals_tran : evals_dc) += 1;
    fresh += 1;
    ++mi;
  }
  return fresh;
}

namespace {

// The stamp loop is shared by three Jacobian sinks: dense accumulation,
// pattern recording (emission order -> CSR slots, see AssemblyPlan), and
// slot-directed CSR writes.  The emission sequence of sink.add() calls
// depends only on the circuit topology and the dynamic flag, never on x
// or on element values — keep it that way or every assembly plan breaks.
template <class Sink>
std::size_t assemble_impl(const Circuit& circuit, const linalg::Vector& x,
                          const AssemblyContext& ctx, Sink& sink,
                          linalg::Vector& f, DynamicState* new_state,
                          MosfetCache* cache) {
  const std::size_t n = circuit.system_size();
  MIVTX_EXPECT(x.size() == n, "assemble: solution size mismatch");
  f.assign(n, 0.0);
  if (new_state) {
    const std::size_t slots = count_charge_slots(circuit);
    new_state->q.assign(slots, 0.0);
    new_state->iq.assign(slots, 0.0);
  }
  const bool dynamic = ctx.integrator != Integrator::kNone;
  if (dynamic) {
    MIVTX_EXPECT(ctx.h > 0.0, "transient assembly needs a positive step");
    MIVTX_EXPECT(ctx.prev != nullptr, "transient assembly needs prev state");
    MIVTX_EXPECT(ctx.integrator != Integrator::kBdf2 || ctx.prev2 != nullptr,
                 "BDF2 assembly needs prev2 state");
  }
  std::size_t fresh_evals = 0;
  std::size_t mosfet_index = 0;

  // Per-assembly companion coefficients; the per-slot part is two mults
  // and two adds (prev2_q aliases prev_q with weight zero outside BDF2).
  const IntegratorCoeffs ic = integrator_coeffs(ctx);
  const double* prev_q = dynamic ? ctx.prev->q.data() : nullptr;
  const double* prev_iq = dynamic ? ctx.prev->iq.data() : nullptr;
  const double* prev2_q = (dynamic && ctx.prev2) ? ctx.prev2->q.data() : prev_q;
  auto companion_at = [&](std::size_t sl) {
    return CompanionCoeffs{ic.geq, ic.c_prev * prev_q[sl] +
                                       ic.c_prev2 * prev2_q[sl] +
                                       ic.c_iq * prev_iq[sl]};
  };

  // Convention: f[row of node] = sum of currents LEAVING the node = 0.
  auto stamp_f = [&](NodeId node, double current) {
    if (node != kGround) f[circuit.node_unknown(node)] += current;
  };
  auto stamp_j = [&](NodeId node, std::size_t unknown, double dfdx) {
    if (node != kGround) sink.add(circuit.node_unknown(node), unknown, dfdx);
  };
  auto stamp_conductance = [&](NodeId a, NodeId b, double g) {
    const double va = node_v(x, a), vb = node_v(x, b);
    stamp_f(a, g * (va - vb));
    stamp_f(b, g * (vb - va));
    if (a != kGround) {
      stamp_j(a, circuit.node_unknown(a), g);
      if (b != kGround) stamp_j(a, circuit.node_unknown(b), -g);
    }
    if (b != kGround) {
      stamp_j(b, circuit.node_unknown(b), g);
      if (a != kGround) stamp_j(b, circuit.node_unknown(a), -g);
    }
  };

  // Stamp a charge element between two nodes (capacitor) or at a MOSFET
  // terminal: q is the charge, dq[] its derivatives w.r.t. a list of node
  // voltages.
  std::size_t slot = 0;

  for (const Element& e : circuit.elements()) {
    switch (e.kind) {
      case ElementKind::kResistor: {
        stamp_conductance(e.nodes[0], e.nodes[1], 1.0 / e.value);
        break;
      }
      case ElementKind::kCapacitor: {
        const NodeId a = e.nodes[0], b = e.nodes[1];
        const double v = node_v(x, a) - node_v(x, b);
        const double q = e.value * v;
        if (dynamic) {
          const CompanionCoeffs cc = companion_at(slot);
          const double i = cc.geq * q - cc.ihist;
          const double g = cc.geq * e.value;
          stamp_f(a, i);
          stamp_f(b, -i);
          if (a != kGround) {
            stamp_j(a, circuit.node_unknown(a), g);
            if (b != kGround) stamp_j(a, circuit.node_unknown(b), -g);
          }
          if (b != kGround) {
            stamp_j(b, circuit.node_unknown(b), g);
            if (a != kGround) stamp_j(b, circuit.node_unknown(a), -g);
          }
          if (new_state) {
            new_state->q[slot] = q;
            new_state->iq[slot] = i;
          }
        } else if (new_state) {
          new_state->q[slot] = q;
        }
        // Tiny leak keeps cap-only nodes non-singular in DC.
        stamp_conductance(a, b, 1e-12);
        slot += 1;
        break;
      }
      case ElementKind::kInductor: {
        // Branch unknown i flows a -> b through the winding; branch
        // equation v(a) - v(b) = d(flux)/dt with flux = L * i.
        const NodeId a = e.nodes[0], b = e.nodes[1];
        const std::size_t k = circuit.branch_unknown(e);
        const double ibr = x[k];
        stamp_f(a, ibr);
        stamp_f(b, -ibr);
        stamp_j(a, k, 1.0);
        stamp_j(b, k, -1.0);
        const double flux = e.value * ibr;
        if (dynamic) {
          const CompanionCoeffs cc = companion_at(slot);
          f[k] = node_v(x, a) - node_v(x, b) - (cc.geq * flux - cc.ihist);
          sink.add(k, k, -cc.geq * e.value);
          if (new_state) {
            new_state->q[slot] = flux;
            new_state->iq[slot] = cc.geq * flux - cc.ihist;  // voltage, kept
          }
        } else {
          // DC: ideal short.
          f[k] = node_v(x, a) - node_v(x, b);
          if (new_state) new_state->q[slot] = flux;
        }
        if (a != kGround) sink.add(k, circuit.node_unknown(a), 1.0);
        if (b != kGround) sink.add(k, circuit.node_unknown(b), -1.0);
        slot += 1;
        break;
      }
      case ElementKind::kVcvs: {
        // v(out+) - v(out-) - gain * (v(c+) - v(c-)) = 0, with a branch
        // current through the output pair.
        const NodeId p = e.nodes[0], m = e.nodes[1];
        const NodeId cp = e.nodes[2], cm = e.nodes[3];
        const std::size_t k = circuit.branch_unknown(e);
        const double ibr = x[k];
        stamp_f(p, ibr);
        stamp_f(m, -ibr);
        stamp_j(p, k, 1.0);
        stamp_j(m, k, -1.0);
        f[k] = node_v(x, p) - node_v(x, m) -
               e.value * (node_v(x, cp) - node_v(x, cm));
        if (p != kGround) sink.add(k, circuit.node_unknown(p), 1.0);
        if (m != kGround) sink.add(k, circuit.node_unknown(m), -1.0);
        if (cp != kGround) sink.add(k, circuit.node_unknown(cp), -e.value);
        if (cm != kGround) sink.add(k, circuit.node_unknown(cm), e.value);
        break;
      }
      case ElementKind::kVccs: {
        // Current gm * (v(c+) - v(c-)) leaves out+ and enters out-.
        const NodeId p = e.nodes[0], m = e.nodes[1];
        const NodeId cp = e.nodes[2], cm = e.nodes[3];
        const double ictl =
            e.value * (node_v(x, cp) - node_v(x, cm));
        stamp_f(p, ictl);
        stamp_f(m, -ictl);
        if (cp != kGround) {
          stamp_j(p, circuit.node_unknown(cp), e.value);
          stamp_j(m, circuit.node_unknown(cp), -e.value);
        }
        if (cm != kGround) {
          stamp_j(p, circuit.node_unknown(cm), -e.value);
          stamp_j(m, circuit.node_unknown(cm), e.value);
        }
        break;
      }
      case ElementKind::kVoltageSource: {
        const NodeId p = e.nodes[0], m = e.nodes[1];
        const std::size_t k = circuit.branch_unknown(e);
        const double ibr = x[k];
        const double vset = ctx.source_scale * e.source.value(ctx.time);
        // Branch current leaves the + node, enters the - node.
        stamp_f(p, ibr);
        stamp_f(m, -ibr);
        stamp_j(p, k, 1.0);
        stamp_j(m, k, -1.0);
        // Branch equation: v+ - v- - vset = 0.
        f[k] = node_v(x, p) - node_v(x, m) - vset;
        if (p != kGround) sink.add(k, circuit.node_unknown(p), 1.0);
        if (m != kGround) sink.add(k, circuit.node_unknown(m), -1.0);
        break;
      }
      case ElementKind::kCurrentSource: {
        const double ival = ctx.source_scale * e.source.value(ctx.time);
        // Positive current flows from + through the source to -.
        stamp_f(e.nodes[0], ival);
        stamp_f(e.nodes[1], -ival);
        break;
      }
      case ElementKind::kMosfet: {
        const NodeId d = e.nodes[0], g = e.nodes[1], s = e.nodes[2];
        const double vg = node_v(x, g), vd = node_v(x, d), vs = node_v(x, s);
        bsimsoi::ModelOutput m_local;
        const bsimsoi::ModelOutput* mp = &m_local;
        if (cache && cache->batch_mode()) {
          // Batched evaluation: batch_stage() + DeviceBatch::eval() already
          // ran (and did the bypass/eval accounting); the kernel outputs —
          // staged fresh or retained from the last staging — are read back
          // here in stamp order.
          mp = &cache->batch->output(mosfet_index * cache->batch_stride +
                                     cache->batch_offset);
        } else if (cache && cache->enabled()) {
          MosfetCache::Entry& ent = cache->entries[mosfet_index];
          if (ent.valid && std::fabs(vg - ent.vg) <= cache->vtol &&
              std::fabs(vd - ent.vd) <= cache->vtol &&
              std::fabs(vs - ent.vs) <= cache->vtol) {
            cache->bypasses += 1;
            (dynamic ? cache->bypasses_tran : cache->bypasses_dc) += 1;
          } else {
            ent.out = bsimsoi::eval(e.model, vg, vd, vs);
            ent.vg = vg;
            ent.vd = vd;
            ent.vs = vs;
            ent.valid = true;
            cache->evals += 1;
            (dynamic ? cache->evals_tran : cache->evals_dc) += 1;
            fresh_evals += 1;
          }
          mp = &ent.out;
        } else {
          m_local = bsimsoi::eval(e.model, vg, vd, vs);
          fresh_evals += 1;
        }
        const bsimsoi::ModelOutput& m = *mp;
        mosfet_index += 1;
        const NodeId term[3] = {g, d, s};  // order matches dids/dq arrays

        // Channel current: into drain, out of source.
        stamp_f(d, m.ids);
        stamp_f(s, -m.ids);
        for (int t = 0; t < 3; ++t) {
          if (term[t] == kGround) continue;
          const std::size_t u = circuit.node_unknown(term[t]);
          stamp_j(d, u, m.dids[t]);
          stamp_j(s, u, -m.dids[t]);
        }
        // Gmin across the channel keeps isolated stacks invertible.
        stamp_conductance(d, s, ctx.gmin);
        stamp_conductance(g, s, 1e-15);

        // Terminal charge companions (slots: g, d, s).
        const double qt[3] = {m.qg, m.qd, m.qs};
        const std::array<double, 3>* dq[3] = {&m.dqg, &m.dqd, &m.dqs};
        for (int t = 0; t < 3; ++t) {
          const std::size_t sl = slot + static_cast<std::size_t>(t);
          if (dynamic) {
            const CompanionCoeffs cc = companion_at(sl);
            const double i = cc.geq * qt[t] - cc.ihist;
            stamp_f(term[t], i);
            for (int u = 0; u < 3; ++u) {
              if (term[u] == kGround) continue;
              stamp_j(term[t], circuit.node_unknown(term[u]),
                      cc.geq * (*dq[t])[u]);
            }
            if (new_state) {
              new_state->q[sl] = qt[t];
              new_state->iq[sl] = i;
            }
          } else if (new_state) {
            new_state->q[sl] = qt[t];
          }
        }
        slot += 3;
        break;
      }
    }
  }
  return fresh_evals;
}

// Dense accumulation (the historical assemble()).
struct DenseJacSink {
  linalg::DenseMatrix& jac;
  void add(std::size_t r, std::size_t c, double v) { jac(r, c) += v; }
};

// Records the (row, col) of every emission, in emission order.
struct PatternJacSink {
  std::vector<std::pair<std::size_t, std::size_t>>& out;
  void add(std::size_t r, std::size_t c, double) { out.emplace_back(r, c); }
};

// Routes emission k to the CSR value slot the plan computed for it.
struct SlotJacSink {
  const std::size_t* slots;
  std::size_t count;
  double* values;
  std::size_t cursor = 0;
  void add(std::size_t, std::size_t, double v) { values[slots[cursor++]] += v; }
};

}  // namespace

void assemble(const Circuit& circuit, const linalg::Vector& x,
              const AssemblyContext& ctx, linalg::DenseMatrix& jac,
              linalg::Vector& f, DynamicState* new_state) {
  const std::size_t n = circuit.system_size();
  if (jac.rows() != n || jac.cols() != n) jac = linalg::DenseMatrix(n, n);
  jac.set_zero();
  DenseJacSink sink{jac};
  assemble_impl(circuit, x, ctx, sink, f, new_state, nullptr);
}

std::vector<std::pair<std::size_t, std::size_t>> assemble_pattern(
    const Circuit& circuit, bool dynamic) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const linalg::Vector x(circuit.system_size(), 0.0);
  linalg::Vector f;
  DynamicState zero_state;
  zero_state.q.assign(count_charge_slots(circuit), 0.0);
  zero_state.iq.assign(zero_state.q.size(), 0.0);
  AssemblyContext ctx;
  if (dynamic) {
    ctx.integrator = Integrator::kBackwardEuler;  // same stamps as BDF2
    ctx.h = 1.0;
    ctx.prev = &zero_state;
    ctx.prev2 = &zero_state;
  }
  PatternJacSink sink{out};
  assemble_impl(circuit, x, ctx, sink, f, nullptr, nullptr);
  return out;
}

std::size_t assemble_sparse(const Circuit& circuit, const AssemblyPlan& plan,
                            const linalg::Vector& x,
                            const AssemblyContext& ctx,
                            std::vector<double>& values, linalg::Vector& f,
                            DynamicState* new_state, MosfetCache* cache) {
  const bool dynamic = ctx.integrator != Integrator::kNone;
  const std::vector<std::size_t>& slots = plan.slots(dynamic);
  values.assign(plan.nnz(), 0.0);
  SlotJacSink sink{slots.data(), slots.size(), values.data()};
  const std::size_t fresh =
      assemble_impl(circuit, x, ctx, sink, f, new_state, cache);
  MIVTX_EXPECT(sink.cursor == slots.size(),
               "assemble_sparse: stamp program drifted from the plan");
  return fresh;
}

void evaluate_charges(const Circuit& circuit, const linalg::Vector& x,
                      DynamicState& state) {
  const std::size_t slots = count_charge_slots(circuit);
  state.q.assign(slots, 0.0);
  if (state.iq.size() != slots) state.iq.assign(slots, 0.0);
  std::size_t slot = 0;
  for (const Element& e : circuit.elements()) {
    if (e.kind == ElementKind::kCapacitor) {
      state.q[slot++] =
          e.value * (node_v(x, e.nodes[0]) - node_v(x, e.nodes[1]));
    } else if (e.kind == ElementKind::kInductor) {
      state.q[slot++] = e.value * x[circuit.branch_unknown(e)];
    } else if (e.kind == ElementKind::kMosfet) {
      const bsimsoi::ModelOutput m = bsimsoi::eval(
          e.model, node_v(x, e.nodes[1]), node_v(x, e.nodes[0]),
          node_v(x, e.nodes[2]));
      state.q[slot++] = m.qg;
      state.q[slot++] = m.qd;
      state.q[slot++] = m.qs;
    }
  }
}

void assemble_capacitance(const Circuit& circuit, const linalg::Vector& x,
                          linalg::DenseMatrix& cmat) {
  const std::size_t n = circuit.system_size();
  MIVTX_EXPECT(x.size() == n, "assemble_capacitance: size mismatch");
  if (cmat.rows() != n || cmat.cols() != n)
    cmat = linalg::DenseMatrix(n, n);
  cmat.set_zero();

  auto stamp = [&](NodeId row, NodeId col, double c) {
    if (row == kGround || col == kGround) return;
    cmat(circuit.node_unknown(row), circuit.node_unknown(col)) += c;
  };

  for (const Element& e : circuit.elements()) {
    switch (e.kind) {
      case ElementKind::kCapacitor: {
        const NodeId a = e.nodes[0], b = e.nodes[1];
        stamp(a, a, e.value);
        stamp(b, b, e.value);
        stamp(a, b, -e.value);
        stamp(b, a, -e.value);
        break;
      }
      case ElementKind::kInductor: {
        // Branch equation imaginary part: -j*omega*L*i.
        const std::size_t k = circuit.branch_unknown(e);
        cmat(k, k) -= e.value;
        break;
      }
      case ElementKind::kMosfet: {
        const NodeId d = e.nodes[0], g = e.nodes[1], s = e.nodes[2];
        const bsimsoi::ModelOutput m = bsimsoi::eval(
            e.model, node_v(x, g), node_v(x, d), node_v(x, s));
        const NodeId term[3] = {g, d, s};
        const std::array<double, 3>* dq[3] = {&m.dqg, &m.dqd, &m.dqs};
        for (int t = 0; t < 3; ++t) {
          for (int u = 0; u < 3; ++u) {
            stamp(term[t], term[u], (*dq[t])[u]);
          }
        }
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace mivtx::spice
