// Modified-nodal-analysis assembly.
//
// Unknown vector layout: x = [v(node 1..N-1), i(branch of each V source)].
// The assembler produces the Newton residual f(x) and Jacobian J(x) in one
// pass; dynamic (charge) elements contribute companion currents derived
// from the integration method of the active transient step.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "bsimsoi/model.h"
#include "linalg/dense.h"
#include "spice/circuit.h"

namespace mivtx::bsimsoi {
class DeviceBatch;
}

namespace mivtx::spice {

class AssemblyPlan;

// Charge/current history for dynamic elements.  Slot assignment: one slot
// per capacitor (charge), one per inductor (flux), three (g, d, s) per
// MOSFET (terminal charges), in element order.
struct DynamicState {
  std::vector<double> q;   // charge at the last accepted time point
  std::vector<double> iq;  // charge-current at the last accepted time point
};

// kBdf2 (variable-step Gear-2) is the production transient method: the
// parasitic-annotated cells mix femtosecond RC time constants with
// nanosecond edges, and trapezoidal's marginal stiff damping rings on
// them.  Trapezoidal is kept for accuracy cross-checks on non-stiff
// circuits.
enum class Integrator { kNone, kBackwardEuler, kTrapezoidal, kBdf2 };

struct AssemblyContext {
  double time = 0.0;          // source evaluation time
  double source_scale = 1.0;  // continuation scaling of all sources
  double gmin = 1e-12;        // conductance across MOSFET channels
  Integrator integrator = Integrator::kNone;
  double h = 0.0;                      // time step (transient only)
  const DynamicState* prev = nullptr;  // state at the previous time point
  // BDF2 extras: state two points back and the step ratio h / h_prev.
  const DynamicState* prev2 = nullptr;
  double step_ratio = 1.0;
};

// Number of charge slots the circuit needs.
std::size_t count_charge_slots(const Circuit& circuit);

// Slot-independent companion-model coefficients of the active integrator:
// a charge slot's companion current is i = geq * q - ihist with
// ihist = c_prev * prev.q[slot] + c_prev2 * prev2.q[slot] +
// c_iq * prev.iq[slot], and geq also scales the dq/dv Jacobian stamps.
// Shared by the scalar assembler and the lane-packed corner assembler so
// the two integrate identically.
struct IntegratorCoeffs {
  double geq = 0.0;
  double c_prev = 0.0;
  double c_prev2 = 0.0;
  double c_iq = 0.0;
};
IntegratorCoeffs integrator_coeffs(const AssemblyContext& ctx);

// Terminal-voltage device bypass: one entry per MOSFET (element order)
// holding the controlling voltages and full model output of the last
// fresh BSIMSOI evaluation.  When every terminal moved by at most `vtol`
// since that evaluation the assembler re-stamps the cached output instead
// of re-evaluating the model — the convergence-recheck and accept-step
// assemblies repeat the exact same iterate, so they bypass every device
// even with vtol == 0.  A negative vtol disables the cache.
struct MosfetCache {
  struct Entry {
    double vg = 0.0, vd = 0.0, vs = 0.0;
    bsimsoi::ModelOutput out;
    bool valid = false;
  };
  std::vector<Entry> entries;
  double vtol = 0.0;
  std::uint64_t evals = 0;     // fresh model evaluations (all kinds)
  std::uint64_t bypasses = 0;  // stamps served from the cache (all kinds)
  // Per-analysis-kind split of the totals above: evals == evals_dc +
  // evals_tran (same for bypasses).  "dc" covers every static assembly
  // (operating point, gmin/source continuation, sweeps); "tran" the
  // companion-model assemblies of a transient step.
  std::uint64_t evals_dc = 0, evals_tran = 0;
  std::uint64_t bypasses_dc = 0, bypasses_tran = 0;

  // Batched evaluation (bsimsoi::DeviceBatch): when `batch` is set the
  // assembler reads device outputs from it instead of calling
  // bsimsoi::eval per stamp; batch_stage() runs the bypass decisions and
  // stages the fresh instances before the caller fires one kernel pass
  // over all of them.  Instance index of MOSFET i (element order) is
  // i * batch_stride + batch_offset — cross-corner lane packing gives K
  // same-topology circuits one shared batch with stride K and per-corner
  // offsets, so the K corner lanes of a device are block-adjacent.
  bsimsoi::DeviceBatch* batch = nullptr;  // non-owning
  std::size_t batch_stride = 1;
  std::size_t batch_offset = 0;
  // Lane-occupancy accounting: real instances staged vs kLaneWidth *
  // blocks dispatched (tail blocks replicate lanes).
  std::uint64_t batch_evals = 0;   // kernel passes (DeviceBatch::eval calls)
  std::uint64_t batch_blocks = 0;  // kernel blocks dispatched
  std::uint64_t batch_lanes = 0;   // real instances evaluated in those blocks

  void bind(const Circuit& circuit);  // size entries, invalidate
  void invalidate();
  bool enabled() const { return vtol >= 0.0 && !entries.empty(); }
  bool batch_mode() const { return batch != nullptr; }

  // Batch-mode first half of the assembly: walk the MOSFETs at solution x,
  // serve unchanged devices from the bypass (counted per kind via
  // `dynamic`), stage the rest into `batch`.  Returns the number staged
  // (== fresh evaluations once the caller runs batch->eval()).
  std::size_t batch_stage(const Circuit& circuit, const linalg::Vector& x,
                          bool dynamic);
};

// Assemble residual f and Jacobian J at solution x.  When `new_state` is
// non-null it receives the charges q(x) and companion currents for each
// slot (only meaningful with a transient integrator).
void assemble(const Circuit& circuit, const linalg::Vector& x,
              const AssemblyContext& ctx, linalg::DenseMatrix& jac,
              linalg::Vector& f, DynamicState* new_state);

// Jacobian stamp positions (row, col) in emission order for the DC
// (dynamic == false) or transient (dynamic == true) stamp program.  The
// sequence depends only on the circuit topology, never on x or on the
// element values — that invariant is what lets AssemblyPlan map each
// emission to a fixed CSR slot.
std::vector<std::pair<std::size_t, std::size_t>> assemble_pattern(
    const Circuit& circuit, bool dynamic);

// Sparse assembly against a precomputed plan: writes the Jacobian straight
// into the CSR value array `values` (sized/zeroed here to plan.nnz()) and
// the residual into f, with no entry lists, no sorting, and no dense
// zeroing.  `cache`, when non-null and enabled, provides the MOSFET
// bypass.  Returns the number of fresh BSIMSOI evaluations performed —
// zero means the Jacobian values are bit-identical to the previous
// assembly under the same AssemblyContext coefficients.
std::size_t assemble_sparse(const Circuit& circuit, const AssemblyPlan& plan,
                            const linalg::Vector& x,
                            const AssemblyContext& ctx,
                            std::vector<double>& values, linalg::Vector& f,
                            DynamicState* new_state, MosfetCache* cache);

// Evaluate all element charges at solution x into state.q (iq untouched).
void evaluate_charges(const Circuit& circuit, const linalg::Vector& x,
                      DynamicState& state);

// Small-signal capacitance matrix at solution x: dQ/dV stamps of every
// capacitor and MOSFET terminal charge (node rows/columns only; branch
// rows stay zero).  Shape matches the MNA system.
void assemble_capacitance(const Circuit& circuit, const linalg::Vector& x,
                          linalg::DenseMatrix& cmat);

}  // namespace mivtx::spice
