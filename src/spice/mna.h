// Modified-nodal-analysis assembly.
//
// Unknown vector layout: x = [v(node 1..N-1), i(branch of each V source)].
// The assembler produces the Newton residual f(x) and Jacobian J(x) in one
// pass; dynamic (charge) elements contribute companion currents derived
// from the integration method of the active transient step.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/dense.h"
#include "spice/circuit.h"

namespace mivtx::spice {

// Charge/current history for dynamic elements.  Slot assignment: one slot
// per capacitor (charge), one per inductor (flux), three (g, d, s) per
// MOSFET (terminal charges), in element order.
struct DynamicState {
  std::vector<double> q;   // charge at the last accepted time point
  std::vector<double> iq;  // charge-current at the last accepted time point
};

// kBdf2 (variable-step Gear-2) is the production transient method: the
// parasitic-annotated cells mix femtosecond RC time constants with
// nanosecond edges, and trapezoidal's marginal stiff damping rings on
// them.  Trapezoidal is kept for accuracy cross-checks on non-stiff
// circuits.
enum class Integrator { kNone, kBackwardEuler, kTrapezoidal, kBdf2 };

struct AssemblyContext {
  double time = 0.0;          // source evaluation time
  double source_scale = 1.0;  // continuation scaling of all sources
  double gmin = 1e-12;        // conductance across MOSFET channels
  Integrator integrator = Integrator::kNone;
  double h = 0.0;                      // time step (transient only)
  const DynamicState* prev = nullptr;  // state at the previous time point
  // BDF2 extras: state two points back and the step ratio h / h_prev.
  const DynamicState* prev2 = nullptr;
  double step_ratio = 1.0;
};

// Number of charge slots the circuit needs.
std::size_t count_charge_slots(const Circuit& circuit);

// Assemble residual f and Jacobian J at solution x.  When `new_state` is
// non-null it receives the charges q(x) and companion currents for each
// slot (only meaningful with a transient integrator).
void assemble(const Circuit& circuit, const linalg::Vector& x,
              const AssemblyContext& ctx, linalg::DenseMatrix& jac,
              linalg::Vector& f, DynamicState* new_state);

// Evaluate all element charges at solution x into state.q (iq untouched).
void evaluate_charges(const Circuit& circuit, const linalg::Vector& x,
                      DynamicState& state);

// Small-signal capacitance matrix at solution x: dQ/dV stamps of every
// capacitor and MOSFET terminal charge (node rows/columns only; branch
// rows stay zero).  Shape matches the MNA system.
void assemble_capacitance(const Circuit& circuit, const linalg::Vector& x,
                          linalg::DenseMatrix& cmat);

}  // namespace mivtx::spice
