// Modified-nodal-analysis assembly.
//
// Unknown vector layout: x = [v(node 1..N-1), i(branch of each V source)].
// The assembler produces the Newton residual f(x) and Jacobian J(x) in one
// pass; dynamic (charge) elements contribute companion currents derived
// from the integration method of the active transient step.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "bsimsoi/model.h"
#include "linalg/dense.h"
#include "spice/circuit.h"

namespace mivtx::spice {

class AssemblyPlan;

// Charge/current history for dynamic elements.  Slot assignment: one slot
// per capacitor (charge), one per inductor (flux), three (g, d, s) per
// MOSFET (terminal charges), in element order.
struct DynamicState {
  std::vector<double> q;   // charge at the last accepted time point
  std::vector<double> iq;  // charge-current at the last accepted time point
};

// kBdf2 (variable-step Gear-2) is the production transient method: the
// parasitic-annotated cells mix femtosecond RC time constants with
// nanosecond edges, and trapezoidal's marginal stiff damping rings on
// them.  Trapezoidal is kept for accuracy cross-checks on non-stiff
// circuits.
enum class Integrator { kNone, kBackwardEuler, kTrapezoidal, kBdf2 };

struct AssemblyContext {
  double time = 0.0;          // source evaluation time
  double source_scale = 1.0;  // continuation scaling of all sources
  double gmin = 1e-12;        // conductance across MOSFET channels
  Integrator integrator = Integrator::kNone;
  double h = 0.0;                      // time step (transient only)
  const DynamicState* prev = nullptr;  // state at the previous time point
  // BDF2 extras: state two points back and the step ratio h / h_prev.
  const DynamicState* prev2 = nullptr;
  double step_ratio = 1.0;
};

// Number of charge slots the circuit needs.
std::size_t count_charge_slots(const Circuit& circuit);

// Terminal-voltage device bypass: one entry per MOSFET (element order)
// holding the controlling voltages and full model output of the last
// fresh BSIMSOI evaluation.  When every terminal moved by at most `vtol`
// since that evaluation the assembler re-stamps the cached output instead
// of re-evaluating the model — the convergence-recheck and accept-step
// assemblies repeat the exact same iterate, so they bypass every device
// even with vtol == 0.  A negative vtol disables the cache.
struct MosfetCache {
  struct Entry {
    double vg = 0.0, vd = 0.0, vs = 0.0;
    bsimsoi::ModelOutput out;
    bool valid = false;
  };
  std::vector<Entry> entries;
  double vtol = 0.0;
  std::uint64_t evals = 0;     // fresh model evaluations
  std::uint64_t bypasses = 0;  // stamps served from the cache

  void bind(const Circuit& circuit);  // size entries, invalidate
  void invalidate();
  bool enabled() const { return vtol >= 0.0 && !entries.empty(); }
};

// Assemble residual f and Jacobian J at solution x.  When `new_state` is
// non-null it receives the charges q(x) and companion currents for each
// slot (only meaningful with a transient integrator).
void assemble(const Circuit& circuit, const linalg::Vector& x,
              const AssemblyContext& ctx, linalg::DenseMatrix& jac,
              linalg::Vector& f, DynamicState* new_state);

// Jacobian stamp positions (row, col) in emission order for the DC
// (dynamic == false) or transient (dynamic == true) stamp program.  The
// sequence depends only on the circuit topology, never on x or on the
// element values — that invariant is what lets AssemblyPlan map each
// emission to a fixed CSR slot.
std::vector<std::pair<std::size_t, std::size_t>> assemble_pattern(
    const Circuit& circuit, bool dynamic);

// Sparse assembly against a precomputed plan: writes the Jacobian straight
// into the CSR value array `values` (sized/zeroed here to plan.nnz()) and
// the residual into f, with no entry lists, no sorting, and no dense
// zeroing.  `cache`, when non-null and enabled, provides the MOSFET
// bypass.  Returns the number of fresh BSIMSOI evaluations performed —
// zero means the Jacobian values are bit-identical to the previous
// assembly under the same AssemblyContext coefficients.
std::size_t assemble_sparse(const Circuit& circuit, const AssemblyPlan& plan,
                            const linalg::Vector& x,
                            const AssemblyContext& ctx,
                            std::vector<double>& values, linalg::Vector& f,
                            DynamicState* new_state, MosfetCache* cache);

// Evaluate all element charges at solution x into state.q (iq untouched).
void evaluate_charges(const Circuit& circuit, const linalg::Vector& x,
                      DynamicState& state);

// Small-signal capacitance matrix at solution x: dQ/dV stamps of every
// capacitor and MOSFET terminal charge (node rows/columns only; branch
// rows stay zero).  Shape matches the MNA system.
void assemble_capacitance(const Circuit& circuit, const linalg::Vector& x,
                          linalg::DenseMatrix& cmat);

}  // namespace mivtx::spice
