#include "spice/parser.h"

#include <cctype>
#include <map>

#include "common/error.h"
#include "common/strings.h"

namespace mivtx::spice {

namespace {

// Joins continuation lines, strips comments, keeps 1-based line numbers.
std::vector<std::pair<int, std::string>> logical_lines(
    const std::string& text) {
  std::vector<std::pair<int, std::string>> raw;
  int lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line =
        text.substr(pos, eol == std::string::npos ? std::string::npos
                                                  : eol - pos);
    ++lineno;
    raw.emplace_back(lineno, line);
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }

  std::vector<std::pair<int, std::string>> out;
  for (const auto& [no, line0] : raw) {
    std::string line(trim(line0));
    // Strip trailing "$" or ";" comments.
    const std::size_t dollar = line.find('$');
    if (dollar != std::string::npos) line = line.substr(0, dollar);
    const std::size_t semi = line.find(';');
    if (semi != std::string::npos) line = line.substr(0, semi);
    line = std::string(trim(line));
    if (line.empty() || line[0] == '*') continue;
    if (line[0] == '+') {
      MIVTX_EXPECT(!out.empty(),
                   "line " + std::to_string(no) + ": continuation at start");
      out.back().second += " " + line.substr(1);
      continue;
    }
    out.emplace_back(no, line);
  }
  return out;
}

[[noreturn]] void parse_fail(int line, const std::string& msg) {
  throw Error("netlist line " + std::to_string(line) + ": " + msg);
}

// Tokenize treating '(', ')', ',' and '=' as separators but keeping '='
// pairs joined is messy; instead normalize those characters to spaces first
// except in name=value pairs which we re-split on demand.
std::vector<std::string> source_tokens(const std::string& s) {
  std::string norm = s;
  for (char& c : norm) {
    if (c == '(' || c == ')' || c == ',') c = ' ';
  }
  return split(norm, " \t");
}

SourceSpec parse_source(const std::vector<std::string>& tok, std::size_t from,
                        int line) {
  if (from >= tok.size()) return SourceSpec::DC(0.0);
  const std::string kind = to_lower(tok[from]);
  if (kind == "dc") {
    if (from + 1 >= tok.size()) parse_fail(line, "DC needs a value");
    return SourceSpec::DC(parse_spice_number(tok[from + 1]));
  }
  if (kind == "pulse") {
    std::vector<double> a;
    for (std::size_t i = from + 1; i < tok.size(); ++i)
      a.push_back(parse_spice_number(tok[i]));
    if (a.size() < 6) parse_fail(line, "PULSE needs v1 v2 td tr tf pw [per]");
    PulseSpec p;
    p.v1 = a[0];
    p.v2 = a[1];
    p.delay = a[2];
    p.rise = a[3];
    p.fall = a[4];
    p.width = a[5];
    p.period = a.size() > 6 ? a[6] : 0.0;
    return SourceSpec::Pulse(p);
  }
  if (kind == "pwl") {
    std::vector<std::pair<double, double>> pts;
    for (std::size_t i = from + 1; i + 1 < tok.size(); i += 2) {
      pts.emplace_back(parse_spice_number(tok[i]),
                       parse_spice_number(tok[i + 1]));
    }
    if (pts.empty()) parse_fail(line, "PWL needs time/value pairs");
    return SourceSpec::Pwl(std::move(pts));
  }
  if (kind == "sin") {
    std::vector<double> a;
    for (std::size_t i = from + 1; i < tok.size(); ++i)
      a.push_back(parse_spice_number(tok[i]));
    if (a.size() < 3) parse_fail(line, "SIN needs vo va freq");
    return SourceSpec::Sin(a[0], a[1], a[2]);
  }
  // Bare number = DC.
  return SourceSpec::DC(parse_spice_number(tok[from]));
}

// One element line dispatched by its lead character.
void parse_element(Circuit& ckt, char lead, const std::string& line,
                   const std::vector<std::string>& tok, int no,
                   const std::map<std::string, bsimsoi::SoiModelCard>& models,
                   ParsedNetlist& out,
                   const std::map<std::string, std::size_t>& model_decl_index) {
  switch (lead) {
    case 'r': {
      if (tok.size() < 4) parse_fail(no, "R needs: name n1 n2 value");
      ckt.add_resistor(tok[0], ckt.node(tok[1]), ckt.node(tok[2]),
                       parse_spice_number(tok[3]));
      break;
    }
    case 'c': {
      if (tok.size() < 4) parse_fail(no, "C needs: name n1 n2 value");
      ckt.add_capacitor(tok[0], ckt.node(tok[1]), ckt.node(tok[2]),
                        parse_spice_number(tok[3]));
      break;
    }
    case 'l': {
      if (tok.size() < 4) parse_fail(no, "L needs: name n1 n2 value");
      ckt.add_inductor(tok[0], ckt.node(tok[1]), ckt.node(tok[2]),
                       parse_spice_number(tok[3]));
      break;
    }
    case 'e': {
      if (tok.size() < 6)
        parse_fail(no, "E needs: name out+ out- ctrl+ ctrl- gain");
      ckt.add_vcvs(tok[0], ckt.node(tok[1]), ckt.node(tok[2]),
                   ckt.node(tok[3]), ckt.node(tok[4]),
                   parse_spice_number(tok[5]));
      break;
    }
    case 'g': {
      if (tok.size() < 6)
        parse_fail(no, "G needs: name out+ out- ctrl+ ctrl- gm");
      ckt.add_vccs(tok[0], ckt.node(tok[1]), ckt.node(tok[2]),
                   ckt.node(tok[3]), ckt.node(tok[4]),
                   parse_spice_number(tok[5]));
      break;
    }
    case 'v': {
      if (tok.size() < 4) parse_fail(no, "V needs: name n+ n- spec");
      ckt.add_vsource(tok[0], ckt.node(tok[1]), ckt.node(tok[2]),
                      parse_source(tok, 3, no));
      break;
    }
    case 'i': {
      if (tok.size() < 4) parse_fail(no, "I needs: name n+ n- spec");
      ckt.add_isource(tok[0], ckt.node(tok[1]), ckt.node(tok[2]),
                      parse_source(tok, 3, no));
      break;
    }
    case 'm': {
      if (tok.size() < 5) parse_fail(no, "M needs: name d g s model");
      const std::string model_key = to_lower(tok[4]);
      const auto model_it = models.find(model_key);
      if (model_it == models.end())
        parse_fail(no, "unknown model: " + tok[4]);
      out.models[model_decl_index.at(model_key)].referenced = true;
      bsimsoi::SoiModelCard card = model_it->second;
      for (std::size_t i = 5; i < tok.size(); ++i) {
        const auto kv = split(tok[i], "=");
        if (kv.size() != 2) parse_fail(no, "bad instance param " + tok[i]);
        card.set(kv[0], parse_spice_number(kv[1]));
      }
      ckt.add_mosfet(tok[0], ckt.node(tok[1]), ckt.node(tok[2]),
                     ckt.node(tok[3]), std::move(card));
      break;
    }
    default:
      parse_fail(no, std::string("unsupported element '") + line[0] + "'");
  }
}

}  // namespace

ParsedNetlist parse_netlist(const std::string& text) {
  ParsedNetlist out;
  const auto lines = logical_lines(text);
  MIVTX_EXPECT(!lines.empty(), "empty netlist");

  // First pass: collect model cards so device lines can resolve them in any
  // order.  SPICE convention: the first line is the title unless it is a
  // dot-directive (programmatic netlists can start with ".model" etc.).
  std::map<std::string, bsimsoi::SoiModelCard> models;
  std::map<std::string, std::size_t> model_decl_index;  // key -> out.models
  std::size_t first_element_line = 0;
  if (lines[0].second[0] != '.') {
    out.title = lines[0].second;
    first_element_line = 1;
  }
  for (std::size_t li = first_element_line; li < lines.size(); ++li) {
    const auto& [no, line] = lines[li];
    if (starts_with_ci(line, ".model")) {
      bsimsoi::SoiModelCard card;
      try {
        card = bsimsoi::SoiModelCard::from_model_line(line);
      } catch (const Error& e) {
        parse_fail(no, e.what());
      }
      const std::string key = to_lower(card.name);
      const auto dup = model_decl_index.find(key);
      if (dup != model_decl_index.end()) {
        parse_fail(no, "duplicate model '" + card.name +
                           "' (first declared at line " +
                           std::to_string(out.models[dup->second].line) + ")");
      }
      model_decl_index[key] = out.models.size();
      out.models.push_back(ModelDecl{card.name, no, false});
      models[key] = card;
    }
  }

  for (std::size_t li = first_element_line; li < lines.size(); ++li) {
    const auto& [no, line] = lines[li];
    const char lead = static_cast<char>(
        std::tolower(static_cast<unsigned char>(line[0])));
    if (lead == '.') {
      if (starts_with_ci(line, ".model")) continue;  // handled above
      if (starts_with_ci(line, ".end")) break;
      out.directives.push_back(line);
      continue;
    }
    const auto tok = source_tokens(line);
    MIVTX_EXPECT(!tok.empty(), "tokenizer produced nothing");
    const std::string element_key = to_lower(tok[0]);
    const auto prev = out.element_lines.find(element_key);
    if (prev != out.element_lines.end()) {
      parse_fail(no, "duplicate element '" + tok[0] +
                         "' (first defined at line " +
                         std::to_string(prev->second) + ")");
    }
    try {
      parse_element(out.circuit, lead, line, tok, no, models, out,
                    model_decl_index);
    } catch (const Error& e) {
      // Re-wrap construction failures (e.g. a nonpositive R/C/L value) with
      // the netlist line; already line-stamped failures pass through.
      const std::string what = e.what();
      if (what.rfind("netlist line ", 0) == 0) throw;
      parse_fail(no, what);
    }
    out.element_lines[element_key] = no;
  }
  return out;
}

}  // namespace mivtx::spice
