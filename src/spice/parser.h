// SPICE-style netlist text parser.
//
// Supported grammar (case-insensitive, '*' comments, '+' continuations):
//   R<name> n1 n2 <ohms>
//   C<name> n1 n2 <farads>
//   L<name> n1 n2 <henries>
//   E<name> out+ out- ctrl+ ctrl- <gain>
//   G<name> out+ out- ctrl+ ctrl- <transconductance>
//   V<name> n+ n- [DC] <v> | PULSE(v1 v2 td tr tf pw [per]) | PWL(t1 v1 ...)
//                 | SIN(vo va freq)
//   I<name> n+ n- ... (same source forms)
//   M<name> d g s <model> [W=..] [L=..] [NF=..]
//   .model <name> nmos|pmos LEVEL=70 <param>=<value> ...
//   .end
// Any other dot-directive is collected verbatim into `directives`.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "spice/circuit.h"

namespace mivtx::spice {

// A .model card declaration, for declaration-hygiene lint rules.
struct ModelDecl {
  std::string name;  // as written in the netlist
  int line = 0;      // 1-based declaration line
  bool referenced = false;  // some M element instantiates it
};

struct ParsedNetlist {
  std::string title;
  Circuit circuit;
  std::vector<std::string> directives;
  // Lower-cased element name -> 1-based netlist line, for diagnostics
  // (lint::DiagnosticSink::set_source_lines).
  std::unordered_map<std::string, int> element_lines;
  // Model cards in declaration order.
  std::vector<ModelDecl> models;
};

// Throws mivtx::Error with a line-numbered message on malformed input,
// including duplicate element names and duplicate .model names (both report
// the offending and the original line).
ParsedNetlist parse_netlist(const std::string& text);

}  // namespace mivtx::spice
