// SPICE-style netlist text parser.
//
// Supported grammar (case-insensitive, '*' comments, '+' continuations):
//   R<name> n1 n2 <ohms>
//   C<name> n1 n2 <farads>
//   L<name> n1 n2 <henries>
//   E<name> out+ out- ctrl+ ctrl- <gain>
//   G<name> out+ out- ctrl+ ctrl- <transconductance>
//   V<name> n+ n- [DC] <v> | PULSE(v1 v2 td tr tf pw [per]) | PWL(t1 v1 ...)
//                 | SIN(vo va freq)
//   I<name> n+ n- ... (same source forms)
//   M<name> d g s <model> [W=..] [L=..] [NF=..]
//   .model <name> nmos|pmos LEVEL=70 <param>=<value> ...
//   .end
// Any other dot-directive is collected verbatim into `directives`.
#pragma once

#include <string>
#include <vector>

#include "spice/circuit.h"

namespace mivtx::spice {

struct ParsedNetlist {
  std::string title;
  Circuit circuit;
  std::vector<std::string> directives;
};

// Throws mivtx::Error with a line-numbered message on malformed input.
ParsedNetlist parse_netlist(const std::string& text);

}  // namespace mivtx::spice
