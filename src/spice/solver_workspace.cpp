#include "spice/solver_workspace.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.h"
#include "runtime/metrics.h"

namespace mivtx::spice {

namespace {

// Accumulates one timer lane of SolverStats over a scope.  Wall clock
// only: these sections are single-threaded straight-line compute, so
// thread-CPU time equals wall time, and CLOCK_THREAD_CPUTIME_ID costs
// ~250 ns per read (a real syscall) — reading it per Newton iteration
// would distort the very loops being measured.  flush_metrics() reports
// the wall total for both lanes.
class StatTimer {
 public:
  explicit StatTimer(double& wall) : wall_(wall), w0_(runtime::wall_seconds()) {}
  ~StatTimer() { wall_ += runtime::wall_seconds() - w0_; }
  StatTimer(const StatTimer&) = delete;
  StatTimer& operator=(const StatTimer&) = delete;

 private:
  double& wall_;
  double w0_;
};

// Above this many unknowns the singular-pivot densify rung is refused:
// the n x n dense matrix alone would dwarf every sparse structure (80 GB
// at 100k unknowns), and the iterative-tier circuits that reach these
// sizes are exactly the ones that would hit it.
constexpr std::size_t kDenseFallbackMaxUnknowns = 4096;
// Sticky-disable the iterative tier after this many consecutive failed
// Krylov solves; one nasty mid-transient Jacobian should not condemn the
// rest of the run to direct LU, but a systematically hard system should
// stop paying for doomed Krylov sweeps.
constexpr int kIterativeDisableAfter = 3;

IterativeFallback fallback_reason(linalg::IterativeOutcome outcome) {
  switch (outcome) {
    case linalg::IterativeOutcome::kBreakdown:
      return IterativeFallback::kBreakdown;
    case linalg::IterativeOutcome::kStagnation:
      return IterativeFallback::kStagnation;
    case linalg::IterativeOutcome::kMaxIterations:
      return IterativeFallback::kMaxIterations;
    case linalg::IterativeOutcome::kConverged:
      break;
  }
  return IterativeFallback::kNone;
}

}  // namespace

const char* to_string(IterativeFallback f) {
  switch (f) {
    case IterativeFallback::kNone: return "none";
    case IterativeFallback::kPrecondFailed: return "precond-failed";
    case IterativeFallback::kBreakdown: return "breakdown";
    case IterativeFallback::kStagnation: return "stagnation";
    case IterativeFallback::kMaxIterations: return "max-iterations";
  }
  return "?";
}

const char* linear_solver_name(LinearSolver s) {
  switch (s) {
    case LinearSolver::kAuto: return "auto";
    case LinearSolver::kDirect: return "direct";
    case LinearSolver::kCg: return "cg";
    case LinearSolver::kBicgstab: return "bicgstab";
  }
  return "?";
}

SolverWorkspace::SolverWorkspace(const Circuit& circuit,
                                 const NewtonOptions& opts)
    : circuit_(&circuit),
      n_(circuit.system_size()),
      reuse_factorization_(opts.reuse_factorization) {
  MIVTX_EXPECT(n_ > 0, "solver workspace: empty circuit");
  switch (opts.backend) {
    case SolverBackend::kDense:
      sparse_ = false;
      break;
    case SolverBackend::kSparse:
      sparse_ = true;
      break;
    case SolverBackend::kAuto:
      sparse_ = n_ >= opts.sparse_min_unknowns;
      break;
  }
  f_.assign(n_, 0.0);
  rhs_.assign(n_, 0.0);
  if (sparse_) {
    plan_.emplace(circuit);
    values_.assign(plan_->nnz(), 0.0);
    // Direct-vs-iterative crossover (DESIGN.md §15).  At or above
    // iterative_min_unknowns the LU symbolic analysis is skipped outright
    // (the min-degree ordering is itself super-linear); in the band below
    // it the analysis runs and its predicted fill-in decides.
    switch (opts.linear_solver) {
      case LinearSolver::kDirect:
        break;
      case LinearSolver::kCg:
      case LinearSolver::kBicgstab:
        iterative_ = true;
        iter_method_ = opts.linear_solver;
        break;
      case LinearSolver::kAuto:
        iterative_ = n_ >= opts.iterative_min_unknowns;
        break;
    }
    if (!iterative_) {
      ensure_lu_analyzed();
      if (opts.linear_solver == LinearSolver::kAuto &&
          n_ >= opts.iterative_fill_min_unknowns &&
          static_cast<double>(lu_.predicted_factor_nnz()) >=
              opts.iterative_fill_ratio * static_cast<double>(plan_->nnz()))
        iterative_ = true;
    }
    if (iterative_) {
      ilu0_.analyze(n_, plan_->row_ptr(), plan_->col_idx());
      jacobi_.analyze(n_, plan_->row_ptr(), plan_->col_idx());
      iter_x_.assign(n_, 0.0);
      iterative_rtol_ = opts.iterative_rtol;
      iterative_max_iterations_ = opts.iterative_max_iterations;
      // Transpose-slot map for the CG-vs-BiCGStab value-symmetry sniff
      // (only consulted when the method is not pinned).  Branch unknowns
      // (V/E/L currents) rule CG out regardless of symmetry: their zero
      // diagonal makes the MNA system a symmetric *indefinite* saddle
      // point, and CG's p'Ap > 0 invariant only holds on SPD systems —
      // think a Norton-fed power grid, not a V-source-driven cell.
      const bool branch_free = n_ + 1 == circuit.num_nodes();
      if (iter_method_ == LinearSolver::kAuto && branch_free) {
        const std::vector<std::size_t>& row_ptr = plan_->row_ptr();
        const std::vector<std::size_t>& col_idx = plan_->col_idx();
        constexpr std::size_t kNone = static_cast<std::size_t>(-1);
        sym_slot_.assign(plan_->nnz(), kNone);
        pattern_symmetric_ = true;
        for (std::size_t r = 0; r < n_; ++r) {
          for (std::size_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
            const std::size_t c = col_idx[p];
            const auto b = col_idx.begin() + static_cast<std::ptrdiff_t>(row_ptr[c]);
            const auto e = col_idx.begin() + static_cast<std::ptrdiff_t>(row_ptr[c + 1]);
            const auto it = std::lower_bound(b, e, r);
            if (it != e && *it == r)
              sym_slot_[p] =
                  static_cast<std::size_t>(it - col_idx.begin());
            else
              pattern_symmetric_ = false;
          }
        }
      }
    }
    cache_.vtol = opts.bypass_vtol;
    if (opts.bypass_vtol >= 0.0) cache_.bind(circuit);

    // Device-eval strategy: batch unless asked for the scalar reference.
    // $MIVTX_SIMD=off/scalar is the runtime kill switch for kAuto only —
    // explicit kPortable/kSimd come from code (verify/bench pins) and win.
    bool batch = false;
    bsimsoi::SimdLevel level = bsimsoi::best_simd_level();
    switch (opts.device_eval) {
      case DeviceEval::kScalar:
        break;
      case DeviceEval::kPortable:
        batch = true;
        level = bsimsoi::SimdLevel::kScalarLane;
        break;
      case DeviceEval::kSimd:
        batch = true;
        break;
      case DeviceEval::kAuto:
        batch = !bsimsoi::simd_env_disabled();
        break;
    }
    if (batch) {
      std::vector<const bsimsoi::SoiModelCard*> cards;
      for (const Element& e : circuit.elements())
        if (e.kind == ElementKind::kMosfet) cards.push_back(&e.model);
      if (!cards.empty()) {
        batch_.bind(cards, level);
        cache_.batch = &batch_;
      }
    }
  } else {
    jac_ = linalg::DenseMatrix(n_, n_);
  }
}

SolverWorkspace::~SolverWorkspace() { flush_metrics(); }

const AssemblyPlan& SolverWorkspace::plan() const {
  MIVTX_EXPECT(plan_.has_value(), "solver workspace: no plan (dense backend)");
  return *plan_;
}

linalg::Vector& SolverWorkspace::rhs() {
  ensure(rhs_, n_);
  return rhs_;
}

void SolverWorkspace::ensure(linalg::Vector& v, std::size_t size) {
  if (v.size() < size) {
    if (v.capacity() < size) note_alloc();
    v.resize(size, 0.0);
  }
}

void SolverWorkspace::assemble(const linalg::Vector& x,
                               const AssemblyContext& ctx,
                               DynamicState* new_state) {
  stats_.assemblies += 1;
  StatTimer timer(stats_.assemble_wall_s);
  if (sparse_) {
    std::size_t fresh;
    if (cache_.batch_mode()) {
      // Two-phase batched assembly: bypass decisions + staging, one kernel
      // pass over every fresh device, then the stamp loop reads outputs.
      batch_.clear_active();
      fresh = cache_.batch_stage(*circuit_, x,
                                 ctx.integrator != Integrator::kNone);
      const std::size_t blocks = batch_.eval();
      if (blocks != 0) {
        cache_.batch_evals += 1;
        cache_.batch_blocks += blocks;
        cache_.batch_lanes += fresh;
      }
      assemble_sparse(*circuit_, *plan_, x, ctx, values_, f_, new_state,
                      &cache_);
    } else {
      fresh = assemble_sparse(*circuit_, *plan_, x, ctx, values_, f_,
                              new_state, cache_.enabled() ? &cache_ : nullptr);
    }
    // The Jacobian depends on the device linearizations plus the gmin and
    // companion-model coefficients; sources and ctx.time only move the
    // residual.  Unchanged on both counts => bit-identical values => the
    // existing factorization is still exact.
    const bool coeffs_changed =
        !have_coeffs_ || ctx.gmin != last_gmin_ || ctx.h != last_h_ ||
        ctx.step_ratio != last_step_ratio_ || ctx.integrator != last_integrator_;
    if (fresh != 0 || coeffs_changed) jac_generation_ += 1;
    // The iterative-tier sticky disable is scoped to one coefficient
    // regime: Krylov conditioning is dominated by gmin / the companion
    // coefficients (a zero-start DC Jacobian that breaks BiCGStab says
    // nothing about the gmin-stepped or transient systems that follow).
    if (coeffs_changed && iterative_disabled_) {
      iterative_disabled_ = false;
      iter_failures_ = 0;
    }
    last_gmin_ = ctx.gmin;
    last_h_ = ctx.h;
    last_step_ratio_ = ctx.step_ratio;
    last_integrator_ = ctx.integrator;
    have_coeffs_ = true;
  } else {
    spice::assemble(*circuit_, x, ctx, jac_, f_, new_state);
    jac_generation_ += 1;
  }
}

void SolverWorkspace::ensure_lu_analyzed() {
  if (lu_analyzed_) return;
  StatTimer timer(stats_.factor_wall_s);
  lu_.analyze(plan_->size(), plan_->row_ptr(), plan_->col_idx());
  stats_.symbolic_analyses += 1;
  lu_analyzed_ = true;
}

bool SolverWorkspace::values_symmetric() const {
  if (!pattern_symmetric_) return false;
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  for (std::size_t p = 0; p < sym_slot_.size(); ++p) {
    const std::size_t q = sym_slot_[p];
    if (q == kNone) return false;
    if (q <= p) continue;  // each off-diagonal pair checked once
    const double a = values_[p], b = values_[q];
    if (std::fabs(a - b) > 1e-12 * (std::fabs(a) + std::fabs(b)))
      return false;
  }
  return true;
}

bool SolverWorkspace::try_iterative_solve(linalg::Vector& b) {
  // Preconditioner freshness follows the same generation discipline as
  // the direct reuse rung: rebuild iff the Jacobian values changed.
  if (!precond_ok_ || precond_generation_ != jac_generation_) {
    StatTimer timer(stats_.factor_wall_s);
    use_jacobi_ = false;
    bool ok = ilu0_.factorize(values_);
    if (!ok) {
      ok = jacobi_.factorize(values_);
      use_jacobi_ = ok;
    }
    if (!ok) {
      stats_.last_fallback = IterativeFallback::kPrecondFailed;
      precond_ok_ = false;
      return false;
    }
    stats_.precond_factorizations += 1;
    precond_ok_ = true;
    precond_generation_ = jac_generation_;
    if (iter_method_ == LinearSolver::kAuto)
      values_symmetric_ = values_symmetric();
  }
  const bool use_cg =
      iter_method_ == LinearSolver::kCg ||
      (iter_method_ == LinearSolver::kAuto && values_symmetric_);
  linalg::CsrView a{n_, &plan_->row_ptr(), &plan_->col_idx(), &values_};
  linalg::IterativeOptions io;
  io.rtol = iterative_rtol_;
  io.max_iterations = iterative_max_iterations_;
  const linalg::Preconditioner* m =
      use_jacobi_ ? static_cast<const linalg::Preconditioner*>(&jacobi_)
                  : &ilu0_;
  ensure(iter_x_, n_);
  std::fill(iter_x_.begin(), iter_x_.end(), 0.0);  // Newton dx guess: 0
  linalg::IterativeResult res;
  {
    StatTimer timer(stats_.solve_wall_s);
    res = use_cg ? krylov_.cg(a, m, b, iter_x_, io)
                 : krylov_.bicgstab(a, m, b, iter_x_, io);
  }
  stats_.iterative_iterations += static_cast<std::uint64_t>(res.iterations);
  if (!res.ok()) {
    stats_.last_fallback = fallback_reason(res.outcome);
    return false;
  }
  stats_.iterative_solves += 1;
  b = iter_x_;
  return true;
}

bool SolverWorkspace::factor_and_solve(linalg::Vector& b) {
  MIVTX_EXPECT(b.size() == n_, "solver workspace: rhs size mismatch");

  if (!sparse_) {
    {
      StatTimer timer(stats_.factor_wall_s);
      try {
        dense_lu_.emplace(jac_);
      } catch (const Error&) {
        return false;
      }
    }
    stats_.dense_solves += 1;
    StatTimer timer(stats_.solve_wall_s);
    dense_lu_->solve_in_place(b);
    return true;
  }

  if (iterative_ && !iterative_disabled_) {
    if (try_iterative_solve(b)) {
      iter_failures_ = 0;
      return true;
    }
    // Typed reason already recorded; reroute this solve (and, after
    // repeated failures, the rest of the workspace) to the direct ladder.
    stats_.iterative_fallbacks += 1;
    if (++iter_failures_ >= kIterativeDisableAfter)
      iterative_disabled_ = true;
  }
  ensure_lu_analyzed();

  const bool current = reuse_factorization_ && numeric_ok_ &&
                       lu_.factorized() &&
                       factored_generation_ == jac_generation_;
  if (current) {
    stats_.lu_reuses += 1;
  } else {
    bool ok = false;
    {
      StatTimer timer(stats_.factor_wall_s);
      if (numeric_ok_ && reuse_factorization_) {
        ok = lu_.refactorize(values_);
        if (ok) stats_.refactorizations += 1;
      }
      if (!ok) {
        ok = lu_.factorize(values_);
        if (ok) {
          stats_.full_factorizations += 1;
          numeric_ok_ = true;
        }
      }
    }
    if (!ok) {
      // Singular for the sparse pivoting: densify the same values and let
      // DenseLU have the final word, so the sparse core never converges
      // worse than the legacy dense path.  Rare, allowed to allocate —
      // but only at sizes where an n x n dense matrix is sane; at the
      // iterative tier's scales the densify alone would be gigabytes.
      numeric_ok_ = false;
      if (n_ > kDenseFallbackMaxUnknowns) return false;
      stats_.dense_fallbacks += 1;
      if (jac_.rows() != n_) jac_ = linalg::DenseMatrix(n_, n_);
      jac_.set_zero();
      const std::vector<std::size_t>& row_ptr = plan_->row_ptr();
      const std::vector<std::size_t>& col_idx = plan_->col_idx();
      for (std::size_t r = 0; r < n_; ++r)
        for (std::size_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p)
          jac_(r, col_idx[p]) = values_[p];
      {
        StatTimer timer(stats_.factor_wall_s);
        try {
          dense_lu_.emplace(jac_);
        } catch (const Error&) {
          return false;
        }
      }
      StatTimer timer(stats_.solve_wall_s);
      dense_lu_->solve_in_place(b);
      return true;
    }
    factored_generation_ = jac_generation_;
  }

  StatTimer timer(stats_.solve_wall_s);
  lu_.solve(b);
  return true;
}

void SolverWorkspace::invalidate() {
  cache_.invalidate();
  numeric_ok_ = false;
  have_coeffs_ = false;
  precond_ok_ = false;
  jac_generation_ += 1;
}

namespace {

// Fold the cache-local device counters into a stats block (the cache is
// written from the assembly inner loop, so the counters stay on it until
// snapshot/flush time).
void fold_cache(SolverStats& s, const MosfetCache& c) {
  s.device_evals += c.evals;
  s.device_bypasses += c.bypasses;
  s.device_evals_dc += c.evals_dc;
  s.device_evals_tran += c.evals_tran;
  s.device_bypasses_dc += c.bypasses_dc;
  s.device_bypasses_tran += c.bypasses_tran;
  s.device_batch_evals += c.batch_evals;
  s.device_batch_blocks += c.batch_blocks;
  s.device_batch_lanes += c.batch_lanes;
}

}  // namespace

SolverStats SolverWorkspace::stats_snapshot() const {
  SolverStats s = stats_;
  fold_cache(s, cache_);
  return s;
}

void SolverWorkspace::flush_metrics() {
  fold_cache(stats_, cache_);
  cache_.evals = 0;
  cache_.bypasses = 0;
  cache_.evals_dc = cache_.evals_tran = 0;
  cache_.bypasses_dc = cache_.bypasses_tran = 0;
  cache_.batch_evals = cache_.batch_blocks = cache_.batch_lanes = 0;

  runtime::Metrics& m = runtime::Metrics::global();
  const auto add = [&m](const char* name, std::uint64_t v) {
    if (v != 0) m.add(name, static_cast<double>(v));
  };
  add("spice.newton.iterations", stats_.newton_iterations);
  add("spice.assemblies", stats_.assemblies);
  add("spice.sparse.symbolic_analyses", stats_.symbolic_analyses);
  add("spice.sparse.full_factorizations", stats_.full_factorizations);
  add("spice.sparse.refactorizations", stats_.refactorizations);
  add("spice.sparse.lu_reuses", stats_.lu_reuses);
  add("spice.sparse.dense_fallbacks", stats_.dense_fallbacks);
  add("spice.dense.solves", stats_.dense_solves);
  add("spice.iterative.solves", stats_.iterative_solves);
  add("spice.iterative.iterations", stats_.iterative_iterations);
  add("spice.iterative.precond_factorizations",
      stats_.precond_factorizations);
  add("spice.iterative.fallbacks", stats_.iterative_fallbacks);
  add("spice.device.evals", stats_.device_evals);
  add("spice.device.bypasses", stats_.device_bypasses);
  add("spice.device.evals.dc", stats_.device_evals_dc);
  add("spice.device.evals.tran", stats_.device_evals_tran);
  add("spice.device.bypasses.dc", stats_.device_bypasses_dc);
  add("spice.device.bypasses.tran", stats_.device_bypasses_tran);
  add("spice.device.batch.evals", stats_.device_batch_evals);
  add("spice.device.batch.blocks", stats_.device_batch_blocks);
  add("spice.device.batch.lanes", stats_.device_batch_lanes);
  add("spice.workspace.allocations", stats_.workspace_allocations);
  if (stats_.assemblies != 0)
    m.record_time("spice.assemble", stats_.assemble_wall_s,
                  stats_.assemble_wall_s);
  if (stats_.full_factorizations + stats_.refactorizations +
          stats_.dense_fallbacks + stats_.dense_solves !=
      0)
    m.record_time("spice.factor", stats_.factor_wall_s, stats_.factor_wall_s);
  m.record_time("spice.solve", stats_.solve_wall_s, stats_.solve_wall_s);
  stats_ = SolverStats{};
}

void annotate_span(trace::Span& span, const SolverStats& since,
                   const SolverStats& now) {
  if (!span.active()) return;
  const auto delta = [](std::uint64_t a, std::uint64_t b) {
    return static_cast<double>(b - a);
  };
  span.annotate("newton_iters",
                delta(since.newton_iterations, now.newton_iterations));
  span.annotate("assemblies", delta(since.assemblies, now.assemblies));
  span.annotate("factorizations",
                delta(since.full_factorizations, now.full_factorizations));
  span.annotate("refactorizations",
                delta(since.refactorizations, now.refactorizations));
  span.annotate("lu_reuses", delta(since.lu_reuses, now.lu_reuses));
  span.annotate("device_bypasses",
                delta(since.device_bypasses, now.device_bypasses));
  if (now.iterative_solves != since.iterative_solves)
    span.annotate("iterative_solves",
                  delta(since.iterative_solves, now.iterative_solves));
  if (now.iterative_fallbacks != since.iterative_fallbacks)
    span.annotate("iterative_fallbacks",
                  delta(since.iterative_fallbacks, now.iterative_fallbacks));
}

}  // namespace mivtx::spice
