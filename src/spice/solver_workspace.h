// Reusable solver state for the sparse-first MNA core.
//
// A SolverWorkspace is built once per Circuit (topology) and threaded
// through solve_newton / dc_operating_point / dc_sweep / transient.  It
// owns everything the inner loops need so the steady-state Newton loop
// performs no heap allocations:
//
//   - the AssemblyPlan (CSR pattern + stamp->slot maps), computed once,
//   - the SparseLU with its symbolic analysis, reused across Newton
//     iterations, gmin/source continuation stages, sweep points, and
//     transient timesteps,
//   - the CSR value array, residual/rhs vectors, and the dense-fallback
//     matrix,
//   - the MOSFET terminal-voltage bypass cache,
//   - a local SolverStats block, flushed once to runtime::Metrics::global()
//     when the workspace dies (the Metrics registry is mutex-guarded and
//     must not be hit per Newton iteration).
//
// Backend selection: NewtonOptions::backend == kAuto picks the sparse core
// at or above sparse_min_unknowns and dense below it.  The sparse core
// additionally falls back to a dense factorization of the same values when
// a pivot fails (densify + DenseLU), so convergence behavior can only
// degrade to the legacy path, never below it.
//
// Factorization ladder per linear solve, cheapest first:
//   1. reuse   — the Jacobian is bit-identical to the one already factored
//                (zero fresh device evals, same integrator coefficients):
//                skip numeric work entirely.
//   2. refactorize — numeric-only replay of the recorded pivot sequence;
//                no DFS, no pivot search, no allocation.
//   3. factorize   — full Gilbert-Peierls with fresh partial pivoting
//                (first solve, or a pivot degraded past the replay bound).
//   4. dense fallback — densify the CSR values and run DenseLU (gated to
//                small systems; a 10k+-unknown densify would be gigabytes).
//
// Iterative tier (NewtonOptions::linear_solver, DESIGN.md §15): above the
// direct/iterative crossover the ladder is fronted by a preconditioned
// Krylov solve — ILU(0) (Jacobi when ILU(0) breaks down) rebuilt on the
// same jac_generation_ discipline as the reuse rung, then CG for
// symmetric values or BiCGStab in general.  A solve that converges never
// touches the LU; breakdown/stagnation/budget-miss records a typed
// reason in SolverStats and reroutes to the direct ladder (sticky after
// kIterativeDisableAfter consecutive failures).
#pragma once

#include <cstdint>
#include <optional>

#include "bsimsoi/batch.h"
#include "linalg/dense.h"
#include "linalg/krylov.h"
#include "linalg/sparse_lu.h"
#include "spice/assembly_plan.h"
#include "spice/dcop.h"
#include "spice/mna.h"
#include "trace/trace.h"

namespace mivtx::spice {

// Why an iterative solve rerouted to the direct LU ladder.
enum class IterativeFallback : std::uint8_t {
  kNone,           // no fallback has happened
  kPrecondFailed,  // ILU(0) and Jacobi both failed to factorize
  kBreakdown,      // Krylov recurrence collapsed (see linalg::IterativeOutcome)
  kStagnation,     // residual stopped improving
  kMaxIterations,  // iteration budget exhausted short of the tolerance
};
const char* to_string(IterativeFallback f);

// Locally accumulated counters/timers; see flush_metrics() for the
// runtime::Metrics names they publish under.
struct SolverStats {
  std::uint64_t newton_iterations = 0;
  std::uint64_t assemblies = 0;
  std::uint64_t symbolic_analyses = 0;
  std::uint64_t full_factorizations = 0;
  std::uint64_t refactorizations = 0;
  std::uint64_t lu_reuses = 0;
  std::uint64_t dense_fallbacks = 0;
  std::uint64_t dense_solves = 0;  // dense-backend factor+solve calls
  std::uint64_t device_evals = 0;
  std::uint64_t device_bypasses = 0;
  // Per-analysis-kind split of the device counters (dc covers all static
  // assemblies, tran the companion-model ones); the totals above remain
  // the sums.  Batch lanes/blocks measure SIMD lane occupancy.
  std::uint64_t device_evals_dc = 0;
  std::uint64_t device_evals_tran = 0;
  std::uint64_t device_bypasses_dc = 0;
  std::uint64_t device_bypasses_tran = 0;
  std::uint64_t device_batch_evals = 0;   // kernel passes
  std::uint64_t device_batch_blocks = 0;  // kLaneWidth-wide blocks
  std::uint64_t device_batch_lanes = 0;   // real instances in those blocks
  // Iterative (Krylov) tier: converged solves, total Krylov iterations,
  // preconditioner numeric builds, and reroutes to the direct ladder with
  // the reason of the most recent one.
  std::uint64_t iterative_solves = 0;
  std::uint64_t iterative_iterations = 0;
  std::uint64_t precond_factorizations = 0;
  std::uint64_t iterative_fallbacks = 0;
  IterativeFallback last_fallback = IterativeFallback::kNone;
  // Workspace-owned buffer growth events.  After the first Newton
  // iteration on a given circuit every buffer has reached steady-state
  // size, so this counter must stay flat across the rest of the loop —
  // solve_newton asserts exactly that in debug builds.
  std::uint64_t workspace_allocations = 0;

  // Wall-clock totals per stage (single-threaded sections, so CPU time
  // would read the same; see StatTimer in solver_workspace.cpp).
  double assemble_wall_s = 0.0;
  double factor_wall_s = 0.0;
  double solve_wall_s = 0.0;
};

// Annotate `span` with the counter deltas between two stats snapshots.
void annotate_span(trace::Span& span, const SolverStats& since,
                   const SolverStats& now);

class SolverWorkspace {
 public:
  SolverWorkspace(const Circuit& circuit, const NewtonOptions& opts);
  ~SolverWorkspace();  // flushes stats to runtime::Metrics::global()

  SolverWorkspace(const SolverWorkspace&) = delete;
  SolverWorkspace& operator=(const SolverWorkspace&) = delete;

  bool sparse_backend() const { return sparse_; }
  std::size_t size() const { return n_; }
  const AssemblyPlan& plan() const;
  // Iterative tier selected for this workspace (by pin or by the kAuto
  // crossover at construction).
  bool iterative_tier() const { return iterative_; }
  // ...and still in use (false once consecutive failures stuck it to the
  // direct ladder).
  bool iterative_active() const { return iterative_ && !iterative_disabled_; }
  // True when MOSFETs evaluate through the batched SoA kernel (resolved
  // from NewtonOptions::device_eval at construction; sparse backend only).
  bool device_batching() const { return cache_.batch_mode(); }
  // Kernel level of the bound batch (meaningless unless device_batching()).
  bsimsoi::SimdLevel device_simd_level() const { return batch_.level(); }

  // Assemble residual f and Jacobian at x (into the CSR value array on the
  // sparse backend, the dense matrix otherwise).  Detects whether the
  // Jacobian actually changed since the last factorization — source values
  // and `ctx.time`/`ctx.source_scale` move only the residual, so a sweep
  // over a linear circuit factors exactly once.
  void assemble(const linalg::Vector& x, const AssemblyContext& ctx,
                DynamicState* new_state = nullptr);

  // Residual of the last assemble().
  linalg::Vector& f() { return f_; }
  // Scratch right-hand side, sized to the system (solve_newton builds
  // -f here and solves in place).
  linalg::Vector& rhs();

  // Factor the last assembled Jacobian (walking the reuse ladder above)
  // and solve J y = b in place.  Returns false when the system is singular
  // on every rung including the dense fallback.
  bool factor_and_solve(linalg::Vector& b);

  // Drop cached device evaluations and the factored-Jacobian identity
  // (used by tests; normal flows never need it — staleness is governed by
  // the bypass tolerance, not by call sequence).
  void invalidate();

  SolverStats& stats() { return stats_; }
  // Copy of the stats with the device-cache counters (held separately
  // until flush to keep the eval loop off the shared block) folded in.
  SolverStats stats_snapshot() const;
  // Publish the accumulated stats to runtime::Metrics::global() and zero
  // the local block.  Called by the destructor; call earlier to snapshot.
  void flush_metrics();

 private:
  void note_alloc() { stats_.workspace_allocations += 1; }
  // Grow-only resize that counts real reallocations.
  void ensure(linalg::Vector& v, std::size_t size);
  // Lazy symbolic analysis for the direct ladder (the iterative tier
  // skips it at construction; first direct fallback pays it here).
  void ensure_lu_analyzed();
  // One preconditioned Krylov solve of J y = b (y replaces b on success).
  // false leaves b untouched and stats_.last_fallback set.
  bool try_iterative_solve(linalg::Vector& b);
  bool values_symmetric() const;

  const Circuit* circuit_ = nullptr;  // topology the plan was built for
  std::size_t n_ = 0;
  bool sparse_ = false;
  // NewtonOptions::reuse_factorization: false forces a full factorize on
  // every solve (ladder rungs 1-2 disabled; verification builds use this).
  bool reuse_factorization_ = true;

  std::optional<AssemblyPlan> plan_;
  linalg::SparseLU lu_;
  std::vector<double> values_;    // CSR Jacobian values (sparse backend)
  linalg::DenseMatrix jac_;       // dense backend / fallback target
  linalg::Vector f_, rhs_;
  std::optional<linalg::DenseLU> dense_lu_;
  MosfetCache cache_;
  bsimsoi::DeviceBatch batch_;  // bound iff device batching is active

  // Jacobian identity tracking for the reuse rung: generation bumps
  // whenever an assemble produced different Jacobian values than the one
  // last handed to the factorizer.
  std::uint64_t jac_generation_ = 0;
  std::uint64_t factored_generation_ = 0;
  bool numeric_ok_ = false;  // last full factorize() succeeded
  bool have_coeffs_ = false;
  double last_gmin_ = 0.0, last_h_ = 0.0, last_step_ratio_ = 0.0;
  Integrator last_integrator_ = Integrator::kNone;

  // Iterative (Krylov) tier state; see class comment and DESIGN.md §15.
  bool iterative_ = false;
  bool iterative_disabled_ = false;
  int iter_failures_ = 0;  // consecutive; reset by any converged solve
  LinearSolver iter_method_ = LinearSolver::kAuto;  // kCg/kBicgstab pin
  bool lu_analyzed_ = false;
  double iterative_rtol_ = 1e-10;
  int iterative_max_iterations_ = 500;
  bool pattern_symmetric_ = false;
  bool values_symmetric_ = false;      // refreshed per preconditioner build
  std::vector<std::size_t> sym_slot_;  // CSR slot -> transpose slot
  linalg::Ilu0Preconditioner ilu0_;
  linalg::JacobiPreconditioner jacobi_;
  bool use_jacobi_ = false;  // ILU(0) broke down for this generation
  std::uint64_t precond_generation_ = 0;
  bool precond_ok_ = false;
  linalg::KrylovSolver krylov_;
  linalg::Vector iter_x_;

  SolverStats stats_;
};

// RAII: snapshot the workspace's stats at construction and annotate the
// span with the deltas at destruction.  Declare AFTER both the Span and
// the workspace so the annotations land before the span closes.
class StatsToSpan {
 public:
  StatsToSpan(trace::Span& span, const SolverWorkspace& ws)
      : span_(span), ws_(ws) {
    if (span_.active()) at_open_ = ws_.stats_snapshot();
  }
  ~StatsToSpan() {
    if (span_.active()) annotate_span(span_, at_open_, ws_.stats_snapshot());
  }
  StatsToSpan(const StatsToSpan&) = delete;
  StatsToSpan& operator=(const StatsToSpan&) = delete;

 private:
  trace::Span& span_;
  const SolverWorkspace& ws_;
  SolverStats at_open_;
};

}  // namespace mivtx::spice
