#include "spice/source.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mivtx::spice {

SourceSpec SourceSpec::DC(double v) {
  SourceSpec s;
  s.kind = SourceKind::kDc;
  s.dc = v;
  return s;
}

SourceSpec SourceSpec::Pulse(const PulseSpec& p) {
  SourceSpec s;
  s.kind = SourceKind::kPulse;
  s.pulse = p;
  MIVTX_EXPECT(p.rise > 0.0 && p.fall > 0.0, "pulse edges must be positive");
  return s;
}

SourceSpec SourceSpec::Pwl(std::vector<std::pair<double, double>> points) {
  SourceSpec s;
  s.kind = SourceKind::kPwl;
  MIVTX_EXPECT(!points.empty(), "PWL needs at least one point");
  for (std::size_t i = 1; i < points.size(); ++i)
    MIVTX_EXPECT(points[i].first > points[i - 1].first,
                 "PWL times must increase");
  s.pwl = std::move(points);
  return s;
}

SourceSpec SourceSpec::Sin(double offset, double amplitude, double freq) {
  SourceSpec s;
  s.kind = SourceKind::kSin;
  s.sin_offset = offset;
  s.sin_amplitude = amplitude;
  s.sin_freq = freq;
  return s;
}

namespace {
double pulse_value(const PulseSpec& p, double t) {
  if (t < p.delay) return p.v1;
  double tl = t - p.delay;
  if (p.period > 0.0) tl = std::fmod(tl, p.period);
  if (tl < p.rise) return p.v1 + (p.v2 - p.v1) * (tl / p.rise);
  tl -= p.rise;
  if (tl < p.width) return p.v2;
  tl -= p.width;
  if (tl < p.fall) return p.v2 + (p.v1 - p.v2) * (tl / p.fall);
  return p.v1;
}
}  // namespace

double SourceSpec::value(double t) const {
  t = std::max(t, 0.0);
  switch (kind) {
    case SourceKind::kDc:
      return dc;
    case SourceKind::kPulse:
      return pulse_value(pulse, t);
    case SourceKind::kPwl: {
      if (t <= pwl.front().first) return pwl.front().second;
      if (t >= pwl.back().first) return pwl.back().second;
      const auto it = std::upper_bound(
          pwl.begin(), pwl.end(), t,
          [](double tt, const auto& pt) { return tt < pt.first; });
      const auto& hi = *it;
      const auto& lo = *(it - 1);
      const double f = (t - lo.first) / (hi.first - lo.first);
      return lo.second + f * (hi.second - lo.second);
    }
    case SourceKind::kSin:
      return sin_offset + sin_amplitude * std::sin(2.0 * M_PI * sin_freq * t);
  }
  MIVTX_FAIL("unknown source kind");
}

void SourceSpec::collect_breakpoints(double t_stop,
                                     std::vector<double>& out) const {
  switch (kind) {
    case SourceKind::kDc:
      return;
    case SourceKind::kPulse: {
      const PulseSpec& p = pulse;
      const double cycle = p.period > 0.0 ? p.period : t_stop + 1.0;
      for (double base = p.delay; base <= t_stop; base += cycle) {
        const double corners[4] = {base, base + p.rise, base + p.rise + p.width,
                                   base + p.rise + p.width + p.fall};
        for (double c : corners) {
          if (c > 0.0 && c <= t_stop) out.push_back(c);
        }
        if (p.period <= 0.0) break;
      }
      return;
    }
    case SourceKind::kPwl:
      for (const auto& [t, v] : pwl) {
        if (t > 0.0 && t <= t_stop) out.push_back(t);
      }
      return;
    case SourceKind::kSin:
      return;  // smooth
  }
}

}  // namespace mivtx::spice
