// Independent-source waveform specifications (DC / PULSE / PWL / SIN),
// shared by voltage and current sources.
#pragma once

#include <vector>

namespace mivtx::spice {

enum class SourceKind { kDc, kPulse, kPwl, kSin };

struct PulseSpec {
  double v1 = 0.0;      // initial value
  double v2 = 0.0;      // pulsed value
  double delay = 0.0;   // td
  double rise = 1e-12;  // tr
  double fall = 1e-12;  // tf
  double width = 1e-9;  // pw
  double period = 0.0;  // per; 0 => single pulse
};

struct SourceSpec {
  SourceKind kind = SourceKind::kDc;
  double dc = 0.0;
  PulseSpec pulse;
  std::vector<std::pair<double, double>> pwl;  // (time, value), sorted
  // SIN(vo va freq)
  double sin_offset = 0.0, sin_amplitude = 0.0, sin_freq = 0.0;

  static SourceSpec DC(double v);
  static SourceSpec Pulse(const PulseSpec& p);
  static SourceSpec Pwl(std::vector<std::pair<double, double>> points);
  static SourceSpec Sin(double offset, double amplitude, double freq);

  // Instantaneous value at time t (t < 0 treated as t = 0).
  double value(double t) const;
  // Value used for the DC operating point (t = 0 semantics).
  double dc_value() const { return value(0.0); }
  // Times where the waveform has slope discontinuities; the transient
  // engine forces steps onto these so edges are never straddled.
  void collect_breakpoints(double t_stop, std::vector<double>& out) const;
};

}  // namespace mivtx::spice
