#include "spice/transient.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.h"
#include "common/strings.h"
#include "common/log.h"
#include "linalg/vector_ops.h"
#include "spice/solver_workspace.h"

namespace mivtx::spice {

const waveform::Waveform& TransientResult::v(const std::string& node) const {
  const auto it = node_voltage.find(node);
  MIVTX_EXPECT(it != node_voltage.end(), "no waveform for node " + node);
  return it->second;
}

const waveform::Waveform& TransientResult::i(
    const std::string& vsource) const {
  const auto it = branch_current.find(vsource);
  MIVTX_EXPECT(it != branch_current.end(),
               "no waveform for source " + vsource);
  return it->second;
}

std::vector<double> transient_breakpoints(const Circuit& circuit,
                                          double t_stop) {
  std::vector<double> bp;
  for (const Element& e : circuit.elements()) {
    if (e.kind == ElementKind::kVoltageSource ||
        e.kind == ElementKind::kCurrentSource) {
      e.source.collect_breakpoints(t_stop, bp);
    }
  }
  bp.push_back(t_stop);
  coalesce_breakpoints(bp);
  return bp;
}

double breakpoint_tol(double t) {
  return std::max(1e-18,
                  8.0 * std::numeric_limits<double>::epsilon() * std::fabs(t));
}

void coalesce_breakpoints(std::vector<double>& bp) {
  std::sort(bp.begin(), bp.end());
  std::size_t out = 0;
  for (std::size_t i = 0; i < bp.size();) {
    std::size_t j = i;
    while (j + 1 < bp.size() && bp[j + 1] - bp[i] <= breakpoint_tol(bp[j + 1]))
      ++j;
    bp[out++] = bp[j];
    i = j + 1;
  }
  bp.resize(out);
}

namespace {

// A recording target resolved once before the time loop: the unknown
// index and the waveform it feeds.  Replaces a string-keyed map lookup
// per node per accepted step (std::map nodes are pointer-stable, so the
// handles survive later insertions).
struct RecordSlot {
  std::size_t unknown;
  waveform::Waveform* wave;
};

}  // namespace

TransientResult transient(const Circuit& circuit,
                          const TransientOptions& opts) {
  TransientResult out;
  const std::size_t n = circuit.system_size();
  const std::size_t num_v = circuit.num_nodes() - 1;

  const double h_max = opts.h_max > 0.0 ? opts.h_max : opts.t_stop / 50.0;

  // One workspace for the whole run: the t=0 operating point, every
  // Newton corrector, and every accept-step assembly share the assembly
  // plan, the LU symbolic analysis, and the device-bypass cache.
  trace::Span span("spice.transient", "spice");
  SolverWorkspace ws(circuit, opts.newton);
  StatsToSpan stats_guard(span, ws);

  // --- t = 0 operating point --------------------------------------------
  const DcResult dc = dc_operating_point(circuit, opts.newton, ws);
  if (!dc.converged) {
    if (!dc.lint.empty()) {
      out.lint = dc.lint;
      std::string rules;
      for (const lint::Diagnostic& d : dc.lint) {
        if (d.severity != lint::Severity::kError) continue;
        if (!rules.empty()) rules += ", ";
        rules += d.rule;
      }
      out.error = "pre-solve lint failed: " + rules;
    } else {
      out.error = "DC operating point failed";
    }
    return out;
  }
  out.newton_iterations += static_cast<std::size_t>(dc.total_iterations);

  linalg::Vector x = dc.x;       // solution at current time
  linalg::Vector x_prev = x;     // solution one step back
  double h_prev = 0.0;

  DynamicState state;            // charges/currents at current time
  evaluate_charges(circuit, x, state);
  state.iq.assign(state.q.size(), 0.0);
  DynamicState state_prev = state;  // one step further back (BDF2 history)
  DynamicState new_state;           // accept-step scratch, rotated by swap

  const std::vector<double> breakpoints =
      transient_breakpoints(circuit, opts.t_stop);
  std::size_t next_bp = 0;

  // --- Recording -----------------------------------------------------------
  // Bind waveform handles and unknown indices once; the per-step recorder
  // is then two flat array walks with no map lookups or string hashing.
  std::vector<RecordSlot> rec;
  rec.reserve(static_cast<std::size_t>(num_v));
  for (NodeId node = 1; node < circuit.num_nodes(); ++node) {
    rec.push_back({circuit.node_unknown(node),
                   &out.node_voltage[circuit.node_name(node)]});
  }
  for (const Element& e : circuit.elements()) {
    if (e.kind == ElementKind::kVoltageSource) {
      rec.push_back({circuit.branch_unknown(e), &out.branch_current[e.name]});
    }
  }
  auto record = [&rec](double t, const linalg::Vector& sol) {
    for (const RecordSlot& slot : rec) slot.wave->append(t, sol[slot.unknown]);
  };
  record(0.0, x);

  double t = 0.0;
  double h = std::min(h_max, opts.t_stop) / 100.0;
  bool first_step = true;

  AssemblyContext ctx;
  ctx.gmin = 1e-12;

  // Hoisted corrector buffers; same size every step, so the loop body
  // performs no per-step vector allocations.
  linalg::Vector x_pred(n, 0.0);
  linalg::Vector x_new(n, 0.0);
  // Startup-step LTE scratch (step-doubling; see below).
  linalg::Vector x_half(n, 0.0);
  linalg::Vector x_two(n, 0.0);
  DynamicState state_half;

  while (t < opts.t_stop - breakpoint_tol(opts.t_stop)) {
    if (out.accepted_steps + out.rejected_steps > opts.max_steps) {
      out.error = "step budget exhausted";
      return out;
    }
    // Land exactly on the next breakpoint.  Skip-past and landing compare
    // with breakpoint_tol(t): the landing step `t += (bp - t)` can leave t
    // an ULP shy of bp, and beyond a few ms one ULP exceeds any absolute
    // epsilon — the stale breakpoint would then force a ~0-length step
    // under h_min.
    while (next_bp < breakpoints.size() &&
           breakpoints[next_bp] <= t + breakpoint_tol(t))
      ++next_bp;
    double h_eff = std::min(h, h_max);
    bool hit_bp = false;
    if (next_bp < breakpoints.size() &&
        t + h_eff >= breakpoints[next_bp] - breakpoint_tol(t)) {
      h_eff = breakpoints[next_bp] - t;
      hit_bp = true;
    }
    if (h_eff < opts.h_min) {
      out.error = format("time step underflow at t=%.6e", t);
      return out;
    }

    // Predictor: linear extrapolation from the last two points.
    x_pred = x;
    if (!first_step && h_prev > 0.0) {
      for (std::size_t i = 0; i < n; ++i)
        x_pred[i] = x[i] + (x[i] - x_prev[i]) * (h_eff / h_prev);
    }

    ctx.time = t + h_eff;
    ctx.h = h_eff;
    ctx.prev = &state;
    ctx.prev2 = &state_prev;
    ctx.step_ratio = h_prev > 0.0 ? h_eff / h_prev : 1.0;
    // BDF2 needs two valid history points; fall back to backward Euler on
    // the first step and right after every source corner.
    ctx.integrator =
        first_step ? Integrator::kBackwardEuler : Integrator::kBdf2;

    x_new = x_pred;
    // The corrector fills new_state at its converged point (during the
    // convergence-recheck assembly), so accepting a step needs no further
    // assembly.
    const NewtonResult nr =
        solve_newton(circuit, ctx, x_new, opts.newton, ws, &new_state);
    out.newton_iterations += static_cast<std::size_t>(nr.iterations);

    if (!nr.converged) {
      MIVTX_DEBUG << "transient newton failed at t=" << ctx.time
                  << " h=" << h_eff << " res=" << nr.residual_norm
                  << " iters=" << nr.iterations;
      out.rejected_steps += 1;
      h = h_eff * 0.25;
      continue;
    }

    // LTE estimate (voltage unknowns only).  Steady steps use the
    // corrector-predictor gap; startup steps (t = 0 and the first step
    // after every source corner) have no valid predictor history, so they
    // estimate the backward-Euler truncation error by step doubling —
    // re-integrating the step as two h/2 BE steps and Richardson-comparing
    // the endpoints.  Without this the post-corner step was accepted blind
    // and the controller then grew h by the full 2.0x with err_ratio == 0.
    double err_ratio = 0.0;
    std::size_t worst = 0;
    bool have_lte = false;
    if (!first_step && h_prev > 0.0) {
      have_lte = true;
      for (std::size_t i = 0; i < num_v; ++i) {
        const double lte = std::fabs(x_new[i] - x_pred[i]) / 3.0;
        const double tol = opts.abstol_v + opts.reltol * std::fabs(x_new[i]);
        if (lte / tol > err_ratio) {
          err_ratio = lte / tol;
          worst = i;
        }
      }
    } else {
      // Two h/2 backward-Euler sub-steps from the same starting state.
      // Costs ~2 Newton solves per source corner; both seeds interpolate
      // the already-converged full step, so they converge in a few
      // iterations.  The accepted state (new_state) stays the full step's.
      ctx.h = 0.5 * h_eff;
      ctx.time = t + 0.5 * h_eff;
      for (std::size_t i = 0; i < n; ++i)
        x_half[i] = 0.5 * (x[i] + x_new[i]);
      const NewtonResult r1 =
          solve_newton(circuit, ctx, x_half, opts.newton, ws, &state_half);
      out.newton_iterations += static_cast<std::size_t>(r1.iterations);
      if (r1.converged) {
        ctx.time = t + h_eff;
        ctx.prev = &state_half;
        x_two = x_new;
        const NewtonResult r2 =
            solve_newton(circuit, ctx, x_two, opts.newton, ws);
        out.newton_iterations += static_cast<std::size_t>(r2.iterations);
        if (r2.converged) {
          have_lte = true;
          for (std::size_t i = 0; i < num_v; ++i) {
            // Richardson: err(x_h) ~ 2 (x_h - x_{h/2,h/2}) for order 1.
            const double lte = 2.0 * std::fabs(x_new[i] - x_two[i]);
            const double tol =
                opts.abstol_v + opts.reltol * std::fabs(x_new[i]);
            if (lte / tol > err_ratio) {
              err_ratio = lte / tol;
              worst = i;
            }
          }
        }
      }
      ctx.h = h_eff;  // restore the full-step context
      ctx.time = t + h_eff;
      ctx.prev = &state;
    }
    if (err_ratio > 4.0 && h_eff > 4.0 * opts.h_min) {
      if (log_level() <= LogLevel::kDebug) {
        DynamicState check;
        evaluate_charges(circuit, x, check);
        double dq = 0.0;
        for (std::size_t k = 0; k < check.q.size(); ++k)
          dq = std::max(dq, std::fabs(check.q[k] - state.q[k]));
        MIVTX_DEBUG << "transient LTE reject at t=" << ctx.time
                    << " h=" << h_eff << " err_ratio=" << err_ratio
                    << " worst_node=" << circuit.unknown_name(worst)
                    << " pred=" << x_pred[worst] << " new=" << x_new[worst]
                    << " q_consistency=" << dq;
      }
      out.rejected_steps += 1;
      h = h_eff * 0.5;
      continue;
    }

    // Accept the step.
    MIVTX_DEBUG << "accept t=" << ctx.time << " h=" << h_eff
                << " err=" << err_ratio << " integ="
                << (ctx.integrator == Integrator::kBdf2 ? "bdf2" : "be");
    std::swap(x_prev, x);
    std::swap(x, x_new);
    h_prev = h_eff;
    std::swap(state_prev, state);
    std::swap(state, new_state);
    t += h_eff;
    out.accepted_steps += 1;
    record(t, x);
    first_step = false;

    // Step-size controller.  Growth is gated on having an actual error
    // estimate: if the startup step-doubling failed to converge, hold h
    // instead of growing blind.
    double grow = 2.0;
    if (err_ratio > 1e-12)
      grow = std::clamp(0.9 / std::cbrt(err_ratio), 0.3, 2.0);
    if (!have_lte) grow = 1.0;
    h = h_eff * grow;
    if (hit_bp) {
      // Restart small after a slope discontinuity.
      h = std::min(h, h_max / 100.0);
      first_step = true;  // BE startup after the corner
    }
  }

  out.ok = true;
  return out;
}

}  // namespace mivtx::spice
