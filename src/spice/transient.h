// Adaptive transient analysis.
//
// Method: DC operating point at t=0, one backward-Euler startup step, then
// trapezoidal integration with a predictor-based local-truncation-error
// controller.  Source slope discontinuities (pulse/PWL corners) are
// breakpoints the stepper always lands on exactly.
#pragma once

#include <map>
#include <string>

#include "spice/circuit.h"
#include "spice/dcop.h"
#include "waveform/waveform.h"

namespace mivtx::spice {

struct TransientOptions {
  double t_stop = 1e-9;
  double h_max = 0.0;     // 0 => t_stop / 50
  double h_min = 1e-18;
  double reltol = 1e-4;   // LTE control, relative
  double abstol_v = 1e-6;  // LTE control, absolute (V)
  NewtonOptions newton;
  std::size_t max_steps = 2'000'000;
};

struct TransientResult {
  bool ok = false;
  std::string error;
  // Pre-solve findings when the run was rejected by the lint gate (the
  // t=0 operating point runs lint::check_solvable; see NewtonOptions).
  std::vector<lint::Diagnostic> lint;
  std::size_t accepted_steps = 0;
  std::size_t rejected_steps = 0;
  std::size_t newton_iterations = 0;

  // Node voltage waveforms keyed by node name; branch current waveforms
  // keyed by voltage-source element name.
  std::map<std::string, waveform::Waveform> node_voltage;
  std::map<std::string, waveform::Waveform> branch_current;

  const waveform::Waveform& v(const std::string& node) const;
  const waveform::Waveform& i(const std::string& vsource) const;
};

TransientResult transient(const Circuit& circuit,
                          const TransientOptions& opts);

// Source-slope breakpoints of every independent source up to t_stop
// (sorted, coalesced, t_stop appended).  The adaptive stepper lands on
// these exactly; the lane-packed corner engine (spice/corner.h) steps on
// the union across its lanes.
std::vector<double> transient_breakpoints(const Circuit& circuit,
                                          double t_stop);

// Tolerance under which two times count as the same stepping event: an
// absolute floor of 1e-18 s near t=0 widening to a few ULP of t beyond
// ~0.1 ms.  A purely absolute epsilon breaks at large t — one ULP of 4 ms
// is already ~9e-19 s, so breakpoints that differ only by accumulated
// round-off (e.g. per-lane `delay + period * k` sums in the corner
// engine's breakpoint union) would survive dedup and force a sub-h_min
// landing step.  Both steppers use this for coalescing, skip-past, and
// landing checks.
double breakpoint_tol(double t);

// Sort and coalesce: clusters closer than breakpoint_tol collapse to
// their largest member, so a landing step covers every alias of the
// event.  Cluster growth is anchored at the first member, which bounds
// how far chained near-duplicates can drift.
void coalesce_breakpoints(std::vector<double>& bp);

}  // namespace mivtx::spice
