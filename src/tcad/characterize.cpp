#include "tcad/characterize.h"

#include <cmath>

#include "common/error.h"
#include "linalg/vector_ops.h"

namespace mivtx::tcad {

double Characterizer::polarity_sign() const {
  return sim_.structure().spec.polarity == Polarity::kNmos ? 1.0 : -1.0;
}

Curve Characterizer::id_vg(double vds_mag, const std::vector<double>& vg_mags) {
  const double s = polarity_sign();
  Curve out;
  out.reserve(vg_mags.size());
  sim_.reset();
  for (double vg : vg_mags) {
    const Solution& sol = sim_.solve(BiasPoint{s * vg, s * vds_mag});
    out.push_back(CurvePoint{vg, std::fabs(sim_.drain_current(sol))});
  }
  return out;
}

Curve Characterizer::id_vd(double vgs_mag, const std::vector<double>& vd_mags) {
  const double s = polarity_sign();
  Curve out;
  out.reserve(vd_mags.size());
  sim_.reset();
  for (double vd : vd_mags) {
    const Solution& sol = sim_.solve(BiasPoint{s * vgs_mag, s * vd});
    out.push_back(CurvePoint{vd, std::fabs(sim_.drain_current(sol))});
  }
  return out;
}

Curve Characterizer::cgg_vg(double vds_mag, const std::vector<double>& vg_mags,
                            double dv) {
  MIVTX_EXPECT(dv > 0.0, "cgg_vg needs a positive dv");
  const double s = polarity_sign();
  Curve out;
  out.reserve(vg_mags.size());
  sim_.reset();
  for (double vg : vg_mags) {
    const Solution lo = sim_.solve(BiasPoint{s * (vg - dv), s * vds_mag});
    const double q_lo = sim_.gate_charge(lo);
    const Solution hi = sim_.solve(BiasPoint{s * (vg + dv), s * vds_mag});
    const double q_hi = sim_.gate_charge(hi);
    // dQg/dVg at the actual (signed) biases: both charge and voltage mirror
    // for PMOS, so the signed step is s * dv.
    out.push_back(CurvePoint{vg, (q_hi - q_lo) / (2.0 * s * dv)});
  }
  return out;
}

double Characterizer::ion(double vdd) {
  const double s = polarity_sign();
  sim_.reset();
  const Solution& sol = sim_.solve(BiasPoint{s * vdd, s * vdd});
  return std::fabs(sim_.drain_current(sol));
}

double Characterizer::ioff(double vdd) {
  const double s = polarity_sign();
  sim_.reset();
  const Solution& sol = sim_.solve(BiasPoint{0.0, s * vdd});
  return std::fabs(sim_.drain_current(sol));
}

double Characterizer::vth_cc(double vdd) {
  const DeviceSpec& spec = sim_.structure().spec;
  const double i_crit = 100e-9 * spec.w_total / spec.l_gate;
  const auto vgs = linalg::linspace(0.0, vdd, 41);
  const Curve c = id_vg(0.05, vgs);
  for (std::size_t k = 1; k < c.size(); ++k) {
    if (c[k - 1].y < i_crit && c[k].y >= i_crit) {
      const double f = (std::log(i_crit) - std::log(c[k - 1].y)) /
                       (std::log(c[k].y) - std::log(c[k - 1].y));
      return c[k - 1].x + f * (c[k].x - c[k - 1].x);
    }
  }
  return c.back().y >= i_crit ? c.back().x : vdd;
}

}  // namespace mivtx::tcad
