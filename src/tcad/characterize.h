// Characterization sweeps over a TCAD device — the "measured" curves the
// extraction flow fits compact-model cards against.
//
// All voltages here are magnitudes; for PMOS devices the characterizer
// applies negative biases internally and reports |Id| / Cgg, mirroring how
// the compact-model sweeps in bsimsoi/curves.h behave.
#pragma once

#include "common/curve.h"
#include "tcad/solver.h"

namespace mivtx::tcad {

class Characterizer {
 public:
  explicit Characterizer(DeviceSimulator& sim) : sim_(sim) {}

  // |Id| vs Vg at fixed |Vds|.
  Curve id_vg(double vds_mag, const std::vector<double>& vg_mags);
  // |Id| vs Vd at fixed |Vgs|.
  Curve id_vd(double vgs_mag, const std::vector<double>& vd_mags);
  // Quasi-static Cgg = dQg/dVg vs Vg at fixed |Vds|, centered differences
  // with step `dv`.
  Curve cgg_vg(double vds_mag, const std::vector<double>& vg_mags,
               double dv = 5e-3);

  // Point metrics used in reports.
  double ion(double vdd);   // |Id| at Vg = Vd = vdd
  double ioff(double vdd);  // |Id| at Vg = 0, Vd = vdd
  // Constant-current threshold: Vg where |Id| crosses 100 nA * W/L at
  // |Vds| = 50 mV (linear interpolation on a fine Vg sweep).
  double vth_cc(double vdd);

 private:
  double polarity_sign() const;
  DeviceSimulator& sim_;
};

}  // namespace mivtx::tcad
