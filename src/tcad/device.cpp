#include "tcad/device.h"

#include <cmath>

#include "common/error.h"

namespace mivtx::tcad {

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kTraditional:
      return "Traditional";
    case Variant::kMiv1Channel:
      return "1-channel";
    case Variant::kMiv2Channel:
      return "2-channel";
    case Variant::kMiv4Channel:
      return "4-channel";
  }
  return "?";
}

int variant_channels(Variant v) {
  switch (v) {
    case Variant::kTraditional:
    case Variant::kMiv1Channel:
      return 1;
    case Variant::kMiv2Channel:
      return 2;
    case Variant::kMiv4Channel:
      return 4;
  }
  return 1;
}

DeviceSpec DeviceSpec::for_variant(Variant v, Polarity p) {
  DeviceSpec spec;
  spec.variant = v;
  spec.polarity = p;
  // MIV-stem gating: the via couples into the film beside the channel, so
  // all MIV variants gain a weak second gate (coverage 0.30 of the channel
  // span).  Narrower per-channel active regions pay an increasing
  // edge-scattering mobility penalty (192 / 96 / 48 nm channels).
  switch (v) {
    case Variant::kTraditional:
      spec.miv_coverage = 0.0;
      spec.mobility_factor = 1.0;
      break;
    case Variant::kMiv1Channel:
      spec.miv_coverage = 0.30;
      spec.mobility_factor = 1.00;
      break;
    case Variant::kMiv2Channel:
      spec.miv_coverage = 0.30;
      spec.mobility_factor = 0.97;
      break;
    case Variant::kMiv4Channel:
      spec.miv_coverage = 0.30;
      spec.mobility_factor = 0.74;
      break;
  }
  if (v != Variant::kTraditional) {
    // The 2-D cross-section extrudes the MIV side-gate across the whole
    // device width, but the physical pillar is only t_miv (25 nm) wide
    // against w_src (192 nm).  Thicken the liner dielectric by roughly the
    // inverse width fraction so the per-device MIS coupling (both charge
    // and capacitance) matches the pillar geometry.
    spec.t_liner = 10e-9;
  }
  if (p == Polarity::kPmos) {
    // Workfunction choice differs for the p-device so |Vth| comes out
    // comparable; calibrated against the equilibrium simulations.
    spec.gate_offset = -0.06;
  }
  return spec;
}

DeviceStructure build_structure(const DeviceSpec& spec) {
  MIVTX_EXPECT(spec.tsi > 0 && spec.tox > 0 && spec.t_liner > 0,
               "bad film stack");
  MIVTX_EXPECT(spec.miv_coverage >= 0.0 && spec.miv_coverage <= 1.0,
               "miv_coverage must be in [0, 1]");

  const std::vector<double> x_lines = Mesh::subdivide(
      0.0, {{spec.l_src, spec.cells_src},
            {spec.l_spacer, spec.cells_spacer},
            {spec.l_gate, spec.cells_gate},
            {spec.l_spacer, spec.cells_spacer},
            {spec.l_src, spec.cells_src}});
  const std::vector<double> y_lines = Mesh::subdivide(
      0.0, {{spec.t_liner, spec.cells_ox_y},
            {spec.tsi, spec.cells_si_y},
            {spec.tox, spec.cells_ox_y}});

  DeviceStructure s{spec, Mesh(x_lines, y_lines), {}, {}, 0, 0, {}};
  Mesh& mesh = s.mesh;

  // Material assignment: bottom cells_ox_y rows = liner oxide, top
  // cells_ox_y rows = gate oxide, middle = silicon.
  const std::size_t ncx = mesh.nx() - 1;
  const std::size_t ncy = mesh.ny() - 1;
  for (std::size_t ci = 0; ci < ncx; ++ci) {
    for (std::size_t cj = 0; cj < ncy; ++cj) {
      const bool in_si =
          cj >= spec.cells_ox_y && cj < spec.cells_ox_y + spec.cells_si_y;
      mesh.set_cell_material(ci, cj,
                             in_si ? Material::kSilicon : Material::kOxide);
    }
  }
  s.j_si_lo = spec.cells_ox_y;
  s.j_si_hi = spec.cells_ox_y + spec.cells_si_y;  // node row range inclusive

  // Node masks and doping.
  const double sign = spec.polarity == Polarity::kNmos ? 1.0 : -1.0;
  const double x_gate_lo = spec.l_src + spec.l_spacer;
  const double x_gate_hi = x_gate_lo + spec.l_gate;
  const double x_drain_lo = x_gate_hi + spec.l_spacer;

  s.doping.assign(mesh.num_nodes(), 0.0);
  s.contact.assign(mesh.num_nodes(), ContactKind::kNone);
  s.semi_.assign(mesh.num_nodes(), 0);

  for (std::size_t i = 0; i < mesh.nx(); ++i) {
    for (std::size_t j = 0; j < mesh.ny(); ++j) {
      const std::size_t nd = mesh.node(i, j);
      s.semi_[nd] = mesh.node_touches_silicon(i, j) ? 1 : 0;
      if (!s.semi_[nd]) continue;
      const double x = mesh.x(i);
      // Source/drain implants extend to the spacer edge; the channel keeps a
      // faint opposite-type background.
      if (x <= spec.l_src + 1e-15 || x >= x_drain_lo - 1e-15) {
        s.doping[nd] = sign * spec.n_src;
      } else {
        s.doping[nd] = -sign * spec.n_channel;
      }
    }
  }

  // Contacts.
  const std::size_t j_top = mesh.ny() - 1;
  const double miv_span_half =
      0.5 * spec.miv_coverage * (spec.l_gate + 2.0 * spec.l_spacer);
  const double x_mid = 0.5 * (x_gate_lo + x_gate_hi);
  for (std::size_t j = 0; j < mesh.ny(); ++j) {
    // Film edges: ohmic source (left) and drain (right), silicon rows only.
    if (j >= s.j_si_lo && j <= s.j_si_hi) {
      s.contact[mesh.node(0, j)] = ContactKind::kSource;
      s.contact[mesh.node(mesh.nx() - 1, j)] = ContactKind::kDrain;
    }
  }
  for (std::size_t i = 0; i < mesh.nx(); ++i) {
    const double x = mesh.x(i);
    // Top gate over the channel span.
    if (x >= x_gate_lo - 1e-15 && x <= x_gate_hi + 1e-15) {
      if (s.contact[mesh.node(i, j_top)] == ContactKind::kNone)
        s.contact[mesh.node(i, j_top)] = ContactKind::kGate;
    }
    // MIV bottom gate over the coverage span, centered on the channel.
    if (spec.miv_coverage > 0.0 && std::fabs(x - x_mid) <= miv_span_half + 1e-15) {
      if (s.contact[mesh.node(i, 0)] == ContactKind::kNone)
        s.contact[mesh.node(i, 0)] = ContactKind::kMiv;
    }
  }
  return s;
}

}  // namespace mivtx::tcad
