// Device description and structure builder for the Table-I FDSOI stack and
// the proposed MIV-transistor variants.
//
// The simulated domain is a 2-D (x = along channel, y = through film)
// cross-section:
//
//        gate contact (over channel only)
//   +-------[========]-------+   <- top gate oxide, tox
//   | src | sp | chan | sp | drn |  <- silicon film, tsi
//   +-------[========]-------+   <- bottom liner oxide, t_liner
//        MIV contact (coverage fraction, MIV variants only)
//
// Source/drain contacts are the left/right film edges.  The MIV pillar —
// which in the real structure rises vertically next to the channel with a
// 1 nm liner and is tied to the gate — is modelled as a bottom gate over a
// coverage fraction of the channel: electrically it contributes exactly the
// same extra MIS coupling the paper describes, which is what differentiates
// the MIV-transistor characteristics from the plain top-gate FDSOI device.
#pragma once

#include <string>
#include <vector>

#include "tcad/mesh.h"

namespace mivtx::tcad {

enum class Variant { kTraditional, kMiv1Channel, kMiv2Channel, kMiv4Channel };
enum class Polarity { kNmos, kPmos };

const char* variant_name(Variant v);
// Number of parallel channels of a variant (1, 1, 2, 4).
int variant_channels(Variant v);

struct DeviceSpec {
  Polarity polarity = Polarity::kNmos;
  Variant variant = Variant::kTraditional;

  // Process (paper Table I).
  double tsi = 7e-9;       // silicon film thickness
  double tox = 1e-9;       // gate oxide thickness
  double t_liner = 1e-9;   // MIV liner oxide thickness
  double l_src = 48e-9;    // source/drain region length
  double l_gate = 24e-9;   // gate length
  double l_spacer = 10e-9; // spacer length
  double w_total = 192e-9; // total electrical width (all channels)
  double n_src = 1e25;     // source/drain doping (m^-3)
  double n_channel = 1e20; // residual channel doping (m^-3), opposite type

  // Electrostatics / transport.
  double gate_offset = 0.06;    // gate electrode potential shift (V); sets Vth
  double miv_coverage = 0.0;    // fraction of (gate+spacers) span with MIV gate
  double mobility_factor = 1.0; // variant-specific width/edge degradation
  double tau_srh = 1e-7;        // SRH lifetime (s)
  double vsat_n = 1.0e5;        // electron saturation velocity (m/s)
  double vsat_p = 7.0e4;        // hole saturation velocity (m/s)

  // Meshing (cells per region).
  std::size_t cells_src = 8;
  std::size_t cells_spacer = 4;
  std::size_t cells_gate = 12;
  std::size_t cells_si_y = 10;
  std::size_t cells_ox_y = 2;

  // Canonical spec for a paper device.  Variant differences: miv_coverage
  // (how much of the channel the MIV stem gates) and mobility_factor
  // (narrow per-channel widths degrade carrier mobility slightly).
  static DeviceSpec for_variant(Variant v, Polarity p);
};

enum class ContactKind { kNone, kSource, kDrain, kGate, kMiv };

struct DeviceStructure {
  DeviceSpec spec;
  Mesh mesh;
  // Per-node signed net doping Nd - Na (m^-3); zero on pure-oxide nodes.
  std::vector<double> doping;
  std::vector<ContactKind> contact;
  // Node index ranges in y for the film.
  std::size_t j_si_lo = 0, j_si_hi = 0;  // inclusive silicon rows

  bool is_semiconductor(std::size_t node) const { return semi_[node]; }
  const std::vector<char>& semi_mask() const { return semi_; }

  std::vector<char> semi_;  // node touches silicon
};

DeviceStructure build_structure(const DeviceSpec& spec);

}  // namespace mivtx::tcad
